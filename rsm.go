package dvs

import (
	"sync"
)

// StateMachine replicates a deterministic state machine over the
// totally-ordered broadcast service: every replica applies the same
// command sequence, so any two replicas' states agree up to a prefix of
// commands. It is the "replicated database" application the paper's
// introduction motivates, packaged as a reusable component.
//
// Apply is invoked exactly once per committed command, in total order, from
// a single goroutine per replica.
type StateMachine struct {
	proc *Process
	// deliveries is snapshotted at construction so the apply loop owns only
	// channels: the goroutine must not reach through Process into the layer
	// structs holding the protocol cores (shellsafe).
	deliveries <-chan Delivery
	apply      func(cmd string, origin ProcID)

	mu      sync.Mutex
	applied int
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// NewStateMachine attaches a replica to a process. It consumes the
// process's delivery stream; do not read Process.Deliveries yourself while
// a StateMachine is attached.
func NewStateMachine(p *Process, apply func(cmd string, origin ProcID)) *StateMachine {
	sm := &StateMachine{
		proc:       p,
		deliveries: p.Deliveries(),
		apply:      apply,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go sm.run()
	return sm
}

func (sm *StateMachine) run() {
	defer close(sm.done)
	for {
		select {
		case d := <-sm.deliveries:
			sm.apply(d.Payload, d.Origin)
			sm.mu.Lock()
			sm.applied++
			sm.mu.Unlock()
		case <-sm.stop:
			return
		}
	}
}

// Submit proposes a command. Commitment is asynchronous: the command is
// applied (at every replica) once it is confirmed in the total order, which
// requires the submitting process to be in an established primary view. It
// reports false if the process has stopped.
func (sm *StateMachine) Submit(cmd string) bool {
	return sm.proc.Broadcast(cmd)
}

// Applied returns the number of commands applied at this replica.
func (sm *StateMachine) Applied() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.applied
}

// Close stops the replica's apply loop (the underlying process keeps
// running; close the Cluster separately).
func (sm *StateMachine) Close() {
	sm.mu.Lock()
	if sm.stopped {
		sm.mu.Unlock()
		return
	}
	sm.stopped = true
	sm.mu.Unlock()
	close(sm.stop)
	<-sm.done
}
