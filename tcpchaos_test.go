package dvs

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	netfab "repro/internal/net"
	"repro/internal/types"
)

// collectNodeDeliveries drains a TCP node's delivery channel into out.
func collectNodeDeliveries(n *Node, out *[]Delivery) {
	for {
		select {
		case d := <-n.Deliveries():
			*out = append(*out, d)
		default:
			return
		}
	}
}

// TestChaosTCPFaultSoak is the acceptance soak for the hardened transport:
// three standalone TCP nodes, each wrapped in a FaultTransport sharing one
// plan, driven through injected partitions, probabilistic loss, latency,
// message duplication, and reordering while broadcasting. After healing,
// the group must converge to the full primary view with an identical total
// order — the sequence-number defenses of the data plane must absorb the
// duplicated and overtaken frames without divergence; the per-peer
// accounting invariant Sent == Delivered + Dropped must hold on both the
// fault layer and the raw TCP transport of every node; and closing
// everything must return the goroutine count to baseline.
func TestChaosTCPFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	baseline := runtime.NumGoroutine()
	const n = 3
	// All three nodes spill their macro-steps into one chunked on-disk
	// trace; the small window forces many rolling cuts under chaos. The
	// online sampled checker runs in-process on every node at the same time.
	traceDir := t.TempDir()
	const traceWindow = 256
	stream, err := NewTraceStream(traceDir, TraceStreamOptions{WindowSteps: traceWindow})
	if err != nil {
		t.Fatal(err)
	}
	// Every is small so even the minority node (which sees little traffic
	// while partitioned) gets sampled checks during the soak.
	online := &OnlineCheckConfig{Window: 128, Every: 16}
	plan := netfab.NewFaultPlan(99)
	plan.SetLatency(time.Millisecond, 2*time.Millisecond)
	plan.SetDuplicate(0.05)
	plan.SetReorder(0.1, 5*time.Millisecond)
	faults := make([]*netfab.FaultTransport, n)

	base := 39700
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		i := i
		node, err := StartNode(NodeConfig{
			ID:           i,
			Processes:    n,
			Listen:       addrs[i],
			Peers:        peers,
			TickInterval: 5 * time.Millisecond,
			Record:       true,
			Stream:       stream,
			Online:       online,
			WrapTransport: func(tr netfab.Transport) netfab.Transport {
				faults[i] = netfab.NewFaultTransport(tr, plan)
				return faults[i]
			},
		})
		if err != nil {
			for _, nd := range nodes[:i] {
				nd.Close()
			}
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
	}
	closeAll := func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}
	closed := false
	defer func() {
		if !closed {
			closeAll()
		}
	}()

	delivered := make([][]Delivery, n)
	harvest := func() {
		for i := 0; i < n; i++ {
			collectNodeDeliveries(nodes[i], &delivered[i])
		}
	}
	broadcast := make(map[string]bool)
	msg := 0
	send := func(from, k int) {
		for j := 0; j < k; j++ {
			payload := fmt.Sprintf("c%d", msg)
			msg++
			if nodes[from].Broadcast(payload) {
				broadcast[payload] = true
			}
		}
	}

	time.Sleep(150 * time.Millisecond)
	send(0, 2)
	send(1, 2)

	// Phase 1: partition {0,1} | {2} — the majority side keeps a primary.
	// The phase boundary is a rolling (non-quiescent) cut: messages may be
	// in flight, so the replayer runs only the per-node checks here.
	stream.Cut(false)
	plan.Partition([]types.ProcID{0, 1}, []types.ProcID{2})
	time.Sleep(200 * time.Millisecond)
	send(0, 2)
	send(2, 1) // buffered in 2's minority, delivered after heal
	harvest()

	// Phase 2: heal under probabilistic loss and latency.
	stream.Cut(false)
	plan.SetLoss(0.15)
	plan.Heal()
	time.Sleep(300 * time.Millisecond)
	send(1, 2)
	harvest()

	// Phase 3: clean network; converge.
	plan.SetLoss(0)
	plan.SetLatency(0, 0)
	plan.SetDuplicate(0)
	plan.SetReorder(0, 0)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for i := 0; i < n; i++ {
			v, has := nodes[i].CurrentPrimary()
			if !has || v.Members.Len() != n || !nodes[i].Established() {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group never converged to the full primary view")
		}
		time.Sleep(10 * time.Millisecond)
	}
	send(2, 2)

	// Every broadcast must eventually deliver everywhere, in one order.
	for {
		harvest()
		done := true
		for i := 0; i < n; i++ {
			if len(delivered[i]) < len(broadcast) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries incomplete: want %d, have %d/%d/%d",
				len(broadcast), len(delivered[0]), len(delivered[1]), len(delivered[2]))
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertPrefixConsistent(t, delivered)
	for i := 0; i < n; i++ {
		if len(delivered[i]) != len(broadcast) {
			t.Errorf("node %d delivered %d of %d", i, len(delivered[i]), len(broadcast))
		}
	}

	// Per-peer accounting invariant on both layers of every node.
	for i := 0; i < n; i++ {
		if err := faults[i].Stats().CheckInvariant(); err != nil {
			t.Errorf("node %d fault layer: %v", i, err)
		}
		st := nodes[i].NetStats()
		if err := st.CheckInvariant(); err != nil {
			t.Errorf("node %d tcp layer: %v", i, err)
		}
		if st.Sent == 0 || len(st.Peers) == 0 {
			t.Errorf("node %d recorded no per-peer traffic: %+v", i, st)
		}
		ns := nodes[i].StatsSnapshot()
		if ns.VS.ViewsInstalled == 0 || ns.TOB.Delivered == 0 {
			t.Errorf("node %d layer counters empty: %+v", i, ns)
		}
		if ns.TOB.PayloadsOut != 0 && ns.TOB.BatchesOut == 0 {
			t.Errorf("node %d sent payloads with no frames: %+v", i, ns.TOB)
		}
		if st.WriterFrames < st.WriterFlushes {
			t.Errorf("node %d writer frames %d < flushes %d", i, st.WriterFrames, st.WriterFlushes)
		}
		t.Logf("node %d: tob %d payloads / %d frames, net %d frames / %d flushes",
			i, ns.TOB.PayloadsOut, ns.TOB.BatchesOut, st.WriterFrames, st.WriterFlushes)
	}
	fs := faults[0].Stats()
	if fs.Dropped == 0 {
		t.Errorf("fault layer injected no drops despite partition+loss: %+v", fs)
	}
	var dups uint64
	for i := 0; i < n; i++ {
		dups += faults[i].Stats().Duplicated
	}
	if dups == 0 {
		t.Errorf("fault layer injected no duplicates despite 5%% duplication over %d sends", fs.Sent)
	}

	// Zero leaked goroutines after Close.
	closed = true
	closeAll()

	// Trace conformance: with every node stopped, the per-node logs form a
	// consistent cut. Replaying them through the protocol cores must
	// re-derive every recorded effect, and the reconstructed final states
	// must satisfy the paper's invariants — the refinement check of the
	// unverified transport and view-synchronous layers under fault injection.
	logs := make([]TraceLog, 0, n)
	for i := 0; i < n; i++ {
		lg, ok := nodes[i].TraceLog()
		if !ok {
			t.Fatalf("node %d was not recording", i)
		}
		logs = append(logs, lg)
	}
	rep := ReplayTrace(logs)
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("trace conformance under chaos: %v (%s)", err, rep)
	}
	t.Logf("conformance: %s", rep)

	// Streamed conformance: the chunked on-disk trace of the same run,
	// sealed after every node stopped, must reach the same verdict as the
	// in-memory replay — and the recorder's buffered window must have stayed
	// bounded while the soak ran.
	if err := stream.Close(); err != nil {
		t.Fatalf("sealing trace stream: %v", err)
	}
	srep, err := ReplayTraceStream(traceDir)
	if err != nil {
		t.Fatalf("streamed replay: %v", err)
	}
	if serr := srep.Err(); serr != nil {
		for _, d := range srep.Divergences {
			t.Errorf("streamed divergence: %s", d)
		}
		for _, v := range srep.Violations {
			t.Errorf("streamed violation: %s", v)
		}
		t.Fatalf("streamed trace conformance under chaos: %v (%s)", serr, srep)
	}
	if !srep.Sealed {
		t.Errorf("chaos stream not sealed: %s", srep)
	}
	if srep.OK() != rep.OK() {
		t.Errorf("streamed verdict %v disagrees with in-memory verdict %v", srep.OK(), rep.OK())
	}
	if srep.DVSSteps != rep.DVSSteps || srep.TOSteps != rep.TOSteps {
		t.Errorf("streamed replay covered dvs=%d/to=%d steps, in-memory dvs=%d/to=%d",
			srep.DVSSteps, srep.TOSteps, rep.DVSSteps, rep.TOSteps)
	}
	if srep.Chunks < 2 {
		t.Errorf("chaos soak produced only %d chunks with window %d", srep.Chunks, traceWindow)
	}
	// The recorder may buffer the window plus the records racing the cut;
	// allow one extra record per node over the threshold.
	if peak := stream.PeakWindowSteps(); peak > traceWindow+n {
		t.Errorf("recorder buffered %d steps, window %d", peak, traceWindow)
	}
	t.Logf("streamed conformance: %s (peak window %d)", srep, stream.PeakWindowSteps())

	// The online checkers ran on every node and found nothing.
	for i := 0; i < n; i++ {
		cs := nodes[i].CheckStats()
		if cs.Steps == 0 || cs.Checks == 0 {
			t.Errorf("node %d online checker never ran: %+v", i, cs)
		}
		if cs.Divergences != 0 || cs.Violations != 0 {
			t.Errorf("node %d online checker flagged the run: %+v", i, cs)
		}
		t.Logf("node %d online checker: %d checks / %d steps, max %.2fms",
			i, cs.Checks, cs.Steps, float64(cs.MaxCheckNanos)/1e6)
	}
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		g := runtime.NumGoroutine()
		if g <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
