package dvs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/dvsg"
	"repro/internal/mcast"
	"repro/internal/member"
	netfab "repro/internal/net"
	"repro/internal/shard"
	"repro/internal/tob"
	"repro/internal/toimpl"
	"repro/internal/types"
	"repro/internal/vsg"
)

// registerWireTypes registers every payload type the stack puts on the
// wire, so the TCP transport can gob-encode them. GroupFrame is the
// sharded mode's group tag wrapping every other payload.
func registerWireTypes() {
	for _, v := range []any{
		member.Heartbeat{}, member.Propose{}, member.Accept{}, member.Install{},
		vsg.Data{}, vsg.Ordered{}, vsg.Ack{}, vsg.SafePoint{},
		core.InfoMsg{}, core.RegisteredMsg{},
		toimpl.LabelMsg{}, toimpl.SummaryMsg{},
		types.ClientMsg(""), types.Batch{}, dvsg.WireBatch{},
		netfab.GroupFrame{},
	} {
		netfab.RegisterWireType(v)
	}
}

// NodeConfig configures a standalone process communicating over real TCP —
// the deployable form of the stack. All nodes of a group must agree on
// Processes, Initial, and the peer address map.
type NodeConfig struct {
	// ID is this process's id in [0, Processes).
	ID int
	// Processes is the universe size.
	Processes int
	// Groups is the number of independent DVS/TO groups this node runs
	// over its one TCP transport (default 1). With Groups > 1 the node
	// participates in every group: each group is a complete stack
	// (membership, view synchrony, filter, total order) multiplexed over
	// the shared transport by a group tag, client payloads route to groups
	// by consistent key hash (Node.Submit), and a cross-group atomic
	// multicast coordinates payloads addressed to several groups
	// (Node.SubmitMulti). All nodes of a deployment must agree on Groups.
	Groups int
	// Initial lists v0's members (empty = all). Every group starts from
	// the same initial view.
	Initial []int
	// Listen is the local address, e.g. "127.0.0.1:7000" (":0" picks a
	// port; see Node.Addr).
	Listen string
	// Peers maps remote ids to their addresses.
	Peers map[int]string
	// Mode selects dynamic (default) or static primaries.
	Mode Mode
	// DisableRegistration as in Config.
	DisableRegistration bool
	// TickInterval as in Config; over real networks a coarser tick
	// (e.g. 20ms) is appropriate. SuspectTimeout and ProposeRetry default
	// to 5 and 10 ticks.
	TickInterval   time.Duration
	SuspectTimeout time.Duration
	ProposeRetry   time.Duration
	// WrapTransport, when set, decorates the node's TCP transport before
	// the stack is built — e.g. with a netfab.FaultTransport for chaos
	// testing real TCP nodes. If the returned transport has a Close
	// method, Node.Close calls it before closing the TCP transport.
	WrapTransport func(netfab.Transport) netfab.Transport
	// Record enables trace recording of the node's protocol cores; harvest
	// with Node.TraceLog after Close and check with ReplayTrace together
	// with the other nodes' logs. Works in both modes: static runs replay
	// through the staticcore baseline.
	Record bool
	// Stream, when set, spills the node's macro-steps into the given
	// chunked on-disk trace (see NewTraceStream): bounded recorder memory
	// for arbitrarily long runs. The caller owns the stream and must Close
	// it after Node.Close; check the directory with ReplayTraceStream.
	// Works in both modes, like Record.
	Stream *TraceStream
	// Online, when set, runs the in-process sampled conformance checker on
	// this node (see OnlineCheckConfig); counters surface in
	// NodeStats.Check. Requires ModeDynamic.
	Online *OnlineCheckConfig
}

// NodeStats aggregates the per-layer counters of one node: transport,
// view-synchronous layer, dynamic-view layer, and totally-ordered
// broadcast.
type NodeStats struct {
	Net   netfab.Stats
	VS    vsg.Stats
	DVS   dvsg.Stats
	TOB   tob.Stats
	Check OnlineCheckStats // zero unless NodeConfig.Online
}

// Node is one standalone process of a TCP-connected deployment. In
// single-group mode (Groups <= 1) the embedded stack is the node's whole
// protocol state and the historical API is unchanged. In sharded mode the
// node runs one stack per group behind a group multiplexer; the embedded
// stack is group 0's, so the single-group accessors keep working and read
// that group, while Group, Submit and SubmitMulti expose the rest.
type Node struct {
	id        ProcID
	tcp       *netfab.TCPTransport
	transport netfab.Transport // tcp, possibly wrapped (see WrapTransport)
	*stack                     // group 0's stack

	// Sharded mode only (nil/empty in single-group mode).
	mux    *netfab.GroupMux
	groups []types.GroupID
	stacks map[types.GroupID]*stack
	ring   *shard.Ring
	mc     *mcast.Coordinator
	mrec   *conform.McastRecorder // nil unless NodeConfig.Record
}

// StartNode launches a standalone process.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Processes <= 0 {
		return nil, errors.New("dvs: NodeConfig.Processes must be positive")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Processes {
		return nil, fmt.Errorf("dvs: node id %d out of range", cfg.ID)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDynamic
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	if cfg.Online != nil && cfg.Mode != ModeDynamic {
		return nil, errors.New("dvs: NodeConfig.Online requires ModeDynamic")
	}
	if cfg.Groups > 1 && cfg.Stream != nil {
		// One stream holds one group's run (the trace is group-homogeneous);
		// a sharded node needs one stream per group, which the embedding
		// runtime owns.
		return nil, errors.New("dvs: NodeConfig.Stream requires Groups <= 1")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 20 * time.Millisecond
	}
	registerWireTypes()

	universe := types.RangeProcSet(cfg.Processes)
	p0 := types.NewProcSet()
	if len(cfg.Initial) == 0 {
		p0 = universe.Clone()
	} else {
		for _, i := range cfg.Initial {
			if i < 0 || i >= cfg.Processes {
				return nil, fmt.Errorf("dvs: initial member %d out of range", i)
			}
			p0.Add(ProcID(i))
		}
	}
	initial := types.InitialView(p0)
	self := ProcID(cfg.ID)

	peers := make(map[types.ProcID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[ProcID(id)] = addr
	}
	tcp, err := netfab.NewTCPTransport(netfab.TCPConfig{
		Self:   self,
		Listen: cfg.Listen,
		Peers:  peers,
	})
	if err != nil {
		return nil, err
	}
	var transport netfab.Transport = tcp
	if cfg.WrapTransport != nil {
		transport = cfg.WrapTransport(tcp)
	}

	n := &Node{id: self, tcp: tcp, transport: transport}
	sc := stackConfig{
		self:                self,
		universe:            universe,
		p0:                  p0,
		initial:             initial,
		transport:           transport,
		mode:                cfg.Mode,
		disableRegistration: cfg.DisableRegistration,
		tick:                cfg.TickInterval,
		suspect:             cfg.SuspectTimeout,
		retry:               cfg.ProposeRetry,
		record:              cfg.Record,
		stream:              cfg.Stream,
		online:              cfg.Online,
	}

	if cfg.Groups == 1 {
		st, err := buildStack(sc)
		if err != nil {
			tcp.Close()
			return nil, err
		}
		n.stack = st
		st.vsg.Start()
		return n, nil
	}

	// Sharded mode: one stack per group over the shared transport, a
	// consistent-hash ring on the submit path, and the cross-group atomic
	// multicast coordinator hooked into every group's delivery stream.
	n.groups = types.RangeGroups(cfg.Groups)
	n.mux = netfab.NewGroupMux(self, transport, n.groups, netfab.GroupMuxConfig{})
	n.stacks = make(map[types.GroupID]*stack, cfg.Groups)
	n.ring = shard.NewRing(n.groups, 0)
	ports := make([]mcast.GroupPort, 0, cfg.Groups)
	for _, g := range n.groups {
		sc.group = g
		sc.transport = n.mux.Group(g)
		st, err := buildStack(sc)
		if err != nil {
			tcp.Close()
			return nil, err
		}
		n.stacks[g] = st
		ports = append(ports, mcast.GroupPort{G: g, TOB: st.tob, Run: st.vsg.Do})
	}
	n.stack = n.stacks[0]
	n.mc = mcast.New(self, ports)
	if cfg.Record {
		n.mrec = conform.NewMcastRecorder(self, n.groups)
		n.mc.AddObserver(n.mrec.Observe)
	}
	for _, g := range n.groups {
		n.stacks[g].tob.SetDeliverHook(n.mc.Hook(g))
	}
	n.mux.Start()
	for _, g := range n.groups {
		n.stacks[g].vsg.Start()
	}
	n.mc.Start()
	return n, nil
}

// Groups returns the node's group ids ({0} in single-group mode).
func (n *Node) Groups() []types.GroupID {
	if n.mux == nil {
		return []types.GroupID{0}
	}
	return append([]types.GroupID(nil), n.groups...)
}

// Group returns the stack handle of group g, presented as a Process (the
// same per-group API the in-memory cluster hands out). In single-group
// mode only group 0 exists.
func (n *Node) Group(g types.GroupID) (*Process, bool) {
	if n.mux == nil {
		if g != 0 {
			return nil, false
		}
		return &Process{id: n.id, stack: n.stack}, true
	}
	st, ok := n.stacks[g]
	if !ok {
		return nil, false
	}
	return &Process{id: n.id, stack: st}, true
}

// Submit routes a keyed payload to its group by consistent hash and
// broadcasts it there. In single-group mode every key routes to group 0.
// It reports false if the owning group's stack has stopped.
func (n *Node) Submit(key, payload string) bool {
	st := n.stack
	if n.mux != nil {
		st = n.stacks[n.ring.Group(key)]
	}
	return st.vsg.Do(func() { st.tob.Broadcast(payload) })
}

// SubmitKey returns the group a key routes to.
func (n *Node) SubmitKey(key string) types.GroupID {
	if n.mux == nil {
		return 0
	}
	return n.ring.Group(key)
}

// SubmitMulti atomically multicasts a payload to several groups: every
// addressed group delivers it, in the same relative order as every other
// multicast those groups share. Requires sharded mode.
func (n *Node) SubmitMulti(dests []types.GroupID, payload string) error {
	if n.mc == nil {
		return errors.New("dvs: SubmitMulti requires Groups > 1")
	}
	return n.mc.Submit(dests, payload)
}

// McastStats returns the multicast coordinator's counters (zero in
// single-group mode).
func (n *Node) McastStats() mcast.Stats {
	if n.mc == nil {
		return mcast.Stats{}
	}
	return n.mc.Stats()
}

// McastLog returns this node's recorded multicast trace, and whether one
// was recorded (sharded mode with NodeConfig.Record). Harvest after Close
// and check with conform.ReplayMcast together with the other nodes' logs.
func (n *Node) McastLog() (conform.McastLog, bool) {
	if n.mrec == nil {
		return conform.McastLog{}, false
	}
	return n.mrec.Log(), true
}

// ID returns the node's process id.
func (n *Node) ID() ProcID { return n.id }

// Addr returns the actual TCP listen address.
func (n *Node) Addr() string { return n.tcp.Addr() }

// NetStats returns a snapshot of the TCP transport's counters, including
// the per-peer breakdown.
func (n *Node) NetStats() netfab.Stats { return n.tcp.Stats() }

// StatsSnapshot returns the per-layer counters of this node. Transport and
// vsg counters are always current; dvsg/tob counters are read through the
// event loop and come back zero if the node has stopped.
func (n *Node) StatsSnapshot() NodeStats {
	s := NodeStats{Net: n.tcp.Stats(), VS: n.vsg.Stats()}
	if n.check != nil {
		s.Check = n.check.Stats()
	}
	done := make(chan struct{})
	if n.vsg.Do(func() {
		s.DVS = n.dvs.Stats()
		s.TOB = n.tob.Stats()
		close(done)
	}) {
		<-done
	}
	return s
}

// CheckStats returns the online conformance checker's counters, or a zero
// snapshot if the node was not started with NodeConfig.Online. Thread-safe.
func (n *Node) CheckStats() OnlineCheckStats {
	if n.check == nil {
		return OnlineCheckStats{}
	}
	return n.check.Stats()
}

// Broadcast submits a payload for totally-ordered delivery.
func (n *Node) Broadcast(payload string) bool {
	return n.vsg.Do(func() { n.tob.Broadcast(payload) })
}

// Deliveries is the totally ordered stream of messages.
func (n *Node) Deliveries() <-chan Delivery { return n.tob.Deliveries() }

// Views is the stream of primary views (best effort).
func (n *Node) Views() <-chan ViewEvent { return n.tob.Views() }

// CurrentPrimary returns the node's current primary view, if any.
func (n *Node) CurrentPrimary() (View, bool) {
	type reply struct {
		v  View
		ok bool
	}
	ch := make(chan reply, 1)
	if !n.vsg.Do(func() {
		v, ok := n.dvs.ClientCur()
		ch <- reply{v.Clone(), ok}
	}) {
		return View{}, false
	}
	r := <-ch
	return r.v, r.ok
}

// Established reports whether the current primary has completed its state
// exchange at this node.
func (n *Node) Established() bool {
	ch := make(chan bool, 1)
	if !n.vsg.Do(func() {
		// v0 needs no state exchange: the paper initializes
		// registered[g0] = P0, so the initial view counts as established.
		cur, ok := n.tob.Node().Current()
		ch <- ok && (cur.ID.IsZero() || n.tob.Node().Established(cur.ID))
	}) {
		return false
	}
	return <-ch
}

// TraceLog returns this node's recorded protocol trace, and whether the
// node was recording. It must be called after Close (and after every peer
// has stopped) for the combined logs to form the consistent cut ReplayTrace
// requires.
func (n *Node) TraceLog() (TraceLog, bool) {
	if n.rec == nil {
		return TraceLog{}, false
	}
	return n.rec.Log(), true
}

// GroupTraceLog returns group g's recorded trace (sharded mode; group 0 in
// single-group mode is TraceLog). Each group's logs replay as their own
// set: the trace of one group is one run of the single-group protocol.
func (n *Node) GroupTraceLog(g types.GroupID) (TraceLog, bool) {
	st := n.stack
	if n.mux != nil {
		var ok bool
		if st, ok = n.stacks[g]; !ok {
			return TraceLog{}, false
		}
	} else if g != 0 {
		return TraceLog{}, false
	}
	if st.rec == nil {
		return TraceLog{}, false
	}
	return st.rec.Log(), true
}

// Close stops the node — every group's stack, the multicast coordinator
// and group multiplexer in sharded mode — and its transport (including any
// wrapper installed via WrapTransport).
func (n *Node) Close() {
	if n.mc != nil {
		n.mc.Stop()
	}
	if n.mux != nil {
		for _, g := range n.groups {
			n.stacks[g].vsg.Stop()
		}
		n.mux.Stop()
	} else {
		n.vsg.Stop()
	}
	if closer, ok := n.transport.(interface{ Close() }); ok && n.transport != netfab.Transport(n.tcp) {
		closer.Close()
	}
	n.tcp.Close()
}
