package dvs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/dvsg"
	"repro/internal/member"
	netfab "repro/internal/net"
	"repro/internal/quorum"
	"repro/internal/staticp"
	"repro/internal/tob"
	"repro/internal/toimpl"
	"repro/internal/types"
	"repro/internal/vsg"
)

// registerWireTypes registers every payload type the stack puts on the
// wire, so the TCP transport can gob-encode them.
func registerWireTypes() {
	for _, v := range []any{
		member.Heartbeat{}, member.Propose{}, member.Accept{}, member.Install{},
		vsg.Data{}, vsg.Ordered{}, vsg.Ack{}, vsg.SafePoint{},
		core.InfoMsg{}, core.RegisteredMsg{},
		toimpl.LabelMsg{}, toimpl.SummaryMsg{},
		types.ClientMsg(""), types.Batch{}, dvsg.WireBatch{},
	} {
		netfab.RegisterWireType(v)
	}
}

// NodeConfig configures a standalone process communicating over real TCP —
// the deployable form of the stack. All nodes of a group must agree on
// Processes, Initial, and the peer address map.
type NodeConfig struct {
	// ID is this process's id in [0, Processes).
	ID int
	// Processes is the universe size.
	Processes int
	// Initial lists v0's members (empty = all).
	Initial []int
	// Listen is the local address, e.g. "127.0.0.1:7000" (":0" picks a
	// port; see Node.Addr).
	Listen string
	// Peers maps remote ids to their addresses.
	Peers map[int]string
	// Mode selects dynamic (default) or static primaries.
	Mode Mode
	// DisableRegistration as in Config.
	DisableRegistration bool
	// TickInterval as in Config; over real networks a coarser tick
	// (e.g. 20ms) is appropriate. SuspectTimeout and ProposeRetry default
	// to 5 and 10 ticks.
	TickInterval   time.Duration
	SuspectTimeout time.Duration
	ProposeRetry   time.Duration
	// WrapTransport, when set, decorates the node's TCP transport before
	// the stack is built — e.g. with a netfab.FaultTransport for chaos
	// testing real TCP nodes. If the returned transport has a Close
	// method, Node.Close calls it before closing the TCP transport.
	WrapTransport func(netfab.Transport) netfab.Transport
	// Record enables trace recording of the node's protocol cores; harvest
	// with Node.TraceLog after Close and check with ReplayTrace together
	// with the other nodes' logs. Works in both modes: static runs replay
	// through the staticcore baseline.
	Record bool
	// Stream, when set, spills the node's macro-steps into the given
	// chunked on-disk trace (see NewTraceStream): bounded recorder memory
	// for arbitrarily long runs. The caller owns the stream and must Close
	// it after Node.Close; check the directory with ReplayTraceStream.
	// Works in both modes, like Record.
	Stream *TraceStream
	// Online, when set, runs the in-process sampled conformance checker on
	// this node (see OnlineCheckConfig); counters surface in
	// NodeStats.Check. Requires ModeDynamic.
	Online *OnlineCheckConfig
}

// NodeStats aggregates the per-layer counters of one node: transport,
// view-synchronous layer, dynamic-view layer, and totally-ordered
// broadcast.
type NodeStats struct {
	Net   netfab.Stats
	VS    vsg.Stats
	DVS   dvsg.Stats
	TOB   tob.Stats
	Check OnlineCheckStats // zero unless NodeConfig.Online
}

// Node is one standalone process of a TCP-connected group.
type Node struct {
	id        ProcID
	tcp       *netfab.TCPTransport
	transport netfab.Transport // tcp, possibly wrapped (see WrapTransport)
	vsg       *vsg.Node
	dvs       *dvsg.Layer
	tob       *tob.Layer
	rec       *conform.Recorder      // nil unless NodeConfig.Record
	check     *conform.OnlineChecker // nil unless NodeConfig.Online
}

// StartNode launches a standalone process.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Processes <= 0 {
		return nil, errors.New("dvs: NodeConfig.Processes must be positive")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Processes {
		return nil, fmt.Errorf("dvs: node id %d out of range", cfg.ID)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDynamic
	}
	if cfg.Online != nil && cfg.Mode != ModeDynamic {
		return nil, errors.New("dvs: NodeConfig.Online requires ModeDynamic")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 20 * time.Millisecond
	}
	registerWireTypes()

	universe := types.RangeProcSet(cfg.Processes)
	p0 := types.NewProcSet()
	if len(cfg.Initial) == 0 {
		p0 = universe.Clone()
	} else {
		for _, i := range cfg.Initial {
			if i < 0 || i >= cfg.Processes {
				return nil, fmt.Errorf("dvs: initial member %d out of range", i)
			}
			p0.Add(ProcID(i))
		}
	}
	initial := types.InitialView(p0)
	self := ProcID(cfg.ID)

	peers := make(map[types.ProcID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[ProcID(id)] = addr
	}
	tcp, err := netfab.NewTCPTransport(netfab.TCPConfig{
		Self:   self,
		Listen: cfg.Listen,
		Peers:  peers,
	})
	if err != nil {
		return nil, err
	}
	var transport netfab.Transport = tcp
	if cfg.WrapTransport != nil {
		transport = cfg.WrapTransport(tcp)
	}

	node := vsg.NewNode(vsg.Config{
		Self:           self,
		Universe:       universe,
		Initial:        initial,
		Transport:      transport,
		TickInterval:   cfg.TickInterval,
		SuspectTimeout: cfg.SuspectTimeout,
		ProposeRetry:   cfg.ProposeRetry,
	})
	var filter dvsg.Filter
	if cfg.Mode == ModeStatic {
		filter = staticp.NewNode(self, initial, initial.Contains(self), quorum.Majority(p0))
	} else {
		filter = core.NewNode(self, initial, initial.Contains(self))
	}
	app := tob.New(self, initial, !cfg.DisableRegistration, node.Stopped())
	layer := dvsg.New(filter, app, cfg.Mode == ModeDynamic)
	layer.Bind(node)
	app.Bind(layer)
	node.SetHandler(layer)

	// Record the construction parameters as the cores were actually built:
	// gc only in dynamic mode, static marking the staticcore filter.
	gcOn := cfg.Mode == ModeDynamic
	static := cfg.Mode == ModeStatic
	var rec *conform.Recorder
	if cfg.Record {
		rec = conform.NewRecorder(self, initial, initial.Contains(self), !cfg.DisableRegistration, gcOn, static)
		layer.AddObserver(rec.ObserveDVS)
		app.AddObserver(rec.ObserveTO)
	}
	if cfg.Stream != nil {
		sn, err := cfg.Stream.Node(self, initial, initial.Contains(self), !cfg.DisableRegistration, gcOn, static)
		if err != nil {
			tcp.Close()
			return nil, fmt.Errorf("dvs: registering node %d with trace stream: %w", cfg.ID, err)
		}
		layer.AddObserver(sn.ObserveDVS)
		app.AddObserver(sn.ObserveTO)
	}
	var check *conform.OnlineChecker
	if cfg.Online != nil {
		check = conform.NewOnlineChecker(self, initial, initial.Contains(self), !cfg.DisableRegistration, true, *cfg.Online)
		layer.AddObserver(check.ObserveDVS)
		app.AddObserver(check.ObserveTO)
	}
	node.Start()

	return &Node{id: self, tcp: tcp, transport: transport, vsg: node, dvs: layer, tob: app, rec: rec, check: check}, nil
}

// ID returns the node's process id.
func (n *Node) ID() ProcID { return n.id }

// Addr returns the actual TCP listen address.
func (n *Node) Addr() string { return n.tcp.Addr() }

// NetStats returns a snapshot of the TCP transport's counters, including
// the per-peer breakdown.
func (n *Node) NetStats() netfab.Stats { return n.tcp.Stats() }

// StatsSnapshot returns the per-layer counters of this node. Transport and
// vsg counters are always current; dvsg/tob counters are read through the
// event loop and come back zero if the node has stopped.
func (n *Node) StatsSnapshot() NodeStats {
	s := NodeStats{Net: n.tcp.Stats(), VS: n.vsg.Stats()}
	if n.check != nil {
		s.Check = n.check.Stats()
	}
	done := make(chan struct{})
	if n.vsg.Do(func() {
		s.DVS = n.dvs.Stats()
		s.TOB = n.tob.Stats()
		close(done)
	}) {
		<-done
	}
	return s
}

// CheckStats returns the online conformance checker's counters, or a zero
// snapshot if the node was not started with NodeConfig.Online. Thread-safe.
func (n *Node) CheckStats() OnlineCheckStats {
	if n.check == nil {
		return OnlineCheckStats{}
	}
	return n.check.Stats()
}

// Broadcast submits a payload for totally-ordered delivery.
func (n *Node) Broadcast(payload string) bool {
	return n.vsg.Do(func() { n.tob.Broadcast(payload) })
}

// Deliveries is the totally ordered stream of messages.
func (n *Node) Deliveries() <-chan Delivery { return n.tob.Deliveries() }

// Views is the stream of primary views (best effort).
func (n *Node) Views() <-chan ViewEvent { return n.tob.Views() }

// CurrentPrimary returns the node's current primary view, if any.
func (n *Node) CurrentPrimary() (View, bool) {
	type reply struct {
		v  View
		ok bool
	}
	ch := make(chan reply, 1)
	if !n.vsg.Do(func() {
		v, ok := n.dvs.ClientCur()
		ch <- reply{v.Clone(), ok}
	}) {
		return View{}, false
	}
	r := <-ch
	return r.v, r.ok
}

// Established reports whether the current primary has completed its state
// exchange at this node.
func (n *Node) Established() bool {
	ch := make(chan bool, 1)
	if !n.vsg.Do(func() {
		// v0 needs no state exchange: the paper initializes
		// registered[g0] = P0, so the initial view counts as established.
		cur, ok := n.tob.Node().Current()
		ch <- ok && (cur.ID.IsZero() || n.tob.Node().Established(cur.ID))
	}) {
		return false
	}
	return <-ch
}

// TraceLog returns this node's recorded protocol trace, and whether the
// node was recording. It must be called after Close (and after every peer
// has stopped) for the combined logs to form the consistent cut ReplayTrace
// requires.
func (n *Node) TraceLog() (TraceLog, bool) {
	if n.rec == nil {
		return TraceLog{}, false
	}
	return n.rec.Log(), true
}

// Close stops the node and its transport (including any wrapper installed
// via WrapTransport).
func (n *Node) Close() {
	n.vsg.Stop()
	if closer, ok := n.transport.(interface{ Close() }); ok && n.transport != netfab.Transport(n.tcp) {
		closer.Close()
	}
	n.tcp.Close()
}
