# Verification gate for every PR. `make check` is the tier-1 bar plus the
# race detector, which gates the concurrent checking engine (worker-pool
# seed fan-out, parallel BFS) against data races, plus dvslint, which
# machine-enforces the automaton discipline (see DESIGN.md §6.4).

GO ?= go

.PHONY: check build vet lint lintgate test race bench

check: build vet lint lintgate race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: fingerprint/clone completeness, model
# determinism, shared-view mutation, fingerprint ordering, and the
# macro-step boundary (corestep, effectcomplete, shellsafe; DESIGN.md §6.9).
lint:
	$(GO) run ./cmd/dvslint ./...

# Negative lint smoke: dvslint must exit nonzero on the seeded-bad-edit
# fixtures, proving the macro-step analyzers still bite.
lintgate:
	sh scripts/check.sh lintgate

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serial-vs-parallel theorem-check benchmarks (E1–E3); emits the
# machine-readable BENCH_checks.json snapshot (see scripts/bench.sh).
bench:
	sh scripts/bench.sh
