# Verification gate for every PR. `make check` is the tier-1 bar plus the
# race detector, which gates the concurrent checking engine (worker-pool
# seed fan-out, parallel BFS) against data races.

GO ?= go

.PHONY: check build vet test race bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serial-vs-parallel theorem-check benchmarks (E1–E3); emits the
# machine-readable BENCH_checks.json snapshot (see scripts/bench.sh).
bench:
	sh scripts/bench.sh
