package dvs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dvsg"
	netfab "repro/internal/net"
	"repro/internal/tob"
	"repro/internal/types"
	"repro/internal/vsg"
)

// Cluster is a running group of processes over a partitionable in-memory
// network. All processes run the full stack: membership, view-synchronous
// ordering, the primary-view filter, and totally-ordered broadcast.
type Cluster struct {
	cfg      Config
	universe types.ProcSet
	initial  types.View
	fabric   *netfab.Fabric
	procs    map[ProcID]*Process
	close    sync.Once
}

// Process is the application-facing handle of one cluster member: one
// group's full protocol stack at one process (group 0 in a single-group
// Cluster; the sharded runtime hands out one Process per member group).
type Process struct {
	id ProcID
	*stack
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Processes <= 0 {
		return nil, errors.New("dvs: Config.Processes must be positive")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDynamic
	}
	if cfg.Online != nil && cfg.Mode != ModeDynamic {
		return nil, errors.New("dvs: Config.Online requires ModeDynamic")
	}
	universe := types.RangeProcSet(cfg.Processes)
	p0 := types.NewProcSet()
	if len(cfg.Initial) == 0 {
		p0 = universe.Clone()
	} else {
		for _, i := range cfg.Initial {
			if i < 0 || i >= cfg.Processes {
				return nil, fmt.Errorf("dvs: initial member %d out of range", i)
			}
			p0.Add(ProcID(i))
		}
	}
	initial := types.InitialView(p0)

	c := &Cluster{
		cfg:      cfg,
		universe: universe,
		initial:  initial,
		fabric:   netfab.NewFabric(universe, netfab.Config{Seed: cfg.Seed, LossRate: cfg.LossRate}),
		procs:    make(map[ProcID]*Process, cfg.Processes),
	}
	for _, id := range universe.Sorted() {
		st, err := buildStack(stackConfig{
			self:                id,
			universe:            universe,
			p0:                  p0,
			initial:             initial,
			transport:           c.fabric,
			mode:                cfg.Mode,
			disableRegistration: cfg.DisableRegistration,
			tick:                cfg.TickInterval,
			suspect:             cfg.SuspectTimeout,
			retry:               cfg.ProposeRetry,
			record:              cfg.Record,
			stream:              cfg.Stream,
			online:              cfg.Online,
		})
		if err != nil {
			return nil, err
		}
		c.procs[id] = &Process{id: id, stack: st}
	}
	for _, id := range universe.Sorted() {
		c.procs[id].vsg.Start()
	}
	return c, nil
}

// Process returns the handle of process i.
func (c *Cluster) Process(i int) *Process { return c.procs[ProcID(i)] }

// Processes returns all handles in id order.
func (c *Cluster) Processes() []*Process {
	out := make([]*Process, 0, len(c.procs))
	for _, id := range c.universe.Sorted() {
		out = append(out, c.procs[id])
	}
	return out
}

// InitialView returns v0.
func (c *Cluster) InitialView() View { return c.initial.Clone() }

// Partition splits the network into the given components; unmentioned
// processes form one extra component together.
func (c *Cluster) Partition(groups ...[]int) {
	conv := make([][]ProcID, len(groups))
	for i, g := range groups {
		conv[i] = make([]ProcID, len(g))
		for j, p := range g {
			conv[i][j] = ProcID(p)
		}
	}
	c.fabric.Partition(conv...)
}

// Heal reconnects the whole network.
func (c *Cluster) Heal() { c.fabric.Heal() }

// Crash permanently disconnects process i (crash-stop).
func (c *Cluster) Crash(i int) { c.fabric.Crash(ProcID(i)) }

// NetStats returns the cumulative fabric counters.
func (c *Cluster) NetStats() netfab.Stats { return c.fabric.Stats() }

// Close stops every process and disconnects the fabric. Close is
// idempotent, so scenarios can close explicitly (to harvest trace logs at a
// consistent cut) under a deferred Close.
func (c *Cluster) Close() {
	c.close.Do(func() {
		c.fabric.Close()
		for _, p := range c.procs {
			p.vsg.Stop()
		}
	})
}

// TraceLogs returns the recorded per-node protocol traces, in process-id
// order, or nil if the cluster was not built with Config.Record. It must be
// called after Close: only then do the logs form the consistent cut the
// conformance replayer's cross-node invariants require.
func (c *Cluster) TraceLogs() []TraceLog {
	if !c.cfg.Record {
		return nil
	}
	out := make([]TraceLog, 0, len(c.procs))
	for _, id := range c.universe.Sorted() {
		out = append(out, c.procs[id].rec.Log())
	}
	return out
}

// ID returns the process id.
func (p *Process) ID() ProcID { return p.id }

// Broadcast submits a payload for totally-ordered delivery. It reports
// false if the process has stopped.
func (p *Process) Broadcast(payload string) bool {
	return p.vsg.Do(func() { p.tob.Broadcast(payload) })
}

// Deliveries is the totally ordered stream of messages delivered to this
// process. Consumers must drain it.
func (p *Process) Deliveries() <-chan Delivery { return p.tob.Deliveries() }

// Views is the stream of primary views at this process (best effort).
func (p *Process) Views() <-chan ViewEvent { return p.tob.Views() }

// CurrentPrimary returns this process's current primary view, if any.
func (p *Process) CurrentPrimary() (View, bool) {
	type reply struct {
		v  View
		ok bool
	}
	ch := make(chan reply, 1)
	if !p.vsg.Do(func() {
		v, ok := p.dvs.ClientCur()
		ch <- reply{v.Clone(), ok}
	}) {
		return View{}, false
	}
	r := <-ch
	return r.v, r.ok
}

// Established reports whether this process has established (completed state
// exchange for) its current primary view.
func (p *Process) Established() bool {
	ch := make(chan bool, 1)
	if !p.vsg.Do(func() {
		// v0 needs no state exchange: the paper initializes
		// registered[g0] = P0, so the initial view counts as established.
		cur, ok := p.tob.Node().Current()
		ch <- ok && (cur.ID.IsZero() || p.tob.Node().Established(cur.ID))
	}) {
		return false
	}
	return <-ch
}

// Stats returns snapshots of the broadcast-layer and view-layer counters.
func (p *Process) Stats() (tob.Stats, dvsg.Stats) {
	type reply struct {
		t tob.Stats
		d dvsg.Stats
	}
	ch := make(chan reply, 1)
	if !p.vsg.Do(func() { ch <- reply{p.tob.Stats(), p.dvs.Stats()} }) {
		return tob.Stats{}, dvsg.Stats{}
	}
	r := <-ch
	return r.t, r.d
}

// CheckStats returns the online conformance checker's counters, or a zero
// snapshot if the cluster was not built with Config.Online. Thread-safe.
func (p *Process) CheckStats() OnlineCheckStats {
	if p.check == nil {
		return OnlineCheckStats{}
	}
	return p.check.Stats()
}

// VSStats returns the view-synchronous layer counters of this process
// (views installed, retransmissions, delivery latency). Thread-safe.
func (p *Process) VSStats() vsg.Stats { return p.vsg.Stats() }

// AmbiguousViews returns the current size of the filter's ambiguous-view
// set (dynamic mode; always 0 in static mode).
func (p *Process) AmbiguousViews() int {
	ch := make(chan int, 1)
	if !p.vsg.Do(func() { ch <- p.dvs.AmbCount() }) {
		return 0
	}
	return <-ch
}

// Leader returns the coordinator of this process's current primary view —
// by convention its minimum-id member — and whether this process currently
// has an established primary. All members of the same established primary
// agree on its leader. Note the standard caveat: a process cut off from the
// rest (crashed link, minority partition) retains its stale primary and may
// still believe in an old leader until it reconnects — so guard actions by
// running them through the total order (e.g. via StateMachine), where a
// stale leader cannot commit anything, rather than trusting leadership
// alone.
func (p *Process) Leader() (ProcID, bool) {
	v, ok := p.CurrentPrimary()
	if !ok || !p.Established() {
		return 0, false
	}
	return v.Members.Sorted()[0], true
}

// IsLeader reports whether this process is the leader of its current
// established primary view.
func (p *Process) IsLeader() bool {
	l, ok := p.Leader()
	return ok && l == p.id
}
