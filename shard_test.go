package dvs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/types"
)

// groupHandle fetches the per-group Process view or fails the test.
func groupHandle(t *testing.T, p *ShardedProcess, g GroupID) *Process {
	t.Helper()
	h, ok := p.Group(g)
	if !ok {
		t.Fatalf("process %d has no stack for group %s", p.ID(), g)
	}
	return h
}

// assertMcastAgreement checks that every process's multicast delivery
// history for each group is identical (the runs below wait for
// convergence first, so prefixes are not enough), and returns one
// consensus order per group.
func assertMcastAgreement(t *testing.T, procs []*ShardedProcess, groups []GroupID) map[GroupID][]McastDelivery {
	t.Helper()
	consensus := make(map[GroupID][]McastDelivery, len(groups))
	for _, g := range groups {
		ref := procs[0].McastDelivered(g)
		for _, p := range procs[1:] {
			got := p.McastDelivered(g)
			if len(got) != len(ref) {
				t.Fatalf("group %s: process %d delivered %d multicasts, process %d delivered %d",
					g, procs[0].ID(), len(ref), p.ID(), len(got))
			}
			for k := range ref {
				if got[k] != ref[k] {
					t.Fatalf("group %s: processes %d and %d disagree at %d: %+v vs %+v",
						g, procs[0].ID(), p.ID(), k, ref[k], got[k])
				}
			}
		}
		consensus[g] = ref
	}
	return consensus
}

// assertCrossGroupOrder pins the paper-level sharding invariant directly on
// the harvested histories: any two groups that both deliver two multicasts
// deliver them in the same relative order.
func assertCrossGroupOrder(t *testing.T, consensus map[GroupID][]McastDelivery, groups []GroupID) {
	t.Helper()
	for i, g := range groups {
		for _, h := range groups[i+1:] {
			posG := make(map[string]int, len(consensus[g]))
			for k, d := range consensus[g] {
				posG[d.ID] = k
			}
			var shared []McastDelivery
			for _, d := range consensus[h] {
				if _, ok := posG[d.ID]; ok {
					shared = append(shared, d)
				}
			}
			for a := 0; a < len(shared); a++ {
				for b := a + 1; b < len(shared); b++ {
					if posG[shared[a].ID] > posG[shared[b].ID] {
						t.Fatalf("cross-group order violated: group %s delivers %s before %s, group %s reverses them",
							h, shared[a].ID, shared[b].ID, g)
					}
				}
			}
		}
	}
}

// TestShardedKeyedRouting covers the single-group fast path of a sharded
// cluster: keyed submits route deterministically by consistent hash, land
// only in their routed group, each group keeps one total order, and both
// the per-group protocol traces and the (empty) multicast trace replay
// clean.
func TestShardedKeyedRouting(t *testing.T) {
	const n, ngroups, msgs = 4, 3, 36
	cl, err := NewShardedCluster(ShardedConfig{Processes: n, Groups: ngroups, Seed: 11, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	groups := cl.Groups()

	// Route each key up front; every process must agree with the cluster
	// ring, or a submit and its expectation could diverge.
	expect := make(map[GroupID][]string)
	for i := 0; i < msgs; i++ {
		key := fmt.Sprintf("key-%d", i)
		g := cl.Ring().Group(key)
		if got := cl.Process(i % n).SubmitKey(key); got != g {
			t.Fatalf("process %d routes %q to %s, cluster ring says %s", i%n, key, got, g)
		}
		payload := fmt.Sprintf("k%d", i)
		if !cl.Process(i%n).Submit(key, payload) {
			t.Fatalf("submit %q failed", payload)
		}
		expect[g] = append(expect[g], payload)
	}
	for _, g := range groups {
		if len(expect[g]) == 0 {
			t.Fatalf("group %s drew no keys out of %d — ring balance is broken", g, msgs)
		}
	}

	// Every process's every group delivers exactly that group's share.
	delivered := make(map[GroupID][][]Delivery)
	for _, g := range groups {
		delivered[g] = make([][]Delivery, n)
		for i := 0; i < n; i++ {
			waitDeliveries(t, groupHandle(t, cl.Process(i), g), &delivered[g][i], len(expect[g]), 20*time.Second)
		}
		assertPrefixConsistent(t, delivered[g])
		want := make(map[string]bool, len(expect[g]))
		for _, p := range expect[g] {
			want[p] = true
		}
		for i := 0; i < n; i++ {
			for _, d := range delivered[g][i] {
				if !want[d.Payload] {
					t.Fatalf("group %s delivered %q, which was routed elsewhere", g, d.Payload)
				}
			}
		}
	}

	cl.Close()
	for _, g := range groups {
		rep := ReplayTrace(cl.TraceLogs(g))
		if err := rep.Err(); err != nil {
			t.Fatalf("group %s trace conformance: %v (%s)", g, err, rep)
		}
	}
	if rep := ReplayMcastTrace(cl.McastLogs()); rep.Err() != nil {
		t.Fatalf("multicast trace conformance: %v (%s)", rep.Err(), rep)
	}
}

// TestShardedMulticastOrdering drives the cross-group atomic multicast on a
// quiet network: every addressed group delivers every multicast, all
// processes agree per group, shared multicasts keep the same relative order
// across groups, and deliveries are spliced into the ordinary per-group
// application streams alongside keyed traffic.
func TestShardedMulticastOrdering(t *testing.T) {
	const n = 3
	cl, err := NewShardedCluster(ShardedConfig{Processes: n, Groups: 2, Seed: 12, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	groups := cl.Groups()
	g0, g1 := groups[0], groups[1]

	// Interleave: both-group multicasts from rotating origins, single-group
	// multicasts, and one keyed broadcast to prove streams merge.
	perGroup := map[GroupID]int{}
	for i := 0; i < 6; i++ {
		if err := cl.Process(i%n).SubmitMulti([]GroupID{g0, g1}, fmt.Sprintf("both%d", i)); err != nil {
			t.Fatal(err)
		}
		perGroup[g0]++
		perGroup[g1]++
	}
	if err := cl.Process(0).SubmitMulti([]GroupID{g0}, "solo0"); err != nil {
		t.Fatal(err)
	}
	perGroup[g0]++
	if err := cl.Process(1).SubmitMulti([]GroupID{g1}, "solo1"); err != nil {
		t.Fatal(err)
	}
	perGroup[g1]++
	key := "merge-key"
	kg := cl.Ring().Group(key)
	if !cl.Process(2).Submit(key, "keyed") {
		t.Fatal("keyed submit failed")
	}

	// Convergence: every process's core history reaches the full count for
	// both groups.
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for i := 0; i < n; i++ {
			for _, g := range groups {
				if len(cl.Process(i).McastDelivered(g)) < perGroup[g] {
					done = false
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < n; i++ {
				for _, g := range groups {
					t.Logf("p%d %s: %d/%d", i, g, len(cl.Process(i).McastDelivered(g)), perGroup[g])
				}
			}
			t.Fatal("multicast deliveries did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}

	consensus := assertMcastAgreement(t, cl.Processes(), groups)
	assertCrossGroupOrder(t, consensus, groups)

	// The application stream of each group carries the multicasts plus the
	// keyed broadcast, in one per-group total order.
	for _, g := range groups {
		want := perGroup[g]
		if g == kg {
			want++
		}
		streams := make([][]Delivery, n)
		for i := 0; i < n; i++ {
			waitDeliveries(t, groupHandle(t, cl.Process(i), g), &streams[i], want, 20*time.Second)
		}
		assertPrefixConsistent(t, streams)
	}

	cl.Close()
	if rep := ReplayMcastTrace(cl.McastLogs()); rep.Err() != nil {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("multicast trace conformance: %v (%s)", rep.Err(), rep)
	}
}

// TestShardedChaosSoak is the multi-group nemesis run the sharding work is
// gated on: randomized partitions and heals against a 4-process x 3-group
// cluster under mixed traffic where at least 10% of submissions are
// cross-group multicasts. At the end every safety net fires at once —
// per-group one-total-order over the live streams, multicast agreement and
// the cross-group partial order pinned directly on the harvested
// histories, per-group trace replay, multicast trace replay, and a full
// sharded stream-directory replay that must come back sealed and
// divergence-free.
func TestShardedChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const n, ngroups = 4, 3
	traceDir := t.TempDir()
	cl, err := NewShardedCluster(ShardedConfig{
		Processes: n, Groups: ngroups, Seed: 13, Record: true, StreamDir: traceDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	groups := cl.Groups()

	rng := rand.New(rand.NewSource(13))
	keyed := make(map[GroupID]map[string]bool)
	for _, g := range groups {
		keyed[g] = make(map[string]bool)
	}
	multi := make(map[GroupID]int)
	streams := make(map[GroupID][][]Delivery)
	for _, g := range groups {
		streams[g] = make([][]Delivery, n)
	}
	harvest := func() {
		for i := 0; i < n; i++ {
			for _, g := range groups {
				collectDeliveries(groupHandle(t, cl.Process(i), g), &streams[g][i])
			}
		}
	}

	msgs, multis := 0, 0
	for round := 0; round < 12; round++ {
		switch rng.Intn(4) {
		case 0:
			cl.Heal()
		case 1:
			k := 1 + rng.Intn(n/2)
			perm := rng.Perm(n)
			cl.Partition(toInts(perm[k:]), toInts(perm[:k]))
		case 2:
			cl.Partition(toInts(rng.Perm(n)[:n-1]))
		default:
			// traffic-only round
		}
		// Mixed traffic: ~6 keyed submits and at least one cross-group
		// multicast per round keeps the cross-group fraction >= 10%.
		for s := 0; s < 6; s++ {
			sender := cl.Process(rng.Intn(n))
			key := fmt.Sprintf("key-%d", rng.Intn(64))
			payload := fmt.Sprintf("k%d", msgs)
			msgs++
			if sender.Submit(key, payload) {
				keyed[sender.SubmitKey(key)][payload] = true
			}
		}
		dests := []GroupID{groups[rng.Intn(ngroups)], groups[rng.Intn(ngroups)]}
		if err := cl.Process(rng.Intn(n)).SubmitMulti(dests, fmt.Sprintf("x%d", multis)); err != nil {
			t.Fatalf("multicast submit: %v", err)
		}
		multis++
		for _, g := range types.DedupGroups(dests) {
			multi[g]++
		}
		time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
		harvest()
	}
	if frac := float64(multis) / float64(multis+msgs); frac < 0.10 {
		t.Fatalf("cross-group fraction %.2f below the 10%% floor", frac)
	}

	// Stabilize and wait until every process's every group stream holds its
	// full expected content: each keyed submit that was accepted plus every
	// multicast addressed to the group.
	cl.Heal()
	deadline := time.Now().Add(60 * time.Second)
	for {
		harvest()
		done := true
		for i := 0; i < n; i++ {
			for _, g := range groups {
				if len(streams[g][i]) < len(keyed[g])+multi[g] {
					done = false
				}
				if len(cl.Process(i).McastDelivered(g)) < multi[g] {
					done = false
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < n; i++ {
				for _, g := range groups {
					t.Logf("p%d %s: stream %d/%d mcast %d/%d", i, g,
						len(streams[g][i]), len(keyed[g])+multi[g],
						len(cl.Process(i).McastDelivered(g)), multi[g])
				}
			}
			t.Fatal("sharded soak did not converge after heal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	harvest()

	// Per-group safety over the live streams: one total order, and keyed
	// payloads only ever in their routed group.
	for _, g := range groups {
		assertPrefixConsistent(t, streams[g])
		for i := 0; i < n; i++ {
			for _, d := range streams[g][i] {
				if d.Payload[0] == 'k' && !keyed[g][d.Payload] {
					t.Fatalf("group %s delivered keyed %q routed to another group", g, d.Payload)
				}
			}
		}
	}

	// The tentpole invariant, pinned on the harvested multicast histories.
	consensus := assertMcastAgreement(t, cl.Processes(), groups)
	assertCrossGroupOrder(t, consensus, groups)

	if err := cl.Close(); err != nil {
		t.Fatalf("closing sharded cluster: %v", err)
	}

	// Conformance, three ways: per-group in-memory replay, multicast
	// replay, and the sealed sharded stream directory.
	for _, g := range groups {
		rep := ReplayTrace(cl.TraceLogs(g))
		if err := rep.Err(); err != nil {
			for _, d := range rep.Divergences {
				t.Errorf("group %s divergence: %s", g, d)
			}
			for _, v := range rep.Violations {
				t.Errorf("group %s violation: %s", g, v)
			}
			t.Fatalf("group %s trace conformance under nemesis: %v (%s)", g, err, rep)
		}
	}
	mrep := ReplayMcastTrace(cl.McastLogs())
	if err := mrep.Err(); err != nil {
		for _, d := range mrep.Divergences {
			t.Errorf("multicast divergence: %s", d)
		}
		for _, v := range mrep.Violations {
			t.Errorf("multicast violation: %s", v)
		}
		t.Fatalf("multicast trace conformance under nemesis: %v (%s)", err, mrep)
	}
	srep, err := ReplayShardedTrace(traceDir)
	if err != nil {
		t.Fatalf("sharded stream replay: %v", err)
	}
	if !srep.OK() {
		t.Fatalf("sharded stream replay not clean: %v (%s)", srep.Err(), srep)
	}
	t.Logf("sharded soak: %d keyed, %d multicasts (%.0f%% cross-group), %s",
		msgs, multis, 100*float64(multis)/float64(multis+msgs), srep)
}
