package dvs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// register is a tiny deterministic state machine: last-writer-wins cells.
type register struct {
	mu   sync.Mutex
	log  []string
	cell map[string]string
}

func newRegister() *register { return &register{cell: make(map[string]string)} }

func (r *register) apply(cmd string, origin ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, cmd)
	var k, v string
	if _, err := fmt.Sscanf(cmd, "%s %s", &k, &v); err == nil {
		r.cell[k] = v
	}
}

func (r *register) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

func TestStateMachineReplication(t *testing.T) {
	const n = 4
	cl, err := NewCluster(Config{Processes: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	regs := make([]*register, n)
	sms := make([]*StateMachine, n)
	for i := 0; i < n; i++ {
		regs[i] = newRegister()
		sms[i] = NewStateMachine(cl.Process(i), regs[i].apply)
	}
	defer func() {
		for _, sm := range sms {
			sm.Close()
		}
	}()

	for k := 0; k < 8; k++ {
		if !sms[k%n].Submit(fmt.Sprintf("key%d val%d", k%3, k)) {
			t.Fatal("submit failed")
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for i := 0; i < n; i++ {
			if sms[i].Applied() < 8 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: applied = %d %d %d %d", sms[0].Applied(), sms[1].Applied(), sms[2].Applied(), sms[3].Applied())
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := regs[0].snapshot()
	for i := 1; i < n; i++ {
		got := regs[i].snapshot()
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("replica %d diverges at %d: %q vs %q", i, k, got[k], want[k])
			}
		}
	}
}

func TestStateMachineAcrossPartition(t *testing.T) {
	const n = 5
	cl, err := NewCluster(Config{Processes: n, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	regs := make([]*register, n)
	sms := make([]*StateMachine, n)
	for i := 0; i < n; i++ {
		regs[i] = newRegister()
		sms[i] = NewStateMachine(cl.Process(i), regs[i].apply)
	}
	defer func() {
		for _, sm := range sms {
			sm.Close()
		}
	}()

	sms[0].Submit("a 1")
	time.Sleep(150 * time.Millisecond)
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	sms[1].Submit("b 2") // commits in the primary component
	sms[4].Submit("c 3") // buffered in the minority
	time.Sleep(200 * time.Millisecond)
	if sms[4].Applied() > 1 {
		t.Error("minority replica applied a partition-time command")
	}
	cl.Heal()
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for i := 0; i < n; i++ {
			if sms[i].Applied() < 3 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for convergence after heal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := regs[0].snapshot()
	for i := 1; i < n; i++ {
		got := regs[i].snapshot()
		if len(got) != len(want) {
			t.Fatalf("replica %d length %d vs %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("replica %d diverges at %d", i, k)
			}
		}
	}
}

func TestStateMachineCloseIdempotent(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sm := NewStateMachine(cl.Process(0), func(string, ProcID) {})
	sm.Close()
	sm.Close() // must not panic or deadlock
}
