package dvs

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
	tospec "repro/internal/spec/to"
	"repro/internal/toimpl"
	"repro/internal/types"
)

// Finding describes one of the documented discrepancies between the printed
// paper and what the algorithms actually guarantee (EXPERIMENTS.md §C),
// reproduced mechanically.
type Finding struct {
	ID      string
	Title   string
	Witness string // the failing step of the literal system
}

// ErrNoWitness is returned when a demonstration cannot reproduce the
// documented discrepancy within its search budget.
var ErrNoWitness = errors.New("no witness found within the search budget")

// DemonstrateF1 reproduces Finding F1: the refinement of Figure 4 from
// DVS-IMPL to the *literal* Figure 2 DVS specification fails at a dvs-safe
// step.
func DemonstrateF1(cfg CheckConfig) (Finding, error) {
	cfg, universe, v0 := cfg.fill()
	ref := &core.Refinement{Universe: universe, Initial: v0, Literal: true}
	for i := 0; i < cfg.Seeds*5; i++ {
		seed := cfg.Seed + int64(i)
		_, err := ioa.CheckRefinement(core.NewImpl(universe, v0), ref,
			core.NewEnv(seed+1000, universe),
			ioa.CheckerConfig{Steps: cfg.Steps, Seed: seed})
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), "dvs-safe") {
			return Finding{}, fmt.Errorf("unexpected failure mode: %w", err)
		}
		return Finding{
			ID:      "F1",
			Title:   "literal Figure 2 dvs-safe is not implementable by Figure 3",
			Witness: err.Error(),
		}, nil
	}
	return Finding{}, ErrNoWitness
}

// DemonstrateF2 reproduces Finding F2: over the amended (endpoint-safe) DVS
// without the drain rule, Figure 5 can confirm diverging total orders.
func DemonstrateF2(cfg CheckConfig) (Finding, error) {
	cfg, universe, v0 := cfg.fill()
	for i := 0; i < cfg.Seeds*5; i++ {
		seed := cfg.Seed + int64(i)
		impl := toimpl.NewImpl(universe, v0, toimpl.Config{DVS: toimpl.DVSAmended})
		mon := tospec.NewMonitor(universe)
		_, err := ioa.CheckTraceInclusion(impl, mon, toimpl.NewEnv(seed+900, universe),
			ioa.CheckerConfig{Steps: cfg.Steps, Seed: seed, ImplInvariants: toimpl.Invariants()})
		if err != nil {
			return Finding{
				ID:      "F2",
				Title:   "Theorems 5.9 and 6.4 do not compose without the drain rule",
				Witness: err.Error(),
			}, nil
		}
	}
	return Finding{}, ErrNoWitness
}

// DemonstrateF3 reproduces Finding F3: Figure 5's printed LABEL
// precondition lets a recovery-time label be ordered twice.
func DemonstrateF3(cfg CheckConfig) (Finding, error) {
	cfg, universe, v0 := cfg.fill()
	for i := 0; i < cfg.Seeds*5; i++ {
		seed := cfg.Seed + int64(i)
		impl := toimpl.NewImpl(universe, v0, toimpl.Config{DVS: toimpl.DVSLiteral, LiteralFigure5: true})
		mon := tospec.NewMonitor(universe)
		_, err := ioa.CheckTraceInclusion(impl, mon, toimpl.NewEnv(seed+500, universe),
			ioa.CheckerConfig{Steps: cfg.Steps, Seed: seed})
		if err != nil {
			return Finding{
				ID:      "F3",
				Title:   "Figure 5's LABEL during recovery causes duplicate ordering",
				Witness: err.Error(),
			}, nil
		}
	}
	return Finding{}, ErrNoWitness
}

// DemonstrateF4 reproduces Finding F4: Invariant 5.2(3) as printed is
// violated on reachable DVS-IMPL states.
func DemonstrateF4(cfg CheckConfig) (Finding, error) {
	cfg, universe, v0 := cfg.fill()
	inv := ioa.Invariant{Name: "5.2(3) literal", Check: func(a ioa.Automaton) error {
		im, ok := a.(*core.Impl)
		if !ok {
			return fmt.Errorf("wrong automaton %T", a)
		}
		return core.CheckInvariant52Part3Literal(im)
	}}
	for i := 0; i < cfg.Seeds*5; i++ {
		seed := cfg.Seed + int64(i)
		ex := &ioa.Executor{Steps: cfg.Steps, Seed: seed}
		_, err := ex.Run(core.NewImpl(universe, v0), core.NewEnv(seed+2000, universe), []ioa.Invariant{inv})
		if err != nil {
			return Finding{
				ID:      "F4",
				Title:   "Invariant 5.2(3) as printed is falsifiable",
				Witness: err.Error(),
			}, nil
		}
	}
	return Finding{}, ErrNoWitness
}

// DemonstrateF5 reproduces Finding F5: "chosenrep(Y) = some element in
// reps(Y)" is not safe as printed. highprimary is initialized to g0 at
// every process — including processes outside the initial view — so a
// least-id resolution can pick a representative with an empty tentative
// order, and fullorder then reorders labels an earlier primary confirmed.
// The demonstration is constructive: it builds the gotstate of the
// witnessing schedule and shows the least-id choice breaks the confirmed
// prefix while the shipped longest-order rule preserves it.
func DemonstrateF5(cfg CheckConfig) (Finding, error) {
	l1 := types.Label{ID: types.ViewIDZero, Seqno: 1, Origin: 0}
	l2 := types.Label{ID: types.ViewIDZero, Seqno: 2, Origin: 0}
	l3 := types.Label{ID: types.ViewIDZero, Seqno: 1, Origin: 3}
	member := types.Summary{ // a genuine v0 member: confirmed [l1 l2]
		Con:  types.Content{l1: "a", l2: "b", l3: "c"},
		Ord:  []types.Label{l1, l2, l3},
		Next: 3,
		High: types.ViewIDZero,
	}
	outsider := types.Summary{ // never established anything; defaults
		Con:  types.Content{},
		Next: 1,
		High: types.ViewIDZero,
	}
	gs := types.GotState{2: outsider, 3: member}

	// The printed rule allows picking the outsider (both tie at high = g0).
	// Its shortorder is λ, so fullorder is dom(knowncontent) in label
	// order — which puts l3 (seqno 1) before l2 (seqno 2), reordering the
	// member's confirmed prefix [l1 l2].
	leastIDFull := types.Content(member.Con).Labels() // label order = the λ-rep fullorder
	if types.IsPrefix(member.Ord[:member.Next-1], leastIDFull) {
		return Finding{}, fmt.Errorf("constructive F5 witness unexpectedly consistent")
	}
	// The shipped rule picks the member and preserves the prefix.
	if rep, ok := gs.ChosenRep(); !ok || rep != 3 {
		return Finding{}, fmt.Errorf("longest-order rule picked %v", rep)
	}
	if !types.IsPrefix(member.Ord[:member.Next-1], gs.FullOrder()) {
		return Finding{}, fmt.Errorf("longest-order rule broke the confirmed prefix")
	}
	return Finding{
		ID:    "F5",
		Title: "chosenrep = \"some element in reps(Y)\" is unsafe; the rep must hold the maximal order",
		Witness: fmt.Sprintf("least-id rep gives %v, which reorders the confirmed prefix %v (see toimpl.TestRegressionChosenRepSeed7 for the full schedule)",
			leastIDFull, member.Ord[:member.Next-1]),
	}, nil
}

// DemonstrateFindings runs all five demonstrations.
func DemonstrateFindings(cfg CheckConfig) ([]Finding, error) {
	demos := []func(CheckConfig) (Finding, error){
		DemonstrateF1, DemonstrateF2, DemonstrateF3, DemonstrateF4, DemonstrateF5,
	}
	out := make([]Finding, 0, len(demos))
	for _, d := range demos {
		f, err := d(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}
