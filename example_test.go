package dvs_test

import (
	"fmt"
	"time"

	dvs "repro"
)

// ExampleNewCluster shows the one-minute tour: broadcast, partition, heal,
// and one total order at every process.
func ExampleNewCluster() {
	cl, err := dvs.NewCluster(dvs.Config{Processes: 3, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close()

	cl.Process(0).Broadcast("first")
	cl.Process(2).Broadcast("second")

	// Both messages arrive at process 1 in the single system-wide order.
	for i := 0; i < 2; i++ {
		select {
		case d := <-cl.Process(1).Deliveries():
			_ = d // one total order, gap-free
		case <-time.After(20 * time.Second):
			fmt.Println("timeout")
			return
		}
	}
	fmt.Println("two messages delivered in total order")
	// Output: two messages delivered in total order
}

// ExampleNewStateMachine replicates a counter across the cluster.
func ExampleNewStateMachine() {
	cl, err := dvs.NewCluster(dvs.Config{Processes: 3, Seed: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close()

	counters := make([]int, 3)
	sms := make([]*dvs.StateMachine, 3)
	for i := 0; i < 3; i++ {
		i := i
		sms[i] = dvs.NewStateMachine(cl.Process(i), func(cmd string, origin dvs.ProcID) {
			counters[i]++ // deterministic apply, same order everywhere
		})
	}
	defer func() {
		for _, sm := range sms {
			sm.Close()
		}
	}()

	sms[0].Submit("inc")
	sms[1].Submit("inc")
	deadline := time.Now().Add(20 * time.Second)
	for sms[2].Applied() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("replica 2 applied:", sms[2].Applied())
	// Output: replica 2 applied: 2
}

// ExampleCheckDVSRefinement runs the mechanized Theorem 5.9 check.
func ExampleCheckDVSRefinement() {
	_, err := dvs.CheckDVSRefinement(dvs.CheckConfig{Procs: 3, Steps: 200, Seeds: 2})
	fmt.Println("refinement holds:", err == nil)
	// Output: refinement holds: true
}
