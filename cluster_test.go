package dvs

import (
	"fmt"
	"testing"
	"time"
)

func collectDeliveries(p *Process, out *[]Delivery) {
	for {
		select {
		case d := <-p.Deliveries():
			*out = append(*out, d)
		default:
			return
		}
	}
}

func waitDeliveries(t *testing.T, p *Process, out *[]Delivery, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		collectDeliveries(p, out)
		if len(*out) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: got %d of %d deliveries", len(*out), n)
}

func assertPrefixConsistent(t *testing.T, delivered [][]Delivery) {
	t.Helper()
	for i := range delivered {
		for j := i + 1; j < len(delivered); j++ {
			a, b := delivered[i], delivered[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					t.Fatalf("processes %d and %d diverge at %d: %v vs %v", i, j, k, a[k], b[k])
				}
			}
		}
	}
}

func TestClusterBasicDelivery(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if !cl.Process(0).Broadcast(fmt.Sprintf("m%d", i)) {
			t.Fatal("broadcast failed")
		}
	}
	var got []Delivery
	waitDeliveries(t, cl.Process(4), &got, 10, 20*time.Second)
	for i, d := range got {
		if d.Origin != 0 || d.Payload != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d = %+v (per-origin FIFO violated?)", i, d)
		}
	}
}

func TestClusterPartitionHealConsistency(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 5; i++ {
		cl.Process(i % 5).Broadcast(fmt.Sprintf("s%d", i))
	}
	time.Sleep(200 * time.Millisecond)

	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 5; i++ {
		cl.Process(i % 3).Broadcast(fmt.Sprintf("p%d", i))
	}
	cl.Process(3).Broadcast("minority")
	time.Sleep(250 * time.Millisecond)

	// The majority side must have formed and established a primary {0,1,2}.
	v, ok := cl.Process(0).CurrentPrimary()
	if !ok || v.Members.Len() != 3 {
		t.Fatalf("majority primary = %v, %v", v, ok)
	}
	if !cl.Process(0).Established() {
		t.Fatal("majority primary not established")
	}
	// The minority must still be at the old (pre-partition) primary.
	v3, ok3 := cl.Process(3).CurrentPrimary()
	if !ok3 || v3.Members.Len() != 5 {
		t.Fatalf("minority should be stuck at the full view, got %v", v3)
	}

	cl.Heal()
	time.Sleep(400 * time.Millisecond)
	cl.Process(2).Broadcast("final")

	delivered := make([][]Delivery, 5)
	// Everyone eventually delivers: 5 stable + 5 partition + minority +
	// final = 12 messages.
	for i := 0; i < 5; i++ {
		waitDeliveries(t, cl.Process(i), &delivered[i], 12, 20*time.Second)
	}
	assertPrefixConsistent(t, delivered)

	// The minority's buffered message must be delivered after the merge
	// and after the majority's partition-time messages.
	seq := delivered[0]
	idxMinority, idxP0 := -1, -1
	for k, d := range seq {
		if d.Payload == "minority" {
			idxMinority = k
		}
		if d.Payload == "p0" {
			idxP0 = k
		}
	}
	if idxMinority < 0 || idxP0 < 0 || idxMinority < idxP0 {
		t.Errorf("minority message at %d, majority partition message at %d", idxMinority, idxP0)
	}
}

func TestClusterMinorityMakesNoProgress(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)

	cl.Partition([]int{0, 1}, []int{2, 3, 4})
	time.Sleep(200 * time.Millisecond)
	cl.Process(0).Broadcast("stuck")
	time.Sleep(250 * time.Millisecond)
	var got []Delivery
	collectDeliveries(cl.Process(0), &got)
	for _, d := range got {
		if d.Payload == "stuck" {
			t.Fatal("minority delivered a message broadcast during the partition")
		}
	}
}

func TestClusterStaticMode(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 5, Mode: ModeStatic, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	cl.Process(1).Broadcast("x")
	var got []Delivery
	waitDeliveries(t, cl.Process(2), &got, 1, 20*time.Second)
	if got[0].Payload != "x" || got[0].Origin != 1 {
		t.Fatalf("delivery = %+v", got[0])
	}
	// Static majority {0,1,2} still works...
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(250 * time.Millisecond)
	cl.Process(0).Broadcast("maj")
	var got0 []Delivery
	waitDeliveries(t, cl.Process(0), &got0, 2, 20*time.Second)
}

func TestClusterCrash(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	cl.Crash(3)
	// The survivors form a primary without 3 and keep delivering.
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, ok := cl.Process(0).CurrentPrimary()
		if ok && v.Members.Len() == 3 && !v.Contains(3) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no survivor primary; have %v %v", v, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Process(1).Broadcast("after-crash")
	var got []Delivery
	waitDeliveries(t, cl.Process(2), &got, 1, 20*time.Second)
}

func TestClusterLateJoiner(t *testing.T) {
	// Process 3 is outside v0; membership admits it into later views and
	// it receives subsequent messages.
	cl, err := NewCluster(Config{Processes: 4, Initial: []int{0, 1, 2}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, ok := cl.Process(3).CurrentPrimary()
		if ok && v.Contains(3) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("late joiner never entered a primary view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Process(0).Broadcast("welcome")
	var got []Delivery
	waitDeliveries(t, cl.Process(3), &got, 1, 20*time.Second)
	if got[0].Payload != "welcome" {
		t.Fatalf("delivery = %+v", got[0])
	}
}

func TestClusterLossyNetwork(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 3, Seed: 7, LossRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 20; i++ {
		cl.Process(i % 3).Broadcast(fmt.Sprintf("l%d", i))
	}
	delivered := make([][]Delivery, 3)
	for i := 0; i < 3; i++ {
		waitDeliveries(t, cl.Process(i), &delivered[i], 20, 10*time.Second)
	}
	assertPrefixConsistent(t, delivered)
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := NewCluster(Config{Processes: 3, Initial: []int{7}}); err == nil {
		t.Error("out-of-range initial member accepted")
	}
}

func TestClusterStatsAndViews(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Process(0).Broadcast("x")
	var got []Delivery
	waitDeliveries(t, cl.Process(0), &got, 1, 20*time.Second)
	ts, ds := cl.Process(0).Stats()
	if ts.Broadcasts != 1 || ts.Delivered == 0 {
		t.Errorf("tob stats = %+v", ts)
	}
	if ds.VSViews == 0 {
		t.Errorf("dvsg stats = %+v", ds)
	}
	if cl.NetStats().Delivered == 0 {
		t.Error("fabric stats empty")
	}
	if cl.InitialView().Members.Len() != 3 {
		t.Error("initial view wrong")
	}
	if got := cl.Processes(); len(got) != 3 || got[1].ID() != 1 {
		t.Error("Processes accessor wrong")
	}
}

func TestClusterBroadcastAfterClose(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := cl.Process(0)
	cl.Close()
	if p.Broadcast("x") {
		t.Error("broadcast after close should fail")
	}
	if _, ok := p.CurrentPrimary(); ok {
		t.Error("CurrentPrimary after close should fail")
	}
}

func TestLeaderElection(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if l, ok := cl.Process(3).Leader(); ok {
			if l != 0 {
				t.Fatalf("leader = %d, want 0", l)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cl.Process(0).IsLeader() || cl.Process(2).IsLeader() {
		t.Error("IsLeader wrong")
	}
	// Crash the leader: the survivors elect the next-lowest id.
	cl.Crash(0)
	deadline = time.Now().Add(20 * time.Second)
	for {
		if l, ok := cl.Process(3).Leader(); ok && l == 1 {
			break
		}
		if time.Now().After(deadline) {
			l, ok := cl.Process(3).Leader()
			t.Fatalf("no failover; leader=%v ok=%v", l, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// At most one leader among live processes.
	leaders := 0
	for i := 1; i < 4; i++ {
		if cl.Process(i).IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want 1", leaders)
	}
}
