package main

import "testing"

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("1=127.0.0.1:7001, 2=10.0.0.2:7002")
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != "127.0.0.1:7001" || got[2] != "10.0.0.2:7002" {
		t.Errorf("got %v", got)
	}
	if m, err := parsePeers(""); err != nil || len(m) != 0 {
		t.Error("empty peers should parse to empty map")
	}
	if _, err := parsePeers("nonsense"); err == nil {
		t.Error("missing = accepted")
	}
	if _, err := parsePeers("x=127.0.0.1:1"); err == nil {
		t.Error("non-numeric id accepted")
	}
}
