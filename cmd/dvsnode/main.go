// Command dvsnode runs one process of a TCP-connected group: the deployable
// form of the stack. Lines read from stdin are broadcast; totally-ordered
// deliveries and primary-view changes are printed to stdout.
//
// Example (three shells):
//
//	dvsnode -id 0 -n 3 -listen 127.0.0.1:7000 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002
//	dvsnode -id 1 -n 3 -listen 127.0.0.1:7001 -peers 0=127.0.0.1:7000,2=127.0.0.1:7002
//	dvsnode -id 2 -n 3 -listen 127.0.0.1:7002 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001
//
// With -groups N > 1 the node runs N independent groups over the same TCP
// transport (every peer must use the same -groups). Stdin lines then route
// by consistent hash — "key:payload" submits payload under key, a bare line
// keys on itself — and "@g0,g1:payload" atomically multicasts the payload
// to the listed groups. Deliveries are printed tagged with their group.
package main

import (
	"bufio"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	dvs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvsnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this process's id")
		n        = flag.Int("n", 3, "universe size")
		listen   = flag.String("listen", "127.0.0.1:7000", "listen address")
		peers    = flag.String("peers", "", "comma-separated id=host:port pairs")
		static   = flag.Bool("static", false, "use static majority primaries instead of dynamic")
		groups   = flag.Int("groups", 1, "independent groups sharing this node's transport (sharded mode; incompatible with -trace-dir)")
		tick     = flag.Duration("tick", 20*time.Millisecond, "heartbeat tick")
		metrics  = flag.String("metrics", "", "serve per-layer stats over HTTP at this address (expvar at /debug/vars, JSON at /stats)")
		traceDir = flag.String("trace-dir", "", "stream this node's protocol trace to chunked segments in this directory (dynamic mode only); replay with dvsim -replay <dir>")
		traceWin = flag.Int("trace-window", 0, "macro-steps per trace chunk (0 = default)")
		check    = flag.Bool("check", false, "run the in-process sampled conformance checker (dynamic mode only; stats in the metrics Check section)")
		checkWin = flag.Int("check-window", 0, "online checker: macro-steps re-stepped per sample (0 = default)")
		checkEvr = flag.Int("check-every", 0, "online checker: sample every this many macro-steps (0 = default)")
	)
	flag.Parse()

	peerMap, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	mode := dvs.ModeDynamic
	if *static {
		mode = dvs.ModeStatic
	}
	cfg := dvs.NodeConfig{
		ID:           *id,
		Processes:    *n,
		Listen:       *listen,
		Peers:        peerMap,
		Mode:         mode,
		Groups:       *groups,
		TickInterval: *tick,
	}
	var stream *dvs.TraceStream
	if *traceDir != "" {
		stream, err = dvs.NewTraceStream(*traceDir, dvs.TraceStreamOptions{WindowSteps: *traceWin})
		if err != nil {
			return err
		}
		cfg.Stream = stream
	}
	if *check {
		cfg.Online = &dvs.OnlineCheckConfig{Window: *checkWin, Every: *checkEvr}
	}
	node, err := dvs.StartNode(cfg)
	if err != nil {
		if stream != nil {
			stream.Close()
		}
		return err
	}
	if stream != nil {
		// Declared before node.Close so the stream is sealed after the node
		// has stopped observing: the deferred calls run in reverse order.
		defer func() {
			if err := stream.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dvsnode: sealing trace stream:", err)
			}
		}()
	}
	defer node.Close()
	if *check {
		defer func() {
			cs := node.CheckStats()
			fmt.Printf("online checker: %d checks over %d steps, %d divergences, %d violations\n",
				cs.Checks, cs.Steps, cs.Divergences, cs.Violations)
			if cs.LastError != "" {
				fmt.Fprintln(os.Stderr, "dvsnode: online checker:", cs.LastError)
			}
		}()
	}
	fmt.Printf("node %d listening on %s (%s primaries)\n", *id, node.Addr(), mode)
	if *metrics != "" {
		addr, err := serveMetrics(*metrics, node)
		if err != nil {
			return err
		}
		fmt.Printf("metrics on http://%s/stats (expvar at /debug/vars)\n", addr)
	}

	for _, g := range node.Groups() {
		p, ok := node.Group(g)
		if !ok {
			continue
		}
		tag := ""
		if *groups > 1 {
			tag = fmt.Sprintf("g%d ", int(g))
		}
		go func() {
			for d := range p.Deliveries() {
				fmt.Printf("[%sdeliver] %q from %d\n", tag, d.Payload, d.Origin)
			}
		}()
		go func() {
			for e := range p.Views() {
				t := "view"
				if e.Established {
					t = "established"
				}
				fmt.Printf("[%s%s] %s\n", tag, t, e.View)
			}
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if *groups == 1 {
			if !node.Broadcast(line) {
				return nil
			}
			continue
		}
		if err := submitSharded(node, line); err != nil {
			fmt.Fprintln(os.Stderr, "dvsnode:", err)
		}
	}
	return sc.Err()
}

// submitSharded routes one stdin line of a sharded node: "@g0,g1:payload"
// is an atomic multicast to the listed groups, "key:payload" a keyed
// submission, and anything else keys on the whole line.
func submitSharded(node *dvs.Node, line string) error {
	if rest, ok := strings.CutPrefix(line, "@"); ok {
		spec, payload, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("bad multicast %q (want @g0,g1:payload)", line)
		}
		var dests []dvs.GroupID
		for _, part := range strings.Split(spec, ",") {
			g, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad multicast group %q: %v", part, err)
			}
			dests = append(dests, dvs.GroupID(g))
		}
		return node.SubmitMulti(dests, payload)
	}
	key, payload, ok := strings.Cut(line, ":")
	if !ok {
		key, payload = line, line
	}
	if !node.Submit(key, payload) {
		return fmt.Errorf("group %d stopped", int(node.SubmitKey(key)))
	}
	return nil
}

// serveMetrics exposes the node's per-layer counters over HTTP: the
// standard expvar surface at /debug/vars (publishing the snapshot under the
// "dvsnode" key) and a plain JSON endpoint at /stats. It returns the actual
// listen address (useful with ":0").
func serveMetrics(addr string, node *dvs.Node) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listen: %w", err)
	}
	expvar.Publish("dvsnode", expvar.Func(func() any { return node.StatsSnapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(node.StatsSnapshot())
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

func parsePeers(s string) (map[int]string, error) {
	out := make(map[int]string)
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", pair)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", idStr, err)
		}
		out[id] = addr
	}
	return out, nil
}
