// Command dvsim runs the runtime-stack experiment scenarios from the shell
// and prints the result rows recorded in EXPERIMENTS.md. It can also record
// the protocol-core traces of a run and replay them through the
// machine-checked cores (-record / -replay), turning any scenario into a
// trace-conformance check.
//
// Usage:
//
//	dvsim -scenario availability|cascade|throughput|recovery|ablation [flags]
//	dvsim -scenario cascade -record trace.gob   # run, record, verify, write
//	dvsim -replay trace.gob                     # re-check a recorded trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	dvs "repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "availability", "availability, cascade, throughput, recovery, or ablation")
		procs    = flag.Int("procs", 5, "group size")
		spares   = flag.Int("spares", 5, "spare processes (availability)")
		rounds   = flag.Int("rounds", 6, "rounds / replacements")
		duration = flag.Duration("duration", 500*time.Millisecond, "pump duration (throughput)")
		period   = flag.Duration("period", 150*time.Millisecond, "churn/round period")
		seed     = flag.Int64("seed", 1, "seed")
		record   = flag.String("record", "", "record protocol traces, verify conformance, and write them to this file (dynamic-mode runs only)")
		replay   = flag.String("replay", "", "replay a trace file through the protocol cores and check conformance (ignores -scenario)")
	)
	flag.Parse()

	if *replay != "" {
		logs, err := dvs.ReadTrace(*replay)
		if err != nil {
			return err
		}
		return report(dvs.ReplayTrace(logs))
	}
	rec := *record != ""

	var trace []dvs.TraceLog
	switch *scenario {
	case "availability":
		for _, mode := range []dvs.Mode{dvs.ModeDynamic, dvs.ModeStatic} {
			res, err := sim.Availability(sim.AvailabilityConfig{
				Active: *procs, Spares: *spares, Mode: mode,
				Replacements: *rounds, ChurnPeriod: *period, Seed: *seed,
				Record: rec && mode == dvs.ModeDynamic,
			})
			if err != nil {
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
			if res.Trace != nil {
				trace = res.Trace
			}
		}
	case "cascade":
		res, err := sim.PartitionCascade(sim.CascadeConfig{
			Processes: *procs, Rounds: *rounds, RoundPeriod: *period, Seed: *seed,
			Record: rec,
		})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		for _, v := range res.Primaries {
			fmt.Printf("  primary %s\n", v)
		}
		trace = res.Trace
	case "throughput":
		res, err := sim.Throughput(sim.ThroughputConfig{
			Processes: *procs, Duration: *duration, Seed: *seed, Record: rec,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		trace = res.Trace
	case "recovery":
		res, err := sim.Recovery(sim.RecoveryConfig{Processes: *procs, Seed: *seed, Record: rec})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		trace = res.Trace
	case "ablation":
		for _, disable := range []bool{false, true} {
			res, err := sim.RegisterAblation(sim.AblationConfig{
				Processes: *procs, Rounds: *rounds, RoundPeriod: *period,
				DisableReg: disable, Seed: *seed,
				Record: rec && !disable,
			})
			if err != nil {
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
			if res.Trace != nil {
				trace = res.Trace
			}
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	if rec {
		if trace == nil {
			return errors.New("scenario produced no trace")
		}
		if err := dvs.WriteTrace(*record, trace); err != nil {
			return err
		}
		fmt.Printf("recorded %d node trace(s) to %s\n", len(trace), *record)
		return report(dvs.ReplayTrace(trace))
	}
	return nil
}

// report prints the conformance replay outcome and returns its error (nil
// when the trace replays cleanly and satisfies every invariant).
func report(rep *dvs.ConformanceReport) error {
	fmt.Printf("conformance: %s\n", rep)
	for _, d := range rep.Divergences {
		fmt.Printf("  divergence: %s\n", d)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	return rep.Err()
}
