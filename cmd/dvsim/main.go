// Command dvsim runs the runtime-stack experiment scenarios from the shell
// and prints the result rows recorded in EXPERIMENTS.md. It can also record
// the protocol-core traces of a run and replay them through the
// machine-checked cores (-record / -replay), turning any scenario into a
// trace-conformance check.
//
// Traces are recorded as a chunked on-disk stream: the recorder spills a
// segment every few thousand macro-steps, so its memory stays bounded no
// matter how long the run is, and the replayer checks the paper's
// invariants incrementally at every chunk boundary. -replay accepts both a
// chunked trace directory and a legacy single-file trace written by
// dvs.WriteTrace.
//
// Usage:
//
//	dvsim -scenario availability|cascade|throughput|recovery|ablation|sharded [flags]
//	dvsim -scenario cascade -record tracedir    # run, stream, verify, keep
//	dvsim -replay tracedir                      # re-check a recorded trace
//	dvsim -scenario throughput -check           # run the online checker (E13)
//	dvsim -scenario sharded -groups 4 -crossfrac 0.1 -record tracedir  # E14
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	dvs "repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "availability", "availability, cascade, throughput, recovery, ablation, or sharded")
		procs    = flag.Int("procs", 5, "group size")
		groups   = flag.Int("groups", 2, "independent groups (sharded)")
		crossfr  = flag.Float64("crossfrac", 0.1, "cross-group multicast fraction (sharded)")
		spares   = flag.Int("spares", 5, "spare processes (availability)")
		rounds   = flag.Int("rounds", 6, "rounds / replacements")
		duration = flag.Duration("duration", 500*time.Millisecond, "pump duration (throughput)")
		period   = flag.Duration("period", 150*time.Millisecond, "churn/round period")
		seed     = flag.Int64("seed", 1, "seed")
		record   = flag.String("record", "", "stream protocol traces to this directory (chunked segments), then verify conformance; scenarios with a static variant record it to <dir>-static")
		traceWin = flag.Int("trace-window", 0, "macro-steps per trace chunk (0 = default)")
		replay   = flag.String("replay", "", "replay a recorded trace (chunked directory or legacy single file) through the protocol cores and check conformance (ignores -scenario)")
		check    = flag.Bool("check", false, "run the in-process sampled conformance checker during the run and report its overhead (throughput scenario)")
		checkWin = flag.Int("check-window", 0, "online checker: macro-steps re-stepped per sample (0 = default)")
		checkEvr = flag.Int("check-every", 0, "online checker: sample every this many macro-steps (0 = default)")
	)
	flag.Parse()

	if *replay != "" {
		return replayPath(*replay)
	}

	// The sharded scenario records to a sharded trace directory (one
	// group-tagged chunked stream per group plus the multicast logs), not a
	// single stream, so it branches before the stream is created.
	if *scenario == "sharded" {
		res, err := sim.Sharded(sim.ShardedConfig{
			Processes: *procs, Groups: *groups, Duration: *duration,
			CrossFrac: *crossfr, Seed: *seed, StreamDir: *record,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		if !res.Consistent {
			return fmt.Errorf("sharded run inconsistent: %s", res)
		}
		if *record != "" {
			fmt.Printf("recorded sharded trace to %s\n", *record)
			return replayPath(*record)
		}
		return nil
	}

	var stream *dvs.TraceStream
	if *record != "" {
		var err error
		stream, err = dvs.NewTraceStream(*record, dvs.TraceStreamOptions{WindowSteps: *traceWin})
		if err != nil {
			return err
		}
	}
	var online *dvs.OnlineCheckConfig
	if *check {
		online = &dvs.OnlineCheckConfig{Window: *checkWin, Every: *checkEvr}
	}
	// skipRecord warns when a variant of the scenario cannot be recorded, so
	// "-record" is never silently ignored: the replayer models registration,
	// which the disabled-registration ablation departs from.
	skipRecord := func(variant, why string) {
		if stream != nil {
			fmt.Fprintf(os.Stderr, "dvsim: -record: not recording the %s variant (%s)\n", variant, why)
		}
	}
	// One stream holds exactly one run (its header registers each process
	// once), so scenarios that run both modes record the static variant to a
	// sibling "<dir>-static" trace and replay it separately.
	staticDir := ""

	switch *scenario {
	case "availability":
		for _, mode := range []dvs.Mode{dvs.ModeDynamic, dvs.ModeStatic} {
			cfg := sim.AvailabilityConfig{
				Active: *procs, Spares: *spares, Mode: mode,
				Replacements: *rounds, ChurnPeriod: *period, Seed: *seed,
			}
			var sstream *dvs.TraceStream
			if mode == dvs.ModeDynamic {
				cfg.Stream = stream
			} else if *record != "" {
				staticDir = *record + "-static"
				var err error
				sstream, err = dvs.NewTraceStream(staticDir, dvs.TraceStreamOptions{WindowSteps: *traceWin})
				if err != nil {
					return err
				}
				cfg.Stream = sstream
			}
			res, err := sim.Availability(cfg)
			if err != nil {
				if sstream != nil {
					sstream.Close()
				}
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
			if sstream != nil {
				if err := sstream.Close(); err != nil {
					return fmt.Errorf("sealing static trace stream: %w", err)
				}
			}
		}
	case "cascade":
		res, err := sim.PartitionCascade(sim.CascadeConfig{
			Processes: *procs, Rounds: *rounds, RoundPeriod: *period, Seed: *seed,
			Stream: stream,
		})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		for _, v := range res.Primaries {
			fmt.Printf("  primary %s\n", v)
		}
	case "throughput":
		res, err := sim.Throughput(sim.ThroughputConfig{
			Processes: *procs, Duration: *duration, Seed: *seed,
			Stream: stream, Online: online,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		if online != nil {
			cs := res.Check
			fmt.Printf("  check: %d checks over %d steps (%d re-stepped), %d divergences, %d violations, %.2fms total, %.2fms max\n",
				cs.Checks, cs.Steps, cs.StepsChecked, cs.Divergences, cs.Violations,
				float64(cs.CheckNanos)/1e6, float64(cs.MaxCheckNanos)/1e6)
			if cs.LastError != "" {
				return fmt.Errorf("online checker: %s", cs.LastError)
			}
		}
	case "recovery":
		res, err := sim.Recovery(sim.RecoveryConfig{Processes: *procs, Seed: *seed, Stream: stream})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
	case "ablation":
		for _, disable := range []bool{false, true} {
			cfg := sim.AblationConfig{
				Processes: *procs, Rounds: *rounds, RoundPeriod: *period,
				DisableReg: disable, Seed: *seed,
			}
			if !disable {
				cfg.Stream = stream
			} else {
				skipRecord("disabled-registration", "the ablation departs from the replayer's registration model")
			}
			res, err := sim.RegisterAblation(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	if stream != nil {
		if err := stream.Close(); err != nil {
			return fmt.Errorf("sealing trace stream: %w", err)
		}
		fmt.Printf("recorded chunked trace to %s\n", *record)
		if err := replayPath(*record); err != nil {
			return err
		}
		if staticDir != "" {
			fmt.Printf("recorded static-variant trace to %s\n", staticDir)
			return replayPath(staticDir)
		}
	}
	return nil
}

// replayPath re-checks a recorded trace: a directory holding group-NN
// subdirectories is a sharded trace, any other directory a single chunked
// stream, and a file a legacy in-memory trace.
func replayPath(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() {
		if gi, err := os.Stat(filepath.Join(path, "group-00")); err == nil && gi.IsDir() {
			rep, err := dvs.ReplayShardedTrace(path)
			if err != nil {
				return err
			}
			fmt.Printf("conformance: %s\n", rep)
			return rep.Err()
		}
		rep, err := dvs.ReplayTraceStream(path)
		if err != nil {
			return err
		}
		return reportStream(rep)
	}
	logs, err := dvs.ReadTrace(path)
	if err != nil {
		return err
	}
	return report(dvs.ReplayTrace(logs))
}

// report prints the conformance replay outcome and returns its error (nil
// when the trace replays cleanly and satisfies every invariant).
func report(rep *dvs.ConformanceReport) error {
	fmt.Printf("conformance: %s\n", rep)
	for _, d := range rep.Divergences {
		fmt.Printf("  divergence: %s\n", d)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	return rep.Err()
}

// reportStream prints the streamed conformance outcome, including chunk
// accounting and truncation status, and returns its error.
func reportStream(rep *dvs.StreamConformanceReport) error {
	fmt.Printf("conformance: %s\n", rep)
	for _, m := range rep.Malformed {
		fmt.Printf("  malformed: %s\n", m)
	}
	for _, d := range rep.Divergences {
		fmt.Printf("  divergence: %s\n", d)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if rep.Truncated != "" {
		fmt.Printf("  truncated: %s\n", rep.Truncated)
	}
	return rep.Err()
}
