// Command dvsim runs the runtime-stack experiment scenarios from the shell
// and prints the result rows recorded in EXPERIMENTS.md.
//
// Usage:
//
//	dvsim -scenario availability|cascade|throughput|recovery|ablation [flags]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dvs "repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "availability", "availability, cascade, throughput, recovery, or ablation")
		procs    = flag.Int("procs", 5, "group size")
		spares   = flag.Int("spares", 5, "spare processes (availability)")
		rounds   = flag.Int("rounds", 6, "rounds / replacements")
		duration = flag.Duration("duration", 500*time.Millisecond, "pump duration (throughput)")
		period   = flag.Duration("period", 150*time.Millisecond, "churn/round period")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	switch *scenario {
	case "availability":
		for _, mode := range []dvs.Mode{dvs.ModeDynamic, dvs.ModeStatic} {
			res, err := sim.Availability(sim.AvailabilityConfig{
				Active: *procs, Spares: *spares, Mode: mode,
				Replacements: *rounds, ChurnPeriod: *period, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
		}
	case "cascade":
		res, err := sim.PartitionCascade(sim.CascadeConfig{
			Processes: *procs, Rounds: *rounds, RoundPeriod: *period, Seed: *seed,
		})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
		for _, v := range res.Primaries {
			fmt.Printf("  primary %s\n", v)
		}
	case "throughput":
		res, err := sim.Throughput(sim.ThroughputConfig{
			Processes: *procs, Duration: *duration, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
	case "recovery":
		res, err := sim.Recovery(sim.RecoveryConfig{Processes: *procs, Seed: *seed})
		if err != nil {
			return fmt.Errorf("%w (result %s)", err, res)
		}
		fmt.Println(res)
		fmt.Printf("  net: %s\n", res.Run)
	case "ablation":
		for _, disable := range []bool{false, true} {
			res, err := sim.RegisterAblation(sim.AblationConfig{
				Processes: *procs, Rounds: *rounds, RoundPeriod: *period,
				DisableReg: disable, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res)
			fmt.Printf("  net: %s\n", res.Run)
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	return nil
}
