// Command dvslint runs the project's domain-specific static-analysis suite
// (internal/lint) over the given package patterns and reports every
// violation of the automaton discipline: fingerprint completeness, deep
// clones, model determinism, read-only Shared views, and canonical
// fingerprint iteration order. See DESIGN.md §6.4.
//
// Usage:
//
//	go run ./cmd/dvslint [-list] [-json] [-only names] [-skip names] [-dir path] [packages...]
//
// With no patterns it analyzes ./.... -only and -skip take comma-separated
// analyzer names (see -list) and select a subset of the suite; -dir loads
// the patterns from another module directory (used by the CI smoke that
// points the linter at the seeded-bad-edit fixtures). Exit status: 0 clean,
// 1 diagnostics reported, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skipFlag := flag.String("skip", "", "comma-separated analyzer names to exclude")
	dirFlag := flag.String("dir", ".", "directory to resolve package patterns in")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(analyzers, *onlyFlag, *skipFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvslint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := filepath.Abs(*dirFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvslint:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "dvslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvslint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers applies the -only and -skip selections. An unknown name in
// either list is a usage error naming the valid roster: a typo must not
// silently run the full suite (or none of it).
func selectAnalyzers(all []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	roster := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		roster = append(roster, a.Name)
	}
	parse := func(list, flagName string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (valid: %s)", flagName, name, strings.Join(roster, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only, "only")
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip, "skip")
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
