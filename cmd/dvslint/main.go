// Command dvslint runs the project's domain-specific static-analysis suite
// (internal/lint) over the given package patterns and reports every
// violation of the automaton discipline: fingerprint completeness, deep
// clones, model determinism, read-only Shared views, and canonical
// fingerprint iteration order. See DESIGN.md §6.4.
//
// Usage:
//
//	go run ./cmd/dvslint [-list] [-json] [packages...]
//
// With no patterns it analyzes ./.... Exit status: 0 clean, 1 diagnostics
// reported, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvslint:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "dvslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvslint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
