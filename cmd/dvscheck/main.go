// Command dvscheck runs the specification-layer checks from the shell: the
// executable VS/DVS/TO automata are driven through seeded pseudo-random
// executions while every invariant from the paper is asserted at every
// reachable state, and the two refinement theorems (5.9 and 6.4) are
// verified step by step.
//
// Seeds are fanned out across a worker pool (-parallel, default one worker
// per GOMAXPROCS); every seed runs a fresh automaton and a fresh
// environment, so a failure is always reported for the lowest failing seed
// and reproduces with -seeds 1 -seed N at any worker count.
//
// The "explore" check is exhaustive rather than seeded: it model-checks a
// small fixed DVS-IMPL configuration by breadth-first search, so its state
// and edge counts are identical at every -parallel setting.
//
// The "explore-deep" check is the E12 configuration: the same exhaustive
// BFS an order of magnitude past the fixed "explore" bounds, with optional
// symmetry reduction (-symmetry explores one state per process-permutation
// orbit; -audit-symmetry cross-checks the orbit representatives).
//
// Usage:
//
//	dvscheck [-check all|vs|dvs|refinement|to|explore|explore-deep]
//	         [-procs N] [-steps N] [-seeds N] [-seed S] [-parallel N]
//	         [-depth N] [-symmetry] [-audit-symmetry] [-refinement] [-v]
//	         [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	dvs "repro"
	"repro/internal/ioa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		check      = flag.String("check", "all", "which check to run: all, vs, dvs, refinement, to, explore")
		procs      = flag.Int("procs", 4, "universe size")
		steps      = flag.Int("steps", 500, "steps per execution")
		seeds      = flag.Int("seeds", 10, "number of seeded executions")
		seed       = flag.Int64("seed", 0, "base seed")
		parallel   = flag.Int("parallel", 0, "seed fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		depth      = flag.Int("depth", 0, "explore-deep: BFS depth bound (0 = default 11)")
		symmetry   = flag.Bool("symmetry", false, "explore-deep: explore one state per process-permutation orbit")
		auditSym   = flag.Bool("audit-symmetry", false, "explore-deep: verify orbit representatives (implies -symmetry)")
		refinement = flag.Bool("refinement", false, "explore-deep: also check the Figure 4 correspondence on every edge")
		verbose    = flag.Bool("v", false, "print per-check work reports (executions, steps, states, invariant evals, steps/s, allocation)")
		findings   = flag.Bool("findings", false, "reproduce the documented paper discrepancies F1-F4")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvscheck: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvscheck: memprofile:", err)
			}
		}()
	}

	cfg := dvs.CheckConfig{Procs: *procs, Steps: *steps, Seeds: *seeds, Seed: *seed, Parallel: *parallel}
	if *findings {
		found, err := dvs.DemonstrateFindings(cfg)
		for _, f := range found {
			fmt.Printf("%s  %s\n    witness: %s\n", f.ID, f.Title, f.Witness)
		}
		return err
	}
	type entry struct {
		name string
		fn   func(dvs.CheckConfig) (ioa.CheckReport, error)
	}
	all := []entry{
		{"vs", dvs.CheckVSInvariants},
		{"dvs", dvs.CheckDVSInvariants},
		{"refinement", dvs.CheckDVSRefinement},
		{"to", dvs.CheckTOTraceInclusion},
	}
	switch *check {
	case "explore":
		// Exhaustive exploration is opt-in: it ignores -procs/-steps/-seeds
		// and is not part of "all".
		all = []entry{{"explore", dvs.CheckExplore}}
	case "explore-deep":
		all = []entry{{"explore-deep", func(cfg dvs.CheckConfig) (ioa.CheckReport, error) {
			return dvs.CheckExploreDeep(dvs.ExploreDeepConfig{
				MaxDepth:      *depth,
				Parallel:      cfg.Parallel,
				Symmetry:      *symmetry,
				AuditSymmetry: *auditSym,
				Refinement:    *refinement,
			})
		}}}
	}
	ran := 0
	var total ioa.CheckReport
	start := time.Now()
	for _, e := range all {
		if *check != "all" && *check != e.name {
			continue
		}
		ran++
		rep, err := e.fn(cfg)
		total.Merge(rep)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if e.name == "explore" || e.name == "explore-deep" {
			fmt.Printf("%-11s OK  (exhaustive BFS, %d workers, %v)\n",
				e.name, ioa.Workers(*parallel), rep.Wall.Round(time.Millisecond))
		} else {
			fmt.Printf("%-11s OK  (%d procs × %d seeds × %d steps, %d workers, %v)\n",
				e.name, *procs, *seeds, *steps, ioa.Workers(*parallel), rep.Wall.Round(time.Millisecond))
		}
		if *verbose {
			fmt.Printf("            %s\n", rep)
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown check %q", *check)
	}
	if *verbose && ran > 1 {
		total.Wall = time.Since(start)
		fmt.Printf("total       %s\n", total)
	}
	return nil
}
