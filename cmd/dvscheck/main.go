// Command dvscheck runs the specification-layer checks from the shell: the
// executable VS/DVS/TO automata are driven through seeded pseudo-random
// executions while every invariant from the paper is asserted at every
// reachable state, and the two refinement theorems (5.9 and 6.4) are
// verified step by step.
//
// Usage:
//
//	dvscheck [-check all|vs|dvs|refinement|to] [-procs N] [-steps N] [-seeds N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dvs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		check    = flag.String("check", "all", "which check to run: all, vs, dvs, refinement, to")
		procs    = flag.Int("procs", 4, "universe size")
		steps    = flag.Int("steps", 500, "steps per execution")
		seeds    = flag.Int("seeds", 10, "number of seeded executions")
		seed     = flag.Int64("seed", 0, "base seed")
		findings = flag.Bool("findings", false, "reproduce the documented paper discrepancies F1-F4")
	)
	flag.Parse()

	cfg := dvs.CheckConfig{Procs: *procs, Steps: *steps, Seeds: *seeds, Seed: *seed}
	if *findings {
		found, err := dvs.DemonstrateFindings(cfg)
		for _, f := range found {
			fmt.Printf("%s  %s\n    witness: %s\n", f.ID, f.Title, f.Witness)
		}
		return err
	}
	type entry struct {
		name string
		fn   func(dvs.CheckConfig) error
	}
	all := []entry{
		{"vs", dvs.CheckVSInvariants},
		{"dvs", dvs.CheckDVSInvariants},
		{"refinement", dvs.CheckDVSRefinement},
		{"to", dvs.CheckTOTraceInclusion},
	}
	ran := 0
	for _, e := range all {
		if *check != "all" && *check != e.name {
			continue
		}
		ran++
		start := time.Now()
		if err := e.fn(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("%-11s OK  (%d procs × %d seeds × %d steps, %v)\n",
			e.name, *procs, *seeds, *steps, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		return fmt.Errorf("unknown check %q", *check)
	}
	return nil
}
