// Command dvscheck runs the specification-layer checks from the shell: the
// executable VS/DVS/TO automata are driven through seeded pseudo-random
// executions while every invariant from the paper is asserted at every
// reachable state, and the two refinement theorems (5.9 and 6.4) are
// verified step by step.
//
// Seeds are fanned out across a worker pool (-parallel, default one worker
// per GOMAXPROCS); every seed runs a fresh automaton and a fresh
// environment, so a failure is always reported for the lowest failing seed
// and reproduces with -seeds 1 -seed N at any worker count.
//
// Usage:
//
//	dvscheck [-check all|vs|dvs|refinement|to] [-procs N] [-steps N]
//	         [-seeds N] [-seed S] [-parallel N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dvs "repro"
	"repro/internal/ioa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dvscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		check    = flag.String("check", "all", "which check to run: all, vs, dvs, refinement, to")
		procs    = flag.Int("procs", 4, "universe size")
		steps    = flag.Int("steps", 500, "steps per execution")
		seeds    = flag.Int("seeds", 10, "number of seeded executions")
		seed     = flag.Int64("seed", 0, "base seed")
		parallel = flag.Int("parallel", 0, "seed fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		verbose  = flag.Bool("v", false, "print per-check work reports (executions, steps, states, invariant evals, steps/s)")
		findings = flag.Bool("findings", false, "reproduce the documented paper discrepancies F1-F4")
	)
	flag.Parse()

	cfg := dvs.CheckConfig{Procs: *procs, Steps: *steps, Seeds: *seeds, Seed: *seed, Parallel: *parallel}
	if *findings {
		found, err := dvs.DemonstrateFindings(cfg)
		for _, f := range found {
			fmt.Printf("%s  %s\n    witness: %s\n", f.ID, f.Title, f.Witness)
		}
		return err
	}
	type entry struct {
		name string
		fn   func(dvs.CheckConfig) (ioa.CheckReport, error)
	}
	all := []entry{
		{"vs", dvs.CheckVSInvariants},
		{"dvs", dvs.CheckDVSInvariants},
		{"refinement", dvs.CheckDVSRefinement},
		{"to", dvs.CheckTOTraceInclusion},
	}
	ran := 0
	var total ioa.CheckReport
	start := time.Now()
	for _, e := range all {
		if *check != "all" && *check != e.name {
			continue
		}
		ran++
		rep, err := e.fn(cfg)
		total.Merge(rep)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("%-11s OK  (%d procs × %d seeds × %d steps, %d workers, %v)\n",
			e.name, *procs, *seeds, *steps, ioa.Workers(*parallel), rep.Wall.Round(time.Millisecond))
		if *verbose {
			fmt.Printf("            %s\n", rep)
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown check %q", *check)
	}
	if *verbose && ran > 1 {
		total.Wall = time.Since(start)
		fmt.Printf("total       %s\n", total)
	}
	return nil
}
