// Benchmarks regenerating the experiment suite of EXPERIMENTS.md. The paper
// is a formal-methods paper with no measurement tables, so each benchmark
// corresponds to one of the experiments E1–E8 defined in DESIGN.md —
// mechanized theorem checks (E1–E3), the availability and recovery claims
// that motivate dynamic primaries (E4–E8) — plus micro-benchmarks of the
// hot data structures. Custom metrics (availability fraction, primaries
// formed, recovery latency) are attached via b.ReportMetric.
package dvs_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"math/rand"

	dvs "repro"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/naive"
	"repro/internal/sim"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// --- E1: specification invariants (Figures 1 and 2, Invariants 3.1/4.1/4.2) ---
//
// E1–E3 each run a serial and a parallel variant over the same seed set so
// the speedup of the worker-pool seed fan-out is directly visible (compare
// parallel=1 with parallel=GOMAXPROCS ns/op). Both variants check the same
// executions and report identical failures.

// benchModes are the fan-out widths benchmarked for every theorem check:
// serial, plus one worker per core (on a single-core machine the pool is
// still exercised with 4 workers so the concurrent path stays covered,
// though no speedup is possible there).
func benchModes() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1, 4}
}

func BenchmarkE1SpecInvariants(b *testing.B) {
	for _, par := range benchModes() {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := dvs.CheckConfig{Procs: 4, Steps: 400, Seeds: 8, Parallel: par}
			b.ReportAllocs()
			var steps, states int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				rep, err := dvs.CheckVSInvariants(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps, states = steps+rep.Steps, states+rep.States
				if rep, err = dvs.CheckDVSInvariants(cfg); err != nil {
					b.Fatal(err)
				}
				steps, states = steps+rep.Steps, states+rep.States
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(states)/float64(b.N), "states")
		})
	}
}

// --- E2: Theorem 5.9 (DVS-IMPL refines DVS, Figure 4 mapping) ---

func BenchmarkE2RefinementDVS(b *testing.B) {
	for _, par := range benchModes() {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := dvs.CheckConfig{Procs: 4, Steps: 300, Seeds: 8, Parallel: par}
			b.ReportAllocs()
			var steps, states int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				rep, err := dvs.CheckDVSRefinement(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps, states = steps+rep.Steps, states+rep.States
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(states)/float64(b.N), "states")
		})
	}
}

// --- E3: Theorem 6.4 (TO-IMPL's traces are TO traces) ---

func BenchmarkE3RefinementTO(b *testing.B) {
	for _, par := range benchModes() {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := dvs.CheckConfig{Procs: 4, Steps: 300, Seeds: 8, Parallel: par}
			b.ReportAllocs()
			var steps, states int64
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				rep, err := dvs.CheckTOTraceInclusion(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps, states = steps+rep.Steps, states+rep.States
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(states)/float64(b.N), "states")
		})
	}
}

// --- E4: availability under churn, dynamic vs static primaries ---

func benchAvailability(b *testing.B, mode dvs.Mode) {
	var frac float64
	var finalUp int
	for i := 0; i < b.N; i++ {
		res, err := sim.Availability(sim.AvailabilityConfig{
			Active: 5, Spares: 5, Mode: mode,
			Replacements: 5,
			ChurnPeriod:  100 * time.Millisecond,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		frac += res.Fraction()
		if res.FinalAvailable {
			finalUp++
		}
	}
	b.ReportMetric(frac/float64(b.N), "availability")
	b.ReportMetric(float64(finalUp)/float64(b.N), "final-alive")
}

func BenchmarkE4AvailabilityDynamic(b *testing.B) { benchAvailability(b, dvs.ModeDynamic) }
func BenchmarkE4AvailabilityStatic(b *testing.B)  { benchAvailability(b, dvs.ModeStatic) }

// --- E5: partition cascades and the primary intersection chain ---

func BenchmarkE5PartitionCascade(b *testing.B) {
	var primaries float64
	for i := 0; i < b.N; i++ {
		res, err := sim.PartitionCascade(sim.CascadeConfig{
			Processes: 6, Rounds: 6,
			RoundPeriod: 100 * time.Millisecond,
			Seed:        int64(i) + 3,
		})
		if err != nil {
			b.Fatalf("%v (result %s)", err, res)
		}
		if !res.ChainOK {
			b.Fatal("intersection chain violated")
		}
		primaries += float64(len(res.Primaries))
	}
	b.ReportMetric(primaries/float64(b.N), "primaries/run")
}

// --- E6: the REGISTER mechanism (ambiguity growth ablation) ---

func BenchmarkE6RegisterAblation(b *testing.B) {
	var withAmb, withoutAmb float64
	for i := 0; i < b.N; i++ {
		with, err := sim.RegisterAblation(sim.AblationConfig{
			Processes: 5, Rounds: 4, RoundPeriod: 100 * time.Millisecond, Seed: int64(i) + 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		without, err := sim.RegisterAblation(sim.AblationConfig{
			Processes: 5, Rounds: 4, RoundPeriod: 100 * time.Millisecond, Seed: int64(i) + 6,
			DisableReg: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		withAmb += float64(with.MaxAmbiguous)
		withoutAmb += float64(without.MaxAmbiguous)
	}
	b.ReportMetric(withAmb/float64(b.N), "maxAmb-with-register")
	b.ReportMetric(withoutAmb/float64(b.N), "maxAmb-without-register")
}

// --- E7: local majority check vs global intersection ---

func BenchmarkE7MajorityCheck(b *testing.B) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	var proposed, accepted float64
	for i := 0; i < b.N; i++ {
		im := core.NewImpl(universe, v0)
		ex := &ioa.Executor{Steps: 600, Seed: int64(i)}
		if _, err := ex.Run(im, core.NewEnv(int64(i)+17, universe), nil); err != nil {
			b.Fatal(err)
		}
		// Views created by VS vs views that became primaries.
		proposed += float64(len(im.VS().Created()) - 1)
		accepted += float64(len(im.Att()) - 1)
		// The global guarantee the local check buys (Invariant 5.6).
		if err := core.CheckInvariant56(im); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(proposed/float64(b.N), "vs-views/run")
	b.ReportMetric(accepted/float64(b.N), "primaries/run")
}

// --- E8: TO service throughput and post-heal recovery ---

func BenchmarkE8TOThroughput(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Throughput(sim.ThroughputConfig{
					Processes: n, Duration: 300 * time.Millisecond, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Consistent {
					b.Fatal("inconsistent delivery")
				}
				rate += res.PerSecond()
			}
			b.ReportMetric(rate/float64(b.N), "msg/s")
		})
	}
}

// BenchmarkE14ShardedThroughput measures aggregate totally-ordered delivery
// rate against the number of independent groups at a fixed 10% cross-group
// multicast fraction (E14). Keyed traffic routes by consistent hash onto
// per-group stacks that order independently, so on a multi-core machine the
// aggregate rate should scale with the group count; the cross-group
// fraction keeps the atomic multicast (whose shared messages serialize
// across groups) in the measured path. Every run's per-group total orders,
// multicast agreement, and cross-group partial order are verified.
func BenchmarkE14ShardedThroughput(b *testing.B) {
	for _, groups := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Sharded(sim.ShardedConfig{
					Processes: 4, Groups: groups, Duration: 300 * time.Millisecond,
					CrossFrac: 0.1, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Consistent {
					b.Fatal("inconsistent sharded delivery")
				}
				rate += res.PerSecond()
			}
			b.ReportMetric(rate/float64(b.N), "msg/s")
		})
	}
}

func BenchmarkE8Recovery(b *testing.B) {
	for _, n := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var tPrimary, tMessage, msgs float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Recovery(sim.RecoveryConfig{Processes: n, Seed: int64(i)})
				if err != nil {
					b.Fatalf("%v (result %s)", err, res)
				}
				tPrimary += res.TimeToPrimary.Seconds() * 1e3
				tMessage += res.TimeToMessage.Seconds() * 1e3
				msgs += float64(res.ExtraMessages)
			}
			b.ReportMetric(tPrimary/float64(b.N), "ms-to-primary")
			b.ReportMetric(tMessage/float64(b.N), "ms-to-message")
			b.ReportMetric(msgs/float64(b.N), "net-msgs")
		})
	}
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkViewMajorityIntersection(b *testing.B) {
	a := types.RangeProcSet(64)
	c := types.NewProcSet()
	for i := 32; i < 96; i++ {
		c.Add(types.ProcID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.MajorityOf(a) || c.MajorityOf(a) == a.MajorityOf(c) && false {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkLabelSort(b *testing.B) {
	base := make([]types.Label, 256)
	for i := range base {
		base[i] = types.Label{
			ID:     types.ViewID{Seq: uint64(i % 7), Origin: types.ProcID(i % 5)},
			Seqno:  257 - i,
			Origin: types.ProcID(i % 11),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := types.CloneSeq(base)
		types.SortLabels(ls)
	}
}

func BenchmarkGotStateFullOrder(b *testing.B) {
	gs := make(types.GotState, 5)
	for p := types.ProcID(0); p < 5; p++ {
		con := make(types.Content, 64)
		ord := make([]types.Label, 0, 64)
		for i := 0; i < 64; i++ {
			l := types.Label{ID: types.ViewID{Seq: uint64(p)}, Seqno: i + 1, Origin: p}
			con[l] = "m"
			ord = append(ord, l)
		}
		gs[p] = types.Summary{Con: con, Ord: ord, Next: 1, High: types.ViewID{Seq: uint64(p)}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := gs.FullOrder(); len(got) == 0 {
			b.Fatal("empty order")
		}
	}
}

func BenchmarkFabricSend(b *testing.B) {
	cl, err := dvs.NewCluster(dvs.Config{Processes: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		cl.Process(0).Broadcast("x")
		done++
		if done%256 == 0 {
			drainN(cl.Process(0), 256)
		}
	}
}

func drainN(p *dvs.Process, n int) {
	for i := 0; i < n; i++ {
		select {
		case <-p.Deliveries():
		case <-time.After(2 * time.Second):
			return
		}
	}
}

func BenchmarkImplFingerprint(b *testing.B) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	im := core.NewImpl(universe, v0)
	ex := &ioa.Executor{Steps: 300, Seed: 5}
	if _, err := ex.Run(im, core.NewEnv(5, universe), nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f ioa.Fingerprinter
	for i := 0; i < b.N; i++ {
		f.Reset()
		im.Fingerprint(&f)
		if (f.Sum() == ioa.Fp{}) {
			b.Fatal("empty fingerprint")
		}
	}
}

// --- E12: deep exhaustive exploration (scaled bounds, symmetry reduction) ---

// E12 constants: the deterministic counts of the CheckExploreDeep defaults.
// Every variant asserts them, so the benchmark doubles as a determinism
// check — the parallel BFS and the symmetry-reduced BFS must visit exactly
// the same space on every run at every worker count.
const (
	e12States    = 38566
	e12Edges     = 108312
	e12SymStates = 6527
	e12SymEdges  = 18553
)

func BenchmarkE12DeepExplore(b *testing.B) {
	for _, par := range benchModes() {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			var steps int64
			for i := 0; i < b.N; i++ {
				rep, err := dvs.CheckExploreDeep(dvs.ExploreDeepConfig{Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
				if rep.States != e12States || rep.Steps != e12Edges {
					b.Fatalf("nondeterministic exploration: %d states / %d edges, want %d / %d",
						rep.States, rep.Steps, e12States, e12Edges)
				}
				steps += rep.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(e12States), "states")
		})
	}
	b.Run("symmetry", func(b *testing.B) {
		b.ReportAllocs()
		var steps int64
		for i := 0; i < b.N; i++ {
			rep, err := dvs.CheckExploreDeep(dvs.ExploreDeepConfig{Symmetry: true})
			if err != nil {
				b.Fatal(err)
			}
			if rep.States != e12SymStates || rep.Steps != e12SymEdges {
				b.Fatalf("nondeterministic reduced exploration: %d states / %d edges, want %d / %d",
					rep.States, rep.Steps, e12SymStates, e12SymEdges)
			}
			steps += rep.Steps
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
		b.ReportMetric(float64(e12SymStates), "states")
		b.ReportMetric(float64(e12States)/float64(e12SymStates), "state-reduction")
	})
}

// --- E10: why information exchange matters (naive dynamic voting baseline) ---

func BenchmarkE10NaiveSplitBrain(b *testing.B) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(universe)
	splits := 0
	runs := 0
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 30; seed++ {
			im := naive.NewImpl(universe, v0)
			env := naiveEnv(universe, seed)
			ex := &ioa.Executor{Steps: 300, Seed: seed}
			if _, err := ex.Run(im, env, nil); err != nil {
				b.Fatal(err)
			}
			runs++
			if im.CheckIntersectionChain() != nil {
				splits++
			}
		}
	}
	b.ReportMetric(float64(splits)/float64(runs), "splitbrain-fraction")
}

func naiveEnv(universe types.ProcSet, seed int64) ioa.Environment {
	rng := rand.New(rand.NewSource(seed))
	procs := universe.Sorted()
	proposed := 0
	return ioa.EnvironmentFunc(func(a ioa.Automaton) []ioa.Action {
		im, ok := a.(*naive.Impl)
		if !ok || proposed >= 24 {
			return nil
		}
		members := types.RandomSubset(rng, procs)
		var maxID types.ViewID
		for _, v := range im.VS().Created() {
			if maxID.Less(v.ID) {
				maxID = v.ID
			}
		}
		v := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members}
		if !im.VS().CreateViewCandidateOK(v) {
			return nil
		}
		proposed++
		return []ioa.Action{{Name: "vs-createview", Kind: ioa.KindInternal,
			Param: vsspec.CreateViewParam{View: v}}}
	})
}
