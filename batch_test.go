package dvs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/protocol/dvscore"
	"repro/internal/types"
)

// TestBurstDeliveryAccounting floods a cluster with more broadcasts than the
// application-facing delivery channel can hold without draining it, then
// checks that no message was lost silently: every FxDeliver the core emitted
// is either still in the channel or counted in DroppedUp. It also pins that
// the burst actually engaged shell batching — the whole point of pipelined
// load is that payloads outnumber the frames that carried them.
func TestBurstDeliveryAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("burst soak")
	}
	// No process fails in this test, so any suspicion is a false positive
	// caused by scheduler starvation under the burst (the race detector
	// slows the whole stack by an order of magnitude). A generous window
	// keeps the failure detector out of an experiment that measures
	// delivery accounting, not failover.
	cl, err := NewCluster(Config{Processes: 3, Seed: 21, SuspectTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// More than the delivery channel capacity (1<<14), so the undrained
	// consumer overflows it.
	const total = 18000
	for i := 0; i < total; i++ {
		if !cl.Process(0).Broadcast(fmt.Sprintf("b%d", i)) {
			t.Fatalf("broadcast %d failed", i)
		}
	}

	// Wait until process 1 has delivered (or dropped) everything.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ts, _ := cl.Process(1).Stats()
		if ts.Delivered >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivery stalled: %+v", ts)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts, _ := cl.Process(1).Stats()
	drained := 0
	for {
		select {
		case <-cl.Process(1).Deliveries():
			drained++
			continue
		default:
		}
		break
	}
	if uint64(drained)+ts.DroppedUp != ts.Delivered {
		t.Errorf("lost deliveries: drained=%d + DroppedUp=%d != Delivered=%d",
			drained, ts.DroppedUp, ts.Delivered)
	}
	if ts.DroppedUp == 0 {
		t.Errorf("burst of %d did not overflow the channel; counters %+v", total, ts)
	}

	// tob batching must have engaged under pipelined load. (dvsg-level
	// coalescing only triggers on multi-send macro-steps — state exchanges —
	// so no floor is asserted for it here.)
	sender, sdvs := cl.Process(0).Stats()
	if sender.PayloadsOut <= sender.BatchesOut {
		t.Errorf("tob batching idle: %d payloads in %d frames", sender.PayloadsOut, sender.BatchesOut)
	}
	t.Logf("sender tob: %d payloads / %d frames; dvsg: %d payloads / %d frames; receiver dropped %d of %d",
		sender.PayloadsOut, sender.BatchesOut, sdvs.WirePayloads, sdvs.WireFrames, ts.DroppedUp, ts.Delivered)
}

// TestBatchedConformanceSoak runs a recording cluster under pipelined load
// with a partition and heal, and replays the harvested logs through the
// protocol cores. Batches flow through the DVS core as opaque client
// messages and are recorded as such, so this pins two things at once: the
// conformance machinery round-trips types.Batch (deep-copy, gob, MsgKey
// rendering), and a batched execution is divergence-free — the cores cannot
// tell it from an unbatched one.
func TestBatchedConformanceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance soak")
	}
	cl, err := NewCluster(Config{Processes: 3, Seed: 22, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(50 * time.Millisecond)

	msg := 0
	pump := func(from, k int) {
		for j := 0; j < k; j++ {
			cl.Process(from).Broadcast(fmt.Sprintf("s%d", msg))
			msg++
		}
	}
	pump(0, 200)
	pump(1, 200)
	time.Sleep(150 * time.Millisecond)

	cl.Partition([]int{0, 1}, []int{2})
	time.Sleep(150 * time.Millisecond)
	pump(0, 100)
	cl.Heal()
	time.Sleep(400 * time.Millisecond)
	pump(2, 50)
	time.Sleep(300 * time.Millisecond)

	cl.Close()
	logs := cl.TraceLogs()

	// Count batches in the recorded DVS event streams directly.
	batched := 0
	for _, lg := range logs {
		for _, rec := range lg.DVS {
			var m types.Msg
			switch ev := rec.Ev.(type) {
			case dvscore.EvClientSend:
				m = ev.M
			case dvscore.EvVSRecv:
				m = ev.M
			case dvscore.EvVSSafe:
				m = ev.M
			}
			if _, ok := m.(types.Batch); ok {
				batched++
			}
		}
	}
	if batched == 0 {
		t.Error("no types.Batch appeared in the recorded DVS logs; load was not batched")
	}

	rep := ReplayTrace(logs)
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("batched trace conformance: %v (%s)", err, rep)
	}
	t.Logf("conformance: %s (%d batched DVS events)", rep, batched)
}
