// Command replicated-kv builds the application the paper's introduction
// motivates: a replicated database with strong coherence. Every replica
// applies write commands in the single total order provided by the service,
// so reads served by any replica that has applied prefix k reflect exactly
// the first k writes — across partitions, primaries and merges.
//
// The demo writes through different replicas, partitions the network so
// that only the dynamic primary side can commit, heals, and shows all
// replicas converging to identical stores.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	dvs "repro"
)

// store is one replica's key-value state, maintained by applying the
// totally-ordered command stream.
type store struct {
	mu      sync.Mutex
	data    map[string]string
	applied int
}

func newStore() *store { return &store{data: make(map[string]string)} }

// apply executes one command of the form "set <key>=<value>".
func (s *store) apply(cmd string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	rest, ok := strings.CutPrefix(cmd, "set ")
	if !ok {
		return
	}
	k, v, ok := strings.Cut(rest, "=")
	if !ok {
		return
	}
	s.data[k] = v
}

// snapshot renders the store deterministically.
func (s *store) snapshot() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, s.data[k])
	}
	return fmt.Sprintf("{%s} (%d ops)", b.String(), s.applied)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	cl, err := dvs.NewCluster(dvs.Config{Processes: n, Seed: 7})
	if err != nil {
		return err
	}
	defer cl.Close()

	// Each replica is a dvs.StateMachine: the library drives the apply
	// loop over the totally ordered delivery stream.
	stores := make([]*store, n)
	sms := make([]*dvs.StateMachine, n)
	for i := 0; i < n; i++ {
		s := newStore()
		stores[i] = s
		sms[i] = dvs.NewStateMachine(cl.Process(i), func(cmd string, origin dvs.ProcID) {
			s.apply(cmd)
		})
	}
	defer func() {
		for _, sm := range sms {
			sm.Close()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	sms[0].Submit("set color=red")
	sms[3].Submit("set shape=circle")
	time.Sleep(200 * time.Millisecond)

	fmt.Println("== partitioning {0,1,2} | {3,4}; only the primary side commits")
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(200 * time.Millisecond)
	sms[1].Submit("set color=green") // commits in primary {0,1,2}
	sms[4].Submit("set size=XL")     // buffered in the minority
	time.Sleep(300 * time.Millisecond)

	fmt.Println("during partition:")
	for i := 0; i < n; i++ {
		fmt.Printf("  replica %d: %s\n", i, stores[i].snapshot())
	}

	fmt.Println("== healing; the buffered minority write commits after merge")
	cl.Heal()
	time.Sleep(600 * time.Millisecond)

	fmt.Println("after heal:")
	first := ""
	for i := 0; i < n; i++ {
		snap := stores[i].snapshot()
		fmt.Printf("  replica %d: %s\n", i, snap)
		if i == 0 {
			first = snap
		} else if snap != first {
			fmt.Println("  WARNING: replicas diverged!")
		}
	}

	return nil
}
