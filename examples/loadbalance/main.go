// Command loadbalance demonstrates the load-balancing application sketched
// in the paper's discussion (Section 7): work items are deterministically
// sharded over the membership of the current established primary view.
// Because all members agree on the primary view, every item has exactly one
// owner at a time, and churn (partitions, departures, merges) redistributes
// ownership automatically when a new primary is established.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"time"

	dvs "repro"
)

// owner deterministically assigns an item to a member of the view.
func owner(item string, v dvs.View) dvs.ProcID {
	members := v.Members.Sorted()
	h := fnv.New32a()
	h.Write([]byte(item))
	return members[int(h.Sum32())%len(members)]
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 6
	items := []string{"users", "orders", "billing", "search", "mail", "cache", "logs", "feed"}

	cl, err := dvs.NewCluster(dvs.Config{Processes: n, Seed: 11})
	if err != nil {
		return err
	}
	defer cl.Close()
	time.Sleep(150 * time.Millisecond)

	show := func(label string) {
		v, ok := cl.Process(0).CurrentPrimary()
		if !ok {
			fmt.Printf("%s: no primary at process 0\n", label)
			return
		}
		fmt.Printf("%s: primary %s\n", label, v)
		assign := make(map[dvs.ProcID][]string)
		for _, it := range items {
			o := owner(it, v)
			assign[o] = append(assign[o], it)
		}
		for _, m := range v.Members.Sorted() {
			fmt.Printf("  worker %d: %v\n", m, assign[m])
		}
	}

	show("initial")

	fmt.Println("== workers 4 and 5 depart (partition)")
	cl.Partition([]int{0, 1, 2, 3})
	time.Sleep(250 * time.Millisecond)
	show("after departure")

	fmt.Println("== workers return (heal)")
	cl.Heal()
	time.Sleep(250 * time.Millisecond)
	show("after merge")
	return nil
}
