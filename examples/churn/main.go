// Command churn reproduces the paper's motivating claim live (experiment
// E4): under rolling membership replacement, dynamic primaries stay
// available while static majorities of the initial membership die once
// fewer than a majority of the original processes remain.
package main

import (
	"fmt"
	"log"
	"time"

	dvs "repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("rolling replacement of a 5-process group, one member at a time:")
	fmt.Println()
	for _, mode := range []dvs.Mode{dvs.ModeDynamic, dvs.ModeStatic} {
		res, err := sim.Availability(sim.AvailabilityConfig{
			Active:       5,
			Spares:       5,
			Mode:         mode,
			Replacements: 5,
			ChurnPeriod:  150 * time.Millisecond,
			Seed:         1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", res)
	}
	fmt.Println()
	fmt.Println("final=true means a primary still exists after every original member retired.")
	return nil
}
