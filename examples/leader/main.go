// Command leader demonstrates partition-safe leader election on top of
// dynamic primary views: the leader is the minimum-id member of the current
// established primary, so all members of an established primary agree on who leads, and
// crashes or partitions fail over automatically. Watch the stale-belief
// caveat in the output: the crashed process still believes in its old
// leader — stale leaders are harmless only because they cannot commit
// anything through the total order.
package main

import (
	"fmt"
	"log"
	"time"

	dvs "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	cl, err := dvs.NewCluster(dvs.Config{Processes: n, Seed: 13})
	if err != nil {
		return err
	}
	defer cl.Close()

	show := func(label string) {
		fmt.Printf("%s:\n", label)
		for i := 0; i < n; i++ {
			l, ok := cl.Process(i).Leader()
			mark := " "
			if cl.Process(i).IsLeader() {
				mark = "*"
			}
			fmt.Printf("  process %d%s leader=%v (known=%v)\n", i, mark, l, ok)
		}
	}

	waitLeader := func(observer int, want dvs.ProcID) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if l, ok := cl.Process(observer).Leader(); ok && l == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitLeader(4, 0)
	show("initial (0 leads)")

	fmt.Println("== crashing the leader")
	cl.Crash(0)
	waitLeader(4, 1)
	show("after failover (1 leads)")

	fmt.Println("== partitioning {1,2} away from {3,4}")
	cl.Partition([]int{1, 2}, []int{3, 4})
	time.Sleep(300 * time.Millisecond)
	show("during partition (old beliefs persist; neither side forms a new primary)")

	fmt.Println("== healing")
	cl.Heal()
	waitLeader(4, 1)
	show("after heal (1 leads again)")
	return nil
}
