// Command quickstart shows the core of the public API in one minute: start
// a cluster, broadcast totally-ordered messages, partition the network,
// watch the majority side keep working as a dynamic primary, heal, and see
// every process converge on one message order.
package main

import (
	"fmt"
	"log"
	"time"

	dvs "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := dvs.NewCluster(dvs.Config{Processes: 5, Seed: 42})
	if err != nil {
		return err
	}
	defer cl.Close()

	// Give membership a moment to settle, then broadcast from two senders.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		cl.Process(0).Broadcast(fmt.Sprintf("alpha-%d", i))
		cl.Process(4).Broadcast(fmt.Sprintf("omega-%d", i))
	}

	// Partition: {0,1,2} retains a majority of the last primary and keeps
	// operating; {3,4} stalls (its broadcasts are buffered).
	time.Sleep(200 * time.Millisecond)
	fmt.Println("== partitioning {0,1,2} | {3,4}")
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(200 * time.Millisecond)

	cl.Process(1).Broadcast("majority-work")
	cl.Process(3).Broadcast("minority-buffered")
	time.Sleep(200 * time.Millisecond)

	if v, ok := cl.Process(0).CurrentPrimary(); ok {
		fmt.Printf("majority primary: %s (established=%v)\n", v, cl.Process(0).Established())
	}

	fmt.Println("== healing")
	cl.Heal()
	time.Sleep(400 * time.Millisecond)
	cl.Process(2).Broadcast("after-heal")
	time.Sleep(300 * time.Millisecond)

	// Every process delivers the same gap-free prefix of one total order.
	for i := 0; i < 5; i++ {
		p := cl.Process(i)
		var seq []string
		for {
			select {
			case d := <-p.Deliveries():
				seq = append(seq, fmt.Sprintf("%s@%d", d.Payload, d.Origin))
				continue
			default:
			}
			break
		}
		fmt.Printf("process %d delivered: %v\n", i, seq)
	}
	return nil
}
