// Package dvs is a dynamic view-oriented group communication service: a Go
// implementation of De Prisco, Fekete, Lynch and Shvartsman, "A Dynamic
// View-Oriented Group Communication Service" (PODC 1998).
//
// The package offers two things:
//
//   - A runtime stack (Cluster/Process): per-process goroutines over a
//     partitionable in-memory network running membership, a
//     view-synchronous layer (VS), the paper's dynamic primary-view filter
//     (VS-TO-DVS, Figure 3), and the totally-ordered broadcast application
//     (DVS-TO-TO, Figure 5). Applications broadcast payloads and receive a
//     gap-free prefix of a single system-wide total order, across
//     partitions, merges, churn and crashes.
//
//   - A specification layer (Check* functions): executable I/O automata for
//     the paper's VS, DVS and TO specifications, with mechanized checks of
//     every invariant (3.1, 4.1–4.2, 5.1–5.6, 6.1–6.3) and of both
//     refinement theorems (5.9 and 6.4) over seeded random executions.
//
// The filter and application automata that run in the runtime stack are the
// same code that the specification layer verifies.
//
// The mechanization surfaced five discrepancies in the printed paper, each
// reproducible via DemonstrateFindings (or `dvscheck -findings`) and
// documented in EXPERIMENTS.md: the literal dvs-safe precondition is not
// implementable by Figure 3 (F1); the two theorems do not compose without a
// view-synchronous drain rule (F2); Figure 5's LABEL can double-order a
// message (F3); Invariant 5.2(3) as printed is falsifiable (F4); and the
// free choice of recovery representative can reorder confirmed prefixes
// (F5). The
// default configurations use the minimal repairs; the literal figures
// remain available so every claim can be re-checked.
package dvs

import (
	"time"

	"repro/internal/conform"
	"repro/internal/tob"
	"repro/internal/types"
)

// Re-exported fundamental types. ProcID identifies a process; ViewID is a
// totally ordered view identifier; View is a pair of identifier and
// membership set.
type (
	// ProcID identifies a process.
	ProcID = types.ProcID
	// ViewID is a totally ordered view identifier.
	ViewID = types.ViewID
	// View is a view: identifier plus membership.
	View = types.View
	// Delivery is one totally-ordered message handed to the application.
	Delivery = tob.Delivery
	// ViewEvent reports a primary view becoming current or established.
	ViewEvent = tob.ViewEvent
)

// Mode selects the primary-view discipline.
type Mode int

// Modes. ModeDynamic is the paper's contribution: primaries defined
// relative to recent views via majority intersection and registration.
// ModeStatic is the classical baseline: primaries are majorities of the
// static initial membership.
const (
	ModeDynamic Mode = iota + 1
	ModeStatic
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeDynamic:
		return "dynamic"
	case ModeStatic:
		return "static"
	default:
		return "mode?"
	}
}

// Config configures a Cluster.
type Config struct {
	// Processes is the size of the process universe (ids 0..Processes-1).
	Processes int
	// Initial lists the members of the initial view v0. Empty means all
	// processes. Processes outside v0 participate in membership and can
	// join later views — the dynamic universe the paper targets.
	Initial []int
	// Mode selects dynamic (default) or static primaries.
	Mode Mode
	// DisableRegistration turns off the application's REGISTER calls
	// (ablation experiment E6: ambiguous views are never garbage
	// collected).
	DisableRegistration bool
	// Seed seeds loss injection and any randomized behavior.
	Seed int64
	// LossRate injects per-link message loss in [0, 1).
	LossRate float64
	// TickInterval drives heartbeats (default 2ms); SuspectTimeout and
	// ProposeRetry default to 5 and 10 ticks.
	TickInterval   time.Duration
	SuspectTimeout time.Duration
	ProposeRetry   time.Duration
	// Record enables trace recording: every macro-step of the two protocol
	// cores (input event plus emitted effects) is logged per node. Harvest
	// with Cluster.TraceLogs after Close and check with ReplayTrace. Works
	// in both modes: dynamic runs replay through the paper's automata,
	// static runs through the extracted staticcore baseline (with the
	// static invariant suite in place of 5.x/4.x).
	Record bool
	// Stream, when set, spills every macro-step to the given chunked
	// on-disk trace instead of (or in addition to) the in-memory Record
	// log: recorder memory stays O(window) no matter how long the run is.
	// The caller owns the stream — Close it after Cluster.Close, then check
	// with ReplayTraceStream. Works in both modes, like Record; one stream
	// holds one run, so a dynamic and a static run need separate streams.
	Stream *TraceStream
	// Online, when set, runs the bounded-suffix sampled conformance checker
	// in-process on every node: a shadow core pair re-steps the last
	// Window macro-steps every Every steps, entirely in memory. Read the
	// counters with Process.CheckStats. Requires ModeDynamic.
	Online *OnlineCheckConfig
}

// TraceLog is the recorded protocol trace of one node: the core
// construction parameters plus every macro-step of the VS-TO-DVS and
// DVS-TO-TO cores, in execution order. See internal/conform.
type TraceLog = conform.NodeLog

// ConformanceReport is the outcome of replaying trace logs through the
// protocol cores: per-step divergences plus invariant violations on the
// reconstructed final cut.
type ConformanceReport = conform.Report

// ReplayTrace re-executes recorded node traces through the machine-checked
// protocol cores and evaluates the paper's invariants (4.1–4.2, 5.1–5.6,
// 6.1–6.3, confirmed-prefix agreement) over the reconstructed final cut.
// The logs must cover every process of the run and be harvested after all
// nodes stopped.
func ReplayTrace(logs []TraceLog) *ConformanceReport { return conform.Replay(logs) }

// WriteTrace writes trace logs to a file (gob encoding). The write is
// atomic: the logs land under a temporary name in the same directory and
// are renamed into place only after a successful encode and fsync, so a
// crash or encode failure never leaves a torn trace at path.
func WriteTrace(path string, logs []TraceLog) error { return conform.WriteFile(path, logs) }

// ReadTrace reads trace logs written by WriteTrace.
func ReadTrace(path string) ([]TraceLog, error) { return conform.ReadFile(path) }

// TraceStreamOptions tune the chunked on-disk trace recorder.
type TraceStreamOptions = conform.StreamOptions

// TraceStream is a chunked on-disk trace: nodes spill their macro-step
// records into rolling chunks, so recorder memory is bounded by the chunk
// window rather than the run length. Pass one to Config.Stream (or
// NodeConfig.Stream for TCP nodes), Close it after the cluster or node has
// stopped, and check the directory with ReplayTraceStream.
type TraceStream = conform.StreamRecorder

// NewTraceStream creates a chunked trace stream rooted at dir.
func NewTraceStream(dir string, opts TraceStreamOptions) (*TraceStream, error) {
	return conform.NewStreamRecorder(dir, opts)
}

// StreamConformanceReport is the outcome of replaying a chunked on-disk
// trace: the in-memory report plus chunk accounting, truncation status,
// and whether the stream was sealed by a clean Close.
type StreamConformanceReport = conform.StreamReport

// ReplayTraceStream incrementally replays a chunked trace directory written
// by a TraceStream: records are re-stepped chunk by chunk, per-node
// invariant projections run at every chunk boundary, and the full
// cross-node invariant suite runs at quiescent cuts and at the sealed end.
// Divergences and violations carry the chunk window that introduced them.
// A truncated stream (crash before Close) is checked up to its sealed
// prefix and reported as such rather than failing outright.
func ReplayTraceStream(dir string) (*StreamConformanceReport, error) {
	return conform.ReplayStream(dir)
}

// OnlineCheckConfig bounds the in-process sampled conformance checker.
type OnlineCheckConfig = conform.OnlineConfig

// OnlineCheckStats is a snapshot of one node's online checker counters.
type OnlineCheckStats = conform.OnlineStats
