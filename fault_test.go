package dvs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Fault-injection tests: adversarial reconfiguration timing against the
// runtime stack. The single safety property checked throughout is the TO
// guarantee — every process's delivery sequence is a prefix of one common
// total order — plus per-origin FIFO of what does get delivered.

func assertConsistentAndFIFO(t *testing.T, delivered [][]Delivery) {
	t.Helper()
	assertPrefixConsistent(t, delivered)
	for i, seq := range delivered {
		last := make(map[ProcID]string)
		seen := make(map[string]bool)
		for _, d := range seq {
			key := d.Payload
			if seen[key] {
				t.Fatalf("process %d delivered %q twice", i, key)
			}
			seen[key] = true
			last[d.Origin] = d.Payload
		}
	}
}

func TestFaultPartitionDuringRecovery(t *testing.T) {
	// Re-partition while the merged view's state exchange is in flight.
	cl, err := NewCluster(Config{Processes: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 5; i++ {
		cl.Process(i).Broadcast(fmt.Sprintf("pre%d", i))
	}
	time.Sleep(150 * time.Millisecond)
	cl.Partition([]int{0, 1, 2}, []int{3, 4})
	time.Sleep(150 * time.Millisecond)
	cl.Heal()
	// Immediately split again, before recovery can complete.
	time.Sleep(3 * time.Millisecond)
	cl.Partition([]int{0, 1, 2, 3}, []int{4})
	time.Sleep(150 * time.Millisecond)
	cl.Heal()
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < 3; i++ {
		cl.Process(i).Broadcast(fmt.Sprintf("post%d", i))
	}

	delivered := make([][]Delivery, 5)
	for i := 0; i < 5; i++ {
		waitDeliveries(t, cl.Process(i), &delivered[i], 8, 20*time.Second)
	}
	assertConsistentAndFIFO(t, delivered)
}

func TestFaultCrashLeaderDuringViewChange(t *testing.T) {
	// Process 0 is the initial leader (minimum id): crash it right as a
	// partition forces a view change; the survivors must re-form around a
	// new leader without losing agreement.
	cl, err := NewCluster(Config{Processes: 5, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	cl.Process(1).Broadcast("before")
	time.Sleep(100 * time.Millisecond)
	cl.Partition([]int{0, 1, 2, 3}) // drop 4: view change begins
	time.Sleep(3 * time.Millisecond)
	cl.Crash(0) // leader dies mid-change
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, ok := cl.Process(1).CurrentPrimary()
		if ok && !v.Contains(0) && !v.Contains(4) && cl.Process(1).Established() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not form a primary; have %v %v", v, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Process(2).Broadcast("after")
	delivered := make([][]Delivery, 3)
	for i := 1; i <= 3; i++ {
		waitDeliveries(t, cl.Process(i), &delivered[i-1], 2, 20*time.Second)
	}
	assertConsistentAndFIFO(t, delivered)
}

func TestFaultFlappingPartitions(t *testing.T) {
	// Rapid random partition changes with concurrent traffic: no deadlock,
	// no divergence; after stabilization everything converges.
	cl, err := NewCluster(Config{Processes: 5, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(33))
	delivered := make([][]Delivery, 5)
	msgs := 0
	for round := 0; round < 12; round++ {
		switch rng.Intn(3) {
		case 0:
			cl.Heal()
		case 1:
			k := 1 + rng.Intn(2)
			perm := rng.Perm(5)
			var minority, majority []int
			for i, p := range perm {
				if i < k {
					minority = append(minority, p)
				} else {
					majority = append(majority, p)
				}
			}
			cl.Partition(majority, minority)
		case 2:
			cl.Partition(rng.Perm(5)[:3])
		}
		cl.Process(rng.Intn(5)).Broadcast(fmt.Sprintf("f%d", msgs))
		msgs++
		time.Sleep(time.Duration(5+rng.Intn(40)) * time.Millisecond)
		for i := 0; i < 5; i++ {
			collectDeliveries(cl.Process(i), &delivered[i])
		}
	}
	cl.Heal()
	time.Sleep(500 * time.Millisecond)
	for i := 0; i < 5; i++ {
		collectDeliveries(cl.Process(i), &delivered[i])
	}
	assertConsistentAndFIFO(t, delivered)
	// Messages broadcast while the sender sat in a minority may be pending,
	// but a healed stable group must have delivered a decent fraction.
	if len(delivered[0]) == 0 {
		t.Error("nothing delivered at all after stabilization")
	}
}

func TestFaultHeavyLossWithPartitions(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 4, Seed: 34, LossRate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(150 * time.Millisecond)
	for i := 0; i < 10; i++ {
		cl.Process(i % 4).Broadcast(fmt.Sprintf("l%d", i))
	}
	time.Sleep(100 * time.Millisecond)
	cl.Partition([]int{0, 1, 2}, []int{3})
	time.Sleep(150 * time.Millisecond)
	cl.Heal()
	delivered := make([][]Delivery, 4)
	for i := 0; i < 4; i++ {
		waitDeliveries(t, cl.Process(i), &delivered[i], 10, 120*time.Second)
	}
	assertConsistentAndFIFO(t, delivered)
}

func TestFaultSimultaneousCrashes(t *testing.T) {
	cl, err := NewCluster(Config{Processes: 7, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond)
	cl.Crash(5)
	cl.Crash(6)
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, ok := cl.Process(0).CurrentPrimary()
		if ok && v.Members.Len() == 5 && cl.Process(0).Established() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no survivor primary after double crash; have %v %v", v, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Process(0).Broadcast("still-alive")
	var got []Delivery
	waitDeliveries(t, cl.Process(4), &got, 1, 20*time.Second)
}
