package dvs

import (
	"fmt"
	"time"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/dvsg"
	netfab "repro/internal/net"
	"repro/internal/quorum"
	"repro/internal/staticp"
	"repro/internal/tob"
	"repro/internal/types"
	"repro/internal/vsg"
)

// stackConfig carries everything needed to assemble one process's protocol
// stack for one group: membership (VS), the primary-view filter, and the
// totally-ordered broadcast application, plus the conformance taps. The
// single-group Cluster and TCP Node and the multi-group sharded runtime all
// build their stacks here, so the wiring — and the recorded construction
// parameters the replayer depends on — cannot drift between entry points.
type stackConfig struct {
	self      ProcID
	group     types.GroupID // 0 in single-group runs
	universe  types.ProcSet
	p0        types.ProcSet // members of the initial view
	initial   types.View
	transport netfab.Transport

	mode                Mode
	disableRegistration bool
	tick                time.Duration
	suspect             time.Duration
	retry               time.Duration

	record bool
	stream *TraceStream
	online *OnlineCheckConfig
}

// stack is one group's protocol stack at one process. The embedding types
// (Process, Node, and the sharded runtime's per-group handles) promote its
// fields and methods.
type stack struct {
	group types.GroupID
	vsg   *vsg.Node
	dvs   *dvsg.Layer
	tob   *tob.Layer
	rec   *conform.Recorder      // nil unless record
	check *conform.OnlineChecker // nil unless online
}

// buildStack assembles one stack. The vsg node is returned un-started;
// callers start every stack of a process after all of them are wired (the
// sharded runtime installs multicast hooks in between).
func buildStack(sc stackConfig) (*stack, error) {
	node := vsg.NewNode(vsg.Config{
		Self:           sc.self,
		Universe:       sc.universe,
		Initial:        sc.initial,
		Transport:      sc.transport,
		TickInterval:   sc.tick,
		SuspectTimeout: sc.suspect,
		ProposeRetry:   sc.retry,
	})

	var filter dvsg.Filter
	if sc.mode == ModeStatic {
		filter = staticp.NewNode(sc.self, sc.initial, sc.initial.Contains(sc.self), quorum.Majority(sc.p0))
	} else {
		filter = core.NewNode(sc.self, sc.initial, sc.initial.Contains(sc.self))
	}
	app := tob.New(sc.self, sc.initial, !sc.disableRegistration, node.Stopped())
	layer := dvsg.New(filter, app, sc.mode == ModeDynamic)
	layer.Bind(node)
	app.Bind(layer)
	node.SetHandler(layer)

	// The recorded construction parameters must match how the cores were
	// actually built above: gc is on only in dynamic mode, and static marks
	// the filter as the staticcore baseline so the replayer re-executes the
	// right automaton.
	gcOn := sc.mode == ModeDynamic
	static := sc.mode == ModeStatic
	st := &stack{group: sc.group, vsg: node, dvs: layer, tob: app}
	if sc.record {
		st.rec = conform.NewRecorder(sc.self, sc.group, sc.initial, sc.initial.Contains(sc.self), !sc.disableRegistration, gcOn, static)
		layer.AddObserver(st.rec.ObserveDVS)
		app.AddObserver(st.rec.ObserveTO)
	}
	if sc.stream != nil {
		sn, err := sc.stream.Node(sc.self, sc.group, sc.initial, sc.initial.Contains(sc.self), !sc.disableRegistration, gcOn, static)
		if err != nil {
			return nil, fmt.Errorf("dvs: registering process %s with trace stream: %w", sc.self, err)
		}
		layer.AddObserver(sn.ObserveDVS)
		app.AddObserver(sn.ObserveTO)
	}
	if sc.online != nil {
		st.check = conform.NewOnlineChecker(sc.self, sc.initial, sc.initial.Contains(sc.self), !sc.disableRegistration, true, *sc.online)
		layer.AddObserver(st.check.ObserveDVS)
		app.AddObserver(st.check.ObserveTO)
	}
	return st, nil
}

// Group returns the group this stack serves (0 in single-group runs).
func (s *stack) Group() types.GroupID { return s.group }
