package dvs

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/types"
)

func TestCheckVSInvariants(t *testing.T) {
	rep, err := CheckVSInvariants(CheckConfig{Steps: 300, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 4 || rep.Steps == 0 || rep.InvariantEvals == 0 {
		t.Errorf("implausible report: %+v", rep)
	}
}

func TestCheckDVSInvariants(t *testing.T) {
	if _, err := CheckDVSInvariants(CheckConfig{Steps: 300, Seeds: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDVSRefinement(t *testing.T) {
	if _, err := CheckDVSRefinement(CheckConfig{Steps: 300, Seeds: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTOTraceInclusion(t *testing.T) {
	if _, err := CheckTOTraceInclusion(CheckConfig{Steps: 300, Seeds: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the individual checks")
	}
	rep, err := CheckAll(CheckConfig{Procs: 3, Steps: 250, Seeds: 2, Initial: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 8 { // 4 checks × 2 seeds
		t.Errorf("executions = %d, want 8", rep.Executions)
	}
}

func TestCheckConfigDefaults(t *testing.T) {
	cfg, universe, v0 := CheckConfig{}.fill()
	if cfg.Procs != 4 || cfg.Steps != 500 || cfg.Seeds != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
	if universe.Len() != 4 {
		t.Error("universe wrong")
	}
	if v0.Members.Len() != 3 {
		t.Errorf("default v0 = %s", v0)
	}
}

// falsifiableRun drives DVS-IMPL against the literal Invariant 5.2(3) —
// known (Finding F4) to be violated on reachable states — mirroring exactly
// how CheckVSInvariants/CheckDVSInvariants construct their checks: fresh
// automaton AND fresh environment per seed.
func falsifiableRun(t *testing.T, parallel, seeds int, base int64) error {
	t.Helper()
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1, 3))
	inv := []ioa.Invariant{{Name: "5.2(3) literal", Check: func(a ioa.Automaton) error {
		return core.CheckInvariant52Part3Literal(a.(*core.Impl))
	}}}
	ex := &ioa.Executor{Steps: 500, Seed: base, Parallel: parallel}
	_, err := ex.RunSeeds(seeds,
		func() ioa.Automaton { return core.NewImpl(universe, v0) },
		func(seed int64) ioa.Environment { return core.NewEnv(seed+2000, universe) },
		inv)
	return err
}

// TestSeedFailureReproducesAlone is the regression test for the headline
// bug: a failure reported as "seed N" must reproduce by re-running with
// Seeds: 1, Seed: N. Before environments were constructed per seed, seed
// N's execution depended on the rng/msgSeq/proposed state left behind by
// seeds 0..N-1 and the report was unreproducible.
func TestSeedFailureReproducesAlone(t *testing.T) {
	full := falsifiableRun(t, 1, 50, 0)
	if full == nil {
		t.Fatal("literal Invariant 5.2(3) should be falsifiable within 50 seeds (Finding F4)")
	}
	var se *ioa.SeedError
	if !errors.As(full, &se) {
		t.Fatalf("failure should carry its seed, got %T: %v", full, full)
	}

	// Re-running the reported seed alone must fail identically.
	alone := falsifiableRun(t, 1, 1, se.Seed)
	if alone == nil {
		t.Fatalf("seed %d did not reproduce in isolation", se.Seed)
	}
	if alone.Error() != full.Error() {
		t.Errorf("isolated re-run differs:\n  full run: %v\n  isolated: %v", full, alone)
	}
	var fullStep, aloneStep *ioa.StepError
	if !errors.As(full, &fullStep) || !errors.As(alone, &aloneStep) {
		t.Fatal("failures should carry StepErrors")
	}
	if fullStep.Step != aloneStep.Step || fullStep.Fingerprint != aloneStep.Fingerprint {
		t.Errorf("witness step diverged: step %d vs %d", fullStep.Step, aloneStep.Step)
	}
}

// TestSeedFailureDeterministicAcrossWorkers asserts the parallel engine's
// determinism guarantee: serial, one-worker, and NumCPU-worker fan-outs all
// report the identical lowest failing seed and StepError.
func TestSeedFailureDeterministicAcrossWorkers(t *testing.T) {
	want := falsifiableRun(t, 1, 50, 0)
	if want == nil {
		t.Fatal("literal Invariant 5.2(3) should be falsifiable within 50 seeds (Finding F4)")
	}
	for _, parallel := range []int{0, 1, runtime.NumCPU()} {
		got := falsifiableRun(t, parallel, 50, 0)
		if got == nil || got.Error() != want.Error() {
			t.Errorf("parallel=%d: got %v, want %v", parallel, got, want)
		}
	}
}

// TestChecksDeterministicAcrossWorkers runs every root check serially and
// with NumCPU workers; all must pass with identical per-execution work
// (steps and invariant evaluations are independent of worker count).
func TestChecksDeterministicAcrossWorkers(t *testing.T) {
	checks := []struct {
		name string
		run  func(CheckConfig) (ioa.CheckReport, error)
	}{
		{"vs", CheckVSInvariants},
		{"dvs", CheckDVSInvariants},
		{"refinement", CheckDVSRefinement},
		{"to", CheckTOTraceInclusion},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			cfg := CheckConfig{Steps: 200, Seeds: 4, Parallel: 1}
			serial, err := c.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Parallel = runtime.NumCPU()
			par, err := c.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Steps != par.Steps || serial.InvariantEvals != par.InvariantEvals || serial.Executions != par.Executions {
				t.Errorf("work diverged:\n  serial:   %v\n  parallel: %v", serial, par)
			}
		})
	}
}

// ExampleCheckReport documents the shape of the observability report.
func ExampleCheckReport() {
	rep, err := CheckVSInvariants(CheckConfig{Steps: 100, Seeds: 3, Parallel: 1})
	fmt.Println(err == nil, rep.Executions, rep.Steps > 0, rep.InvariantEvals > 0)
	// Output: true 3 true true
}
