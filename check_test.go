package dvs

import "testing"

func TestCheckVSInvariants(t *testing.T) {
	if err := CheckVSInvariants(CheckConfig{Steps: 300, Seeds: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDVSInvariants(t *testing.T) {
	if err := CheckDVSInvariants(CheckConfig{Steps: 300, Seeds: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDVSRefinement(t *testing.T) {
	if err := CheckDVSRefinement(CheckConfig{Steps: 300, Seeds: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTOTraceInclusion(t *testing.T) {
	if err := CheckTOTraceInclusion(CheckConfig{Steps: 300, Seeds: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the individual checks")
	}
	if err := CheckAll(CheckConfig{Procs: 3, Steps: 250, Seeds: 2, Initial: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConfigDefaults(t *testing.T) {
	cfg, universe, v0 := CheckConfig{}.fill()
	if cfg.Procs != 4 || cfg.Steps != 500 || cfg.Seeds != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
	if universe.Len() != 4 {
		t.Error("universe wrong")
	}
	if v0.Members.Len() != 3 {
		t.Errorf("default v0 = %s", v0)
	}
}
