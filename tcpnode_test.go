package dvs

import (
	"fmt"
	"testing"
	"time"
)

// startTCPGroup launches n standalone nodes over real localhost TCP.
func startTCPGroup(t *testing.T, n int, mode Mode) []*Node {
	t.Helper()
	// First pass: bind listeners on ephemeral ports.
	nodes := make([]*Node, n)
	addrs := make(map[int]string, n)
	// Start node 0..n-1 with the addresses discovered incrementally: we
	// must know every address before starting, so bind in two phases using
	// ":0" and a placeholder peer map, which we fill by restarting. To keep
	// it simple and deterministic, bind explicit ports instead.
	base := 39200 + n*17
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		node, err := StartNode(NodeConfig{
			ID:           i,
			Processes:    n,
			Listen:       addrs[i],
			Peers:        peers,
			Mode:         mode,
			TickInterval: 5 * time.Millisecond,
		})
		if err != nil {
			for _, nd := range nodes[:i] {
				nd.Close()
			}
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestTCPNodesDeliverTotalOrder(t *testing.T) {
	nodes := startTCPGroup(t, 3, ModeDynamic)
	time.Sleep(150 * time.Millisecond)
	for k := 0; k < 6; k++ {
		if !nodes[k%3].Broadcast(fmt.Sprintf("tcp%d", k)) {
			t.Fatal("broadcast failed")
		}
	}
	seqs := make([][]Delivery, 3)
	for i := 0; i < 3; i++ {
		deadline := time.After(10 * time.Second)
		for len(seqs[i]) < 6 {
			select {
			case d := <-nodes[i].Deliveries():
				seqs[i] = append(seqs[i], d)
			case <-deadline:
				t.Fatalf("node %d: %d of 6 deliveries", i, len(seqs[i]))
			}
		}
	}
	for i := 1; i < 3; i++ {
		for k := range seqs[0] {
			if seqs[i][k] != seqs[0][k] {
				t.Fatalf("node %d diverges at %d: %v vs %v", i, k, seqs[i][k], seqs[0][k])
			}
		}
	}
}

func TestTCPNodesShardedDeliverPerGroup(t *testing.T) {
	const n, groups = 3, 2
	base := 39600
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = addrs[j]
			}
		}
		node, err := StartNode(NodeConfig{
			ID:           i,
			Processes:    n,
			Listen:       addrs[i],
			Peers:        peers,
			Mode:         ModeDynamic,
			Groups:       groups,
			TickInterval: 5 * time.Millisecond,
		})
		if err != nil {
			for _, nd := range nodes[:i] {
				nd.Close()
			}
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	time.Sleep(150 * time.Millisecond)

	// Keyed traffic lands on whichever group the ring picks; count per
	// group with SubmitKey so the expectation matches the routing.
	want := make([]int, groups)
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("key%d", k)
		g := nodes[0].SubmitKey(key)
		if og := nodes[1].SubmitKey(key); og != g {
			t.Fatalf("ring disagreement for %q: %v vs %v", key, g, og)
		}
		if !nodes[k%n].Submit(key, "v:"+key) {
			t.Fatalf("submit %q failed", key)
		}
		want[g]++
	}
	// One atomic multicast addressed to both groups: each group delivers
	// the payload exactly once.
	allGroups := nodes[0].Groups()
	if err := nodes[0].SubmitMulti(allGroups, "both"); err != nil {
		t.Fatalf("SubmitMulti: %v", err)
	}
	for g := range want {
		want[g]++
	}

	seqs := make([][][]Delivery, n) // [node][group]
	for i := 0; i < n; i++ {
		seqs[i] = make([][]Delivery, groups)
		for gi, g := range allGroups {
			h, ok := nodes[i].Group(g)
			if !ok {
				t.Fatalf("node %d: no handle for group %v", i, g)
			}
			deadline := time.After(20 * time.Second)
			for len(seqs[i][gi]) < want[gi] {
				select {
				case d := <-h.Deliveries():
					seqs[i][gi] = append(seqs[i][gi], d)
				case <-deadline:
					t.Fatalf("node %d group %v: %d of %d deliveries",
						i, g, len(seqs[i][gi]), want[gi])
				}
			}
		}
	}
	for gi := range allGroups {
		sawMulti := false
		for _, d := range seqs[0][gi] {
			if d.Payload == "both" {
				sawMulti = true
			}
		}
		if !sawMulti {
			t.Fatalf("group %d never delivered the multicast", gi)
		}
		for i := 1; i < n; i++ {
			for k := range seqs[0][gi] {
				if seqs[i][gi][k] != seqs[0][gi][k] {
					t.Fatalf("node %d group %d diverges at %d: %v vs %v",
						i, gi, k, seqs[i][gi][k], seqs[0][gi][k])
				}
			}
		}
	}
}

func TestTCPNodeSurvivesPeerShutdown(t *testing.T) {
	nodes := startTCPGroup(t, 3, ModeDynamic)
	time.Sleep(150 * time.Millisecond)
	nodes[2].Close() // peer goes away for good
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := nodes[0].CurrentPrimary()
		if ok && v.Members.Len() == 2 && nodes[0].Established() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never formed {0,1}; have %v %v", v, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !nodes[0].Broadcast("without-2") {
		t.Fatal("broadcast failed")
	}
	select {
	case d := <-nodes[1].Deliveries():
		if d.Payload != "without-2" {
			t.Fatalf("delivery = %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery after peer shutdown")
	}
}

func TestTCPNodeConfigValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{}); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := StartNode(NodeConfig{Processes: 2, ID: 5}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := StartNode(NodeConfig{Processes: 2, ID: 0, Listen: "127.0.0.1:1", Initial: []int{9}}); err == nil {
		t.Error("out-of-range initial member accepted")
	}
}
