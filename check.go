package dvs

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ioa"
	dvsspec "repro/internal/spec/dvs"
	tospec "repro/internal/spec/to"
	vsspec "repro/internal/spec/vs"
	"repro/internal/toimpl"
	"repro/internal/types"
)

// CheckConfig configures the specification-layer checks.
type CheckConfig struct {
	// Procs is the universe size (default 4).
	Procs int
	// Initial lists the members of v0 (default: processes 0, 1 and the
	// highest id, exercising both members and late joiners).
	Initial []int
	// Steps per execution (default 500).
	Steps int
	// Seeds is the number of seeded executions (default 10).
	Seeds int
	// Seed is the base seed.
	Seed int64
	// Parallel is the number of workers seeds are fanned out to
	// (0 = GOMAXPROCS, 1 = serial). Each seed runs a fresh automaton and a
	// fresh environment, so the reported lowest failing seed is identical
	// under every setting.
	Parallel int
}

func (c CheckConfig) fill() (CheckConfig, types.ProcSet, types.View) {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Steps <= 0 {
		c.Steps = 500
	}
	if c.Seeds <= 0 {
		c.Seeds = 10
	}
	universe := types.RangeProcSet(c.Procs)
	p0 := types.NewProcSet()
	if len(c.Initial) == 0 {
		p0 = types.NewProcSet(0, 1, types.ProcID(c.Procs-1))
	} else {
		for _, i := range c.Initial {
			p0.Add(types.ProcID(i))
		}
	}
	return c, universe, types.InitialView(p0)
}

// CheckVSInvariants drives the VS specification automaton (Figure 1)
// through seeded random executions, checking Invariant 3.1 at every state.
func CheckVSInvariants(cfg CheckConfig) (ioa.CheckReport, error) {
	cfg, universe, v0 := cfg.fill()
	ex := &ioa.Executor{Steps: cfg.Steps, Seed: cfg.Seed, Parallel: cfg.Parallel}
	return ex.RunSeeds(cfg.Seeds,
		func() ioa.Automaton { return vsspec.New(universe, v0) },
		func(seed int64) ioa.Environment { return vsspec.NewEnv(seed+1, universe) },
		vsspec.Invariants())
}

// CheckDVSInvariants drives the DVS specification automaton (Figure 2)
// through seeded random executions, checking Invariants 4.1 and 4.2 at
// every state.
func CheckDVSInvariants(cfg CheckConfig) (ioa.CheckReport, error) {
	cfg, universe, v0 := cfg.fill()
	ex := &ioa.Executor{Steps: cfg.Steps, Seed: cfg.Seed, Parallel: cfg.Parallel}
	return ex.RunSeeds(cfg.Seeds,
		func() ioa.Automaton { return dvsspec.New(universe, v0) },
		func(seed int64) ioa.Environment { return dvsspec.NewEnv(seed+1, universe) },
		dvsspec.Invariants())
}

// CheckDVSRefinement mechanically checks Theorem 5.9: every step of the
// DVS-IMPL system (Figure 3 over Figure 1) simulates, under the refinement
// of Figure 4, a fragment of the (amended) DVS specification with the same
// trace — while Invariants 5.1–5.6 hold at every reachable implementation
// state and Invariants 4.1–4.2 at every specification state.
func CheckDVSRefinement(cfg CheckConfig) (ioa.CheckReport, error) {
	cfg, universe, v0 := cfg.fill()
	ref := &core.Refinement{Universe: universe, Initial: v0}
	return ioa.CheckRefinementSeeds(cfg.Seeds,
		func() ioa.Automaton { return core.NewImpl(universe, v0) },
		ref,
		func(seed int64) ioa.Environment { return core.NewEnv(seed+1, universe) },
		ioa.CheckerConfig{
			Steps:          cfg.Steps,
			Seed:           cfg.Seed,
			Parallel:       cfg.Parallel,
			ImplInvariants: core.Invariants(),
			SpecInvariants: dvsspec.Invariants(),
		})
}

// CheckTOTraceInclusion mechanically checks Theorem 6.4: every trace of
// TO-IMPL (Figure 5 over the literal Figure 2 DVS specification) is a trace
// of the TO service, while Invariants 6.1–6.3 hold at every reachable
// state.
func CheckTOTraceInclusion(cfg CheckConfig) (ioa.CheckReport, error) {
	cfg, universe, v0 := cfg.fill()
	return ioa.CheckTraceInclusionSeeds(cfg.Seeds,
		func(seed int64) (ioa.Automaton, ioa.Monitor, ioa.Environment) {
			impl := toimpl.NewImpl(universe, v0, toimpl.Config{DVS: toimpl.DVSLiteral})
			return impl, tospec.NewMonitor(universe), toimpl.NewEnv(seed+1, universe)
		},
		ioa.CheckerConfig{
			Steps:          cfg.Steps,
			Seed:           cfg.Seed,
			Parallel:       cfg.Parallel,
			ImplInvariants: toimpl.Invariants(),
		})
}

// CheckExplore exhaustively model-checks a small DVS-IMPL configuration
// (2 processes, one client message, one candidate view change) up to a
// depth bound: Invariants 5.1–5.6 are asserted at every distinct reachable
// state and the Theorem 5.9 step correspondence on every explored edge.
// Only Parallel is honored from cfg — the configuration itself is fixed so
// the reported state/edge counts are a stable cross-check between worker
// counts (the level-synchronous BFS guarantees they are identical).
func CheckExplore(cfg CheckConfig) (ioa.CheckReport, error) {
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &core.BoundedEnv{
		MaxMsgs:  1,
		MaxViews: 2,
		Views:    []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)},
	}
	res, err := ioa.Explore(core.NewImpl(universe, v0), env, ioa.ExploreConfig{
		MaxStates:      1 << 20,
		MaxDepth:       12,
		Parallel:       cfg.Parallel,
		Invariants:     core.Invariants(),
		Refinement:     &core.Refinement{Universe: universe, Initial: v0},
		SpecInvariants: dvsspec.Invariants(),
	})
	return res.Report(), err
}

// ExploreDeepConfig bounds the deep exhaustive exploration (experiment
// E12): a 3-process DVS-IMPL configuration explored an order of magnitude
// past the fixed CheckExplore bounds, with optional symmetry reduction.
type ExploreDeepConfig struct {
	// Procs is the universe size (default 3). The initial view covers the
	// whole universe and the candidate memberships are every two-process
	// pair plus the full universe, so the input enumeration is closed under
	// every permutation of the universe — the precondition for symmetry
	// reduction.
	Procs int
	// MaxMsgs bounds the client messages in the system (default 1).
	MaxMsgs int
	// MaxViews bounds the created views including v0 (default 2).
	MaxViews int
	// MaxDepth bounds the BFS depth (default 11).
	MaxDepth int
	// MaxStates caps distinct states (default 1 << 20).
	MaxStates int
	// Parallel is the number of BFS workers (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// Symmetry explores one representative per process-permutation orbit
	// instead of every state (sound for DVS-IMPL; see DESIGN.md §6.7).
	Symmetry bool
	// AuditSymmetry additionally verifies, for every discovered state, that
	// the whole orbit canonicalizes to one representative. Implies Symmetry.
	AuditSymmetry bool
	// Refinement also checks the Figure 4 step correspondence on every
	// explored edge.
	Refinement bool
}

func (c ExploreDeepConfig) fill() ExploreDeepConfig {
	if c.Procs <= 0 {
		c.Procs = 3
	}
	if c.MaxMsgs == 0 {
		c.MaxMsgs = 1
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 11
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 20
	}
	return c
}

// CheckExploreDeep exhaustively model-checks the E12 configuration:
// Invariants 5.1–5.6 at every distinct reachable state, optionally the
// Theorem 5.9 step correspondence on every edge, optionally one state per
// symmetry orbit. The counts are deterministic at every worker count; at
// the defaults the exploration reaches 38566 states over 108312 edges
// (6527 states over 18553 edges with Symmetry — a 5.9x reduction).
func CheckExploreDeep(cfg ExploreDeepConfig) (ioa.CheckReport, error) {
	cfg = cfg.fill()
	universe := types.RangeProcSet(cfg.Procs)
	v0 := types.InitialView(universe)
	var views []types.ProcSet
	for i := 0; i < cfg.Procs; i++ {
		for j := i + 1; j < cfg.Procs; j++ {
			views = append(views, types.NewProcSet(types.ProcID(i), types.ProcID(j)))
		}
	}
	if cfg.Procs > 2 {
		views = append(views, universe.Clone())
	}
	env := &core.BoundedEnv{
		MaxMsgs:    cfg.MaxMsgs,
		MaxViews:   cfg.MaxViews,
		Views:      views,
		AllOrigins: true,
	}
	im := core.NewImpl(universe, v0)
	if cfg.Symmetry || cfg.AuditSymmetry {
		im.EnableSymmetry()
	}
	ecfg := ioa.ExploreConfig{
		MaxStates:     cfg.MaxStates,
		MaxDepth:      cfg.MaxDepth,
		Parallel:      cfg.Parallel,
		Invariants:    core.Invariants(),
		Symmetry:      cfg.Symmetry,
		AuditSymmetry: cfg.AuditSymmetry,
	}
	if cfg.Refinement {
		ecfg.Refinement = &core.Refinement{Universe: universe, Initial: v0}
		ecfg.SpecInvariants = dvsspec.Invariants()
	}
	res, err := ioa.Explore(im, env, ecfg)
	return res.Report(), err
}

// CheckAll runs every specification-layer check and returns the merged
// report.
func CheckAll(cfg CheckConfig) (ioa.CheckReport, error) {
	start := time.Now()
	checks := []struct {
		name string
		run  func(CheckConfig) (ioa.CheckReport, error)
	}{
		{"VS invariants", CheckVSInvariants},
		{"DVS invariants", CheckDVSInvariants},
		{"DVS refinement (Theorem 5.9)", CheckDVSRefinement},
		{"TO trace inclusion (Theorem 6.4)", CheckTOTraceInclusion},
	}
	var total ioa.CheckReport
	for _, c := range checks {
		rep, err := c.run(cfg)
		total.Merge(rep)
		if err != nil {
			total.Wall = time.Since(start)
			return total, fmt.Errorf("%s: %w", c.name, err)
		}
	}
	total.Wall = time.Since(start)
	return total, nil
}
