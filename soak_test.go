package dvs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/types"
)

// TestSoakRandomizedNemesis is the end-to-end torture test: randomized
// partitions, heals, crashes and traffic against a 6-process cluster, with
// the full set of safety checks at the end:
//
//   - delivery sequences pairwise prefix-consistent (one total order),
//   - no duplicates, per-origin FIFO,
//   - every delivered message was broadcast,
//   - all primary views observed anywhere form an intersection chain.
func TestSoakRandomizedNemesis(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const n = 6
	// The nemesis run also spills its trace to the chunked on-disk recorder:
	// the streamed replay at the end must agree with the in-memory one, and
	// the tight window proves recorder memory stays O(window) over the soak.
	traceDir := t.TempDir()
	const traceWindow = 512
	stream, err := NewTraceStream(traceDir, TraceStreamOptions{WindowSteps: traceWindow})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(Config{Processes: n, Seed: 77, Record: true, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(77))
	broadcast := make(map[string]ProcID)
	delivered := make([][]Delivery, n)
	var viewEvents []ViewEvent
	crashed := make(map[int]bool)
	harvest := func() {
		for i := 0; i < n; i++ {
			collectDeliveries(cl.Process(i), &delivered[i])
			for {
				select {
				case e := <-cl.Process(i).Views():
					viewEvents = append(viewEvents, e)
					continue
				default:
				}
				break
			}
		}
	}

	msg := 0
	for round := 0; round < 25; round++ {
		switch rng.Intn(6) {
		case 0, 1:
			cl.Heal()
		case 2:
			k := 1 + rng.Intn(2)
			perm := rng.Perm(n)
			cl.Partition(toInts(perm[k:]), toInts(perm[:k]))
		case 3:
			cl.Partition(toInts(rng.Perm(n)[:4]))
		case 4:
			// Crash at most two processes over the whole run.
			if len(crashed) < 2 {
				victim := rng.Intn(n)
				if !crashed[victim] {
					crashed[victim] = true
					cl.Crash(victim)
				}
			}
		default:
			// traffic-only round
		}
		for s := 0; s < 4; s++ {
			sender := rng.Intn(n)
			if crashed[sender] {
				continue
			}
			payload := fmt.Sprintf("s%d", msg)
			msg++
			if cl.Process(sender).Broadcast(payload) {
				broadcast[payload] = ProcID(sender)
			}
		}
		time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
		harvest()
		// Rolling cut at every nemesis round: in-flight traffic means the
		// boundary is not quiescent, so the replayer applies the per-node
		// invariant projections here and saves the cross-node suite for the
		// sealed end.
		stream.Cut(false)
	}
	cl.Heal()
	// Liveness after stabilization: every broadcast (including those of
	// crashed senders that made it into someone's content) is delivered at
	// every live process.
	var live int
	for live = 0; crashed[live]; live++ {
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		harvest()
		if len(delivered[live]) >= len(broadcast) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live process %d delivered %d of %d broadcasts", live, len(delivered[live]), len(broadcast))
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	harvest()

	// One total order across all live processes.
	assertPrefixConsistent(t, delivered)
	for i := 0; i < n; i++ {
		seen := make(map[string]bool)
		lastSeqno := make(map[ProcID]int)
		for _, d := range delivered[i] {
			if seen[d.Payload] {
				t.Fatalf("process %d: duplicate %q", i, d.Payload)
			}
			seen[d.Payload] = true
			origin, ok := broadcast[d.Payload]
			if !ok {
				t.Fatalf("process %d delivered never-broadcast %q", i, d.Payload)
			}
			if origin != d.Origin {
				t.Fatalf("process %d: %q attributed to %d, broadcast by %d", i, d.Payload, d.Origin, origin)
			}
			// Per-origin FIFO: payloads carry a global sequence, and each
			// origin's subsequence must be increasing.
			var k int
			fmt.Sscanf(d.Payload, "s%d", &k)
			if prev, ok := lastSeqno[d.Origin]; ok && k < prev {
				t.Fatalf("process %d: origin %d out of order (%d after %d)", i, d.Origin, k, prev)
			}
			lastSeqno[d.Origin] = k
		}
	}

	// Intersection chain over every primary observed anywhere.
	byID := make(map[ViewID]View)
	for _, e := range viewEvents {
		byID[e.View.ID] = e.View
	}
	views := make([]View, 0, len(byID))
	for _, v := range byID {
		views = append(views, v)
	}
	types.SortViews(views)
	for i := 1; i < len(views); i++ {
		if !views[i-1].Members.Intersects(views[i].Members) {
			t.Fatalf("primaries %s and %s disjoint", views[i-1], views[i])
		}
	}
	t.Logf("soak: %d broadcasts, %d delivered at live p%d, %d primaries, %d crashed",
		len(broadcast), len(delivered[live]), live, len(views), len(crashed))

	// Trace conformance over the whole nemesis run: once every process has
	// stopped, the recorded macro-steps must replay exactly through the
	// protocol cores and the reconstructed cut must satisfy the paper's
	// invariants. Crashed processes simply contribute shorter logs — their
	// cut point is the crash, which is consistent because every message they
	// received was recorded as sent in some peer's (longer) log.
	cl.Close()
	rep := ReplayTrace(cl.TraceLogs())
	if err := rep.Err(); err != nil {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %s", d)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("trace conformance under nemesis: %v (%s)", err, rep)
	}
	t.Logf("conformance: %s", rep)

	// Streamed conformance over the same run: seal the chunked trace and
	// replay it incrementally. Verdict and coverage must match the in-memory
	// replay, and the recorder's high-water mark must respect the window —
	// the O(window) memory claim, witnessed under a full nemesis soak.
	if err := stream.Close(); err != nil {
		t.Fatalf("sealing trace stream: %v", err)
	}
	srep, err := ReplayTraceStream(traceDir)
	if err != nil {
		t.Fatalf("streamed replay: %v", err)
	}
	if serr := srep.Err(); serr != nil {
		for _, d := range srep.Divergences {
			t.Errorf("streamed divergence: %s", d)
		}
		for _, v := range srep.Violations {
			t.Errorf("streamed violation: %s", v)
		}
		t.Fatalf("streamed trace conformance under nemesis: %v (%s)", serr, srep)
	}
	if !srep.Sealed {
		t.Errorf("nemesis stream not sealed: %s", srep)
	}
	if srep.OK() != rep.OK() {
		t.Errorf("streamed verdict %v disagrees with in-memory verdict %v", srep.OK(), rep.OK())
	}
	if srep.DVSSteps != rep.DVSSteps || srep.TOSteps != rep.TOSteps {
		t.Errorf("streamed replay covered dvs=%d/to=%d steps, in-memory dvs=%d/to=%d",
			srep.DVSSteps, srep.TOSteps, rep.DVSSteps, rep.TOSteps)
	}
	if peak := stream.PeakWindowSteps(); peak > traceWindow {
		t.Errorf("recorder buffered %d steps over a %d-step window", peak, traceWindow)
	}
	t.Logf("streamed conformance: %s (peak window %d)", srep, stream.PeakWindowSteps())
}

func toInts(ps []int) []int { return append([]int(nil), ps...) }
