#!/bin/sh
# Benchmark snapshots.
#
# 1. Theorem-check engine (E1-E3: invariant checks, the Theorem 5.9
#    refinement, the Theorem 6.4 trace inclusion), each in a serial and a
#    parallel variant, plus the E12 deep exploration (run in its own
#    `go test` invocation — one E12 iteration walks ~38k states, so it gets
#    dedicated CPU and its own repetition knob). Emits BENCH_checks.json
#    with one record per benchmark: ns/op, B/op, allocs/op, checking
#    throughput (steps/s), the per-iteration state count (identical across
#    the serial and parallel variants of the same check), and — on each
#    parallel variant — "parallel_speedup", the ratio of its best steps/s
#    to the serial variant's best steps/s.
#
# 2. Runtime-stack performance (E8: TO throughput and recovery), run in its
#    own `go test` invocation so the numbers are not depressed by CPU
#    contention with the rest of the suite — the recorded bench_output.txt
#    used to run E8 concurrently with all package tests, which made the
#    absolute throughput figures meaningless. Emits BENCH_e8.json.
#
# 3. Sharded scaling (E14: aggregate delivery rate vs group count at a
#    fixed 10% cross-group multicast fraction), isolated for the same
#    reason. Emits BENCH_e14.json; check.sh gates the 4-group/1-group
#    ratio on machines with enough CPUs to show scaling.
#
# Every benchmark is repeated (`-count`, default 3 for E1-E3) and the
# snapshot keeps only the best repetition per benchmark (lowest ns/op):
# scheduler noise on shared CI runners only ever slows a run down, so the
# fastest repetition is the closest estimate of the code's actual cost.
#
# Knobs: BENCHTIME (-benchtime for E1-E3, default 2x), BENCH_COUNT (-count
# for E1-E3, default 3), E12_BENCHTIME / E12_COUNT (defaults 1x / 1),
# E8_BENCHTIME (default 3x), E14_BENCHTIME (default 3x).
set -eu
cd "$(dirname "$0")/.."

# to_json converts `go test -bench` output on stdin into a JSON snapshot:
# {"benchmarks": [{"name": ..., "iters": ..., "<unit>": <value>, ...}, ...]}
# Repeated records for the same benchmark (-count > 1) are deduplicated,
# keeping the repetition with the lowest ns/op. Parallel variants gain a
# "parallel_speedup" field: best steps_per_s over the serial variant's.
to_json() {
	awk '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    if (!(name in best) || $3 + 0 < best[name] + 0) {
        if (!(name in best)) order[n++] = name
        best[name] = $3         # value of the first unit ($4), i.e. ns/op
        line[name] = $0
    }
}
END {
    # First pass: collect the surviving steps/s values so the serial
    # baseline is available when its parallel sibling is emitted.
    for (k = 0; k < n; k++) {
        name = order[k]
        m = split(line[name], f, /[ \t]+/)
        for (i = 3; i + 1 <= m; i += 2)
            if (f[i + 1] == "steps/s") sps[name] = f[i]
    }
    printf "{\n  \"benchmarks\": [\n"
    for (k = 0; k < n; k++) {
        name = order[k]
        m = split(line[name], f, /[ \t]+/)
        printf "%s    {\"name\": \"%s\", \"iters\": %s", k ? ",\n" : "", name, f[2]
        for (i = 3; i + 1 <= m; i += 2) {
            unit = f[i + 1]
            gsub(/\//, "_per_", unit)
            gsub(/-/, "_", unit)
            printf ", \"%s\": %s", unit, f[i]
        }
        base = name
        if (sub(/\/parallel=[0-9]+$/, "", base) && name !~ /\/parallel=1$/) {
            serial = base "/parallel=1"
            if ((serial in sps) && (name in sps) && sps[serial] + 0 > 0)
                printf ", \"parallel_speedup\": %.2f", sps[name] / sps[serial]
        }
        printf "}"
    }
    printf "\n  ]\n}\n"
}
'
}

# E1-E3 (the trailing [A-Z] keeps E12 out of this run — it gets its own
# invocation below so its long iterations do not share the process).
out=BENCH_checks.json
raw=$(go test -run '^$' -bench 'BenchmarkE[123][A-Z]' -benchtime "${BENCHTIME:-2x}" -count "${BENCH_COUNT:-3}" -benchmem .)
printf '%s\n' "$raw"

# E12 deep exploration, isolated: one iteration explores the full 38k-state
# space (6.5k with symmetry), so throughput is meaningful even at 1x.
raw12=$(go test -run '^$' -bench 'BenchmarkE12' -benchtime "${E12_BENCHTIME:-1x}" -count "${E12_COUNT:-1}" -benchmem .)
printf '%s\n' "$raw12"

{ printf '%s\n' "$raw"; printf '%s\n' "$raw12"; } | to_json > "$out"
echo "wrote $out"

# E8 isolated: two dedicated invocations (throughput, then recovery) with
# nothing else sharing the process, so each sample reflects the stack alone.
out8=BENCH_e8.json
raw8_tp=$(go test -run '^$' -bench 'BenchmarkE8TOThroughput' -benchtime "${E8_BENCHTIME:-3x}" .)
printf '%s\n' "$raw8_tp"
raw8_rec=$(go test -run '^$' -bench 'BenchmarkE8Recovery' -benchtime 1x .)
printf '%s\n' "$raw8_rec"
{ printf '%s\n' "$raw8_tp"; printf '%s\n' "$raw8_rec"; } | to_json > "$out8"
echo "wrote $out8"

# E14 isolated: sharded aggregate throughput at 1, 2 and 4 groups with a
# fixed 10% cross-group multicast fraction. The per-run safety checks
# (per-group total order, multicast agreement, cross-group partial order)
# fail the benchmark itself, so a snapshot implies the invariants held.
out14=BENCH_e14.json
raw14=$(go test -run '^$' -bench 'BenchmarkE14ShardedThroughput' -benchtime "${E14_BENCHTIME:-3x}" .)
printf '%s\n' "$raw14"
printf '%s\n' "$raw14" | to_json > "$out14"
echo "wrote $out14"
