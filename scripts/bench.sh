#!/bin/sh
# Benchmark snapshot of the theorem-check engine (E1-E3: invariant checks,
# the Theorem 5.9 refinement, the Theorem 6.4 trace inclusion), each in a
# serial and a parallel variant. Emits BENCH_checks.json with one record per
# benchmark: ns/op, B/op, allocs/op, checking throughput (steps/s), and the
# per-iteration state count (which must be identical across the serial and
# parallel variants of the same check).
#
# BENCHTIME overrides the -benchtime argument (default 2x).
set -eu
cd "$(dirname "$0")/.."
out=BENCH_checks.json

raw=$(go test -run '^$' -bench 'BenchmarkE[123]' -benchtime "${BENCHTIME:-2x}" -benchmem .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk '
BEGIN { printf "{\n  \"benchmarks\": [\n"; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$out"
echo "wrote $out"
