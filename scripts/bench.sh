#!/bin/sh
# Benchmark snapshots.
#
# 1. Theorem-check engine (E1-E3: invariant checks, the Theorem 5.9
#    refinement, the Theorem 6.4 trace inclusion), each in a serial and a
#    parallel variant. Emits BENCH_checks.json with one record per benchmark:
#    ns/op, B/op, allocs/op, checking throughput (steps/s), and the
#    per-iteration state count (which must be identical across the serial and
#    parallel variants of the same check).
#
# 2. Runtime-stack performance (E8: TO throughput and recovery), run in its
#    own `go test` invocation so the numbers are not depressed by CPU
#    contention with the rest of the suite — the recorded bench_output.txt
#    used to run E8 concurrently with all package tests, which made the
#    absolute throughput figures meaningless. Emits BENCH_e8.json.
#
# BENCHTIME overrides the -benchtime argument of the E1-E3 run (default 2x);
# E8_BENCHTIME that of the E8 throughput run (default 3x).
set -eu
cd "$(dirname "$0")/.."

# to_json converts `go test -bench` output on stdin into a JSON snapshot:
# {"benchmarks": [{"name": ..., "iters": ..., "<unit>": <value>, ...}, ...]}
to_json() {
	awk '
BEGIN { printf "{\n  \"benchmarks\": [\n"; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
'
}

out=BENCH_checks.json
raw=$(go test -run '^$' -bench 'BenchmarkE[123]' -benchtime "${BENCHTIME:-2x}" -benchmem .)
printf '%s\n' "$raw"
printf '%s\n' "$raw" | to_json > "$out"
echo "wrote $out"

# E8 isolated: two dedicated invocations (throughput, then recovery) with
# nothing else sharing the process, so each sample reflects the stack alone.
out8=BENCH_e8.json
raw8_tp=$(go test -run '^$' -bench 'BenchmarkE8TOThroughput' -benchtime "${E8_BENCHTIME:-3x}" .)
printf '%s\n' "$raw8_tp"
raw8_rec=$(go test -run '^$' -bench 'BenchmarkE8Recovery' -benchtime 1x .)
printf '%s\n' "$raw8_rec"
{ printf '%s\n' "$raw8_tp"; printf '%s\n' "$raw8_rec"; } | to_json > "$out8"
echo "wrote $out8"
