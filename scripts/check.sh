#!/bin/sh
# Verification gate: build, vet, dvslint, and the full test suite under the
# race detector, then the serial-vs-parallel exploration smoke. Run before
# every commit touching the concurrent checking engine.
#
# Usage:
#   sh scripts/check.sh         # full gate
#   sh scripts/check.sh smoke   # only the serial-vs-parallel exploration
#                               # smoke (CI runs the other gates as separate
#                               # steps so each failure is its own log)
#   sh scripts/check.sh lintgate # only the negative lint smoke: dvslint must
#                               # exit 1 on the seeded-bad-edit fixtures in
#                               # internal/lint/badedit (a clean exit means
#                               # the macro-step analyzers went dead)
#   sh scripts/check.sh bench   # only the benchmark-snapshot gate: run
#                               # `make bench` and fail unless it leaves
#                               # parseable, non-empty BENCH_checks.json,
#                               # BENCH_e8.json and BENCH_e14.json snapshots,
#                               # with the E8 n=5 throughput above the
#                               # recorded floor, the E12 exploration at its
#                               # pinned state counts, and (on machines with
#                               # >= 4 CPUs) the E1-E3 parallel speedup and
#                               # the E14 4-group/1-group sharded throughput
#                               # ratio above their scaling floors
set -eu

mode="${1:-all}"

# snapshot_guard fails loudly when the snapshot `make bench` is supposed to
# leave behind is missing, empty, not valid JSON, or contains no benchmark
# records. A silently-empty snapshot would make every later perf comparison
# in EXPERIMENTS.md vacuous, so this is a hard failure, not a warning.
snapshot_guard() {
	out="$1"
	if [ ! -s "$out" ]; then
		echo "check.sh: make bench left $out missing or empty — the benchmark run produced no snapshot" >&2
		exit 1
	fi
	if command -v python3 >/dev/null 2>&1; then
		if ! python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); sys.exit(0 if d.get("benchmarks") else 1)' "$out"; then
			echo "check.sh: $out is not parseable JSON with a non-empty \"benchmarks\" array — bench output format changed or the run emitted garbage" >&2
			exit 1
		fi
	elif ! grep -q '"name":' "$out"; then
		echo "check.sh: $out contains no benchmark records (no \"name\": fields) — bench output format changed or the run emitted garbage" >&2
		exit 1
	fi
	echo "check.sh: bench snapshot OK ($(grep -c '"name":' "$out") records in $out)"
}

# e8_floor_guard reads the isolated E8 throughput snapshot and fails if the
# n=5 delivered throughput fell below the floor. The floor is deliberately
# far under the recorded dev-box number (≈47k msg/s after the batching work)
# because CI runners are slow and shared; it is a smoke against the
# catastrophic regressions this bench exists to catch — lock-stepped
# confirms, batching silently disabled, the sequencer collapse returning —
# all of which cut n=5 throughput by an order of magnitude, not a percentage.
# E8_FLOOR (msg/s) overrides it for slower or faster machines.
e8_floor_guard() {
	out=BENCH_e8.json
	floor="${E8_FLOOR:-12000}"
	got=$(grep -o '"name": "E8TOThroughput/n=5"[^}]*' "$out" | grep -o '"msg_per_s": [0-9.]*' | awk '{print $2}')
	if [ -z "$got" ]; then
		echo "check.sh: no E8TOThroughput/n=5 msg_per_s record in $out" >&2
		exit 1
	fi
	if ! awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g + 0 >= f + 0) }'; then
		echo "check.sh: E8 n=5 throughput ${got} msg/s is below the floor ${floor} msg/s — sequencer regression" >&2
		exit 1
	fi
	echo "check.sh: E8 throughput smoke OK (n=5: ${got} msg/s >= floor ${floor})"
}

# e12_guard pins the E12 deep-exploration snapshot: the plain run must
# report exactly 38566 states and the symmetry-reduced run exactly 6527
# (one per process-permutation orbit, a 5.9x reduction). These counts are
# machine-independent — any drift means the exploration became
# nondeterministic or the bounded environment changed, both of which would
# silently invalidate every E12 comparison in EXPERIMENTS.md.
e12_guard() {
	out=BENCH_checks.json
	plain=$(grep -o '"name": "E12DeepExplore/parallel=1"[^}]*' "$out" | grep -o '"states": [0-9.e+]*' | awk '{print $2}')
	sym=$(grep -o '"name": "E12DeepExplore/symmetry"[^}]*' "$out" | grep -o '"states": [0-9.e+]*' | awk '{print $2}')
	if [ -z "$plain" ] || [ -z "$sym" ]; then
		echo "check.sh: missing E12DeepExplore states records in $out (plain='${plain:-}', symmetry='${sym:-}')" >&2
		exit 1
	fi
	if ! awk -v p="$plain" -v s="$sym" 'BEGIN { exit !(p + 0 == 38566 && s + 0 == 6527) }'; then
		echo "check.sh: E12 state counts drifted — plain ${plain} (want 38566), symmetry ${sym} (want 6527)" >&2
		exit 1
	fi
	echo "check.sh: E12 exploration OK (${plain} states plain, ${sym} with symmetry)"
}

# scaling_guard reads the parallel_speedup fields bench.sh attaches to the
# E1-E3 parallel variants and fails if any fell below the floor. The floor
# (SCALE_FLOOR, default 2.5 on a 4-core runner) is a smoke against the
# worker-pool collapse this gate exists to catch — a serialized pool shows
# ~1.0x, not a few percent off — so it is deliberately well under the ~3.5x
# a healthy 4-wide fan-out delivers. Skipped below 4 CPUs, where no
# speedup is possible and the parallel variant only covers the code path.
scaling_guard() {
	out=BENCH_checks.json
	ncpu=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null) || echo 1 )
	if [ "${ncpu:-1}" -lt 4 ]; then
		echo "check.sh: scaling gate skipped (${ncpu:-1} CPUs < 4 — no parallel speedup to measure)"
		return 0
	fi
	floor="${SCALE_FLOOR:-2.5}"
	for b in E1SpecInvariants E2RefinementDVS E3RefinementTO; do
		got=$(grep -o "\"name\": \"$b/parallel=[0-9]*\"[^}]*" "$out" | grep -o '"parallel_speedup": [0-9.]*' | awk '{print $2}')
		if [ -z "$got" ]; then
			echo "check.sh: no parallel_speedup record for $b in $out" >&2
			exit 1
		fi
		if ! awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g + 0 >= f + 0) }'; then
			echo "check.sh: $b parallel speedup ${got}x is below the floor ${floor}x — the seed fan-out serialized" >&2
			exit 1
		fi
		echo "check.sh: scaling OK ($b: ${got}x >= ${floor}x)"
	done
}

# e14_guard reads the sharded scaling snapshot and fails if 4 groups do not
# deliver at least E14_FLOOR (default 2.5) times the 1-group aggregate rate
# at the fixed 10% cross-group fraction. Sharding's whole claim is that
# independent per-group total orders buy near-linear aggregate throughput,
# so a ratio near 1.0 means the groups serialized — the mux pump collapsed
# onto one loop, or the multicast coordinator's mutex got into the keyed
# fast path. Skipped below 4 CPUs, where the groups have no cores to scale
# onto and the benchmark only covers the code path (the snapshot itself is
# still produced and validated).
e14_guard() {
	out=BENCH_e14.json
	ncpu=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null) || echo 1 )
	if [ "${ncpu:-1}" -lt 4 ]; then
		echo "check.sh: E14 scaling gate skipped (${ncpu:-1} CPUs < 4 — no sharded speedup to measure)"
		return 0
	fi
	floor="${E14_FLOOR:-2.5}"
	one=$(grep -o '"name": "E14ShardedThroughput/groups=1"[^}]*' "$out" | grep -o '"msg_per_s": [0-9.]*' | awk '{print $2}')
	four=$(grep -o '"name": "E14ShardedThroughput/groups=4"[^}]*' "$out" | grep -o '"msg_per_s": [0-9.]*' | awk '{print $2}')
	if [ -z "$one" ] || [ -z "$four" ]; then
		echo "check.sh: missing E14ShardedThroughput msg_per_s records in $out (groups=1='${one:-}', groups=4='${four:-}')" >&2
		exit 1
	fi
	if ! awk -v o="$one" -v f="$four" -v fl="$floor" 'BEGIN { exit !(o + 0 > 0 && f / o >= fl + 0) }'; then
		echo "check.sh: E14 4-group/1-group throughput ratio $(awk -v o="$one" -v f="$four" 'BEGIN { printf "%.2f", f / o }')x is below the floor ${floor}x — sharded groups serialized" >&2
		exit 1
	fi
	echo "check.sh: E14 scaling OK (1 group ${one} msg/s, 4 groups ${four} msg/s)"
}

# lintgate_guard is the negative half of the lint gate: dvslint over the
# seeded-bad-edit module must exit 1 (diagnostics reported). Exit 0 means
# the corestep/effectcomplete/shellsafe analyzers stopped protecting the
# macro-step boundary; exit 2 means the fixtures no longer even load.
lintgate_guard() {
	status=0
	out="$(go run ./cmd/dvslint -dir internal/lint/badedit ./... 2>&1)" || status=$?
	if [ "$status" != 1 ]; then
		echo "check.sh: dvslint on internal/lint/badedit exited ${status}, want 1 — the seeded-bad-edit fixtures no longer fail the lint gate" >&2
		echo "$out" >&2
		exit 1
	fi
	echo "check.sh: bad-edit lint gate OK (dvslint rejects the seeded fixtures)"
}

bench_guard() {
	rm -f BENCH_checks.json BENCH_e8.json BENCH_e14.json
	make bench
	snapshot_guard BENCH_checks.json
	snapshot_guard BENCH_e8.json
	snapshot_guard BENCH_e14.json
	e8_floor_guard
	e12_guard
	scaling_guard
	e14_guard
}

if [ "$mode" = "bench" ]; then
	bench_guard
	exit 0
fi

if [ "$mode" = "lintgate" ]; then
	lintgate_guard
	exit 0
fi

if [ "$mode" = "all" ]; then
	go build ./...
	go vet ./...
	go run ./cmd/dvslint ./...
	lintgate_guard
	go test -race ./...
fi

# Exploration smoke: the parallel BFS must report exactly the serial step and
# state counts for the exhaustive exploration check (the allocation tail of
# the report is timing-dependent and deliberately not compared).
extract_counts() {
	sed -n 's/.* \([0-9][0-9]* steps, [0-9][0-9]* states\).*/\1/p'
}
serial="$(go run ./cmd/dvscheck -check explore -parallel 1 -v | extract_counts)"
par="$(go run ./cmd/dvscheck -check explore -parallel 4 -v | extract_counts)"
if [ -z "$serial" ]; then
	echo "check.sh: could not extract 'N steps, M states' from dvscheck -parallel 1 output" >&2
	exit 1
fi
if [ "$serial" != "$par" ]; then
	echo "check.sh: serial and parallel exploration diverged — the parallel BFS lost or duplicated states" >&2
	echo "check.sh:   serial:   ${serial}" >&2
	echo "check.sh:   parallel: ${par:-<no counts extracted>}" >&2
	exit 1
fi
echo "check.sh: explore smoke OK (${serial})"

if [ "$mode" = "all" ]; then
	# Transport hardening gate: rerun the TCP connection-lifecycle, fault
	# injection, and chaos-soak tests in isolation under the race detector
	# (they also run in the full suite above; isolation gives the goroutine
	# leak checks a clean baseline).
	go test -race -count=1 -run 'TestTCP|TestFault|TestChaos' ./internal/net .

	# Streamed-conformance gate: record a scenario through the CLI as a
	# chunked on-disk trace, then replay the sealed directory cold. The
	# record step already verifies the stream inline; the second command
	# exercises the read-back path a crash investigation would use. (The
	# test suite above additionally pins that the streamed replay reaches
	# the same verdict as the in-memory one on the chaos and nemesis soaks.)
	tracedir="$(mktemp -d)"
	go run ./cmd/dvsim -scenario cascade -rounds 4 -seed 3 -record "$tracedir/trace"
	go run ./cmd/dvsim -replay "$tracedir/trace"
	rm -rf "$tracedir"
	echo "check.sh: streamed conformance gate OK"

	# Sharded conformance gate: run the multi-group scenario with 10%
	# cross-group multicasts, record the sharded trace directory (one
	# group-tagged stream per group plus the multicast logs), and replay
	# the sealed directory cold — per-group protocol conformance and the
	# multicast safety suite (agreement, timestamp order, no duplicates,
	# cross-group partial order) in one pass.
	sharddir="$(mktemp -d)"
	go run ./cmd/dvsim -scenario sharded -groups 3 -crossfrac 0.1 -duration 300ms -seed 3 -record "$sharddir/trace"
	go run ./cmd/dvsim -replay "$sharddir/trace"
	rm -rf "$sharddir"
	echo "check.sh: sharded conformance gate OK"

	# Sharded chaos soak in isolation (also runs in the full suite above):
	# partition/heal nemesis with >= 10% cross-group traffic, pinning the
	# cross-group partial-order invariant end to end.
	go test -race -count=1 -run 'TestShardedChaosSoak' .

	bench_guard
fi
