#!/bin/sh
# Verification gate: build, vet, and the full test suite under the race
# detector. Run before every commit touching the concurrent checking engine.
set -eux
go build ./...
go vet ./...
go test -race ./...

# Benchmark smoke: the parallel BFS must report exactly the serial step and
# state counts for the exhaustive exploration check (the allocation tail of
# the report is timing-dependent and deliberately not compared).
serial=$(go run ./cmd/dvscheck -check explore -parallel 1 -v | sed -n 's/.* \([0-9][0-9]* steps, [0-9][0-9]* states\).*/\1/p')
par=$(go run ./cmd/dvscheck -check explore -parallel 4 -v | sed -n 's/.* \([0-9][0-9]* steps, [0-9][0-9]* states\).*/\1/p')
test -n "$serial"
test "$serial" = "$par"

# Transport hardening gate: rerun the TCP connection-lifecycle, fault
# injection, and chaos-soak tests in isolation under the race detector
# (they also run in the full suite above; isolation gives the goroutine
# leak checks a clean baseline).
go test -race -count=1 -run 'TestTCP|TestFault|TestChaos' ./internal/net .
