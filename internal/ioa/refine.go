package ioa

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Refinement is a single-valued simulation relation from an implementation
// automaton to a specification automaton, in the paper's sense ("we use the
// term refinement to denote a single-valued simulation relation").
//
// Abstract is the function F of Figure 4. Plan supplies, for one
// implementation step (s, act, s'), the execution fragment α of the
// specification required by Lemma 5.8: a (possibly empty) sequence of
// specification actions whose trace equals trace(act).
type Refinement interface {
	// Abstract maps an implementation state to the corresponding
	// specification state F(s).
	Abstract(impl Automaton) (Automaton, error)
	// Plan returns the specification actions simulating the given
	// implementation step, as a function of the step's pre-state and
	// action only. pre must not be mutated. Deriving the plan from the
	// pre-state alone (the post-state is determined by pre and act anyway,
	// the automata being deterministic per action) lets the random-walk
	// checker plan before performing, eliminating a full implementation
	// Clone per step.
	Plan(pre Automaton, act Action) ([]Action, error)
	// SpecInitial returns a fresh specification automaton in its initial
	// state, used to check the Lemma 5.7 obligation F(init) = init.
	SpecInitial() Automaton
}

// CheckerConfig configures a refinement check.
type CheckerConfig struct {
	// Steps per execution.
	Steps int
	// Seed for the pseudo-random schedule.
	Seed int64
	// InputWeight as in Executor.
	InputWeight int
	// Parallel is the worker count for the seed fan-out entry points
	// (0 = GOMAXPROCS, 1 = serial); single-execution checks ignore it.
	Parallel int
	// ImplInvariants are checked on every reachable implementation state.
	ImplInvariants []Invariant
	// SpecInvariants are checked on every intermediate specification state.
	SpecInvariants []Invariant
}

// CheckRefinement drives the implementation automaton through a
// pseudo-random execution and verifies, for every step, the two obligations
// of a refinement:
//
//  1. F(initial implementation state) is the initial specification state
//     (Lemma 5.7), and
//  2. for each step (s, act, s'), the planned specification fragment is
//     enabled from F(s), has the same external trace as the step, and ends
//     exactly in F(s') (Lemma 5.8).
//
// The implementation automaton is mutated; pass a fresh instance per call.
func CheckRefinement(impl Automaton, ref Refinement, env Environment, cfg CheckerConfig) (CheckReport, error) {
	start := time.Now()
	rep := CheckReport{Executions: 1, States: 1}
	defer func() { rep.Wall = time.Since(start) }()
	if env == nil {
		env = NoEnvironment
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weight := cfg.InputWeight
	if weight <= 0 {
		weight = 1
	}
	nImplInvs := int64(countInvs(cfg.ImplInvariants))

	// Lemma 5.7: F maps the initial state to an initial spec state.
	absCur, err := ref.Abstract(impl)
	if err != nil {
		return rep, fmt.Errorf("abstract initial state: %w", err)
	}
	specInit := ref.SpecInitial()
	if FpOf(absCur) != FpOf(specInit) {
		return rep, fmt.Errorf("F(init) is not the spec initial state:\n  F(init) = %s\n  init    = %s",
			FingerprintString(absCur), FingerprintString(specInit))
	}
	rep.InvariantEvals += nImplInvs
	if err := checkInvariants(impl, cfg.ImplInvariants); err != nil {
		return rep, &StepError{Step: 0, Action: Action{Name: "<init>"}, Fingerprint: FingerprintString(impl), Err: err}
	}

	for step := 1; step <= cfg.Steps; step++ {
		act, ok := pickAction(impl, env, rng, weight)
		if !ok {
			return rep, nil
		}
		// Plan from the live pre-state, then perform in place: the walk
		// needs no pre-state after this, so the full per-step
		// implementation Clone this loop used to take (the dominant
		// allocation of the refinement check) is gone.
		plan, err := ref.Plan(impl, act)
		if err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: fmt.Errorf("plan: %w", err)}
		}
		if err := impl.Perform(act); err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: fmt.Errorf("perform: %w", err)}
		}
		rep.Steps++
		rep.States++
		rep.InvariantEvals += nImplInvs
		if err := checkInvariants(impl, cfg.ImplInvariants); err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: err}
		}
		// The walk is sequential, so F(post) of this step is F(pre) of the
		// next: one Abstract call per step instead of two.
		absPost, err := ref.Abstract(impl)
		if err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: fmt.Errorf("abstract post-state: %w", err)}
		}
		if err := checkPlanExecution(plan, act, absCur, absPost, cfg.SpecInvariants, &rep); err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: err}
		}
		absCur = absPost
	}
	return rep, nil
}

// CheckRefinementSeeds repeats CheckRefinement across seeds base..base+n-1
// with a fresh implementation automaton (from mk) and a fresh environment
// (from mkEnv, which receives the seed and may be nil) per seed, fanned out
// to cfg.Parallel workers. The returned error is a *SeedError for the
// lowest failing seed regardless of worker completion order.
func CheckRefinementSeeds(n int, mk func() Automaton, ref Refinement, mkEnv func(seed int64) Environment, cfg CheckerConfig) (CheckReport, error) {
	base := cfg.Seed
	return seedFanOut(cfg.Parallel, n, func(i int) (CheckReport, error) {
		run := cfg
		run.Seed = base + int64(i)
		var env Environment
		if mkEnv != nil {
			env = mkEnv(run.Seed)
		}
		rep, err := CheckRefinement(mk(), ref, env, run)
		if err != nil {
			return rep, &SeedError{Seed: run.Seed, Err: err}
		}
		return rep, nil
	})
}

// checkPlannedStep is the core of the Lemma 5.8 check with F(pre) and
// F(post) already computed. absPre is never mutated — the planned fragment
// runs on a clone — so callers may cache it across all outgoing edges of a
// state (Explore) or across consecutive steps of a walk (CheckRefinement).
func checkPlannedStep(pre Automaton, act Action, absPre, absPost Automaton, ref Refinement, specInvs []Invariant, rep *CheckReport) error {
	plan, err := ref.Plan(pre, act)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	return checkPlanExecution(plan, act, absPre, absPost, specInvs, rep)
}

// checkPlanExecution verifies a precomputed plan: trace equality with the
// step, enabledness of every planned action from F(pre), spec invariants on
// the intermediate states, and F(post) as the end state.
func checkPlanExecution(plan []Action, act Action, absPre, absPost Automaton, specInvs []Invariant, rep *CheckReport) error {
	// The plan's external trace must equal the step's external trace: one
	// matching external action if the step is external, none otherwise.
	// Compared pairwise to avoid building trace slices per edge.
	externals := 0
	match := true
	for _, pa := range plan {
		if !pa.External() {
			continue
		}
		externals++
		if externals > 1 || !act.External() || pa.Key() != act.Key() {
			match = false
		}
	}
	if act.External() && externals != 1 {
		match = false
	}
	if !match {
		var gotTrace, wantTrace []string
		for _, pa := range plan {
			if pa.External() {
				gotTrace = append(gotTrace, pa.Key())
			}
		}
		if act.External() {
			wantTrace = []string{act.Key()}
		}
		return fmt.Errorf("plan trace %v does not match step trace %v", gotTrace, wantTrace)
	}

	// Execute the fragment from F(pre); every action must be enabled. An
	// empty plan leaves the spec state untouched, so the clone is skipped.
	state := absPre
	if len(plan) > 0 {
		nSpecInvs := int64(countInvs(specInvs))
		state = absPre.Clone()
		for i, pa := range plan {
			if err := state.Perform(pa); err != nil {
				return fmt.Errorf("spec action %d/%d (%s) not enabled: %w", i+1, len(plan), pa, err)
			}
			if rep != nil {
				rep.InvariantEvals += nSpecInvs
			}
			if err := checkInvariants(state, specInvs); err != nil {
				return fmt.Errorf("after spec action %s: %w", pa, err)
			}
		}
	}
	if FpOf(state) != FpOf(absPost) {
		return errors.New("simulated spec state differs from F(post):\n  simulated = " + FingerprintString(state) + "\n  F(post)   = " + FingerprintString(absPost))
	}
	return nil
}

// Monitor accepts the external actions of an implementation one at a time,
// failing if the observed trace is not a trace of the monitored
// specification. It supports forward-simulation style trace-inclusion checks
// where the specification's nondeterminism can be resolved greedily.
type Monitor interface {
	// Observe consumes one external action; it returns an error if no
	// specification execution can extend the previously observed trace with
	// this action.
	Observe(act Action) error
}

// CheckTraceInclusion drives the implementation through a pseudo-random
// execution, feeding every external action to the monitor.
func CheckTraceInclusion(impl Automaton, mon Monitor, env Environment, cfg CheckerConfig) (CheckReport, error) {
	start := time.Now()
	rep := CheckReport{Executions: 1, States: 1}
	defer func() { rep.Wall = time.Since(start) }()
	if env == nil {
		env = NoEnvironment
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weight := cfg.InputWeight
	if weight <= 0 {
		weight = 1
	}
	nInvs := int64(countInvs(cfg.ImplInvariants))
	rep.InvariantEvals += nInvs
	if err := checkInvariants(impl, cfg.ImplInvariants); err != nil {
		return rep, &StepError{Step: 0, Action: Action{Name: "<init>"}, Fingerprint: FingerprintString(impl), Err: err}
	}
	for step := 1; step <= cfg.Steps; step++ {
		act, ok := pickAction(impl, env, rng, weight)
		if !ok {
			return rep, nil
		}
		if err := impl.Perform(act); err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: fmt.Errorf("perform: %w", err)}
		}
		rep.Steps++
		rep.States++
		rep.InvariantEvals += nInvs
		if err := checkInvariants(impl, cfg.ImplInvariants); err != nil {
			return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: err}
		}
		if act.External() {
			if err := mon.Observe(act); err != nil {
				return rep, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(impl), Err: fmt.Errorf("trace rejected: %w", err)}
			}
		}
	}
	return rep, nil
}

// CheckTraceInclusionSeeds repeats CheckTraceInclusion across seeds
// base..base+n-1, with a fresh implementation, monitor, and environment per
// seed (mk receives the seed so environments can derive their own seeds
// from it), fanned out to cfg.Parallel workers. The returned error is a
// *SeedError for the lowest failing seed regardless of worker completion
// order.
func CheckTraceInclusionSeeds(n int, mk func(seed int64) (Automaton, Monitor, Environment), cfg CheckerConfig) (CheckReport, error) {
	base := cfg.Seed
	return seedFanOut(cfg.Parallel, n, func(i int) (CheckReport, error) {
		run := cfg
		run.Seed = base + int64(i)
		impl, mon, env := mk(run.Seed)
		rep, err := CheckTraceInclusion(impl, mon, env, run)
		if err != nil {
			return rep, &SeedError{Seed: run.Seed, Err: err}
		}
		return rep, nil
	})
}
