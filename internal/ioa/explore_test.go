package ioa

import (
	"errors"
	"testing"
)

// ring is a toy automaton with a known state space: a counter modulo m with
// inc/dec actions, 2m edges, m states.
type ring struct{ n, m int }

func (r *ring) Name() string { return "ring" }
func (r *ring) Enabled() []Action {
	return []Action{
		{Name: "inc", Kind: KindInternal},
		{Name: "dec", Kind: KindInternal},
	}
}
func (r *ring) Perform(a Action) error {
	switch a.Name {
	case "inc":
		r.n = (r.n + 1) % r.m
	case "dec":
		r.n = (r.n - 1 + r.m) % r.m
	default:
		return errors.New("unknown")
	}
	return nil
}
func (r *ring) Clone() Automaton             { cp := *r; return &cp }
func (r *ring) Fingerprint(f *Fingerprinter) { f.AddInt("n", r.n) }

func TestExploreVisitsWholeSpace(t *testing.T) {
	res, err := Explore(&ring{m: 10}, nil, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 10 {
		t.Errorf("states = %d, want 10", res.States)
	}
	if res.Edges != 20 {
		t.Errorf("edges = %d, want 20", res.Edges)
	}
	if res.Truncated {
		t.Error("space should be exhausted")
	}
}

func TestExploreDepthBound(t *testing.T) {
	res, err := Explore(&ring{m: 100}, nil, ExploreConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// From 0 within 3 steps: {0, 1, 2, 3, 97, 98, 99}.
	if res.States != 7 {
		t.Errorf("states = %d, want 7", res.States)
	}
	if !res.Truncated {
		t.Error("depth bound must report truncation")
	}
}

func TestExploreStateBound(t *testing.T) {
	res, err := Explore(&ring{m: 1000}, nil, ExploreConfig{MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 5 || !res.Truncated {
		t.Errorf("res = %+v", res)
	}
}

func TestExploreFindsInvariantViolation(t *testing.T) {
	inv := Invariant{Name: "n<5", Check: func(a Automaton) error {
		if a.(*ring).n >= 5 {
			return errors.New("too big")
		}
		return nil
	}}
	_, err := Explore(&ring{m: 10}, nil, ExploreConfig{Invariants: []Invariant{inv}})
	if err == nil {
		t.Fatal("violation not found")
	}
}

func TestExploreChecksRefinementEdges(t *testing.T) {
	// Identity refinement on the ring holds; a corrupted abstraction fails.
	if _, err := Explore(&ring{m: 6}, nil, ExploreConfig{Refinement: ringRefinement{}}); err != nil {
		t.Fatalf("identity refinement failed: %v", err)
	}
	if _, err := Explore(&ring{m: 6}, nil, ExploreConfig{Refinement: ringRefinement{bad: true}}); err == nil {
		t.Fatal("bad refinement not detected")
	}
}

type ringRefinement struct{ bad bool }

func (r ringRefinement) Abstract(a Automaton) (Automaton, error) {
	cp := *(a.(*ring))
	if r.bad {
		cp.n = (cp.n + 1) % cp.m
	}
	return &cp, nil
}
func (r ringRefinement) SpecInitial() Automaton { return &ring{m: 6} }
func (r ringRefinement) Plan(pre Automaton, act Action) ([]Action, error) {
	return []Action{act}, nil
}
