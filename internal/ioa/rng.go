package ioa

import (
	"math/rand"
	"sync"
)

var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// SeededRng returns a pooled *rand.Rand reseeded to seed. The stream is
// identical to rand.New(rand.NewSource(seed)) — reseeding runs the same
// source initialization — but the ~5 KB source table is recycled instead of
// allocated per call, which matters for state-pure environments that derive
// a fresh PRNG from every visited state. Release with PutRng; do not retain
// the instance afterwards.
func SeededRng(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

// PutRng returns a SeededRng instance to the pool.
func PutRng(r *rand.Rand) { rngPool.Put(r) }
