package ioa

import (
	"math/rand"
	"sync"
)

// splitmixSource is a math/rand Source64 with O(1) seeding: 8 bytes of
// state advanced by the splitmix64 generator (Steele et al., "Fast
// splittable pseudorandom number generators"). The stock rand.NewSource
// re-initializes a ~5 KB feedback table on every Seed call, which dominated
// the CPU profile of state-pure environments that derive a fresh PRNG from
// every visited state (one reseed per step), and whose table writes saturate
// memory bandwidth once several checker workers reseed concurrently.
// Determinism, not cryptography, is the contract: equal seeds yield equal
// streams, and the streams are stable across processes.
type splitmixSource struct {
	state uint64
}

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

var rngPool = sync.Pool{New: func() any { return rand.New(&splitmixSource{}) }}

// SeededRng returns a pooled *rand.Rand over a splitmix64 source reseeded
// to seed. Reseeding writes one word, so environments that derive a fresh
// PRNG from every visited state (see StateSeed) pay neither the allocation
// nor the table-initialization cost of rand.New(rand.NewSource(seed)).
// Release with PutRng; do not retain the instance afterwards.
func SeededRng(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

// PutRng returns a SeededRng instance to the pool.
func PutRng(r *rand.Rand) { rngPool.Put(r) }
