package ioa

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// bomb is a toy automaton with an input "boom" that trips a flag; the
// tripwire invariant below fails exactly when the flag is set. Fanning it
// out with an environment that offers boom only at chosen seeds gives a
// failure injected at *known* seeds, so tests can assert which seed every
// execution mode reports.
type bomb struct {
	n       int
	tripped bool
}

func (b *bomb) Name() string { return "bomb" }
func (b *bomb) Enabled() []Action {
	if b.n < 50 {
		return []Action{{Name: "tick", Kind: KindInternal}}
	}
	return nil
}
func (b *bomb) Perform(a Action) error {
	switch a.Name {
	case "tick":
		b.n++
	case "boom":
		b.tripped = true
	default:
		return errors.New("unknown")
	}
	return nil
}
func (b *bomb) Clone() Automaton { cp := *b; return &cp }
func (b *bomb) Fingerprint(f *Fingerprinter) {
	f.AddInt("n", b.n)
	if b.tripped {
		f.Add("tripped", "true")
	}
}

var tripwire = []Invariant{{Name: "never tripped", Check: func(a Automaton) error {
	if a.(*bomb).tripped {
		return errors.New("tripped")
	}
	return nil
}}}

// boomEnv offers the boom input only for the given seeds.
func boomEnv(failingSeeds ...int64) func(seed int64) Environment {
	return func(seed int64) Environment {
		for _, s := range failingSeeds {
			if seed == s {
				return EnvironmentFunc(func(Automaton) []Action {
					return []Action{{Name: "boom", Kind: KindInput}}
				})
			}
		}
		return nil
	}
}

// TestRunSeedsReportsLowestFailingSeed injects failures at seeds 23, 7 and
// 11 out of 40 and asserts that serial, single-worker, and NumCPU-worker
// fan-outs all report seed 7 with the identical StepError. Run under
// `go test -race` this also exercises the worker pool for data races.
func TestRunSeedsReportsLowestFailingSeed(t *testing.T) {
	mkEnv := boomEnv(23, 7, 11)
	var want string
	for _, parallel := range []int{1, 0, runtime.NumCPU(), 3} {
		ex := &Executor{Steps: 30, Parallel: parallel}
		_, err := ex.RunSeeds(40, func() Automaton { return &bomb{} }, mkEnv, tripwire)
		if err == nil {
			t.Fatalf("parallel=%d: injected failure not found", parallel)
		}
		var se *SeedError
		if !errors.As(err, &se) {
			t.Fatalf("parallel=%d: expected SeedError, got %T", parallel, err)
		}
		if se.Seed != 7 {
			t.Errorf("parallel=%d: reported seed %d, want lowest failing seed 7", parallel, se.Seed)
		}
		var step *StepError
		if !errors.As(err, &step) {
			t.Fatalf("parallel=%d: expected StepError, got %v", parallel, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("parallel=%d: error diverged:\n  got  %q\n  want %q", parallel, err.Error(), want)
		}
	}
}

// TestRunSeedsBaseSeedOffset: the reported seed is the absolute seed (base
// + index), so it can be fed straight back as Executor.Seed.
func TestRunSeedsBaseSeedOffset(t *testing.T) {
	ex := &Executor{Steps: 30, Seed: 100, Parallel: 4}
	_, err := ex.RunSeeds(40, func() Automaton { return &bomb{} }, boomEnv(117), tripwire)
	var se *SeedError
	if !errors.As(err, &se) || se.Seed != 117 {
		t.Fatalf("got %v, want failure at seed 117", err)
	}
	// Reproduce in isolation.
	ex2 := &Executor{Steps: 30, Seed: se.Seed}
	_, err2 := ex2.RunSeeds(1, func() Automaton { return &bomb{} }, boomEnv(117), tripwire)
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("seed %d did not reproduce identically: %v vs %v", se.Seed, err2, err)
	}
}

// TestCheckRefinementSeedsLowestFailure injects a refinement-breaking input
// (identityBreaker mishandles boom) at seeds 13 and 5; every fan-out width
// must report seed 5.
func TestCheckRefinementSeedsLowestFailure(t *testing.T) {
	for _, parallel := range []int{1, runtime.NumCPU()} {
		cfg := CheckerConfig{Steps: 30, Parallel: parallel}
		_, err := CheckRefinementSeeds(20,
			func() Automaton { return &bomb{} },
			bombRefinement{}, boomEnv(13, 5), cfg)
		var se *SeedError
		if !errors.As(err, &se) || se.Seed != 5 {
			t.Errorf("parallel=%d: got %v, want failure at seed 5", parallel, err)
		}
	}
}

// bombRefinement is the identity refinement on bomb except that it cannot
// plan the boom input, so any seed whose environment injects boom fails.
type bombRefinement struct{}

func (bombRefinement) Abstract(a Automaton) (Automaton, error) { return a.Clone(), nil }
func (bombRefinement) SpecInitial() Automaton                  { return &bomb{} }
func (bombRefinement) Plan(pre Automaton, act Action) ([]Action, error) {
	if act.Name == "boom" {
		return nil, errors.New("unplannable input")
	}
	return []Action{act}, nil
}

// TestCheckTraceInclusionSeedsLowestFailure: the monitor rejects boom, and
// every fan-out width reports the lowest injected seed.
type noBoomMonitor struct{}

func (noBoomMonitor) Observe(act Action) error {
	if act.Name == "boom" {
		return errors.New("boom is not a spec trace")
	}
	return nil
}

func TestCheckTraceInclusionSeedsLowestFailure(t *testing.T) {
	mkEnv := boomEnv(19, 3)
	for _, parallel := range []int{1, runtime.NumCPU()} {
		cfg := CheckerConfig{Steps: 30, Parallel: parallel}
		_, err := CheckTraceInclusionSeeds(25,
			func(seed int64) (Automaton, Monitor, Environment) {
				return &bomb{}, noBoomMonitor{}, mkEnv(seed)
			}, cfg)
		var se *SeedError
		if !errors.As(err, &se) || se.Seed != 3 {
			t.Errorf("parallel=%d: got %v, want failure at seed 3", parallel, err)
		}
	}
}

// TestExploreParallelDeterministic: the level-synchronous BFS must visit
// the identical state/edge/depth counts at every worker width.
func TestExploreParallelDeterministic(t *testing.T) {
	want, err := Explore(&ring{m: 500}, nil, ExploreConfig{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.States != 500 || want.Edges != 1000 {
		t.Fatalf("serial baseline wrong: %+v", want)
	}
	for _, parallel := range []int{0, 2, runtime.NumCPU()} {
		got, err := Explore(&ring{m: 500}, nil, ExploreConfig{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if got.States != want.States || got.Edges != want.Edges || got.MaxDepth != want.MaxDepth {
			t.Errorf("parallel=%d: counts diverged: got %+v, want %+v", parallel, got, want)
		}
	}
}

// TestExploreParallelFindsViolation: invariant violations surface at every
// worker width, with the same deterministic error.
func TestExploreParallelFindsViolation(t *testing.T) {
	inv := Invariant{Name: "n<200", Check: func(a Automaton) error {
		if a.(*ring).n >= 200 && a.(*ring).n < 300 {
			return errors.New("forbidden band")
		}
		return nil
	}}
	var want string
	for _, parallel := range []int{1, runtime.NumCPU()} {
		_, err := Explore(&ring{m: 1000}, nil, ExploreConfig{Parallel: parallel, Invariants: []Invariant{inv}})
		if err == nil {
			t.Fatalf("parallel=%d: violation not found", parallel)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("parallel=%d: error diverged:\n  got  %q\n  want %q", parallel, err.Error(), want)
		}
	}
}

// TestExploreParallelStateBound: truncation by MaxStates is deterministic
// because discoveries are admitted in fingerprint order after each level.
func TestExploreParallelStateBound(t *testing.T) {
	for _, parallel := range []int{1, runtime.NumCPU()} {
		res, err := Explore(&ring{m: 1000}, nil, ExploreConfig{Parallel: parallel, MaxStates: 55})
		if err != nil {
			t.Fatal(err)
		}
		if res.States != 55 || !res.Truncated {
			t.Errorf("parallel=%d: res = %+v", parallel, res)
		}
	}
}

// testFp derives a well-spread Fp from an integer (splitmix64 on two
// streams), so the open-addressing stripes see realistic keys.
func testFp(i int) Fp {
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	return Fp{Hi: mix(uint64(i) + 1), Lo: mix(uint64(i) + 0x9e3779b97f4a7c15)}
}

func TestFpSet(t *testing.T) {
	s := newFpSet()
	var wg sync.WaitGroup
	dups := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				if !s.Add(testFp(i)) {
					dups[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 20000 {
		t.Errorf("len = %d, want 20000", s.Len())
	}
	total := 0
	for _, d := range dups {
		total += d
	}
	if total != 7*20000 {
		t.Errorf("duplicate adds = %d, want %d", total, 7*20000)
	}
}

// TestFpSetZeroFingerprint: the zero Fp doubles as the empty-slot marker, so
// it is stored out of band; adding it must still dedup correctly.
func TestFpSetZeroFingerprint(t *testing.T) {
	s := newFpSet()
	if !s.Add(Fp{}) {
		t.Error("first add of zero fingerprint must succeed")
	}
	if s.Add(Fp{}) {
		t.Error("second add of zero fingerprint must report duplicate")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(1) != 1 || Workers(5) != 5 {
		t.Error("explicit worker counts must be respected")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaults must be at least one worker")
	}
}

func TestStateSeedPureAndDiscriminating(t *testing.T) {
	a := &ring{n: 3, m: 10}
	if StateSeed(1, a) != StateSeed(1, a) {
		t.Error("StateSeed must be deterministic")
	}
	if StateSeed(1, a) == StateSeed(2, a) {
		t.Error("StateSeed must depend on the base seed")
	}
	b := &ring{n: 4, m: 10}
	if StateSeed(1, a) == StateSeed(1, b) {
		t.Error("StateSeed must depend on the state")
	}
}
