// Package ioa is a small framework for executable I/O automata in the style
// of Lynch and Tuttle, as used by the DVS paper. It provides:
//
//   - explicit-state automata with enumerable locally-controlled actions,
//   - a seeded pseudo-random executor that drives automata through long
//     executions while checking invariants at every reachable state,
//   - a per-step refinement (single-valued simulation) checker that
//     mechanizes the structure of the paper's Lemma 5.8, and
//   - a trace monitor interface for forward-simulation style checks.
//
// Safety properties only; fairness and liveness are out of scope, exactly as
// in the paper.
package ioa

import (
	"fmt"
	"strconv"
)

// Kind classifies an action as input, output, or internal.
type Kind int

// Action kinds.
const (
	KindInput Kind = iota + 1
	KindOutput
	KindInternal
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindInternal:
		return "internal"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Action is a named transition with an automaton-specific parameter. Param
// must render deterministically (implement fmt.Stringer, or be a string,
// integer, or nil) so actions can be compared across automata.
type Action struct {
	Name  string
	Kind  Kind
	Param any
}

// External reports whether the action is part of the external signature
// (input or output).
func (a Action) External() bool { return a.Kind == KindInput || a.Kind == KindOutput }

// Key is a canonical identity for the action, used to match external actions
// between implementation and specification traces. The kind is deliberately
// excluded: an output of the implementation matches the same-named output of
// the specification.
func (a Action) Key() string { return a.Name + "(" + paramString(a.Param) + ")" }

// String renders the action with its kind.
func (a Action) String() string { return a.Kind.String() + " " + a.Key() }

func paramString(p any) string {
	switch v := p.(type) {
	case nil:
		return ""
	case string:
		return v
	case int:
		return strconv.Itoa(v)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Automaton is an executable I/O automaton. Implementations are
// single-threaded value-semantics state machines: Clone must produce a fully
// independent copy, and Fingerprint must write a canonical rendering of the
// state (equal states ⇒ equal fingerprints, and for the automata in this
// repository the converse as well).
type Automaton interface {
	// Name identifies the automaton (for diagnostics).
	Name() string
	// Enabled enumerates the currently enabled locally-controlled (output
	// and internal) actions. Input actions are always enabled and are
	// supplied by an Environment.
	Enabled() []Action
	// Perform applies the transition for the action, returning an error if
	// the action is unknown or its precondition does not hold.
	Perform(a Action) error
	// Clone returns an independent deep copy.
	Clone() Automaton
	// Fingerprint writes the canonical state components into f, one
	// key=value line per component (omit default-valued components). The
	// digest is order-canonical, so writes driven by map iteration are
	// fine. Use FpOf / FingerprintString / FingerprintBoth to consume it.
	Fingerprint(f *Fingerprinter)
}

// Environment supplies candidate input actions for an automaton's current
// state. Implementations may consult the automaton state (read-only) to
// produce well-typed inputs.
type Environment interface {
	Inputs(a Automaton) []Action
}

// EnvironmentFunc adapts a function to the Environment interface.
type EnvironmentFunc func(a Automaton) []Action

// Inputs implements Environment.
func (f EnvironmentFunc) Inputs(a Automaton) []Action { return f(a) }

// NoEnvironment is an Environment that supplies no inputs.
var NoEnvironment Environment = EnvironmentFunc(func(Automaton) []Action { return nil })

// Invariant is a named predicate over automaton states. Check returns nil if
// the invariant holds.
type Invariant struct {
	Name  string
	Check func(a Automaton) error
}

// StepError describes a violation found during an execution: which step,
// which action, and the state fingerprint at the point of failure.
type StepError struct {
	Step        int
	Action      Action
	Fingerprint string
	Err         error
}

// Error implements the error interface.
func (e *StepError) Error() string {
	return fmt.Sprintf("step %d (%s): %v", e.Step, e.Action, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *StepError) Unwrap() error { return e.Err }

// SortActions orders actions deterministically by name and parameter key,
// so that Enabled() results do not depend on map iteration order and seeded
// executions are reproducible. Parameter keys are rendered once per action,
// not once per comparison: paramString goes through fmt for every
// non-trivial parameter, and rebuilding it O(n²) times inside the sort was
// a measurable slice of the per-state allocation profile.
func SortActions(acts []Action) {
	if len(acts) < 2 {
		return
	}
	keys := make([]string, len(acts))
	for i := range acts {
		keys[i] = paramString(acts[i].Param)
	}
	// insertion sort, moving the cached keys in tandem; action lists are
	// short and this avoids importing sort for a comparator closure
	// allocation on the hot path.
	for i := 1; i < len(acts); i++ {
		for j := i; j > 0; j-- {
			if acts[j].Name > acts[j-1].Name ||
				(acts[j].Name == acts[j-1].Name && keys[j] >= keys[j-1]) {
				break
			}
			acts[j], acts[j-1] = acts[j-1], acts[j]
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
