package ioa

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Fp is a 128-bit state fingerprint: the order-canonical digest of an
// automaton's state components. Two states with equal component multisets
// produce equal Fps regardless of map iteration order; distinct states
// collide with probability ~n²/2¹²⁹ (see DESIGN.md §6), which the
// collision-audit exploration mode checks empirically.
type Fp struct {
	Hi, Lo uint64
}

// Less orders fingerprints lexicographically by (Hi, Lo); exploration admits
// each BFS level's discoveries in this order so state counts are identical
// at every worker count.
func (fp Fp) Less(o Fp) bool {
	if fp.Hi != o.Hi {
		return fp.Hi < o.Hi
	}
	return fp.Lo < o.Lo
}

// String renders the fingerprint as 32 hex digits.
func (fp Fp) String() string {
	return fmt.Sprintf("%016x%016x", fp.Hi, fp.Lo)
}

// FNV-1a 128-bit parameters. The prime is 2^88 + 2^8 + 0x3b, so its high
// 64-bit word is 1<<24 and its low word is 0x13b. The hash is deliberately
// seed-free: fingerprints must be stable across processes so that seeded
// schedules derived from StateSeed reproduce exactly when a failing seed is
// re-run (which rules out hash/maphash and its per-process seed).
const (
	fnv128OffsetHi = 0x6c62272e07bb0142
	fnv128OffsetLo = 0x62b821756295c58d
	fnv128PrimeLo  = 0x13b
)

// Fingerprinter accumulates canonical state fingerprints. State components
// are written as lines — Begin(key), value writes, End() — and each finished
// line is hashed with FNV-1a-128 and folded into a commutative 128-bit sum,
// so the digest is independent of the order in which components are written
// (map iteration order cannot leak in). Components with default values
// should simply be omitted by the caller, so that logically equal states
// fingerprint identically regardless of which map keys happen to be
// materialized.
//
// The hash-only mode is allocation-free. Recording mode (SetRecording)
// additionally collects the readable lines so String can render the
// sorted-and-joined text form — used for error messages and the
// collision-audit tests, never on the exploration hot path.
//
// The zero value is ready to use; Reset allows reuse across states without
// reallocating internal buffers.
type Fingerprinter struct {
	hi, lo   uint64 // commutative 128-bit sum over finished line hashes
	n        uint64 // number of finished lines
	lhi, llo uint64 // FNV-1a-128 state of the open line
	prefix   string // prepended to every line's key (see SetPrefix)

	record bool
	line   []byte   // open line text (recording mode only)
	lines  []string // finished line texts (recording mode only)
}

// Reset clears accumulated state, retaining buffers and the recording mode.
func (f *Fingerprinter) Reset() {
	f.hi, f.lo, f.n = 0, 0, 0
	f.lhi, f.llo = 0, 0
	f.prefix = ""
	f.line = f.line[:0]
	f.lines = f.lines[:0]
}

// SetRecording toggles collection of readable lines for String. Recording is
// the debug/verify mode: it allocates, so hot paths leave it off.
func (f *Fingerprinter) SetRecording(on bool) { f.record = on }

// Recording reports whether readable lines are being collected.
func (f *Fingerprinter) Recording() bool { return f.record }

// SetPrefix sets a namespace written before every subsequent line's key.
// Composite automata use it to keep component keys disjoint without
// concatenating strings per line.
func (f *Fingerprinter) SetPrefix(p string) { f.prefix = p }

// feed folds one byte into the open line's FNV-1a-128 state.
func (f *Fingerprinter) feed(c byte) {
	f.llo ^= uint64(c)
	hi, lo := bits.Mul64(f.llo, fnv128PrimeLo)
	f.lhi = f.lhi*fnv128PrimeLo + f.llo<<24 + hi
	f.llo = lo
}

// Begin opens a new line for one state component and writes prefix+key.
func (f *Fingerprinter) Begin(key string) {
	f.lhi, f.llo = fnv128OffsetHi, fnv128OffsetLo
	if f.record {
		f.line = f.line[:0]
	}
	f.Str(f.prefix)
	f.Str(key)
}

// End finishes the open line, folding its hash into the digest. The raw
// FNV state is passed through mix128 first: FNV is multiplicative, so two
// related lines (same key, value differing in one digit) have raw hashes
// differing by a small multiple of a prime power, and summing raw hashes
// would let such differences cancel between states. The finalizer destroys
// that algebraic structure, making the folded line hashes behave as
// independent uniform values.
func (f *Fingerprinter) End() {
	mhi, mlo := mix128(f.lhi, f.llo)
	var c uint64
	f.lo, c = bits.Add64(f.lo, mlo, 0)
	f.hi = f.hi + mhi + c
	f.n++
	if f.record {
		f.lines = append(f.lines, string(f.line))
	}
}

// mix128 is a nonlinear 128-bit finalizer: murmur3's fmix64 applied to each
// word, cross-coupled so both outputs depend on both inputs.
func mix128(hi, lo uint64) (uint64, uint64) {
	lo ^= hi
	lo ^= lo >> 33
	lo *= 0xff51afd7ed558ccd
	lo ^= lo >> 33
	lo *= 0xc4ceb9fe1a85ec53
	lo ^= lo >> 33
	hi ^= lo
	hi ^= hi >> 33
	hi *= 0xff51afd7ed558ccd
	hi ^= hi >> 33
	hi *= 0xc4ceb9fe1a85ec53
	hi ^= hi >> 33
	return hi, lo
}

// Str writes a string into the open line.
func (f *Fingerprinter) Str(s string) {
	for i := 0; i < len(s); i++ {
		f.feed(s[i])
	}
	if f.record {
		f.line = append(f.line, s...)
	}
}

// Byte writes one byte into the open line.
func (f *Fingerprinter) Byte(c byte) {
	f.feed(c)
	if f.record {
		f.line = append(f.line, c)
	}
}

// Int writes the decimal rendering of v into the open line.
func (f *Fingerprinter) Int(v int) {
	var buf [20]byte
	b := strconv.AppendInt(buf[:0], int64(v), 10)
	for _, c := range b {
		f.feed(c)
	}
	if f.record {
		f.line = append(f.line, b...)
	}
}

// Uint writes the decimal rendering of v into the open line.
func (f *Fingerprinter) Uint(v uint64) {
	var buf [20]byte
	b := strconv.AppendUint(buf[:0], v, 10)
	for _, c := range b {
		f.feed(c)
	}
	if f.record {
		f.line = append(f.line, b...)
	}
}

// Add records one state component as a whole key=value line.
func (f *Fingerprinter) Add(key, value string) {
	f.Begin(key)
	f.Byte('=')
	f.Str(value)
	f.End()
}

// AddInt records one integer-valued state component.
func (f *Fingerprinter) AddInt(key string, v int) {
	f.Begin(key)
	f.Byte('=')
	f.Int(v)
	f.End()
}

// Sum returns the 128-bit fingerprint of the lines written so far. The line
// count is mixed in so that the empty fingerprint is distinct from zero and
// multisets of different sizes separate even on (astronomically unlikely)
// equal sums.
func (f *Fingerprinter) Sum() Fp {
	var fp Fp
	var c uint64
	fp.Lo, c = bits.Add64(f.lo, (f.n+1)*0x9e3779b97f4a7c15, 0)
	fp.Hi = f.hi + c + (f.n+1)*0xbf58476d1ce4e5b9
	return fp
}

// String returns the canonical readable fingerprint: the recorded lines
// sorted and joined with newlines. It requires recording mode; without it
// there is no text to render and String returns a placeholder.
func (f *Fingerprinter) String() string {
	if !f.record {
		return "<fingerprint text unavailable: recording disabled>"
	}
	sort.Strings(f.lines)
	return strings.Join(f.lines, "\n")
}

// FpOf computes an automaton's 128-bit state fingerprint. This is the hot
// path: no intermediate strings are built.
func FpOf(a Automaton) Fp {
	var f Fingerprinter
	a.Fingerprint(&f)
	return f.Sum()
}

// FingerprintString computes the readable text fingerprint (sorted key=value
// lines). It allocates; use it for diagnostics, not on hot paths.
func FingerprintString(a Automaton) string {
	var f Fingerprinter
	f.SetRecording(true)
	a.Fingerprint(&f)
	return f.String()
}

// FingerprintBoth computes the hash and text fingerprints in a single pass
// over the state, guaranteeing both describe the same bytes. The
// collision-audit exploration mode is built on it.
func FingerprintBoth(a Automaton) (Fp, string) {
	var f Fingerprinter
	f.SetRecording(true)
	a.Fingerprint(&f)
	return f.Sum(), f.String()
}
