package ioa

import (
	"sort"
	"strings"
)

// Fingerprinter builds canonical state fingerprints. Components are added as
// key/value lines; String sorts the lines so that iteration order over maps
// never influences the result. Components with default values should simply
// be omitted by the caller, so that logically equal states fingerprint
// identically regardless of which map keys happen to be materialized.
type Fingerprinter struct {
	lines []string
}

// Add records one state component.
func (f *Fingerprinter) Add(key, value string) {
	f.lines = append(f.lines, key+"="+value)
}

// String returns the canonical fingerprint.
func (f *Fingerprinter) String() string {
	sort.Strings(f.lines)
	return strings.Join(f.lines, "\n")
}
