package ioa

// Symmetric is implemented by automata that support symmetry reduction over
// process identities. The symmetry group is chosen by the automaton —
// typically the permutations of its process universe that fix the initial
// state — and must satisfy the usual group laws (closure under composition
// and inverse, identity included).
//
// Soundness of exploring representatives instead of states requires the
// whole checked system to be equivariant under the group: for every group
// element π and every step s --act--> s', π(s) --π(act)--> π(s') must also
// be a step (of the automaton AND of the environment's input enumeration),
// and every invariant must hold on s iff it holds on π(s). Under those
// conditions every reachable state has a reachable representative, so
// checking the quotient checks the full space. ExploreConfig.AuditSymmetry
// machine-checks the representative function; equivariance is a property of
// the model and environment, argued in DESIGN.md §6.7.
type Symmetric interface {
	Automaton
	// Canonicalize returns the canonical representative of the receiver's
	// orbit: a pure function of the state with Canonicalize(π(s)) equal (by
	// fingerprint) to Canonicalize(s) for every group element π. The
	// receiver must not be mutated; the result may be the receiver itself
	// when it is already canonical.
	Canonicalize() Automaton
	// Orbit returns the receiver's full orbit under the symmetry group,
	// including (an equal copy of) the receiver itself. Used by
	// AuditSymmetry; need not be allocation-free.
	Orbit() []Automaton
}
