package ioa

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Explore performs exhaustive breadth-first exploration of an automaton's
// reachable state space under a finitely-branching environment, checking
// every invariant at every distinct state and, optionally, the refinement
// step-correspondence on every edge. Unlike the random executor, this is a
// complete check up to the given bounds: if it passes, no reachable state
// within the bounds violates the properties.
//
// States are deduplicated by 128-bit hash fingerprint, so automata must
// produce canonical fingerprints (equal states ⇔ equal fingerprints), and
// the environment's Inputs must be a pure function of the automaton state
// (equal state ⇒ equal successors) — see StateSeed. AuditFingerprints
// cross-checks the hash against the readable string representation.

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxStates caps the number of distinct states visited (0 = 1 << 20).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// Parallel is the number of BFS workers per level (0 = GOMAXPROCS,
	// 1 = serial). State, edge, and depth counts are identical for every
	// worker count: the BFS is level-synchronous, each level's frontier is
	// sorted by fingerprint, and new states are admitted in that order.
	Parallel int
	// Invariants are checked at every distinct state.
	Invariants []Invariant
	// Refinement, if non-nil, is checked on every explored edge. The
	// abstracted spec state F(s) is computed once per distinct state and
	// cached on the frontier, not recomputed per outgoing edge.
	Refinement Refinement
	// SpecInvariants are checked on intermediate spec states when
	// Refinement is set.
	SpecInvariants []Invariant
	// AuditFingerprints enables the dual-fingerprint verification mode:
	// every visited state is fingerprinted both as a 128-bit hash and as
	// the readable sorted-line string, and the exploration fails if
	// hash-equality and string-equality ever disagree (a hash collision or
	// a non-canonical digest). Expensive; for tests.
	AuditFingerprints bool
}

// ExploreResult reports exploration statistics.
type ExploreResult struct {
	States         int           // distinct states visited
	Edges          int           // transitions explored
	Truncated      bool          // hit MaxStates or MaxDepth before exhausting the space
	MaxDepth       int           // deepest level reached
	InvariantEvals int64         // invariant predicate evaluations
	Wall           time.Duration // elapsed wall-clock time
	AllocBytes     uint64        // heap allocation delta over the exploration
	GCCycles       uint32        // GC cycles completed during the exploration
}

// Report converts the exploration statistics into the common CheckReport
// shape (one "execution"; steps = edges, states = distinct states).
func (r ExploreResult) Report() CheckReport {
	return CheckReport{
		Executions:     1,
		Steps:          int64(r.Edges),
		States:         int64(r.States),
		InvariantEvals: r.InvariantEvals,
		Wall:           r.Wall,
		AllocBytes:     r.AllocBytes,
		GCCycles:       r.GCCycles,
	}
}

// exploreErr is a worker-discovered failure keyed by its deterministic
// position in the level: (frontier index, action index). The lowest key is
// the error the serial in-order BFS would have hit first.
type exploreErr struct {
	frontier, action int
	err              error
}

func (e *exploreErr) better(o *exploreErr) bool {
	if o == nil {
		return true
	}
	if e.frontier != o.frontier {
		return e.frontier < o.frontier
	}
	return e.action < o.action
}

// frontierEntry is one distinct state queued for expansion, together with
// its cached abstraction F(a) when a refinement is being checked.
type frontierEntry struct {
	a   Automaton
	abs Automaton
}

// discovery is a state first reached at the current level, carried to the
// post-level admission step.
type discovery struct {
	fp  Fp
	a   Automaton
	abs Automaton
}

// exploreScratch is per-worker reusable storage: the fingerprint digest, the
// local discovery buffer, and the action buffer survive across frontier
// entries and across levels, so steady-state expansion does not allocate
// for bookkeeping.
type exploreScratch struct {
	f     Fingerprinter
	found []discovery
	acts  []Action
}

// fpAudit cross-checks hash fingerprints against string fingerprints for
// every visited state (AuditFingerprints mode).
type fpAudit struct {
	mu    sync.Mutex
	byFp  map[Fp]string
	byStr map[string]Fp
}

func newFpAudit() *fpAudit {
	return &fpAudit{byFp: make(map[Fp]string), byStr: make(map[string]Fp)}
}

// check records the (hash, string) pair for one state and fails if it is
// inconsistent with any previously visited state: two distinct strings with
// one hash is a collision; two distinct hashes for one string means the
// digest is not a function of the state text.
func (au *fpAudit) check(fp Fp, s string) error {
	au.mu.Lock()
	defer au.mu.Unlock()
	if prev, ok := au.byFp[fp]; ok && prev != s {
		return fmt.Errorf("fingerprint collision: hash %v for two distinct states:\n--- state A ---\n%s\n--- state B ---\n%s", fp, prev, s)
	}
	if prev, ok := au.byStr[s]; ok && prev != fp {
		return fmt.Errorf("non-canonical fingerprint: state hashed to both %v and %v:\n%s", prev, fp, s)
	}
	au.byFp[fp] = s
	au.byStr[s] = fp
	return nil
}

// Explore runs the exhaustive check across cfg.Parallel workers. The
// environment supplies the (finitely many) input actions available in each
// state; locally controlled actions come from Enabled. The initial
// automaton is not mutated.
func Explore(initial Automaton, env Environment, cfg ExploreConfig) (res ExploreResult, err error) {
	start := time.Now()
	mem := startMemSample()
	defer func() {
		res.Wall = time.Since(start)
		mem.apply2(&res.AllocBytes, &res.GCCycles)
	}()
	if env == nil {
		env = NoEnvironment
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	workers := Workers(cfg.Parallel)
	nInvs := int64(countInvs(cfg.Invariants))
	var audit *fpAudit
	if cfg.AuditFingerprints {
		audit = newFpAudit()
	}

	first := initial.Clone()
	res.InvariantEvals += nInvs
	if err := checkInvariants(first, cfg.Invariants); err != nil {
		return res, fmt.Errorf("initial state: %w", err)
	}
	var absFirst Automaton
	if cfg.Refinement != nil {
		var err error
		absFirst, err = cfg.Refinement.Abstract(first)
		if err != nil {
			return res, fmt.Errorf("abstract initial state: %w", err)
		}
		specInit := cfg.Refinement.SpecInitial()
		if FpOf(absFirst) != FpOf(specInit) {
			return res, fmt.Errorf("F(init) is not the spec initial state:\n  F(init) = %s\n  init    = %s",
				FingerprintString(absFirst), FingerprintString(specInit))
		}
	}

	seen := newFpSet()
	firstFp := FpOf(first)
	if audit != nil {
		fp, s := FingerprintBoth(first)
		firstFp = fp
		if err := audit.check(fp, s); err != nil {
			return res, err
		}
	}
	seen.Add(firstFp)
	frontier := []frontierEntry{{a: first, abs: absFirst}}
	res.States = 1

	scratch := make([]exploreScratch, workers)

	for depth := 0; len(frontier) > 0; depth++ {
		if depth > res.MaxDepth {
			res.MaxDepth = depth
		}
		if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}

		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		var (
			next     atomic.Int64
			edges    atomic.Int64
			invEvals atomic.Int64
			mu       sync.Mutex // guards levelErr, found
			levelErr *exploreErr
			found    []discovery
			wg       sync.WaitGroup
		)
		next.Store(-1)
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(sc *exploreScratch) {
				defer wg.Done()
				local := sc.found[:0]
				for {
					i := int(next.Add(1))
					if i >= len(frontier) {
						break
					}
					cur := frontier[i].a
					absPre := frontier[i].abs
					acts := append(sc.acts[:0], cur.Enabled()...)
					acts = append(acts, env.Inputs(cur)...)
					sc.acts = acts
					for j, act := range acts {
						succ := cur.Clone()
						if err := succ.Perform(act); err != nil {
							recordExploreErr(&mu, &levelErr, i, j,
								fmt.Errorf("depth %d, action %s: %w", depth, act, err))
							break
						}
						edges.Add(1)
						var absSucc Automaton
						if cfg.Refinement != nil {
							var err error
							absSucc, err = cfg.Refinement.Abstract(succ)
							if err != nil {
								recordExploreErr(&mu, &levelErr, i, j,
									fmt.Errorf("depth %d, action %s: abstract post-state: %w", depth, act, err))
								break
							}
							if err := checkPlannedStep(cur, act, succ, absPre, absSucc, cfg.Refinement, cfg.SpecInvariants, nil); err != nil {
								recordExploreErr(&mu, &levelErr, i, j,
									fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
						}
						sc.f.Reset()
						succ.Fingerprint(&sc.f)
						fp := sc.f.Sum()
						if audit != nil {
							afp, astr := FingerprintBoth(succ)
							if afp != fp {
								recordExploreErr(&mu, &levelErr, i, j,
									fmt.Errorf("depth %d, action %s: hash-only and recording fingerprints disagree: %v vs %v", depth, act, fp, afp))
								break
							}
							if err := audit.check(afp, astr); err != nil {
								recordExploreErr(&mu, &levelErr, i, j,
									fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
						}
						if !seen.Add(fp) {
							continue
						}
						invEvals.Add(nInvs)
						if err := checkInvariants(succ, cfg.Invariants); err != nil {
							recordExploreErr(&mu, &levelErr, i, j,
								fmt.Errorf("depth %d, after %s: %w", depth+1, act, err))
							break
						}
						local = append(local, discovery{fp: fp, a: succ, abs: absSucc})
					}
					mu.Lock()
					stop := levelErr != nil && levelErr.frontier < i
					mu.Unlock()
					if stop {
						// A deterministically earlier frontier entry
						// already failed; nothing claimed from here on can
						// precede it.
						break
					}
				}
				mu.Lock()
				found = append(found, local...)
				mu.Unlock()
				sc.found = local[:0]
			}(&scratch[wi])
		}
		wg.Wait()
		res.Edges += int(edges.Load())
		res.InvariantEvals += invEvals.Load()
		if levelErr != nil {
			return res, levelErr.err
		}

		// Admit the level's discoveries in fingerprint order, up to the
		// state cap, so the next frontier — and with it every count this
		// exploration reports — is independent of worker scheduling.
		sort.Slice(found, func(i, j int) bool { return found[i].fp.Less(found[j].fp) })
		frontier = frontier[:0]
		for _, d := range found {
			if res.States >= maxStates {
				res.Truncated = true
				break
			}
			res.States++
			frontier = append(frontier, frontierEntry{a: d.a, abs: d.abs})
		}
	}
	return res, nil
}

func recordExploreErr(mu *sync.Mutex, best **exploreErr, frontier, action int, err error) {
	e := &exploreErr{frontier: frontier, action: action, err: err}
	mu.Lock()
	if e.better(*best) {
		*best = e
	}
	mu.Unlock()
}
