package ioa

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Explore performs exhaustive breadth-first exploration of an automaton's
// reachable state space under a finitely-branching environment, checking
// every invariant at every distinct state and, optionally, the refinement
// step-correspondence on every edge. Unlike the random executor, this is a
// complete check up to the given bounds: if it passes, no reachable state
// within the bounds violates the properties.
//
// States are deduplicated by 128-bit hash fingerprint, so automata must
// produce canonical fingerprints (equal states ⇔ equal fingerprints), and
// the environment's Inputs must be a pure function of the automaton state
// (equal state ⇒ equal successors) — see StateSeed. AuditFingerprints
// cross-checks the hash against the readable string representation.

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxStates caps the number of distinct states visited (0 = 1 << 20).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// Parallel is the number of BFS workers per level (0 = GOMAXPROCS,
	// 1 = serial). State, edge, and depth counts are identical for every
	// worker count: the BFS is level-synchronous, each level's discoveries
	// are merged into fingerprint-ordered shard runs, and new states are
	// admitted in that order (see the determinism note on shardOf).
	Parallel int
	// Invariants are checked at every distinct state.
	Invariants []Invariant
	// Refinement, if non-nil, is checked on every explored edge. The
	// abstracted spec state F(s) is computed once per distinct state and
	// cached on the frontier, not recomputed per outgoing edge. Abstract
	// states are interned by fingerprint: distinct implementation states
	// sharing one F(s) share one spec automaton in memory.
	Refinement Refinement
	// SpecInvariants are checked on intermediate spec states when
	// Refinement is set.
	SpecInvariants []Invariant
	// AuditFingerprints enables the dual-fingerprint verification mode:
	// every visited state is fingerprinted both as a 128-bit hash and as
	// the readable sorted-line string, and the exploration fails if
	// hash-equality and string-equality ever disagree (a hash collision or
	// a non-canonical digest). Expensive; for tests.
	AuditFingerprints bool
	// Symmetry enables symmetry reduction over process identities: every
	// discovered state is replaced by its orbit representative
	// (Symmetric.Canonicalize) before fingerprinting and dedup, so the
	// exploration counts orbits, not states. The automaton must implement
	// Symmetric. Soundness additionally requires the environment, the
	// invariants, and the automaton's transitions to be equivariant under
	// the symmetry group — see DESIGN.md §6.7.
	Symmetry bool
	// AuditSymmetry cross-checks orbit soundness the same way
	// AuditFingerprints checks digests: for every discovered state, every
	// member of its orbit must canonicalize to one fingerprint, and the
	// representative must lie in the orbit. Implies Symmetry. Expensive;
	// for tests.
	AuditSymmetry bool
}

// ExploreResult reports exploration statistics.
type ExploreResult struct {
	States         int           // distinct states visited (orbits under Symmetry)
	Edges          int           // transitions explored
	Truncated      bool          // hit MaxStates or MaxDepth before exhausting the space
	MaxDepth       int           // deepest level reached
	InvariantEvals int64         // invariant predicate evaluations
	Wall           time.Duration // elapsed wall-clock time
	AllocBytes     uint64        // heap allocation delta over the exploration
	GCCycles       uint32        // GC cycles completed during the exploration
}

// Report converts the exploration statistics into the common CheckReport
// shape (one "execution"; steps = edges, states = distinct states).
func (r ExploreResult) Report() CheckReport {
	return CheckReport{
		Executions:     1,
		Steps:          int64(r.Edges),
		States:         int64(r.States),
		InvariantEvals: r.InvariantEvals,
		Wall:           r.Wall,
		AllocBytes:     r.AllocBytes,
		GCCycles:       r.GCCycles,
	}
}

const (
	// exploreShards is the number of merge shards (and fpSet stripes).
	exploreShards = 64
	// exploreChunk is the number of frontier entries a worker claims per
	// atomic increment: large enough to keep the claim counter off the
	// coherence hot path, small enough to balance uneven entries.
	exploreChunk = 8
)

// shardOf maps a fingerprint to its merge shard using the TOP bits of
// Fp.Hi. Shard order therefore refines Fp.Less order — every fingerprint
// in shard k orders below every fingerprint in shard k+1 — so sorting each
// shard independently and concatenating the runs in shard order reproduces
// exactly the globally fingerprint-sorted admission sequence the
// determinism contract promises, without a global sort.
func shardOf(fp Fp) int { return int(fp.Hi >> 58) }

// exploreErr is a worker-discovered failure keyed by its deterministic
// position in the level: (frontier index, action index). The lowest key is
// the error the serial in-order BFS would have hit first.
type exploreErr struct {
	frontier, action int
	err              error
}

func (e *exploreErr) better(o *exploreErr) bool {
	if o == nil {
		return true
	}
	if e.frontier != o.frontier {
		return e.frontier < o.frontier
	}
	return e.action < o.action
}

// frontierEntry is one distinct state queued for expansion, together with
// its cached abstraction F(a) when a refinement is being checked.
type frontierEntry struct {
	a   Automaton
	abs Automaton
}

// discovery is a state first reached at the current level, carried to the
// post-level admission step.
type discovery struct {
	fp  Fp
	a   Automaton
	abs Automaton
}

// discSlice sorts discoveries by fingerprint without the reflective
// swapper allocation of sort.Slice.
type discSlice []discovery

func (s discSlice) Len() int           { return len(s) }
func (s discSlice) Less(i, j int) bool { return s[i].fp.Less(s[j].fp) }
func (s discSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// shardBuf collects one shard's discoveries across all workers. Padded so
// neighbouring shard locks do not share a cache line.
type shardBuf struct {
	mu sync.Mutex
	d  []discovery
	_  [32]byte
}

// exploreScratch is per-worker reusable storage: the fingerprint digest,
// the action buffer, and the per-shard discovery buckets survive across
// frontier entries and across levels, so steady-state expansion does not
// allocate for bookkeeping.
type exploreScratch struct {
	f       Fingerprinter
	acts    []Action
	buckets [exploreShards][]discovery
}

// flushBucket appends one local bucket into the shared shard buffer and
// resets it, dropping its automaton references.
func (sc *exploreScratch) flushBucket(level *[exploreShards]shardBuf, s int) {
	b := sc.buckets[s]
	if len(b) == 0 {
		return
	}
	sb := &level[s]
	sb.mu.Lock()
	sb.d = append(sb.d, b...)
	sb.mu.Unlock()
	clear(b)
	sc.buckets[s] = b[:0]
}

// bucketFlushLen bounds a local per-shard bucket before it is flushed to
// the shared shard buffer mid-level, so worker-local buffering does not
// grow per-level memory by worker count.
const bucketFlushLen = 128

// fpAudit cross-checks hash fingerprints against string fingerprints for
// every visited state (AuditFingerprints mode).
type fpAudit struct {
	mu    sync.Mutex
	byFp  map[Fp]string
	byStr map[string]Fp
}

func newFpAudit() *fpAudit {
	return &fpAudit{byFp: make(map[Fp]string), byStr: make(map[string]Fp)}
}

// check records the (hash, string) pair for one state and fails if it is
// inconsistent with any previously visited state: two distinct strings with
// one hash is a collision; two distinct hashes for one string means the
// digest is not a function of the state text.
func (au *fpAudit) check(fp Fp, s string) error {
	au.mu.Lock()
	defer au.mu.Unlock()
	if prev, ok := au.byFp[fp]; ok && prev != s {
		return fmt.Errorf("fingerprint collision: hash %v for two distinct states:\n--- state A ---\n%s\n--- state B ---\n%s", fp, prev, s)
	}
	if prev, ok := au.byStr[s]; ok && prev != fp {
		return fmt.Errorf("non-canonical fingerprint: state hashed to both %v and %v:\n%s", prev, fp, s)
	}
	au.byFp[fp] = s
	au.byStr[s] = fp
	return nil
}

// absIntern interns abstract (specification) states by fingerprint so that
// the many implementation states sharing one F(s) share one spec automaton
// in memory. Interned automata are read-shared across workers and frontier
// entries; nothing may mutate them (checkPlannedStep runs plans on clones).
type absIntern struct {
	stripes [exploreShards]struct {
		mu sync.Mutex
		m  map[Fp]Automaton
	}
}

func (in *absIntern) intern(fp Fp, a Automaton) Automaton {
	st := &in.stripes[shardOf(fp)]
	st.mu.Lock()
	defer st.mu.Unlock()
	if got, ok := st.m[fp]; ok {
		return got
	}
	if st.m == nil {
		st.m = make(map[Fp]Automaton)
	}
	st.m[fp] = a
	return a
}

// canonicalize resolves the symmetry hook for one state: it returns the
// orbit representative and, in audit mode, verifies that every orbit member
// canonicalizes to the same fingerprint (orbit soundness: the
// representative is a well-defined function of the orbit, not of the
// particular member the search happened to reach).
func canonicalize(a Automaton, f *Fingerprinter, audit bool) (Automaton, Fp, error) {
	sym, ok := a.(Symmetric)
	if !ok {
		return nil, Fp{}, fmt.Errorf("symmetry reduction: %T does not implement ioa.Symmetric", a)
	}
	rep := sym.Canonicalize()
	f.Reset()
	rep.Fingerprint(f)
	repFp := f.Sum()
	if audit {
		inOrbit := false
		for _, m := range sym.Orbit() {
			f.Reset()
			m.Fingerprint(f)
			mFp := f.Sum()
			if mFp == repFp {
				inOrbit = true
			}
			ms, ok := m.(Symmetric)
			if !ok {
				return nil, Fp{}, fmt.Errorf("symmetry audit: orbit member %T does not implement ioa.Symmetric", m)
			}
			mRep := ms.Canonicalize()
			f.Reset()
			mRep.Fingerprint(f)
			if mRepFp := f.Sum(); mRepFp != repFp {
				return nil, Fp{}, fmt.Errorf("symmetry audit: orbit members canonicalize to different representatives:\n  state     = %s\n  member    = %s\n  canon(state)  = %v\n  canon(member) = %v",
					FingerprintString(a), FingerprintString(m), repFp, mRepFp)
			}
		}
		if !inOrbit {
			return nil, Fp{}, fmt.Errorf("symmetry audit: representative %v is not in the orbit of %s", repFp, FingerprintString(a))
		}
	}
	return rep, repFp, nil
}

// Explore runs the exhaustive check across cfg.Parallel workers. The
// environment supplies the (finitely many) input actions available in each
// state; locally controlled actions come from Enabled. The initial
// automaton is not mutated.
//
// The BFS is level-synchronous but the per-level work is pipelined inside
// one worker pool pass: workers claim frontier chunks, expand successors
// into per-worker buckets sharded by fingerprint, flush the buckets to
// shared shard buffers, and — after an in-pool flush barrier — claim shards
// to sort. The admission step then concatenates the sorted shard runs in
// shard order, which (see shardOf) is exactly the fingerprint-sorted order
// a global sort would produce, so every count the exploration reports is
// identical at every worker count while no single goroutine ever sorts, or
// even touches, the whole level.
func Explore(initial Automaton, env Environment, cfg ExploreConfig) (res ExploreResult, err error) {
	start := time.Now()
	mem := startMemSample()
	defer func() {
		res.Wall = time.Since(start)
		mem.apply2(&res.AllocBytes, &res.GCCycles)
	}()
	if env == nil {
		env = NoEnvironment
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	workers := Workers(cfg.Parallel)
	symmetry := cfg.Symmetry || cfg.AuditSymmetry
	nInvs := int64(countInvs(cfg.Invariants))
	var audit *fpAudit
	if cfg.AuditFingerprints {
		audit = newFpAudit()
	}
	var interned *absIntern
	if cfg.Refinement != nil {
		interned = new(absIntern)
	}

	scratch := make([]exploreScratch, workers)

	first := initial.Clone()
	res.InvariantEvals += nInvs
	if err := checkInvariants(first, cfg.Invariants); err != nil {
		return res, fmt.Errorf("initial state: %w", err)
	}
	firstFp := FpOf(first)
	if symmetry {
		var err error
		first, firstFp, err = canonicalize(first, &scratch[0].f, cfg.AuditSymmetry)
		if err != nil {
			return res, fmt.Errorf("initial state: %w", err)
		}
	}
	var absFirst Automaton
	if cfg.Refinement != nil {
		var err error
		absFirst, err = cfg.Refinement.Abstract(first)
		if err != nil {
			return res, fmt.Errorf("abstract initial state: %w", err)
		}
		specInit := cfg.Refinement.SpecInitial()
		absFp := FpOf(absFirst)
		if absFp != FpOf(specInit) {
			return res, fmt.Errorf("F(init) is not the spec initial state:\n  F(init) = %s\n  init    = %s",
				FingerprintString(absFirst), FingerprintString(specInit))
		}
		absFirst = interned.intern(absFp, absFirst)
	}
	if audit != nil {
		fp, s := FingerprintBoth(first)
		firstFp = fp
		if err := audit.check(fp, s); err != nil {
			return res, err
		}
	}

	seen := newFpSet()
	seen.Add(firstFp)
	frontier := []frontierEntry{{a: first, abs: absFirst}}
	res.States = 1

	var level [exploreShards]shardBuf

	const noErrFrontier = math.MaxInt64
	for depth := 0; len(frontier) > 0; depth++ {
		if depth > res.MaxDepth {
			res.MaxDepth = depth
		}
		if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}

		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		var (
			next     atomic.Int64 // next frontier chunk to claim
			sortNext atomic.Int64 // next shard to sort
			errFront atomic.Int64 // lowest failing frontier index (fast-path early stop)
			edges    atomic.Int64
			invEvals atomic.Int64
			mu       sync.Mutex // guards levelErr
			levelErr *exploreErr
			flushed  sync.WaitGroup // in-pool barrier: all buckets flushed
			wg       sync.WaitGroup
		)
		errFront.Store(noErrFrontier)
		flushed.Add(w)
		fail := func(frontierIdx, actionIdx int, err error) {
			e := &exploreErr{frontier: frontierIdx, action: actionIdx, err: err}
			mu.Lock()
			if e.better(levelErr) {
				levelErr = e
				errFront.Store(int64(e.frontier))
			}
			mu.Unlock()
		}
		body := func(sc *exploreScratch) {
			defer wg.Done()
			var localEdges, localInvs int64
		claim:
			for {
				base := int(next.Add(exploreChunk)) - exploreChunk
				if base >= len(frontier) {
					break
				}
				end := base + exploreChunk
				if end > len(frontier) {
					end = len(frontier)
				}
				for i := base; i < end; i++ {
					if errFront.Load() < int64(i) {
						// A deterministically earlier frontier entry already
						// failed; nothing from here on can precede it.
						break claim
					}
					cur := frontier[i].a
					absPre := frontier[i].abs
					acts := append(sc.acts[:0], cur.Enabled()...)
					acts = append(acts, env.Inputs(cur)...)
					sc.acts = acts
					for j, act := range acts {
						succ := cur.Clone()
						if err := succ.Perform(act); err != nil {
							fail(i, j, fmt.Errorf("depth %d, action %s: %w", depth, act, err))
							break
						}
						localEdges++
						var absSucc Automaton
						if cfg.Refinement != nil {
							var err error
							absSucc, err = cfg.Refinement.Abstract(succ)
							if err != nil {
								fail(i, j, fmt.Errorf("depth %d, action %s: abstract post-state: %w", depth, act, err))
								break
							}
							if err := checkPlannedStep(cur, act, absPre, absSucc, cfg.Refinement, cfg.SpecInvariants, nil); err != nil {
								fail(i, j, fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
						}
						if symmetry {
							// The refinement obligation above was checked on
							// the real edge; dedup, invariants, and the next
							// frontier use the orbit representative.
							rep, _, err := canonicalize(succ, &sc.f, cfg.AuditSymmetry)
							if err != nil {
								fail(i, j, fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
							succ = rep
							if cfg.Refinement != nil {
								absSucc, err = cfg.Refinement.Abstract(succ)
								if err != nil {
									fail(i, j, fmt.Errorf("depth %d, action %s: abstract representative: %w", depth, act, err))
									break
								}
							}
						}
						sc.f.Reset()
						succ.Fingerprint(&sc.f)
						fp := sc.f.Sum()
						if audit != nil {
							afp, astr := FingerprintBoth(succ)
							if afp != fp {
								fail(i, j, fmt.Errorf("depth %d, action %s: hash-only and recording fingerprints disagree: %v vs %v", depth, act, fp, afp))
								break
							}
							if err := audit.check(afp, astr); err != nil {
								fail(i, j, fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
						}
						if !seen.Add(fp) {
							continue
						}
						localInvs += nInvs
						if err := checkInvariants(succ, cfg.Invariants); err != nil {
							fail(i, j, fmt.Errorf("depth %d, after %s: %w", depth+1, act, err))
							break
						}
						if absSucc != nil {
							absSucc = interned.intern(FpOf(absSucc), absSucc)
						}
						s := shardOf(fp)
						sc.buckets[s] = append(sc.buckets[s], discovery{fp: fp, a: succ, abs: absSucc})
						if len(sc.buckets[s]) >= bucketFlushLen {
							sc.flushBucket(&level, s)
						}
					}
				}
			}
			for s := range sc.buckets {
				sc.flushBucket(&level, s)
			}
			edges.Add(localEdges)
			invEvals.Add(localInvs)
			flushed.Done()
			// In-pool barrier: every worker's buckets are in the shared
			// shard buffers before any worker starts sorting them. The pool
			// pipelines straight into the merge phase without handing
			// control back to the coordinating goroutine.
			flushed.Wait()
			if errFront.Load() != noErrFrontier {
				return
			}
			for {
				s := int(sortNext.Add(1)) - 1
				if s >= exploreShards {
					return
				}
				if d := level[s].d; len(d) > 1 {
					sort.Sort(discSlice(d))
				}
			}
		}
		if w == 1 {
			wg.Add(1)
			body(&scratch[0])
		} else {
			for wi := 0; wi < w; wi++ {
				wg.Add(1)
				go body(&scratch[wi])
			}
		}
		wg.Wait()
		res.Edges += int(edges.Load())
		res.InvariantEvals += invEvals.Load()
		if levelErr != nil {
			return res, levelErr.err
		}

		// Admit the level's discoveries in fingerprint order — sorted shard
		// runs concatenated in shard order — up to the state cap, so the
		// next frontier, and with it every count this exploration reports,
		// is independent of worker scheduling.
		frontier = frontier[:0]
	admit:
		for s := range level {
			sb := &level[s]
			for _, d := range sb.d {
				if res.States >= maxStates {
					res.Truncated = true
					break admit
				}
				res.States++
				frontier = append(frontier, frontierEntry{a: d.a, abs: d.abs})
			}
		}
		for s := range level {
			sb := &level[s]
			clear(sb.d)
			sb.d = sb.d[:0]
		}
	}
	return res, nil
}
