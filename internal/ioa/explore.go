package ioa

import (
	"fmt"
)

// Explore performs exhaustive breadth-first exploration of an automaton's
// reachable state space under a finitely-branching environment, checking
// every invariant at every distinct state and, optionally, the refinement
// step-correspondence on every edge. Unlike the random executor, this is a
// complete check up to the given bounds: if it passes, no reachable state
// within the bounds violates the properties.
//
// States are deduplicated by fingerprint, so automata must produce
// canonical fingerprints (equal states ⇔ equal fingerprints).

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxStates caps the number of distinct states visited (0 = 1 << 20).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// Invariants are checked at every distinct state.
	Invariants []Invariant
	// Refinement, if non-nil, is checked on every explored edge.
	Refinement Refinement
	// SpecInvariants are checked on intermediate spec states when
	// Refinement is set.
	SpecInvariants []Invariant
}

// ExploreResult reports exploration statistics.
type ExploreResult struct {
	States    int  // distinct states visited
	Edges     int  // transitions explored
	Truncated bool // hit MaxStates or MaxDepth before exhausting the space
	MaxDepth  int  // deepest level reached
}

// Explore runs the exhaustive check. The environment supplies the
// (finitely many) input actions available in each state; locally controlled
// actions come from Enabled. The initial automaton is not mutated.
func Explore(initial Automaton, env Environment, cfg ExploreConfig) (ExploreResult, error) {
	if env == nil {
		env = NoEnvironment
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}

	var res ExploreResult
	type node struct {
		a     Automaton
		depth int
	}

	start := initial.Clone()
	if err := checkInvariants(start, cfg.Invariants); err != nil {
		return res, fmt.Errorf("initial state: %w", err)
	}
	if cfg.Refinement != nil {
		abs, err := cfg.Refinement.Abstract(start)
		if err != nil {
			return res, fmt.Errorf("abstract initial state: %w", err)
		}
		if abs.Fingerprint() != cfg.Refinement.SpecInitial().Fingerprint() {
			return res, fmt.Errorf("F(init) is not the spec initial state")
		}
	}

	seen := map[string]struct{}{start.Fingerprint(): {}}
	queue := []node{{a: start, depth: 0}}
	res.States = 1

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth > res.MaxDepth {
			res.MaxDepth = cur.depth
		}
		if cfg.MaxDepth > 0 && cur.depth >= cfg.MaxDepth {
			res.Truncated = true
			continue
		}
		acts := cur.a.Enabled()
		acts = append(acts, env.Inputs(cur.a)...)
		for _, act := range acts {
			succ := cur.a.Clone()
			if err := succ.Perform(act); err != nil {
				return res, fmt.Errorf("depth %d, action %s: %w", cur.depth, act, err)
			}
			res.Edges++
			if cfg.Refinement != nil {
				if err := checkStepCorrespondence(cur.a, act, succ, cfg.Refinement, cfg.SpecInvariants); err != nil {
					return res, fmt.Errorf("depth %d, action %s: %w", cur.depth, act, err)
				}
			}
			fp := succ.Fingerprint()
			if _, ok := seen[fp]; ok {
				continue
			}
			if err := checkInvariants(succ, cfg.Invariants); err != nil {
				return res, fmt.Errorf("depth %d, after %s: %w", cur.depth+1, act, err)
			}
			if res.States >= maxStates {
				res.Truncated = true
				continue
			}
			seen[fp] = struct{}{}
			res.States++
			queue = append(queue, node{a: succ, depth: cur.depth + 1})
		}
	}
	return res, nil
}
