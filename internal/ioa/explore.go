package ioa

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Explore performs exhaustive breadth-first exploration of an automaton's
// reachable state space under a finitely-branching environment, checking
// every invariant at every distinct state and, optionally, the refinement
// step-correspondence on every edge. Unlike the random executor, this is a
// complete check up to the given bounds: if it passes, no reachable state
// within the bounds violates the properties.
//
// States are deduplicated by fingerprint, so automata must produce
// canonical fingerprints (equal states ⇔ equal fingerprints), and the
// environment's Inputs must be a pure function of the automaton state
// (equal state ⇒ equal successors) — see StateSeed.

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxStates caps the number of distinct states visited (0 = 1 << 20).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unlimited).
	MaxDepth int
	// Parallel is the number of BFS workers per level (0 = GOMAXPROCS,
	// 1 = serial). State, edge, and depth counts are identical for every
	// worker count: the BFS is level-synchronous, each level's frontier is
	// sorted by fingerprint, and new states are admitted in that order.
	Parallel int
	// Invariants are checked at every distinct state.
	Invariants []Invariant
	// Refinement, if non-nil, is checked on every explored edge.
	Refinement Refinement
	// SpecInvariants are checked on intermediate spec states when
	// Refinement is set.
	SpecInvariants []Invariant
}

// ExploreResult reports exploration statistics.
type ExploreResult struct {
	States         int           // distinct states visited
	Edges          int           // transitions explored
	Truncated      bool          // hit MaxStates or MaxDepth before exhausting the space
	MaxDepth       int           // deepest level reached
	InvariantEvals int64         // invariant predicate evaluations
	Wall           time.Duration // elapsed wall-clock time
}

// Report converts the exploration statistics into the common CheckReport
// shape (one "execution"; steps = edges, states = distinct states).
func (r ExploreResult) Report() CheckReport {
	return CheckReport{
		Executions:     1,
		Steps:          int64(r.Edges),
		States:         int64(r.States),
		InvariantEvals: r.InvariantEvals,
		Wall:           r.Wall,
	}
}

// exploreErr is a worker-discovered failure keyed by its deterministic
// position in the level: (frontier index, action index). The lowest key is
// the error the serial in-order BFS would have hit first.
type exploreErr struct {
	frontier, action int
	err              error
}

func (e *exploreErr) better(o *exploreErr) bool {
	if o == nil {
		return true
	}
	if e.frontier != o.frontier {
		return e.frontier < o.frontier
	}
	return e.action < o.action
}

// Explore runs the exhaustive check across cfg.Parallel workers. The
// environment supplies the (finitely many) input actions available in each
// state; locally controlled actions come from Enabled. The initial
// automaton is not mutated.
func Explore(initial Automaton, env Environment, cfg ExploreConfig) (ExploreResult, error) {
	start := time.Now()
	var res ExploreResult
	defer func() { res.Wall = time.Since(start) }()
	if env == nil {
		env = NoEnvironment
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	workers := Workers(cfg.Parallel)
	nInvs := int64(countInvs(cfg.Invariants))

	first := initial.Clone()
	res.InvariantEvals += nInvs
	if err := checkInvariants(first, cfg.Invariants); err != nil {
		return res, fmt.Errorf("initial state: %w", err)
	}
	if cfg.Refinement != nil {
		abs, err := cfg.Refinement.Abstract(first)
		if err != nil {
			return res, fmt.Errorf("abstract initial state: %w", err)
		}
		if abs.Fingerprint() != cfg.Refinement.SpecInitial().Fingerprint() {
			return res, fmt.Errorf("F(init) is not the spec initial state")
		}
	}

	seen := newStripedSet()
	seen.Add(first.Fingerprint())
	frontier := []Automaton{first}
	res.States = 1

	// discovery is a state first reached at the current level, carried to
	// the post-level admission step.
	type discovery struct {
		fp string
		a  Automaton
	}

	for depth := 0; len(frontier) > 0; depth++ {
		if depth > res.MaxDepth {
			res.MaxDepth = depth
		}
		if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}

		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		var (
			next     atomic.Int64
			edges    atomic.Int64
			invEvals atomic.Int64
			mu       sync.Mutex // guards levelErr, found
			levelErr *exploreErr
			found    []discovery
			wg       sync.WaitGroup
		)
		next.Store(-1)
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []discovery
				for {
					i := int(next.Add(1))
					if i >= len(frontier) {
						break
					}
					cur := frontier[i]
					acts := cur.Enabled()
					acts = append(acts, env.Inputs(cur)...)
					for j, act := range acts {
						succ := cur.Clone()
						if err := succ.Perform(act); err != nil {
							recordExploreErr(&mu, &levelErr, i, j,
								fmt.Errorf("depth %d, action %s: %w", depth, act, err))
							break
						}
						edges.Add(1)
						if cfg.Refinement != nil {
							if err := checkStepCorrespondence(cur, act, succ, cfg.Refinement, cfg.SpecInvariants, nil); err != nil {
								recordExploreErr(&mu, &levelErr, i, j,
									fmt.Errorf("depth %d, action %s: %w", depth, act, err))
								break
							}
						}
						fp := succ.Fingerprint()
						if !seen.Add(fp) {
							continue
						}
						invEvals.Add(nInvs)
						if err := checkInvariants(succ, cfg.Invariants); err != nil {
							recordExploreErr(&mu, &levelErr, i, j,
								fmt.Errorf("depth %d, after %s: %w", depth+1, act, err))
							break
						}
						local = append(local, discovery{fp: fp, a: succ})
					}
					mu.Lock()
					stop := levelErr != nil && levelErr.frontier < i
					mu.Unlock()
					if stop {
						// A deterministically earlier frontier entry
						// already failed; nothing claimed from here on can
						// precede it.
						break
					}
				}
				mu.Lock()
				found = append(found, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		res.Edges += int(edges.Load())
		res.InvariantEvals += invEvals.Load()
		if levelErr != nil {
			return res, levelErr.err
		}

		// Admit the level's discoveries in fingerprint order, up to the
		// state cap, so the next frontier — and with it every count this
		// exploration reports — is independent of worker scheduling.
		sort.Slice(found, func(i, j int) bool { return found[i].fp < found[j].fp })
		frontier = frontier[:0]
		for _, d := range found {
			if res.States >= maxStates {
				res.Truncated = true
				break
			}
			res.States++
			frontier = append(frontier, d.a)
		}
	}
	return res, nil
}

func recordExploreErr(mu *sync.Mutex, best **exploreErr, frontier, action int, err error) {
	e := &exploreErr{frontier: frontier, action: action, err: err}
	mu.Lock()
	if e.better(*best) {
		*best = e
	}
	mu.Unlock()
}
