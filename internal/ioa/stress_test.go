package ioa

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// mix64 is the splitmix64 finalizer — a bijection on uint64, so
// counter-derived fingerprints below are pairwise distinct.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestFpSetConcurrentAddStress hammers one fpSet from many goroutines that
// all insert the same fingerprint universe in different orders, so every
// Add races duplicates and every stripe grows several times past its
// initial capacity. Exactly one Add per unique fingerprint may win, Len
// must agree, and a full re-insertion pass must find everything present.
// Run under -race this doubles as the data-race check on the striped table.
func TestFpSetConcurrentAddStress(t *testing.T) {
	const (
		workers = 8
		size    = 50000 // ~780 per stripe: several grows past fpStripeInitCap
	)
	universe := make([]Fp, size)
	for i := 1; i < size; i++ {
		universe[i] = Fp{Hi: mix64(uint64(2 * i)), Lo: mix64(uint64(2*i + 1))}
	}
	// universe[0] stays the zero fingerprint: the out-of-band slot must
	// survive the same race as the open-addressed entries.

	s := newFpSet()
	var added int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the universe at a different coprime stride,
			// so concurrent inserts collide on the same fingerprints in
			// different interleavings.
			stride := 2*w + 1
			for i := 0; i < size; i++ {
				if s.Add(universe[(i*stride+w)%size]) {
					atomic.AddInt64(&added, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	if added != size {
		t.Errorf("winning Adds = %d, want exactly %d (one per unique fingerprint)", added, size)
	}
	if got := s.Len(); got != size {
		t.Errorf("Len() = %d, want %d", got, size)
	}
	for i, fp := range universe {
		if s.Add(fp) {
			t.Fatalf("fingerprint %d (%v) missing after the stress pass", i, fp)
		}
	}
}

// grid is a toy automaton with heavy reconvergence: a vector of three
// counters modulo m, one increment action per coordinate. Many BFS paths
// reach each state, so worker-count-dependent dedup or admission bugs show
// up as count drift.
type grid struct {
	v [3]int
	m int
}

func (g *grid) Name() string { return "grid" }
func (g *grid) Enabled() []Action {
	return []Action{
		{Name: "inc0", Kind: KindInternal},
		{Name: "inc1", Kind: KindInternal},
		{Name: "inc2", Kind: KindInternal},
	}
}
func (g *grid) Perform(a Action) error {
	switch a.Name {
	case "inc0":
		g.v[0] = (g.v[0] + 1) % g.m
	case "inc1":
		g.v[1] = (g.v[1] + 1) % g.m
	case "inc2":
		g.v[2] = (g.v[2] + 1) % g.m
	default:
		return errors.New("unknown")
	}
	return nil
}
func (g *grid) Clone() Automaton { cp := *g; return &cp }
func (g *grid) Fingerprint(f *Fingerprinter) {
	f.AddInt("v0", g.v[0])
	f.AddInt("v1", g.v[1])
	f.AddInt("v2", g.v[2])
}

// TestExploreDeterministicAcrossWorkers pins the pipelined BFS contract:
// the full result — state, edge, and depth counts, truncation, and even
// the reported violation — is a function of the model alone, identical at
// every worker count.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	workers := []int{1, 2, 4, 8}

	t.Run("exhaustive", func(t *testing.T) {
		want, err := Explore(&grid{m: 4}, nil, ExploreConfig{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want.States != 64 || want.Edges != 192 {
			t.Fatalf("serial baseline: %d states / %d edges, want 64 / 192", want.States, want.Edges)
		}
		for _, par := range workers[1:] {
			got, err := Explore(&grid{m: 4}, nil, ExploreConfig{Parallel: par})
			if err != nil {
				t.Fatalf("parallel=%d: %v", par, err)
			}
			if got.States != want.States || got.Edges != want.Edges ||
				got.MaxDepth != want.MaxDepth || got.Truncated != want.Truncated {
				t.Errorf("parallel=%d diverged: %+v vs serial %+v", par, got, want)
			}
		}
	})

	t.Run("depth-bounded", func(t *testing.T) {
		var want ExploreResult
		for i, par := range workers {
			got, err := Explore(&grid{m: 6}, nil, ExploreConfig{Parallel: par, MaxDepth: 5})
			if err != nil {
				t.Fatalf("parallel=%d: %v", par, err)
			}
			if !got.Truncated {
				t.Fatalf("parallel=%d: depth bound not reported as truncation", par)
			}
			if i == 0 {
				want = got
				continue
			}
			if got.States != want.States || got.Edges != want.Edges || got.MaxDepth != want.MaxDepth {
				t.Errorf("parallel=%d diverged: %+v vs serial %+v", par, got, want)
			}
		}
	})

	t.Run("violation", func(t *testing.T) {
		// Several states at the same BFS depth violate the invariant; the
		// explorer must report the same (lowest-keyed) one at every width.
		inv := Invariant{Name: "sum<7", Check: func(a Automaton) error {
			g := a.(*grid)
			if g.v[0]+g.v[1]+g.v[2] >= 7 {
				return fmt.Errorf("sum %d", g.v[0]+g.v[1]+g.v[2])
			}
			return nil
		}}
		var want string
		for i, par := range workers {
			_, err := Explore(&grid{m: 8}, nil, ExploreConfig{Parallel: par, Invariants: []Invariant{inv}})
			if err == nil {
				t.Fatalf("parallel=%d: violation not found", par)
			}
			if i == 0 {
				want = err.Error()
				continue
			}
			if err.Error() != want {
				t.Errorf("parallel=%d reported a different violation:\n  got  %s\n  want %s", par, err, want)
			}
		}
	})
}

// pairSym is a toy Symmetric automaton: two counters with a swap symmetry.
// The canonical representative orders the pair; the bad variant returns the
// state unchanged, which AuditSymmetry must reject as soon as an asymmetric
// state is reached.
type pairSym struct {
	a, b int
	m    int
	bad  bool
}

func (p *pairSym) Name() string { return "pairSym" }
func (p *pairSym) Enabled() []Action {
	return []Action{
		{Name: "incA", Kind: KindInternal},
		{Name: "incB", Kind: KindInternal},
	}
}
func (p *pairSym) Perform(act Action) error {
	switch act.Name {
	case "incA":
		p.a = (p.a + 1) % p.m
	case "incB":
		p.b = (p.b + 1) % p.m
	default:
		return errors.New("unknown")
	}
	return nil
}
func (p *pairSym) Clone() Automaton { cp := *p; return &cp }
func (p *pairSym) Fingerprint(f *Fingerprinter) {
	f.AddInt("a", p.a)
	f.AddInt("b", p.b)
}
func (p *pairSym) Canonicalize() Automaton {
	cp := *p
	if !p.bad && cp.a > cp.b {
		cp.a, cp.b = cp.b, cp.a
	}
	return &cp
}
func (p *pairSym) Orbit() []Automaton {
	cp := *p
	sw := *p
	sw.a, sw.b = sw.b, sw.a
	return []Automaton{&cp, &sw}
}

func TestSymmetryReducesPairSpace(t *testing.T) {
	// Plain: all m² states. Reduced: the ordered pairs, m(m+1)/2.
	plain, err := Explore(&pairSym{m: 4}, nil, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.States != 16 {
		t.Fatalf("plain states = %d, want 16", plain.States)
	}
	red, err := Explore(&pairSym{m: 4}, nil, ExploreConfig{AuditSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.States != 10 {
		t.Errorf("reduced states = %d, want 10 ordered pairs", red.States)
	}
}

// TestAuditSymmetryCatchesNonCanonicalRepresentative is the negative
// control for the audit: a Canonicalize that is not constant on orbits
// (here: the identity) must fail the audit rather than silently produce an
// unsound reduction.
func TestAuditSymmetryCatchesNonCanonicalRepresentative(t *testing.T) {
	_, err := Explore(&pairSym{m: 4, bad: true}, nil, ExploreConfig{AuditSymmetry: true})
	if err == nil {
		t.Fatal("audit accepted a non-canonical representative function")
	}
	if !strings.Contains(err.Error(), "symmetry audit") {
		t.Errorf("unexpected failure shape: %v", err)
	}
	// Without the audit the unsound reduction goes unnoticed — that is
	// exactly the blind spot the audit exists to close.
	if _, err := Explore(&pairSym{m: 4, bad: true}, nil, ExploreConfig{Symmetry: true}); err != nil {
		t.Errorf("plain Symmetry run unexpectedly failed: %v", err)
	}
}
