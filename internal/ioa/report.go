package ioa

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CheckReport summarizes the work performed by a check: how many executions
// ran, how much of the state space was touched, and how fast. Every
// seed-fan-out entry point (Executor.RunSeeds, CheckRefinementSeeds,
// CheckTraceInclusionSeeds) and every root-level check returns one. On
// failure the report covers the executions that completed (or aborted)
// before the check returned, which under parallel execution may include
// seeds above the reported failing seed.
type CheckReport struct {
	// Executions is the number of seeded executions run.
	Executions int
	// Steps is the total number of transitions performed.
	Steps int64
	// States is the number of automaton states checked: distinct states
	// during exhaustive exploration, steps+1 per execution otherwise.
	States int64
	// InvariantEvals is the number of invariant predicate evaluations.
	InvariantEvals int64
	// Wall is the elapsed wall-clock time of the whole check.
	Wall time.Duration
	// AllocBytes is the heap allocation delta (runtime.MemStats.TotalAlloc)
	// over the check. The sample is process-wide, so concurrent unrelated
	// work inflates it; for the benchmarks and dvscheck, where one check
	// runs at a time, it is an accurate cost of the check.
	AllocBytes uint64
	// GCCycles is the number of garbage-collection cycles completed during
	// the check (process-wide, like AllocBytes).
	GCCycles uint32
}

// StepsPerSec is the aggregate checking throughput.
func (r CheckReport) StepsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Wall.Seconds()
}

// Merge accumulates another report into r (Wall is summed; callers that
// measure overall elapsed time should overwrite Wall afterwards).
func (r *CheckReport) Merge(o CheckReport) {
	r.Executions += o.Executions
	r.Steps += o.Steps
	r.States += o.States
	r.InvariantEvals += o.InvariantEvals
	r.Wall += o.Wall
	r.AllocBytes += o.AllocBytes
	r.GCCycles += o.GCCycles
}

// String renders the report in the form printed by dvscheck -v. The
// allocation tail is appended only when measured, so deterministic fields
// (steps, states) stay in a fixed position for scripts to parse.
func (r CheckReport) String() string {
	s := fmt.Sprintf("%d execs, %d steps, %d states, %d invariant evals, %v (%.0f steps/s)",
		r.Executions, r.Steps, r.States, r.InvariantEvals, r.Wall.Round(time.Millisecond), r.StepsPerSec())
	if r.AllocBytes > 0 || r.GCCycles > 0 {
		s += fmt.Sprintf(", %.1f MB alloc, %d GCs", float64(r.AllocBytes)/(1<<20), r.GCCycles)
	}
	return s
}

// memSample captures process-wide allocation counters so a check can report
// its allocation cost. ReadMemStats briefly stops the world, so samples are
// taken once per check, never per seed or per state.
type memSample struct {
	alloc uint64
	gc    uint32
}

func startMemSample() memSample {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return memSample{alloc: m.TotalAlloc, gc: m.NumGC}
}

// apply writes the deltas since the sample into rep.
func (s memSample) apply(rep *CheckReport) {
	s.apply2(&rep.AllocBytes, &rep.GCCycles)
}

// apply2 writes the deltas since the sample into the given fields.
func (s memSample) apply2(alloc *uint64, gc *uint32) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	*alloc = m.TotalAlloc - s.alloc
	*gc = m.NumGC - s.gc
}

// SeedError wraps a failure of one seeded execution with the seed that
// produced it, so callers can re-run exactly that seed. The fan-out helpers
// guarantee the reported seed is the LOWEST failing seed regardless of
// worker completion order.
type SeedError struct {
	Seed int64
	Err  error
}

// Error implements the error interface.
func (e *SeedError) Error() string { return fmt.Sprintf("seed %d: %v", e.Seed, e.Err) }

// Unwrap exposes the underlying failure (typically a *StepError).
func (e *SeedError) Unwrap() error { return e.Err }

// Workers resolves a parallelism setting: n < 1 means one worker per
// GOMAXPROCS, n >= 1 means exactly n workers.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// seedFanOut runs fn(i) for i in [0, n) across `parallel` workers and
// returns the merged report plus the error of the LOWEST failing index.
// Determinism guarantee: once some index fails, workers stop claiming
// higher indices, but every lower index still runs to completion, so the
// minimal failing index — and therefore the reported seed — is identical
// under any worker count, including 1 (which degenerates to the serial
// in-order loop).
func seedFanOut(parallel, n int, fn func(i int) (CheckReport, error)) (CheckReport, error) {
	start := time.Now()
	mem := startMemSample()
	var total CheckReport
	parallel = Workers(parallel)
	if parallel > n {
		parallel = n
	}

	if parallel <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			rep, err := fn(i)
			total.Merge(rep)
			if err != nil {
				firstErr = err
				break
			}
		}
		total.Wall = time.Since(start)
		mem.apply(&total)
		return total, firstErr
	}

	var (
		next    atomic.Int64 // next index to claim
		mu      sync.Mutex   // guards failIdx, failErr, total
		failIdx = n          // lowest failing index so far
		failErr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				mu.Lock()
				skip := i > failIdx
				mu.Unlock()
				if skip {
					// A lower seed already failed; this seed's result
					// cannot be the lowest failure.
					continue
				}
				rep, err := fn(i)
				mu.Lock()
				total.Merge(rep)
				if err != nil && i < failIdx {
					failIdx, failErr = i, err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total.Wall = time.Since(start)
	mem.apply(&total)
	return total, failErr
}

// StateSeed derives a per-state PRNG seed from a base seed and the
// automaton's canonical fingerprint. Environments that enumerate inputs as
// a pure function of (base seed, state) — rather than mutating internal
// counters — keep the "equal state ⇒ equal successors" assumption behind
// exhaustive exploration's fingerprint dedup, and make every seeded
// execution reproducible in isolation. The derivation hashes the state (not
// a string rendering of it) and is stable across processes, so a failing
// seed reported by one run replays exactly in another.
func StateSeed(seed int64, a Automaton) int64 {
	fp := FpOf(a)
	x := fp.Lo ^ bits.RotateLeft64(fp.Hi, 29) ^ (uint64(seed) * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// fpSet is a concurrent set of 128-bit fingerprints, sharded across
// mutex-protected stripes so BFS workers can deduplicate states without a
// global lock. Each stripe is an open-addressing table with linear probing:
// 16 bytes per entry, no per-insert allocation, no string keys. The stripe
// is chosen from the top bits of Fp.Hi — the same partition the explorer's
// merge shards use (see shardOf) — and the probe position from Fp.Lo, so
// the two are independent even for fingerprints that land in the same
// stripe.
type fpSet struct {
	stripes [exploreShards]fpStripe
}

type fpStripe struct {
	mu      sync.Mutex
	tab     []Fp // power-of-two size; the zero Fp marks an empty slot
	n       int  // non-zero fingerprints stored
	hasZero bool // the zero fingerprint, stored out of band
	_       [15]byte
}

const fpStripeInitCap = 256

func newFpSet() *fpSet { return &fpSet{} }

// Add inserts fp and reports whether it was newly added.
func (s *fpSet) Add(fp Fp) bool {
	st := &s.stripes[shardOf(fp)]
	st.mu.Lock()
	added := st.add(fp)
	st.mu.Unlock()
	return added
}

func (st *fpStripe) add(fp Fp) bool {
	if fp == (Fp{}) {
		// Sum never returns the zero Fp for an empty digest, but a real
		// state could hash to zero; keep it out of band so the empty-slot
		// marker stays unambiguous.
		if st.hasZero {
			return false
		}
		st.hasZero = true
		return true
	}
	if st.tab == nil {
		st.tab = make([]Fp, fpStripeInitCap)
	} else if (st.n+1)*4 > len(st.tab)*3 {
		st.grow()
	}
	mask := uint64(len(st.tab) - 1)
	for i := fp.Lo & mask; ; i = (i + 1) & mask {
		switch st.tab[i] {
		case Fp{}:
			st.tab[i] = fp
			st.n++
			return true
		case fp:
			return false
		}
	}
}

func (st *fpStripe) grow() {
	old := st.tab
	st.tab = make([]Fp, 2*len(old))
	mask := uint64(len(st.tab) - 1)
	for _, fp := range old {
		if fp == (Fp{}) {
			continue
		}
		i := fp.Lo & mask
		for st.tab[i] != (Fp{}) {
			i = (i + 1) & mask
		}
		st.tab[i] = fp
	}
}

// Len is the total number of fingerprints across all stripes.
func (s *fpSet) Len() int {
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		total += st.n
		if st.hasZero {
			total++
		}
		st.mu.Unlock()
	}
	return total
}

// countInvs counts the invariants with a non-nil predicate — the number of
// evaluations one checkInvariants call performs.
func countInvs(invs []Invariant) int {
	n := 0
	for _, inv := range invs {
		if inv.Check != nil {
			n++
		}
	}
	return n
}
