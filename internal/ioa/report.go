package ioa

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CheckReport summarizes the work performed by a check: how many executions
// ran, how much of the state space was touched, and how fast. Every
// seed-fan-out entry point (Executor.RunSeeds, CheckRefinementSeeds,
// CheckTraceInclusionSeeds) and every root-level check returns one. On
// failure the report covers the executions that completed (or aborted)
// before the check returned, which under parallel execution may include
// seeds above the reported failing seed.
type CheckReport struct {
	// Executions is the number of seeded executions run.
	Executions int
	// Steps is the total number of transitions performed.
	Steps int64
	// States is the number of automaton states checked: distinct states
	// during exhaustive exploration, steps+1 per execution otherwise.
	States int64
	// InvariantEvals is the number of invariant predicate evaluations.
	InvariantEvals int64
	// Wall is the elapsed wall-clock time of the whole check.
	Wall time.Duration
}

// StepsPerSec is the aggregate checking throughput.
func (r CheckReport) StepsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Wall.Seconds()
}

// Merge accumulates another report into r (Wall is summed; callers that
// measure overall elapsed time should overwrite Wall afterwards).
func (r *CheckReport) Merge(o CheckReport) {
	r.Executions += o.Executions
	r.Steps += o.Steps
	r.States += o.States
	r.InvariantEvals += o.InvariantEvals
	r.Wall += o.Wall
}

// String renders the report in the form printed by dvscheck -v.
func (r CheckReport) String() string {
	return fmt.Sprintf("%d execs, %d steps, %d states, %d invariant evals, %v (%.0f steps/s)",
		r.Executions, r.Steps, r.States, r.InvariantEvals, r.Wall.Round(time.Millisecond), r.StepsPerSec())
}

// SeedError wraps a failure of one seeded execution with the seed that
// produced it, so callers can re-run exactly that seed. The fan-out helpers
// guarantee the reported seed is the LOWEST failing seed regardless of
// worker completion order.
type SeedError struct {
	Seed int64
	Err  error
}

// Error implements the error interface.
func (e *SeedError) Error() string { return fmt.Sprintf("seed %d: %v", e.Seed, e.Err) }

// Unwrap exposes the underlying failure (typically a *StepError).
func (e *SeedError) Unwrap() error { return e.Err }

// Workers resolves a parallelism setting: n < 1 means one worker per
// GOMAXPROCS, n >= 1 means exactly n workers.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// seedFanOut runs fn(i) for i in [0, n) across `parallel` workers and
// returns the merged report plus the error of the LOWEST failing index.
// Determinism guarantee: once some index fails, workers stop claiming
// higher indices, but every lower index still runs to completion, so the
// minimal failing index — and therefore the reported seed — is identical
// under any worker count, including 1 (which degenerates to the serial
// in-order loop).
func seedFanOut(parallel, n int, fn func(i int) (CheckReport, error)) (CheckReport, error) {
	start := time.Now()
	var total CheckReport
	parallel = Workers(parallel)
	if parallel > n {
		parallel = n
	}

	if parallel <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			rep, err := fn(i)
			total.Merge(rep)
			if err != nil {
				firstErr = err
				break
			}
		}
		total.Wall = time.Since(start)
		return total, firstErr
	}

	var (
		next     atomic.Int64 // next index to claim
		mu       sync.Mutex   // guards failIdx, failErr, total
		failIdx  = n          // lowest failing index so far
		failErr  error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				mu.Lock()
				skip := i > failIdx
				mu.Unlock()
				if skip {
					// A lower seed already failed; this seed's result
					// cannot be the lowest failure.
					continue
				}
				rep, err := fn(i)
				mu.Lock()
				total.Merge(rep)
				if err != nil && i < failIdx {
					failIdx, failErr = i, err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total.Wall = time.Since(start)
	return total, failErr
}

// StateSeed derives a per-state PRNG seed from a base seed and the
// automaton's canonical fingerprint. Environments that enumerate inputs as
// a pure function of (base seed, state) — rather than mutating internal
// counters — keep the "equal state ⇒ equal successors" assumption behind
// exhaustive exploration's fingerprint dedup, and make every seeded
// execution reproducible in isolation.
func StateSeed(seed int64, a Automaton) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(a.Fingerprint()))
	return int64(h.Sum64())
}

// stripedSet is a fingerprint set sharded across mutex-protected stripes so
// concurrent BFS workers can deduplicate states without a global lock.
type stripedSet struct {
	stripes [64]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
}

func newStripedSet() *stripedSet {
	s := &stripedSet{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]struct{})
	}
	return s
}

// Add inserts fp and reports whether it was newly added.
func (s *stripedSet) Add(fp string) bool {
	h := fnv.New64a()
	h.Write([]byte(fp))
	st := &s.stripes[h.Sum64()%uint64(len(s.stripes))]
	st.mu.Lock()
	_, dup := st.m[fp]
	if !dup {
		st.m[fp] = struct{}{}
	}
	st.mu.Unlock()
	return !dup
}

// Len is the total number of fingerprints across all stripes.
func (s *stripedSet) Len() int {
	total := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		total += len(s.stripes[i].m)
		s.stripes[i].mu.Unlock()
	}
	return total
}

// countInvs counts the invariants with a non-nil predicate — the number of
// evaluations one checkInvariants call performs.
func countInvs(invs []Invariant) int {
	n := 0
	for _, inv := range invs {
		if inv.Check != nil {
			n++
		}
	}
	return n
}
