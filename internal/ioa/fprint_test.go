package ioa

import (
	"bytes"
	"strings"
	"testing"
)

// TestFingerprinterRecordingMatchesHashOnly: recording mode must not change
// the digest — the hash is over exactly the bytes the text renders.
func TestFingerprinterRecordingMatchesHashOnly(t *testing.T) {
	write := func(f *Fingerprinter) {
		f.Add("cur", "<0.0,{0,1}>")
		f.AddInt("n", 42)
		f.SetPrefix("vs.")
		f.Begin("queue.")
		f.Int(3)
		f.Byte('=')
		f.Str("a|b")
		f.End()
		f.SetPrefix("")
	}
	var plain, rec Fingerprinter
	rec.SetRecording(true)
	write(&plain)
	write(&rec)
	if plain.Sum() != rec.Sum() {
		t.Errorf("recording changed the digest: %v vs %v", plain.Sum(), rec.Sum())
	}
	want := "cur=<0.0,{0,1}>\nn=42\nvs.queue.3=a|b"
	if got := rec.String(); got != want {
		t.Errorf("recorded text:\n%q\nwant:\n%q", got, want)
	}
}

// TestFingerprinterEmptyNotZero: an empty digest must not be the zero Fp
// (the striped seen-set uses zero as its empty-slot marker and stores a real
// zero fingerprint out of band, but the common empty state should not land
// there), and it must differ from a one-empty-line digest.
func TestFingerprinterEmptyNotZero(t *testing.T) {
	var f Fingerprinter
	if (f.Sum() == Fp{}) {
		t.Error("empty digest is the zero Fp")
	}
	var g Fingerprinter
	g.Begin("")
	g.End()
	if f.Sum() == g.Sum() {
		t.Error("empty digest equals one-empty-line digest")
	}
}

// TestFingerprinterRelatedLinesSeparate reproduces the structured near-miss
// the collision audit caught during development: states whose line multisets
// differ by small digit changes in two lines. With raw FNV line hashes the
// additive fold let such differences cancel; the mix128 finalizer in End
// must keep them apart.
func TestFingerprinterRelatedLinesSeparate(t *testing.T) {
	sum := func(lines ...string) Fp {
		var f Fingerprinter
		for _, l := range lines {
			k, v, _ := strings.Cut(l, "=")
			f.Add(k, v)
		}
		return f.Sum()
	}
	a := sum("cur.0=3.0", "cur.1=3.0")
	b := sum("cur.0=0.0", "cur.1=4.0")
	if a == b {
		t.Errorf("related states collide: %v", a)
	}
	// Sweep single-digit value pairs; all 100 digests must be distinct.
	seen := make(map[Fp]string, 100)
	for x := '0'; x <= '9'; x++ {
		for y := '0'; y <= '9'; y++ {
			fp := sum("cur.0="+string(x), "cur.1="+string(y))
			key := string(x) + string(y)
			if prev, dup := seen[fp]; dup {
				t.Fatalf("digit pair %s collides with %s", key, prev)
			}
			seen[fp] = key
		}
	}
}

// FuzzFpCanonical feeds arbitrary line multisets to the Fingerprinter and
// checks the two properties the exploration engine relies on: the digest is
// invariant under the order lines are written (map iteration order cannot
// leak in), and it matches the digest of the recording mode whose sorted
// text form defines state identity for the collision audit.
func FuzzFpCanonical(f *testing.F) {
	f.Add([]byte("cur=3.0\xffnext=1"), uint8(1))
	f.Add([]byte("a=\xffb=\xffc="), uint8(2))
	f.Add([]byte(""), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rot uint8) {
		lines := bytes.Split(data, []byte{0xff})
		write := func(f *Fingerprinter, order []int) {
			for _, i := range order {
				k, v, _ := bytes.Cut(lines[i], []byte{'='})
				f.Add(string(k), string(v))
			}
		}
		fwd := make([]int, len(lines))
		for i := range fwd {
			fwd[i] = i
		}
		rotated := make([]int, 0, len(lines))
		if n := len(lines); n > 0 {
			r := int(rot) % n
			rotated = append(rotated, fwd[r:]...)
			rotated = append(rotated, fwd[:r]...)
		}

		var a, b, rec Fingerprinter
		rec.SetRecording(true)
		write(&a, fwd)
		write(&b, rotated)
		write(&rec, fwd)
		if a.Sum() != b.Sum() {
			t.Errorf("digest depends on write order: %v vs %v", a.Sum(), b.Sum())
		}
		if a.Sum() != rec.Sum() {
			t.Errorf("recording mode changed the digest: %v vs %v", a.Sum(), rec.Sum())
		}
	})
}
