package ioa

import (
	"fmt"
	"math/rand"
)

// Executor drives an automaton through a pseudo-random execution, checking
// every invariant at the initial state and after every step.
type Executor struct {
	// Steps is the maximum number of steps to take; the run may stop early
	// if no action is enabled and the environment supplies no input.
	Steps int
	// Seed selects the pseudo-random schedule.
	Seed int64
	// InputWeight is the relative weight of environment inputs versus
	// locally controlled actions when both are available. It is a count of
	// "slots": with weight w and k inputs and m locals, an input is chosen
	// with probability w·k/(w·k+m). Zero means weight 1.
	InputWeight int
	// Parallel is the number of workers RunSeeds fans seeds out to:
	// 0 means GOMAXPROCS, 1 forces the serial in-order loop. The reported
	// failure is the lowest failing seed under any setting.
	Parallel int
}

// RunResult summarizes one execution.
type RunResult struct {
	// StepsTaken is the number of transitions performed.
	StepsTaken int
	// InvariantEvals is the number of invariant predicate evaluations.
	InvariantEvals int64
	// Trace is the sequence of external actions performed, in order.
	Trace []Action
	// Final is the automaton in its last state.
	Final Automaton
}

// report converts the per-execution tallies into a CheckReport (one
// execution; states checked = initial state + one per step).
func (r *RunResult) report() CheckReport {
	return CheckReport{
		Executions:     1,
		Steps:          int64(r.StepsTaken),
		States:         int64(r.StepsTaken) + 1,
		InvariantEvals: r.InvariantEvals,
	}
}

// Run executes the automaton. The automaton is mutated in place; pass a
// fresh instance (or a clone) per run. Each invariant is checked on the
// initial state and after every step; the first violation aborts the run
// with a *StepError describing the step.
func (e *Executor) Run(a Automaton, env Environment, invs []Invariant) (*RunResult, error) {
	if env == nil {
		env = NoEnvironment
	}
	rng := rand.New(rand.NewSource(e.Seed))
	res := &RunResult{Final: a}
	nInvs := int64(countInvs(invs))

	res.InvariantEvals += nInvs
	if err := checkInvariants(a, invs); err != nil {
		return res, &StepError{Step: 0, Action: Action{Name: "<init>"}, Fingerprint: FingerprintString(a), Err: err}
	}

	weight := e.InputWeight
	if weight <= 0 {
		weight = 1
	}
	for step := 1; step <= e.Steps; step++ {
		act, ok := pickAction(a, env, rng, weight)
		if !ok {
			break
		}
		if err := a.Perform(act); err != nil {
			return res, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(a), Err: fmt.Errorf("perform: %w", err)}
		}
		res.StepsTaken = step
		if act.External() {
			res.Trace = append(res.Trace, act)
		}
		res.InvariantEvals += nInvs
		if err := checkInvariants(a, invs); err != nil {
			return res, &StepError{Step: step, Action: act, Fingerprint: FingerprintString(a), Err: err}
		}
	}
	return res, nil
}

// RunSeeds runs fresh automata (from mk) with fresh environments (from
// mkEnv, which may be nil for no environment) across seeds base..base+n-1,
// fanning the seeds out to Parallel workers. It is the workhorse for "check
// invariants over many random executions" tests.
//
// Every seed's execution is fully independent — its own automaton, its own
// environment, its own schedule — so a failure reported for seed S
// reproduces by running seed S alone. The returned error is a *SeedError
// for the LOWEST failing seed regardless of worker completion order.
func (e *Executor) RunSeeds(n int, mk func() Automaton, mkEnv func(seed int64) Environment, invs []Invariant) (CheckReport, error) {
	base := e.Seed
	return seedFanOut(e.Parallel, n, func(i int) (CheckReport, error) {
		run := *e
		run.Seed = base + int64(i)
		var env Environment
		if mkEnv != nil {
			env = mkEnv(run.Seed)
		}
		res, err := run.Run(mk(), env, invs)
		if err != nil {
			return res.report(), &SeedError{Seed: run.Seed, Err: err}
		}
		return res.report(), nil
	})
}

func pickAction(a Automaton, env Environment, rng *rand.Rand, inputWeight int) (Action, bool) {
	locals := a.Enabled()
	inputs := env.Inputs(a)
	total := len(locals) + inputWeight*len(inputs)
	if total == 0 {
		return Action{}, false
	}
	k := rng.Intn(total)
	if k < len(locals) {
		return locals[k], true
	}
	return inputs[(k-len(locals))/inputWeight], true
}

func checkInvariants(a Automaton, invs []Invariant) error {
	for _, inv := range invs {
		if inv.Check == nil {
			continue
		}
		if err := inv.Check(a); err != nil {
			return fmt.Errorf("invariant %s violated: %w", inv.Name, err)
		}
	}
	return nil
}
