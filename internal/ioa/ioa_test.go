package ioa

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// counter is a toy automaton: an internal "tick" increments n; an output
// "emit" is enabled when n is even and resets n to 0.
type counter struct {
	n     int
	limit int
}

func (c *counter) Name() string { return "counter" }

func (c *counter) Enabled() []Action {
	var acts []Action
	if c.n < c.limit {
		acts = append(acts, Action{Name: "tick", Kind: KindInternal})
	}
	if c.n > 0 && c.n%2 == 0 {
		acts = append(acts, Action{Name: "emit", Kind: KindOutput, Param: c.n})
	}
	return acts
}

func (c *counter) Perform(a Action) error {
	switch a.Name {
	case "tick":
		if c.n >= c.limit {
			return errors.New("tick: limit reached")
		}
		c.n++
		return nil
	case "emit":
		v, ok := a.Param.(int)
		if !ok || v != c.n || c.n%2 != 0 || c.n == 0 {
			return errors.New("emit: not enabled")
		}
		c.n = 0
		return nil
	case "set":
		c.n = a.Param.(int)
		return nil
	default:
		return fmt.Errorf("unknown action %q", a.Name)
	}
}

func (c *counter) Clone() Automaton { cp := *c; return &cp }

func (c *counter) Fingerprint(f *Fingerprinter) { f.AddInt("n", c.n) }

func TestKindString(t *testing.T) {
	if KindInput.String() != "input" || KindOutput.String() != "output" || KindInternal.String() != "internal" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should render its number")
	}
}

func TestActionKeyAndExternal(t *testing.T) {
	a := Action{Name: "emit", Kind: KindOutput, Param: 4}
	if a.Key() != "emit(4)" {
		t.Errorf("Key = %q", a.Key())
	}
	if !a.External() {
		t.Error("output is external")
	}
	if (Action{Kind: KindInternal}).External() {
		t.Error("internal is not external")
	}
	if (Action{Name: "x"}).Key() != "x()" {
		t.Error("nil param renders empty")
	}
}

func TestSortActionsDeterministic(t *testing.T) {
	acts := []Action{
		{Name: "b", Param: 2},
		{Name: "a", Param: 9},
		{Name: "b", Param: 1},
	}
	SortActions(acts)
	if acts[0].Name != "a" || acts[1].Key() != "b(1)" || acts[2].Key() != "b(2)" {
		t.Errorf("SortActions = %v", acts)
	}
}

func TestExecutorRunsAndStops(t *testing.T) {
	c := &counter{limit: 3}
	ex := &Executor{Steps: 100, Seed: 1}
	res, err := ex.Run(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsTaken == 0 {
		t.Error("no steps taken")
	}
	for _, a := range res.Trace {
		if a.Name != "emit" {
			t.Errorf("internal action %s in trace", a)
		}
	}
}

func TestExecutorDeterministicPerSeed(t *testing.T) {
	run := func() string {
		c := &counter{limit: 5}
		ex := &Executor{Steps: 50, Seed: 7}
		res, err := ex.Run(c, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(res.Trace))
		for i, a := range res.Trace {
			keys[i] = a.Key()
		}
		return strings.Join(keys, ";") + "|" + FingerprintString(res.Final)
	}
	if run() != run() {
		t.Error("same seed must give the same execution")
	}
}

func TestExecutorInvariantViolation(t *testing.T) {
	inv := Invariant{Name: "n<2", Check: func(a Automaton) error {
		if a.(*counter).n >= 2 {
			return errors.New("n too large")
		}
		return nil
	}}
	c := &counter{limit: 10}
	ex := &Executor{Steps: 100, Seed: 1}
	_, err := ex.Run(c, nil, []Invariant{inv})
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want StepError, got %v", err)
	}
	if !strings.Contains(err.Error(), "n<2") {
		t.Errorf("error should name the invariant: %v", err)
	}
}

func TestExecutorInitialInvariant(t *testing.T) {
	inv := Invariant{Name: "never", Check: func(Automaton) error { return errors.New("boom") }}
	_, err := (&Executor{Steps: 1}).Run(&counter{limit: 1}, nil, []Invariant{inv})
	var se *StepError
	if !errors.As(err, &se) || se.Step != 0 {
		t.Fatalf("initial-state violation should be step 0, got %v", err)
	}
}

func TestExecutorEnvironmentInputs(t *testing.T) {
	env := EnvironmentFunc(func(a Automaton) []Action {
		return []Action{{Name: "set", Kind: KindInput, Param: 2}}
	})
	c := &counter{limit: 0} // no local actions ever
	ex := &Executor{Steps: 10, Seed: 3}
	res, err := ex.Run(c, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsTaken != 10 {
		t.Errorf("inputs should keep the run alive: %d steps", res.StepsTaken)
	}
}

func TestRunSeeds(t *testing.T) {
	ex := &Executor{Steps: 20}
	rep, err := ex.RunSeeds(5, func() Automaton { return &counter{limit: 4} }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 5 || rep.Steps == 0 {
		t.Errorf("report should cover all executions: %+v", rep)
	}
	bad := Invariant{Name: "n!=3", Check: func(a Automaton) error {
		if a.(*counter).n == 3 {
			return errors.New("hit 3")
		}
		return nil
	}}
	_, err = ex.RunSeeds(5, func() Automaton { return &counter{limit: 4} }, nil, []Invariant{bad})
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("RunSeeds should report the failing seed, got %v", err)
	}
	var se *SeedError
	if !errors.As(err, &se) {
		t.Errorf("RunSeeds failures should be SeedErrors, got %T", err)
	}
}

// doubler abstracts counter: its state is n as well, but transitions come
// only from the correspondence (tick maps to tick, emit to emit).
type identityRefinement struct{ bad bool }

func (r identityRefinement) Abstract(impl Automaton) (Automaton, error) {
	c := impl.(*counter)
	cp := *c
	if r.bad {
		cp.n++ // deliberately wrong abstraction
	}
	return &cp, nil
}

func (r identityRefinement) SpecInitial() Automaton { return &counter{limit: 1 << 30} }

func (r identityRefinement) Plan(pre Automaton, act Action) ([]Action, error) {
	return []Action{act}, nil
}

func TestCheckRefinementIdentity(t *testing.T) {
	_, err := CheckRefinement(&counter{limit: 6}, identityRefinement{}, nil, CheckerConfig{Steps: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckRefinementDetectsBadAbstraction(t *testing.T) {
	_, err := CheckRefinement(&counter{limit: 6}, identityRefinement{bad: true}, nil, CheckerConfig{Steps: 50, Seed: 2})
	if err == nil {
		t.Fatal("bad abstraction must be detected")
	}
}

// planDropper returns an empty plan for the external emit action: the trace
// correspondence must catch it.
type planDropper struct{ identityRefinement }

func (planDropper) Plan(pre Automaton, act Action) ([]Action, error) {
	if act.Name == "emit" {
		return nil, nil
	}
	return []Action{act}, nil
}

func TestCheckRefinementDetectsTraceMismatch(t *testing.T) {
	_, err := CheckRefinement(&counter{limit: 6}, planDropper{}, nil, CheckerConfig{Steps: 50, Seed: 2})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("dropped external action must be a trace mismatch, got %v", err)
	}
}

func TestCheckRefinementSeeds(t *testing.T) {
	_, err := CheckRefinementSeeds(3,
		func() Automaton { return &counter{limit: 4} },
		identityRefinement{}, nil, CheckerConfig{Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// evenMonitor accepts only even emit values.
type evenMonitor struct{}

func (evenMonitor) Observe(act Action) error {
	v, ok := act.Param.(int)
	if !ok || v%2 != 0 {
		return fmt.Errorf("odd emission %v", act.Param)
	}
	return nil
}

func TestCheckTraceInclusion(t *testing.T) {
	_, err := CheckTraceInclusion(&counter{limit: 6}, evenMonitor{}, nil, CheckerConfig{Steps: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFingerprinterCanonical(t *testing.T) {
	var a, b Fingerprinter
	a.SetRecording(true)
	b.SetRecording(true)
	a.Add("x", "1")
	a.Add("y", "2")
	b.Add("y", "2")
	b.Add("x", "1")
	if a.Sum() != b.Sum() {
		t.Error("hash fingerprint must not depend on insertion order")
	}
	if a.String() != b.String() {
		t.Error("text fingerprint must not depend on insertion order")
	}
}

func TestStepErrorUnwrap(t *testing.T) {
	cause := errors.New("cause")
	se := &StepError{Step: 3, Action: Action{Name: "a"}, Err: cause}
	if !errors.Is(se, cause) {
		t.Error("StepError must unwrap")
	}
	if !strings.Contains(se.Error(), "step 3") {
		t.Errorf("Error = %q", se.Error())
	}
}
