// Package member provides the membership substrate of the runtime stack: a
// heartbeat failure detector and a leader-driven view agreement protocol.
// Both are pure state machines driven by a single per-node event loop (see
// internal/vsg); they never spawn goroutines or touch the network directly —
// they return the messages to send.
//
// The agreement protocol is deliberately simple: the minimum-id process in a
// node's perceived component proposes a view with a fresh identifier
// (seq, leader) greater than every identifier it has seen; members accept
// proposals with increasing identifiers; once every member has accepted, the
// leader instructs installation. Nodes install views in strictly increasing
// identifier order (Local View Identifier Monotony) and only views
// containing themselves (Self Inclusion). Transient disagreement between
// components is tolerated by the layers above: the view-synchronous layer
// tags every message with its view identifier, and the dynamic-primary
// filter (VS-TO-DVS) decides which views may act as primaries.
package member

import (
	"time"

	"repro/internal/types"
)

// Wire messages of the membership layer.
type (
	// Heartbeat announces liveness.
	Heartbeat struct{}
	// Propose asks the recipients to accept a new view.
	Propose struct{ View types.View }
	// Accept acknowledges a proposal.
	Accept struct{ ViewID types.ViewID }
	// Install instructs the recipients to install an accepted view.
	Install struct{ View types.View }
)

// Send is an outgoing unicast request produced by the state machines.
type Send struct {
	To      types.ProcID
	Payload any
}

// Detector is a heartbeat failure detector.
type Detector struct {
	self     types.ProcID
	timeout  time.Duration
	lastSeen map[types.ProcID]time.Time
}

// NewDetector builds a detector that suspects a process after timeout
// without a heartbeat.
func NewDetector(self types.ProcID, universe types.ProcSet, timeout time.Duration, now time.Time) *Detector {
	d := &Detector{
		self:     self,
		timeout:  timeout,
		lastSeen: make(map[types.ProcID]time.Time, universe.Len()),
	}
	for p := range universe {
		d.lastSeen[p] = now
	}
	return d
}

// Observe records a heartbeat (or any message) from q.
func (d *Detector) Observe(q types.ProcID, now time.Time) {
	d.lastSeen[q] = now
}

// Alive returns the set of processes not currently suspected. It always
// contains the local process.
func (d *Detector) Alive(now time.Time) types.ProcSet {
	out := types.NewProcSet(d.self)
	for p, seen := range d.lastSeen {
		if now.Sub(seen) <= d.timeout {
			out.Add(p)
		}
	}
	return out
}

// Agreement is the leader-driven view agreement state machine of one node.
type Agreement struct {
	self    types.ProcID
	current types.View
	hasView bool

	maxSeq uint64 // highest view sequence number seen anywhere

	// Leader proposal state.
	proposing   bool
	proposal    types.View
	accepted    types.ProcSet
	deadline    time.Time
	retryPeriod time.Duration

	// Stability: last observed alive set, to avoid proposing on flapping
	// membership.
	lastAlive types.ProcSet
}

// NewAgreement builds the agreement machine. If the node belongs to the
// initial view, that view is pre-installed.
func NewAgreement(self types.ProcID, initial types.View, retry time.Duration) *Agreement {
	a := &Agreement{
		self:        self,
		retryPeriod: retry,
		lastAlive:   types.NewProcSet(),
	}
	if initial.Contains(self) {
		a.current = initial.Clone()
		a.hasView = true
	}
	a.maxSeq = initial.ID.Seq
	return a
}

// Current returns the installed view; ok is false if none.
func (a *Agreement) Current() (types.View, bool) { return a.current, a.hasView }

// observeID folds a remotely seen view identifier into maxSeq.
func (a *Agreement) observeID(id types.ViewID) {
	if id.Seq > a.maxSeq {
		a.maxSeq = id.Seq
	}
}

// Tick drives proposals. alive is the detector's current estimate. The
// returned sends carry Propose or Install payloads; installed is non-nil
// when the local node installs a view during this tick.
func (a *Agreement) Tick(now time.Time, alive types.ProcSet) (sends []Send, installed *types.View) {
	stable := alive.Equal(a.lastAlive)
	a.lastAlive = alive.Clone()

	// Complete an outstanding proposal.
	if a.proposing {
		if a.proposal.Members.Subset(a.accepted) {
			v := a.proposal.Clone()
			a.proposing = false
			for _, q := range v.Members.Sorted() {
				if q != a.self {
					sends = append(sends, Send{To: q, Payload: Install{View: v.Clone()}})
				}
			}
			if inst := a.install(v); inst != nil {
				installed = inst
			}
			return sends, installed
		}
		if now.Before(a.deadline) {
			return nil, nil
		}
		a.proposing = false // timed out; fall through and maybe re-propose
	}

	// Propose only if: the perceived component differs from the current
	// view, the estimate is stable, and we are its leader.
	if !stable || alive.Len() == 0 {
		return nil, nil
	}
	// Re-propose when the perceived component differs from the current view,
	// or when a strictly newer view identifier has been observed anywhere: a
	// member that transiently suspected everyone installs a singleton view
	// with a higher sequence number, and monotony then blocks it from ever
	// rejoining a view it already overtook. Its gossip carries the higher
	// identifier back to the leader, and only a fresh proposal with a yet
	// higher identifier can reunite the component.
	if a.hasView && a.current.Members.Equal(alive) && a.maxSeq == a.current.ID.Seq {
		return nil, nil
	}
	if leader := alive.Sorted()[0]; leader != a.self {
		return nil, nil
	}
	a.maxSeq++
	a.proposal = types.View{ID: types.ViewID{Seq: a.maxSeq, Origin: a.self}, Members: alive.Clone()}
	a.proposing = true
	a.accepted = types.NewProcSet(a.self)
	a.deadline = now.Add(a.retryPeriod)
	for _, q := range alive.Sorted() {
		if q != a.self {
			sends = append(sends, Send{To: q, Payload: Propose{View: a.proposal.Clone()}})
		}
	}
	return sends, nil
}

// OnPropose handles a Propose message.
func (a *Agreement) OnPropose(from types.ProcID, v types.View) []Send {
	a.observeID(v.ID)
	if !v.Contains(a.self) {
		return nil
	}
	if a.hasView && !a.current.ID.Less(v.ID) {
		return nil
	}
	return []Send{{To: from, Payload: Accept{ViewID: v.ID}}}
}

// OnAccept handles an Accept message.
func (a *Agreement) OnAccept(from types.ProcID, id types.ViewID) {
	a.observeID(id)
	if a.proposing && a.proposal.ID == id {
		a.accepted.Add(from)
	}
}

// OnInstall handles an Install message; the result is non-nil if the local
// node installs the view.
func (a *Agreement) OnInstall(v types.View) *types.View {
	a.observeID(v.ID)
	return a.install(v)
}

func (a *Agreement) install(v types.View) *types.View {
	if !v.Contains(a.self) {
		return nil
	}
	if a.hasView && !a.current.ID.Less(v.ID) {
		return nil
	}
	a.current = v.Clone()
	a.hasView = true
	out := v.Clone()
	return &out
}
