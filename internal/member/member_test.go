package member

import (
	"testing"
	"time"

	"repro/internal/types"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestDetectorAliveAndSuspect(t *testing.T) {
	u := types.RangeProcSet(3)
	d := NewDetector(0, u, 100*time.Millisecond, t0)
	if !d.Alive(t0).Equal(u) {
		t.Error("everyone starts alive")
	}
	later := t0.Add(150 * time.Millisecond)
	alive := d.Alive(later)
	if !alive.Equal(types.NewProcSet(0)) {
		t.Errorf("after timeout only self alive, got %s", alive)
	}
	d.Observe(2, later)
	alive = d.Alive(later)
	if !alive.Contains(2) || alive.Contains(1) {
		t.Errorf("alive = %s", alive)
	}
	// Self is alive even if never observed.
	if !d.Alive(t0.Add(time.Hour)).Contains(0) {
		t.Error("self must always be alive")
	}
}

func initialView() types.View {
	return types.InitialView(types.NewProcSet(0, 1, 2))
}

func TestAgreementInitialInstall(t *testing.T) {
	a := NewAgreement(0, initialView(), 50*time.Millisecond)
	if v, ok := a.Current(); !ok || !v.Equal(initialView()) {
		t.Error("member of P0 must have v0 installed")
	}
	b := NewAgreement(4, initialView(), 50*time.Millisecond)
	if _, ok := b.Current(); ok {
		t.Error("non-member must start without a view")
	}
}

func TestLeaderProposesOnStableChange(t *testing.T) {
	a := NewAgreement(0, initialView(), 50*time.Millisecond)
	alive := types.NewProcSet(0, 1)
	// First tick records the estimate; not yet stable.
	sends, inst := a.Tick(t0, alive)
	if len(sends) != 0 || inst != nil {
		t.Fatal("proposal on unstable estimate")
	}
	// Second identical tick: propose to the other member.
	sends, inst = a.Tick(t0.Add(time.Millisecond), alive)
	if inst != nil {
		t.Fatal("must not install before acceptance")
	}
	if len(sends) != 1 {
		t.Fatalf("sends = %v", sends)
	}
	prop, ok := sends[0].Payload.(Propose)
	if !ok || sends[0].To != 1 {
		t.Fatalf("send = %+v", sends[0])
	}
	if !prop.View.Members.Equal(alive) {
		t.Errorf("proposed members = %s", prop.View.Members)
	}
	if !initialView().ID.Less(prop.View.ID) {
		t.Error("proposal id must exceed the current view's")
	}

	// Acceptance from 1 completes the proposal on the next tick.
	a.OnAccept(1, prop.View.ID)
	sends, inst = a.Tick(t0.Add(2*time.Millisecond), alive)
	if inst == nil || !inst.Members.Equal(alive) {
		t.Fatalf("install = %v", inst)
	}
	foundInstall := false
	for _, s := range sends {
		if _, ok := s.Payload.(Install); ok && s.To == 1 {
			foundInstall = true
		}
	}
	if !foundInstall {
		t.Error("leader must send Install to members")
	}
	if v, _ := a.Current(); !v.Members.Equal(alive) {
		t.Error("leader must install locally")
	}
}

func TestNonLeaderNeverProposes(t *testing.T) {
	a := NewAgreement(1, initialView(), 50*time.Millisecond)
	alive := types.NewProcSet(0, 1)
	a.Tick(t0, alive)
	sends, inst := a.Tick(t0.Add(time.Millisecond), alive)
	if len(sends) != 0 || inst != nil {
		t.Error("non-minimum member proposed")
	}
}

func TestFollowerAcceptAndInstall(t *testing.T) {
	a := NewAgreement(1, initialView(), 50*time.Millisecond)
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	sends := a.OnPropose(0, v1)
	if len(sends) != 1 {
		t.Fatalf("sends = %v", sends)
	}
	acc, ok := sends[0].Payload.(Accept)
	if !ok || acc.ViewID != v1.ID || sends[0].To != 0 {
		t.Fatalf("accept = %+v", sends[0])
	}
	if inst := a.OnInstall(v1); inst == nil {
		t.Fatal("install refused")
	}
	if v, _ := a.Current(); !v.Equal(v1) {
		t.Error("current not updated")
	}
}

func TestInstallMonotone(t *testing.T) {
	a := NewAgreement(1, initialView(), 50*time.Millisecond)
	v2 := types.NewView(types.ViewID{Seq: 2}, 0, 1)
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	if a.OnInstall(v2) == nil {
		t.Fatal("v2 refused")
	}
	if a.OnInstall(v1) != nil {
		t.Error("older view installed (violates Local View Identifier Monotony)")
	}
	if a.OnInstall(v2) != nil {
		t.Error("same view installed twice")
	}
}

func TestSelfInclusion(t *testing.T) {
	a := NewAgreement(3, initialView(), 50*time.Millisecond)
	notMine := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	if sends := a.OnPropose(0, notMine); len(sends) != 0 {
		t.Error("accepted a proposal not containing self")
	}
	if a.OnInstall(notMine) != nil {
		t.Error("installed a view not containing self")
	}
}

func TestProposalIDsNeverReused(t *testing.T) {
	a := NewAgreement(0, initialView(), time.Millisecond)
	alive := types.NewProcSet(0, 1)
	now := t0
	ids := make(map[types.ViewID]bool)
	for i := 0; i < 5; i++ {
		sends1, _ := a.Tick(now, alive)
		sends2, _ := a.Tick(now.Add(time.Microsecond), alive)
		for _, s := range append(sends1, sends2...) {
			if p, ok := s.Payload.(Propose); ok {
				if ids[p.View.ID] {
					t.Fatalf("proposal id %s reused", p.View.ID)
				}
				ids[p.View.ID] = true
			}
		}
		// No acceptance: proposal times out and a fresh one is made.
		now = now.Add(10 * time.Millisecond)
	}
	if len(ids) < 2 {
		t.Errorf("expected retries with fresh ids, got %d", len(ids))
	}
}

func TestObserveIDFoldsRemoteSeq(t *testing.T) {
	a := NewAgreement(0, initialView(), time.Millisecond)
	// A remote proposal with a large sequence number must push our next
	// proposal above it.
	big := types.NewView(types.ViewID{Seq: 50, Origin: 1}, 0, 1)
	a.OnPropose(1, big)
	alive := types.NewProcSet(0, 2)
	a.Tick(t0, alive)
	sends, _ := a.Tick(t0.Add(time.Microsecond), alive)
	for _, s := range sends {
		if p, ok := s.Payload.(Propose); ok {
			if p.View.ID.Seq <= 50 {
				t.Errorf("proposal seq %d not above observed 50", p.View.ID.Seq)
			}
			return
		}
	}
	t.Fatal("no proposal made")
}

func TestNoProposalWhenMembershipMatches(t *testing.T) {
	a := NewAgreement(0, initialView(), time.Millisecond)
	alive := types.NewProcSet(0, 1, 2) // equals current view
	a.Tick(t0, alive)
	sends, _ := a.Tick(t0.Add(time.Microsecond), alive)
	if len(sends) != 0 {
		t.Error("proposed although the view already matches")
	}
}
