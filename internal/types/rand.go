package types

import "math/rand"

// RandomSubset returns a uniformly random nonempty subset of procs.
// It panics only if procs is empty, which callers must not allow.
func RandomSubset(rng *rand.Rand, procs []ProcID) ProcSet {
	for {
		s := make(ProcSet)
		for _, p := range procs {
			if rng.Intn(2) == 0 {
				s.Add(p)
			}
		}
		if s.Len() > 0 {
			return s
		}
	}
}

// RandomMember returns a uniformly random element of procs.
func RandomMember(rng *rand.Rand, procs []ProcID) ProcID {
	return procs[rng.Intn(len(procs))]
}
