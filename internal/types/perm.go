package types

// Perm is a bijection over a finite process universe, used for symmetry
// reduction over process identities: ids not in the map are fixed. The
// helpers below push a permutation through every id-bearing type in this
// package; model packages compose them into deep state permutations.
type Perm map[ProcID]ProcID

// ID returns π(p); ids outside the permutation's domain are fixed.
func (pi Perm) ID(p ProcID) ProcID {
	if q, ok := pi[p]; ok {
		return q
	}
	return p
}

// Set returns π(s) as a fresh set.
func (pi Perm) Set(s ProcSet) ProcSet {
	if s == nil {
		return nil
	}
	out := make(ProcSet, len(s))
	for p := range s {
		out[pi.ID(p)] = struct{}{}
	}
	return out
}

// ViewID returns π(g). The origin component names the process that created
// the view — except in g0, the distinguished least identifier, whose zero
// origin is not a process reference and is left fixed (g0 must be fixed by
// every symmetry: it identifies the initial view).
func (pi Perm) ViewID(g ViewID) ViewID {
	if g.Seq == 0 {
		return g
	}
	return ViewID{Seq: g.Seq, Origin: pi.ID(g.Origin)}
}

// View returns π(v) as a fresh view.
func (pi Perm) View(v View) View {
	return View{ID: pi.ViewID(v.ID), Members: pi.Set(v.Members)}
}

// Label returns π(l); both the view id and the origin name processes.
func (pi Perm) Label(l Label) Label {
	return Label{ID: pi.ViewID(l.ID), Seqno: l.Seqno, Origin: pi.ID(l.Origin)}
}

// Content returns π(c) as a fresh relation (labels re-keyed, messages
// unchanged).
func (pi Perm) Content(c Content) Content {
	if c == nil {
		return nil
	}
	out := make(Content, len(c))
	for l, a := range c {
		out[pi.Label(l)] = a
	}
	return out
}

// Labels returns π applied elementwise to a label sequence.
func (pi Perm) Labels(ls []Label) []Label {
	if ls == nil {
		return nil
	}
	out := make([]Label, len(ls))
	for i, l := range ls {
		out[i] = pi.Label(l)
	}
	return out
}

// Summary returns π(x) as a fresh summary.
func (pi Perm) Summary(x Summary) Summary {
	return Summary{
		Con:  pi.Content(x.Con),
		Ord:  pi.Labels(x.Ord),
		Next: x.Next,
		High: pi.ViewID(x.High),
	}
}

// GotState returns π(y) as a fresh map: domain re-keyed, summaries
// permuted.
func (pi Perm) GotState(y GotState) GotState {
	if y == nil {
		return nil
	}
	out := make(GotState, len(y))
	for p, x := range y {
		out[pi.ID(p)] = pi.Summary(x)
	}
	return out
}

// PermutableMsg is implemented by message types that carry process
// identities (directly or through views and labels) and therefore change
// under a process permutation. Messages without the method are fixed points
// of every permutation.
type PermutableMsg interface {
	Msg
	// PermuteMsg returns π(m) as a fresh message; the receiver is not
	// mutated.
	PermuteMsg(pi Perm) Msg
}

// Msg returns π(m): PermutableMsg values are permuted, everything else
// (client payloads, id-free service messages) is returned unchanged.
func (pi Perm) Msg(m Msg) Msg {
	if pm, ok := m.(PermutableMsg); ok {
		return pm.PermuteMsg(pi)
	}
	return m
}

// Msgs returns π applied elementwise to a message sequence.
func (pi Perm) Msgs(q []Msg) []Msg {
	if q == nil {
		return nil
	}
	out := make([]Msg, len(q))
	for i, m := range q {
		out[i] = pi.Msg(m)
	}
	return out
}

// PermuteMsg implements PermutableMsg: a batch permutes elementwise.
func (b Batch) PermuteMsg(pi Perm) Msg { return Batch{Msgs: pi.Msgs(b.Msgs)} }

// PermsOf returns every permutation of the given universe in a
// deterministic order (lexicographic in the image sequence of the sorted
// universe). The identity is always first. Universes are small — the
// factorial growth is the caller's concern; symmetry groups are intersected
// down to stabilizers before use.
func PermsOf(universe ProcSet) []Perm {
	ids := universe.Sorted()
	n := len(ids)
	var out []Perm
	image := make([]ProcID, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(image) == n {
			pi := make(Perm, n)
			for i, p := range ids {
				pi[p] = image[i]
			}
			out = append(out, pi)
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			image = append(image, ids[i])
			rec()
			image = image[:len(image)-1]
			used[i] = false
		}
	}
	rec()
	return out
}
