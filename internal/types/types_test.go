package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestViewIDLess(t *testing.T) {
	cases := []struct {
		a, b ViewID
		want bool
	}{
		{ViewID{0, 0}, ViewID{0, 0}, false},
		{ViewID{0, 0}, ViewID{0, 1}, true},
		{ViewID{0, 5}, ViewID{1, 0}, true},
		{ViewID{2, 3}, ViewID{2, 3}, false},
		{ViewID{2, 3}, ViewID{2, 4}, true},
		{ViewID{3, 0}, ViewID{2, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%s.Less(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestViewIDCompare(t *testing.T) {
	a, b := ViewID{1, 2}, ViewID{1, 3}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare inconsistent with Less")
	}
}

func TestViewIDTotalOrderProperty(t *testing.T) {
	// Trichotomy and transitivity over random triples.
	f := func(s1, s2, s3 uint8, o1, o2, o3 uint8) bool {
		a := ViewID{uint64(s1), ProcID(o1)}
		b := ViewID{uint64(s2), ProcID(o2)}
		c := ViewID{uint64(s3), ProcID(o3)}
		tri := 0
		if a.Less(b) {
			tri++
		}
		if b.Less(a) {
			tri++
		}
		if a == b {
			tri++
		}
		if tri != 1 {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewIDNext(t *testing.T) {
	a := ViewID{5, 3}
	n := a.Next(1)
	if !a.Less(n) {
		t.Errorf("Next(%s) = %s not greater", a, n)
	}
	if n.Seq != 6 || n.Origin != 1 {
		t.Errorf("Next = %s, want 6.1", n)
	}
	if !ViewIDZero.IsZero() || n.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet(3, 1, 4, 1)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(4) || s.Contains(2) {
		t.Error("Contains wrong")
	}
	s.Add(2)
	s.Remove(3)
	want := []ProcID{1, 2, 4}
	got := s.Sorted()
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	if s.String() != "{1,2,4}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestRangeProcSet(t *testing.T) {
	s := RangeProcSet(4)
	if s.Len() != 4 || !s.Contains(0) || !s.Contains(3) || s.Contains(4) {
		t.Errorf("RangeProcSet(4) = %s", s)
	}
}

func TestProcSetCloneIndependence(t *testing.T) {
	s := NewProcSet(1, 2)
	c := s.Clone()
	c.Add(3)
	if s.Contains(3) {
		t.Error("Clone not independent")
	}
	if !s.Equal(NewProcSet(2, 1)) {
		t.Error("Equal wrong")
	}
	if s.Equal(c) {
		t.Error("Equal should be false after divergence")
	}
}

func TestProcSetIntersect(t *testing.T) {
	a := NewProcSet(1, 2, 3, 4)
	b := NewProcSet(3, 4, 5)
	got := a.Intersect(b)
	if !got.Equal(NewProcSet(3, 4)) {
		t.Errorf("Intersect = %s", got)
	}
	if a.IntersectCount(b) != 2 {
		t.Error("IntersectCount wrong")
	}
	if !a.Intersects(b) || a.Intersects(NewProcSet(9)) {
		t.Error("Intersects wrong")
	}
}

func TestProcSetMajorityOf(t *testing.T) {
	u := NewProcSet(0, 1, 2, 3, 4)
	if NewProcSet(0, 1).MajorityOf(u) {
		t.Error("2 of 5 is not a majority")
	}
	if !NewProcSet(0, 1, 2).MajorityOf(u) {
		t.Error("3 of 5 is a majority")
	}
	// Exactly half is not a strict majority.
	u4 := NewProcSet(0, 1, 2, 3)
	if NewProcSet(0, 1).MajorityOf(u4) {
		t.Error("2 of 4 is not a strict majority")
	}
}

func TestProcSetSubsetUnion(t *testing.T) {
	a := NewProcSet(1, 2)
	b := NewProcSet(1, 2, 3)
	if !a.Subset(b) || b.Subset(a) {
		t.Error("Subset wrong")
	}
	u := a.Union(NewProcSet(4))
	if !u.Equal(NewProcSet(1, 2, 4)) {
		t.Errorf("Union = %s", u)
	}
	if !NewProcSet().Subset(a) {
		t.Error("empty set is a subset of everything")
	}
}

func TestProcSetIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	procs := RangeProcSet(8).Sorted()
	for i := 0; i < 200; i++ {
		a := RandomSubset(rng, procs)
		b := RandomSubset(rng, procs)
		if a.IntersectCount(b) != b.IntersectCount(a) {
			t.Fatal("IntersectCount not symmetric")
		}
		if a.Intersects(b) != (a.IntersectCount(b) > 0) {
			t.Fatal("Intersects inconsistent")
		}
		inter := a.Intersect(b)
		if !inter.Subset(a) || !inter.Subset(b) {
			t.Fatal("intersection not a subset")
		}
	}
}

func TestViewBasics(t *testing.T) {
	v := NewView(ViewID{1, 0}, 0, 1, 2)
	if !v.Contains(1) || v.Contains(5) {
		t.Error("Contains wrong")
	}
	c := v.Clone()
	c.Members.Add(5)
	if v.Contains(5) {
		t.Error("Clone not independent")
	}
	if v.String() != "<1.0,{0,1,2}>" {
		t.Errorf("String = %q", v.String())
	}
	if !v.Equal(NewView(ViewID{1, 0}, 2, 1, 0)) {
		t.Error("Equal wrong")
	}
	if v.Equal(NewView(ViewID{1, 1}, 0, 1, 2)) {
		t.Error("Equal ignores id")
	}
}

func TestInitialView(t *testing.T) {
	p0 := NewProcSet(0, 1)
	v0 := InitialView(p0)
	if !v0.ID.IsZero() {
		t.Error("initial view id must be g0")
	}
	p0.Add(9)
	if v0.Contains(9) {
		t.Error("InitialView must copy the membership")
	}
}

func TestSortViewsAndMaxView(t *testing.T) {
	vs := []View{
		NewView(ViewID{3, 0}, 0),
		NewView(ViewID{1, 1}, 1),
		NewView(ViewID{1, 0}, 2),
	}
	SortViews(vs)
	if vs[0].ID != (ViewID{1, 0}) || vs[2].ID != (ViewID{3, 0}) {
		t.Errorf("SortViews = %v", vs)
	}
	m, ok := MaxView(vs)
	if !ok || m.ID != (ViewID{3, 0}) {
		t.Errorf("MaxView = %v, %v", m, ok)
	}
	if _, ok := MaxView(nil); ok {
		t.Error("MaxView of empty should be false")
	}
}

func TestRandomSubsetNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	procs := RangeProcSet(3).Sorted()
	for i := 0; i < 100; i++ {
		if RandomSubset(rng, procs).Len() == 0 {
			t.Fatal("RandomSubset returned empty set")
		}
	}
}

func TestProcSetGobRoundTrip(t *testing.T) {
	s := NewProcSet(0, 5, 1000000)
	data, err := s.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got ProcSet
	if err := got.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip = %s, want %s", got, s)
	}
	var empty ProcSet
	if err := empty.GobDecode(nil); err != nil || empty.Len() != 0 {
		t.Error("empty round trip failed")
	}
	if err := got.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("malformed encoding accepted")
	}
}
