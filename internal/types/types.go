// Package types provides the mathematical foundations of the DVS paper
// (Section 2): process identifiers, totally ordered view identifiers, views,
// process sets, and the label/summary types used by the totally-ordered
// broadcast application (Section 6).
package types

import (
	"errors"
	"slices"
	"strconv"
	"strings"
)

// errInvalidProcSet reports a malformed gob encoding of a ProcSet.
var errInvalidProcSet = errors.New("types: invalid ProcSet encoding")

// ProcID identifies a processor. The paper uses "processor" and "process"
// interchangeably; so do we.
type ProcID int

// String returns the decimal form of the process id.
func (p ProcID) String() string { return strconv.Itoa(int(p)) }

// ViewID is an element of the totally ordered set G of view identifiers.
// Identifiers are ordered lexicographically by (Seq, Origin); the
// distinguished least element g0 is the zero value.
type ViewID struct {
	Seq    uint64
	Origin ProcID
}

// ViewIDZero is g0, the distinguished least view identifier.
var ViewIDZero = ViewID{}

// Less reports whether a precedes b in the total order on G.
func (a ViewID) Less(b ViewID) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Origin < b.Origin
}

// Compare returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func (a ViewID) Compare(b ViewID) int {
	switch {
	case a.Less(b):
		return -1
	case b.Less(a):
		return 1
	default:
		return 0
	}
}

// Next returns the smallest identifier with sequence number a.Seq+1 and the
// given origin. It is strictly greater than a.
func (a ViewID) Next(origin ProcID) ViewID {
	return ViewID{Seq: a.Seq + 1, Origin: origin}
}

// IsZero reports whether a is g0.
func (a ViewID) IsZero() bool { return a == ViewIDZero }

// String renders the identifier as "seq.origin".
func (a ViewID) String() string {
	return strconv.FormatUint(a.Seq, 10) + "." + strconv.Itoa(int(a.Origin))
}

// ProcSet is a finite set of process identifiers.
type ProcSet map[ProcID]struct{}

// NewProcSet builds a set from the given process ids.
func NewProcSet(ps ...ProcID) ProcSet {
	s := make(ProcSet, len(ps))
	for _, p := range ps {
		s[p] = struct{}{}
	}
	return s
}

// RangeProcSet returns the set {0, 1, ..., n-1}.
func RangeProcSet(n int) ProcSet {
	s := make(ProcSet, n)
	for i := 0; i < n; i++ {
		s[ProcID(i)] = struct{}{}
	}
	return s
}

// Contains reports whether p is a member of s.
func (s ProcSet) Contains(p ProcID) bool {
	_, ok := s[p]
	return ok
}

// Add inserts p into s.
func (s ProcSet) Add(p ProcID) { s[p] = struct{}{} }

// Remove deletes p from s.
func (s ProcSet) Remove(p ProcID) { delete(s, p) }

// Len returns |s|.
func (s ProcSet) Len() int { return len(s) }

// Clone returns an independent copy of s.
func (s ProcSet) Clone() ProcSet {
	c := make(ProcSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// Equal reports whether s and t contain exactly the same processes.
func (s ProcSet) Equal(t ProcSet) bool {
	if len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ t.
func (s ProcSet) Intersect(t ProcSet) ProcSet {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	out := make(ProcSet)
	for p := range small {
		if large.Contains(p) {
			out[p] = struct{}{}
		}
	}
	return out
}

// IntersectCount returns |s ∩ t| without allocating the intersection.
func (s ProcSet) IntersectCount(t ProcSet) int {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	n := 0
	for p := range small {
		if large.Contains(p) {
			n++
		}
	}
	return n
}

// Intersects reports whether s ∩ t is nonempty.
func (s ProcSet) Intersects(t ProcSet) bool { return s.IntersectCount(t) > 0 }

// MajorityOf reports the local check used by VS-TO-DVS (Figure 3):
// |s ∩ t| > |t|/2, i.e. s contains a strict majority of t.
func (s ProcSet) MajorityOf(t ProcSet) bool {
	return 2*s.IntersectCount(t) > t.Len()
}

// Subset reports whether s ⊆ t.
func (s ProcSet) Subset(t ProcSet) bool {
	for p := range s {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s ProcSet) Union(t ProcSet) ProcSet {
	out := s.Clone()
	for p := range t {
		out[p] = struct{}{}
	}
	return out
}

// Sorted returns the members of s in increasing order.
func (s ProcSet) Sorted() []ProcID {
	out := make([]ProcID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// String renders s canonically, e.g. "{0,2,5}".
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// View is a pair <g, P> of a view identifier and a nonempty membership set.
type View struct {
	ID      ViewID
	Members ProcSet
}

// NewView builds a view from an identifier and members.
func NewView(id ViewID, members ...ProcID) View {
	return View{ID: id, Members: NewProcSet(members...)}
}

// InitialView returns the distinguished initial view v0 = <g0, P0>.
func InitialView(members ProcSet) View {
	return View{ID: ViewIDZero, Members: members.Clone()}
}

// Contains reports whether p ∈ v.set.
func (v View) Contains(p ProcID) bool { return v.Members.Contains(p) }

// Clone returns an independent copy of v.
func (v View) Clone() View {
	return View{ID: v.ID, Members: v.Members.Clone()}
}

// Equal reports whether v and w have the same identifier and membership.
func (v View) Equal(w View) bool {
	return v.ID == w.ID && v.Members.Equal(w.Members)
}

// String renders the view as "<seq.origin,{members}>".
func (v View) String() string {
	return "<" + v.ID.String() + "," + v.Members.String() + ">"
}

// SortViews orders views in place by increasing identifier.
func SortViews(vs []View) {
	slices.SortFunc(vs, func(a, b View) int {
		if a.ID.Less(b.ID) {
			return -1
		}
		if b.ID.Less(a.ID) {
			return 1
		}
		return 0
	})
}

// MaxView returns the view with the greatest identifier in vs, and false if
// vs is empty.
func MaxView(vs []View) (View, bool) {
	if len(vs) == 0 {
		return View{}, false
	}
	best := vs[0]
	for _, v := range vs[1:] {
		if best.ID.Less(v.ID) {
			best = v
		}
	}
	return best, true
}

// GobEncode implements gob encoding for ProcSet (a map with zero-sized
// values, which gob cannot encode directly) as a sorted id list.
func (s ProcSet) GobEncode() ([]byte, error) {
	out := make([]byte, 0, 2+8*len(s))
	for _, p := range s.Sorted() {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	return out, nil
}

// GobDecode implements gob decoding for ProcSet.
func (s *ProcSet) GobDecode(data []byte) error {
	if len(data)%8 != 0 {
		return errInvalidProcSet
	}
	out := make(ProcSet, len(data)/8)
	for i := 0; i+8 <= len(data); i += 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(data[i+j]) << (8 * j)
		}
		out[ProcID(v)] = struct{}{}
	}
	*s = out
	return nil
}
