package types

// Sequence utilities from Section 2 of the paper. Sequences are Go slices;
// the empty sequence λ is the nil (or empty) slice.

// IsPrefix reports whether a ≤ b, i.e. there exists c with a+c = b.
func IsPrefix[T comparable](a, b []T) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Consistent reports whether the collection of sequences is consistent:
// for every pair, one is a prefix of the other.
func Consistent[T comparable](seqs ...[]T) bool {
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			if !IsPrefix(seqs[i], seqs[j]) && !IsPrefix(seqs[j], seqs[i]) {
				return false
			}
		}
	}
	return true
}

// LUB returns the least upper bound of a consistent collection of sequences:
// the minimum sequence b with a ≤ b for every a. The second result is false
// if the collection is not consistent. LUB of the empty collection is λ.
func LUB[T comparable](seqs ...[]T) ([]T, bool) {
	var longest []T
	for _, s := range seqs {
		if len(s) > len(longest) {
			longest = s
		}
	}
	for _, s := range seqs {
		if !IsPrefix(s, longest) {
			return nil, false
		}
	}
	out := make([]T, len(longest))
	copy(out, longest)
	return out, true
}

// CommonPrefix returns the longest sequence that is a prefix of both a and b.
func CommonPrefix[T comparable](a, b []T) []T {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	out := make([]T, i)
	copy(out, a[:i])
	return out
}

// ApplyToAll maps f over a, per the paper's applytoall(f, a).
func ApplyToAll[S, T any](f func(S) T, a []S) []T {
	out := make([]T, len(a))
	for i, x := range a {
		out[i] = f(x)
	}
	return out
}

// Head returns the first element of a nonempty sequence; ok is false for λ.
func Head[T any](a []T) (head T, ok bool) {
	if len(a) == 0 {
		return head, false
	}
	return a[0], true
}

// CloneSeq returns an independent copy of a. The clone of λ is a non-nil
// empty slice, so fingerprints of λ and cloned λ agree.
func CloneSeq[T any](a []T) []T {
	out := make([]T, len(a))
	copy(out, a)
	return out
}
