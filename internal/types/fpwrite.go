package types

// FpWriter is the value-writing subset of ioa.Fingerprinter's API, declared
// here structurally so the foundational types package stays free of checker
// imports. The WriteFp methods below let automata stream canonical value
// renderings straight into a fingerprint digest without building the
// intermediate strings the String methods produce.
type FpWriter interface {
	Str(s string)
	Byte(c byte)
	Int(v int)
	Uint(v uint64)
}

// FpValue is implemented by values that can write their canonical form into
// a fingerprint digest.
type FpValue interface {
	WriteFp(w FpWriter)
}

// WriteFp writes the decimal process id (matches ProcID.String).
func (p ProcID) WriteFp(w FpWriter) { w.Int(int(p)) }

// WriteFp writes "seq.origin" (matches ViewID.String).
func (a ViewID) WriteFp(w FpWriter) {
	w.Uint(a.Seq)
	w.Byte('.')
	w.Int(int(a.Origin))
}

// WriteFp writes "{p1,p2,...}" in increasing order (matches ProcSet.String)
// without allocating the sorted slice for small sets.
func (s ProcSet) WriteFp(w FpWriter) {
	w.Byte('{')
	var stack [16]ProcID
	ids := stack[:0]
	if len(s) > len(stack) {
		ids = make([]ProcID, 0, len(s))
	}
	for p := range s {
		ids = append(ids, p)
	}
	// Insertion sort even for large sets: passing ids to sort.Slice would
	// force the stack buffer to escape on every call, and process universes
	// are small enough that O(n²) never bites.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for i, p := range ids {
		if i > 0 {
			w.Byte(',')
		}
		w.Int(int(p))
	}
	w.Byte('}')
}

// WriteFp writes "<seq.origin,{members}>" (matches View.String).
func (v View) WriteFp(w FpWriter) {
	w.Byte('<')
	v.ID.WriteFp(w)
	w.Byte(',')
	v.Members.WriteFp(w)
	w.Byte('>')
}

// WriteFp writes "id/seqno@origin" (matches Label.String).
func (a Label) WriteFp(w FpWriter) {
	a.ID.WriteFp(w)
	w.Byte('/')
	w.Int(a.Seqno)
	w.Byte('@')
	w.Int(int(a.Origin))
}

// WriteFp writes the content relation canonically in label order (matches
// Content.String).
func (c Content) WriteFp(w FpWriter) {
	w.Byte('{')
	for i, l := range c.Labels() {
		if i > 0 {
			w.Byte(' ')
		}
		l.WriteFp(w)
		w.Byte('=')
		w.Str(c[l])
	}
	w.Byte('}')
}

// WriteFp writes the summary canonically (matches Summary.String).
func (x Summary) WriteFp(w FpWriter) {
	w.Str("sum{con=")
	x.Con.WriteFp(w)
	w.Str(" ord=[")
	for i, l := range x.Ord {
		if i > 0 {
			w.Byte(' ')
		}
		l.WriteFp(w)
	}
	w.Str("] next=")
	w.Int(x.Next)
	w.Str(" high=")
	x.High.WriteFp(w)
	w.Byte('}')
}

// WriteFp writes "c:payload" (matches ClientMsg.MsgKey).
func (m ClientMsg) WriteFp(w FpWriter) {
	w.Str("c:")
	w.Str(string(m))
}

// WriteMsgFp writes m's canonical key into w, streaming it via WriteFp when
// the concrete message supports it and falling back to the MsgKey string.
func WriteMsgFp(w FpWriter, m Msg) {
	if v, ok := m.(FpValue); ok {
		v.WriteFp(w)
		return
	}
	w.Str(m.MsgKey())
}
