package types

import (
	"bytes"
	"testing"
)

// FuzzPrefixLaws checks the partial-order laws of ≤ on byte sequences and
// the lub definition of Section 2 against arbitrary inputs.
func FuzzPrefixLaws(f *testing.F) {
	f.Add([]byte("abc"), []byte("abcd"))
	f.Add([]byte{}, []byte{1})
	f.Add([]byte{1, 2}, []byte{1, 3})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Antisymmetry.
		if IsPrefix(a, b) && IsPrefix(b, a) && !bytes.Equal(a, b) {
			t.Fatal("antisymmetry violated")
		}
		// CommonPrefix is the meet.
		p := CommonPrefix(a, b)
		if !IsPrefix(p, a) || !IsPrefix(p, b) {
			t.Fatal("common prefix not a prefix")
		}
		// LUB succeeds iff consistent, and is the longer sequence.
		lub, ok := LUB(a, b)
		consistent := IsPrefix(a, b) || IsPrefix(b, a)
		if ok != consistent {
			t.Fatalf("LUB ok=%v but consistent=%v", ok, consistent)
		}
		if ok && !IsPrefix(a, lub) {
			t.Fatal("a not below lub")
		}
		if ok && len(lub) != max(len(a), len(b)) {
			t.Fatal("lub not minimal")
		}
	})
}

// FuzzViewIDOrder checks that the view identifier order is total and
// consistent with Compare.
func FuzzViewIDOrder(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint64(1), uint8(2))
	f.Fuzz(func(t *testing.T, s1 uint64, o1 uint8, s2 uint64, o2 uint8) {
		a := ViewID{Seq: s1, Origin: ProcID(o1)}
		b := ViewID{Seq: s2, Origin: ProcID(o2)}
		tri := 0
		if a.Less(b) {
			tri++
		}
		if b.Less(a) {
			tri++
		}
		if a == b {
			tri++
		}
		if tri != 1 {
			t.Fatal("not a total order")
		}
		if a.Compare(b) != -b.Compare(a) {
			t.Fatal("Compare not antisymmetric")
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
