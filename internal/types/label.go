package types

import (
	"sort"
	"strconv"
	"strings"
)

// Label is an element of L = G × N>0 × P, the system-wide unique labels the
// TO application assigns to client messages (Section 6). Labels are ordered
// lexicographically by (ID, Seqno, Origin); the paper calls this "label
// order".
type Label struct {
	ID     ViewID
	Seqno  int
	Origin ProcID
}

// Less reports whether a precedes b in label order.
func (a Label) Less(b Label) bool {
	if a.ID != b.ID {
		return a.ID.Less(b.ID)
	}
	if a.Seqno != b.Seqno {
		return a.Seqno < b.Seqno
	}
	return a.Origin < b.Origin
}

// String renders the label as "id/seqno@origin".
func (a Label) String() string {
	return a.ID.String() + "/" + strconv.Itoa(a.Seqno) + "@" + strconv.Itoa(int(a.Origin))
}

// SortLabels orders labels in place by label order.
func SortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
}

// Content is the relation C = L × A associating labels with client messages.
// The TO automaton only ever associates one message per label, so a map is
// the natural representation; Merge unions two relations.
type Content map[Label]string

// Clone returns an independent copy of c.
func (c Content) Clone() Content {
	out := make(Content, len(c))
	for l, a := range c {
		out[l] = a
	}
	return out
}

// Merge adds every association of other into c.
func (c Content) Merge(other Content) {
	for l, a := range other {
		c[l] = a
	}
}

// Labels returns the domain of c in label order.
func (c Content) Labels() []Label {
	out := make([]Label, 0, len(c))
	for l := range c {
		out = append(out, l)
	}
	SortLabels(out)
	return out
}

// String renders c canonically in label order.
func (c Content) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range c.Labels() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
		b.WriteByte('=')
		b.WriteString(c[l])
	}
	b.WriteByte('}')
	return b.String()
}

// Summary is an element of S = 2^C × seqof(L) × N>0 × G, the state summary a
// process multicasts during recovery (Section 6): its content relation, its
// tentative order, its next-confirm index, and the highest primary it has
// established.
type Summary struct {
	Con  Content
	Ord  []Label
	Next int
	High ViewID
}

// Clone returns an independent copy of x.
func (x Summary) Clone() Summary {
	return Summary{
		Con:  x.Con.Clone(),
		Ord:  CloneSeq(x.Ord),
		Next: x.Next,
		High: x.High,
	}
}

// String renders the summary canonically.
func (x Summary) String() string {
	var b strings.Builder
	b.WriteString("sum{con=")
	b.WriteString(x.Con.String())
	b.WriteString(" ord=[")
	for i, l := range x.Ord {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	b.WriteString("] next=")
	b.WriteString(strconv.Itoa(x.Next))
	b.WriteString(" high=")
	b.WriteString(x.High.String())
	b.WriteByte('}')
	return b.String()
}

// GotState is a partial function from processor ids to summaries, as used by
// the recovery procedure of DVS-TO-TO.
type GotState map[ProcID]Summary

// Clone returns a deep copy of y.
func (y GotState) Clone() GotState {
	out := make(GotState, len(y))
	for p, x := range y {
		out[p] = x.Clone()
	}
	return out
}

// KnownContent returns the union of the content relations of all summaries.
func (y GotState) KnownContent() Content {
	out := make(Content)
	for _, x := range y {
		out.Merge(x.Con)
	}
	return out
}

// MaxPrimary returns max over the domain of y of the high components.
func (y GotState) MaxPrimary() ViewID {
	var best ViewID
	for _, x := range y {
		if best.Less(x.High) {
			best = x.High
		}
	}
	return best
}

// MaxNextConfirm returns the maximum next component among the summaries.
func (y GotState) MaxNextConfirm() int {
	best := 1
	for _, x := range y {
		if x.Next > best {
			best = x.Next
		}
	}
	return best
}

// ChosenRep picks a representative among the processes whose high component
// equals MaxPrimary(y). The paper allows "some element in reps(Y)", but not
// every choice is safe: highprimary is initialized to g0 at every process —
// including processes that were never members of the initial view — so a
// rep can tie for max-high while holding an empty (or strictly shorter)
// tentative order, and fullorder would then reorder labels an earlier
// primary already confirmed (mechanically demonstrated in the toimpl
// tests). The safe instantiation, implicit in the Keidar–Dolev algorithm
// the paper builds on, picks the rep with the ⊑-maximal tentative order:
// reps' orders are pairwise prefix-related (members that actually
// established maxprimary computed identical establishment orders and then
// received identical per-view delivery sequences; defaulted reps hold λ),
// so "longest order, ties by least id" is well-defined, agreed on by all
// members holding equal gotstate maps, and extends every confirmed prefix.
func (y GotState) ChosenRep() (ProcID, bool) {
	high := y.MaxPrimary()
	var rep ProcID
	found := false
	best := -1
	for p, x := range y {
		if x.High != high {
			continue
		}
		if !found || len(x.Ord) > best || (len(x.Ord) == best && p < rep) {
			rep = p
			best = len(x.Ord)
			found = true
		}
	}
	return rep, found
}

// ShortOrder returns the tentative order of the chosen representative.
func (y GotState) ShortOrder() []Label {
	rep, ok := y.ChosenRep()
	if !ok {
		return nil
	}
	return CloneSeq(y[rep].Ord)
}

// FullOrder returns shortorder(Y) followed by the remaining labels of
// dom(knowncontent(Y)) in label order.
func (y GotState) FullOrder() []Label {
	short := y.ShortOrder()
	seen := make(map[Label]struct{}, len(short))
	for _, l := range short {
		seen[l] = struct{}{}
	}
	rest := make([]Label, 0)
	for l := range y.KnownContent() {
		if _, ok := seen[l]; !ok {
			rest = append(rest, l)
		}
	}
	SortLabels(rest)
	return append(short, rest...)
}
