package types

import (
	"testing"
	"testing/quick"
)

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{nil, []int{1}, true},
		{[]int{1}, nil, false},
		{[]int{1, 2}, []int{1, 2, 3}, true},
		{[]int{1, 3}, []int{1, 2, 3}, false},
		{[]int{1, 2, 3}, []int{1, 2, 3}, true},
		{[]int{1, 2, 3, 4}, []int{1, 2, 3}, false},
	}
	for _, c := range cases {
		if got := IsPrefix(c.a, c.b); got != c.want {
			t.Errorf("IsPrefix(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsPrefixProperties(t *testing.T) {
	// a ≤ a+b, and a ≤ b ∧ b ≤ a ⇒ a = b.
	f := func(a, b []byte) bool {
		ab := append(append([]byte{}, a...), b...)
		if !IsPrefix(a, ab) {
			return false
		}
		if IsPrefix(a, b) && IsPrefix(b, a) && string(a) != string(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsistent(t *testing.T) {
	if !Consistent([]int{1}, []int{1, 2}, nil) {
		t.Error("prefix chain should be consistent")
	}
	if Consistent([]int{1}, []int{2}) {
		t.Error("diverging sequences are not consistent")
	}
	if !Consistent[int]() {
		t.Error("empty collection is consistent")
	}
}

func TestLUB(t *testing.T) {
	lub, ok := LUB([]int{1}, []int{1, 2, 3}, []int{1, 2})
	if !ok || len(lub) != 3 || lub[2] != 3 {
		t.Errorf("LUB = %v, %v", lub, ok)
	}
	if _, ok := LUB([]int{1}, []int{2}); ok {
		t.Error("LUB of inconsistent collection should fail")
	}
	lub, ok = LUB[int]()
	if !ok || len(lub) != 0 {
		t.Error("LUB of empty collection is λ")
	}
}

func TestLUBProperty(t *testing.T) {
	// For any sequence s and cut points, the prefixes' LUB is the longest
	// prefix.
	f := func(s []byte, i, j uint8) bool {
		ci, cj := int(i)%(len(s)+1), int(j)%(len(s)+1)
		lub, ok := LUB(s[:ci], s[:cj], s)
		return ok && string(lub) == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefix(t *testing.T) {
	got := CommonPrefix([]int{1, 2, 3}, []int{1, 2, 9, 9})
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("CommonPrefix = %v", got)
	}
	if len(CommonPrefix([]int{1}, []int{2})) != 0 {
		t.Error("disjoint sequences share only λ")
	}
}

func TestCommonPrefixProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		p := CommonPrefix(a, b)
		if !IsPrefix(p, a) || !IsPrefix(p, b) {
			return false
		}
		// Maximal: the next elements differ or one sequence ends.
		if len(p) < len(a) && len(p) < len(b) && a[len(p)] == b[len(p)] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyToAll(t *testing.T) {
	got := ApplyToAll(func(x int) int { return x * 2 }, []int{1, 2, 3})
	if len(got) != 3 || got[2] != 6 {
		t.Errorf("ApplyToAll = %v", got)
	}
}

func TestHead(t *testing.T) {
	if _, ok := Head([]int{}); ok {
		t.Error("Head of λ should fail")
	}
	h, ok := Head([]int{7, 8})
	if !ok || h != 7 {
		t.Errorf("Head = %v, %v", h, ok)
	}
}

func TestCloneSeq(t *testing.T) {
	a := []int{1, 2}
	c := CloneSeq(a)
	c[0] = 9
	if a[0] != 1 {
		t.Error("CloneSeq not independent")
	}
	if CloneSeq[int](nil) == nil {
		t.Error("CloneSeq of nil should be non-nil empty")
	}
}
