package types

import (
	"slices"
	"strconv"
)

// GroupID identifies one DVS/TO group (shard) of a sharded deployment. The
// classic single-group stack is group 0; a sharded cluster runs N
// independent groups, each with its own membership protocol, primary-view
// filter, and per-group total order, multiplexed over one shared transport.
type GroupID int

// String returns the decimal form of the group id.
func (g GroupID) String() string { return strconv.Itoa(int(g)) }

// RangeGroups returns the ids {0, 1, ..., n-1} in order.
func RangeGroups(n int) []GroupID {
	out := make([]GroupID, n)
	for i := range out {
		out[i] = GroupID(i)
	}
	return out
}

// SortGroups orders group ids ascending, in place.
func SortGroups(gs []GroupID) {
	slices.Sort(gs)
}

// DedupGroups sorts gs and removes duplicates, returning the (possibly
// shorter) slice. The multicast core requires destination sets in this
// canonical form so its effect emission order is deterministic.
func DedupGroups(gs []GroupID) []GroupID {
	SortGroups(gs)
	return slices.Compact(gs)
}

// ContainsGroup reports whether the sorted slice gs contains g.
func ContainsGroup(gs []GroupID, g GroupID) bool {
	_, ok := slices.BinarySearch(gs, g)
	return ok
}
