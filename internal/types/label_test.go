package types

import (
	"testing"
	"testing/quick"
)

func TestLabelLess(t *testing.T) {
	l := func(seq uint64, origin ProcID, seqno int) Label {
		return Label{ID: ViewID{seq, origin}, Seqno: seqno, Origin: origin}
	}
	cases := []struct {
		a, b Label
		want bool
	}{
		{l(1, 0, 1), l(2, 0, 1), true},
		{l(2, 0, 1), l(1, 0, 5), false},
		{Label{ViewID{1, 0}, 1, 0}, Label{ViewID{1, 0}, 2, 0}, true},
		{Label{ViewID{1, 0}, 1, 0}, Label{ViewID{1, 0}, 1, 1}, true},
		{Label{ViewID{1, 0}, 1, 1}, Label{ViewID{1, 0}, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%s.Less(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLabelOrderTotal(t *testing.T) {
	f := func(s1, s2 uint8, n1, n2 uint8, o1, o2 uint8) bool {
		a := Label{ViewID{uint64(s1), 0}, int(n1), ProcID(o1)}
		b := Label{ViewID{uint64(s2), 0}, int(n2), ProcID(o2)}
		tri := 0
		if a.Less(b) {
			tri++
		}
		if b.Less(a) {
			tri++
		}
		if a == b {
			tri++
		}
		return tri == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortLabels(t *testing.T) {
	ls := []Label{
		{ViewID{2, 0}, 1, 0},
		{ViewID{1, 0}, 2, 1},
		{ViewID{1, 0}, 1, 1},
	}
	SortLabels(ls)
	for i := 1; i < len(ls); i++ {
		if ls[i].Less(ls[i-1]) {
			t.Fatalf("not sorted: %v", ls)
		}
	}
}

func TestContentMergeClone(t *testing.T) {
	a := Content{Label{ViewID{1, 0}, 1, 0}: "x"}
	b := Content{Label{ViewID{1, 0}, 2, 0}: "y"}
	c := a.Clone()
	c.Merge(b)
	if len(a) != 1 || len(c) != 2 {
		t.Errorf("Merge/Clone wrong: |a|=%d |c|=%d", len(a), len(c))
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[1].Less(labels[0]) {
		t.Errorf("Labels not sorted: %v", labels)
	}
}

func TestSummaryClone(t *testing.T) {
	x := Summary{
		Con:  Content{Label{ViewID{1, 0}, 1, 0}: "a"},
		Ord:  []Label{{ViewID{1, 0}, 1, 0}},
		Next: 2,
		High: ViewID{1, 0},
	}
	c := x.Clone()
	c.Con[Label{ViewID{2, 0}, 1, 1}] = "b"
	c.Ord = append(c.Ord, Label{ViewID{2, 0}, 1, 1})
	if len(x.Con) != 1 || len(x.Ord) != 1 {
		t.Error("Summary.Clone not deep")
	}
}

func newSummary(high ViewID, next int, ord ...Label) Summary {
	con := make(Content)
	for _, l := range ord {
		con[l] = "m" + l.String()
	}
	return Summary{Con: con, Ord: ord, Next: next, High: high}
}

func TestGotStateMaxima(t *testing.T) {
	l1 := Label{ViewID{1, 0}, 1, 0}
	l2 := Label{ViewID{1, 0}, 1, 1}
	gs := GotState{
		0: newSummary(ViewID{1, 0}, 3, l1),
		1: newSummary(ViewID{2, 0}, 2, l2),
	}
	if gs.MaxPrimary() != (ViewID{2, 0}) {
		t.Errorf("MaxPrimary = %s", gs.MaxPrimary())
	}
	if gs.MaxNextConfirm() != 3 {
		t.Errorf("MaxNextConfirm = %d", gs.MaxNextConfirm())
	}
	rep, ok := gs.ChosenRep()
	if !ok || rep != 1 {
		t.Errorf("ChosenRep = %v, %v (want 1: the only max-high member)", rep, ok)
	}
}

func TestGotStateChosenRepTieBreak(t *testing.T) {
	gs := GotState{
		2: newSummary(ViewID{1, 0}, 1),
		0: newSummary(ViewID{1, 0}, 1),
		1: newSummary(ViewID{0, 0}, 1),
	}
	rep, ok := gs.ChosenRep()
	if !ok || rep != 0 {
		t.Errorf("ChosenRep = %v (want least id among equal-order max-high)", rep)
	}
	if _, ok := (GotState{}).ChosenRep(); ok {
		t.Error("ChosenRep of empty gotstate should fail")
	}
}

func TestGotStateChosenRepPrefersLongestOrder(t *testing.T) {
	// A defaulted rep (high = g0 without ever establishing anything, empty
	// order) must lose to a genuine member whose tentative order extends
	// the confirmed prefix — the unsafe choice the printed "some element in
	// reps(Y)" permits (finding F5).
	l1 := Label{ViewID{0, 0}, 1, 0}
	l2 := Label{ViewID{0, 0}, 2, 0}
	gs := GotState{
		2: newSummary(ViewIDZero, 1),         // never established; ord = λ
		3: newSummary(ViewIDZero, 2, l1, l2), // real v0 member with history
	}
	rep, ok := gs.ChosenRep()
	if !ok || rep != 3 {
		t.Fatalf("ChosenRep = %v, want the rep with the longest order", rep)
	}
	full := gs.FullOrder()
	if len(full) < 2 || full[0] != l1 || full[1] != l2 {
		t.Fatalf("fullorder must preserve the rep's prefix: %v", full)
	}
}

func TestGotStateFullOrder(t *testing.T) {
	// Chosen rep's order comes first; remaining known labels follow in
	// label order, without duplicates.
	lA := Label{ViewID{1, 0}, 1, 0}
	lB := Label{ViewID{1, 0}, 2, 0}
	lC := Label{ViewID{1, 0}, 1, 1}
	rep := newSummary(ViewID{2, 0}, 1, lB) // rep ordered only lB
	other := newSummary(ViewID{1, 0}, 1, lA, lC)
	gs := GotState{0: rep, 1: other}
	full := gs.FullOrder()
	if len(full) != 3 {
		t.Fatalf("FullOrder = %v", full)
	}
	if full[0] != lB {
		t.Errorf("rep's order must be the prefix, got %v", full)
	}
	if full[1] != lA || full[2] != lC {
		t.Errorf("rest must be in label order, got %v", full)
	}
	seen := map[Label]int{}
	for _, l := range full {
		seen[l]++
		if seen[l] > 1 {
			t.Errorf("duplicate label %s in full order", l)
		}
	}
}

func TestGotStateKnownContent(t *testing.T) {
	l1 := Label{ViewID{1, 0}, 1, 0}
	gs := GotState{0: newSummary(ViewID{1, 0}, 1, l1)}
	kc := gs.KnownContent()
	if len(kc) != 1 {
		t.Errorf("KnownContent = %v", kc)
	}
}

func TestMsgClassification(t *testing.T) {
	if !IsClient(ClientMsg("x")) {
		t.Error("ClientMsg must be a client message")
	}
	if ClientMsg("x").MsgKey() != "c:x" {
		t.Errorf("MsgKey = %q", ClientMsg("x").MsgKey())
	}
}
