package types

// Msg is a message in the universe M. Concrete message types provide a
// canonical key used for equality, traces, and state fingerprints.
type Msg interface {
	MsgKey() string
}

// ClientMsg is a client message in M_c, the set of messages clients may use
// for communication. In the specification layer client payloads are strings.
type ClientMsg string

// MsgKey implements Msg.
func (m ClientMsg) MsgKey() string { return "c:" + string(m) }

// String renders the message.
func (m ClientMsg) String() string { return string(m) }

// Batch groups several client messages into one wire unit. The tob shell
// coalesces the label/summary messages drained from adjacent macro-steps
// into a Batch before handing them to DVS, and expands a received Batch
// back into individual messages before they reach the protocol core — so
// the verified cores never see the type. A Batch is deliberately NOT a
// ServiceMsg: the VS-TO-DVS automaton treats client messages opaquely
// (queued, sent, delivered and safe-indicated as single units), which is
// exactly the transparency batching needs.
type Batch struct{ Msgs []Msg }

// MsgKey implements Msg: the concatenation of the member keys, so batches
// fingerprint and render canonically wherever single messages do.
func (b Batch) MsgKey() string {
	n := len("batch[]")
	for _, m := range b.Msgs {
		n += len(m.MsgKey()) + 1
	}
	buf := make([]byte, 0, n)
	buf = append(buf, "batch["...)
	for i, m := range b.Msgs {
		if i > 0 {
			buf = append(buf, '|')
		}
		buf = append(buf, m.MsgKey()...)
	}
	buf = append(buf, ']')
	return string(buf)
}

// ServiceMsg marks messages that are internal to a group-communication
// layer (e.g. the "info" and "registered" messages of VS-TO-DVS) and hence
// not members of M_c.
type ServiceMsg interface {
	Msg
	// ServiceMsg is a marker method.
	ServiceMsg()
}

// IsClient reports whether m is a client message (member of M_c): any
// message that is not marked as service-internal.
func IsClient(m Msg) bool {
	_, svc := m.(ServiceMsg)
	return !svc
}
