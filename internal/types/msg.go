package types

// Msg is a message in the universe M. Concrete message types provide a
// canonical key used for equality, traces, and state fingerprints.
type Msg interface {
	MsgKey() string
}

// ClientMsg is a client message in M_c, the set of messages clients may use
// for communication. In the specification layer client payloads are strings.
type ClientMsg string

// MsgKey implements Msg.
func (m ClientMsg) MsgKey() string { return "c:" + string(m) }

// String renders the message.
func (m ClientMsg) String() string { return string(m) }

// ServiceMsg marks messages that are internal to a group-communication
// layer (e.g. the "info" and "registered" messages of VS-TO-DVS) and hence
// not members of M_c.
type ServiceMsg interface {
	Msg
	// ServiceMsg is a marker method.
	ServiceMsg()
}

// IsClient reports whether m is a client message (member of M_c): any
// message that is not marked as service-internal.
func IsClient(m Msg) bool {
	_, svc := m.(ServiceMsg)
	return !svc
}
