package sim

import (
	"fmt"
	"strconv"
	"time"

	dvs "repro"
	"repro/internal/types"
)

// ShardedConfig configures the sharded-throughput experiment (E14): N
// independent groups over one shared transport, keyed traffic routed by
// consistent hash, and a fixed fraction of cross-group atomic multicasts.
type ShardedConfig struct {
	Processes int
	Groups    int
	Senders   int
	Duration  time.Duration
	// CrossFrac is the fraction of submissions sent as two-group atomic
	// multicasts instead of keyed single-group broadcasts (0 <= f < 1).
	CrossFrac float64
	Seed      int64
	// StreamDir, when non-empty, records every group's macro-steps into a
	// sharded trace directory (plus the multicast logs); verify it with
	// dvs.ReplayShardedTrace after the run.
	StreamDir string
}

func (c *ShardedConfig) fill() {
	if c.Processes == 0 {
		c.Processes = 4
	}
	if c.Groups == 0 {
		c.Groups = 2
	}
	if c.Senders == 0 {
		c.Senders = c.Processes
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
}

// ShardedResult summarizes a sharded throughput run.
type ShardedResult struct {
	Processes int
	Groups    int
	CrossFrac float64
	Keyed     int // accepted keyed submissions
	Multis    int // submitted cross-group multicasts
	Delivered int // deliveries observed at process 0, summed over groups
	Elapsed   time.Duration
	// Consistent is true when every group's delivery streams agree, every
	// process's multicast histories agree per group, and the cross-group
	// partial order holds.
	Consistent bool
	Run        RunStats
}

// PerSecond is the aggregate delivery rate observed at one process.
func (r ShardedResult) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Delivered) / r.Elapsed.Seconds()
}

// String renders one result row.
func (r ShardedResult) String() string {
	return fmt.Sprintf("n=%-2d groups=%-2d cross=%.0f%% keyed=%-6d multi=%-4d delivered=%-6d rate=%.0f msg/s consistent=%v",
		r.Processes, r.Groups, 100*r.CrossFrac, r.Keyed, r.Multis, r.Delivered, r.PerSecond(), r.Consistent)
}

// Sharded pumps mixed keyed and cross-group traffic through a sharded
// cluster and measures the aggregate totally-ordered delivery rate. Keyed
// submissions route by consistent hash and execute on independent
// per-group stacks — aggregate throughput should scale with the group
// count (E14) — while the cross-group fraction exercises the atomic
// multicast, whose two-group messages pin the shared order.
func Sharded(cfg ShardedConfig) (ShardedResult, error) {
	cfg.fill()
	cl, err := dvs.NewShardedCluster(dvs.ShardedConfig{
		Processes: cfg.Processes, Groups: cfg.Groups, Seed: cfg.Seed,
		Record: cfg.StreamDir != "", StreamDir: cfg.StreamDir,
	})
	if err != nil {
		return ShardedResult{}, err
	}
	defer cl.Close()
	groups := cl.Groups()
	settle(50 * time.Millisecond)

	res := ShardedResult{Processes: cfg.Processes, Groups: cfg.Groups, CrossFrac: cfg.CrossFrac}
	streams := make(map[types.GroupID][][]dvs.Delivery, len(groups))
	handles := make(map[types.GroupID][]*dvs.Process, len(groups))
	for _, g := range groups {
		streams[g] = make([][]dvs.Delivery, cfg.Processes)
		handles[g] = make([]*dvs.Process, cfg.Processes)
		for i := 0; i < cfg.Processes; i++ {
			h, ok := cl.Process(i).Group(g)
			if !ok {
				return res, fmt.Errorf("process %d missing group %s", i, g)
			}
			handles[g][i] = h
		}
	}
	drainAll := func() int {
		for _, g := range groups {
			for i := 0; i < cfg.Processes; i++ {
				Drain(handles[g][i], &streams[g][i])
			}
		}
		total := 0
		for _, g := range groups {
			total += len(streams[g][0])
		}
		return total
	}

	// The pump interleaves keyed submissions with cross-group multicasts at
	// the configured fraction, windowed on outstanding traffic so a slow
	// group applies backpressure instead of flooding its inbox.
	expectMulti := make(map[types.GroupID]int, len(groups))
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	const window = 256
	i, crossCredit := 0, 0.0
	for time.Now().Before(deadline) {
		at0 := drainAll()
		if res.Keyed+res.Multis-at0 >= window {
			time.Sleep(time.Millisecond)
			continue
		}
		sender := cl.Process(i % cfg.Senders)
		crossCredit += cfg.CrossFrac
		if crossCredit >= 1 {
			crossCredit--
			dests := types.DedupGroups([]types.GroupID{groups[i%len(groups)], groups[(i+1)%len(groups)]})
			if err := sender.SubmitMulti(dests, "x"+strconv.Itoa(i)); err != nil {
				return res, fmt.Errorf("multicast submit: %w", err)
			}
			res.Multis++
			for _, g := range dests {
				expectMulti[g]++
			}
		} else if sender.Submit("key-"+strconv.Itoa(i), "m"+strconv.Itoa(i)) {
			res.Keyed++
		}
		i++
	}
	// Allow in-flight traffic to finish: process 0's streams must reach the
	// accepted totals (every keyed submit plus each group's multicasts).
	want := res.Keyed + expectMulti[groups[0]]
	for _, g := range groups[1:] {
		want += expectMulti[g]
	}
	flushDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(flushDeadline) {
		if drainAll() >= want {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Elapsed = time.Since(start)
	res.Delivered = drainAll()

	// Safety: per-group total order, multicast agreement, and the
	// cross-group partial order over process 0's histories versus all.
	res.Consistent = true
	for _, g := range groups {
		if err := CheckDeliverySequences(streams[g]); err != nil {
			res.Consistent = false
		}
	}
	ref := make(map[types.GroupID][]dvs.McastDelivery, len(groups))
	for _, g := range groups {
		ref[g] = cl.Process(0).McastDelivered(g)
		for i := 1; i < cfg.Processes && res.Consistent; i++ {
			if !mcastPrefix(ref[g], cl.Process(i).McastDelivered(g)) {
				res.Consistent = false
			}
		}
	}
	if !crossOrderOK(ref, groups) {
		res.Consistent = false
	}

	res.Run = RunStats{Net: cl.NetStats()}
	var samples uint64
	var total time.Duration
	for _, g := range groups {
		for i := 0; i < cfg.Processes; i++ {
			vs := handles[g][i].VSStats()
			res.Run.Views += vs.ViewsInstalled
			res.Run.Retransmits += vs.Retransmits
			samples += vs.LatencySamples
			total += vs.LatencyTotal
		}
	}
	if samples > 0 {
		res.Run.AvgLatency = total / time.Duration(samples)
	}
	return res, nil
}

// mcastPrefix reports whether one multicast history is a prefix of the
// other (live harvests race delivery, so equality is too strong).
func mcastPrefix(a, b []dvs.McastDelivery) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// crossOrderOK checks the cross-group partial order over one process's
// histories: any two groups sharing two multicasts order them identically.
func crossOrderOK(hist map[types.GroupID][]dvs.McastDelivery, groups []types.GroupID) bool {
	for i, g := range groups {
		for _, h := range groups[i+1:] {
			pos := make(map[string]int, len(hist[g]))
			for k, d := range hist[g] {
				pos[d.ID] = k
			}
			last := -1
			for _, d := range hist[h] {
				if p, ok := pos[d.ID]; ok {
					if p < last {
						return false
					}
					last = p
				}
			}
		}
	}
	return true
}
