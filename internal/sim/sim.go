// Package sim drives the runtime stack through the experiment scenarios of
// EXPERIMENTS.md: membership churn (availability of dynamic versus static
// primaries), partition cascades (primary intersection chains), recovery
// after heal, steady-state throughput, and the registration ablation.
package sim

import (
	"fmt"
	"time"

	dvs "repro"
	netfab "repro/internal/net"
	"repro/internal/types"
)

// RunStats is the end-of-run transport and view-synchronous summary
// attached to every scenario result: cumulative fabric counters plus
// per-layer activity aggregated over all processes.
type RunStats struct {
	Net         netfab.Stats
	Views       uint64        // vsg views installed, summed over processes
	Retransmits uint64        // tick-driven retransmissions, summed
	AvgLatency  time.Duration // mean submit-to-deliver latency of own submissions
}

// String renders the summary as one compact report line.
func (r RunStats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d views=%d retransmits=%d avg_latency=%v",
		r.Net.Sent, r.Net.Delivered, r.Net.Dropped, r.Views, r.Retransmits, r.AvgLatency)
}

// harvestTrace returns the cluster's recorded protocol trace, or nil when
// recording was off. It closes the cluster first (Close is idempotent, so
// the scenario's deferred Close is unaffected): trace logs form the
// consistent cut the conformance replayer requires only once every node has
// stopped.
func harvestTrace(cl *dvs.Cluster, record bool) []dvs.TraceLog {
	if !record {
		return nil
	}
	cl.Close()
	return cl.TraceLogs()
}

// captureRunStats snapshots the cluster's counters; scenarios call it just
// before returning (while the cluster is still open).
func captureRunStats(cl *dvs.Cluster) RunStats {
	rs := RunStats{Net: cl.NetStats()}
	var samples uint64
	var total time.Duration
	for _, p := range cl.Processes() {
		vs := p.VSStats()
		rs.Views += vs.ViewsInstalled
		rs.Retransmits += vs.Retransmits
		samples += vs.LatencySamples
		total += vs.LatencyTotal
	}
	if samples > 0 {
		rs.AvgLatency = total / time.Duration(samples)
	}
	return rs
}

// CheckDeliverySequences verifies the TO service's end-to-end guarantee on
// observed delivery sequences: pairwise prefix consistency.
func CheckDeliverySequences(seqs [][]dvs.Delivery) error {
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			a, b := seqs[i], seqs[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					return fmt.Errorf("sequences %d and %d diverge at position %d: %v vs %v", i, j, k, a[k], b[k])
				}
			}
		}
	}
	return nil
}

// CheckPrimaryChain verifies the dynamic-primary intersection property on
// the set of primary views observed anywhere during a run: consecutive
// primaries in identifier order intersect (consecutive attempted views have
// no totally registered view strictly between them, so Invariant 4.1
// requires nonempty intersection).
func CheckPrimaryChain(views []dvs.View) error {
	byID := make(map[dvs.ViewID]dvs.View)
	for _, v := range views {
		if w, ok := byID[v.ID]; ok && !w.Members.Equal(v.Members) {
			return fmt.Errorf("two primaries share id %s: %s vs %s", v.ID, w.Members, v.Members)
		}
		byID[v.ID] = v
	}
	uniq := make([]dvs.View, 0, len(byID))
	for _, v := range byID {
		uniq = append(uniq, v)
	}
	types.SortViews(uniq)
	for i := 1; i < len(uniq); i++ {
		if !uniq[i-1].Members.Intersects(uniq[i].Members) {
			return fmt.Errorf("consecutive primaries %s and %s are disjoint", uniq[i-1], uniq[i])
		}
	}
	return nil
}

// Drain empties a process's delivery channel into out.
func Drain(p *dvs.Process, out *[]dvs.Delivery) {
	for {
		select {
		case d := <-p.Deliveries():
			*out = append(*out, d)
		default:
			return
		}
	}
}

// DrainViews empties a process's view-event channel into out.
func DrainViews(p *dvs.Process, out *[]dvs.ViewEvent) {
	for {
		select {
		case e := <-p.Views():
			*out = append(*out, e)
		default:
			return
		}
	}
}

// settle waits briefly for the stack to quiesce; scenarios use it between
// reconfigurations.
func settle(d time.Duration) { time.Sleep(d) }
