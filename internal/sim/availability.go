package sim

import (
	"fmt"
	"time"

	dvs "repro"
)

// AvailabilityConfig configures the churn availability experiment (E4): a
// group of Active processes with Spares standing by; every ChurnPeriod the
// oldest active member is retired and a spare takes its place. The question
// is for what fraction of samples an established primary covering only
// active members exists somewhere — the paper's motivating claim is that
// dynamic primaries track the drifting population while static majorities
// of the initial membership die once fewer than a majority of P0 remain.
type AvailabilityConfig struct {
	Active       int
	Spares       int
	Mode         dvs.Mode
	Replacements int           // how many churn steps to perform
	ChurnPeriod  time.Duration // time between replacements
	SamplePeriod time.Duration // availability sampling interval
	Seed         int64
	// Record enables protocol-trace recording (dynamic mode only); the
	// harvested logs land in AvailabilityResult.Trace.
	Record bool
	// Stream, when set, spills the run's protocol trace to the chunked
	// on-disk recorder instead of holding it in memory (dynamic mode only).
	Stream *dvs.TraceStream
}

func (c *AvailabilityConfig) fill() {
	if c.Active == 0 {
		c.Active = 6
	}
	if c.Mode == 0 {
		c.Mode = dvs.ModeDynamic
	}
	if c.Replacements == 0 {
		c.Replacements = c.Spares
	}
	if c.ChurnPeriod <= 0 {
		c.ChurnPeriod = 120 * time.Millisecond
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 10 * time.Millisecond
	}
}

// AvailabilityResult summarizes one availability run.
type AvailabilityResult struct {
	Mode           dvs.Mode
	Samples        int
	Available      int
	Replacements   int
	PrimariesSeen  int
	FinalAvailable bool // primary exists after the last replacement settles
	Run            RunStats
	Trace          []dvs.TraceLog // recorded protocol trace (Config.Record)
}

// Fraction is the availability fraction.
func (r AvailabilityResult) Fraction() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Available) / float64(r.Samples)
}

// String renders one result row.
func (r AvailabilityResult) String() string {
	return fmt.Sprintf("mode=%-7s replacements=%-2d availability=%.2f final=%v primaries=%d",
		r.Mode, r.Replacements, r.Fraction(), r.FinalAvailable, r.PrimariesSeen)
}

// Availability runs the churn scenario and reports availability.
func Availability(cfg AvailabilityConfig) (AvailabilityResult, error) {
	cfg.fill()
	total := cfg.Active + cfg.Spares
	initial := make([]int, cfg.Active)
	active := make([]int, cfg.Active)
	for i := range initial {
		initial[i] = i
		active[i] = i
	}
	cl, err := dvs.NewCluster(dvs.Config{
		Processes: total,
		Initial:   initial,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		Record:    cfg.Record,
		Stream:    cfg.Stream,
	})
	if err != nil {
		return AvailabilityResult{}, err
	}
	defer cl.Close()
	// Spares start isolated: each in its own component.
	cl.Partition(active)

	res := AvailabilityResult{Mode: cfg.Mode, Replacements: cfg.Replacements}
	primaries := make(map[dvs.ViewID]struct{})

	sample := func() {
		res.Samples++
		if available(cl, active, primaries) {
			res.Available++
		}
	}

	settle(2 * cfg.ChurnPeriod) // let the initial configuration stabilize
	nextSpare := cfg.Active
	for step := 0; step < cfg.Replacements; step++ {
		deadline := time.Now().Add(cfg.ChurnPeriod)
		for time.Now().Before(deadline) {
			sample()
			time.Sleep(cfg.SamplePeriod)
		}
		if nextSpare >= total {
			break
		}
		// Retire the oldest active member, admit the next spare.
		active = append(active[1:], nextSpare)
		nextSpare++
		cl.Partition(active)
	}
	deadline := time.Now().Add(2 * cfg.ChurnPeriod)
	for time.Now().Before(deadline) {
		sample()
		time.Sleep(cfg.SamplePeriod)
	}
	res.FinalAvailable = available(cl, active, primaries)
	res.PrimariesSeen = len(primaries)
	res.Run = captureRunStats(cl)
	res.Trace = harvestTrace(cl, cfg.Record)
	return res, nil
}

// available reports whether some active process has an established primary
// consisting solely of active processes, and records the primaries seen.
func available(cl *dvs.Cluster, active []int, primaries map[dvs.ViewID]struct{}) bool {
	activeSet := make(map[int]bool, len(active))
	for _, i := range active {
		activeSet[i] = true
	}
	ok := false
	for _, i := range active {
		p := cl.Process(i)
		v, has := p.CurrentPrimary()
		if !has || !p.Established() {
			continue
		}
		inActive := true
		for m := range v.Members {
			if !activeSet[int(m)] {
				inActive = false
				break
			}
		}
		if inActive {
			primaries[v.ID] = struct{}{}
			ok = true
		}
	}
	return ok
}
