package sim

import (
	"testing"
	"time"

	dvs "repro"
)

func TestAvailabilityDynamicVsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scenario")
	}
	dyn, err := Availability(AvailabilityConfig{
		Active: 5, Spares: 5, Mode: dvs.ModeDynamic,
		Replacements: 5, ChurnPeriod: 150 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Availability(AvailabilityConfig{
		Active: 5, Spares: 5, Mode: dvs.ModeStatic,
		Replacements: 5, ChurnPeriod: 150 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dynamic: %s", dyn)
	t.Logf("static : %s", st)
	if !dyn.FinalAvailable {
		t.Errorf("dynamic primaries should survive full membership replacement")
	}
	if st.FinalAvailable {
		t.Errorf("static primaries should die after majority of P0 retired")
	}
	if dyn.Fraction() <= st.Fraction() {
		t.Errorf("dynamic availability %.2f should exceed static %.2f", dyn.Fraction(), st.Fraction())
	}
}
