package sim

import (
	"testing"

	dvs "repro"
	"repro/internal/types"
)

func TestCheckDeliverySequences(t *testing.T) {
	d := func(p string, o int) dvs.Delivery {
		return dvs.Delivery{Payload: p, Origin: dvs.ProcID(o)}
	}
	ok := [][]dvs.Delivery{
		{d("a", 0), d("b", 1)},
		{d("a", 0)},
		{},
		{d("a", 0), d("b", 1)},
	}
	if err := CheckDeliverySequences(ok); err != nil {
		t.Errorf("prefix-consistent sequences rejected: %v", err)
	}
	bad := [][]dvs.Delivery{
		{d("a", 0), d("b", 1)},
		{d("a", 0), d("c", 2)},
	}
	if err := CheckDeliverySequences(bad); err == nil {
		t.Error("diverging sequences accepted")
	}
	// Same payload, different origin: also a divergence.
	bad2 := [][]dvs.Delivery{
		{d("a", 0)},
		{d("a", 1)},
	}
	if err := CheckDeliverySequences(bad2); err == nil {
		t.Error("origin mismatch accepted")
	}
}

func TestCheckPrimaryChain(t *testing.T) {
	v := func(seq uint64, members ...types.ProcID) dvs.View {
		return types.NewView(types.ViewID{Seq: seq}, members...)
	}
	if err := CheckPrimaryChain([]dvs.View{
		v(0, 0, 1, 2), v(1, 1, 2), v(2, 2, 3),
	}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if err := CheckPrimaryChain([]dvs.View{
		v(0, 0, 1), v(1, 2, 3),
	}); err == nil {
		t.Error("disjoint consecutive primaries accepted")
	}
	// Duplicate observations of the same view are fine…
	if err := CheckPrimaryChain([]dvs.View{
		v(0, 0, 1), v(0, 0, 1), v(1, 1, 2),
	}); err != nil {
		t.Errorf("duplicate observations rejected: %v", err)
	}
	// …but two different memberships under one id are not.
	if err := CheckPrimaryChain([]dvs.View{
		v(0, 0, 1), v(0, 2, 3),
	}); err == nil {
		t.Error("conflicting memberships for one id accepted")
	}
	if err := CheckPrimaryChain(nil); err != nil {
		t.Error("empty chain rejected")
	}
}

func TestAvailabilityResultHelpers(t *testing.T) {
	r := AvailabilityResult{Samples: 10, Available: 7, Mode: dvs.ModeDynamic}
	if r.Fraction() != 0.7 {
		t.Errorf("Fraction = %v", r.Fraction())
	}
	if (AvailabilityResult{}).Fraction() != 0 {
		t.Error("zero samples should give zero fraction")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestThroughputResultHelpers(t *testing.T) {
	r := ThroughputResult{Delivered: 100}
	if r.PerSecond() != 0 {
		t.Error("zero elapsed should give zero rate")
	}
}
