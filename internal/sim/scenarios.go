package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	dvs "repro"
)

// CascadeConfig configures the partition-cascade experiment (E5): a random
// sequence of partitions and merges, recording every primary view observed
// anywhere and checking the intersection chain at the end.
type CascadeConfig struct {
	Processes   int
	Mode        dvs.Mode
	Rounds      int
	RoundPeriod time.Duration
	Seed        int64
	Record      bool             // record protocol traces (dynamic mode only)
	Stream      *dvs.TraceStream // stream the trace to disk (dynamic mode only)
}

func (c *CascadeConfig) fill() {
	if c.Processes == 0 {
		c.Processes = 6
	}
	if c.Mode == 0 {
		c.Mode = dvs.ModeDynamic
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 150 * time.Millisecond
	}
}

// CascadeResult summarizes a partition cascade.
type CascadeResult struct {
	Rounds    int
	Primaries []dvs.View // unique primaries, in id order
	ChainOK   bool
	Run       RunStats
	Trace     []dvs.TraceLog // recorded protocol trace (Config.Record)
}

// String renders one result row.
func (r CascadeResult) String() string {
	return fmt.Sprintf("rounds=%-2d primaries=%-2d chain-intersection=%v", r.Rounds, len(r.Primaries), r.ChainOK)
}

// PartitionCascade runs the scenario.
func PartitionCascade(cfg CascadeConfig) (CascadeResult, error) {
	cfg.fill()
	cl, err := dvs.NewCluster(dvs.Config{Processes: cfg.Processes, Mode: cfg.Mode, Seed: cfg.Seed, Record: cfg.Record, Stream: cfg.Stream})
	if err != nil {
		return CascadeResult{}, err
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var events []dvs.ViewEvent
	harvest := func() {
		for _, p := range cl.Processes() {
			DrainViews(p, &events)
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		if rng.Intn(3) == 0 {
			cl.Heal()
		} else {
			// Split off a strict minority so the majority side can keep
			// satisfying the dynamic intersection condition; a 50/50 split
			// correctly yields no primary on either side.
			k := 1 + rng.Intn((cfg.Processes-1)/2)
			perm := rng.Perm(cfg.Processes)
			minority := perm[:k]
			majority := perm[k:]
			cl.Partition(majority, minority)
		}
		settle(cfg.RoundPeriod)
		harvest()
	}
	cl.Heal()
	settle(2 * cfg.RoundPeriod)
	harvest()

	seen := make(map[dvs.ViewID]dvs.View)
	for _, e := range events {
		seen[e.View.ID] = e.View
	}
	res := CascadeResult{Rounds: cfg.Rounds}
	for _, v := range seen {
		res.Primaries = append(res.Primaries, v)
	}
	err = CheckPrimaryChain(res.Primaries)
	res.ChainOK = err == nil
	sortViews(res.Primaries)
	res.Run = captureRunStats(cl)
	res.Trace = harvestTrace(cl, cfg.Record)
	return res, err
}

func sortViews(vs []dvs.View) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].ID.Less(vs[j-1].ID); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// ThroughputConfig configures the steady-state throughput experiment (E8a).
type ThroughputConfig struct {
	Processes int
	Senders   int
	Duration  time.Duration
	Seed      int64
	Record    bool                   // record protocol traces
	Stream    *dvs.TraceStream       // stream the trace to disk
	Online    *dvs.OnlineCheckConfig // run the in-process sampled checker (E13)
}

func (c *ThroughputConfig) fill() {
	if c.Processes == 0 {
		c.Processes = 5
	}
	if c.Senders == 0 {
		c.Senders = c.Processes
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
}

// ThroughputResult summarizes a throughput run.
type ThroughputResult struct {
	Processes  int
	Senders    int
	Broadcast  int
	Delivered  int // deliveries observed at process 0
	Elapsed    time.Duration
	Consistent bool
	Run        RunStats
	Trace      []dvs.TraceLog       // recorded protocol trace (Config.Record)
	Check      dvs.OnlineCheckStats // summed checker counters (Config.Online)
}

// PerSecond is the delivery rate observed at one process.
func (r ThroughputResult) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Delivered) / r.Elapsed.Seconds()
}

// String renders one result row.
func (r ThroughputResult) String() string {
	return fmt.Sprintf("n=%-2d senders=%-2d delivered=%-6d rate=%.0f msg/s consistent=%v",
		r.Processes, r.Senders, r.Delivered, r.PerSecond(), r.Consistent)
}

// Throughput pumps broadcasts through a stable view and measures the
// totally-ordered delivery rate, verifying cross-process consistency.
func Throughput(cfg ThroughputConfig) (ThroughputResult, error) {
	cfg.fill()
	cl, err := dvs.NewCluster(dvs.Config{Processes: cfg.Processes, Seed: cfg.Seed, Record: cfg.Record, Stream: cfg.Stream, Online: cfg.Online})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer cl.Close()
	settle(50 * time.Millisecond)

	res := ThroughputResult{Processes: cfg.Processes, Senders: cfg.Senders}
	delivered := make([][]dvs.Delivery, cfg.Processes)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	const window = 256 // outstanding broadcasts before the pump backs off
	i := 0
	for time.Now().Before(deadline) {
		for j := 0; j < cfg.Processes; j++ {
			Drain(cl.Process(j), &delivered[j])
		}
		if res.Broadcast-len(delivered[0]) >= window {
			time.Sleep(time.Millisecond)
			continue
		}
		p := cl.Process(i % cfg.Senders)
		if p.Broadcast("m" + strconv.Itoa(i)) {
			res.Broadcast++
		}
		i++
	}
	// Allow in-flight messages to finish.
	flushDeadline := time.Now().Add(time.Second)
	for time.Now().Before(flushDeadline) {
		for j := 0; j < cfg.Processes; j++ {
			Drain(cl.Process(j), &delivered[j])
		}
		if len(delivered[0]) >= res.Broadcast {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Elapsed = time.Since(start)
	res.Delivered = len(delivered[0])
	res.Consistent = CheckDeliverySequences(delivered) == nil
	res.Run = captureRunStats(cl)
	res.Trace = harvestTrace(cl, cfg.Record)
	if cfg.Online != nil {
		for _, p := range cl.Processes() {
			cs := p.CheckStats()
			res.Check.Steps += cs.Steps
			res.Check.Checks += cs.Checks
			res.Check.StepsChecked += cs.StepsChecked
			res.Check.Divergences += cs.Divergences
			res.Check.Violations += cs.Violations
			res.Check.CheckNanos += cs.CheckNanos
			if cs.MaxCheckNanos > res.Check.MaxCheckNanos {
				res.Check.MaxCheckNanos = cs.MaxCheckNanos
			}
			if res.Check.LastError == "" {
				res.Check.LastError = cs.LastError
			}
		}
	}
	return res, nil
}

// RecoveryConfig configures the heal-recovery experiment (E8b).
type RecoveryConfig struct {
	Processes int
	Seed      int64
	Timeout   time.Duration
	Record    bool             // record protocol traces
	Stream    *dvs.TraceStream // stream the trace to disk
}

// RecoveryResult summarizes a recovery run.
type RecoveryResult struct {
	Processes      int
	TimeToPrimary  time.Duration // heal -> every process established a full-group primary
	TimeToMessage  time.Duration // heal -> first post-heal broadcast delivered everywhere
	ExtraMessages  uint64        // fabric messages consumed by the recovery
	RecoveredOK    bool
	ConsistencyErr string
	Run            RunStats
	Trace          []dvs.TraceLog // recorded protocol trace (Config.Record)
}

// String renders one result row.
func (r RecoveryResult) String() string {
	return fmt.Sprintf("n=%-2d t(primary)=%-12v t(message)=%-12v msgs=%-5d ok=%v",
		r.Processes, r.TimeToPrimary, r.TimeToMessage, r.ExtraMessages, r.RecoveredOK)
}

// Recovery partitions a stable cluster, lets both sides settle, heals, and
// measures how long the stack takes to form and establish the merged
// primary and to deliver the first post-heal message to every process.
func Recovery(cfg RecoveryConfig) (RecoveryResult, error) {
	if cfg.Processes == 0 {
		cfg.Processes = 5
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	cl, err := dvs.NewCluster(dvs.Config{Processes: cfg.Processes, Seed: cfg.Seed, Record: cfg.Record, Stream: cfg.Stream})
	if err != nil {
		return RecoveryResult{}, err
	}
	defer cl.Close()
	settle(50 * time.Millisecond)

	maj := make([]int, 0, cfg.Processes/2+1)
	min := make([]int, 0)
	for i := 0; i < cfg.Processes; i++ {
		if i <= cfg.Processes/2 {
			maj = append(maj, i)
		} else {
			min = append(min, i)
		}
	}
	cl.Partition(maj, min)
	settle(150 * time.Millisecond)
	cl.Process(maj[0]).Broadcast("pre-heal")
	settle(100 * time.Millisecond)

	res := RecoveryResult{Processes: cfg.Processes}
	before := cl.NetStats()
	healAt := time.Now()
	cl.Heal()

	deadline := healAt.Add(cfg.Timeout)
	for time.Now().Before(deadline) {
		if allEstablishedFull(cl, cfg.Processes) {
			res.TimeToPrimary = time.Since(healAt)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.TimeToPrimary == 0 {
		return res, fmt.Errorf("recovery: no merged primary within %v", cfg.Timeout)
	}

	cl.Process(min[0]).Broadcast("post-heal")
	delivered := make([][]dvs.Delivery, cfg.Processes)
	for time.Now().Before(deadline) {
		all := true
		for j := 0; j < cfg.Processes; j++ {
			Drain(cl.Process(j), &delivered[j])
			found := false
			for _, d := range delivered[j] {
				if d.Payload == "post-heal" {
					found = true
					break
				}
			}
			if !found {
				all = false
			}
		}
		if all {
			res.TimeToMessage = time.Since(healAt)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.TimeToMessage == 0 {
		return res, fmt.Errorf("recovery: post-heal message not delivered within %v", cfg.Timeout)
	}
	res.ExtraMessages = cl.NetStats().Delivered - before.Delivered
	res.Run = captureRunStats(cl)
	res.Trace = harvestTrace(cl, cfg.Record)
	if err := CheckDeliverySequences(delivered); err != nil {
		res.ConsistencyErr = err.Error()
		return res, err
	}
	res.RecoveredOK = true
	return res, nil
}

func allEstablishedFull(cl *dvs.Cluster, n int) bool {
	for i := 0; i < n; i++ {
		p := cl.Process(i)
		v, ok := p.CurrentPrimary()
		if !ok || v.Members.Len() != n || !p.Established() {
			return false
		}
	}
	return true
}

// AblationConfig configures the registration ablation (E6).
type AblationConfig struct {
	Processes   int
	Rounds      int
	RoundPeriod time.Duration
	DisableReg  bool
	Seed        int64
	Record      bool             // record protocol traces
	Stream      *dvs.TraceStream // stream the trace to disk
}

// AblationResult summarizes the registration ablation.
type AblationResult struct {
	DisabledRegistration bool
	MaxAmbiguous         int
	GCs                  uint64
	Primaries            uint64
	Run                  RunStats
	Trace                []dvs.TraceLog // recorded protocol trace (Config.Record)
}

// String renders one result row.
func (r AblationResult) String() string {
	return fmt.Sprintf("registration=%-5v maxAmb=%-3d gcs=%-4d primaries=%d",
		!r.DisabledRegistration, r.MaxAmbiguous, r.GCs, r.Primaries)
}

// RegisterAblation alternates partitions to force repeated primary changes
// and reports how large the ambiguous-view sets grow with and without the
// paper's REGISTER mechanism.
func RegisterAblation(cfg AblationConfig) (AblationResult, error) {
	if cfg.Processes == 0 {
		cfg.Processes = 6
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 6
	}
	if cfg.RoundPeriod <= 0 {
		cfg.RoundPeriod = 150 * time.Millisecond
	}
	cl, err := dvs.NewCluster(dvs.Config{
		Processes:           cfg.Processes,
		Seed:                cfg.Seed,
		DisableRegistration: cfg.DisableReg,
		Record:              cfg.Record,
		Stream:              cfg.Stream,
	})
	if err != nil {
		return AblationResult{}, err
	}
	defer cl.Close()
	settle(50 * time.Millisecond)

	res := AblationResult{DisabledRegistration: cfg.DisableReg}
	for round := 0; round < cfg.Rounds; round++ {
		// Alternate: drop one member, then re-admit it.
		out := round % cfg.Processes
		var in []int
		for i := 0; i < cfg.Processes; i++ {
			if i != out {
				in = append(in, i)
			}
		}
		cl.Partition(in)
		settle(cfg.RoundPeriod)
		cl.Heal()
		settle(cfg.RoundPeriod)
		for i := 0; i < cfg.Processes; i++ {
			if amb := cl.Process(i).AmbiguousViews(); amb > res.MaxAmbiguous {
				res.MaxAmbiguous = amb
			}
		}
	}
	for i := 0; i < cfg.Processes; i++ {
		_, ds := cl.Process(i).Stats()
		res.GCs += ds.GCs
		res.Primaries += ds.Primaries
		if ds.MaxAmb > res.MaxAmbiguous {
			res.MaxAmbiguous = ds.MaxAmb
		}
	}
	res.Run = captureRunStats(cl)
	res.Trace = harvestTrace(cl, cfg.Record)
	return res, nil
}
