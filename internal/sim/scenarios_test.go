package sim

import (
	"testing"
	"time"
)

func TestPartitionCascade(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scenario")
	}
	res, err := PartitionCascade(CascadeConfig{Processes: 6, Rounds: 6, Seed: 3})
	if err != nil {
		t.Fatalf("%v (result %s)", err, res)
	}
	t.Logf("%s primaries=%v", res, res.Primaries)
	if len(res.Primaries) < 2 {
		t.Errorf("cascade should have formed several primaries, got %d", len(res.Primaries))
	}
}

func TestThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scenario")
	}
	res, err := Throughput(ThroughputConfig{Processes: 4, Duration: 300 * time.Millisecond, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Consistent {
		t.Error("delivery sequences inconsistent")
	}
	if res.Delivered == 0 {
		t.Error("no deliveries")
	}
}

func TestRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scenario")
	}
	res, err := Recovery(RecoveryConfig{Processes: 5, Seed: 5})
	if err != nil {
		t.Fatalf("%v (result %s)", err, res)
	}
	t.Log(res)
}

func TestRegisterAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scenario")
	}
	with, err := RegisterAblation(AblationConfig{Processes: 5, Rounds: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RegisterAblation(AblationConfig{Processes: 5, Rounds: 4, Seed: 6, DisableReg: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with   : %s", with)
	t.Logf("without: %s", without)
	if with.GCs == 0 {
		t.Error("registration should enable garbage collection")
	}
	if without.GCs != 0 {
		t.Error("without registration there should be no garbage collection")
	}
	if without.MaxAmbiguous < with.MaxAmbiguous {
		t.Errorf("ambiguity should not shrink when registration is disabled: with=%d without=%d", with.MaxAmbiguous, without.MaxAmbiguous)
	}
}
