package dvscore

import (
	"testing"

	"repro/internal/types"
)

func v(seq uint64, members ...types.ProcID) types.View {
	return types.NewView(types.ViewID{Seq: seq}, members...)
}

func newTestNode(t *testing.T) (*Node, types.View) {
	t.Helper()
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	return NewNode(0, v0, true), v0
}

func TestNodeInitialState(t *testing.T) {
	n, v0 := newTestNode(t)
	if cur, ok := n.Cur(); !ok || !cur.Equal(v0) {
		t.Error("cur must start at v0 for members of P0")
	}
	if cc, ok := n.ClientCur(); !ok || !cc.Equal(v0) {
		t.Error("client-cur must start at v0")
	}
	if !n.Act().Equal(v0) {
		t.Error("act must start at v0")
	}
	if !n.Reg(v0.ID) {
		t.Error("reg[g0] must start true for members")
	}
	outsider := NewNode(4, v0, false)
	if _, ok := outsider.Cur(); ok {
		t.Error("non-member must start at ⊥")
	}
	if !outsider.Act().Equal(v0) {
		t.Error("act starts at v0 even for non-members")
	}
	if outsider.Reg(v0.ID) {
		t.Error("non-member must not start registered")
	}
}

func TestOnVSNewViewSendsInfo(t *testing.T) {
	n, _ := newTestNode(t)
	v1 := v(1, 0, 1)
	n.OnVSNewView(v1)
	if cur, _ := n.Cur(); !cur.Equal(v1) {
		t.Error("cur not updated")
	}
	m, ok := n.VSGpSndHead()
	if !ok {
		t.Fatal("info message not enqueued")
	}
	info, isInfo := m.(InfoMsg)
	if !isInfo {
		t.Fatalf("head is %T", m)
	}
	if !info.Act.ID.IsZero() || len(info.Amb) != 0 {
		t.Errorf("info = %v", info)
	}
	if _, ok := n.InfoSent(v1.ID); !ok {
		t.Error("info-sent not recorded")
	}
}

func TestDVSNewViewRequiresAllInfos(t *testing.T) {
	n, _ := newTestNode(t)
	v1 := v(1, 0, 1)
	n.OnVSNewView(v1)
	if _, ok := n.DVSNewViewEnabled(); ok {
		t.Fatal("enabled before info from 1")
	}
	n.OnVSGpRcv(NewInfoMsg(types.InitialView(types.NewProcSet(0, 1, 2)), nil), 1)
	cand, ok := n.DVSNewViewEnabled()
	if !ok || !cand.Equal(v1) {
		t.Fatal("should be enabled after all infos (majority of v0 holds: {0,1} ∩ {0,1,2} = 2 > 1.5)")
	}
	if err := n.PerformDVSNewView(cand); err != nil {
		t.Fatal(err)
	}
	if cc, _ := n.ClientCur(); !cc.Equal(v1) {
		t.Error("client-cur not advanced")
	}
	if !n.HasAttempted(v1.ID) {
		t.Error("attempted not recorded")
	}
}

func TestDVSNewViewMajorityCheckRejects(t *testing.T) {
	n, _ := newTestNode(t)
	v1 := v(1, 0) // singleton: |{0} ∩ {0,1,2}| = 1, not > 1.5
	n.OnVSNewView(v1)
	// No other members, so the info condition is vacuous; the majority
	// check must reject.
	if _, ok := n.DVSNewViewEnabled(); ok {
		t.Error("minority view accepted as primary")
	}
}

func TestInfoUpdatesActAndAmb(t *testing.T) {
	n, _ := newTestNode(t)
	v1 := v(1, 0, 1)
	v2 := v(2, 0, 1, 2)
	n.OnVSNewView(v2)
	// Peer reports act = v1 (higher than our v0) and an ambiguous view.
	amb := v(3, 1, 2) // note: id 3 > act id 1
	n.OnVSGpRcv(NewInfoMsg(v1, []types.View{amb}), 1)
	if !n.Act().Equal(v1) {
		t.Errorf("act = %s, want %s", n.Act(), v1)
	}
	got := n.Amb()
	if len(got) != 1 || !got[0].Equal(amb) {
		t.Errorf("amb = %v", got)
	}
	// A later info with act above the ambiguous view must filter it out.
	v4 := v(4, 1, 2)
	n.OnVSGpRcv(NewInfoMsg(v4, nil), 2)
	if !n.Act().Equal(v4) || len(n.Amb()) != 0 {
		t.Errorf("act=%s amb=%v after higher act", n.Act(), n.Amb())
	}
}

func TestRegisterSendsRegisteredMsg(t *testing.T) {
	n, v0 := newTestNode(t)
	n.OnDVSRegister()
	if !n.Reg(v0.ID) {
		t.Error("reg not set")
	}
	m, ok := n.VSGpSndHead()
	if !ok {
		t.Fatal("registered message not enqueued")
	}
	if _, isReg := m.(RegisteredMsg); !isReg {
		t.Fatalf("head is %T", m)
	}
}

func TestGarbageCollection(t *testing.T) {
	n, _ := newTestNode(t)
	v1 := v(1, 0, 1)
	n.OnVSNewView(v1)
	n.OnVSGpRcv(NewInfoMsg(types.InitialView(types.NewProcSet(0, 1, 2)), nil), 1)
	if err := n.PerformDVSNewView(v1); err != nil {
		t.Fatal(err)
	}
	if len(n.GCCandidates()) != 0 {
		t.Fatal("GC enabled without registered messages")
	}
	// Registered messages from both members of v1, received in view v1.
	n.OnVSGpRcv(RegisteredMsg{}, 0)
	n.OnVSGpRcv(RegisteredMsg{}, 1)
	cands := n.GCCandidates()
	if len(cands) != 1 || !cands[0].Equal(v1) {
		t.Fatalf("GC candidates = %v", cands)
	}
	if err := n.PerformGC(v1); err != nil {
		t.Fatal(err)
	}
	if !n.Act().Equal(v1) {
		t.Error("act not advanced by GC")
	}
	if len(n.Amb()) != 0 {
		t.Error("amb not filtered by GC")
	}
	// GC of the same view again: no longer enabled (act.id not < v.id).
	if err := n.PerformGC(v1); err == nil {
		t.Error("repeated GC accepted")
	}
}

func TestClientMessageBuffering(t *testing.T) {
	n, _ := newTestNode(t)
	m := types.ClientMsg("x")
	n.OnDVSGpSnd(m)
	head, ok := n.VSGpSndHead()
	if !ok || head.MsgKey() != m.MsgKey() {
		t.Fatal("client message not queued for vs")
	}
	if err := n.TakeVSGpSndHead(m); err != nil {
		t.Fatal(err)
	}
	// Receive a client message and a safe indication from VS.
	n.OnVSGpRcv(m, 1)
	n.OnVSSafe(m, 1)
	if e, ok := n.DVSGpRcvHead(); !ok || e.Q != 1 {
		t.Fatal("delivery not buffered")
	}
	if e, ok := n.DVSSafeHead(); !ok || e.Q != 1 {
		t.Fatal("safe not buffered")
	}
	if err := n.TakeDVSGpRcvHead(MsgFrom{M: m, Q: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.TakeDVSSafeHead(MsgFrom{M: m, Q: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.DVSGpRcvHead(); ok {
		t.Error("buffer should be empty")
	}
}

func TestBufferedDeliveriesFollowClientView(t *testing.T) {
	n, _ := newTestNode(t)
	m := types.ClientMsg("old")
	// VS delivers m in v0, then the node's VS view moves to v1 before the
	// client attempts it: the old buffered delivery stays available while
	// client-cur is still v0.
	n.OnVSGpRcv(m, 1)
	v1 := v(1, 0, 1)
	n.OnVSNewView(v1)
	if _, ok := n.DVSGpRcvHead(); !ok {
		t.Fatal("old-view delivery must remain available while client-cur = v0")
	}
	// Attempt v1: deliveries for v0 become unreachable (client moved on).
	n.OnVSGpRcv(NewInfoMsg(types.InitialView(types.NewProcSet(0, 1, 2)), nil), 1)
	if err := n.PerformDVSNewView(v1); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.DVSGpRcvHead(); ok {
		t.Error("deliveries of an abandoned view must not surface in the new view")
	}
}

func TestNodeCloneDeep(t *testing.T) {
	n, _ := newTestNode(t)
	n.OnDVSGpSnd(types.ClientMsg("x"))
	c := n.Clone()
	if err := c.TakeVSGpSndHead(types.ClientMsg("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.VSGpSndHead(); !ok {
		t.Error("clone mutation leaked")
	}
}

func TestPurge(t *testing.T) {
	msgs := []types.Msg{
		types.ClientMsg("a"),
		NewInfoMsg(v(1, 0), nil),
		RegisteredMsg{},
		types.ClientMsg("b"),
	}
	out := Purge(msgs)
	if len(out) != 2 || out[0].MsgKey() != "c:a" || out[1].MsgKey() != "c:b" {
		t.Errorf("Purge = %v", out)
	}
	if PurgeSize(msgs) != 2 {
		t.Errorf("PurgeSize = %d", PurgeSize(msgs))
	}
}

func TestInfoMsgKeyCanonical(t *testing.T) {
	a := NewInfoMsg(v(1, 0, 1), []types.View{v(3, 1), v(2, 0)})
	b := NewInfoMsg(v(1, 0, 1), []types.View{v(2, 0), v(3, 1)})
	if a.MsgKey() != b.MsgKey() {
		t.Error("info key must not depend on amb order")
	}
}
