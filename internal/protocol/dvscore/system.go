package dvscore

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// This file mechanizes Invariants 5.1–5.6 of the paper as executable checks
// over a collection of VS-TO-DVS_p states. The formulas are written once,
// against System, and shared by both consumers: the exhaustive checker
// (internal/core wraps them as ioa invariants over reachable DVS-IMPL
// states) and the trace-conformance replayer (internal/conform evaluates
// them on the global cut reconstructed from runtime event logs).
//
// A note on Invariants 5.2.3 and 5.3.1: the paper's printed statements are
// slightly stronger than what the algorithm maintains.
//
//   - 5.2.3 as printed says every view in use_p = {act_p} ∪ amb_p has id
//     ≤ client-cur.id_p. But p updates act/amb upon *receiving* info
//     messages in its VS-current view cur_p, which may run ahead of
//     client-cur_p; p can therefore learn of views attempted by others with
//     ids strictly between client-cur.id_p and cur.id_p. The property the
//     proofs actually use at dvs-newview(v)_p steps is w.id < v.id = cur.id,
//     which follows from the amended bound w.id ≤ cur.id_p together with
//     Invariant 5.2.6 (info contents have ids < the view they were sent in).
//     CheckInvariant52Part3Literal checks the printed bound; CheckInvariant52
//     checks the amended bound. Tests demonstrate the printed bound is
//     violated on reachable states while the amended one holds.
//
//   - 5.3.1 as printed omits the premise w.id < g: after p attempts the view
//     v with v.id = g itself, v ∈ attempted_p but v is (correctly) not in
//     the info p sent for g. We check 5.3.1 with the w.id < g premise, which
//     is exactly the instance the proof of Invariant 5.4 uses.

// System is a global cut of the DVS implementation: one VS-TO-DVS_p state
// per process plus the set of views known to exist. The exhaustive checker
// populates Created with the VS specification's created set; the runtime
// replayer, which has no VS oracle, leaves Created nil and the formulas fall
// back to the views recoverable from the node states themselves (the union
// of the attempted sets for the derived variables, and each node's own
// info-sent/info-rcvd keys for the per-view quantifications — every such
// view is VS-created in any real execution, so the fallback checks the same
// instances).
type System struct {
	Procs   []types.ProcID
	Nodes   map[types.ProcID]*Node
	Created []types.View // shared, sorted by id; nil ⇒ derive from node states
}

// createdShared returns the view universe the derived variables Att and
// TotReg range over: Created when supplied, else ∪_p attempted_p.
func (s System) createdShared() []types.View {
	if s.Created != nil {
		return s.Created
	}
	byID := make(map[types.ViewID]types.View)
	for _, p := range s.Procs {
		for _, v := range s.Nodes[p].attempted {
			byID[v.ID] = v
		}
	}
	out := make([]types.View, 0, len(byID))
	for _, v := range byID {
		out = append(out, v)
	}
	types.SortViews(out)
	return out
}

// AttShared returns {v ∈ created | ∃p ∈ v.set: v ∈ attempted_p}, sorted by
// id, sharing memberships (read-only).
func (s System) AttShared() []types.View {
	var out []types.View
	for _, v := range s.createdShared() {
		for p := range v.Members {
			if _, ok := s.Nodes[p].attempted[v.ID]; ok {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// TotRegShared returns {v ∈ created | ∀p ∈ v.set: reg[v.id]_p}, sorted by
// id, sharing memberships (read-only).
func (s System) TotRegShared() []types.View {
	var out []types.View
	for _, v := range s.createdShared() {
		all := true
		for p := range v.Members {
			if !s.Nodes[p].reg[v.ID] {
				all = false
				break
			}
		}
		if all {
			out = append(out, v)
		}
	}
	return out
}

// TotRegIDs returns the ids of the totally registered views, sorted.
func (s System) TotRegIDs() []types.ViewID {
	tot := s.TotRegShared()
	out := make([]types.ViewID, len(tot))
	for i, v := range tot {
		out[i] = v.ID
	}
	return out
}

// infoViewIDs returns the ids the per-view quantifications of 5.2(4,5,6) and
// 5.3 range over at node n: the Created ids when supplied, else the keys of
// n's own info-sent and info-rcvd maps, sorted.
func (s System) infoViewIDs(n *Node) []types.ViewID {
	if s.Created != nil {
		out := make([]types.ViewID, len(s.Created))
		for i, v := range s.Created {
			out[i] = v.ID
		}
		return out
	}
	seen := make(map[types.ViewID]struct{}, len(n.infoSent))
	for g := range n.infoSent {
		seen[g] = struct{}{}
	}
	for k := range n.infoRcvd {
		seen[k.G] = struct{}{}
	}
	out := make([]types.ViewID, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// hasIDBetween reports whether the sorted id list has an element strictly
// between lo and hi.
func hasIDBetween(ids []types.ViewID, lo, hi types.ViewID) bool {
	for _, x := range ids {
		if !lo.Less(x) {
			continue
		}
		return x.Less(hi)
	}
	return false
}

// CheckInvariant51 checks Invariant 5.1: if v ∈ attempted_p and q ∈ v.set
// then cur.id_q ≥ v.id.
func (s System) CheckInvariant51() error {
	for _, p := range s.Procs {
		for _, v := range s.Nodes[p].attempted {
			for q := range v.Members {
				nq := s.Nodes[q]
				if !nq.curOK || nq.cur.ID.Less(v.ID) {
					return fmt.Errorf("p=%s attempted %s but cur_%s < v.id", p, v, q)
				}
			}
		}
	}
	return nil
}

// CheckInvariant52 checks parts 1, 2, 4, 5, 6 of Invariant 5.2 as printed,
// and part 3 in the amended form w ∈ use_p ⇒ w.id ≤ cur.id_p.
func (s System) CheckInvariant52() error {
	totIDs := s.TotRegIDs()
	totReg := make(map[types.ViewID]struct{}, len(totIDs))
	for _, id := range totIDs {
		totReg[id] = struct{}{}
	}
	for _, p := range s.Procs {
		n := s.Nodes[p]
		act := n.act
		// (1) act_p ∈ TotReg.
		if _, ok := totReg[act.ID]; !ok {
			return fmt.Errorf("5.2(1): act_%s = %s not totally registered", p, act)
		}
		// (2) w ∈ amb_p ⇒ act.id_p < w.id.
		for _, w := range n.amb {
			if !act.ID.Less(w.ID) {
				return fmt.Errorf("5.2(2): amb_%s contains %s with id ≤ act.id %s", p, w, act.ID)
			}
		}
		// (3 amended) w ∈ use_p = {act} ∪ amb ⇒ w.id ≤ cur.id_p (when
		// cur ≠ ⊥; when cur = ⊥, use_p = {v0}).
		if n.curOK {
			cur := n.cur
			if cur.ID.Less(act.ID) {
				return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, act, cur.ID)
			}
			for _, w := range n.amb {
				if cur.ID.Less(w.ID) {
					return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, w, cur.ID)
				}
			}
		} else {
			if !act.ID.IsZero() {
				return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, act)
			}
			for _, w := range n.amb {
				if !w.ID.IsZero() {
					return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, w)
				}
			}
		}
		// (4,5,6) info-sent constraints.
		for _, g := range s.infoViewIDs(n) {
			info, ok := n.infoSent[g]
			if !ok {
				continue
			}
			if _, reg := totReg[info.Act.ID]; !reg {
				return fmt.Errorf("5.2(4): info-sent[%s]_%s has act %s not totally registered", g, p, info.Act)
			}
			for _, w := range info.Amb {
				if !info.Act.ID.Less(w.ID) {
					return fmt.Errorf("5.2(5): info-sent[%s]_%s has amb view %s with id ≤ act.id", g, p, w)
				}
			}
			if !info.Act.ID.Less(g) {
				return fmt.Errorf("5.2(6): info-sent[%s]_%s contains %s with id ≥ g", g, p, info.Act)
			}
			for _, w := range info.Amb {
				if !w.ID.Less(g) {
					return fmt.Errorf("5.2(6): info-sent[%s]_%s contains %s with id ≥ g", g, p, w)
				}
			}
		}
	}
	return nil
}

// CheckInvariant52Part3Literal checks part 3 of Invariant 5.2 exactly as
// printed in the paper: if client-cur_p ≠ ⊥ and w ∈ {act_p} ∪ amb_p then
// w.id ≤ client-cur.id_p. See the file comment: this printed bound is
// falsifiable on reachable states; it is provided so tests can demonstrate
// the discrepancy.
func (s System) CheckInvariant52Part3Literal() error {
	for _, p := range s.Procs {
		n := s.Nodes[p]
		cc, ok := n.ClientCur()
		if !ok {
			continue
		}
		for _, w := range n.Use() {
			if cc.ID.Less(w.ID) {
				return fmt.Errorf("5.2(3 literal): use_%s contains %s with id > client-cur.id %s", p, w, cc.ID)
			}
		}
	}
	return nil
}

// CheckInvariant53 checks Invariant 5.3:
//
//	(1) if info-sent[g]_p = ⟨x, X⟩ and w ∈ attempted_p with w.id < g, then
//	    w ∈ {x} ∪ X or w.id < x.id;
//	(2) if info-rcvd[q, g]_p = ⟨x, X⟩ and w ∈ {x} ∪ X, then w ∈ use_p or
//	    w.id < act.id_p.
func (s System) CheckInvariant53() error {
	for _, p := range s.Procs {
		n := s.Nodes[p]
		actID := n.act.ID
		for _, g := range s.infoViewIDs(n) {
			if info, ok := n.infoSent[g]; ok {
				for _, w := range n.attempted {
					if !w.ID.Less(g) {
						continue
					}
					if viewIn(w, info.Act, info.Amb) || w.ID.Less(info.Act.ID) {
						continue
					}
					return fmt.Errorf("5.3(1): p=%s info-sent[%s] omits attempted %s", p, g, w)
				}
			}
			for _, q := range s.Procs {
				info, ok := n.infoRcvd[procViewKey{q, g}]
				if !ok {
					continue
				}
				if !n.inUse(info.Act.ID) && !info.Act.ID.Less(actID) {
					return fmt.Errorf("5.3(2): p=%s info-rcvd[%s,%s] view %s neither in use nor below act", p, q, g, info.Act)
				}
				for _, w := range info.Amb {
					if n.inUse(w.ID) || w.ID.Less(actID) {
						continue
					}
					return fmt.Errorf("5.3(2): p=%s info-rcvd[%s,%s] view %s neither in use nor below act", p, q, g, w)
				}
			}
		}
	}
	return nil
}

// CheckInvariant54 checks Invariant 5.4: if v ∈ attempted_p, q ∈ v.set,
// w ∈ attempted_q, w.id < v.id, and no x ∈ TotReg has w.id < x.id < v.id,
// then |v.set ∩ w.set| > |w.set|/2.
func (s System) CheckInvariant54() error {
	totIDs := s.TotRegIDs()
	for _, p := range s.Procs {
		for _, v := range s.Nodes[p].attempted {
			for q := range v.Members {
				for _, w := range s.Nodes[q].attempted {
					if !w.ID.Less(v.ID) {
						continue
					}
					if hasIDBetween(totIDs, w.ID, v.ID) {
						continue
					}
					if !v.Members.MajorityOf(w.Members) {
						return fmt.Errorf("5.4: v=%s (att by %s), w=%s (att by %s ∈ v.set): no majority intersection", v, p, w, q)
					}
				}
			}
		}
	}
	return nil
}

// CheckInvariant55 checks Invariant 5.5: if v ∈ Att, w ∈ TotReg, w.id <
// v.id, and no x ∈ TotReg has w.id < x.id < v.id, then |v.set ∩ w.set| >
// |w.set|/2.
func (s System) CheckInvariant55() error {
	att := s.AttShared()
	totReg := s.TotRegShared()
	for _, v := range att {
		// totReg is sorted by id, so in descending order the first w below v
		// is itself totally registered: every earlier w' has w strictly
		// between w' and v, so only this w needs checking.
		for j := len(totReg) - 1; j >= 0; j-- {
			w := totReg[j]
			if !w.ID.Less(v.ID) {
				continue
			}
			if !v.Members.MajorityOf(w.Members) {
				return fmt.Errorf("5.5: v=%s, w=%s ∈ TotReg: no majority intersection", v, w)
			}
			break
		}
	}
	return nil
}

// CheckInvariant56 checks Invariant 5.6 (the corollary used in the
// refinement proof): if v, w ∈ Att, w.id < v.id, and no x ∈ TotReg has
// w.id < x.id < v.id, then v.set ∩ w.set ≠ {}.
func (s System) CheckInvariant56() error {
	att := s.AttShared()
	totIDs := s.TotRegIDs()
	for i := 1; i < len(att); i++ {
		v := att[i]
		// att is sorted by id; scanning w downward, once a totally
		// registered id separates w from v it separates every lower w too.
		for j := i - 1; j >= 0; j-- {
			w := att[j]
			if hasIDBetween(totIDs, w.ID, v.ID) {
				break
			}
			if !v.Members.Intersects(w.Members) {
				return fmt.Errorf("5.6: attempted views %s and %s disjoint with no intervening totally registered view", w, v)
			}
		}
	}
	return nil
}

func viewIn(w, act types.View, amb []types.View) bool {
	if w.ID == act.ID {
		return true
	}
	for _, x := range amb {
		if w.ID == x.ID {
			return true
		}
	}
	return false
}
