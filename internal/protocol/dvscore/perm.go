package dvscore

import "repro/internal/types"

// PermuteMsg implements types.PermutableMsg: the carried active and
// ambiguous views permute; Amb is re-sorted because permuting view-id
// origins can reorder ids.
func (m InfoMsg) PermuteMsg(pi types.Perm) types.Msg {
	amb := make([]types.View, len(m.Amb))
	for i, v := range m.Amb {
		amb[i] = pi.View(v)
	}
	types.SortViews(amb)
	return InfoMsg{Act: pi.View(m.Act), Amb: amb}
}

var _ types.PermutableMsg = InfoMsg{}

// permute returns π(i) with Amb re-sorted by (permuted) view id.
func (i Info) permute(pi types.Perm) Info {
	amb := make([]types.View, len(i.Amb))
	for j, v := range i.Amb {
		amb[j] = pi.View(v)
	}
	types.SortViews(amb)
	return Info{Act: pi.View(i.Act), Amb: amb}
}

// Permute returns π(n): the VS-TO-DVS automaton of process π(p) whose state
// is the image of n's state under π — memberships, view-id origins, message
// provenance, and buffered messages all permuted. The receiver is not
// mutated. Used by the symmetry reduction of the DVS-IMPL composition.
func (n *Node) Permute(pi types.Perm) *Node {
	p := pi.ID(n.p)
	c := &Node{
		p:           p,
		fpPre:       "n" + p.String() + ".",
		cur:         pi.View(n.cur),
		curOK:       n.curOK,
		clientCur:   pi.View(n.clientCur),
		clientCurOK: n.clientCurOK,
		act:         pi.View(n.act),
		amb:         make(map[types.ViewID]types.View, len(n.amb)),
		attempted:   make(map[types.ViewID]types.View, len(n.attempted)),
		infoRcvd:    make(map[procViewKey]Info, len(n.infoRcvd)),
		rcvdRgst:    make(map[types.ViewID]types.ProcSet, len(n.rcvdRgst)),
		msgsToVS:    make(map[types.ViewID][]types.Msg, len(n.msgsToVS)),
		msgsFromVS:  make(map[types.ViewID][]MsgFrom, len(n.msgsFromVS)),
		safeFromVS:  make(map[types.ViewID][]MsgFrom, len(n.safeFromVS)),
		reg:         make(map[types.ViewID]bool, len(n.reg)),
		infoSent:    make(map[types.ViewID]Info, len(n.infoSent)),
	}
	for id, v := range n.amb {
		c.amb[pi.ViewID(id)] = pi.View(v)
	}
	for id, v := range n.attempted {
		c.attempted[pi.ViewID(id)] = pi.View(v)
	}
	for k, i := range n.infoRcvd {
		c.infoRcvd[procViewKey{pi.ID(k.Q), pi.ViewID(k.G)}] = i.permute(pi)
	}
	for g, s := range n.rcvdRgst {
		c.rcvdRgst[pi.ViewID(g)] = pi.Set(s)
	}
	for g, q := range n.msgsToVS {
		c.msgsToVS[pi.ViewID(g)] = pi.Msgs(q)
	}
	for g, q := range n.msgsFromVS {
		c.msgsFromVS[pi.ViewID(g)] = permuteMsgFrom(pi, q)
	}
	for g, q := range n.safeFromVS {
		c.safeFromVS[pi.ViewID(g)] = permuteMsgFrom(pi, q)
	}
	for g, b := range n.reg {
		c.reg[pi.ViewID(g)] = b
	}
	for g, i := range n.infoSent {
		c.infoSent[pi.ViewID(g)] = i.permute(pi)
	}
	return c
}

func permuteMsgFrom(pi types.Perm, q []MsgFrom) []MsgFrom {
	out := make([]MsgFrom, len(q))
	for i, e := range q {
		out[i] = MsgFrom{M: pi.Msg(e.M), Q: pi.ID(e.Q)}
	}
	return out
}
