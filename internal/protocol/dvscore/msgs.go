package dvscore

import (
	"strings"

	"repro/internal/types"
)

// The message universe of the implementation is
// M = M_c ∪ ({"info"} × V × 2^V) ∪ {"registered"}.

// InfoMsg is an ⟨"info", act, amb⟩ message, carrying the sender's active
// view and ambiguous-view set. Amb is kept sorted by view id.
type InfoMsg struct {
	Act types.View
	Amb []types.View
}

// NewInfoMsg builds an info message, copying and sorting the ambiguous set.
func NewInfoMsg(act types.View, amb []types.View) InfoMsg {
	cp := make([]types.View, 0, len(amb))
	for _, v := range amb {
		cp = append(cp, v.Clone())
	}
	types.SortViews(cp)
	return InfoMsg{Act: act.Clone(), Amb: cp}
}

// MsgKey implements types.Msg.
func (m InfoMsg) MsgKey() string {
	var b strings.Builder
	b.WriteString("info:")
	b.WriteString(m.Act.String())
	b.WriteByte(';')
	for i, v := range m.Amb {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// WriteFp streams the canonical key (same format as MsgKey) into a
// fingerprint digest.
func (m InfoMsg) WriteFp(w types.FpWriter) {
	w.Str("info:")
	m.Act.WriteFp(w)
	w.Byte(';')
	for i, v := range m.Amb {
		if i > 0 {
			w.Byte('|')
		}
		v.WriteFp(w)
	}
}

// Clone returns an independent copy.
func (m InfoMsg) Clone() InfoMsg { return NewInfoMsg(m.Act, m.Amb) }

// ServiceMsg marks InfoMsg as internal to the group-communication layer.
func (InfoMsg) ServiceMsg() {}

// RegisteredMsg is the ⟨"registered"⟩ message.
type RegisteredMsg struct{}

// MsgKey implements types.Msg.
func (RegisteredMsg) MsgKey() string { return "registered" }

// WriteFp streams the canonical key into a fingerprint digest.
func (RegisteredMsg) WriteFp(w types.FpWriter) { w.Str("registered") }

// ServiceMsg marks RegisteredMsg as internal to the group-communication
// layer.
func (RegisteredMsg) ServiceMsg() {}

var (
	_ types.ServiceMsg = InfoMsg{}
	_ types.ServiceMsg = RegisteredMsg{}
)

// Purge deletes every non-client ("info" or "registered") message from q,
// per the refinement of Figure 4.
func Purge(q []types.Msg) []types.Msg {
	out := make([]types.Msg, 0, len(q))
	for _, m := range q {
		if types.IsClient(m) {
			out = append(out, m)
		}
	}
	return out
}

// PurgeSize counts the non-client messages in q.
func PurgeSize(q []types.Msg) int {
	n := 0
	for _, m := range q {
		if !types.IsClient(m) {
			n++
		}
	}
	return n
}
