// Package dvscore is the deterministic, side-effect-free protocol core of
// the paper's primary contribution: the VS-TO-DVS_p automaton of Figure 3 as
// a pure state machine. The same code is driven by two consumers — the
// exhaustive checker (internal/core composes it with the VS specification
// into DVS-IMPL and explores it against Invariants 5.1–5.6 and the Figure 4
// refinement) and the live runtime (internal/dvsg translates view-synchronous
// upcalls into Events and applies the Effects that Step emits). There is no
// second hand-written implementation: what the checker verifies is what runs
// over TCP.
//
// The package has three surfaces: the fine-grained transition methods on
// Node (one per Figure 3 action, used by the explorer where every
// interleaving matters), the macro-step Step/Drain functions over the Filter
// interface (the runtime's drain policy, emitting Effects into an Outbox),
// and the System invariant formulas 5.1–5.6 shared by the model checker and
// the trace-conformance replayer (internal/conform).
package dvscore

import (
	"fmt"
	"sort"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Info is a ⟨act, amb⟩ pair as recorded in info-sent and info-rcvd.
type Info struct {
	Act types.View
	Amb []types.View // sorted by id
}

func (i Info) clone() Info {
	cp := make([]types.View, 0, len(i.Amb))
	for _, v := range i.Amb {
		cp = append(cp, v.Clone())
	}
	return Info{Act: i.Act.Clone(), Amb: cp}
}

func (i Info) key() string {
	return NewInfoMsg(i.Act, i.Amb).MsgKey()
}

// writeFp streams the same canonical form as key (Amb is kept sorted, so no
// copy or re-sort is needed).
func (i Info) writeFp(f *ioa.Fingerprinter) {
	f.Str("info:")
	i.Act.WriteFp(f)
	f.Byte(';')
	for j, v := range i.Amb {
		if j > 0 {
			f.Byte('|')
		}
		v.WriteFp(f)
	}
}

type procViewKey struct {
	Q types.ProcID
	G types.ViewID
}

// MsgFrom is a ⟨m, q⟩ pair buffered in msgs-from-vs / safe-from-vs.
type MsgFrom struct {
	M types.Msg
	Q types.ProcID
}

func (e MsgFrom) key() string { return e.M.MsgKey() + "@" + e.Q.String() }

// Node is the state of the VS-TO-DVS_p automaton of Figure 3 for one
// process p. It is not a standalone ioa.Automaton: its vs-* actions
// synchronize with the VS automaton inside the Impl composition.
type Node struct {
	//lint:fpignore identity reaches the digest through the fpPre prefix on every line
	p     types.ProcID
	fpPre string // fingerprint line prefix "n<p>.", precomputed

	cur         types.View // meaningful iff curOK
	curOK       bool
	clientCur   types.View // meaningful iff clientCurOK
	clientCurOK bool
	act         types.View
	amb         map[types.ViewID]types.View
	attempted   map[types.ViewID]types.View // history variable (for proofs)
	infoRcvd    map[procViewKey]Info
	rcvdRgst    map[types.ViewID]types.ProcSet
	msgsToVS    map[types.ViewID][]types.Msg
	msgsFromVS  map[types.ViewID][]MsgFrom
	safeFromVS  map[types.ViewID][]MsgFrom
	reg         map[types.ViewID]bool
	infoSent    map[types.ViewID]Info
}

// NewNode returns VS-TO-DVS_p in its initial state. initial is v0; inP0
// states whether p ∈ P0.
func NewNode(p types.ProcID, initial types.View, inP0 bool) *Node {
	n := &Node{
		p:          p,
		fpPre:      "n" + p.String() + ".",
		act:        initial.Clone(),
		amb:        make(map[types.ViewID]types.View),
		attempted:  make(map[types.ViewID]types.View),
		infoRcvd:   make(map[procViewKey]Info),
		rcvdRgst:   make(map[types.ViewID]types.ProcSet),
		msgsToVS:   make(map[types.ViewID][]types.Msg),
		msgsFromVS: make(map[types.ViewID][]MsgFrom),
		safeFromVS: make(map[types.ViewID][]MsgFrom),
		reg:        make(map[types.ViewID]bool),
		infoSent:   make(map[types.ViewID]Info),
	}
	if inP0 {
		n.cur, n.curOK = initial.Clone(), true
		n.clientCur, n.clientCurOK = initial.Clone(), true
		n.attempted[initial.ID] = initial.Clone()
		n.reg[initial.ID] = true
	}
	return n
}

// P returns the process id.
func (n *Node) P() types.ProcID { return n.p }

// Cur returns cur; ok is false for ⊥.
func (n *Node) Cur() (types.View, bool) { return n.cur, n.curOK }

// ClientCur returns client-cur; ok is false for ⊥.
func (n *Node) ClientCur() (types.View, bool) { return n.clientCur, n.clientCurOK }

// Act returns the active view act.
func (n *Node) Act() types.View { return n.act.Clone() }

// Amb returns the ambiguous views, sorted by id.
func (n *Node) Amb() []types.View { return sortedViews(n.amb) }

// Use returns the derived variable use = {act} ∪ amb, sorted by id.
func (n *Node) Use() []types.View {
	out := append([]types.View{n.act.Clone()}, sortedViews(n.amb)...)
	types.SortViews(out)
	return out
}

// Attempted returns the history variable attempted_p, sorted by id.
func (n *Node) Attempted() []types.View { return sortedViews(n.attempted) }

// AttemptedShared returns attempted_p sorted by id without cloning
// memberships; the views are read-only. The per-step abstraction function
// uses it: its output is deep-copied by dvs.FromState anyway.
func (n *Node) AttemptedShared() []types.View {
	out := make([]types.View, 0, len(n.attempted))
	for _, v := range n.attempted {
		out = append(out, v)
	}
	types.SortViews(out)
	return out
}

// inUse reports whether a view with the given id is in use = {act} ∪ amb.
func (n *Node) inUse(id types.ViewID) bool {
	if id == n.act.ID {
		return true
	}
	_, ok := n.amb[id]
	return ok
}

// HasAttempted reports whether a view with the given id is in attempted_p.
func (n *Node) HasAttempted(g types.ViewID) bool {
	_, ok := n.attempted[g]
	return ok
}

// Reg reports reg[g]_p.
func (n *Node) Reg(g types.ViewID) bool { return n.reg[g] }

// InfoSent returns info-sent[g]_p; ok is false for ⊥.
func (n *Node) InfoSent(g types.ViewID) (Info, bool) {
	i, ok := n.infoSent[g]
	return i, ok
}

// InfoRcvd returns info-rcvd[q, g]_p; ok is false for ⊥.
func (n *Node) InfoRcvd(q types.ProcID, g types.ViewID) (Info, bool) {
	i, ok := n.infoRcvd[procViewKey{q, g}]
	return i, ok
}

// MsgsToVS returns a copy of msgs-to-vs[g].
func (n *Node) MsgsToVS(g types.ViewID) []types.Msg {
	return types.CloneSeq(n.msgsToVS[g])
}

// MsgsFromVS returns a copy of msgs-from-vs[g].
func (n *Node) MsgsFromVS(g types.ViewID) []MsgFrom {
	return types.CloneSeq(n.msgsFromVS[g])
}

// SafeFromVS returns a copy of safe-from-vs[g].
func (n *Node) SafeFromVS(g types.ViewID) []MsgFrom {
	return types.CloneSeq(n.safeFromVS[g])
}

// MsgsToVSShared returns msgs-to-vs[g] without copying; the slice and its
// messages are read-only. The refinement's abstraction function and the
// bounded environment use it on their per-state hot paths.
func (n *Node) MsgsToVSShared(g types.ViewID) []types.Msg { return n.msgsToVS[g] }

// MsgsFromVSLen returns |msgs-from-vs[g]|.
func (n *Node) MsgsFromVSLen(g types.ViewID) int { return len(n.msgsFromVS[g]) }

// SafeFromVSLen returns |safe-from-vs[g]|.
func (n *Node) SafeFromVSLen(g types.ViewID) int { return len(n.safeFromVS[g]) }

// RegisteredIDs returns the ids g with reg[g]_p, sorted. The conformance
// replayer uses it to rebuild the DVS-level registered sets.
func (n *Node) RegisteredIDs() []types.ViewID {
	out := make([]types.ViewID, 0, len(n.reg))
	for g, b := range n.reg {
		if b {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func sortedViews(m map[types.ViewID]types.View) []types.View {
	out := make([]types.View, 0, len(m))
	for _, v := range m {
		out = append(out, v.Clone())
	}
	types.SortViews(out)
	return out
}

// --- Input handlers (effects of Figure 3 input actions) ---

// OnVSNewView handles input vs-newview(v)_p: install cur := v and enqueue an
// ⟨"info", act, amb⟩ message for the new view.
//
// Installs that do not advance cur are ignored. The VS specification
// delivers strictly monotone views per process, so in the checked
// composition this guard never fires; at runtime it absorbs the bootstrap
// re-delivery of the initial view (already reflected in the core's initial
// state) and keeps a faulty view-synchronous layer from driving the core
// outside the state space the invariants were verified on.
func (n *Node) OnVSNewView(v types.View) {
	if n.curOK && !n.cur.ID.Less(v.ID) {
		return
	}
	n.cur, n.curOK = v.Clone(), true
	info := Info{Act: n.act.Clone(), Amb: sortedViews(n.amb)}
	n.msgsToVS[v.ID] = append(n.msgsToVS[v.ID], NewInfoMsg(info.Act, info.Amb))
	n.infoSent[v.ID] = info
}

// OnVSGpRcv handles input vs-gprcv(m)_{q,p} by case analysis on m.
func (n *Node) OnVSGpRcv(m types.Msg, q types.ProcID) {
	switch msg := m.(type) {
	case InfoMsg:
		if !n.curOK {
			return // unreachable: VS only delivers within a current view
		}
		n.infoRcvd[procViewKey{q, n.cur.ID}] = Info{Act: msg.Act.Clone(), Amb: types.CloneSeq(msg.Amb)}
		if n.act.ID.Less(msg.Act.ID) {
			n.act = msg.Act.Clone()
		}
		// amb := {w ∈ amb ∪ V | w.id > act.id}
		for _, w := range msg.Amb {
			if n.act.ID.Less(w.ID) {
				n.amb[w.ID] = w.Clone()
			}
		}
		for id := range n.amb {
			if !n.act.ID.Less(id) {
				delete(n.amb, id)
			}
		}
	case RegisteredMsg:
		if !n.curOK {
			return
		}
		set, ok := n.rcvdRgst[n.cur.ID]
		if !ok {
			set = types.NewProcSet()
			n.rcvdRgst[n.cur.ID] = set
		}
		set.Add(q)
	default:
		if !n.curOK {
			return
		}
		n.msgsFromVS[n.cur.ID] = append(n.msgsFromVS[n.cur.ID], MsgFrom{M: m, Q: q})
	}
}

// OnVSSafe handles input vs-safe(m)_{q,p}: client messages are buffered for
// dvs-safe delivery; "info" and "registered" safety indications have no
// effect (Figure 3).
func (n *Node) OnVSSafe(m types.Msg, q types.ProcID) {
	if !types.IsClient(m) {
		return
	}
	if !n.curOK {
		return
	}
	n.safeFromVS[n.cur.ID] = append(n.safeFromVS[n.cur.ID], MsgFrom{M: m, Q: q})
}

// OnDVSGpSnd handles input dvs-gpsnd(m)_p.
func (n *Node) OnDVSGpSnd(m types.Msg) {
	if !n.clientCurOK {
		return
	}
	g := n.clientCur.ID
	n.msgsToVS[g] = append(n.msgsToVS[g], m)
}

// OnDVSRegister handles input dvs-register_p.
func (n *Node) OnDVSRegister() {
	if !n.clientCurOK {
		return
	}
	g := n.clientCur.ID
	n.reg[g] = true
	n.msgsToVS[g] = append(n.msgsToVS[g], RegisteredMsg{})
}

// --- Locally controlled actions ---

// VSGpSndHead returns the head of msgs-to-vs[cur.id], if any: the message a
// vs-gpsnd(m)_p output would submit to VS.
func (n *Node) VSGpSndHead() (types.Msg, bool) {
	if !n.curOK {
		return nil, false
	}
	q := n.msgsToVS[n.cur.ID]
	if len(q) == 0 {
		return nil, false
	}
	return q[0], true
}

// TakeVSGpSndHead removes and returns the head of msgs-to-vs[cur.id].
func (n *Node) TakeVSGpSndHead(m types.Msg) error {
	head, ok := n.VSGpSndHead()
	if !ok || head.MsgKey() != m.MsgKey() {
		return fmt.Errorf("vs-gpsnd(%s)_%s: not head of msgs-to-vs", m.MsgKey(), n.p)
	}
	g := n.cur.ID
	n.msgsToVS[g] = n.msgsToVS[g][1:]
	if len(n.msgsToVS[g]) == 0 {
		delete(n.msgsToVS, g)
	}
	return nil
}

// DVSNewViewEnabled reports whether output dvs-newview(v)_p is enabled for
// v = cur (Figure 3): v.id > client-cur.id, info received from every other
// member of v, and v majority-intersects every view in use.
func (n *Node) DVSNewViewEnabled() (types.View, bool) {
	if !n.curOK {
		return types.View{}, false
	}
	v := n.cur
	if n.clientCurOK && !n.clientCur.ID.Less(v.ID) {
		return types.View{}, false
	}
	for q := range v.Members {
		if q == n.p {
			continue
		}
		if _, ok := n.infoRcvd[procViewKey{q, v.ID}]; !ok {
			return types.View{}, false
		}
	}
	if !v.Members.MajorityOf(n.act.Members) {
		return types.View{}, false
	}
	for _, w := range n.amb {
		if !v.Members.MajorityOf(w.Members) {
			return types.View{}, false
		}
	}
	return v.Clone(), true
}

// PerformDVSNewView applies the effect of dvs-newview(v)_p.
func (n *Node) PerformDVSNewView(v types.View) error {
	cand, ok := n.DVSNewViewEnabled()
	if !ok || !cand.Equal(v) {
		return fmt.Errorf("dvs-newview(%s)_%s: not enabled", v, n.p)
	}
	n.amb[v.ID] = v.Clone()
	n.attempted[v.ID] = v.Clone()
	n.clientCur, n.clientCurOK = v.Clone(), true
	return nil
}

// DVSGpRcvHead returns the head of msgs-from-vs[client-cur.id], if any.
func (n *Node) DVSGpRcvHead() (MsgFrom, bool) {
	if !n.clientCurOK {
		return MsgFrom{}, false
	}
	q := n.msgsFromVS[n.clientCur.ID]
	if len(q) == 0 {
		return MsgFrom{}, false
	}
	return q[0], true
}

// TakeDVSGpRcvHead removes the head of msgs-from-vs[client-cur.id].
func (n *Node) TakeDVSGpRcvHead(e MsgFrom) error {
	head, ok := n.DVSGpRcvHead()
	if !ok || head.key() != e.key() {
		return fmt.Errorf("dvs-gprcv(%s)_%s,%s: not head of msgs-from-vs", e.M.MsgKey(), e.Q, n.p)
	}
	g := n.clientCur.ID
	n.msgsFromVS[g] = n.msgsFromVS[g][1:]
	if len(n.msgsFromVS[g]) == 0 {
		delete(n.msgsFromVS, g)
	}
	return nil
}

// DVSSafeHead returns the head of safe-from-vs[client-cur.id], if any.
func (n *Node) DVSSafeHead() (MsgFrom, bool) {
	if !n.clientCurOK {
		return MsgFrom{}, false
	}
	q := n.safeFromVS[n.clientCur.ID]
	if len(q) == 0 {
		return MsgFrom{}, false
	}
	return q[0], true
}

// TakeDVSSafeHead removes the head of safe-from-vs[client-cur.id].
func (n *Node) TakeDVSSafeHead(e MsgFrom) error {
	head, ok := n.DVSSafeHead()
	if !ok || head.key() != e.key() {
		return fmt.Errorf("dvs-safe(%s)_%s,%s: not head of safe-from-vs", e.M.MsgKey(), e.Q, n.p)
	}
	g := n.clientCur.ID
	n.safeFromVS[g] = n.safeFromVS[g][1:]
	if len(n.safeFromVS[g]) == 0 {
		delete(n.safeFromVS, g)
	}
	return nil
}

// GCCandidates returns the views v for which dvs-garbage-collect(v)_p is
// enabled: p has received "registered" messages from every member of v in
// view v.id, and v.id > act.id. Candidates are drawn from the views p
// knows (amb and cur), sorted by id.
func (n *Node) GCCandidates() []types.View {
	var cands []types.View
	consider := func(v types.View) {
		if !n.act.ID.Less(v.ID) {
			return
		}
		set, ok := n.rcvdRgst[v.ID]
		if !ok || !v.Members.Subset(set) {
			return
		}
		cands = append(cands, v.Clone())
	}
	for _, v := range sortedViews(n.amb) {
		consider(v)
	}
	if n.curOK {
		if _, inAmb := n.amb[n.cur.ID]; !inAmb {
			consider(n.cur)
		}
	}
	types.SortViews(cands)
	return cands
}

// PerformGC applies dvs-garbage-collect(v)_p: act := v and ambiguous views
// with ids ≤ v.id are discarded.
func (n *Node) PerformGC(v types.View) error {
	enabled := false
	for _, c := range n.GCCandidates() {
		if c.Equal(v) {
			enabled = true
			break
		}
	}
	if !enabled {
		return fmt.Errorf("dvs-garbage-collect(%s)_%s: not enabled", v, n.p)
	}
	n.act = v.Clone()
	for id := range n.amb {
		if !n.act.ID.Less(id) {
			delete(n.amb, id)
		}
	}
	return nil
}

// Clone returns an independent deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{
		p:           n.p,
		fpPre:       n.fpPre,
		cur:         n.cur.Clone(),
		curOK:       n.curOK,
		clientCur:   n.clientCur.Clone(),
		clientCurOK: n.clientCurOK,
		act:         n.act.Clone(),
		amb:         make(map[types.ViewID]types.View, len(n.amb)),
		attempted:   make(map[types.ViewID]types.View, len(n.attempted)),
		infoRcvd:    make(map[procViewKey]Info, len(n.infoRcvd)),
		rcvdRgst:    make(map[types.ViewID]types.ProcSet, len(n.rcvdRgst)),
		msgsToVS:    make(map[types.ViewID][]types.Msg, len(n.msgsToVS)),
		msgsFromVS:  make(map[types.ViewID][]MsgFrom, len(n.msgsFromVS)),
		safeFromVS:  make(map[types.ViewID][]MsgFrom, len(n.safeFromVS)),
		reg:         make(map[types.ViewID]bool, len(n.reg)),
		infoSent:    make(map[types.ViewID]Info, len(n.infoSent)),
	}
	for id, v := range n.amb {
		c.amb[id] = v.Clone()
	}
	for id, v := range n.attempted {
		c.attempted[id] = v.Clone()
	}
	for k, i := range n.infoRcvd {
		c.infoRcvd[k] = i.clone()
	}
	for g, s := range n.rcvdRgst {
		c.rcvdRgst[g] = s.Clone()
	}
	for g, q := range n.msgsToVS {
		c.msgsToVS[g] = types.CloneSeq(q)
	}
	for g, q := range n.msgsFromVS {
		c.msgsFromVS[g] = types.CloneSeq(q)
	}
	for g, q := range n.safeFromVS {
		c.safeFromVS[g] = types.CloneSeq(q)
	}
	for g, b := range n.reg {
		c.reg[g] = b
	}
	for g, i := range n.infoSent {
		c.infoSent[g] = i.clone()
	}
	return c
}

// AddFingerprint appends the node's state to a composite fingerprint. Every
// line carries the node's "n<p>." prefix; values stream into the digest.
func (n *Node) AddFingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix(n.fpPre)
	if n.curOK {
		f.Begin("cur")
		f.Byte('=')
		n.cur.WriteFp(f)
		f.End()
	}
	if n.clientCurOK {
		f.Begin("ccur")
		f.Byte('=')
		n.clientCur.WriteFp(f)
		f.End()
	}
	f.Begin("act")
	f.Byte('=')
	n.act.WriteFp(f)
	f.End()
	for id, v := range n.amb {
		f.Begin("amb.")
		id.WriteFp(f)
		f.Byte('=')
		v.Members.WriteFp(f)
		f.End()
	}
	for id, v := range n.attempted {
		f.Begin("attempted.")
		id.WriteFp(f)
		f.Byte('=')
		v.Members.WriteFp(f)
		f.End()
	}
	for k, i := range n.infoRcvd {
		f.Begin("ircv.")
		k.Q.WriteFp(f)
		f.Byte('.')
		k.G.WriteFp(f)
		f.Byte('=')
		i.writeFp(f)
		f.End()
	}
	for g, s := range n.rcvdRgst {
		if s.Len() > 0 {
			f.Begin("rgst.")
			g.WriteFp(f)
			f.Byte('=')
			s.WriteFp(f)
			f.End()
		}
	}
	for g, q := range n.msgsToVS {
		if len(q) > 0 {
			f.Begin("tovs.")
			g.WriteFp(f)
			f.Byte('=')
			writeMsgSeqFp(f, q)
			f.End()
		}
	}
	for g, q := range n.msgsFromVS {
		if len(q) > 0 {
			f.Begin("fromvs.")
			g.WriteFp(f)
			f.Byte('=')
			writeMsgFromSeqFp(f, q)
			f.End()
		}
	}
	for g, q := range n.safeFromVS {
		if len(q) > 0 {
			f.Begin("safevs.")
			g.WriteFp(f)
			f.Byte('=')
			writeMsgFromSeqFp(f, q)
			f.End()
		}
	}
	for g, b := range n.reg {
		if b {
			f.Begin("reg.")
			g.WriteFp(f)
			f.Str("=1")
			f.End()
		}
	}
	for g, i := range n.infoSent {
		f.Begin("isent.")
		g.WriteFp(f)
		f.Byte('=')
		i.writeFp(f)
		f.End()
	}
	f.SetPrefix("")
}

func writeMsgSeqFp(f *ioa.Fingerprinter, q []types.Msg) {
	for i, m := range q {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, m)
	}
}

func writeMsgFromSeqFp(f *ioa.Fingerprinter, q []MsgFrom) {
	for i, e := range q {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, e.M)
		f.Byte('@')
		e.Q.WriteFp(f)
	}
}
