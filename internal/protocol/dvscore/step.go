package dvscore

import "repro/internal/types"

// This file is the runtime face of the protocol core: an explicit
// input-event / output-effect interface around the Figure 3 transition
// methods. One Step call is one atomic macro-step — apply an input event,
// then fire the enabled locally-controlled actions in the fixed drain order
// until quiescent — and the effects it emits into the Outbox are the only
// way anything leaves the state machine. The runtime shells (internal/dvsg)
// translate upcalls into Events and apply Effects; the conformance replayer
// (internal/conform) re-executes recorded (Event, Effects) logs through the
// same code and flags any divergence.

// Filter is the primary-view decision state machine the drain policy
// drives: the exact method set of the VS-TO-DVS automaton (Node). The
// static-primary baseline (internal/staticp) implements the same interface.
type Filter interface {
	OnVSNewView(v types.View)
	OnVSGpRcv(m types.Msg, q types.ProcID)
	OnVSSafe(m types.Msg, q types.ProcID)
	OnDVSGpSnd(m types.Msg)
	OnDVSRegister()
	VSGpSndHead() (types.Msg, bool)
	TakeVSGpSndHead(m types.Msg) error
	DVSNewViewEnabled() (types.View, bool)
	PerformDVSNewView(v types.View) error
	DVSGpRcvHead() (MsgFrom, bool)
	TakeDVSGpRcvHead(e MsgFrom) error
	DVSSafeHead() (MsgFrom, bool)
	TakeDVSSafeHead(e MsgFrom) error
	GCCandidates() []types.View
	PerformGC(v types.View) error
	ClientCur() (types.View, bool)
	Amb() []types.View
}

var _ Filter = (*Node)(nil)

// Event is one input of the VS-TO-DVS automaton as seen at runtime: a
// view-synchronous upcall or a client downcall.
type Event interface{ dvsEvent() }

// EvVSNewView is the vs-newview(v)_p input.
type EvVSNewView struct{ View types.View }

// EvVSRecv is the vs-gprcv(m)_{q,p} input.
type EvVSRecv struct {
	M    types.Msg
	From types.ProcID
}

// EvVSSafe is the vs-safe(m)_{q,p} input.
type EvVSSafe struct {
	M    types.Msg
	From types.ProcID
}

// EvClientSend is the dvs-gpsnd(m)_p input from the client above.
type EvClientSend struct{ M types.Msg }

// EvClientRegister is the dvs-register_p input from the client above.
type EvClientRegister struct{}

func (EvVSNewView) dvsEvent()      {}
func (EvVSRecv) dvsEvent()         {}
func (EvVSSafe) dvsEvent()         {}
func (EvClientSend) dvsEvent()     {}
func (EvClientRegister) dvsEvent() {}

// Effect is one output of a macro-step: a message for the view-synchronous
// layer below, an upcall for the client above, or an observable internal
// action.
type Effect interface{ dvsEffect() }

// FxSendVS submits m to the view-synchronous layer (vs-gpsnd output).
type FxSendVS struct{ M types.Msg }

// FxDeliver hands a client message up (dvs-gprcv output).
type FxDeliver struct {
	M    types.Msg
	From types.ProcID
}

// FxSafeInd hands a safe indication up (dvs-safe output).
type FxSafeInd struct {
	M    types.Msg
	From types.ProcID
}

// FxNewPrimary announces a new primary view (dvs-newview output).
type FxNewPrimary struct{ View types.View }

// FxGC records a dvs-garbage-collect internal action (observable so the
// replayer can verify GC scheduling too).
type FxGC struct{ View types.View }

func (FxSendVS) dvsEffect()     {}
func (FxDeliver) dvsEffect()    {}
func (FxSafeInd) dvsEffect()    {}
func (FxNewPrimary) dvsEffect() {}
func (FxGC) dvsEffect()         {}

// Outbox collects the effects of one macro-step, in emission order.
type Outbox struct{ Effects []Effect }

func (o *Outbox) add(fx Effect) { o.Effects = append(o.Effects, fx) }

// Step applies one input event and then drains the filter: one atomic
// macro-step of the runtime protocol core. gc enables the eager
// dvs-garbage-collect scheduling (disabled for the REGISTER ablation).
func Step(f Filter, ev Event, gc bool, out *Outbox) {
	switch e := ev.(type) {
	case EvVSNewView:
		f.OnVSNewView(e.View)
	case EvVSRecv:
		f.OnVSGpRcv(e.M, e.From)
	case EvVSSafe:
		f.OnVSSafe(e.M, e.From)
	case EvClientSend:
		f.OnDVSGpSnd(e.M)
	case EvClientRegister:
		f.OnDVSRegister()
	}
	Drain(f, gc, out)
}

// Drain fires the filter's enabled locally-controlled actions until
// quiescent, emitting one effect per action: outgoing messages first, then
// client deliveries and safe indications of the current client view, then
// (only once those are drained) a new primary announcement, then garbage
// collection. This is the view-synchronous drain contract: all client
// deliveries and safe indications of a client view are handed up before a
// later primary view is announced.
func Drain(f Filter, gc bool, out *Outbox) {
	for {
		progress := false
		for {
			m, ok := f.VSGpSndHead()
			if !ok {
				break
			}
			if err := f.TakeVSGpSndHead(m); err != nil {
				break
			}
			out.add(FxSendVS{M: m})
			progress = true
		}
		for {
			e, ok := f.DVSGpRcvHead()
			if !ok {
				break
			}
			if err := f.TakeDVSGpRcvHead(e); err != nil {
				break
			}
			out.add(FxDeliver{M: e.M, From: e.Q})
			progress = true
		}
		for {
			e, ok := f.DVSSafeHead()
			if !ok {
				break
			}
			if err := f.TakeDVSSafeHead(e); err != nil {
				break
			}
			out.add(FxSafeInd{M: e.M, From: e.Q})
			progress = true
		}
		if v, ok := f.DVSNewViewEnabled(); ok {
			if err := f.PerformDVSNewView(v); err == nil {
				out.add(FxNewPrimary{View: v})
				progress = true
			}
		}
		if gc {
			for _, v := range f.GCCandidates() {
				if err := f.PerformGC(v); err == nil {
					out.add(FxGC{View: v})
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}
