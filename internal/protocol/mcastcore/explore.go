package mcastcore

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/types"
)

// This file makes the multicast core exhaustively checkable: System
// composes N coordinator nodes with an abstraction of the per-group total
// orders (one global append-only log per group, one read cursor per
// (node, group)) into an ioa.Automaton, so ioa.Explore can enumerate every
// interleaving of submissions, per-group orderings of data and proposals,
// and per-node consumption speeds, asserting the multicast invariant suite
// (system.go) at every distinct reachable state.
//
// The abstraction is exactly the guarantee the DVS/TO stacks provide the
// shell: each group's broadcasts are totally ordered (appends to the
// group's log serialize at the moment the broadcast commits), and every
// member consumes that order from the start, at its own pace. Partitions
// and view changes below the TO layer only pause a cursor — they never
// reorder the log — so exploring all cursor interleavings covers them.

// logItem is one committed entry of a group's total order: a multi-group
// message's data or one group's timestamp proposal.
type logItem struct {
	data    bool
	id      string
	origin  types.ProcID
	dests   []types.GroupID
	payload string
	pgroup  types.GroupID
	ts      uint64
}

// System is the explorable composition: nodes × per-group logs × cursors.
type System struct {
	procs  []types.ProcID
	groups []types.GroupID
	// menu lists the destination sets submissions draw from.
	//lint:fpignore fixed at construction; identical across every state of one exploration
	menu [][]types.GroupID //lint:clonesafe built once, never mutated; clones share it by design
	//lint:fpignore fixed at construction; identical across every state of one exploration
	maxMsgs   int
	nodes     map[types.ProcID]*Node
	logs      map[types.GroupID][]logItem
	cursor    map[types.ProcID]map[types.GroupID]int
	submitted int

	// breakHeadWait is a seeded fault for the invariant-teeth test: after
	// every consume it delivers any finalized pending message immediately,
	// ignoring the head-of-line wait the protocol's safety depends on.
	//lint:fpignore fault knob fixed at construction, never toggled by a transition
	breakHeadWait bool
}

var _ ioa.Automaton = (*System)(nil)

// NewSystem builds the composition: every process is a member of every
// group, all logs empty, all cursors at zero. menu lists the destination
// sets the environment may submit to (each canonicalized); maxMsgs bounds
// the total submissions.
func NewSystem(procs int, groups int, menu [][]types.GroupID, maxMsgs int) *System {
	s := &System{
		menu:    make([][]types.GroupID, len(menu)),
		maxMsgs: maxMsgs,
		nodes:   make(map[types.ProcID]*Node, procs),
		logs:    make(map[types.GroupID][]logItem, groups),
		cursor:  make(map[types.ProcID]map[types.GroupID]int, procs),
	}
	for i := range menu {
		s.menu[i] = types.DedupGroups(append([]types.GroupID(nil), menu[i]...))
	}
	s.groups = types.RangeGroups(groups)
	for _, g := range s.groups {
		s.logs[g] = nil
	}
	for i := 0; i < procs; i++ {
		p := types.ProcID(i)
		s.procs = append(s.procs, p)
		s.nodes[p] = NewNode(p, s.groups)
		cur := make(map[types.GroupID]int, groups)
		for _, g := range s.groups {
			cur[g] = 0
		}
		s.cursor[p] = cur
	}
	return s
}

// Name implements ioa.Automaton.
func (s *System) Name() string { return "MCAST-SYS" }

// Enabled implements ioa.Automaton: one mc-consume action per (process,
// group) cursor with log entries left to consume.
func (s *System) Enabled() []ioa.Action {
	var acts []ioa.Action
	for _, p := range s.procs {
		for _, g := range s.groups {
			if s.cursor[p][g] < len(s.logs[g]) {
				acts = append(acts, ioa.Action{
					Name:  "mc-consume",
					Kind:  ioa.KindInternal,
					Param: consumeParam(p, g),
				})
			}
		}
	}
	ioa.SortActions(acts)
	return acts
}

func consumeParam(p types.ProcID, g types.GroupID) string {
	return strconv.Itoa(int(p)) + "@" + strconv.Itoa(int(g))
}

func submitParam(p types.ProcID, menuIdx int) string {
	return strconv.Itoa(int(p)) + "#" + strconv.Itoa(menuIdx)
}

// Inputs enumerates the environment's submission inputs: while the
// submission budget lasts, any process may multicast to any destination
// set on the menu.
func (s *System) Inputs() []ioa.Action {
	if s.submitted >= s.maxMsgs {
		return nil
	}
	var acts []ioa.Action
	for _, p := range s.procs {
		for i := range s.menu {
			acts = append(acts, ioa.Action{
				Name:  "mc-submit",
				Kind:  ioa.KindInput,
				Param: submitParam(p, i),
			})
		}
	}
	ioa.SortActions(acts)
	return acts
}

// Env adapts System.Inputs to ioa.Environment.
func Env() ioa.Environment {
	return ioa.EnvironmentFunc(func(a ioa.Automaton) []ioa.Action {
		return a.(*System).Inputs()
	})
}

// Perform implements ioa.Automaton.
func (s *System) Perform(a ioa.Action) error {
	param, _ := a.Param.(string)
	switch a.Name {
	case "mc-submit":
		pStr, iStr, ok := strings.Cut(param, "#")
		if !ok {
			return fmt.Errorf("mcastcore: bad submit param %q", a.Param)
		}
		p, err1 := strconv.Atoi(pStr)
		i, err2 := strconv.Atoi(iStr)
		if err1 != nil || err2 != nil || i < 0 || i >= len(s.menu) {
			return fmt.Errorf("mcastcore: bad submit param %q", a.Param)
		}
		node, ok := s.nodes[types.ProcID(p)]
		if !ok {
			return fmt.Errorf("mcastcore: no node %d", p)
		}
		if s.submitted >= s.maxMsgs {
			return fmt.Errorf("mcastcore: submission budget exhausted")
		}
		s.submitted++
		var out Outbox
		if err := Step(node, EvSubmit{Dests: s.menu[i], Payload: "m"}, &out); err != nil {
			return err
		}
		s.applyEffects(out.Effects)
		return nil
	case "mc-consume":
		pStr, gStr, ok := strings.Cut(param, "@")
		if !ok {
			return fmt.Errorf("mcastcore: bad consume param %q", a.Param)
		}
		p, err1 := strconv.Atoi(pStr)
		g, err2 := strconv.Atoi(gStr)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("mcastcore: bad consume param %q", a.Param)
		}
		pid, gid := types.ProcID(p), types.GroupID(g)
		node, ok := s.nodes[pid]
		if !ok {
			return fmt.Errorf("mcastcore: no node %d", p)
		}
		idx := s.cursor[pid][gid]
		if idx >= len(s.logs[gid]) {
			return fmt.Errorf("mcastcore: consume not enabled for %s", param)
		}
		item := s.logs[gid][idx]
		var ev Event
		if item.data {
			ev = EvData{Group: gid, ID: item.id, Origin: item.origin, Dests: item.dests, Payload: item.payload}
		} else {
			ev = EvProposal{Group: gid, PGroup: item.pgroup, ID: item.id, TS: item.ts}
		}
		var out Outbox
		if err := Step(node, ev, &out); err != nil {
			return err
		}
		s.cursor[pid][gid] = idx + 1
		s.applyEffects(out.Effects)
		if s.breakHeadWait {
			brokenDrain(node, gid)
		}
		return nil
	}
	return fmt.Errorf("mcastcore: unknown action %s", a)
}

// applyEffects commits a macro-step's broadcasts to the group logs. This
// is the total-order abstraction: the broadcast serializes here, at the
// moment the emitting step runs; deliveries stay inside node state.
func (s *System) applyEffects(effects []Effect) {
	for _, fx := range effects {
		switch e := fx.(type) {
		case FxSendData:
			s.logs[e.To] = append(s.logs[e.To], logItem{
				data: true, id: e.ID, origin: e.Origin,
				dests: e.Dests, payload: e.Payload,
			})
		case FxSendProp:
			s.logs[e.To] = append(s.logs[e.To], logItem{
				id: e.ID, pgroup: e.PGroup, ts: e.TS,
			})
		case FxDeliver:
			// Recorded in the delivering node's history; nothing global.
		}
	}
}

// Clone implements ioa.Automaton.
func (s *System) Clone() ioa.Automaton {
	c := &System{
		procs:     append([]types.ProcID(nil), s.procs...),
		groups:    append([]types.GroupID(nil), s.groups...),
		menu:      s.menu, // immutable after NewSystem
		maxMsgs:   s.maxMsgs,
		nodes:     make(map[types.ProcID]*Node, len(s.nodes)),
		logs:      make(map[types.GroupID][]logItem, len(s.logs)),
		cursor:    make(map[types.ProcID]map[types.GroupID]int, len(s.cursor)),
		submitted: s.submitted,

		breakHeadWait: s.breakHeadWait,
	}
	for p, n := range s.nodes {
		c.nodes[p] = n.Clone()
	}
	for g, log := range s.logs {
		c.logs[g] = append([]logItem(nil), log...)
	}
	for p, cur := range s.cursor {
		cc := make(map[types.GroupID]int, len(cur))
		for g, i := range cur {
			cc[g] = i
		}
		c.cursor[p] = cc
	}
	return c
}

// Fingerprint implements ioa.Automaton.
func (s *System) Fingerprint(f *ioa.Fingerprinter) {
	f.AddInt("sub", s.submitted)
	for _, g := range s.groups {
		f.SetPrefix("log" + strconv.Itoa(int(g)) + ".")
		log := s.logs[g]
		if len(log) > 0 {
			f.Begin("items")
			f.Byte('=')
			for _, it := range log {
				if it.data {
					f.Byte('d')
					f.Str(it.id)
					f.Byte(':')
					f.Int(int(it.origin))
					f.Byte(':')
					f.Str(it.payload)
					for _, d := range it.dests {
						f.Byte(',')
						f.Int(int(d))
					}
				} else {
					f.Byte('p')
					f.Str(it.id)
					f.Byte(':')
					f.Int(int(it.pgroup))
					f.Byte(':')
					f.Uint(it.ts)
				}
				f.Byte('|')
			}
			f.End()
		}
	}
	f.SetPrefix("")
	for _, p := range s.procs {
		for _, g := range s.groups {
			if c := s.cursor[p][g]; c > 0 {
				f.AddInt("cur"+consumeParam(p, g), c)
			}
		}
		s.nodes[p].AddFingerprint(f)
	}
}

// brokenDrain is the seeded fault's transition: deliver every finalized
// pending message in g, whether or not it is the (ts, id) head.
func brokenDrain(n *Node, g types.GroupID) {
	st := n.gs[g]
	for {
		var victim *pending
		for _, pd := range st.pend {
			if pd.final() && (victim == nil || pd.id < victim.id) {
				victim = pd
			}
		}
		if victim == nil {
			return
		}
		st.deliver(victim)
	}
}

// seqs snapshots every node's per-group delivery history for the
// invariants.
func (s *System) seqs() []DeliverySeq {
	var out []DeliverySeq
	for _, p := range s.procs {
		for _, g := range s.groups {
			out = append(out, DeliverySeq{P: p, G: g, Deliveries: s.nodes[p].Delivered(g)})
		}
	}
	return out
}

// Invariants is the multicast invariant suite lifted to the composed
// system, plus a composition-level clock check: nodes that have consumed
// the same prefix of a group's log hold identical clocks (the determinism
// the proposal mechanism relies on).
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func([]DeliverySeq) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				return check(a.(*System).seqs())
			},
		}
	}
	return []ioa.Invariant{
		wrap("mcast no-duplicates", CheckNoDuplicates),
		wrap("mcast (ts,id) delivery order", CheckTimestampOrder),
		wrap("mcast per-group agreement", CheckPerGroupAgreement),
		wrap("mcast cross-group partial order", CheckCrossGroupOrder),
		{
			Name: "mcast clock determinism",
			Check: func(a ioa.Automaton) error {
				s := a.(*System)
				for _, g := range s.groups {
					for i := 0; i < len(s.procs); i++ {
						for j := i + 1; j < len(s.procs); j++ {
							p, q := s.procs[i], s.procs[j]
							if s.cursor[p][g] == s.cursor[q][g] && s.nodes[p].Clock(g) != s.nodes[q].Clock(g) {
								return fmt.Errorf("group %v: %v and %v consumed %d entries but clocks differ: %d vs %d",
									g, p, q, s.cursor[p][g], s.nodes[p].Clock(g), s.nodes[q].Clock(g))
							}
						}
					}
				}
				return nil
			},
		},
	}
}

// ExploreConfig bounds the multicast exploration (experiment E14's
// checker-driven companion).
type ExploreConfig struct {
	// Procs is the number of nodes, all members of every group (default 2).
	Procs int
	// Groups is the number of groups (default 2).
	Groups int
	// MaxMsgs bounds the submissions (default 2).
	MaxMsgs int
	// MaxDepth bounds the BFS depth (0 = unlimited: the space is finite).
	MaxDepth int
	// MaxStates caps distinct states (default 1 << 21).
	MaxStates int
	// Parallel is the number of BFS workers (0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

func (c ExploreConfig) fill() ExploreConfig {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.MaxMsgs <= 0 {
		c.MaxMsgs = 2
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 21
	}
	return c
}

// Explore exhaustively model-checks the composed multicast system: every
// interleaving of submissions, per-group broadcast orderings, and
// consumption speeds within the bounds, with the full invariant suite
// asserted at every distinct state. The destination menu is every
// multi-group subset of size ≥ 2 plus every singleton, so single-group
// and cross-group traffic interleave.
func Explore(cfg ExploreConfig) (ioa.ExploreResult, error) {
	cfg = cfg.fill()
	var menu [][]types.GroupID
	groups := types.RangeGroups(cfg.Groups)
	for _, g := range groups {
		menu = append(menu, []types.GroupID{g})
	}
	if cfg.Groups >= 2 {
		menu = append(menu, groups)
	}
	sys := NewSystem(cfg.Procs, cfg.Groups, menu, cfg.MaxMsgs)
	return ioa.Explore(sys, Env(), ioa.ExploreConfig{
		MaxStates:  cfg.MaxStates,
		MaxDepth:   cfg.MaxDepth,
		Parallel:   cfg.Parallel,
		Invariants: Invariants(),
	})
}
