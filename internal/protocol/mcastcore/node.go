// Package mcastcore is the pure protocol core of the cross-group atomic
// multicast coordinator: the state machine that gives a sharded deployment
// (N independent DVS/TO groups) a genuine partial order over multi-group
// messages, in the style of Skeen's timestamp-merge algorithm.
//
// The protocol rides on the per-group total orders the DVS/TO stacks
// already provide. A multi-group message m addressed to a destination set D
// is broadcast through the total order of every group in D. When group g
// orders m's data, every member of g deterministically assigns g's
// timestamp proposal ts_g = clock_g + 1 (the per-group Lamport clock all
// members of g evolve identically, because they consume identical total
// orders); the message's origin — a member of every destination group —
// broadcasts the proposal into every other group of D (members of g
// already hold g's proposal). When a group has collected
// proposals from all of D, the final timestamp is the deterministic
// max-merge of the proposals, and m becomes deliverable. Each group
// delivers its pending multi-group messages in (final timestamp, message
// id) order, and only when the head of that order is final — a pending
// message with a smaller effective timestamp might still finalize below the
// head, so delivering early would reorder. Receiving any proposal advances
// the group clock to at least the proposed value, which is what makes later
// proposals in the group exceed every final already fixed there.
//
// The result is the atomic-multicast partial order: any two groups that
// both deliver two multi-group messages deliver them in the same relative
// order (both order by the same global (final, id) key), while disjoint
// groups proceed independently — the property that lets sharded state scale
// where a single atomic broadcast cannot.
//
// Like dvscore and tocore, this package holds no goroutines, channels,
// clocks, or randomness: it is a deterministic value-semantics state
// machine driven exclusively through Step, observable and replayable
// macro-step by macro-step (internal/conform), and explorable by the model
// checker (System in explore.go).
package mcastcore

import (
	"strconv"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Delivered is one multi-group delivery performed by a group: the message
// and the final merged timestamp it was ordered by.
type Delivered struct {
	ID      string
	Origin  types.ProcID
	Payload string
	TS      uint64
}

// pending is one multi-group message a group knows about but has not yet
// delivered. Proposals may arrive before the data (another group's proposal
// can overtake the data broadcast in this group's total order), so dests
// and payload are unknown until haveData.
type pending struct {
	id       string
	origin   types.ProcID
	dests    []types.GroupID // canonical (sorted, deduped); nil until haveData
	payload  string
	haveData bool
	props    map[types.GroupID]uint64
}

// group is the per-group protocol state of a node: the group's Lamport
// clock, the multi-group messages pending in the group, the ids already
// delivered (so late duplicates cannot resurrect a ghost entry), and the
// delivery history the invariants are checked over.
type group struct {
	clock     uint64
	pend      map[string]*pending
	done      map[string]bool
	delivered []Delivered
}

// Node is the multicast coordinator state of one process across all the
// groups it participates in. All state transitions go through Step.
type Node struct {
	p      types.ProcID
	groups []types.GroupID // sorted
	nextID uint64
	gs     map[types.GroupID]*group
}

// NewNode builds the coordinator state for process p participating in the
// given groups (sorted and deduplicated internally).
func NewNode(p types.ProcID, groups []types.GroupID) *Node {
	gs := types.DedupGroups(append([]types.GroupID(nil), groups...))
	n := &Node{p: p, groups: gs, gs: make(map[types.GroupID]*group, len(gs))}
	for _, g := range gs {
		n.gs[g] = &group{pend: make(map[string]*pending), done: make(map[string]bool)}
	}
	return n
}

// P returns the process id.
func (n *Node) P() types.ProcID { return n.p }

// Groups returns the node's groups (shared, sorted; read-only).
func (n *Node) Groups() []types.GroupID { return n.groups }

// Clock returns group g's Lamport clock at this node.
func (n *Node) Clock(g types.GroupID) uint64 {
	if st, ok := n.gs[g]; ok {
		return st.clock
	}
	return 0
}

// PendingCount returns the number of multi-group messages pending in g.
func (n *Node) PendingCount(g types.GroupID) int {
	if st, ok := n.gs[g]; ok {
		return len(st.pend)
	}
	return 0
}

// Delivered returns a copy of group g's delivery history, in delivery
// order.
func (n *Node) Delivered(g types.GroupID) []Delivered {
	st, ok := n.gs[g]
	if !ok {
		return nil
	}
	return append([]Delivered(nil), st.delivered...)
}

// DeliveredCount returns the number of multi-group messages g delivered.
func (n *Node) DeliveredCount(g types.GroupID) int {
	if st, ok := n.gs[g]; ok {
		return len(st.delivered)
	}
	return 0
}

// Clone returns an independent deep copy.
func (n *Node) Clone() *Node {
	c := &Node{
		p:      n.p,
		groups: append([]types.GroupID(nil), n.groups...),
		nextID: n.nextID,
		gs:     make(map[types.GroupID]*group, len(n.gs)),
	}
	for gid, st := range n.gs {
		cs := &group{
			clock:     st.clock,
			pend:      make(map[string]*pending, len(st.pend)),
			done:      make(map[string]bool, len(st.done)),
			delivered: append([]Delivered(nil), st.delivered...),
		}
		for id, pd := range st.pend {
			cp := &pending{
				id:       pd.id,
				origin:   pd.origin,
				dests:    append([]types.GroupID(nil), pd.dests...),
				payload:  pd.payload,
				haveData: pd.haveData,
				props:    make(map[types.GroupID]uint64, len(pd.props)),
			}
			for g, ts := range pd.props {
				cp.props[g] = ts
			}
			cs.pend[id] = cp
		}
		for id := range st.done {
			cs.done[id] = true
		}
		c.gs[gid] = cs
	}
	return c
}

// AddFingerprint appends the node's state to a composite fingerprint.
// Every field that can differ between states is written.
func (n *Node) AddFingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix("mc" + strconv.Itoa(int(n.p)) + ".")
	f.AddInt("id", int(n.nextID))
	for _, gid := range n.groups {
		st := n.gs[gid]
		pre := "g" + strconv.Itoa(int(gid)) + "."
		f.SetPrefix("mc" + strconv.Itoa(int(n.p)) + "." + pre)
		f.AddInt("clock", int(st.clock))
		if len(st.pend) > 0 {
			ids := make([]string, 0, len(st.pend))
			for id := range st.pend {
				ids = append(ids, id)
			}
			sortStrings(ids)
			f.Begin("pend")
			f.Byte('=')
			for _, id := range ids {
				pd := st.pend[id]
				f.Str(pd.id)
				f.Byte(':')
				f.Int(int(pd.origin))
				f.Byte(':')
				if pd.haveData {
					f.Byte('d')
					f.Str(pd.payload)
					for _, d := range pd.dests {
						f.Byte(',')
						f.Int(int(d))
					}
				}
				f.Byte(':')
				for _, d := range sortedPropGroups(pd.props) {
					f.Int(int(d))
					f.Byte('>')
					f.Uint(pd.props[d])
					f.Byte(';')
				}
				f.Byte('|')
			}
			f.End()
		}
		if len(st.done) > 0 {
			ids := make([]string, 0, len(st.done))
			for id := range st.done {
				ids = append(ids, id)
			}
			sortStrings(ids)
			f.Begin("done")
			f.Byte('=')
			for _, id := range ids {
				f.Str(id)
				f.Byte('|')
			}
			f.End()
		}
		if len(st.delivered) > 0 {
			f.Begin("dlv")
			f.Byte('=')
			for _, d := range st.delivered {
				f.Str(d.ID)
				f.Byte(':')
				f.Int(int(d.Origin))
				f.Byte(':')
				f.Str(d.Payload)
				f.Byte(':')
				f.Uint(d.TS)
				f.Byte('|')
			}
			f.End()
		}
	}
	f.SetPrefix("")
}

// sortStrings is an allocation-free insertion sort for the small id slices
// fingerprinting walks.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortedPropGroups(props map[types.GroupID]uint64) []types.GroupID {
	out := make([]types.GroupID, 0, len(props))
	for g := range props {
		out = append(out, g)
	}
	types.SortGroups(out)
	return out
}

// effTs is the message's current lower bound on its final timestamp: the
// maximum proposal collected so far. The final timestamp is the max over
// all destination groups, so effTs only ever grows toward it.
func (pd *pending) effTs() uint64 {
	var ts uint64
	for _, v := range pd.props {
		if v > ts {
			ts = v
		}
	}
	return ts
}

// final reports whether the message's timestamp is decided in this group:
// the data has been ordered here (so the destination set is known) and a
// proposal from every destination group has been collected.
func (pd *pending) final() bool {
	return pd.haveData && len(pd.props) == len(pd.dests)
}

// OnSubmit is the mc-submit action: it assigns the next locally unique
// message id. Drive it through Step (EvSubmit); corestep guards direct use.
func (n *Node) OnSubmit() string {
	id := strconv.Itoa(int(n.p)) + "." + strconv.FormatUint(n.nextID, 10)
	n.nextID++
	return id
}

// OnData is the mc-data action: it applies the ordering of m's data in group g: assign g's proposal
// (clock+1) and remember the message. Duplicates and already-delivered ids
// are ignored. It reports whether this was the first data ordering (the
// origin then disseminates g's proposal).
func (n *Node) OnData(g types.GroupID, id string, origin types.ProcID, dests []types.GroupID, payload string) bool {
	st := n.gs[g]
	if st.done[id] {
		return false
	}
	pd, ok := st.pend[id]
	if ok && pd.haveData {
		return false
	}
	if !ok {
		pd = &pending{id: id, props: make(map[types.GroupID]uint64, len(dests))}
		st.pend[id] = pd
	}
	pd.origin = origin
	pd.dests = dests
	pd.payload = payload
	pd.haveData = true
	st.clock++
	pd.props[g] = st.clock
	return true
}

// OnProposal is the mc-proposal action: it applies a proposal from group pg for message id, carried by
// group g's total order. The group clock advances to at least the proposed
// value (the Lamport bump that keeps later finals above delivered ones);
// duplicate proposals are idempotent.
func (n *Node) OnProposal(g types.GroupID, pg types.GroupID, id string, ts uint64) {
	st := n.gs[g]
	if ts > st.clock {
		st.clock = ts
	}
	if st.done[id] {
		return
	}
	pd, ok := st.pend[id]
	if !ok {
		pd = &pending{id: id, props: make(map[types.GroupID]uint64, 2)}
		st.pend[id] = pd
	}
	if _, have := pd.props[pg]; !have {
		pd.props[pg] = ts
	}
}

// deliverable returns the next message group g must deliver, or nil: the
// pending message minimal in (effective timestamp, id) order, and only if
// it is final — a non-final head could still finalize below everything
// behind it, so nothing may be delivered past it.
func (st *group) deliverable() *pending {
	var best *pending
	var bestTs uint64
	for _, pd := range st.pend {
		ts := pd.effTs()
		if best == nil || ts < bestTs || (ts == bestTs && pd.id < best.id) {
			best, bestTs = pd, ts
		}
	}
	if best == nil || !best.final() {
		return nil
	}
	return best
}

// deliver removes pd from the pending set and appends it to the delivery
// history.
func (st *group) deliver(pd *pending) Delivered {
	d := Delivered{ID: pd.id, Origin: pd.origin, Payload: pd.payload, TS: pd.effTs()}
	delete(st.pend, pd.id)
	st.done[pd.id] = true
	st.delivered = append(st.delivered, d)
	return d
}
