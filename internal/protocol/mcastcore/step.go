package mcastcore

import (
	"errors"

	"repro/internal/types"
)

// This file is the runtime face of the multicast core: an explicit
// input-event / output-effect interface in the exact shape of tocore's.
// One Step call is one atomic macro-step — apply an input event, then
// drain every enabled delivery — and the effects it emits into the Outbox
// are the only way anything leaves the state machine. The runtime shell
// (internal/mcast) translates per-group TO deliveries into Events and
// applies Effects; the conformance replayer (internal/conform)
// re-executes recorded (Event, Effects) logs through the same code and
// flags any divergence.

// Event is one input of the multicast coordinator automaton.
type Event interface{ mcEvent() }

// EvSubmit is the local mcast(dests, payload)_p input: the application
// submits a multi-group message. The core assigns the message id.
type EvSubmit struct {
	Dests   []types.GroupID
	Payload string
}

// EvData is the delivery of a multi-group message's data in group Group's
// total order (every member of Group applies this at the same point in the
// group's delivery sequence).
type EvData struct {
	Group   types.GroupID
	ID      string
	Origin  types.ProcID
	Dests   []types.GroupID
	Payload string
}

// EvProposal is the delivery of group PGroup's timestamp proposal for
// message ID, carried by group Group's total order.
type EvProposal struct {
	Group  types.GroupID
	PGroup types.GroupID
	ID     string
	TS     uint64
}

func (EvSubmit) mcEvent()   {}
func (EvData) mcEvent()     {}
func (EvProposal) mcEvent() {}

// Effect is one output of a macro-step: a broadcast for a group's total
// order below, or a multicast delivery for the application above.
type Effect interface{ mcEffect() }

// FxSendData asks the shell to broadcast the message's data through group
// To's total order (emitted once per destination group at the origin).
type FxSendData struct {
	To      types.GroupID
	ID      string
	Origin  types.ProcID
	Dests   []types.GroupID
	Payload string
}

// FxSendProp asks the shell to broadcast group PGroup's timestamp proposal
// for message ID through group To's total order (emitted at the origin
// only — the one process guaranteed to sit in every destination group —
// and only toward the other destination groups: every member of PGroup
// assigns PGroup's proposal deterministically when the data is ordered, so
// echoing it back into PGroup would be redundant).
type FxSendProp struct {
	To     types.GroupID
	PGroup types.GroupID
	ID     string
	TS     uint64
}

// FxDeliver reports a finalized multicast delivery in group Group, ordered
// by (TS, ID) within the group.
type FxDeliver struct {
	Group   types.GroupID
	ID      string
	Origin  types.ProcID
	Payload string
	TS      uint64
}

func (FxSendData) mcEffect() {}
func (FxSendProp) mcEffect() {}
func (FxDeliver) mcEffect()  {}

// Outbox collects the effects of one macro-step, in emission order.
type Outbox struct{ Effects []Effect }

func (o *Outbox) add(fx Effect) { o.Effects = append(o.Effects, fx) }

// ErrBadEvent reports an event the coordinator cannot apply: a destination
// set that is empty, not canonical (sorted, deduplicated), or containing a
// group this node is not a member of, or a carrier group the node does not
// participate in. The shell drops such events and continues.
var ErrBadEvent = errors.New("mcastcore: malformed event")

func (n *Node) checkDests(dests []types.GroupID) error {
	if len(dests) == 0 {
		return ErrBadEvent
	}
	for i, g := range dests {
		if i > 0 && dests[i-1] >= g {
			return ErrBadEvent
		}
		if !types.ContainsGroup(n.groups, g) {
			return ErrBadEvent
		}
	}
	return nil
}

// Step applies one input event and then drains every enabled delivery: one
// atomic macro-step of the multicast coordinator. A non-nil error means
// the event was rejected and the node was left unchanged.
func Step(n *Node, ev Event, out *Outbox) error {
	switch e := ev.(type) {
	case EvSubmit:
		if err := n.checkDests(e.Dests); err != nil {
			return err
		}
		id := n.OnSubmit()
		dests := append([]types.GroupID(nil), e.Dests...)
		for _, g := range dests {
			out.add(FxSendData{To: g, ID: id, Origin: n.p, Dests: dests, Payload: e.Payload})
		}
		// No group state changes until the data comes back through the
		// groups' total orders, so there is nothing to drain.
		return nil
	case EvData:
		if !types.ContainsGroup(n.groups, e.Group) {
			return ErrBadEvent
		}
		if err := n.checkDests(e.Dests); err != nil {
			return err
		}
		if !types.ContainsGroup(e.Dests, e.Group) {
			return ErrBadEvent
		}
		if n.OnData(e.Group, e.ID, e.Origin, append([]types.GroupID(nil), e.Dests...), e.Payload) && n.p == e.Origin {
			ts := n.gs[e.Group].clock
			for _, g := range e.Dests {
				if g != e.Group {
					out.add(FxSendProp{To: g, PGroup: e.Group, ID: e.ID, TS: ts})
				}
			}
		}
		drain(n, e.Group, out)
		return nil
	case EvProposal:
		if !types.ContainsGroup(n.groups, e.Group) {
			return ErrBadEvent
		}
		n.OnProposal(e.Group, e.PGroup, e.ID, e.TS)
		drain(n, e.Group, out)
		return nil
	}
	return ErrBadEvent
}

// drain delivers every message group g is now obliged to deliver, in
// (final timestamp, id) order, emitting one FxDeliver per message. Only
// the carrier group of the event can have become deliverable: all protocol
// state is per-group, so an event carried by g never changes another
// group's pending set.
func drain(n *Node, g types.GroupID, out *Outbox) {
	st := n.gs[g]
	for {
		pd := st.deliverable()
		if pd == nil {
			return
		}
		d := st.deliver(pd)
		out.add(FxDeliver{Group: g, ID: d.ID, Origin: d.Origin, Payload: d.Payload, TS: d.TS})
	}
}
