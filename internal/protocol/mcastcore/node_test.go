package mcastcore

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

func mustStep(t *testing.T, n *Node, ev Event) []Effect {
	t.Helper()
	var out Outbox
	if err := Step(n, ev, &out); err != nil {
		t.Fatalf("Step(%+v): %v", ev, err)
	}
	return out.Effects
}

// drive pushes one node through a scripted sequence of per-group
// total-order deliveries.
func delivers(effects []Effect) []FxDeliver {
	var out []FxDeliver
	for _, fx := range effects {
		if d, ok := fx.(FxDeliver); ok {
			out = append(out, d)
		}
	}
	return out
}

// TestSubmitEmitsDataPerGroup checks the submit path: one FxSendData per
// destination group, in sorted group order, with a core-assigned unique id.
func TestSubmitEmitsDataPerGroup(t *testing.T) {
	n := NewNode(3, types.RangeGroups(3))
	fx := mustStep(t, n, EvSubmit{Dests: []types.GroupID{0, 2}, Payload: "a"})
	if len(fx) != 2 {
		t.Fatalf("want 2 effects, got %d: %+v", len(fx), fx)
	}
	var ids []string
	for i, want := range []types.GroupID{0, 2} {
		sd, ok := fx[i].(FxSendData)
		if !ok || sd.To != want || sd.Origin != 3 || sd.Payload != "a" {
			t.Fatalf("effect %d: want FxSendData to %v, got %+v", i, want, fx[i])
		}
		ids = append(ids, sd.ID)
	}
	if ids[0] != ids[1] {
		t.Fatalf("one message, two ids: %v", ids)
	}
	fx2 := mustStep(t, n, EvSubmit{Dests: []types.GroupID{1}, Payload: "b"})
	if sd := fx2[0].(FxSendData); sd.ID == ids[0] {
		t.Fatalf("second submit reused id %q", sd.ID)
	}
}

// TestSubmitRejectsBadDests checks destination-set validation: empty,
// unsorted, duplicated, and non-member sets are all rejected without state
// change.
func TestSubmitRejectsBadDests(t *testing.T) {
	n := NewNode(0, types.RangeGroups(2))
	for _, dests := range [][]types.GroupID{nil, {1, 0}, {0, 0}, {0, 5}} {
		var out Outbox
		if err := Step(n, EvSubmit{Dests: dests, Payload: "x"}, &out); err == nil {
			t.Fatalf("submit to %v: want error", dests)
		}
	}
	if n.nextID != 0 {
		t.Fatalf("rejected submits consumed ids: nextID=%d", n.nextID)
	}
}

// TestSingleGroupDelivery runs the degenerate single-destination flow end
// to end on one node: a single-group message needs no proposal exchange —
// every member holds the full proposal set (its own group's) the moment
// the data is ordered, so it delivers at the data step.
func TestSingleGroupDelivery(t *testing.T) {
	n := NewNode(0, types.RangeGroups(1))
	sub := mustStep(t, n, EvSubmit{Dests: []types.GroupID{0}, Payload: "a"})
	sd := sub[0].(FxSendData)

	fx := mustStep(t, n, EvData{Group: 0, ID: sd.ID, Origin: 0, Dests: sd.Dests, Payload: "a"})
	ds := delivers(fx)
	if len(fx) != 1 || len(ds) != 1 || ds[0].ID != sd.ID || ds[0].TS != 1 || ds[0].Group != 0 {
		t.Fatalf("want exactly one delivery of %q at ts 1, got %+v", sd.ID, fx)
	}
	if got := n.Delivered(0); len(got) != 1 || got[0].Payload != "a" {
		t.Fatalf("history: %+v", got)
	}
}

// TestMaxMergeFinalTimestamp checks the Skeen merge on a two-group
// message: the final timestamp is the max of the groups' proposals and the
// message is delivered at that timestamp in both groups.
func TestMaxMergeFinalTimestamp(t *testing.T) {
	n := NewNode(0, types.RangeGroups(2))
	both := []types.GroupID{0, 1}

	// Group 1 has seen traffic before: its clock is ahead.
	mustStep(t, n, EvData{Group: 1, ID: "9.0", Origin: 9, Dests: []types.GroupID{1}, Payload: "pre"})
	mustStep(t, n, EvData{Group: 1, ID: "9.1", Origin: 9, Dests: []types.GroupID{1}, Payload: "pre2"})

	sub := mustStep(t, n, EvSubmit{Dests: both, Payload: "m"})
	id := sub[0].(FxSendData).ID

	// Data ordered in both groups: proposals 1 (group 0) and 3 (group 1),
	// each broadcast toward the other destination group only.
	fx0 := mustStep(t, n, EvData{Group: 0, ID: id, Origin: 0, Dests: both, Payload: "m"})
	fx1 := mustStep(t, n, EvData{Group: 1, ID: id, Origin: 0, Dests: both, Payload: "m"})
	p0 := fx0[0].(FxSendProp)
	p1 := fx1[0].(FxSendProp)
	if p0.TS != 1 || p0.To != 1 || p1.TS != 3 || p1.To != 0 {
		t.Fatalf("proposals: got %+v and %+v, want ts 1 to group 1 and ts 3 to group 0", p0, p1)
	}

	// Each group receives the other's proposal; delivery at max(1, 3) = 3.
	fx := mustStep(t, n, EvProposal{Group: 0, PGroup: 1, ID: id, TS: p1.TS})
	if ds := delivers(fx); len(ds) != 1 || ds[0].TS != 3 {
		t.Fatalf("group 0: want delivery at ts 3, got %+v", fx)
	}
	fx = mustStep(t, n, EvProposal{Group: 1, PGroup: 0, ID: id, TS: p0.TS})
	if ds := delivers(fx); len(ds) != 1 || ds[0].TS != 3 {
		t.Fatalf("group 1: want delivery at ts 3, got %+v", fx)
	}
	if err := CheckAll([]DeliverySeq{
		{P: 0, G: 0, Deliveries: n.Delivered(0)},
		{P: 0, G: 1, Deliveries: n.Delivered(1)},
	}); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHeadOfLineBlocksDelivery checks the safety rule the (ts, id) queue
// exists for: a finalized message must wait while a non-final message with
// a smaller effective timestamp is ahead of it, because the latter could
// still finalize below.
func TestHeadOfLineBlocksDelivery(t *testing.T) {
	n := NewNode(5, types.RangeGroups(2))
	both := []types.GroupID{0, 1}

	// m1 (from node 1) is ordered first in group 0: proposal 1, not final
	// until group 1's proposal arrives.
	mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: both, Payload: "m1"})
	// m2 (from node 2) ordered second: proposal 2, then finalized at 2 by
	// group 1's smaller proposal.
	mustStep(t, n, EvData{Group: 0, ID: "2.0", Origin: 2, Dests: both, Payload: "m2"})
	fx := mustStep(t, n, EvProposal{Group: 0, PGroup: 1, ID: "2.0", TS: 1})
	if len(delivers(fx)) != 0 {
		t.Fatalf("m2 delivered past non-final m1: %+v", fx)
	}

	// m1 finalizes at max(1, 4) = 4 > 2: m2 then delivers first, m1 after.
	fx = mustStep(t, n, EvProposal{Group: 0, PGroup: 1, ID: "1.0", TS: 4})
	ds := delivers(fx)
	if len(ds) != 2 || ds[0].ID != "2.0" || ds[0].TS != 2 || ds[1].ID != "1.0" || ds[1].TS != 4 {
		t.Fatalf("want m2@2 then m1@4, got %+v", ds)
	}
}

// TestProposalBeforeData checks the overtaking case: another group's
// proposal arrives through this group's order before the data does, and
// the message still delivers exactly once with the right final timestamp.
func TestProposalBeforeData(t *testing.T) {
	n := NewNode(5, types.RangeGroups(2))
	both := []types.GroupID{0, 1}

	fx := mustStep(t, n, EvProposal{Group: 0, PGroup: 1, ID: "1.0", TS: 7})
	if len(delivers(fx)) != 0 {
		t.Fatalf("delivered before data: %+v", fx)
	}
	// The Lamport bump: clock advanced to the proposal.
	if n.Clock(0) != 7 {
		t.Fatalf("clock after proposal: %d, want 7", n.Clock(0))
	}
	// Once the data is ordered, group 0 assigns its own proposal past the
	// bump (8 > 7), completing the set: delivery fires at the data step.
	fx = mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: both, Payload: "m"})
	ds := delivers(fx)
	if len(ds) != 1 || ds[0].TS != 8 {
		t.Fatalf("want delivery at ts 8 (data after bump = 8 > 7), got %+v", fx)
	}
}

// TestDuplicatesIdempotent checks that re-ordered duplicates of data and
// proposals (VS retransmission artifacts) neither re-deliver nor resurrect
// completed messages.
func TestDuplicatesIdempotent(t *testing.T) {
	n := NewNode(0, types.RangeGroups(1))
	one := []types.GroupID{0}
	mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: one, Payload: "m"})
	mustStep(t, n, EvProposal{Group: 0, PGroup: 0, ID: "1.0", TS: 1})
	if got := n.DeliveredCount(0); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	// Late duplicates of both the data and the proposal.
	fx := mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: one, Payload: "m"})
	fx = append(fx, mustStep(t, n, EvProposal{Group: 0, PGroup: 0, ID: "1.0", TS: 1})...)
	if len(fx) != 0 {
		t.Fatalf("duplicates produced effects: %+v", fx)
	}
	if got := n.DeliveredCount(0); got != 1 {
		t.Fatalf("after duplicates: delivered %d, want 1", got)
	}
	if n.PendingCount(0) != 0 {
		t.Fatalf("duplicate resurrected a pending entry")
	}
}

// TestOnlyOriginProposes checks the dissemination rule: a non-origin
// member assigns the proposal locally but does not broadcast it.
func TestOnlyOriginProposes(t *testing.T) {
	n := NewNode(5, types.RangeGroups(2))
	fx := mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: []types.GroupID{0, 1}, Payload: "m"})
	if len(fx) != 0 {
		t.Fatalf("non-origin emitted effects on data: %+v", fx)
	}
	if n.Clock(0) != 1 {
		t.Fatalf("non-origin did not assign the proposal: clock %d", n.Clock(0))
	}
}

// TestCloneIndependence checks that Clone is a deep copy: mutating the
// original does not leak into the clone's fingerprint.
func TestCloneIndependence(t *testing.T) {
	n := NewNode(0, types.RangeGroups(2))
	mustStep(t, n, EvData{Group: 0, ID: "1.0", Origin: 1, Dests: []types.GroupID{0, 1}, Payload: "m"})
	c := n.Clone()
	before := fpOf(c)
	mustStep(t, n, EvProposal{Group: 0, PGroup: 1, ID: "1.0", TS: 9})
	mustStep(t, n, EvData{Group: 1, ID: "1.0", Origin: 1, Dests: []types.GroupID{0, 1}, Payload: "m"})
	if got := fpOf(c); got != before {
		t.Fatalf("clone changed when original stepped: %q vs %q", before, got)
	}
	if fpOf(n) == before {
		t.Fatalf("original did not change")
	}
}

func fpOf(n *Node) string {
	var f ioa.Fingerprinter
	f.Reset()
	f.SetRecording(true)
	n.AddFingerprint(&f)
	return f.String()
}

// TestCrossGroupOrderViolationCaught checks the checker itself: a
// fabricated pair of histories that disagree on the relative order of two
// shared messages must be rejected.
func TestCrossGroupOrderViolationCaught(t *testing.T) {
	a := DeliverySeq{P: 0, G: 0, Deliveries: []Delivered{
		{ID: "1.0", Origin: 1, Payload: "x", TS: 1},
		{ID: "2.0", Origin: 2, Payload: "y", TS: 2},
	}}
	b := DeliverySeq{P: 0, G: 1, Deliveries: []Delivered{
		{ID: "2.0", Origin: 2, Payload: "y", TS: 2},
		{ID: "1.0", Origin: 1, Payload: "x", TS: 3},
	}}
	if err := CheckCrossGroupOrder([]DeliverySeq{a, b}); err == nil {
		t.Fatalf("reversed common order not caught")
	}
	// And the (ts, id) order check catches b's non-monotone timestamps
	// being fine (3 after 2 is monotone) but a true regression is not.
	bad := DeliverySeq{P: 0, G: 0, Deliveries: []Delivered{
		{ID: "1.0", TS: 5}, {ID: "2.0", TS: 4},
	}}
	if err := CheckTimestampOrder([]DeliverySeq{bad}); err == nil {
		t.Fatalf("timestamp regression not caught")
	}
}
