package mcastcore

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Pinned counts for the default exploration (2 processes, 2 groups, 2
// submissions over the menu {0}, {1}, {0,1}): the space is exhausted, and
// any core edit that changes the reachable state graph moves these numbers.
const (
	pinnedStates = 8863
	pinnedEdges  = 25210
)

// TestExploreSmoke exhaustively model-checks the default multicast
// configuration: every interleaving of submissions, per-group broadcast
// orderings, and consumption speeds, with the full invariant suite (no
// duplicates, (ts,id) order, per-group agreement, cross-group partial
// order, clock determinism) at every distinct state. The state and edge
// counts are pinned: treat a delta like a failed test unless the protocol
// deliberately changed (then re-pin here and in EXPERIMENTS.md).
func TestExploreSmoke(t *testing.T) {
	res, err := Explore(ExploreConfig{})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Truncated {
		t.Fatalf("exploration truncated: states=%d edges=%d", res.States, res.Edges)
	}
	if res.States != pinnedStates || res.Edges != pinnedEdges {
		t.Fatalf("explore counts moved: states=%d edges=%d, pinned %d/%d",
			res.States, res.Edges, pinnedStates, pinnedEdges)
	}
}

// TestExploreParallelDeterministic checks that the worker count does not
// change the counts (the level-synchronous BFS guarantee, re-asserted for
// the new automaton).
func TestExploreParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Explore(ExploreConfig{Parallel: 3})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.States != pinnedStates || res.Edges != pinnedEdges {
		t.Fatalf("parallel explore diverged: states=%d edges=%d, pinned %d/%d",
			res.States, res.Edges, pinnedStates, pinnedEdges)
	}
}

// TestExploreCatchesBrokenMerge seeds a deliberate protocol bug through
// the exploration to prove the invariant suite has teeth: delivering
// non-final heads (skipping the head-of-line wait) must violate the
// cross-group partial order somewhere in the explored space.
func TestExploreCatchesBrokenMerge(t *testing.T) {
	menu := [][]types.GroupID{{0}, {0, 1}}
	sys := NewSystem(2, 2, menu, 2)
	sys.breakHeadWait = true
	_, err := ioa.Explore(sys, Env(), ioa.ExploreConfig{
		MaxStates:  200000,
		Invariants: Invariants(),
	})
	if err == nil {
		t.Fatalf("broken head-of-line wait survived exploration")
	}
	t.Logf("caught as expected: %v", err)
}
