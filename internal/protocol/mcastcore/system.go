package mcastcore

import (
	"fmt"

	"repro/internal/types"
)

// This file states the multicast correctness conditions as checks over
// delivery histories, so the same formulas run in three places: as
// exploration invariants (explore.go), in the conformance replayer's
// cross-node suite (internal/conform), and in runtime soaks. A history is
// identified by the (process, group) pair that produced it.

// DeliverySeq is the multicast delivery history one process observed in
// one group, in delivery order.
type DeliverySeq struct {
	P          types.ProcID
	G          types.GroupID
	Deliveries []Delivered
}

// CheckPerGroupAgreement verifies that, within each group, the delivery
// histories of all members are prefix-consistent: one is a prefix of the
// other (members consume the same group total order at different speeds,
// so their multicast histories may differ only in length).
func CheckPerGroupAgreement(seqs []DeliverySeq) error {
	byGroup := make(map[types.GroupID][]DeliverySeq)
	for _, s := range seqs {
		byGroup[s.G] = append(byGroup[s.G], s)
	}
	for g, members := range byGroup {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				n := len(a.Deliveries)
				if len(b.Deliveries) < n {
					n = len(b.Deliveries)
				}
				for k := 0; k < n; k++ {
					if a.Deliveries[k] != b.Deliveries[k] {
						return fmt.Errorf("group %v: processes %v and %v disagree at delivery %d: %+v vs %+v",
							g, a.P, b.P, k, a.Deliveries[k], b.Deliveries[k])
					}
				}
			}
		}
	}
	return nil
}

// CheckTimestampOrder verifies that every history is ordered by the global
// multicast key: final timestamps non-decreasing, ties broken by message
// id ascending.
func CheckTimestampOrder(seqs []DeliverySeq) error {
	for _, s := range seqs {
		for k := 1; k < len(s.Deliveries); k++ {
			prev, cur := s.Deliveries[k-1], s.Deliveries[k]
			if cur.TS < prev.TS || (cur.TS == prev.TS && cur.ID <= prev.ID) {
				return fmt.Errorf("process %v group %v: deliveries out of (ts,id) order at %d: (%d,%q) then (%d,%q)",
					s.P, s.G, k, prev.TS, prev.ID, cur.TS, cur.ID)
			}
		}
	}
	return nil
}

// CheckCrossGroupOrder verifies the atomic-multicast partial order: any
// two histories (across any processes and any groups) deliver the
// messages they have in common in the same relative order. Within a group
// this is implied by agreement; across groups it is the property the
// timestamp merge exists to provide — two groups that both deliver m and
// m' deliver them in the same order.
func CheckCrossGroupOrder(seqs []DeliverySeq) error {
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if err := checkCommonOrder(seqs[i], seqs[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkCommonOrder checks that the ids common to a and b appear in the
// same relative order in both, and carry identical (origin, payload,
// final-timestamp) attributes.
func checkCommonOrder(a, b DeliverySeq) error {
	posB := make(map[string]int, len(b.Deliveries))
	for k, d := range b.Deliveries {
		posB[d.ID] = k
	}
	last := -1
	var lastID string
	for _, d := range a.Deliveries {
		k, ok := posB[d.ID]
		if !ok {
			continue
		}
		if d != b.Deliveries[k] {
			return fmt.Errorf("(%v,%v) and (%v,%v): message %q delivered with different attributes: %+v vs %+v",
				a.P, a.G, b.P, b.G, d.ID, d, b.Deliveries[k])
		}
		if k <= last {
			return fmt.Errorf("(%v,%v) and (%v,%v): cross-group order violation: %q before %q in one, after in the other",
				a.P, a.G, b.P, b.G, lastID, d.ID)
		}
		last, lastID = k, d.ID
	}
	return nil
}

// CheckNoDuplicates verifies that no history delivers the same message id
// twice.
func CheckNoDuplicates(seqs []DeliverySeq) error {
	for _, s := range seqs {
		seen := make(map[string]bool, len(s.Deliveries))
		for k, d := range s.Deliveries {
			if seen[d.ID] {
				return fmt.Errorf("process %v group %v: message %q delivered twice (second at %d)", s.P, s.G, d.ID, k)
			}
			seen[d.ID] = true
		}
	}
	return nil
}

// CheckAll runs the full multicast invariant suite over the given
// histories.
func CheckAll(seqs []DeliverySeq) error {
	if err := CheckNoDuplicates(seqs); err != nil {
		return err
	}
	if err := CheckTimestampOrder(seqs); err != nil {
		return err
	}
	if err := CheckPerGroupAgreement(seqs); err != nil {
		return err
	}
	return CheckCrossGroupOrder(seqs)
}
