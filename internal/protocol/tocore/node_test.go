package tocore

import (
	"testing"

	"repro/internal/types"
)

func v(seq uint64, members ...types.ProcID) types.View {
	return types.NewView(types.ViewID{Seq: seq}, members...)
}

func newTONode(t *testing.T) (*Node, types.View) {
	t.Helper()
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	return NewNode(0, v0, true, false), v0
}

func TestTONodeInitial(t *testing.T) {
	n, v0 := newTONode(t)
	if cur, ok := n.Current(); !ok || !cur.Equal(v0) {
		t.Error("current must start at v0")
	}
	if n.Status() != StatusNormal {
		t.Error("status must start normal")
	}
	if !n.HighPrimary().IsZero() {
		t.Error("highprimary must start at g0")
	}
	out := NewNode(4, v0, false, false)
	if _, ok := out.Current(); ok {
		t.Error("outsider starts at ⊥")
	}
}

func TestLabelAssignsSequentialLabels(t *testing.T) {
	n, v0 := newTONode(t)
	n.OnBCast("a")
	n.OnBCast("b")
	for _, want := range []string{"a", "b"} {
		head, ok := n.LabelHead()
		if !ok || head != want {
			t.Fatalf("LabelHead = %q, %v (want %q)", head, ok, want)
		}
		if err := n.PerformLabel(head); err != nil {
			t.Fatal(err)
		}
	}
	m1, ok := n.GpSndLabel()
	if !ok {
		t.Fatal("no buffered label message")
	}
	if m1.L != (types.Label{ID: v0.ID, Seqno: 1, Origin: 0}) || m1.A != "a" {
		t.Errorf("first label message = %+v", m1)
	}
	if err := n.TakeGpSndLabel(m1); err != nil {
		t.Fatal(err)
	}
	m2, _ := n.GpSndLabel()
	if m2.L.Seqno != 2 {
		t.Errorf("second label seqno = %d", m2.L.Seqno)
	}
}

func TestLabelRequiresViewAndNormalStatus(t *testing.T) {
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	outsider := NewNode(4, v0, false, false)
	outsider.OnBCast("x")
	if _, ok := outsider.LabelHead(); ok {
		t.Error("labeling without a view")
	}
	n, _ := newTONode(t)
	n.OnDVSNewView(v(1, 0, 1))
	n.OnBCast("x")
	if _, ok := n.LabelHead(); ok {
		t.Error("repaired node must not label during recovery")
	}
	lit := NewNode(0, v0, true, true)
	lit.OnDVSNewView(v(1, 0, 1))
	lit.OnBCast("x")
	if _, ok := lit.LabelHead(); !ok {
		t.Error("literal Figure 5 labels during recovery (that is the printed behavior)")
	}
}

func TestRecvAppendsOrderAndConfirm(t *testing.T) {
	n, v0 := newTONode(t)
	l := types.Label{ID: v0.ID, Seqno: 1, Origin: 1}
	if err := n.OnDVSGpRcv(LabelMsg{L: l, A: "x"}, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Order(); len(got) != 1 || got[0] != l {
		t.Fatalf("order = %v", got)
	}
	if n.ConfirmEnabled() {
		t.Fatal("confirm before safe")
	}
	if err := n.OnDVSSafe(LabelMsg{L: l, A: "x"}, 1); err != nil {
		t.Fatal(err)
	}
	if !n.ConfirmEnabled() {
		t.Fatal("confirm should be enabled after safe")
	}
	if err := n.PerformConfirm(); err != nil {
		t.Fatal(err)
	}
	a, origin, ok := n.BRcvNext()
	if !ok || a != "x" || origin != 1 {
		t.Fatalf("BRcvNext = %q, %v, %v", a, origin, ok)
	}
	if err := n.PerformBRcv(a, origin); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := n.BRcvNext(); ok {
		t.Error("nothing further to report")
	}
}

func TestRecoveryExchangeAndEstablish(t *testing.T) {
	n, v0 := newTONode(t)
	// Confirmed work in v0.
	l := types.Label{ID: v0.ID, Seqno: 1, Origin: 0}
	if err := n.OnDVSGpRcv(LabelMsg{L: l, A: "pre"}, 0); err != nil {
		t.Fatal(err)
	}
	v1 := v(1, 0, 1)
	n.OnDVSNewView(v1)
	if n.Status() != StatusSend {
		t.Fatal("status must be send after newview")
	}
	sum, ok := n.GpSndSummary()
	if !ok {
		t.Fatal("summary not offered")
	}
	if len(sum.X.Ord) != 1 || sum.X.Ord[0] != l {
		t.Errorf("summary order = %v", sum.X.Ord)
	}
	if err := n.TakeGpSndSummary(sum); err != nil {
		t.Fatal(err)
	}
	if n.Status() != StatusCollect {
		t.Fatal("status must be collect after sending summary")
	}
	// Receive own summary and peer's summary: establishment.
	if err := n.OnDVSGpRcv(sum, 0); err != nil {
		t.Fatal(err)
	}
	peer := types.Summary{Con: types.Content{}, Next: 1, High: types.ViewIDZero}
	if err := n.OnDVSGpRcv(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	if n.Status() != StatusNormal || !n.Established(v1.ID) {
		t.Fatal("establishment did not happen")
	}
	if n.HighPrimary() != v1.ID {
		t.Error("highprimary not advanced")
	}
	if got := n.Order(); len(got) != 1 || got[0] != l {
		t.Errorf("established order = %v", got)
	}
	if bo := n.BuildOrder(v1.ID); len(bo) != 1 {
		t.Errorf("buildorder history = %v", bo)
	}
	// Registration now enabled exactly once.
	if !n.RegisterEnabled() {
		t.Fatal("register should be enabled after establishment")
	}
	if err := n.PerformRegister(); err != nil {
		t.Fatal(err)
	}
	if n.RegisterEnabled() {
		t.Error("register must be once per view")
	}
}

func TestEstablishmentPicksMaxHighRep(t *testing.T) {
	n, v0 := newTONode(t)
	v1 := v(1, 0, 1)
	n.OnDVSNewView(v1)
	sum, _ := n.GpSndSummary()
	if err := n.TakeGpSndSummary(sum); err != nil {
		t.Fatal(err)
	}
	lNew := types.Label{ID: types.ViewID{Seq: 9}, Seqno: 1, Origin: 1}
	peer := types.Summary{
		Con:  types.Content{lNew: "newer"},
		Ord:  []types.Label{lNew},
		Next: 2,
		High: types.ViewID{Seq: 9}, // peer established a higher primary
	}
	if err := n.OnDVSGpRcv(sum, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.OnDVSGpRcv(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	ord := n.Order()
	if len(ord) == 0 || ord[0] != lNew {
		t.Errorf("established order must start with the max-high rep's order: %v", ord)
	}
	if n.NextConfirm() != 2 {
		t.Errorf("nextconfirm = %d, want maxnextconfirm 2", n.NextConfirm())
	}
	_ = v0
}

func TestSafeExchangeMarksLabels(t *testing.T) {
	n, v0 := newTONode(t)
	l := types.Label{ID: v0.ID, Seqno: 1, Origin: 0}
	if err := n.OnDVSGpRcv(LabelMsg{L: l, A: "pre"}, 0); err != nil {
		t.Fatal(err)
	}
	v1 := v(1, 0, 1)
	n.OnDVSNewView(v1)
	sum, _ := n.GpSndSummary()
	if err := n.TakeGpSndSummary(sum); err != nil {
		t.Fatal(err)
	}
	if err := n.OnDVSGpRcv(sum, 0); err != nil {
		t.Fatal(err)
	}
	peer := types.Summary{Con: types.Content{}, Next: 1, High: types.ViewIDZero}
	if err := n.OnDVSGpRcv(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	// Safe for both summaries: exchanged labels become safe; l confirms.
	if err := n.OnDVSSafe(sum, 0); err != nil {
		t.Fatal(err)
	}
	if n.ConfirmEnabled() {
		t.Fatal("confirm before the whole exchange is safe")
	}
	if err := n.OnDVSSafe(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	if !n.ConfirmEnabled() {
		t.Fatal("confirm should be enabled once the exchange is safe")
	}
}

func TestRepairedDefersSafeExchangeUntilEstablished(t *testing.T) {
	n, v0 := newTONode(t)
	l := types.Label{ID: v0.ID, Seqno: 1, Origin: 0}
	if err := n.OnDVSGpRcv(LabelMsg{L: l, A: "pre"}, 0); err != nil {
		t.Fatal(err)
	}
	v1 := v(1, 0, 1)
	n.OnDVSNewView(v1)
	sum, _ := n.GpSndSummary()
	if err := n.TakeGpSndSummary(sum); err != nil {
		t.Fatal(err)
	}
	// Safe indications arrive BEFORE the summaries themselves (possible
	// over the amended DVS): the repaired node must not mark anything yet.
	if err := n.OnDVSSafe(sum, 0); err != nil {
		t.Fatal(err)
	}
	peer := types.Summary{Con: types.Content{}, Next: 1, High: types.ViewIDZero}
	if err := n.OnDVSSafe(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	if n.ConfirmEnabled() {
		t.Fatal("repaired node must not confirm from a partial exchange")
	}
	// Now the summaries arrive and the view establishes: the pending safe
	// exchange is applied.
	if err := n.OnDVSGpRcv(sum, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.OnDVSGpRcv(SummaryMsg{X: peer}, 1); err != nil {
		t.Fatal(err)
	}
	if !n.Established(v1.ID) {
		t.Fatal("not established")
	}
	if !n.ConfirmEnabled() {
		t.Fatal("deferred safe-exchange marking did not happen")
	}
}

func TestTONodeCloneDeep(t *testing.T) {
	n, _ := newTONode(t)
	n.OnBCast("x")
	c := n.Clone()
	if err := c.PerformLabel("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.LabelHead(); !ok {
		t.Error("clone mutation leaked")
	}
}
