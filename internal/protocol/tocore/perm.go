package tocore

import "repro/internal/types"

// PermuteMsg implements types.PermutableMsg: the label's view id and origin
// permute, the payload is opaque.
func (m LabelMsg) PermuteMsg(pi types.Perm) types.Msg {
	return LabelMsg{L: pi.Label(m.L), A: m.A}
}

// PermuteMsg implements types.PermutableMsg: the carried summary permutes.
func (m SummaryMsg) PermuteMsg(pi types.Perm) types.Msg {
	return SummaryMsg{X: pi.Summary(m.X)}
}

var (
	_ types.PermutableMsg = LabelMsg{}
	_ types.PermutableMsg = SummaryMsg{}
)

// Permute returns π(n): the DVS-TO-TO automaton of process π(p) whose state
// is the image of n's state under π. The receiver is not mutated.
//
// CAUTION: unlike the DVS layer, the Figure 5 algorithm is NOT equivariant
// under process permutations — gotstate.ChosenRep breaks ties by least
// process id and fullorder's tail sorts labels by (viewid, seqno, origin) —
// so π of a reachable TO-IMPL state need not be reachable. Permute and the
// Symmetric hooks on toimpl.Impl exist for orbit-soundness audits and
// experiments, not for sound state-space reduction; see DESIGN.md §6.7.
func (n *Node) Permute(pi types.Perm) *Node {
	p := pi.ID(n.p)
	c := &Node{
		p:           p,
		fpPre:       "t" + p.String() + ".",
		literal:     n.literal,
		current:     pi.View(n.current),
		currentOK:   n.currentOK,
		status:      n.status,
		content:     pi.Content(n.content),
		nextSeqno:   n.nextSeqno,
		buffer:      pi.Labels(n.buffer),
		safeLabels:  make(map[types.Label]struct{}, len(n.safeLabels)),
		order:       pi.Labels(n.order),
		nextConfirm: n.nextConfirm,
		nextReport:  n.nextReport,
		highPrimary: pi.ViewID(n.highPrimary),
		gotstate:    pi.GotState(n.gotstate),
		safeExch:    pi.Set(n.safeExch),
		registered:  make(map[types.ViewID]bool, len(n.registered)),
		delay:       types.CloneSeq(n.delay),
		established: make(map[types.ViewID]bool, len(n.established)),
		buildOrder:  make(map[types.ViewID][]types.Label, len(n.buildOrder)),
	}
	for l := range n.safeLabels {
		c.safeLabels[pi.Label(l)] = struct{}{}
	}
	for g, b := range n.registered {
		c.registered[pi.ViewID(g)] = b
	}
	for g, b := range n.established {
		c.established[pi.ViewID(g)] = b
	}
	for g, ord := range n.buildOrder {
		c.buildOrder[pi.ViewID(g)] = pi.Labels(ord)
	}
	return c
}
