package tocore

import "repro/internal/types"

// This file is the runtime face of the protocol core: an explicit
// input-event / output-effect interface around the Figure 5 transition
// methods. One Step call is one atomic macro-step — apply an input event,
// then fire the enabled locally-controlled actions in the fixed drain order
// until quiescent — and the effects it emits into the Outbox are the only
// way anything leaves the state machine. The runtime shell (internal/tob)
// translates DVS upcalls into Events and applies Effects; the conformance
// replayer (internal/conform) re-executes recorded (Event, Effects) logs
// through the same code and flags any divergence.

// Event is one input of the DVS-TO-TO automaton as seen at runtime: a DVS
// upcall or a client broadcast.
type Event interface{ toEvent() }

// EvBroadcast is the bcast(a)_p input.
type EvBroadcast struct{ A string }

// EvNewView is the dvs-newview(v)_p input.
type EvNewView struct{ View types.View }

// EvRecv is the dvs-gprcv(m)_{q,p} input.
type EvRecv struct {
	M    types.Msg
	From types.ProcID
}

// EvSafe is the dvs-safe(m)_{q,p} input.
type EvSafe struct {
	M    types.Msg
	From types.ProcID
}

func (EvBroadcast) toEvent() {}
func (EvNewView) toEvent()   {}
func (EvRecv) toEvent()      {}
func (EvSafe) toEvent()      {}

// Effect is one output of a macro-step: a message for the DVS layer below,
// a delivery or view report for the application above, or an observable
// internal action.
type Effect interface{ toEffect() }

// FxLabel records the internal label(a)_p action: a buffered client payload
// received its label.
type FxLabel struct{ A string }

// FxSend submits m (a LabelMsg or SummaryMsg) to the DVS layer (dvs-gpsnd
// output).
type FxSend struct{ M types.Msg }

// FxConfirm records the internal confirm_p action.
type FxConfirm struct{}

// FxDeliver reports a totally ordered delivery to the application (brcv
// output).
type FxDeliver struct {
	A      string
	Origin types.ProcID
}

// FxRegister registers the established view with the DVS layer
// (dvs-register output) and reports it to the application.
type FxRegister struct{ View types.View }

func (FxLabel) toEffect()    {}
func (FxSend) toEffect()     {}
func (FxConfirm) toEffect()  {}
func (FxDeliver) toEffect()  {}
func (FxRegister) toEffect() {}

// Outbox collects the effects of one macro-step, in emission order.
type Outbox struct{ Effects []Effect }

func (o *Outbox) add(fx Effect) { o.Effects = append(o.Effects, fx) }

// Step applies one input event and then drains the node: one atomic
// macro-step of the runtime protocol core. register enables the paper's
// REGISTER mechanism (disabled for the E6 ablation). A non-nil error means
// the event was rejected (unexpected message type) and the node was left
// undrained, matching the runtime's drop-and-continue handling.
func Step(n *Node, ev Event, register bool, out *Outbox) error {
	switch e := ev.(type) {
	case EvBroadcast:
		n.OnBCast(e.A)
	case EvNewView:
		n.OnDVSNewView(e.View)
	case EvRecv:
		if err := n.OnDVSGpRcv(e.M, e.From); err != nil {
			return err
		}
	case EvSafe:
		if err := n.OnDVSSafe(e.M, e.From); err != nil {
			return err
		}
	}
	Drain(n, register, out)
	return nil
}

// Drain fires the node's enabled locally-controlled actions until
// quiescent, emitting one effect per action: labeling buffered client
// payloads, sending the recovery summary and then labeled messages through
// DVS, confirming safe labels, reporting deliveries, and registering
// established views.
func Drain(n *Node, register bool, out *Outbox) {
	for {
		progress := false
		if a, ok := n.LabelHead(); ok {
			if err := n.PerformLabel(a); err == nil {
				out.add(FxLabel{A: a})
				progress = true
			}
		}
		if m, ok := n.GpSndSummary(); ok {
			if err := n.TakeGpSndSummary(m); err == nil {
				out.add(FxSend{M: m})
				progress = true
			}
		}
		if m, ok := n.GpSndLabel(); ok {
			if err := n.TakeGpSndLabel(m); err == nil {
				out.add(FxSend{M: m})
				progress = true
			}
		}
		if n.ConfirmEnabled() {
			if err := n.PerformConfirm(); err == nil {
				out.add(FxConfirm{})
				progress = true
			}
		}
		if a, origin, ok := n.BRcvNext(); ok {
			if err := n.PerformBRcv(a, origin); err == nil {
				out.add(FxDeliver{A: a, Origin: origin})
				progress = true
			}
		}
		if register && n.RegisterEnabled() {
			if err := n.PerformRegister(); err == nil {
				if cur, ok := n.Current(); ok {
					out.add(FxRegister{View: cur.Clone()})
				}
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}
