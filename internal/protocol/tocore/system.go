package tocore

import (
	"fmt"

	"repro/internal/types"
)

// This file mechanizes Invariants 6.1–6.3 of the paper, plus the end-to-end
// confirmed-prefix agreement property, as executable checks over a
// collection of DVS-TO-TO_p states. The formulas are written once, against
// System, and shared by both consumers: the exhaustive checker
// (internal/toimpl wraps them as ioa invariants over reachable TO-IMPL
// states, supplying the DVS specification's created/attempted oracles and
// the summaries still in transit inside the service) and the
// trace-conformance replayer (internal/conform, which reconstructs the
// oracles from the dvs-newview events in the recorded logs and, at a
// quiescent final cut, has no in-transit summaries).

// System is a global cut of the TO implementation: one DVS-TO-TO_p state
// per process plus the DVS-level view oracles.
type System struct {
	Procs []types.ProcID
	Nodes map[types.ProcID]*Node
	// Created is the DVS specification's created set (shared, sorted by id).
	Created []types.View
	// Attempted returns the set of processes that attempted (received
	// dvs-newview for) the created view with id g.
	Attempted func(g types.ViewID) types.ProcSet
	// Extra lists the summaries present in the system state outside the
	// nodes: pending in the DVS service or ordered in a DVS per-view queue.
	Extra []types.Summary
}

// allStateShared returns the derived variable allstate of Section 6.2:
// every summary present anywhere in the system state — recorded in some
// node's gotstate, plus the in-transit summaries in Extra. The summaries
// are shared (read-only).
func (s System) allStateShared() []types.Summary {
	n := len(s.Extra)
	for _, p := range s.Procs {
		n += len(s.Nodes[p].gotstate)
	}
	if n == 0 {
		return nil
	}
	out := make([]types.Summary, 0, n)
	for _, p := range s.Procs {
		for _, x := range s.Nodes[p].gotstate {
			out = append(out, x)
		}
	}
	return append(out, s.Extra...)
}

// CheckInvariant61 checks Invariant 6.1: for every x ∈ allstate there is a
// created view w with x.high = w.id that was attempted by all its members.
func (s System) CheckInvariant61() error {
	allstate := s.allStateShared()
	if len(allstate) == 0 {
		return nil
	}
	created := make(map[types.ViewID]types.View, len(s.Created))
	for _, v := range s.Created {
		created[v.ID] = v
	}
	for _, x := range allstate {
		w, ok := created[x.High]
		if !ok {
			return fmt.Errorf("6.1: summary high %s names no created view", x.High)
		}
		att := s.Attempted(w.ID)
		if !w.Members.Subset(att) {
			return fmt.Errorf("6.1: view %s (high of a summary) attempted only by %s", w, att)
		}
	}
	return nil
}

// CheckInvariant62 checks Invariant 6.2: if v ∈ created and some summary has
// high > v.id, then some member of v has moved past v.
func (s System) CheckInvariant62() error {
	var maxHigh types.ViewID
	hasSummary := false
	for _, x := range s.allStateShared() {
		hasSummary = true
		if maxHigh.Less(x.High) {
			maxHigh = x.High
		}
	}
	if !hasSummary {
		return nil
	}
	for _, v := range s.Created {
		if !v.ID.Less(maxHigh) {
			continue
		}
		ok := false
		for p := range v.Members {
			if cur, has := s.Nodes[p].Current(); has && v.ID.Less(cur.ID) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("6.2: view %s precedes an established summary (high %s) but no member moved past it", v, maxHigh)
		}
	}
	return nil
}

// CheckInvariant63 checks Invariant 6.3, instantiated at its strongest σ:
// for every created view v, let S = {p ∈ v.set : current.id_p > v.id}. If
// every p ∈ S has established v and their buildorders are consistent, take
// σ* = the longest common prefix of {buildorder[p, v.id] : p ∈ S}; then
// every summary x with x.high > v.id must have σ* ≤ x.ord. If some p ∈ S has
// not established v, the hypothesis only holds for σ = λ and the instance is
// vacuous. If S is empty the hypothesis holds for every σ, so no summary may
// have high > v.id at all.
func (s System) CheckInvariant63() error {
	allstate := s.allStateShared()
	if len(allstate) == 0 {
		// Every obligation below quantifies over a summary with high > v.id;
		// with no summaries anywhere the invariant is vacuous.
		return nil
	}
	for _, v := range s.Created {
		var sigma []types.Label
		vacuous := false
		sMembers := 0
		first := true
		for p := range v.Members {
			cur, has := s.Nodes[p].Current()
			if !has || !v.ID.Less(cur.ID) {
				continue
			}
			sMembers++
			if !s.Nodes[p].Established(v.ID) {
				vacuous = true
				break
			}
			bo := s.Nodes[p].buildOrder[v.ID]
			if first {
				sigma = bo
				first = false
			} else {
				sigma = types.CommonPrefix(sigma, bo)
			}
		}
		if vacuous {
			continue
		}
		for _, x := range allstate {
			if !v.ID.Less(x.High) {
				continue
			}
			if sMembers == 0 {
				return fmt.Errorf("6.3: summary with high %s exists but no member of %s moved past it", x.High, v)
			}
			if !types.IsPrefix(sigma, x.Ord) {
				return fmt.Errorf("6.3: common established prefix of view %s is not a prefix of a summary with high %s", v, x.High)
			}
		}
	}
	return nil
}

// CheckConfirmedConsistent is the end-to-end agreement property the
// invariants exist to support: the confirmed label prefixes of all nodes are
// pairwise consistent (one is a prefix of the other).
func (s System) CheckConfirmedConsistent() error {
	confirmed := make([][]types.Label, 0, len(s.Procs))
	for _, p := range s.Procs {
		n := s.Nodes[p]
		confirmed = append(confirmed, n.order[:n.nextConfirm-1])
	}
	if !types.Consistent(confirmed...) {
		return fmt.Errorf("confirmed orders inconsistent across nodes")
	}
	return nil
}
