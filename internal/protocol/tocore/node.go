// Package tocore is the deterministic, side-effect-free protocol core of
// the application algorithm of Section 6: the DVS-TO-TO_p automaton of
// Figure 5 (a variant of the totally-ordered broadcast algorithm of
// Amir/Dolev/Keidar/Melliar-Smith/Moser adapted to the dynamic view
// service) as a pure state machine. The same code is driven by two
// consumers — the exhaustive checker (internal/toimpl composes it with the
// DVS specification into TO-IMPL and explores it against Invariants
// 6.1–6.3) and the live runtime (internal/tob translates DVS upcalls into
// Events and applies the Effects that Step emits). The System invariant
// formulas are likewise shared with the trace-conformance replayer
// (internal/conform).
//
// Figure 5's DVS-SAFE(summary) handler marks the exchanged labels safe as
// soon as safe indications for all members' summaries have arrived. Over the
// literal DVS specification this can only happen after the view has been
// established locally (the literal dvs-safe precondition implies the member
// itself has client-delivered the summaries first). Over the amended DVS
// specification — which reflects what the Figure 3 implementation actually
// guarantees — safe indications may overtake client delivery, so the printed
// handler can fire with a partial gotstate. Nodes therefore support two
// modes: Literal (exactly Figure 5) and the default repaired mode, which
// defers marking the exchange safe until the view has been established.
package tocore

import (
	"fmt"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Status values of a DVS-TO-TO node.
type Status int

// Status constants (Figure 5: normal, send, collect).
const (
	StatusNormal Status = iota + 1
	StatusSend
	StatusCollect
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNormal:
		return "normal"
	case StatusSend:
		return "send"
	case StatusCollect:
		return "collect"
	default:
		return "status(" + strconv.Itoa(int(s)) + ")"
	}
}

// LabelMsg is a ⟨l, a⟩ message in C = L × A.
type LabelMsg struct {
	L types.Label
	A string
}

// MsgKey implements types.Msg.
func (m LabelMsg) MsgKey() string { return "lbl:" + m.L.String() + "=" + m.A }

// WriteFp streams the canonical key (same format as MsgKey) into a
// fingerprint digest.
func (m LabelMsg) WriteFp(w types.FpWriter) {
	w.Str("lbl:")
	m.L.WriteFp(w)
	w.Byte('=')
	w.Str(m.A)
}

// SummaryMsg carries a state summary x ∈ S.
type SummaryMsg struct {
	X types.Summary
}

// MsgKey implements types.Msg.
func (m SummaryMsg) MsgKey() string { return "sum:" + m.X.String() }

// WriteFp streams the canonical key (same format as MsgKey) into a
// fingerprint digest.
func (m SummaryMsg) WriteFp(w types.FpWriter) {
	w.Str("sum:")
	m.X.WriteFp(w)
}

var (
	_ types.Msg = LabelMsg{}
	_ types.Msg = SummaryMsg{}
)

// Node is the state of the DVS-TO-TO_p automaton of Figure 5.
type Node struct {
	//lint:fpignore identity reaches the digest through the fpPre prefix on every line
	p     types.ProcID
	fpPre string // fingerprint line prefix "t<p>.", precomputed
	//lint:fpignore mode flag fixed at construction, never toggled by a transition
	literal bool // exactly Figure 5's safe-exchange handling

	current     types.View
	currentOK   bool
	status      Status
	content     types.Content
	nextSeqno   int
	buffer      []types.Label
	safeLabels  map[types.Label]struct{}
	order       []types.Label
	nextConfirm int
	nextReport  int
	highPrimary types.ViewID
	gotstate    types.GotState
	safeExch    types.ProcSet
	registered  map[types.ViewID]bool
	delay       []string
	established map[types.ViewID]bool

	// buildOrder is a history variable: the order computed when the view
	// with the given id was established at this node (used by Invariant 6.3).
	buildOrder map[types.ViewID][]types.Label
}

// NewNode returns DVS-TO-TO_p in its initial state; literal selects the
// exact Figure 5 safe-exchange handling.
func NewNode(p types.ProcID, initial types.View, inP0, literal bool) *Node {
	n := &Node{
		p:           p,
		fpPre:       "t" + p.String() + ".",
		literal:     literal,
		status:      StatusNormal,
		content:     make(types.Content),
		nextSeqno:   1,
		safeLabels:  make(map[types.Label]struct{}),
		nextConfirm: 1,
		nextReport:  1,
		gotstate:    make(types.GotState),
		safeExch:    types.NewProcSet(),
		registered:  make(map[types.ViewID]bool),
		established: make(map[types.ViewID]bool),
		buildOrder:  make(map[types.ViewID][]types.Label),
	}
	if inP0 {
		n.current, n.currentOK = initial.Clone(), true
		n.registered[types.ViewIDZero] = true
	}
	return n
}

// P returns the process id.
func (n *Node) P() types.ProcID { return n.p }

// Current returns the current view; ok is false for ⊥.
func (n *Node) Current() (types.View, bool) { return n.current, n.currentOK }

// Status returns the node status.
func (n *Node) Status() Status { return n.status }

// HighPrimary returns the id of the highest established primary.
func (n *Node) HighPrimary() types.ViewID { return n.highPrimary }

// Established reports whether the view with id g has been established here.
func (n *Node) Established(g types.ViewID) bool { return n.established[g] }

// BuildOrder returns the order computed when view g was established (history
// variable); nil if never established.
func (n *Node) BuildOrder(g types.ViewID) []types.Label {
	return types.CloneSeq(n.buildOrder[g])
}

// Order returns the current tentative order.
func (n *Node) Order() []types.Label { return types.CloneSeq(n.order) }

// ConfirmedOrder returns the confirmed prefix order(1..nextconfirm-1).
func (n *Node) ConfirmedOrder() []types.Label {
	return types.CloneSeq(n.order[:n.nextConfirm-1])
}

// Content returns a copy of the content relation.
func (n *Node) Content() types.Content { return n.content.Clone() }

// GotState returns a copy of the recovery state summaries received.
func (n *Node) GotState() types.GotState { return n.gotstate.Clone() }

// NextReport returns nextreport.
func (n *Node) NextReport() int { return n.nextReport }

// NextConfirm returns nextconfirm.
func (n *Node) NextConfirm() int { return n.nextConfirm }

// Summary returns ⟨content, order, nextconfirm, highprimary⟩, the summary
// sent during recovery.
func (n *Node) Summary() types.Summary {
	return types.Summary{
		Con:  n.content.Clone(),
		Ord:  types.CloneSeq(n.order),
		Next: n.nextConfirm,
		High: n.highPrimary,
	}
}

// --- Input handlers ---

// OnBCast handles input bcast(a)_p: buffer into delay.
func (n *Node) OnBCast(a string) { n.delay = append(n.delay, a) }

// OnDVSNewView handles input dvs-newview(v)_p.
func (n *Node) OnDVSNewView(v types.View) {
	n.current, n.currentOK = v.Clone(), true
	n.nextSeqno = 1
	n.buffer = nil
	n.gotstate = make(types.GotState)
	n.safeExch = types.NewProcSet()
	n.safeLabels = make(map[types.Label]struct{})
	n.status = StatusSend
}

// OnDVSGpRcv handles input dvs-gprcv(m)_{q,p} by case analysis on m.
func (n *Node) OnDVSGpRcv(m types.Msg, q types.ProcID) error {
	switch msg := m.(type) {
	case LabelMsg:
		n.content[msg.L] = msg.A
		n.order = append(n.order, msg.L)
		return nil
	case SummaryMsg:
		n.content.Merge(msg.X.Con)
		n.gotstate[q] = msg.X.Clone()
		if n.currentOK && n.status == StatusCollect && gotAll(n.gotstate, n.current.Members) {
			n.establish()
		}
		return nil
	default:
		return fmt.Errorf("to node %s: unexpected message %s", n.p, m.MsgKey())
	}
}

func gotAll(gs types.GotState, members types.ProcSet) bool {
	if len(gs) != members.Len() {
		return false
	}
	for q := range members {
		if _, ok := gs[q]; !ok {
			return false
		}
	}
	return true
}

// establish processes the complete state exchange in one atomic step.
func (n *Node) establish() {
	n.nextConfirm = n.gotstate.MaxNextConfirm()
	n.order = n.gotstate.FullOrder()
	n.highPrimary = n.current.ID
	n.status = StatusNormal
	n.established[n.current.ID] = true
	n.buildOrder[n.current.ID] = types.CloneSeq(n.order)
	if !n.literal {
		n.maybeMarkExchangeSafe()
	}
}

// OnDVSSafe handles input dvs-safe(m)_{q,p} by case analysis on m.
func (n *Node) OnDVSSafe(m types.Msg, q types.ProcID) error {
	switch m.(type) {
	case LabelMsg:
		n.safeLabels[m.(LabelMsg).L] = struct{}{}
		return nil
	case SummaryMsg:
		n.safeExch.Add(q)
		if n.literal {
			// Figure 5 exactly: mark as soon as safe-exch covers the view,
			// regardless of whether the exchange has completed locally.
			if n.currentOK && n.safeExch.Equal(n.current.Members) {
				for _, l := range n.gotstate.FullOrder() {
					n.safeLabels[l] = struct{}{}
				}
			}
			return nil
		}
		n.maybeMarkExchangeSafe()
		return nil
	default:
		return fmt.Errorf("to node %s: unexpected safe message %s", n.p, m.MsgKey())
	}
}

// maybeMarkExchangeSafe marks the exchanged labels safe once (a) the view is
// established locally and (b) safe indications for all members' summaries
// have arrived. This is the repaired form of Figure 5's DVS-SAFE(summary)
// handler; see the package comment.
func (n *Node) maybeMarkExchangeSafe() {
	if !n.currentOK || n.status != StatusNormal || !n.established[n.current.ID] {
		return
	}
	if !n.safeExch.Equal(n.current.Members) {
		return
	}
	for _, l := range n.gotstate.FullOrder() {
		n.safeLabels[l] = struct{}{}
	}
}

// --- Locally controlled actions ---

// LabelHead returns the head of delay if the internal label action is
// enabled. Figure 5 as printed allows labeling whenever current ≠ ⊥; in
// literal mode we reproduce that. The repaired (default) mode additionally
// requires status = normal: labeling during recovery puts the fresh label
// into the summary's content, so establishment orders it via fullorder's
// label-order tail, and the buffered copy sent after establishment is then
// ordered a second time — a duplicate delivery (demonstrated mechanically in
// the tests).
func (n *Node) LabelHead() (string, bool) {
	if len(n.delay) == 0 || !n.currentOK {
		return "", false
	}
	if !n.literal && n.status != StatusNormal {
		return "", false
	}
	return n.delay[0], true
}

// PerformLabel applies the internal label(a)_p action.
func (n *Node) PerformLabel(a string) error {
	head, ok := n.LabelHead()
	if !ok || head != a {
		return fmt.Errorf("label(%s)_%s: not enabled", a, n.p)
	}
	l := types.Label{ID: n.current.ID, Seqno: n.nextSeqno, Origin: n.p}
	n.content[l] = a
	n.buffer = append(n.buffer, l)
	n.nextSeqno++
	n.delay = n.delay[1:]
	return nil
}

// GpSndLabel returns the ⟨l,a⟩ message a dvs-gpsnd output would send, if
// enabled (status = normal, buffer nonempty).
func (n *Node) GpSndLabel() (LabelMsg, bool) {
	if n.status != StatusNormal || len(n.buffer) == 0 {
		return LabelMsg{}, false
	}
	l := n.buffer[0]
	a, ok := n.content[l]
	if !ok {
		return LabelMsg{}, false
	}
	return LabelMsg{L: l, A: a}, true
}

// TakeGpSndLabel applies the effect of sending the buffered label message.
func (n *Node) TakeGpSndLabel(m LabelMsg) error {
	head, ok := n.GpSndLabel()
	if !ok || head != m {
		return fmt.Errorf("dvs-gpsnd(%s)_%s: not enabled", m.MsgKey(), n.p)
	}
	n.buffer = n.buffer[1:]
	return nil
}

// GpSndSummary returns the summary message a dvs-gpsnd output would send, if
// enabled (status = send).
func (n *Node) GpSndSummary() (SummaryMsg, bool) {
	if n.status != StatusSend {
		return SummaryMsg{}, false
	}
	return SummaryMsg{X: n.Summary()}, true
}

// TakeGpSndSummary applies the effect of sending the summary.
func (n *Node) TakeGpSndSummary(m SummaryMsg) error {
	head, ok := n.GpSndSummary()
	if !ok || head.MsgKey() != m.MsgKey() {
		return fmt.Errorf("dvs-gpsnd(summary)_%s: not enabled", n.p)
	}
	n.status = StatusCollect
	return nil
}

// ConfirmEnabled reports whether the internal confirm action is enabled.
func (n *Node) ConfirmEnabled() bool {
	if n.nextConfirm > len(n.order) {
		return false
	}
	_, ok := n.safeLabels[n.order[n.nextConfirm-1]]
	return ok
}

// PerformConfirm applies the internal confirm action.
func (n *Node) PerformConfirm() error {
	if !n.ConfirmEnabled() {
		return fmt.Errorf("confirm_%s: not enabled", n.p)
	}
	n.nextConfirm++
	return nil
}

// BRcvNext returns the (a, origin) pair the next brcv output would deliver,
// if enabled (nextreport < nextconfirm).
func (n *Node) BRcvNext() (a string, origin types.ProcID, ok bool) {
	if n.nextReport >= n.nextConfirm || n.nextReport > len(n.order) {
		return "", 0, false
	}
	l := n.order[n.nextReport-1]
	payload, has := n.content[l]
	if !has {
		return "", 0, false
	}
	return payload, l.Origin, true
}

// PerformBRcv applies the brcv(a)_{q,p} output.
func (n *Node) PerformBRcv(a string, origin types.ProcID) error {
	wa, worigin, ok := n.BRcvNext()
	if !ok || wa != a || worigin != origin {
		return fmt.Errorf("brcv(%s)_%s,%s: not enabled", a, origin, n.p)
	}
	n.nextReport++
	return nil
}

// RegisterEnabled reports whether the dvs-register output is enabled:
// current ≠ ⊥, established, and not yet registered.
func (n *Node) RegisterEnabled() bool {
	return n.currentOK && n.established[n.current.ID] && !n.registered[n.current.ID]
}

// PerformRegister applies the dvs-register output.
func (n *Node) PerformRegister() error {
	if !n.RegisterEnabled() {
		return fmt.Errorf("dvs-register_%s: not enabled", n.p)
	}
	n.registered[n.current.ID] = true
	return nil
}

// Clone returns an independent deep copy.
func (n *Node) Clone() *Node {
	c := &Node{
		p:           n.p,
		fpPre:       n.fpPre,
		literal:     n.literal,
		current:     n.current.Clone(),
		currentOK:   n.currentOK,
		status:      n.status,
		content:     n.content.Clone(),
		nextSeqno:   n.nextSeqno,
		buffer:      types.CloneSeq(n.buffer),
		safeLabels:  make(map[types.Label]struct{}, len(n.safeLabels)),
		order:       types.CloneSeq(n.order),
		nextConfirm: n.nextConfirm,
		nextReport:  n.nextReport,
		highPrimary: n.highPrimary,
		gotstate:    n.gotstate.Clone(),
		safeExch:    n.safeExch.Clone(),
		registered:  make(map[types.ViewID]bool, len(n.registered)),
		delay:       types.CloneSeq(n.delay),
		established: make(map[types.ViewID]bool, len(n.established)),
		buildOrder:  make(map[types.ViewID][]types.Label, len(n.buildOrder)),
	}
	for l := range n.safeLabels {
		c.safeLabels[l] = struct{}{}
	}
	for g, b := range n.registered {
		c.registered[g] = b
	}
	for g, b := range n.established {
		c.established[g] = b
	}
	for g, ord := range n.buildOrder {
		c.buildOrder[g] = types.CloneSeq(ord)
	}
	return c
}

// AddFingerprint appends the node's state to a composite fingerprint. Every
// line carries the node's "t<p>." prefix; values stream into the digest.
func (n *Node) AddFingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix(n.fpPre)
	if n.currentOK {
		f.Begin("cur")
		f.Byte('=')
		n.current.WriteFp(f)
		f.End()
	}
	f.Add("status", n.status.String())
	if len(n.content) > 0 {
		f.Begin("content")
		f.Byte('=')
		n.content.WriteFp(f)
		f.End()
	}
	f.AddInt("nseq", n.nextSeqno)
	if len(n.buffer) > 0 {
		f.Begin("buffer")
		f.Byte('=')
		writeLabelsFp(f, n.buffer)
		f.End()
	}
	if len(n.safeLabels) > 0 {
		ls := make([]types.Label, 0, len(n.safeLabels))
		for l := range n.safeLabels {
			ls = append(ls, l)
		}
		types.SortLabels(ls)
		f.Begin("safe")
		f.Byte('=')
		writeLabelsFp(f, ls)
		f.End()
	}
	if len(n.order) > 0 {
		f.Begin("order")
		f.Byte('=')
		writeLabelsFp(f, n.order)
		f.End()
	}
	f.AddInt("nconf", n.nextConfirm)
	f.AddInt("nrep", n.nextReport)
	f.Begin("high")
	f.Byte('=')
	n.highPrimary.WriteFp(f)
	f.End()
	for q, x := range n.gotstate {
		f.Begin("got.")
		q.WriteFp(f)
		f.Byte('=')
		x.WriteFp(f)
		f.End()
	}
	if n.safeExch.Len() > 0 {
		f.Begin("sexch")
		f.Byte('=')
		n.safeExch.WriteFp(f)
		f.End()
	}
	for g, b := range n.registered {
		if b {
			f.Begin("rgst.")
			g.WriteFp(f)
			f.Str("=1")
			f.End()
		}
	}
	if len(n.delay) > 0 {
		f.Begin("delay")
		f.Byte('=')
		for i, a := range n.delay {
			if i > 0 {
				f.Byte('|')
			}
			f.Str(a)
		}
		f.End()
	}
	for g, b := range n.established {
		if b {
			f.Begin("est.")
			g.WriteFp(f)
			f.Str("=1")
			f.End()
		}
	}
	for g, ord := range n.buildOrder {
		if len(ord) > 0 {
			f.Begin("bo.")
			g.WriteFp(f)
			f.Byte('=')
			writeLabelsFp(f, ord)
			f.End()
		}
	}
	f.SetPrefix("")
}

func writeLabelsFp(f *ioa.Fingerprinter, ls []types.Label) {
	for i, l := range ls {
		if i > 0 {
			f.Byte('|')
		}
		l.WriteFp(f)
	}
}

// DelayLen returns the number of buffered client commands awaiting labels.
func (n *Node) DelayLen() int { return len(n.delay) }

// SelfLabeledCount counts the labels in the content relation that this node
// created itself; labels with origin p never leave content, so the count is
// monotone along every execution path (bounded environments rely on this).
func (n *Node) SelfLabeledCount() int {
	c := 0
	for l := range n.content {
		if l.Origin == n.p {
			c++
		}
	}
	return c
}

// GotStateShared returns the recovery summaries received in the current
// exchange without copying; the map and its summaries are read-only. The
// invariant checkers use it once per inspected state.
func (n *Node) GotStateShared() types.GotState { return n.gotstate }

// BuildOrderShared returns the order computed when view g was established
// (history variable) without copying; nil if never established.
func (n *Node) BuildOrderShared(g types.ViewID) []types.Label { return n.buildOrder[g] }

// ConfirmedShared returns the confirmed prefix order(1..nextconfirm-1)
// without copying; the slice is read-only.
func (n *Node) ConfirmedShared() []types.Label { return n.order[:n.nextConfirm-1] }
