// Package staticcore is the pure protocol core of the static-primary
// baseline the paper argues against (Section 1): a filter with the same
// interface as the dynamic VS-TO-DVS automaton (internal/protocol/dvscore)
// that accepts a view as primary exactly when it contains a strict majority
// of the *static* universe P0 (or, more generally, a quorum of a fixed
// quorum system). No information exchange, registration, or garbage
// collection is needed — and none is possible: when the active population
// drifts away from P0, no primary can ever form again, which is precisely
// the availability gap experiment E4 measures.
//
// Like the other protocol cores, the package holds only the state machine:
// Node implements dvscore.Filter, so the runtime shell (internal/dvsg)
// drives it through dvscore.Step/Drain and consumes its effects through the
// Outbox — the same macro-step seam the corestep analyzer enforces — and the
// trace-conformance replayer (internal/conform) can re-execute recorded
// static runs through this exact code.
package staticcore

import (
	"fmt"

	"repro/internal/protocol/dvscore"
	"repro/internal/quorum"
	"repro/internal/types"
)

// Node is the static-primary filter state for one process.
type Node struct {
	p  types.ProcID
	qs quorum.System

	cur         types.View
	curOK       bool
	clientCur   types.View
	clientCurOK bool

	msgsToVS   map[types.ViewID][]types.Msg
	msgsFromVS map[types.ViewID][]dvscore.MsgFrom
	safeFromVS map[types.ViewID][]dvscore.MsgFrom
}

var _ dvscore.Filter = (*Node)(nil)

// NewNode builds the filter. qs decides primacy (typically
// quorum.Majority(P0)); inP0 states whether p belongs to the initial view.
func NewNode(p types.ProcID, initial types.View, inP0 bool, qs quorum.System) *Node {
	n := &Node{
		p:          p,
		qs:         qs,
		msgsToVS:   make(map[types.ViewID][]types.Msg),
		msgsFromVS: make(map[types.ViewID][]dvscore.MsgFrom),
		safeFromVS: make(map[types.ViewID][]dvscore.MsgFrom),
	}
	if inP0 {
		n.cur, n.curOK = initial.Clone(), true
		n.clientCur, n.clientCurOK = initial.Clone(), true
	}
	return n
}

// P returns the process id.
func (n *Node) P() types.ProcID { return n.p }

// OnVSNewView installs the view-synchronous view.
func (n *Node) OnVSNewView(v types.View) {
	n.cur, n.curOK = v.Clone(), true
}

// OnVSGpRcv buffers a client message received in the current view.
func (n *Node) OnVSGpRcv(m types.Msg, q types.ProcID) {
	if !n.curOK {
		return
	}
	n.msgsFromVS[n.cur.ID] = append(n.msgsFromVS[n.cur.ID], dvscore.MsgFrom{M: m, Q: q})
}

// OnVSSafe buffers a safe indication received in the current view.
func (n *Node) OnVSSafe(m types.Msg, q types.ProcID) {
	if !n.curOK || !types.IsClient(m) {
		return
	}
	n.safeFromVS[n.cur.ID] = append(n.safeFromVS[n.cur.ID], dvscore.MsgFrom{M: m, Q: q})
}

// OnDVSGpSnd enqueues a client message for the current primary view.
func (n *Node) OnDVSGpSnd(m types.Msg) {
	if !n.clientCurOK {
		return
	}
	g := n.clientCur.ID
	n.msgsToVS[g] = append(n.msgsToVS[g], m)
}

// OnDVSRegister is a no-op: static primaries need no registration.
func (n *Node) OnDVSRegister() {}

// VSGpSndHead returns the next message to submit to VS.
func (n *Node) VSGpSndHead() (types.Msg, bool) {
	if !n.curOK {
		return nil, false
	}
	q := n.msgsToVS[n.cur.ID]
	if len(q) == 0 {
		return nil, false
	}
	return q[0], true
}

// TakeVSGpSndHead removes the head of the outgoing queue.
func (n *Node) TakeVSGpSndHead(m types.Msg) error {
	head, ok := n.VSGpSndHead()
	if !ok || head.MsgKey() != m.MsgKey() {
		return fmt.Errorf("staticcore vs-gpsnd(%s)_%s: not head", m.MsgKey(), n.p)
	}
	g := n.cur.ID
	n.msgsToVS[g] = n.msgsToVS[g][1:]
	return nil
}

// DVSNewViewEnabled reports whether the current view is a static primary
// not yet announced.
func (n *Node) DVSNewViewEnabled() (types.View, bool) {
	if !n.curOK {
		return types.View{}, false
	}
	v := n.cur
	if n.clientCurOK && !n.clientCur.ID.Less(v.ID) {
		return types.View{}, false
	}
	if !n.qs.IsQuorum(v.Members) {
		return types.View{}, false
	}
	return v.Clone(), true
}

// PerformDVSNewView announces the primary.
func (n *Node) PerformDVSNewView(v types.View) error {
	cand, ok := n.DVSNewViewEnabled()
	if !ok || !cand.Equal(v) {
		return fmt.Errorf("staticcore dvs-newview(%s)_%s: not enabled", v, n.p)
	}
	n.clientCur, n.clientCurOK = v.Clone(), true
	return nil
}

// DVSGpRcvHead returns the next client delivery.
func (n *Node) DVSGpRcvHead() (dvscore.MsgFrom, bool) {
	if !n.clientCurOK {
		return dvscore.MsgFrom{}, false
	}
	q := n.msgsFromVS[n.clientCur.ID]
	if len(q) == 0 {
		return dvscore.MsgFrom{}, false
	}
	return q[0], true
}

// TakeDVSGpRcvHead removes the next client delivery.
func (n *Node) TakeDVSGpRcvHead(e dvscore.MsgFrom) error {
	head, ok := n.DVSGpRcvHead()
	if !ok || head.M.MsgKey() != e.M.MsgKey() || head.Q != e.Q {
		return fmt.Errorf("staticcore dvs-gprcv_%s: not head", n.p)
	}
	g := n.clientCur.ID
	n.msgsFromVS[g] = n.msgsFromVS[g][1:]
	return nil
}

// DVSSafeHead returns the next safe indication.
func (n *Node) DVSSafeHead() (dvscore.MsgFrom, bool) {
	if !n.clientCurOK {
		return dvscore.MsgFrom{}, false
	}
	q := n.safeFromVS[n.clientCur.ID]
	if len(q) == 0 {
		return dvscore.MsgFrom{}, false
	}
	return q[0], true
}

// TakeDVSSafeHead removes the next safe indication.
func (n *Node) TakeDVSSafeHead(e dvscore.MsgFrom) error {
	head, ok := n.DVSSafeHead()
	if !ok || head.M.MsgKey() != e.M.MsgKey() || head.Q != e.Q {
		return fmt.Errorf("staticcore dvs-safe_%s: not head", n.p)
	}
	g := n.clientCur.ID
	n.safeFromVS[g] = n.safeFromVS[g][1:]
	return nil
}

// GCCandidates returns nothing: the static filter keeps no ambiguous views.
func (n *Node) GCCandidates() []types.View { return nil }

// PerformGC always fails: there is nothing to collect.
func (n *Node) PerformGC(v types.View) error {
	return fmt.Errorf("staticcore: no garbage collection")
}

// ClientCur returns the current primary view at the client; ok is false
// for ⊥.
func (n *Node) ClientCur() (types.View, bool) { return n.clientCur, n.clientCurOK }

// Amb returns nothing: the static filter has no ambiguous views.
func (n *Node) Amb() []types.View { return nil }

// Quorum reports whether s is accepted as primary-forming by this node's
// fixed quorum system; the conformance replayer uses it to check that every
// announced static primary really was a quorum of P0.
func (n *Node) Quorum(s types.ProcSet) bool { return n.qs.IsQuorum(s) }
