// Package dvsg is the runtime realization of the DVS service: it drives a
// primary-view filter — by default the *verified* VS-TO-DVS automaton from
// internal/core, exactly the code checked against the DVS specification —
// on top of the view-synchronous layer (internal/vsg).
//
// The layer is a pure state machine invoked from the vsg event loop. After
// every upcall it drains the filter's enabled locally-controlled actions in
// a fixed order that realizes the view-synchronous drain contract: all
// client deliveries and safe indications of the current client view are
// handed up before a new primary view is announced.
package dvsg

import (
	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vsg"
)

// Filter is the primary-view decision state machine: the exact method set of
// the VS-TO-DVS automaton (core.Node) that the layer drives. The static
// baseline (internal/staticp) implements the same interface.
type Filter interface {
	OnVSNewView(v types.View)
	OnVSGpRcv(m types.Msg, q types.ProcID)
	OnVSSafe(m types.Msg, q types.ProcID)
	OnDVSGpSnd(m types.Msg)
	OnDVSRegister()
	VSGpSndHead() (types.Msg, bool)
	TakeVSGpSndHead(m types.Msg) error
	DVSNewViewEnabled() (types.View, bool)
	PerformDVSNewView(v types.View) error
	DVSGpRcvHead() (core.MsgFrom, bool)
	TakeDVSGpRcvHead(e core.MsgFrom) error
	DVSSafeHead() (core.MsgFrom, bool)
	TakeDVSSafeHead(e core.MsgFrom) error
	GCCandidates() []types.View
	PerformGC(v types.View) error
	ClientCur() (types.View, bool)
	Amb() []types.View
}

var _ Filter = (*core.Node)(nil)

// Handler receives the DVS upcalls (primary views, client messages, safe
// indications). Handlers are invoked from the vsg event loop.
type Handler interface {
	OnDVSNewView(v types.View)
	OnDVSRecv(m types.Msg, from types.ProcID)
	OnDVSSafe(m types.Msg, from types.ProcID)
}

// Stats are cumulative per-node dvsg counters.
type Stats struct {
	VSViews      uint64 // views delivered by the view-synchronous layer
	Primaries    uint64 // views accepted as primary (dvs-newview)
	GCs          uint64 // garbage collections performed
	MaxAmb       int    // high-water mark of |amb|
	RegistersOut uint64 // register requests forwarded
	SendsDown    uint64 // client messages submitted through the filter
	DeliveriesUp uint64 // client messages delivered to the handler
	SafesUp      uint64 // safe indications delivered to the handler
}

// Layer drives a Filter over a vsg.Node.
type Layer struct {
	filter  Filter
	node    *vsg.Node
	handler Handler
	gc      bool
	stats   Stats
}

// New builds the layer around the given filter. Garbage collection of
// ambiguous views (driven by registration) is performed eagerly when
// enableGC is true; disabling it isolates the effect of the paper's
// REGISTER mechanism (experiment E6).
func New(filter Filter, handler Handler, enableGC bool) *Layer {
	return &Layer{filter: filter, handler: handler, gc: enableGC}
}

var _ vsg.Handler = (*Layer)(nil)

// Bind attaches the vsg node used for sending. It must be called before the
// node starts.
func (l *Layer) Bind(node *vsg.Node) { l.node = node }

// Stats returns a snapshot of the counters. It must be read from the event
// loop (via Node.Do) or after the node has stopped.
func (l *Layer) Stats() Stats { return l.stats }

// ClientCur exposes the filter's client-current primary view.
func (l *Layer) ClientCur() (types.View, bool) { return l.filter.ClientCur() }

// AmbCount returns the current number of ambiguous views in the filter.
func (l *Layer) AmbCount() int { return len(l.filter.Amb()) }

// OnNewView implements vsg.Handler.
func (l *Layer) OnNewView(v types.View) {
	l.stats.VSViews++
	l.filter.OnVSNewView(v)
	l.drain()
}

// OnRecv implements vsg.Handler.
func (l *Layer) OnRecv(payload any, from types.ProcID) {
	m, ok := payload.(types.Msg)
	if !ok {
		return
	}
	l.filter.OnVSGpRcv(m, from)
	l.drain()
}

// OnSafe implements vsg.Handler.
func (l *Layer) OnSafe(payload any, from types.ProcID) {
	m, ok := payload.(types.Msg)
	if !ok {
		return
	}
	l.filter.OnVSSafe(m, from)
	l.drain()
}

// Send submits a client message for delivery in the current primary view.
// It must be called from the event loop.
func (l *Layer) Send(m types.Msg) {
	l.stats.SendsDown++
	l.filter.OnDVSGpSnd(m)
	l.drain()
}

// Register tells the service the application has gathered the information
// it needs to operate in the current primary view. It must be called from
// the event loop.
func (l *Layer) Register() {
	l.stats.RegistersOut++
	l.filter.OnDVSRegister()
	l.drain()
}

// drain fires the filter's enabled locally-controlled actions until
// quiescent: outgoing messages first, then client deliveries and safe
// indications of the current client view, then (only once those are
// drained) a new primary announcement, then garbage collection.
func (l *Layer) drain() {
	for {
		progress := false
		for {
			m, ok := l.filter.VSGpSndHead()
			if !ok {
				break
			}
			if err := l.filter.TakeVSGpSndHead(m); err != nil {
				break
			}
			l.node.SendInLoop(m)
			progress = true
		}
		for {
			e, ok := l.filter.DVSGpRcvHead()
			if !ok {
				break
			}
			if err := l.filter.TakeDVSGpRcvHead(e); err != nil {
				break
			}
			l.stats.DeliveriesUp++
			l.handler.OnDVSRecv(e.M, e.Q)
			progress = true
		}
		for {
			e, ok := l.filter.DVSSafeHead()
			if !ok {
				break
			}
			if err := l.filter.TakeDVSSafeHead(e); err != nil {
				break
			}
			l.stats.SafesUp++
			l.handler.OnDVSSafe(e.M, e.Q)
			progress = true
		}
		if v, ok := l.filter.DVSNewViewEnabled(); ok {
			if err := l.filter.PerformDVSNewView(v); err == nil {
				l.stats.Primaries++
				l.handler.OnDVSNewView(v)
				progress = true
			}
		}
		if l.gc {
			for _, v := range l.filter.GCCandidates() {
				if err := l.filter.PerformGC(v); err == nil {
					l.stats.GCs++
					progress = true
				}
			}
		}
		if n := len(l.filter.Amb()); n > l.stats.MaxAmb {
			l.stats.MaxAmb = n
		}
		if !progress {
			return
		}
	}
}
