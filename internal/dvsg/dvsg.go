// Package dvsg is the runtime realization of the DVS service: a thin shell
// that drives the shared protocol core (internal/protocol/dvscore) — by
// default the *verified* VS-TO-DVS automaton, exactly the code checked
// against the DVS specification — on top of the view-synchronous layer
// (internal/vsg).
//
// The shell contains no protocol state transitions. It translates vsg
// upcalls and client downcalls into dvscore Events, invokes dvscore.Step
// (one atomic macro-step: apply the event, then drain the enabled
// locally-controlled actions in the core's fixed order), and applies the
// emitted Effects: messages go down to vsg, deliveries and view
// announcements go up to the handler.
//
// Steps run to completion: the view-synchronous layer can synchronously
// re-enter the shell while an effect is being applied (a leader's own
// submission is ordered and delivered inline), so re-entrant events are
// queued and processed after the current step's effects have all been
// applied. Every event therefore observes a quiescent core, which is what
// makes the recorded (event, effects) logs exactly replayable by the
// conformance checker (internal/conform).
package dvsg

import (
	"repro/internal/protocol/dvscore"
	"repro/internal/types"
	"repro/internal/vsg"
)

// Filter is the primary-view decision state machine the shell drives: the
// exact method set of the VS-TO-DVS automaton. The static baseline
// (internal/staticp) implements the same interface.
type Filter = dvscore.Filter

// Handler receives the DVS upcalls (primary views, client messages, safe
// indications). Handlers are invoked from the vsg event loop.
type Handler interface {
	OnDVSNewView(v types.View)
	OnDVSRecv(m types.Msg, from types.ProcID)
	OnDVSSafe(m types.Msg, from types.ProcID)
}

// Observer receives every macro-step of the core, in execution order: the
// input event and the effects it emitted. The conformance recorder is an
// Observer. Called from the event loop; the effects slice must not be
// mutated.
type Observer func(ev dvscore.Event, effects []dvscore.Effect)

// WireBatch groups the FxSendVS messages drained from one macro-step into a
// single view-synchronous submission. It exists only on the wire between
// dvsg shells: a received WireBatch is expanded back into one EvVSRecv (or
// EvVSSafe) per member before the core sees it, so the VS-TO-DVS event
// stream is identical to an unbatched execution. Unlike types.Batch (the
// tob-level unit, which flows through this core as one opaque client
// message), WireBatch is not a types.Msg and can never enter a core.
type WireBatch struct{ Msgs []types.Msg }

// Stats are cumulative per-node dvsg counters. WireFrames/WirePayloads are
// the frames-vs-payloads distinction of the send path down to vsg:
// WirePayloads counts FxSendVS effects, WireFrames the vsg submissions that
// carried them.
type Stats struct {
	VSViews      uint64 // views delivered by the view-synchronous layer
	Primaries    uint64 // views accepted as primary (dvs-newview)
	GCs          uint64 // garbage collections performed
	MaxAmb       int    // high-water mark of |amb|
	RegistersOut uint64 // register requests forwarded
	SendsDown    uint64 // client messages submitted through the filter
	DeliveriesUp uint64 // client messages delivered to the handler
	SafesUp      uint64 // safe indications delivered to the handler
	WireFrames   uint64 // vsg submissions (batches plus unbatched singletons)
	WirePayloads uint64 // individual core messages carried by those submissions
	WireBatchIn  uint64 // received vsg payloads that were WireBatches
}

// Layer drives a Filter over a vsg.Node.
type Layer struct {
	filter   Filter
	node     *vsg.Node
	handler  Handler
	gc       bool
	stats    Stats
	observer Observer

	// Run-to-completion event queue: events arriving while a step is in
	// flight (synchronous re-entry from vsg) are deferred until the current
	// step's effects have been applied.
	stepping bool
	queue    []dvscore.Event

	// Send coalescing: FxSendVS effects accumulate here during a dispatch
	// and go down to vsg as one WireBatch at the end. Pending messages are
	// discarded on a VS view change — vsg tags submissions with its current
	// view, and a message the core emitted in the old view must not be
	// carried by the new one (the discard is the message loss the VS
	// specification permits at view boundaries; the core re-exchanges its
	// state in the new view).
	pendingVS []types.Msg
	flushing  bool
}

// New builds the layer around the given filter. Garbage collection of
// ambiguous views (driven by registration) is performed eagerly when
// enableGC is true; disabling it isolates the effect of the paper's
// REGISTER mechanism (experiment E6).
func New(filter Filter, handler Handler, enableGC bool) *Layer {
	return &Layer{filter: filter, handler: handler, gc: enableGC}
}

var _ vsg.Handler = (*Layer)(nil)

// Bind attaches the vsg node used for sending. It must be called before the
// node starts.
func (l *Layer) Bind(node *vsg.Node) { l.node = node }

// SetObserver installs the macro-step observer, replacing any previous one.
// It must be called before the node starts.
func (l *Layer) SetObserver(o Observer) { l.observer = o }

// AddObserver chains o after any already-installed observer, so a recorder,
// a stream spiller, and an online checker can watch the same layer. It must
// be called before the node starts.
func (l *Layer) AddObserver(o Observer) {
	if prev := l.observer; prev != nil {
		l.observer = func(ev dvscore.Event, effects []dvscore.Effect) {
			prev(ev, effects)
			o(ev, effects)
		}
		return
	}
	l.observer = o
}

// Stats returns a snapshot of the counters. It must be read from the event
// loop (via Node.Do) or after the node has stopped.
func (l *Layer) Stats() Stats { return l.stats }

// ClientCur exposes the filter's client-current primary view.
func (l *Layer) ClientCur() (types.View, bool) { return l.filter.ClientCur() }

// AmbCount returns the current number of ambiguous views in the filter.
func (l *Layer) AmbCount() int { return len(l.filter.Amb()) }

// Defer schedules f onto a later iteration of the vsg event loop without
// blocking; it reports false when the loop is stopped or its queue is full.
// The tob shell uses it to defer batch flushes behind already-queued work.
func (l *Layer) Defer(f func()) bool { return l.node.Defer(f) }

// OnNewView implements vsg.Handler.
func (l *Layer) OnNewView(v types.View) {
	l.stats.VSViews++
	l.dispatch(dvscore.EvVSNewView{View: v})
}

// OnRecv implements vsg.Handler. WireBatches are expanded here, before the
// core sees them: one EvVSRecv per member, in batch order.
func (l *Layer) OnRecv(payload any, from types.ProcID) {
	if b, ok := payload.(WireBatch); ok {
		l.stats.WireBatchIn++
		for _, m := range b.Msgs {
			l.dispatch(dvscore.EvVSRecv{M: m, From: from})
		}
		return
	}
	m, ok := payload.(types.Msg)
	if !ok {
		return
	}
	l.dispatch(dvscore.EvVSRecv{M: m, From: from})
}

// OnSafe implements vsg.Handler. A safe indication for a WireBatch means
// every member message is safe, in batch order.
func (l *Layer) OnSafe(payload any, from types.ProcID) {
	if b, ok := payload.(WireBatch); ok {
		for _, m := range b.Msgs {
			l.dispatch(dvscore.EvVSSafe{M: m, From: from})
		}
		return
	}
	m, ok := payload.(types.Msg)
	if !ok {
		return
	}
	l.dispatch(dvscore.EvVSSafe{M: m, From: from})
}

// Send submits a client message for delivery in the current primary view.
// It must be called from the event loop.
func (l *Layer) Send(m types.Msg) {
	l.stats.SendsDown++
	l.dispatch(dvscore.EvClientSend{M: m})
}

// Register tells the service the application has gathered the information
// it needs to operate in the current primary view. It must be called from
// the event loop.
func (l *Layer) Register() {
	l.stats.RegistersOut++
	l.dispatch(dvscore.EvClientRegister{})
}

// dispatch runs one core macro-step for ev, or queues it if a step is
// already in flight, then drains the queue. Queued events are processed in
// arrival order, so the delivery and view streams handed up preserve the
// core's emission order even under synchronous re-entry.
func (l *Layer) dispatch(ev dvscore.Event) {
	if l.stepping {
		l.queue = append(l.queue, ev)
		return
	}
	l.stepping = true
	l.step(ev)
	for len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.step(next)
	}
	l.stepping = false
	l.flushVS()
}

// flushVS submits the coalesced FxSendVS messages of the finished dispatch
// to vsg. Submitting can synchronously re-enter the shell (a leader's own
// submission is ordered and delivered inline) and emit further sends; the
// loop coalesces those too, and the flushing guard stops the re-entrant
// dispatch from flushing recursively.
func (l *Layer) flushVS() {
	if l.flushing {
		return
	}
	l.flushing = true
	defer func() { l.flushing = false }()
	for len(l.pendingVS) > 0 {
		var payload any
		k := len(l.pendingVS)
		if k == 1 {
			payload = l.pendingVS[0]
		} else {
			payload = WireBatch{Msgs: append([]types.Msg(nil), l.pendingVS...)}
		}
		l.pendingVS = l.pendingVS[:0]
		l.stats.WireFrames++
		l.stats.WirePayloads += uint64(k)
		l.node.SendInLoop(payload)
	}
}

// step performs one atomic macro-step and applies its effects.
func (l *Layer) step(ev dvscore.Event) {
	if _, isView := ev.(dvscore.EvVSNewView); isView && len(l.pendingVS) > 0 {
		// See the pendingVS field comment: unsent messages die with the view.
		l.pendingVS = l.pendingVS[:0]
	}
	var out dvscore.Outbox
	dvscore.Step(l.filter, ev, l.gc, &out)
	if l.observer != nil {
		l.observer(ev, out.Effects)
	}
	for _, fx := range out.Effects {
		switch fx := fx.(type) {
		case dvscore.FxSendVS:
			l.pendingVS = append(l.pendingVS, fx.M)
		case dvscore.FxDeliver:
			l.stats.DeliveriesUp++
			l.handler.OnDVSRecv(fx.M, fx.From)
		case dvscore.FxSafeInd:
			l.stats.SafesUp++
			l.handler.OnDVSSafe(fx.M, fx.From)
		case dvscore.FxNewPrimary:
			l.stats.Primaries++
			l.handler.OnDVSNewView(fx.View)
		case dvscore.FxGC:
			l.stats.GCs++
		}
	}
	if n := len(l.filter.Amb()); n > l.stats.MaxAmb {
		l.stats.MaxAmb = n
	}
}
