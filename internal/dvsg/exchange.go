package dvsg

import (
	"repro/internal/types"
)

// This file implements the variation sketched in the paper's discussion
// (Section 7): "one in which the state exchange at the beginning of a new
// view is supported by the dynamic view service". Instead of every
// application hand-rolling its recovery protocol (as DVS-TO-TO does in
// Figure 5), the ExchangeLayer performs it: at each new primary view it
// snapshots the application state, multicasts it within the view, gathers
// every member's snapshot, hands the application the complete exchange in
// one upcall, and registers the view with the service on the application's
// behalf.
//
// The within-view total order gives the same guarantee Figure 5 relies on:
// a member only sends ordinary messages after it has received the whole
// exchange, so every receiver completes the exchange before any
// post-establishment message of that view arrives.

// ExchangeMsg carries one member's state snapshot for a view.
type ExchangeMsg struct {
	ViewID types.ViewID
	State  string
}

// MsgKey implements types.Msg.
func (m ExchangeMsg) MsgKey() string { return "xchg:" + m.ViewID.String() + ":" + m.State }

var _ types.Msg = ExchangeMsg{}

// ExchangeHandler is the application interface of the exchange-supporting
// service. All upcalls run on the node's event loop.
type ExchangeHandler interface {
	// StateSnapshot is called when a new primary view starts; the returned
	// blob is exchanged with the other members.
	StateSnapshot(v types.View) string
	// OnExchangedView delivers the new view together with every member's
	// snapshot; the view has been registered with the DVS service.
	OnExchangedView(v types.View, states map[types.ProcID]string)
	// OnRecv and OnSafe deliver ordinary client messages, exactly as in
	// the plain DVS interface, only within exchanged views.
	OnRecv(m types.Msg, from types.ProcID)
	OnSafe(m types.Msg, from types.ProcID)
}

// ExchangeLayer adapts an ExchangeHandler to the plain DVS Handler
// interface, implementing the service-supported state exchange.
type ExchangeLayer struct {
	app ExchangeHandler
	dvs *Layer

	collecting bool
	view       types.View
	states     map[types.ProcID]string
}

var _ Handler = (*ExchangeLayer)(nil)

// NewExchangeLayer builds the adapter. Call BindDVS with the dvsg.Layer it
// sits on before the node starts.
func NewExchangeLayer(app ExchangeHandler) *ExchangeLayer {
	return &ExchangeLayer{app: app}
}

// BindDVS attaches the underlying dvsg layer.
func (x *ExchangeLayer) BindDVS(dvs *Layer) { x.dvs = dvs }

// Send forwards a client message (event-loop context only).
func (x *ExchangeLayer) Send(m types.Msg) { x.dvs.Send(m) }

// OnDVSNewView implements Handler: start the exchange.
func (x *ExchangeLayer) OnDVSNewView(v types.View) {
	x.collecting = true
	x.view = v.Clone()
	x.states = make(map[types.ProcID]string, v.Members.Len())
	snap := x.app.StateSnapshot(v.Clone())
	x.dvs.Send(ExchangeMsg{ViewID: v.ID, State: snap})
}

// OnDVSRecv implements Handler.
func (x *ExchangeLayer) OnDVSRecv(m types.Msg, from types.ProcID) {
	if xm, ok := m.(ExchangeMsg); ok {
		if !x.collecting || xm.ViewID != x.view.ID {
			return // stale exchange message from an abandoned view
		}
		x.states[from] = xm.State
		if len(x.states) == x.view.Members.Len() {
			x.collecting = false
			// Registration before the upcall: the application receives an
			// already-registered view, per the Section 7 variation.
			x.dvs.Register()
			x.app.OnExchangedView(x.view.Clone(), x.states)
		}
		return
	}
	x.app.OnRecv(m, from)
}

// OnDVSSafe implements Handler. Safe indications for exchange messages are
// absorbed; the service-level exchange does not need them (registration is
// triggered by receipt from all members, matching Figure 3's use of
// "registered" messages).
func (x *ExchangeLayer) OnDVSSafe(m types.Msg, from types.ProcID) {
	if _, ok := m.(ExchangeMsg); ok {
		return
	}
	x.app.OnSafe(m, from)
}
