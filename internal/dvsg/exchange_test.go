package dvsg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	netfab "repro/internal/net"
	"repro/internal/types"
	"repro/internal/vsg"
)

// exchangeApp records exchanged views and ordinary messages.
type exchangeApp struct {
	mu        sync.Mutex
	self      types.ProcID
	exchanges []map[types.ProcID]string
	views     []types.View
	recvs     []string
}

func (a *exchangeApp) StateSnapshot(v types.View) string {
	return fmt.Sprintf("state-of-%d", a.self)
}

func (a *exchangeApp) OnExchangedView(v types.View, states map[types.ProcID]string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := make(map[types.ProcID]string, len(states))
	for p, s := range states {
		cp[p] = s
	}
	a.exchanges = append(a.exchanges, cp)
	a.views = append(a.views, v)
}

func (a *exchangeApp) OnRecv(m types.Msg, from types.ProcID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recvs = append(a.recvs, m.MsgKey())
}

func (a *exchangeApp) OnSafe(m types.Msg, from types.ProcID) {}

func (a *exchangeApp) lastExchange() (types.View, map[types.ProcID]string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.views) == 0 {
		return types.View{}, nil, false
	}
	return a.views[len(a.views)-1], a.exchanges[len(a.exchanges)-1], true
}

func newExchangeStack(t *testing.T, n int) ([]*vsg.Node, []*ExchangeLayer, []*exchangeApp, *netfab.Fabric, []*Layer) {
	t.Helper()
	universe := types.RangeProcSet(n)
	v0 := types.InitialView(universe)
	fab := netfab.NewFabric(universe, netfab.Config{})
	var nodes []*vsg.Node
	var layers []*ExchangeLayer
	var dvsLayers []*Layer
	var apps []*exchangeApp
	for i := 0; i < n; i++ {
		id := types.ProcID(i)
		node := vsg.NewNode(vsg.Config{Self: id, Universe: universe, Initial: v0, Transport: fab})
		app := &exchangeApp{self: id}
		xl := NewExchangeLayer(app)
		layer := New(core.NewNode(id, v0, true), xl, true)
		xl.BindDVS(layer)
		layer.Bind(node)
		node.SetHandler(layer)
		nodes = append(nodes, node)
		layers = append(layers, xl)
		dvsLayers = append(dvsLayers, layer)
		apps = append(apps, app)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return nodes, layers, apps, fab, dvsLayers
}

func TestExchangeDeliversAllSnapshots(t *testing.T) {
	nodes, _, apps, fab, _ := newExchangeStack(t, 4)
	_ = nodes
	// Force a new primary view {0,1,2}: the exchange must deliver all
	// three snapshots to each member, already registered.
	fab.Partition([]types.ProcID{0, 1, 2})
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, states, ok := apps[0].lastExchange()
		if ok && v.Members.Len() == 3 {
			for _, p := range []types.ProcID{0, 1, 2} {
				want := fmt.Sprintf("state-of-%d", p)
				if states[p] != want {
					t.Fatalf("states[%d] = %q, want %q", p, states[p], want)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no exchanged view; have %v %v", v, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestExchangeAutoRegistersEnablingGC(t *testing.T) {
	nodes, _, _, fab, dvsLayers := newExchangeStack(t, 3)
	fab.Partition([]types.ProcID{0, 1})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		got := make(chan Stats, 1)
		if !nodes[0].Do(func() { got <- dvsLayers[0].Stats() }) {
			break
		}
		if st := <-got; st.GCs >= 1 && st.RegistersOut >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("service-driven registration did not trigger garbage collection")
}

func TestExchangeOrdinaryMessagesAfterExchange(t *testing.T) {
	nodes, layers, apps, _, _ := newExchangeStack(t, 3)
	nodes[1].Do(func() { layers[1].Send(types.ClientMsg("post")) })
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		apps[2].mu.Lock()
		n := len(apps[2].recvs)
		apps[2].mu.Unlock()
		if n >= 1 {
			apps[2].mu.Lock()
			got := apps[2].recvs[0]
			apps[2].mu.Unlock()
			if got != "c:post" {
				t.Fatalf("recv = %q", got)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("ordinary message not delivered through the exchange layer")
}
