package dvsg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	netfab "repro/internal/net"
	"repro/internal/types"
	"repro/internal/vsg"
)

// recorder captures DVS upcalls.
type recorder struct {
	mu    sync.Mutex
	views []types.View
	recvs []string
	safes []string
	layer *Layer
}

func (r *recorder) OnDVSNewView(v types.View) {
	r.mu.Lock()
	r.views = append(r.views, v)
	r.mu.Unlock()
	// A real application registers once it has gathered what it needs for
	// the new view; this recorder registers immediately.
	r.layer.Register()
}

func (r *recorder) OnDVSRecv(m types.Msg, from types.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recvs = append(r.recvs, m.MsgKey()+"@"+from.String())
}

func (r *recorder) OnDVSSafe(m types.Msg, from types.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.safes = append(r.safes, m.MsgKey()+"@"+from.String())
}

func (r *recorder) counts() (int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.views), len(r.recvs), len(r.safes)
}

func (r *recorder) lastView() (types.View, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.views) == 0 {
		return types.View{}, false
	}
	return r.views[len(r.views)-1].Clone(), true
}

type stack struct {
	fab    *netfab.Fabric
	nodes  []*vsg.Node
	layers []*Layer
	recs   []*recorder
}

func newStack(t *testing.T, n int) *stack {
	t.Helper()
	universe := types.RangeProcSet(n)
	v0 := types.InitialView(universe)
	s := &stack{fab: netfab.NewFabric(universe, netfab.Config{})}
	for i := 0; i < n; i++ {
		id := types.ProcID(i)
		node := vsg.NewNode(vsg.Config{Self: id, Universe: universe, Initial: v0, Transport: s.fab})
		rec := &recorder{}
		layer := New(core.NewNode(id, v0, true), rec, true)
		rec.layer = layer
		layer.Bind(node)
		node.SetHandler(layer)
		s.nodes = append(s.nodes, node)
		s.layers = append(s.layers, layer)
		s.recs = append(s.recs, rec)
	}
	for _, nd := range s.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range s.nodes {
			nd.Stop()
		}
	})
	return s
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func TestClientMessageRoundTrip(t *testing.T) {
	s := newStack(t, 3)
	s.nodes[0].Do(func() { s.layers[0].Send(types.ClientMsg("hello")) })
	waitFor(t, 3*time.Second, func() bool {
		_, recvs, safes := s.recs[2].counts()
		return recvs >= 1 && safes >= 1
	}, "delivery and safe at node 2")
	s.recs[2].mu.Lock()
	defer s.recs[2].mu.Unlock()
	if s.recs[2].recvs[0] != "c:hello@0" {
		t.Errorf("recv = %q", s.recs[2].recvs[0])
	}
}

func TestPartitionFormsDynamicPrimary(t *testing.T) {
	s := newStack(t, 5)
	s.fab.Partition([]types.ProcID{0, 1, 2}, []types.ProcID{3, 4})
	waitFor(t, 3*time.Second, func() bool {
		v, ok := s.recs[0].lastView()
		return ok && v.Members.Len() == 3
	}, "majority dynamic primary")
	// The minority side must never announce a primary of its own.
	time.Sleep(100 * time.Millisecond)
	if v, ok := s.recs[3].lastView(); ok && v.Members.Len() < 5 {
		t.Errorf("minority announced primary %s", v)
	}
}

func TestRegistrationEnablesGC(t *testing.T) {
	s := newStack(t, 3)
	// Force one view change so registration/GC activity happens beyond v0.
	s.fab.Partition([]types.ProcID{0, 1})
	waitFor(t, 3*time.Second, func() bool {
		v, ok := s.recs[0].lastView()
		return ok && v.Members.Len() == 2
	}, "primary {0,1}")
	waitFor(t, 3*time.Second, func() bool {
		ch := make(chan Stats, 1)
		if !s.nodes[0].Do(func() { ch <- s.layers[0].Stats() }) {
			return false
		}
		st := <-ch
		return st.GCs >= 1
	}, "garbage collection after registration")
}

func TestNoGCWhenDisabled(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(universe)
	fab := netfab.NewFabric(universe, netfab.Config{})
	var nodes []*vsg.Node
	var layers []*Layer
	for i := 0; i < 3; i++ {
		id := types.ProcID(i)
		node := vsg.NewNode(vsg.Config{Self: id, Universe: universe, Initial: v0, Transport: fab})
		rec := &recorder{}
		layer := New(core.NewNode(id, v0, true), rec, false) // GC disabled
		rec.layer = layer
		layer.Bind(node)
		node.SetHandler(layer)
		nodes = append(nodes, node)
		layers = append(layers, layer)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	fab.Partition([]types.ProcID{0, 1})
	time.Sleep(200 * time.Millisecond)
	ch := make(chan Stats, 1)
	if nodes[0].Do(func() { ch <- layers[0].Stats() }) {
		if st := <-ch; st.GCs != 0 {
			t.Errorf("GCs = %d with GC disabled", st.GCs)
		}
	}
}

func TestDeliveryOrderIdenticalAcrossMembers(t *testing.T) {
	s := newStack(t, 3)
	for k := 0; k < 5; k++ {
		k := k
		s.nodes[k%3].Do(func() { s.layers[k%3].Send(types.ClientMsg(fmt.Sprintf("m%d", k))) })
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, r := range s.recs {
			_, recvs, _ := r.counts()
			if recvs < 5 {
				return false
			}
		}
		return true
	}, "all deliveries")
	s.recs[0].mu.Lock()
	want := append([]string(nil), s.recs[0].recvs...)
	s.recs[0].mu.Unlock()
	for i := 1; i < 3; i++ {
		s.recs[i].mu.Lock()
		for k := range want {
			if s.recs[i].recvs[k] != want[k] {
				t.Fatalf("node %d order differs at %d", i, k)
			}
		}
		s.recs[i].mu.Unlock()
	}
}
