package core

import (
	"runtime"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/types"
)

// TestExhaustiveSmall is complete model checking up to the depth bound:
// every DVS-IMPL state reachable within 12 steps under the bounded
// environment satisfies Invariants 5.1–5.6 AND every explored transition
// satisfies the Figure 4 refinement step-correspondence to the amended DVS
// specification. Unlike the seeded random runs, a pass here covers ALL
// interleavings within the bound.
func TestExhaustiveSmall(t *testing.T) {
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &BoundedEnv{
		MaxMsgs:  1,
		MaxViews: 2,
		Views:    []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)},
	}
	ref := &Refinement{Universe: universe, Initial: v0}
	res, err := ioa.Explore(NewImpl(universe, v0), env, ioa.ExploreConfig{
		MaxStates:      100000,
		MaxDepth:       12, // complete up to this depth; see ExploreResult
		Invariants:     Invariants(),
		Refinement:     ref,
		SpecInvariants: dvs.Invariants(),
	})
	if err != nil {
		t.Fatalf("after %d states / %d edges: %v", res.States, res.Edges, err)
	}
	t.Logf("exhaustive: %d states, %d edges, depth %d, truncated=%v",
		res.States, res.Edges, res.MaxDepth, res.Truncated)
	if res.States < 100 {
		t.Errorf("suspiciously small state space: %d", res.States)
	}
}

// TestExhaustiveThreeProcs explores a 3-process configuration with a
// minority and a majority candidate view (invariants only, to keep the
// space manageable).
func TestExhaustiveThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("larger exploration")
	}
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	env := &BoundedEnv{
		MaxMsgs:  0, // membership dynamics only
		MaxViews: 3,
		Views:    []types.ProcSet{types.NewProcSet(0, 1), types.NewProcSet(1, 2)},
	}
	res, err := ioa.Explore(NewImpl(universe, v0), env, ioa.ExploreConfig{
		MaxStates:  200000,
		MaxDepth:   12,
		Invariants: Invariants(),
	})
	if err != nil {
		t.Fatalf("after %d states: %v", res.States, err)
	}
	t.Logf("exhaustive: %d states, %d edges, depth %d, truncated=%v",
		res.States, res.Edges, res.MaxDepth, res.Truncated)
}

func TestBoundedEnvRespectsBounds(t *testing.T) {
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &BoundedEnv{MaxMsgs: 1, MaxViews: 2,
		Views: []types.ProcSet{types.NewProcSet(0, 1)}}
	im := NewImpl(universe, v0)

	// Initially: sends offered (0 messages in system), createview offered,
	// registers not offered (v0 already registered by P0 members).
	acts := env.Inputs(im)
	var sends, creates, regs int
	for _, a := range acts {
		switch a.Name {
		case "dvs-gpsnd":
			sends++
		case "vs-createview":
			creates++
		case "dvs-register":
			regs++
		}
	}
	if sends != 2 || creates != 1 || regs != 0 {
		t.Fatalf("initial inputs: sends=%d creates=%d regs=%d", sends, creates, regs)
	}

	// After one send the message count reaches the bound: no more sends.
	if err := im.Perform(acts[0]); err != nil {
		t.Fatal(err)
	}
	for _, a := range env.Inputs(im) {
		if a.Name == "dvs-gpsnd" {
			t.Fatal("send offered beyond MaxMsgs")
		}
	}
}

// TestExploreParallelMatchesSerial: the level-synchronous parallel BFS must
// visit exactly the state space the serial exploration visits — same
// states, edges, and depth — for bounded model checking of DVS-IMPL.
func TestExploreParallelMatchesSerial(t *testing.T) {
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &BoundedEnv{
		MaxMsgs:  1,
		MaxViews: 2,
		Views:    []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)},
	}
	run := func(parallel int) ioa.ExploreResult {
		res, err := ioa.Explore(NewImpl(universe, v0), env, ioa.ExploreConfig{
			MaxStates:  100000,
			MaxDepth:   10,
			Parallel:   parallel,
			Invariants: Invariants(),
		})
		if err != nil {
			t.Fatalf("parallel=%d: after %d states: %v", parallel, res.States, err)
		}
		return res
	}
	serial := run(1)
	par := run(runtime.NumCPU())
	if serial.States != par.States || serial.Edges != par.Edges || serial.MaxDepth != par.MaxDepth {
		t.Errorf("parallel exploration diverged:\n  serial:   %+v\n  parallel: %+v", serial, par)
	}
	if serial.States < 100 {
		t.Errorf("suspiciously small state space: %d", serial.States)
	}
}
