package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// Refinement is the function F of Figure 4, mechanized as an ioa.Refinement
// from DVS-IMPL to the DVS specification. Beyond Figure 4's components we
// also map the specification's attempted sets (t.attempted[g] = processes
// that attempted the view with id g), which Figure 4 leaves implicit because
// they are proof-only variables; this is required for full-state comparison.
type Refinement struct {
	Universe types.ProcSet
	Initial  types.View
	// Literal selects the DVS specification exactly as printed in Figure 2
	// as the target. The literal refinement is NOT valid — the dvs-safe step
	// correspondence fails (see the spec/dvs package documentation) — and is
	// provided so that tests can demonstrate the failing step mechanically.
	Literal bool
}

var _ ioa.Refinement = (*Refinement)(nil)

// SpecInitial implements ioa.Refinement.
func (r *Refinement) SpecInitial() ioa.Automaton {
	if r.Literal {
		return dvs.NewLiteral(r.Universe, r.Initial)
	}
	return dvs.New(r.Universe, r.Initial)
}

// Abstract implements ioa.Refinement: it computes F(s) per Figure 4.
func (r *Refinement) Abstract(a ioa.Automaton) (ioa.Automaton, error) {
	im, ok := a.(*Impl)
	if !ok {
		return nil, fmt.Errorf("abstract: want *core.Impl, got %T", a)
	}
	st := dvs.State{
		Universe:   r.Universe,
		Initial:    r.Initial,
		Literal:    r.Literal,
		Current:    make(map[types.ProcID]types.ViewID),
		Attempted:  make(map[types.ViewID]types.ProcSet),
		Registered: make(map[types.ViewID]types.ProcSet),
		Queues:     make(map[types.ViewID][]dvs.Entry),
		Pending:    make(map[types.ProcID]map[types.ViewID][]types.Msg),
		Next:       make(map[types.ProcID]map[types.ViewID]int),
		NextSafe:   make(map[types.ProcID]map[types.ViewID]int),
		Rcvd:       make(map[types.ProcID]map[types.ViewID]int),
	}

	// t.created = ∪_p attempted_p; t.attempted[g] = attempting processes.
	// Shared (read-only) views are fine throughout: FromState deep-copies.
	createdIDs := make(map[types.ViewID]types.View)
	for _, p := range im.procs {
		for _, v := range im.nodes[p].AttemptedShared() {
			createdIDs[v.ID] = v
			set, ok := st.Attempted[v.ID]
			if !ok {
				set = types.NewProcSet()
				st.Attempted[v.ID] = set
			}
			set.Add(p)
		}
	}
	for _, v := range createdIDs {
		st.Created = append(st.Created, v)
	}

	vsCreated := im.vs.CreatedShared()
	for _, p := range im.procs {
		n := im.nodes[p]
		// t.current-viewid[p] = client-cur.id_p.
		if cc, ok := n.ClientCur(); ok {
			st.Current[p] = cc.ID
		}
		// t.registered[g] = {p | reg[g]_p}.
		for _, v := range vsCreated {
			if n.Reg(v.ID) {
				set, ok := st.Registered[v.ID]
				if !ok {
					set = types.NewProcSet()
					st.Registered[v.ID] = set
				}
				set.Add(p)
			}
		}
	}

	for _, v := range vsCreated {
		g := v.ID
		// t.queue[g] = purge(s.queue[g]).
		var tq []dvs.Entry
		vsQueue := im.vs.QueueShared(g)
		for _, e := range vsQueue {
			if types.IsClient(e.M) {
				tq = append(tq, dvs.Entry{M: e.M, P: e.P})
			}
		}
		if len(tq) > 0 {
			st.Queues[g] = tq
		}
		for _, p := range im.procs {
			n := im.nodes[p]
			// t.pending[p,g] = purge(s.pending[p,g]) + purge(s.msgs-to-vs[g]_p).
			pend := Purge(im.vs.PendingShared(p, g))
			pend = append(pend, Purge(n.MsgsToVSShared(g))...)
			if len(pend) > 0 {
				if st.Pending[p] == nil {
					st.Pending[p] = make(map[types.ViewID][]types.Msg)
				}
				st.Pending[p][g] = pend
			}
			// t.rcvd[p,g] = s.next[p,g] - purgesize(queue(1..next-1)): the
			// client messages p's service endpoint has received in g
			// (amended target only).
			next := im.vs.Next(p, g)
			tRcvd := next - purgeSizeEntries(vsQueue[:next-1])
			if !r.Literal && tRcvd != 1 {
				if st.Rcvd[p] == nil {
					st.Rcvd[p] = make(map[types.ViewID]int)
				}
				st.Rcvd[p][g] = tRcvd
			}
			// t.next[p,g] = s.next[p,g] - purgesize(queue(1..next-1)) - |msgs-from-vs[g]_p|.
			tNext := tRcvd - n.MsgsFromVSLen(g)
			if tNext != 1 {
				if st.Next[p] == nil {
					st.Next[p] = make(map[types.ViewID]int)
				}
				st.Next[p][g] = tNext
			}
			// t.next-safe analogous with safe-from-vs.
			ns := im.vs.NextSafe(p, g)
			tNS := ns - purgeSizeEntries(vsQueue[:ns-1]) - n.SafeFromVSLen(g)
			if tNS != 1 {
				if st.NextSafe[p] == nil {
					st.NextSafe[p] = make(map[types.ViewID]int)
				}
				st.NextSafe[p][g] = tNS
			}
		}
	}
	return dvs.FromState(st), nil
}

func purgeSizeEntries(q []vsspec.Entry) int {
	n := 0
	for _, e := range q {
		if !types.IsClient(e.M) {
			n++
		}
	}
	return n
}

// Plan implements ioa.Refinement, following the case analysis of Lemma 5.8:
//
//   - external DVS actions map to themselves, except dvs-newview(v)_p which
//     is preceded by dvs-createview(v) when v is not yet in F(s).created
//     ("we think of DVS-CREATEVIEW(v) as occurring at the time of the first
//     DVS-NEWVIEW(v) event");
//   - vs-order on a client message maps to dvs-order;
//   - every other hidden action maps to the empty fragment.
func (r *Refinement) Plan(pre ioa.Automaton, act ioa.Action) ([]ioa.Action, error) {
	im, ok := pre.(*Impl)
	if !ok {
		return nil, fmt.Errorf("plan: want *core.Impl, got %T", pre)
	}
	switch act.Name {
	case dvs.ActNewView:
		p, ok := act.Param.(dvs.NewViewParam)
		if !ok {
			return nil, badActParam(act)
		}
		created := false
		for _, q := range im.procs {
			if im.nodes[q].HasAttempted(p.View.ID) {
				created = true
				break
			}
		}
		if created {
			return []ioa.Action{act}, nil
		}
		return []ioa.Action{
			{Name: dvs.ActCreateView, Kind: ioa.KindInternal, Param: dvs.CreateViewParam{View: p.View}},
			act,
		}, nil

	case dvs.ActGpSnd, dvs.ActRegister, dvs.ActGpRcv, dvs.ActSafe:
		return []ioa.Action{act}, nil

	case vsspec.ActOrder:
		p, ok := act.Param.(vsspec.OrderParam)
		if !ok {
			return nil, badActParam(act)
		}
		if !types.IsClient(p.M) {
			return nil, nil
		}
		return []ioa.Action{{
			Name:  dvs.ActOrder,
			Kind:  ioa.KindInternal,
			Param: dvs.OrderParam{M: p.M, P: p.P, G: p.G},
		}}, nil

	case vsspec.ActGpRcv:
		if r.Literal {
			return nil, nil
		}
		p, ok := act.Param.(vsspec.RcvParam)
		if !ok {
			return nil, badActParam(act)
		}
		if !types.IsClient(p.M) {
			return nil, nil
		}
		// The receiving process's VS-current view in the pre-state is the
		// view the message is consumed in.
		g, hasView := im.vs.CurrentViewID(p.To)
		if !hasView {
			return nil, fmt.Errorf("plan vs-gprcv: %s has no current view", p.To)
		}
		return []ioa.Action{{
			Name:  dvs.ActRcv,
			Kind:  ioa.KindInternal,
			Param: dvs.SvcRcvParam{M: p.M, From: p.From, To: p.To, G: g},
		}}, nil

	case vsspec.ActCreateView, vsspec.ActNewView, vsspec.ActGpSnd,
		vsspec.ActSafe, "dvs-garbage-collect":
		return nil, nil

	default:
		return nil, fmt.Errorf("plan: unknown implementation action %q", act.Name)
	}
}
