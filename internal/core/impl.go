package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// GCParam parameterizes the internal action dvs-garbage-collect(v)_p.
type GCParam struct {
	View types.View
	P    types.ProcID
}

// String renders the parameter canonically.
func (p GCParam) String() string { return p.View.String() + "_" + p.P.String() }

// Impl is DVS-IMPL: the composition of the VS specification automaton with
// one VS-TO-DVS_p automaton per process, with all external actions of VS
// hidden. Its external signature is exactly that of the DVS specification,
// and the external actions reuse the dvs package's names and parameter
// types so implementation and specification traces compare directly.
type Impl struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	//lint:fpignore fixed at construction; identical across every state of one exploration
	initial types.View
	procs   []types.ProcID // sorted universe, for deterministic enumeration
	vs      *vsspec.VS
	nodes   map[types.ProcID]*Node
	//lint:fpignore symmetry group computed once from the initial state; identical (and immutable) across every state of one exploration
	syms []types.Perm //lint:clonesafe the group is immutable and conjugation-closed, so clones share it by design
}

var _ ioa.Automaton = (*Impl)(nil)

// NewImpl constructs DVS-IMPL in its initial state.
func NewImpl(universe types.ProcSet, initial types.View) *Impl {
	im := &Impl{
		universe: universe.Clone(),
		initial:  initial.Clone(),
		procs:    universe.Sorted(),
		vs:       vsspec.New(universe, initial),
		nodes:    make(map[types.ProcID]*Node, universe.Len()),
	}
	for _, p := range im.procs {
		im.nodes[p] = NewNode(p, initial, initial.Contains(p))
	}
	return im
}

// Name implements ioa.Automaton.
func (im *Impl) Name() string { return "DVS-IMPL" }

// Universe returns the processor universe.
func (im *Impl) Universe() types.ProcSet { return im.universe.Clone() }

// InitialView returns v0.
func (im *Impl) InitialView() types.View { return im.initial.Clone() }

// VS exposes the inner VS automaton (read-only use by checks and tests).
func (im *Impl) VS() *vsspec.VS { return im.vs }

// Node returns the VS-TO-DVS automaton of process p.
func (im *Impl) Node(p types.ProcID) *Node { return im.nodes[p] }

// Procs returns the sorted process ids.
func (im *Impl) Procs() []types.ProcID { return types.CloneSeq(im.procs) }

// MaxCreatedID returns the largest view id created in the underlying VS.
func (im *Impl) MaxCreatedID() types.ViewID {
	return im.vs.MaxCreatedID()
}

// VSCreateViewCandidateOK exposes the inner VS's createview precondition for
// environments proposing views.
func (im *Impl) VSCreateViewCandidateOK(v types.View) bool {
	return im.vs.CreateViewCandidateOK(v)
}

// --- Derived variables of DVS-IMPL (Section 5.1) ---

// Att returns {v ∈ created | ∃p ∈ v.set: v ∈ attempted_p}, sorted by id.
func (im *Impl) Att() []types.View {
	var out []types.View
	for _, v := range im.vs.Created() {
		for p := range v.Members {
			if im.nodes[p].HasAttempted(v.ID) {
				out = append(out, v)
				break
			}
		}
	}
	types.SortViews(out)
	return out
}

// TotAtt returns {v ∈ created | ∀p ∈ v.set: v ∈ attempted_p}, sorted by id.
func (im *Impl) TotAtt() []types.View {
	var out []types.View
	for _, v := range im.vs.Created() {
		all := true
		for p := range v.Members {
			if !im.nodes[p].HasAttempted(v.ID) {
				all = false
				break
			}
		}
		if all {
			out = append(out, v)
		}
	}
	types.SortViews(out)
	return out
}

// TotReg returns {v ∈ created | ∀p ∈ v.set: reg[v.id]_p}, sorted by id.
func (im *Impl) TotReg() []types.View {
	var out []types.View
	for _, v := range im.vs.Created() {
		all := true
		for p := range v.Members {
			if !im.nodes[p].Reg(v.ID) {
				all = false
				break
			}
		}
		if all {
			out = append(out, v)
		}
	}
	types.SortViews(out)
	return out
}

// Enabled implements ioa.Automaton. The enumeration covers:
//
//   - the inner VS automaton's locally controlled actions (hidden in the
//     composition, so re-kinded internal) — vs-newview, vs-order, vs-gprcv,
//     vs-safe;
//   - each node's locally controlled actions — vs-gpsnd (synchronizing with
//     VS's input), dvs-newview, dvs-gprcv, dvs-safe (outputs of the
//     composition), and dvs-garbage-collect (internal).
//
// vs-createview remains environment-proposed, as in the VS automaton.
func (im *Impl) Enabled() []ioa.Action {
	var acts []ioa.Action
	for _, a := range im.vs.Enabled() {
		a.Kind = ioa.KindInternal // VS external actions are hidden
		acts = append(acts, a)
	}
	for _, p := range im.procs {
		n := im.nodes[p]
		if m, ok := n.VSGpSndHead(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: vsspec.ActGpSnd, Kind: ioa.KindInternal, Param: vsspec.SndParam{M: m, P: p}})
		}
		if v, ok := n.DVSNewViewEnabled(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActNewView, Kind: ioa.KindOutput, Param: dvs.NewViewParam{View: v, P: p}})
		}
		if e, ok := n.DVSGpRcvHead(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActGpRcv, Kind: ioa.KindOutput, Param: dvs.RcvParam{M: e.M, From: e.Q, To: p}})
		}
		if e, ok := n.DVSSafeHead(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActSafe, Kind: ioa.KindOutput, Param: dvs.RcvParam{M: e.M, From: e.Q, To: p}})
		}
		for _, v := range n.GCCandidates() { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: "dvs-garbage-collect", Kind: ioa.KindInternal, Param: GCParam{View: v, P: p}})
		}
	}
	ioa.SortActions(acts)
	return acts
}

// Perform implements ioa.Automaton.
func (im *Impl) Perform(act ioa.Action) error {
	switch act.Name {
	case vsspec.ActCreateView, vsspec.ActOrder:
		return im.vs.Perform(act)

	case vsspec.ActNewView:
		p, ok := act.Param.(vsspec.NewViewParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.vs.Perform(act); err != nil {
			return err
		}
		im.nodes[p.P].OnVSNewView(p.View) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case vsspec.ActGpRcv:
		p, ok := act.Param.(vsspec.RcvParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.vs.Perform(act); err != nil {
			return err
		}
		im.nodes[p.To].OnVSGpRcv(p.M, p.From) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case vsspec.ActSafe:
		p, ok := act.Param.(vsspec.RcvParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.vs.Perform(act); err != nil {
			return err
		}
		im.nodes[p.To].OnVSSafe(p.M, p.From) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case vsspec.ActGpSnd:
		p, ok := act.Param.(vsspec.SndParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("vs-gpsnd: unknown process %s", p.P)
		}
		if err := n.TakeVSGpSndHead(p.M); err != nil { //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
			return err
		}
		return im.vs.Perform(act)

	case dvs.ActGpSnd:
		p, ok := act.Param.(dvs.SndParam)
		if !ok {
			return badActParam(act)
		}
		if !types.IsClient(p.M) {
			return fmt.Errorf("dvs-gpsnd: %s is not a client message", p.M.MsgKey())
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("dvs-gpsnd: unknown process %s", p.P)
		}
		n.OnDVSGpSnd(p.M) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case dvs.ActRegister:
		p, ok := act.Param.(dvs.RegisterParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("dvs-register: unknown process %s", p.P)
		}
		n.OnDVSRegister() //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case dvs.ActNewView:
		p, ok := act.Param.(dvs.NewViewParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("dvs-newview: unknown process %s", p.P)
		}
		return n.PerformDVSNewView(p.View) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case dvs.ActGpRcv:
		p, ok := act.Param.(dvs.RcvParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.To]
		if !exists {
			return fmt.Errorf("dvs-gprcv: unknown process %s", p.To)
		}
		return n.TakeDVSGpRcvHead(MsgFrom{M: p.M, Q: p.From}) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case dvs.ActSafe:
		p, ok := act.Param.(dvs.RcvParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.To]
		if !exists {
			return fmt.Errorf("dvs-safe: unknown process %s", p.To)
		}
		return n.TakeDVSSafeHead(MsgFrom{M: p.M, Q: p.From}) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case "dvs-garbage-collect":
		p, ok := act.Param.(GCParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("dvs-garbage-collect: unknown process %s", p.P)
		}
		return n.PerformGC(p.View) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	default:
		return fmt.Errorf("dvs-impl: unknown action %q", act.Name)
	}
}

func badActParam(act ioa.Action) error {
	return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
}

// Clone implements ioa.Automaton.
func (im *Impl) Clone() ioa.Automaton {
	c := &Impl{
		universe: im.universe.Clone(),
		initial:  im.initial.Clone(),
		procs:    types.CloneSeq(im.procs),
		vs:       im.vs.Clone().(*vsspec.VS),
		nodes:    make(map[types.ProcID]*Node, len(im.nodes)),
		syms:     im.syms, // immutable; shared across clones
	}
	for p, n := range im.nodes {
		c.nodes[p] = n.Clone()
	}
	return c
}

// Fingerprint implements ioa.Automaton. The VS component's lines are
// flattened under a "vs." prefix; each node contributes its own "n<p>."
// lines.
func (im *Impl) Fingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix("vs.")
	im.vs.Fingerprint(f)
	f.SetPrefix("")
	for _, p := range im.procs {
		im.nodes[p].AddFingerprint(f)
	}
}
