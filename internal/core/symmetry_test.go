package core

import (
	"sync"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/types"
)

// symmetricEnv returns a bounded environment whose input enumeration is
// closed under every permutation of the n-process universe: all two-process
// memberships, every member offered as origin.
func symmetricEnv(n, maxMsgs, maxViews int) *BoundedEnv {
	var views []types.ProcSet
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			views = append(views, types.NewProcSet(types.ProcID(i), types.ProcID(j)))
		}
	}
	return &BoundedEnv{MaxMsgs: maxMsgs, MaxViews: maxViews, Views: views, AllOrigins: true}
}

func TestEnableSymmetryGroupOrder(t *testing.T) {
	// Initial view = full universe: every permutation fixes the initial
	// state, so the group is the full symmetric group.
	universe := types.RangeProcSet(3)
	im := NewImpl(universe, types.InitialView(universe))
	if g := im.EnableSymmetry(); g != 6 {
		t.Errorf("full-universe initial view: group order %d, want 3! = 6", g)
	}

	// Initial view {0, 1} in a 3-process universe: only the permutations
	// fixing {0,1} setwise (and hence fixing 2) survive — the identity and
	// the 0↔1 swap.
	im = NewImpl(universe, types.InitialView(types.NewProcSet(0, 1)))
	if g := im.EnableSymmetry(); g != 2 {
		t.Errorf("asymmetric initial view: group order %d, want 2", g)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	universe := types.RangeProcSet(3)
	im := NewImpl(universe, types.InitialView(universe))
	env := symmetricEnv(3, 1, 2)

	// Drive the system into a non-trivial state, then check that permuting
	// by π and then by π⁻¹ reproduces the fingerprint exactly.
	for steps := 0; steps < 40; steps++ {
		acts := append(im.Enabled(), env.Inputs(im)...)
		if len(acts) == 0 {
			break
		}
		if err := im.Perform(acts[steps%len(acts)]); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
	}
	want := ioa.FpOf(im)
	for _, pi := range types.PermsOf(universe) {
		inv := make(types.Perm, len(pi))
		for p, q := range pi {
			inv[q] = p
		}
		if got := ioa.FpOf(im.Permute(pi).Permute(inv)); got != want {
			t.Fatalf("π⁻¹(π(s)) ≠ s for π = %v", pi)
		}
	}
}

// TestSymmetryReductionExact is the soundness check for the DVS-IMPL
// symmetry reduction: a plain exploration and a symmetry-reduced
// exploration of the same bounded space must agree exactly — the reduced
// run visits one state per orbit, where the orbits are computed from the
// plain run by canonicalizing every state it visits. Any equivariance
// violation (in transitions, the environment, or Canonicalize itself) makes
// the counts diverge.
func TestSymmetryReductionExact(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(universe)
	env := symmetricEnv(3, 1, 2)
	const depth = 7

	imPlain := NewImpl(universe, v0)
	if g := imPlain.EnableSymmetry(); g != 6 {
		t.Fatalf("group order %d, want 6", g)
	}
	var mu sync.Mutex
	orbits := make(map[ioa.Fp]struct{})
	capture := ioa.Invariant{Name: "capture-orbit", Check: func(a ioa.Automaton) error {
		fp := ioa.FpOf(a.(*Impl).Canonicalize())
		mu.Lock()
		orbits[fp] = struct{}{}
		mu.Unlock()
		return nil
	}}
	resPlain, err := ioa.Explore(imPlain, env, ioa.ExploreConfig{
		MaxDepth:   depth,
		Invariants: append(Invariants(), capture),
	})
	if err != nil {
		t.Fatalf("plain exploration: %v", err)
	}

	imSym := NewImpl(universe, v0)
	imSym.EnableSymmetry()
	resSym, err := ioa.Explore(imSym, env, ioa.ExploreConfig{
		MaxDepth:      depth,
		AuditSymmetry: true,
		Invariants:    Invariants(),
	})
	if err != nil {
		t.Fatalf("symmetry exploration: %v", err)
	}

	if resSym.States != len(orbits) {
		t.Errorf("symmetry run visited %d states; plain run saw %d orbits", resSym.States, len(orbits))
	}
	if resSym.States >= resPlain.States {
		t.Errorf("no reduction: %d plain states vs %d orbits", resPlain.States, resSym.States)
	}
	t.Logf("reduction: %d states -> %d orbits (%.2fx)",
		resPlain.States, resSym.States, float64(resPlain.States)/float64(resSym.States))
}

// TestSymmetryWithRefinement checks that the refinement obligation composes
// with symmetry reduction: the Figure 4 abstraction is equivariant, so
// checking each real edge and then canonicalizing still verifies every
// orbit against the DVS specification.
func TestSymmetryWithRefinement(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(universe)
	env := symmetricEnv(3, 1, 2)
	im := NewImpl(universe, v0)
	im.EnableSymmetry()
	res, err := ioa.Explore(im, env, ioa.ExploreConfig{
		MaxDepth:       6,
		Symmetry:       true,
		Invariants:     Invariants(),
		Refinement:     &Refinement{Universe: universe, Initial: v0},
		SpecInvariants: dvs.Invariants(),
	})
	if err != nil {
		t.Fatalf("after %d states: %v", res.States, err)
	}
	if res.States < 50 {
		t.Errorf("suspiciously small reduced space: %d states", res.States)
	}
	t.Logf("symmetry+refinement: %d states, %d edges", res.States, res.Edges)
}
