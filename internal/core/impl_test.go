package core

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

func implSetup(n int) (types.ProcSet, types.View) {
	universe := types.RangeProcSet(n)
	p0 := types.NewProcSet(0, 1, types.ProcID(n-1))
	return universe, types.InitialView(p0)
}

func TestImplInvariants(t *testing.T) {
	universe, v0 := implSetup(4)
	ex := &ioa.Executor{Steps: 400, Seed: 7}
	_, err := ex.RunSeeds(6, func() ioa.Automaton { return NewImpl(universe, v0) },
		func(int64) ioa.Environment { return NewEnv(42, universe) }, Invariants())
	if err != nil {
		t.Fatalf("Invariants 5.1–5.6 violated: %v", err)
	}
}

func TestImplInvariantsLargerUniverse(t *testing.T) {
	universe, v0 := implSetup(6)
	ex := &ioa.Executor{Steps: 500, Seed: 70}
	_, err := ex.RunSeeds(3, func() ioa.Automaton { return NewImpl(universe, v0) },
		func(int64) ioa.Environment { return NewEnv(43, universe) }, Invariants())
	if err != nil {
		t.Fatal(err)
	}
}

// TestInvariant523LiteralIsViolated demonstrates, mechanically, that part 3
// of Invariant 5.2 exactly as printed in the paper (use_p bounded by
// client-cur.id) does not hold on reachable states: a process learns, via
// info messages received in its VS-current view, of views attempted by
// others with ids above its own client-current view. The amended bound
// (use_p ≤ cur.id) does hold — see TestImplInvariants.
func TestInvariant523LiteralIsViolated(t *testing.T) {
	universe, v0 := implSetup(4)
	inv := ioa.Invariant{Name: "5.2.3-literal", Check: func(a ioa.Automaton) error {
		return CheckInvariant52Part3Literal(a.(*Impl))
	}}
	ex := &ioa.Executor{Steps: 500}
	for seed := int64(0); seed < 50; seed++ {
		ex.Seed = seed
		_, err := ex.Run(NewImpl(universe, v0), NewEnv(seed+2000, universe), []ioa.Invariant{inv})
		if err != nil {
			t.Logf("printed Invariant 5.2(3) falsified at seed %d: %v", seed, err)
			return
		}
	}
	t.Fatal("expected a violation of the printed 5.2(3); none found — did the algorithm change?")
}

func TestDerivedVariables(t *testing.T) {
	universe, v0 := implSetup(4)
	im := NewImpl(universe, v0)
	att := im.Att()
	if len(att) != 1 || !att[0].Equal(v0) {
		t.Errorf("Att = %v", att)
	}
	totAtt := im.TotAtt()
	if len(totAtt) != 1 {
		t.Errorf("TotAtt = %v", totAtt)
	}
	totReg := im.TotReg()
	if len(totReg) != 1 || !totReg[0].Equal(v0) {
		t.Errorf("TotReg = %v", totReg)
	}
}

func TestImplExternalSignature(t *testing.T) {
	universe, v0 := implSetup(4)
	im := NewImpl(universe, v0)
	for _, a := range im.Enabled() {
		if a.External() && !strings.HasPrefix(a.Name, "dvs-") {
			t.Errorf("external action %s is not a DVS action", a)
		}
		if strings.HasPrefix(a.Name, "vs-") && a.External() {
			t.Errorf("VS action %s must be hidden", a)
		}
	}
}

func TestImplCloneDeterminism(t *testing.T) {
	universe, v0 := implSetup(4)
	im := NewImpl(universe, v0)
	env := NewEnv(5, universe)
	ex := &ioa.Executor{Steps: 120, Seed: 9}
	if _, err := ex.Run(im, env, nil); err != nil {
		t.Fatal(err)
	}
	c := im.Clone()
	if ioa.FingerprintString(c) != ioa.FingerprintString(im) {
		t.Error("clone fingerprint differs")
	}
	// Advancing the clone must not affect the original.
	pre := ioa.FingerprintString(im)
	if acts := c.Enabled(); len(acts) > 0 {
		if err := c.Perform(acts[0]); err != nil {
			t.Fatal(err)
		}
	}
	if ioa.FingerprintString(im) != pre {
		t.Error("clone mutation leaked")
	}
}

func TestImplSpuriousPrimaryRejected(t *testing.T) {
	// Directly exercise the paper's motivating subtlety: after {0,1,2}
	// exists as the only registered view, a VS view {3} (disjoint) must
	// never be attempted as a primary.
	universe, v0 := implSetup(4) // v0 = {0,1,3}
	im := NewImpl(universe, v0)
	bad := types.NewView(types.ViewID{Seq: 1, Origin: 2}, 2)
	if err := im.Perform(ioa.Action{Name: vsspec.ActCreateView, Kind: ioa.KindInternal, Param: vsspec.CreateViewParam{View: bad}}); err != nil {
		t.Fatal(err)
	}
	if err := im.Perform(ioa.Action{Name: vsspec.ActNewView, Kind: ioa.KindInternal, Param: vsspec.NewViewParam{View: bad, P: 2}}); err != nil {
		t.Fatal(err)
	}
	if v, ok := im.Node(2).DVSNewViewEnabled(); ok {
		t.Errorf("disjoint singleton %s accepted as primary", v)
	}
}

func TestGCReducesAmbiguity(t *testing.T) {
	universe, v0 := implSetup(4)
	ex := &ioa.Executor{Steps: 800, Seed: 13}
	im := NewImpl(universe, v0)
	if _, err := ex.Run(im, NewEnv(77, universe), nil); err != nil {
		t.Fatal(err)
	}
	// After a long run with registration inputs, some node must have
	// garbage collected (act advanced beyond v0) — probabilistic but stable
	// for this seed.
	advanced := false
	for _, p := range im.Procs() {
		if !im.Node(p).Act().ID.IsZero() {
			advanced = true
		}
	}
	if !advanced {
		t.Log("note: no GC happened for this seed; check seed choice")
	}
}
