package core

import (
	"math/rand"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// Env is an adversarial environment for DVS-IMPL executions. It supplies:
//
//   - dvs-gpsnd inputs with fresh client messages,
//   - dvs-register inputs (biased toward processes whose client-current view
//     is not yet registered, so registration actually happens on schedules),
//   - vs-createview proposals with random membership sets and increasing
//     ids — including disjoint and minority sets, which VS permits and the
//     VS-TO-DVS filter must reject as primaries.
//
// The environment is deterministic for a given seed, provided the automaton
// is driven deterministically (Enabled() results are sorted).
type Env struct {
	rng      *rand.Rand
	procs    []types.ProcID
	msgSeq   int
	created  int
	MaxViews int // cap on environment-proposed views (0 = unlimited)
}

var _ ioa.Environment = (*Env)(nil)

// NewEnv returns an environment over the given universe.
func NewEnv(seed int64, universe types.ProcSet) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    universe.Sorted(),
		MaxViews: 64,
	}
}

// Inputs implements ioa.Environment.
func (e *Env) Inputs(a ioa.Automaton) []ioa.Action {
	im, ok := a.(*Impl)
	if !ok {
		return nil
	}
	var acts []ioa.Action

	// Fresh client broadcast.
	p := types.RandomMember(e.rng, e.procs)
	e.msgSeq++
	m := types.ClientMsg("m" + strconv.Itoa(e.msgSeq))
	acts = append(acts, ioa.Action{Name: dvs.ActGpSnd, Kind: ioa.KindInput, Param: dvs.SndParam{M: m, P: p}})

	// Registration: prefer a process with an unregistered client view.
	regTarget := types.RandomMember(e.rng, e.procs)
	for _, q := range e.procs {
		n := im.Node(q)
		if cc, ok := n.ClientCur(); ok && !n.Reg(cc.ID) {
			regTarget = q
			break
		}
	}
	acts = append(acts, ioa.Action{Name: dvs.ActRegister, Kind: ioa.KindInput, Param: dvs.RegisterParam{P: regTarget}})

	// View proposal for the underlying VS.
	if e.MaxViews == 0 || e.created < e.MaxViews {
		members := types.RandomSubset(e.rng, e.procs)
		id := im.MaxCreatedID().Next(members.Sorted()[0])
		v := types.View{ID: id, Members: members}
		if im.VSCreateViewCandidateOK(v) {
			e.created++
			acts = append(acts, ioa.Action{Name: vsspec.ActCreateView, Kind: ioa.KindInternal, Param: vsspec.CreateViewParam{View: v}})
		}
	}
	return acts
}
