package core
