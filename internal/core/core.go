// Package core implements the paper's primary contribution at the level the
// checker explores: the composed system DVS-IMPL (all VS-TO-DVS_p automata
// plus the VS service, with VS actions hidden), executable checkers for
// Invariants 5.1–5.6, and the refinement F of Figure 4 from DVS-IMPL to the
// DVS specification (Theorem 5.9).
//
// The VS-TO-DVS_p automaton itself lives in internal/protocol/dvscore — a
// pure protocol core shared verbatim with the live runtime (internal/dvsg).
// This package re-exports its types under their historical names so that the
// composition, the refinement, and external consumers read as before.
package core

import (
	"repro/internal/protocol/dvscore"
	"repro/internal/types"
)

// Node is the VS-TO-DVS_p automaton of Figure 3 (see dvscore.Node).
type Node = dvscore.Node

// Info is a ⟨act, amb⟩ pair as recorded in info-sent and info-rcvd.
type Info = dvscore.Info

// MsgFrom is a ⟨m, q⟩ pair buffered in msgs-from-vs / safe-from-vs.
type MsgFrom = dvscore.MsgFrom

// InfoMsg is an ⟨"info", act, amb⟩ message.
type InfoMsg = dvscore.InfoMsg

// RegisteredMsg is the ⟨"registered"⟩ message.
type RegisteredMsg = dvscore.RegisteredMsg

// NewNode returns VS-TO-DVS_p in its initial state.
func NewNode(p types.ProcID, initial types.View, inP0 bool) *Node {
	return dvscore.NewNode(p, initial, inP0)
}

// NewInfoMsg builds an info message, copying and sorting the ambiguous set.
func NewInfoMsg(act types.View, amb []types.View) InfoMsg {
	return dvscore.NewInfoMsg(act, amb)
}

// Purge deletes every non-client ("info" or "registered") message from q,
// per the refinement of Figure 4.
func Purge(q []types.Msg) []types.Msg { return dvscore.Purge(q) }

// PurgeSize counts the non-client messages in q.
func PurgeSize(q []types.Msg) int { return dvscore.PurgeSize(q) }
