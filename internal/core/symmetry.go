package core

import (
	"repro/internal/ioa"
	"repro/internal/types"
)

// Symmetry reduction for DVS-IMPL. Every transition of the composition —
// the VS specification's actions, the VS-TO-DVS node actions, and the
// derived enabling conditions — is defined by set membership, majority
// intersection, and per-process bookkeeping, never by comparing process
// identifiers, so the composition is equivariant under any permutation of
// the universe: s --act--> s' implies π(s) --π(act)--> π(s'). The same
// holds for Invariants 5.1–5.6 and for the Figure 4 abstraction function.
// Exploring orbit representatives is therefore sound for DVS-IMPL whenever
// the environment's input enumeration is equivariant too (its proposed
// views closed under the group, all originating processes enumerated) —
// see DESIGN.md §6.7 and the symmetric bounded-environment mode.
var _ ioa.Symmetric = (*Impl)(nil)

// Permute returns π(im): a fresh DVS-IMPL state with every process identity
// replaced by its image under π — the inner VS state, each node's state,
// and the node indexing itself (π(im)'s node for π(p) is the permutation of
// im's node for p). The receiver is not mutated.
func (im *Impl) Permute(pi types.Perm) *Impl {
	c := &Impl{
		universe: pi.Set(im.universe),
		initial:  pi.View(im.initial),
		vs:       im.vs.Permute(pi),
		nodes:    make(map[types.ProcID]*Node, len(im.nodes)),
		syms:     im.syms, // conjugating a stabilizer by its own element is the identity
	}
	c.procs = c.universe.Sorted()
	for p, n := range im.nodes {
		c.nodes[pi.ID(p)] = n.Permute(pi)
	}
	return c
}

// EnableSymmetry computes the symmetry group — the permutations of the
// universe that fix the CURRENT state by fingerprint — and installs it for
// Canonicalize/Orbit. Call it on the initial state, before exploration: the
// stabilizer of the initial state is exactly the set of permutations under
// which every reachable orbit has a reachable representative. Returns the
// group order. With the initial view covering the whole universe the group
// is the full symmetric group (order n!); asymmetric initial views yield
// the appropriate subgroup automatically.
func (im *Impl) EnableSymmetry() int {
	self := ioa.FpOf(im)
	var syms []types.Perm
	for _, pi := range types.PermsOf(im.universe) {
		if ioa.FpOf(im.Permute(pi)) == self {
			syms = append(syms, pi)
		}
	}
	im.syms = syms
	return len(syms)
}

// Canonicalize implements ioa.Symmetric: the orbit member with the least
// fingerprint under the installed group. With no group installed (or the
// trivial group) the receiver is its own representative.
func (im *Impl) Canonicalize() ioa.Automaton {
	if len(im.syms) <= 1 {
		return im
	}
	var best ioa.Automaton = im
	bestFp := ioa.FpOf(im)
	for _, pi := range im.syms[1:] { // syms[0] is the identity
		cand := im.Permute(pi)
		if fp := ioa.FpOf(cand); fp.Less(bestFp) {
			best, bestFp = cand, fp
		}
	}
	return best
}

// Orbit implements ioa.Symmetric.
func (im *Impl) Orbit() []ioa.Automaton {
	syms := im.syms
	if len(syms) == 0 {
		syms = []types.Perm{nil} // identity only
	}
	out := make([]ioa.Automaton, 0, len(syms))
	for _, pi := range syms {
		out = append(out, im.Permute(pi))
	}
	return out
}
