package core

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/types"
)

// TestTheorem59Refinement mechanically checks Theorem 5.9 against the
// amended DVS specification: every step of DVS-IMPL simulates a DVS
// fragment with the same trace under the refinement of Figure 4, on seeded
// random executions, with Invariants 5.1–5.6 checked on every
// implementation state and 4.1–4.2 on every specification state.
func TestTheorem59Refinement(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		universe, v0 := implSetup(n)
		ref := &Refinement{Universe: universe, Initial: v0}
		cfg := ioa.CheckerConfig{
			Steps:          400,
			ImplInvariants: Invariants(),
			SpecInvariants: dvs.Invariants(),
		}
		_, err := ioa.CheckRefinementSeeds(5,
			func() ioa.Automaton { return NewImpl(universe, v0) },
			ref,
			func(int64) ioa.Environment { return NewEnv(int64(n)*99, universe) },
			cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestLiteralRefinementFailsAtSafe demonstrates the discrepancy the
// mechanization uncovered: against the DVS specification exactly as printed
// in Figure 2, the refinement of Figure 4 is NOT valid — the dvs-safe step
// correspondence fails, because the implementation reports safety at
// service-endpoint level while the printed specification demands
// client-level delivery at every member.
func TestLiteralRefinementFailsAtSafe(t *testing.T) {
	universe, v0 := implSetup(4)
	ref := &Refinement{Universe: universe, Initial: v0, Literal: true}
	for seed := int64(0); seed < 30; seed++ {
		_, err := ioa.CheckRefinement(NewImpl(universe, v0), ref,
			NewEnv(seed+1000, universe),
			ioa.CheckerConfig{Steps: 500, Seed: seed})
		if err == nil {
			continue
		}
		if strings.Contains(err.Error(), "dvs-safe") {
			t.Logf("literal refinement fails as predicted at seed %d: %v", seed, err)
			return
		}
		t.Fatalf("unexpected failure mode: %v", err)
	}
	t.Fatal("expected the literal refinement to fail at a dvs-safe step")
}

func TestAbstractInitialState(t *testing.T) {
	universe, v0 := implSetup(4)
	ref := &Refinement{Universe: universe, Initial: v0}
	abs, err := ref.Abstract(NewImpl(universe, v0))
	if err != nil {
		t.Fatal(err)
	}
	if ioa.FingerprintString(abs) != ioa.FingerprintString(dvs.New(universe, v0)) {
		t.Error("F(init) must equal the DVS initial state (Lemma 5.7)")
	}
}

func TestPlanShapes(t *testing.T) {
	universe, v0 := implSetup(4)
	im := NewImpl(universe, v0)
	ref := &Refinement{Universe: universe, Initial: v0}

	// dvs-gpsnd maps to itself.
	snd := ioa.Action{Name: dvs.ActGpSnd, Kind: ioa.KindInput, Param: dvs.SndParam{M: types.ClientMsg("x"), P: 0}}
	plan, err := ref.Plan(im, snd)
	if err != nil || len(plan) != 1 || plan[0].Key() != snd.Key() {
		t.Errorf("plan(gpsnd) = %v, %v", plan, err)
	}

	// garbage collection maps to the empty fragment.
	gc := ioa.Action{Name: "dvs-garbage-collect", Kind: ioa.KindInternal, Param: GCParam{View: v0, P: 0}}
	plan, err = ref.Plan(im, gc)
	if err != nil || len(plan) != 0 {
		t.Errorf("plan(gc) = %v, %v", plan, err)
	}

	// unknown action is an error.
	if _, err := ref.Plan(im, ioa.Action{Name: "bogus"}); err == nil {
		t.Error("unknown action must fail planning")
	}
}
