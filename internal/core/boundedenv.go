package core

import (
	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// BoundedEnv is a finitely-branching, *stateless* environment for
// exhaustive exploration of DVS-IMPL (ioa.Explore): the available inputs
// are a function of the automaton state only, so state deduplication
// remains sound.
//
//   - dvs-gpsnd("m")_p is offered while the total number of client messages
//     in the system is below MaxMsgs (client messages never leave the
//     system state — queues are persistent — so the count bounds every
//     path);
//   - dvs-register_p is offered only when p's client view is unregistered
//     (registering twice would grow the "registered" message queues without
//     bound);
//   - vs-createview is offered for each candidate membership in Views, with
//     the next available identifier, while fewer than MaxViews views exist.
type BoundedEnv struct {
	MaxMsgs  int
	MaxViews int
	Views    []types.ProcSet
	// AllOrigins proposes each candidate view once per member, with that
	// member as the identifier's origin, instead of once with the least
	// member as origin. This makes the input enumeration equivariant under
	// process permutations — required for symmetry reduction (the
	// least-member choice is not: π of the least member need not be the
	// least member of the π-image). Views must additionally be closed under
	// the symmetry group (e.g. every membership of a given size, or the full
	// universe). The candidate identifier's sequence number is the same
	// either way, so the reachable states per (membership, origin) pair are
	// unchanged; the state space grows only by the extra origin choices.
	AllOrigins bool
}

var _ ioa.Environment = (*BoundedEnv)(nil)

// Inputs implements ioa.Environment.
func (e *BoundedEnv) Inputs(a ioa.Automaton) []ioa.Action {
	im, ok := a.(*Impl)
	if !ok {
		return nil
	}
	var acts []ioa.Action

	if countClientMsgs(im) < e.MaxMsgs {
		for _, p := range im.Procs() {
			acts = append(acts, ioa.Action{Name: dvs.ActGpSnd, Kind: ioa.KindInput,
				Param: dvs.SndParam{M: types.ClientMsg("m"), P: p}})
		}
	}
	for _, p := range im.Procs() {
		n := im.Node(p)
		if cc, ok := n.ClientCur(); ok && !n.Reg(cc.ID) {
			acts = append(acts, ioa.Action{Name: dvs.ActRegister, Kind: ioa.KindInput,
				Param: dvs.RegisterParam{P: p}})
		}
	}
	if im.VS().CreatedCount() < e.MaxViews {
		next := im.MaxCreatedID()
		for _, members := range e.Views {
			origins := members.Sorted()
			if !e.AllOrigins {
				origins = origins[:1]
			}
			for _, o := range origins {
				v := types.View{ID: next.Next(o), Members: members.Clone()}
				if im.VSCreateViewCandidateOK(v) {
					acts = append(acts, ioa.Action{Name: vsspec.ActCreateView, Kind: ioa.KindInternal,
						Param: vsspec.CreateViewParam{View: v}})
				}
			}
		}
	}
	return acts
}

// countClientMsgs counts the client messages present anywhere in the
// system: VS queues and pendings plus the nodes' outgoing buffers. Client
// messages never leave these stores (per-view queues persist), so the count
// is monotone along every execution path.
func countClientMsgs(im *Impl) int {
	countClient := func(q []types.Msg) int {
		n := 0
		for _, m := range q {
			if types.IsClient(m) {
				n++
			}
		}
		return n
	}
	total := 0
	for _, v := range im.vs.CreatedShared() {
		g := v.ID
		for _, e := range im.vs.QueueShared(g) {
			if types.IsClient(e.M) {
				total++
			}
		}
		for _, p := range im.procs {
			total += countClient(im.vs.PendingShared(p, g))
			total += countClient(im.nodes[p].MsgsToVSShared(g))
		}
	}
	return total
}
