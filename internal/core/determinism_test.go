package core

import (
	"testing"

	"repro/internal/ioa"
)

// TestExecutionDeterminism: two fresh DVS-IMPL instances driven with the
// same executor and environment seeds must reach identical states — the
// property that makes every witness in this repository reproducible.
func TestExecutionDeterminism(t *testing.T) {
	universe, v0 := implSetup(5)
	run := func() string {
		ex := &ioa.Executor{Steps: 400, Seed: 17}
		res, err := ex.Run(NewImpl(universe, v0), NewEnv(71, universe), nil)
		if err != nil {
			t.Fatal(err)
		}
		return ioa.FingerprintString(res.Final)
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same seeds produced different executions")
	}
}

// TestCloneMidExecutionEquivalence: cloning mid-run and replaying the same
// action choices must keep the clone in lock-step with the original.
func TestCloneMidExecutionEquivalence(t *testing.T) {
	universe, v0 := implSetup(4)
	im := NewImpl(universe, v0)
	ex := &ioa.Executor{Steps: 200, Seed: 3}
	if _, err := ex.Run(im, NewEnv(9, universe), nil); err != nil {
		t.Fatal(err)
	}
	clone := im.Clone().(*Impl)
	// Drive both with the identical deterministic schedule: always the
	// first enabled action.
	for step := 0; step < 100; step++ {
		actsA := im.Enabled()
		actsB := clone.Enabled()
		if len(actsA) != len(actsB) {
			t.Fatalf("step %d: enabled sets differ in size", step)
		}
		if len(actsA) == 0 {
			break
		}
		if actsA[0].Key() != actsB[0].Key() {
			t.Fatalf("step %d: first enabled action differs: %s vs %s", step, actsA[0], actsB[0])
		}
		if err := im.Perform(actsA[0]); err != nil {
			t.Fatal(err)
		}
		if err := clone.Perform(actsB[0]); err != nil {
			t.Fatal(err)
		}
		if ioa.FingerprintString(im) != ioa.FingerprintString(clone) {
			t.Fatalf("step %d: states diverged", step)
		}
	}
}
