package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/protocol/dvscore"
)

// Invariants 5.1–5.6 are mechanized once, in internal/protocol/dvscore
// (System), and shared with the runtime trace-conformance replayer. This
// file adapts them to DVS-IMPL states: the system cut is the composition's
// node map plus the VS specification's created set. See dvscore/system.go
// for the formulas and for the notes on the amended forms of 5.2.3 and
// 5.3.1.

// system returns the invariant-checking cut of the composition. The nodes
// and created views are shared, not cloned: the checks are read-only.
func (im *Impl) system() dvscore.System {
	return dvscore.System{Procs: im.procs, Nodes: im.nodes, Created: im.vs.CreatedShared()}
}

// CheckInvariant51 checks Invariant 5.1: if v ∈ attempted_p and q ∈ v.set
// then cur.id_q ≥ v.id.
func CheckInvariant51(im *Impl) error { return im.system().CheckInvariant51() }

// CheckInvariant52 checks parts 1, 2, 4, 5, 6 of Invariant 5.2 as printed,
// and part 3 in the amended form w ∈ use_p ⇒ w.id ≤ cur.id_p.
func CheckInvariant52(im *Impl) error { return im.system().CheckInvariant52() }

// CheckInvariant52Part3Literal checks part 3 of Invariant 5.2 exactly as
// printed in the paper; this bound is falsifiable on reachable states and is
// provided so tests can demonstrate the discrepancy.
func CheckInvariant52Part3Literal(im *Impl) error {
	return im.system().CheckInvariant52Part3Literal()
}

// CheckInvariant53 checks Invariant 5.3 (with the w.id < g premise in part
// 1; see dvscore/system.go).
func CheckInvariant53(im *Impl) error { return im.system().CheckInvariant53() }

// CheckInvariant54 checks Invariant 5.4: if v ∈ attempted_p, q ∈ v.set,
// w ∈ attempted_q, w.id < v.id, and no x ∈ TotReg has w.id < x.id < v.id,
// then |v.set ∩ w.set| > |w.set|/2.
func CheckInvariant54(im *Impl) error { return im.system().CheckInvariant54() }

// CheckInvariant55 checks Invariant 5.5: if v ∈ Att, w ∈ TotReg, w.id <
// v.id, and no x ∈ TotReg has w.id < x.id < v.id, then |v.set ∩ w.set| >
// |w.set|/2.
func CheckInvariant55(im *Impl) error { return im.system().CheckInvariant55() }

// CheckInvariant56 checks Invariant 5.6 (the corollary used in the
// refinement proof): if v, w ∈ Att, w.id < v.id, and no x ∈ TotReg has
// w.id < x.id < v.id, then v.set ∩ w.set ≠ {}.
func CheckInvariant56(im *Impl) error { return im.system().CheckInvariant56() }

// Invariants returns Invariants 5.1–5.6 (with 5.2.3 in amended form) as ioa
// invariants over *Impl states.
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func(*Impl) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				im, ok := a.(*Impl)
				if !ok {
					return fmt.Errorf("DVS-IMPL invariant on %T", a)
				}
				return check(im)
			},
		}
	}
	return []ioa.Invariant{
		wrap("DVSIMPL-5.1", CheckInvariant51),
		wrap("DVSIMPL-5.2", CheckInvariant52),
		wrap("DVSIMPL-5.3", CheckInvariant53),
		wrap("DVSIMPL-5.4", CheckInvariant54),
		wrap("DVSIMPL-5.5", CheckInvariant55),
		wrap("DVSIMPL-5.6", CheckInvariant56),
	}
}
