package core

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// This file mechanizes Invariants 5.1–5.6 of the paper as executable checks
// over reachable DVS-IMPL states.
//
// A note on Invariants 5.2.3 and 5.3.1: the paper's printed statements are
// slightly stronger than what the algorithm maintains.
//
//   - 5.2.3 as printed says every view in use_p = {act_p} ∪ amb_p has id
//     ≤ client-cur.id_p. But p updates act/amb upon *receiving* info
//     messages in its VS-current view cur_p, which may run ahead of
//     client-cur_p; p can therefore learn of views attempted by others with
//     ids strictly between client-cur.id_p and cur.id_p. The property the
//     proofs actually use at dvs-newview(v)_p steps is w.id < v.id = cur.id,
//     which follows from the amended bound w.id ≤ cur.id_p together with
//     Invariant 5.2.6 (info contents have ids < the view they were sent in).
//     CheckInvariant52Literal checks the printed bound; CheckInvariant52
//     checks the amended bound. Tests demonstrate the printed bound is
//     violated on reachable states while the amended one holds.
//
//   - 5.3.1 as printed omits the premise w.id < g: after p attempts the view
//     v with v.id = g itself, v ∈ attempted_p but v is (correctly) not in
//     the info p sent for g. We check 5.3.1 with the w.id < g premise, which
//     is exactly the instance the proof of Invariant 5.4 uses.

// CheckInvariant51 checks Invariant 5.1: if v ∈ attempted_p and q ∈ v.set
// then cur.id_q ≥ v.id.
func CheckInvariant51(im *Impl) error {
	for _, p := range im.procs {
		for _, v := range im.nodes[p].attempted {
			for q := range v.Members {
				nq := im.nodes[q]
				if !nq.curOK || nq.cur.ID.Less(v.ID) {
					return fmt.Errorf("p=%s attempted %s but cur_%s < v.id", p, v, q)
				}
			}
		}
	}
	return nil
}

// CheckInvariant52 checks parts 1, 2, 4, 5, 6 of Invariant 5.2 as printed,
// and part 3 in the amended form w ∈ use_p ⇒ w.id ≤ cur.id_p.
func CheckInvariant52(im *Impl) error {
	totIDs := im.totRegIDs()
	totReg := make(map[types.ViewID]struct{}, len(totIDs))
	for _, id := range totIDs {
		totReg[id] = struct{}{}
	}
	created := im.vs.CreatedShared()
	for _, p := range im.procs {
		n := im.nodes[p]
		act := n.act
		// (1) act_p ∈ TotReg.
		if _, ok := totReg[act.ID]; !ok {
			return fmt.Errorf("5.2(1): act_%s = %s not totally registered", p, act)
		}
		// (2) w ∈ amb_p ⇒ act.id_p < w.id.
		for _, w := range n.amb {
			if !act.ID.Less(w.ID) {
				return fmt.Errorf("5.2(2): amb_%s contains %s with id ≤ act.id %s", p, w, act.ID)
			}
		}
		// (3 amended) w ∈ use_p = {act} ∪ amb ⇒ w.id ≤ cur.id_p (when
		// cur ≠ ⊥; when cur = ⊥, use_p = {v0}).
		if n.curOK {
			cur := n.cur
			if cur.ID.Less(act.ID) {
				return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, act, cur.ID)
			}
			for _, w := range n.amb {
				if cur.ID.Less(w.ID) {
					return fmt.Errorf("5.2(3 amended): use_%s contains %s with id > cur.id %s", p, w, cur.ID)
				}
			}
		} else {
			if !act.ID.IsZero() {
				return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, act)
			}
			for _, w := range n.amb {
				if !w.ID.IsZero() {
					return fmt.Errorf("5.2(3 amended): use_%s contains %s with cur = ⊥", p, w)
				}
			}
		}
		// (4,5,6) info-sent constraints.
		for _, v := range created {
			info, ok := n.infoSent[v.ID]
			if !ok {
				continue
			}
			if _, reg := totReg[info.Act.ID]; !reg {
				return fmt.Errorf("5.2(4): info-sent[%s]_%s has act %s not totally registered", v.ID, p, info.Act)
			}
			for _, w := range info.Amb {
				if !info.Act.ID.Less(w.ID) {
					return fmt.Errorf("5.2(5): info-sent[%s]_%s has amb view %s with id ≤ act.id", v.ID, p, w)
				}
			}
			if !info.Act.ID.Less(v.ID) {
				return fmt.Errorf("5.2(6): info-sent[%s]_%s contains %s with id ≥ g", v.ID, p, info.Act)
			}
			for _, w := range info.Amb {
				if !w.ID.Less(v.ID) {
					return fmt.Errorf("5.2(6): info-sent[%s]_%s contains %s with id ≥ g", v.ID, p, w)
				}
			}
		}
	}
	return nil
}

// CheckInvariant52Part3Literal checks part 3 of Invariant 5.2 exactly as
// printed in the paper: if client-cur_p ≠ ⊥ and w ∈ {act_p} ∪ amb_p then
// w.id ≤ client-cur.id_p. See the file comment: this printed bound is
// falsifiable on reachable states; it is provided so tests can demonstrate
// the discrepancy.
func CheckInvariant52Part3Literal(im *Impl) error {
	for _, p := range im.procs {
		n := im.nodes[p]
		cc, ok := n.ClientCur()
		if !ok {
			continue
		}
		for _, w := range n.Use() {
			if cc.ID.Less(w.ID) {
				return fmt.Errorf("5.2(3 literal): use_%s contains %s with id > client-cur.id %s", p, w, cc.ID)
			}
		}
	}
	return nil
}

// CheckInvariant53 checks Invariant 5.3:
//
//	(1) if info-sent[g]_p = ⟨x, X⟩ and w ∈ attempted_p with w.id < g, then
//	    w ∈ {x} ∪ X or w.id < x.id;
//	(2) if info-rcvd[q, g]_p = ⟨x, X⟩ and w ∈ {x} ∪ X, then w ∈ use_p or
//	    w.id < act.id_p.
func CheckInvariant53(im *Impl) error {
	created := im.vs.CreatedShared()
	for _, p := range im.procs {
		n := im.nodes[p]
		actID := n.act.ID
		for _, v := range created {
			g := v.ID
			if info, ok := n.infoSent[g]; ok {
				for _, w := range n.attempted {
					if !w.ID.Less(g) {
						continue
					}
					if viewIn(w, info.Act, info.Amb) || w.ID.Less(info.Act.ID) {
						continue
					}
					return fmt.Errorf("5.3(1): p=%s info-sent[%s] omits attempted %s", p, g, w)
				}
			}
			for _, q := range im.procs {
				info, ok := n.infoRcvd[procViewKey{q, g}]
				if !ok {
					continue
				}
				if !n.inUse(info.Act.ID) && !info.Act.ID.Less(actID) {
					return fmt.Errorf("5.3(2): p=%s info-rcvd[%s,%s] view %s neither in use nor below act", p, q, g, info.Act)
				}
				for _, w := range info.Amb {
					if n.inUse(w.ID) || w.ID.Less(actID) {
						continue
					}
					return fmt.Errorf("5.3(2): p=%s info-rcvd[%s,%s] view %s neither in use nor below act", p, q, g, w)
				}
			}
		}
	}
	return nil
}

// CheckInvariant54 checks Invariant 5.4: if v ∈ attempted_p, q ∈ v.set,
// w ∈ attempted_q, w.id < v.id, and no x ∈ TotReg has w.id < x.id < v.id,
// then |v.set ∩ w.set| > |w.set|/2.
func CheckInvariant54(im *Impl) error {
	totIDs := im.totRegIDs()
	for _, p := range im.procs {
		for _, v := range im.nodes[p].attempted {
			for q := range v.Members {
				for _, w := range im.nodes[q].attempted {
					if !w.ID.Less(v.ID) {
						continue
					}
					if hasIDBetween(totIDs, w.ID, v.ID) {
						continue
					}
					if !v.Members.MajorityOf(w.Members) {
						return fmt.Errorf("5.4: v=%s (att by %s), w=%s (att by %s ∈ v.set): no majority intersection", v, p, w, q)
					}
				}
			}
		}
	}
	return nil
}

// CheckInvariant55 checks Invariant 5.5: if v ∈ Att, w ∈ TotReg, w.id <
// v.id, and no x ∈ TotReg has w.id < x.id < v.id, then |v.set ∩ w.set| >
// |w.set|/2.
func CheckInvariant55(im *Impl) error {
	att := im.attShared()
	totReg := im.totRegShared()
	for _, v := range att {
		// totReg is sorted by id, so in descending order the first w below v
		// is itself totally registered: every earlier w' has w strictly
		// between w' and v, so only this w needs checking.
		for j := len(totReg) - 1; j >= 0; j-- {
			w := totReg[j]
			if !w.ID.Less(v.ID) {
				continue
			}
			if !v.Members.MajorityOf(w.Members) {
				return fmt.Errorf("5.5: v=%s, w=%s ∈ TotReg: no majority intersection", v, w)
			}
			break
		}
	}
	return nil
}

// CheckInvariant56 checks Invariant 5.6 (the corollary used in the
// refinement proof): if v, w ∈ Att, w.id < v.id, and no x ∈ TotReg has
// w.id < x.id < v.id, then v.set ∩ w.set ≠ {}.
func CheckInvariant56(im *Impl) error {
	att := im.attShared()
	totIDs := im.totRegIDs()
	for i := 1; i < len(att); i++ {
		v := att[i]
		// att is sorted by id; scanning w downward, once a totally
		// registered id separates w from v it separates every lower w too.
		for j := i - 1; j >= 0; j-- {
			w := att[j]
			if hasIDBetween(totIDs, w.ID, v.ID) {
				break
			}
			if !v.Members.Intersects(w.Members) {
				return fmt.Errorf("5.6: attempted views %s and %s disjoint with no intervening totally registered view", w, v)
			}
		}
	}
	return nil
}

func viewIn(w, act types.View, amb []types.View) bool {
	if w.ID == act.ID {
		return true
	}
	for _, x := range amb {
		if w.ID == x.ID {
			return true
		}
	}
	return false
}

// Invariants returns Invariants 5.1–5.6 (with 5.2.3 in amended form) as ioa
// invariants over *Impl states.
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func(*Impl) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				im, ok := a.(*Impl)
				if !ok {
					return fmt.Errorf("DVS-IMPL invariant on %T", a)
				}
				return check(im)
			},
		}
	}
	return []ioa.Invariant{
		wrap("DVSIMPL-5.1", CheckInvariant51),
		wrap("DVSIMPL-5.2", CheckInvariant52),
		wrap("DVSIMPL-5.3", CheckInvariant53),
		wrap("DVSIMPL-5.4", CheckInvariant54),
		wrap("DVSIMPL-5.5", CheckInvariant55),
		wrap("DVSIMPL-5.6", CheckInvariant56),
	}
}
