package toimpl

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/to"
	"repro/internal/types"
)

func toSetup(n int) (types.ProcSet, types.View) {
	universe := types.RangeProcSet(n)
	v0 := types.InitialView(types.NewProcSet(0, 1, types.ProcID(n-1)))
	return universe, v0
}

func runTO(universe types.ProcSet, v0 types.View, cfg Config, seeds, steps int) error {
	for seed := int64(0); seed < int64(seeds); seed++ {
		impl := NewImpl(universe, v0, cfg)
		mon := to.NewMonitor(universe)
		c := ioa.CheckerConfig{Steps: steps, Seed: seed, ImplInvariants: Invariants()}
		if _, err := ioa.CheckTraceInclusion(impl, mon, NewEnv(seed+500, universe), c); err != nil {
			return err
		}
	}
	return nil
}

// TestTheorem64OverLiteralDVS mechanically checks Theorem 6.4 in the
// paper's own setting: TO-IMPL (Figure 5 with the label repair) over the
// DVS specification exactly as printed in Figure 2. Every external trace is
// accepted by the TO monitor and Invariants 6.1–6.3 hold at every state.
func TestTheorem64OverLiteralDVS(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		universe, v0 := toSetup(n)
		if err := runTO(universe, v0, Config{DVS: DVSLiteral}, 6, 500); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTO64OverDrainedDVS checks the end-to-end sound configuration: the
// amended DVS specification (what Figure 3 actually refines) plus the
// view-synchronous drain rule. This is the contract the runtime stack
// provides.
func TestTO64OverDrainedDVS(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		universe, v0 := toSetup(n)
		if err := runTO(universe, v0, Config{DVS: DVSAmendedDrained}, 6, 500); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTOUnsoundOverAmendedUndrainedDVS demonstrates the compositionality gap
// the mechanization uncovered: over the amended (endpoint-safe) DVS without
// the drain rule, Figure 5 can diverge — a member that moves to a new view
// without draining its delivery buffer omits messages other members already
// confirmed from its summary, and the new primary confirms a conflicting
// order.
func TestTOUnsoundOverAmendedUndrainedDVS(t *testing.T) {
	universe, v0 := toSetup(4)
	var firstErr error
	for seed := int64(0); seed < 20; seed++ {
		impl := NewImpl(universe, v0, Config{DVS: DVSAmended})
		mon := to.NewMonitor(universe)
		c := ioa.CheckerConfig{Steps: 600, Seed: seed, ImplInvariants: Invariants()}
		if _, err := ioa.CheckTraceInclusion(impl, mon, NewEnv(seed+900, universe), c); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("expected a total-order violation over amended undrained DVS")
	}
	t.Logf("divergence demonstrated: %v", firstErr)
}

// TestLiteralFigure5DuplicatesLabels demonstrates the other printed-figure
// wrinkle: with LABEL enabled during recovery (exactly as printed), a label
// created between the view notification and establishment is ordered twice —
// once via the state exchange and once when the buffered copy is sent — and
// the duplicate delivery is rejected by the TO monitor.
func TestLiteralFigure5DuplicatesLabels(t *testing.T) {
	universe, v0 := toSetup(4)
	var firstErr error
	for seed := int64(0); seed < 30; seed++ {
		impl := NewImpl(universe, v0, Config{DVS: DVSLiteral, LiteralFigure5: true})
		mon := to.NewMonitor(universe)
		c := ioa.CheckerConfig{Steps: 600, Seed: seed}
		if _, err := ioa.CheckTraceInclusion(impl, mon, NewEnv(seed+500, universe), c); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("expected the literal Figure 5 to produce a duplicate delivery")
	}
	t.Logf("duplicate ordering demonstrated: %v", firstErr)
}

func TestTOImplExternalSignature(t *testing.T) {
	universe, v0 := toSetup(3)
	im := NewImpl(universe, v0, Config{})
	for _, a := range im.Enabled() {
		if a.External() && a.Name != to.ActBRcv {
			t.Errorf("unexpected external action %s", a)
		}
		if strings.HasPrefix(a.Name, "dvs-") && a.External() {
			t.Errorf("DVS action %s must be hidden", a)
		}
	}
}

func TestAllStateTracksSummaries(t *testing.T) {
	universe, v0 := toSetup(3)
	im := NewImpl(universe, v0, Config{DVS: DVSLiteral})
	if n := len(im.AllState()); n != 0 {
		t.Fatalf("initial allstate = %d", n)
	}
	// Run a while; after view changes, summaries must appear.
	ex := &ioa.Executor{Steps: 600, Seed: 4}
	if _, err := ex.Run(im, NewEnv(123, universe), nil); err != nil {
		t.Fatal(err)
	}
	if len(im.AllState()) == 0 {
		t.Log("note: no summaries in flight for this seed")
	}
	if err := CheckInvariant61(im); err != nil {
		t.Errorf("6.1: %v", err)
	}
	if err := CheckInvariant62(im); err != nil {
		t.Errorf("6.2: %v", err)
	}
	if err := CheckInvariant63(im); err != nil {
		t.Errorf("6.3: %v", err)
	}
}

func TestTOImplCloneDeterminism(t *testing.T) {
	universe, v0 := toSetup(3)
	im := NewImpl(universe, v0, Config{})
	ex := &ioa.Executor{Steps: 150, Seed: 8}
	if _, err := ex.Run(im, NewEnv(9, universe), nil); err != nil {
		t.Fatal(err)
	}
	if ioa.FingerprintString(im.Clone()) != ioa.FingerprintString(im) {
		t.Error("clone fingerprint differs")
	}
}
