package toimpl

import (
	"repro/internal/ioa"
	"repro/internal/types"
)

// TO-IMPL implements the Symmetric hooks, but with a caveat the DVS layer
// does not have: the Figure 5 algorithm itself is NOT equivariant under
// process permutations — the state-exchange representative is chosen by
// least process id among the longest orders, and fullorder's tail sorts
// labels by (viewid, seqno, origin) — so exploring orbit representatives of
// TO-IMPL is not a sound reduction in general. The hooks exist for
// orbit-soundness audits (ExploreConfig.AuditSymmetry) and for experiments
// measuring how much of the space IS symmetric; see DESIGN.md §6.7.
var _ ioa.Symmetric = (*Impl)(nil)

// Permute returns π(im): a fresh TO-IMPL state with every process identity
// replaced by its image under π. The receiver is not mutated.
func (im *Impl) Permute(pi types.Perm) *Impl {
	c := &Impl{
		universe: pi.Set(im.universe),
		initial:  pi.View(im.initial),
		cfg:      im.cfg,
		dvs:      im.dvs.Permute(pi),
		nodes:    make(map[types.ProcID]*Node, len(im.nodes)),
		syms:     im.syms, // conjugating a stabilizer by its own element is the identity
	}
	c.procs = c.universe.Sorted()
	for p, n := range im.nodes {
		c.nodes[pi.ID(p)] = n.Permute(pi)
	}
	return c
}

// EnableSymmetry computes the symmetry group — the permutations of the
// universe that fix the CURRENT state by fingerprint — and installs it for
// Canonicalize/Orbit. Call it on the initial state. Returns the group
// order. Note the equivariance caveat above: installing a group makes the
// hooks available, it does not make reduction sound for this composition.
func (im *Impl) EnableSymmetry() int {
	self := ioa.FpOf(im)
	var syms []types.Perm
	for _, pi := range types.PermsOf(im.universe) {
		if ioa.FpOf(im.Permute(pi)) == self {
			syms = append(syms, pi)
		}
	}
	im.syms = syms
	return len(syms)
}

// Canonicalize implements ioa.Symmetric: the orbit member with the least
// fingerprint under the installed group. With no group installed (or the
// trivial group) the receiver is its own representative.
func (im *Impl) Canonicalize() ioa.Automaton {
	if len(im.syms) <= 1 {
		return im
	}
	var best ioa.Automaton = im
	bestFp := ioa.FpOf(im)
	for _, pi := range im.syms[1:] { // syms[0] is the identity
		cand := im.Permute(pi)
		if fp := ioa.FpOf(cand); fp.Less(bestFp) {
			best, bestFp = cand, fp
		}
	}
	return best
}

// Orbit implements ioa.Symmetric.
func (im *Impl) Orbit() []ioa.Automaton {
	syms := im.syms
	if len(syms) == 0 {
		syms = []types.Perm{nil} // identity only
	}
	out := make([]ioa.Automaton, 0, len(syms))
	for _, pi := range syms {
		out = append(out, im.Permute(pi))
	}
	return out
}
