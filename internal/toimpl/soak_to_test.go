package toimpl

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/to"
	"repro/internal/types"
)

func TestBigSoakTO(t *testing.T) {
	for _, cfg := range []Config{{DVS: DVSLiteral}, {DVS: DVSAmendedDrained}} {
		for _, n := range []int{3, 4, 5} {
			universe := types.RangeProcSet(n)
			v0 := types.InitialView(types.NewProcSet(0, 1, types.ProcID(n-1)))
			for seed := int64(0); seed < 30; seed++ {
				impl := NewImpl(universe, v0, cfg)
				mon := to.NewMonitor(universe)
				c := ioa.CheckerConfig{Steps: 500, Seed: seed, ImplInvariants: Invariants()}
				if _, err := ioa.CheckTraceInclusion(impl, mon, NewEnv(seed+1, universe), c); err != nil {
					t.Fatalf("cfg=%+v n=%d seed=%d: %v", cfg, n, seed, err)
				}
			}
		}
	}
}
