package toimpl

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

// TestExhaustiveSmallTO is complete model checking of TO-IMPL up to the
// depth bound: every state reachable within it satisfies Invariants 6.1–6.3
// and confirmed-prefix consistency, over the literal DVS specification (the
// paper's Theorem 6.4 setting).
func TestExhaustiveSmallTO(t *testing.T) {
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &BoundedEnv{
		MaxMsgs:  1,
		MaxViews: 2,
		Views:    []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)},
	}
	res, err := ioa.Explore(NewImpl(universe, v0, Config{DVS: DVSLiteral}), env, ioa.ExploreConfig{
		MaxStates:  200000,
		MaxDepth:   11,
		Invariants: Invariants(),
	})
	if err != nil {
		t.Fatalf("after %d states / %d edges: %v", res.States, res.Edges, err)
	}
	t.Logf("exhaustive TO: %d states, %d edges, depth %d, truncated=%v",
		res.States, res.Edges, res.MaxDepth, res.Truncated)
	if res.States < 100 {
		t.Errorf("suspiciously small state space: %d", res.States)
	}
}

// TestExhaustiveDrainedTO explores the end-to-end sound configuration
// (amended + drained DVS) to the same bound.
func TestExhaustiveDrainedTO(t *testing.T) {
	if testing.Short() {
		t.Skip("larger exploration")
	}
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	env := &BoundedEnv{
		MaxMsgs:  1,
		MaxViews: 2,
		Views:    []types.ProcSet{types.NewProcSet(0), types.NewProcSet(0, 1)},
	}
	res, err := ioa.Explore(NewImpl(universe, v0, Config{DVS: DVSAmendedDrained}), env, ioa.ExploreConfig{
		MaxStates:  200000,
		MaxDepth:   11,
		Invariants: Invariants(),
	})
	if err != nil {
		t.Fatalf("after %d states / %d edges: %v", res.States, res.Edges, err)
	}
	t.Logf("exhaustive TO (drained): %d states, %d edges, depth %d, truncated=%v",
		res.States, res.Edges, res.MaxDepth, res.Truncated)
}
