package toimpl

import (
	"testing"

	"repro/internal/ioa"
)

// TestExecutionDeterminism mirrors the core package's determinism check for
// TO-IMPL across all three DVS variants.
func TestExecutionDeterminism(t *testing.T) {
	universe, v0 := toSetup(4)
	for _, cfg := range []Config{
		{DVS: DVSLiteral},
		{DVS: DVSAmended},
		{DVS: DVSAmendedDrained},
	} {
		run := func() string {
			ex := &ioa.Executor{Steps: 400, Seed: 23}
			res, err := ex.Run(NewImpl(universe, v0, cfg), NewEnv(37, universe), nil)
			if err != nil {
				t.Fatal(err)
			}
			return ioa.FingerprintString(res.Final)
		}
		if run() != run() {
			t.Fatalf("variant %+v: nondeterministic execution", cfg)
		}
	}
}

// TestCloneMidExecutionEquivalence drives an original and its mid-run clone
// in lock-step.
func TestCloneMidExecutionEquivalence(t *testing.T) {
	universe, v0 := toSetup(3)
	im := NewImpl(universe, v0, Config{})
	ex := &ioa.Executor{Steps: 200, Seed: 5}
	if _, err := ex.Run(im, NewEnv(11, universe), nil); err != nil {
		t.Fatal(err)
	}
	clone := im.Clone().(*Impl)
	for step := 0; step < 100; step++ {
		acts := im.Enabled()
		if len(acts) == 0 {
			break
		}
		if err := im.Perform(acts[0]); err != nil {
			t.Fatal(err)
		}
		if err := clone.Perform(acts[0]); err != nil {
			t.Fatalf("step %d: clone rejected %s: %v", step, acts[0], err)
		}
		if ioa.FingerprintString(im) != ioa.FingerprintString(clone) {
			t.Fatalf("step %d: states diverged", step)
		}
	}
}
