package toimpl

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/spec/to"
	"repro/internal/types"
)

// LabelParam parameterizes the internal label(a)_p action.
type LabelParam struct {
	A string
	P types.ProcID
}

// String renders the parameter canonically.
func (p LabelParam) String() string { return p.A + "_" + p.P.String() }

// ConfirmParam parameterizes the internal confirm_p action.
type ConfirmParam struct{ P types.ProcID }

// String renders the parameter canonically.
func (p ConfirmParam) String() string { return p.P.String() }

// DVSVariant selects which DVS specification TO-IMPL composes with.
type DVSVariant int

// DVS variants. The zero value is DVSLiteral: the paper's own setting for
// Section 6 (Figure 5 over Figure 2 exactly as printed), under which
// Theorem 6.4 holds. DVSAmended is the endpoint-level-safe specification
// that the Figure 3 implementation actually refines; Figure 5 is UNSAFE over
// it (total order can diverge — see the tests), because endpoint-level safe
// no longer guarantees that a member moving to a new view carries every
// confirmed message in its summary. DVSAmendedDrained adds the
// view-synchronous drain rule, restoring safety; it is the contract the
// runtime stack in this repository provides.
const (
	DVSLiteral DVSVariant = iota
	DVSAmended
	DVSAmendedDrained
)

// Config selects the variant of TO-IMPL to build.
type Config struct {
	// DVS selects the DVS specification variant to compose with.
	DVS DVSVariant
	// LiteralFigure5 uses Figure 5's LABEL precondition and
	// DVS-SAFE(summary) handler exactly as printed; the default requires
	// status = normal to label (preventing duplicate ordering of labels
	// created during recovery) and defers marking the state exchange safe
	// until the view is established locally.
	LiteralFigure5 bool
}

// Impl is TO-IMPL: the composition of the DVS specification automaton with
// one DVS-TO-TO_p automaton per process, with all DVS actions hidden. Its
// external signature is that of the TO service: bcast(a)_p inputs and
// brcv(a)_{q,p} outputs.
type Impl struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	//lint:fpignore fixed at construction; identical across every state of one exploration
	initial types.View
	procs   []types.ProcID
	//lint:fpignore mode configuration fixed at construction, never mutated by transitions
	cfg   Config
	dvs   *dvs.DVS
	nodes map[types.ProcID]*Node
	//lint:fpignore symmetry group computed once from the initial state; identical (and immutable) across every state of one exploration
	syms []types.Perm //lint:clonesafe the group is immutable and conjugation-closed, so clones share it by design
}

var _ ioa.Automaton = (*Impl)(nil)

// NewImpl constructs TO-IMPL in its initial state.
func NewImpl(universe types.ProcSet, initial types.View, cfg Config) *Impl {
	im := &Impl{
		universe: universe.Clone(),
		initial:  initial.Clone(),
		procs:    universe.Sorted(),
		cfg:      cfg,
		nodes:    make(map[types.ProcID]*Node, universe.Len()),
	}
	switch cfg.DVS {
	case DVSAmended:
		im.dvs = dvs.New(universe, initial)
	case DVSAmendedDrained:
		im.dvs = dvs.NewDrained(universe, initial)
	default:
		im.dvs = dvs.NewLiteral(universe, initial)
	}
	for _, p := range im.procs {
		im.nodes[p] = NewNode(p, initial, initial.Contains(p), cfg.LiteralFigure5)
	}
	return im
}

// Name implements ioa.Automaton.
func (im *Impl) Name() string { return "TO-IMPL" }

// DVS exposes the inner DVS automaton.
func (im *Impl) DVS() *dvs.DVS { return im.dvs }

// Node returns the DVS-TO-TO automaton of process p.
func (im *Impl) Node(p types.ProcID) *Node { return im.nodes[p] }

// Procs returns the sorted process ids.
func (im *Impl) Procs() []types.ProcID { return types.CloneSeq(im.procs) }

// Universe returns the processor universe.
func (im *Impl) Universe() types.ProcSet { return im.universe.Clone() }

// Enabled implements ioa.Automaton.
func (im *Impl) Enabled() []ioa.Action {
	var acts []ioa.Action
	for _, a := range im.dvs.Enabled() {
		a.Kind = ioa.KindInternal // DVS actions are hidden in TO-IMPL
		acts = append(acts, a)
	}
	for _, p := range im.procs {
		n := im.nodes[p]
		if a, ok := n.LabelHead(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: "label", Kind: ioa.KindInternal, Param: LabelParam{A: a, P: p}})
		}
		if m, ok := n.GpSndLabel(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActGpSnd, Kind: ioa.KindInternal, Param: dvs.SndParam{M: m, P: p}})
		}
		if m, ok := n.GpSndSummary(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActGpSnd, Kind: ioa.KindInternal, Param: dvs.SndParam{M: m, P: p}})
		}
		if n.ConfirmEnabled() { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: "confirm", Kind: ioa.KindInternal, Param: ConfirmParam{P: p}})
		}
		if a, origin, ok := n.BRcvNext(); ok { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: to.ActBRcv, Kind: ioa.KindOutput, Param: to.BRcvParam{A: a, Origin: origin, To: p}})
		}
		if n.RegisterEnabled() { //lint:corestep checker composition: Enabled enumerates the fine-grained transitions Step composes
			acts = append(acts, ioa.Action{Name: dvs.ActRegister, Kind: ioa.KindInternal, Param: dvs.RegisterParam{P: p}})
		}
	}
	ioa.SortActions(acts)
	return acts
}

// Perform implements ioa.Automaton.
func (im *Impl) Perform(act ioa.Action) error {
	switch act.Name {
	case to.ActBCast:
		p, ok := act.Param.(to.BCastParam)
		if !ok {
			return badActParam(act)
		}
		n, exists := im.nodes[p.P]
		if !exists {
			return fmt.Errorf("bcast: unknown process %s", p.P)
		}
		n.OnBCast(p.A) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case "label":
		p, ok := act.Param.(LabelParam)
		if !ok {
			return badActParam(act)
		}
		return im.nodes[p.P].PerformLabel(p.A) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case "confirm":
		p, ok := act.Param.(ConfirmParam)
		if !ok {
			return badActParam(act)
		}
		return im.nodes[p.P].PerformConfirm() //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case to.ActBRcv:
		p, ok := act.Param.(to.BRcvParam)
		if !ok {
			return badActParam(act)
		}
		return im.nodes[p.To].PerformBRcv(p.A, p.Origin) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case dvs.ActGpSnd:
		p, ok := act.Param.(dvs.SndParam)
		if !ok {
			return badActParam(act)
		}
		n := im.nodes[p.P]
		switch m := p.M.(type) {
		case LabelMsg:
			if err := n.TakeGpSndLabel(m); err != nil { //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
				return err
			}
		case SummaryMsg:
			if err := n.TakeGpSndSummary(m); err != nil { //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
				return err
			}
		default:
			return fmt.Errorf("dvs-gpsnd: unexpected message %s", p.M.MsgKey())
		}
		return im.dvs.Perform(act)

	case dvs.ActRegister:
		p, ok := act.Param.(dvs.RegisterParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.nodes[p.P].PerformRegister(); err != nil { //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
			return err
		}
		return im.dvs.Perform(act)

	case dvs.ActNewView:
		p, ok := act.Param.(dvs.NewViewParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.dvs.Perform(act); err != nil {
			return err
		}
		im.nodes[p.P].OnDVSNewView(p.View) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton
		return nil

	case dvs.ActGpRcv:
		p, ok := act.Param.(dvs.RcvParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.dvs.Perform(act); err != nil {
			return err
		}
		return im.nodes[p.To].OnDVSGpRcv(p.M, p.From) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case dvs.ActSafe:
		p, ok := act.Param.(dvs.RcvParam)
		if !ok {
			return badActParam(act)
		}
		if err := im.dvs.Perform(act); err != nil {
			return err
		}
		return im.nodes[p.To].OnDVSSafe(p.M, p.From) //lint:corestep checker composition: Perform fires one fine-grained transition of the composed automaton

	case dvs.ActCreateView, dvs.ActOrder, dvs.ActRcv:
		return im.dvs.Perform(act)

	default:
		return fmt.Errorf("to-impl: unknown action %q", act.Name)
	}
}

func badActParam(act ioa.Action) error {
	return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
}

// Clone implements ioa.Automaton.
func (im *Impl) Clone() ioa.Automaton {
	c := &Impl{
		universe: im.universe.Clone(),
		initial:  im.initial.Clone(),
		procs:    types.CloneSeq(im.procs),
		cfg:      im.cfg,
		dvs:      im.dvs.Clone().(*dvs.DVS),
		nodes:    make(map[types.ProcID]*Node, len(im.nodes)),
		syms:     im.syms, // immutable; shared across clones
	}
	for p, n := range im.nodes {
		c.nodes[p] = n.Clone()
	}
	return c
}

// Fingerprint implements ioa.Automaton. The DVS component's lines are
// flattened under a "dvs." prefix; each node contributes its own "t<p>."
// lines.
func (im *Impl) Fingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix("dvs.")
	im.dvs.Fingerprint(f)
	f.SetPrefix("")
	for _, p := range im.procs {
		im.nodes[p].AddFingerprint(f)
	}
}
