// Package toimpl implements the application algorithm of Section 6 at the
// level the checker explores: the composed system TO-IMPL (all DVS-TO-TO_p
// automata plus the DVS specification, with DVS actions hidden) and
// executable checkers for Invariants 6.1–6.3.
//
// The DVS-TO-TO_p automaton itself lives in internal/protocol/tocore — a
// pure protocol core shared verbatim with the live runtime (internal/tob).
// This package re-exports its types under their historical names so that
// the composition and external consumers read as before. See the tocore
// package comment for the Literal/repaired treatment of Figure 5's
// DVS-SAFE(summary) handler.
package toimpl

import (
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// Node is the DVS-TO-TO_p automaton of Figure 5 (see tocore.Node).
type Node = tocore.Node

// Status is the node status (normal, send, collect).
type Status = tocore.Status

// Status constants (Figure 5: normal, send, collect).
const (
	StatusNormal  = tocore.StatusNormal
	StatusSend    = tocore.StatusSend
	StatusCollect = tocore.StatusCollect
)

// LabelMsg is a ⟨l, a⟩ message in C = L × A.
type LabelMsg = tocore.LabelMsg

// SummaryMsg carries a state summary x ∈ S.
type SummaryMsg = tocore.SummaryMsg

// NewNode returns DVS-TO-TO_p in its initial state; literal selects the
// exact Figure 5 safe-exchange handling.
func NewNode(p types.ProcID, initial types.View, inP0, literal bool) *Node {
	return tocore.NewNode(p, initial, inP0, literal)
}
