package toimpl

import (
	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/spec/to"
	"repro/internal/types"
)

// BoundedEnv is a finitely-branching, stateless environment for exhaustive
// exploration of TO-IMPL (ioa.Explore). Broadcasts are bounded by a
// monotone state measure (a client message is either still in a delay
// buffer or has been labeled, and labels never leave the originator's
// content relation), and view proposals come from a fixed candidate list.
type BoundedEnv struct {
	MaxMsgs  int
	MaxViews int
	Views    []types.ProcSet
}

var _ ioa.Environment = (*BoundedEnv)(nil)

// Inputs implements ioa.Environment.
func (e *BoundedEnv) Inputs(a ioa.Automaton) []ioa.Action {
	im, ok := a.(*Impl)
	if !ok {
		return nil
	}
	var acts []ioa.Action
	if countClientCommands(im) < e.MaxMsgs {
		for _, p := range im.procs {
			acts = append(acts, ioa.Action{Name: to.ActBCast, Kind: ioa.KindInput,
				Param: to.BCastParam{A: "a", P: p}})
		}
	}
	if im.DVS().CreatedCount() < e.MaxViews {
		maxID := im.DVS().MaxCreatedID()
		for _, members := range e.Views {
			v := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members.Clone()}
			if im.DVS().CreateViewCandidateOK(v) {
				acts = append(acts, ioa.Action{Name: dvs.ActCreateView, Kind: ioa.KindInternal,
					Param: dvs.CreateViewParam{View: v}})
			}
		}
	}
	return acts
}

// countClientCommands is a monotone measure of broadcasts in the state:
// commands still in delay buffers plus labels each node created itself
// (labels with the node's own origin never leave its content relation).
func countClientCommands(im *Impl) int {
	total := 0
	for _, p := range im.procs {
		n := im.nodes[p]
		total += n.DelayLen()
		total += n.SelfLabeledCount()
	}
	return total
}
