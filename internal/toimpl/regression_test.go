package toimpl

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec/to"
	"repro/internal/types"
)

// TestRegressionChosenRepSeed7 pins the schedule that exposed finding F5:
// with "chosenrep = any element of reps(Y)" resolved as least-id, a process
// outside P0 (highprimary defaulted to g0, empty order) was chosen as
// representative of the exchange for view {2,3}, and fullorder reordered
// labels that the old view v0 = {0,1,3} had already confirmed. With the
// longest-order rule the same schedule is safe.
func TestRegressionChosenRepSeed7(t *testing.T) {
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1, 3))
	impl := NewImpl(universe, v0, Config{DVS: DVSLiteral})
	mon := to.NewMonitor(universe)
	cfg := ioa.CheckerConfig{Steps: 300, Seed: 7, ImplInvariants: Invariants()}
	if _, err := ioa.CheckTraceInclusion(impl, mon, NewEnv(8, universe), cfg); err != nil {
		t.Fatalf("F5 regression: %v", err)
	}
}
