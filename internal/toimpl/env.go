package toimpl

import (
	"math/rand"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/spec/dvs"
	"repro/internal/spec/to"
	"repro/internal/types"
)

// Env drives TO-IMPL executions: it supplies bcast inputs and proposes
// dvs-createview candidates that satisfy the DVS creation precondition
// (random membership, increasing ids).
type Env struct {
	rng      *rand.Rand
	procs    []types.ProcID
	msgSeq   int
	proposed int
	MaxViews int // cap on proposed views (0 = unlimited)
}

var _ ioa.Environment = (*Env)(nil)

// NewEnv returns an environment over the given universe.
func NewEnv(seed int64, universe types.ProcSet) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    universe.Sorted(),
		MaxViews: 32,
	}
}

// Inputs implements ioa.Environment.
func (e *Env) Inputs(a ioa.Automaton) []ioa.Action {
	im, ok := a.(*Impl)
	if !ok {
		return nil
	}
	var acts []ioa.Action

	p := types.RandomMember(e.rng, e.procs)
	e.msgSeq++
	acts = append(acts, ioa.Action{
		Name:  to.ActBCast,
		Kind:  ioa.KindInput,
		Param: to.BCastParam{A: "a" + strconv.Itoa(e.msgSeq), P: p},
	})

	if e.MaxViews == 0 || e.proposed < e.MaxViews {
		members := types.RandomSubset(e.rng, e.procs)
		maxID := im.DVS().MaxCreatedID()
		v := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members}
		if im.DVS().CreateViewCandidateOK(v) {
			e.proposed++
			acts = append(acts, ioa.Action{Name: dvs.ActCreateView, Kind: ioa.KindInternal, Param: dvs.CreateViewParam{View: v}})
		}
	}
	return acts
}
