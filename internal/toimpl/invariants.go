package toimpl

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/protocol/tocore"
	"repro/internal/types"
)

// Invariants 6.1–6.3 and the confirmed-prefix agreement property are
// mechanized once, in internal/protocol/tocore (System), and shared with
// the runtime trace-conformance replayer. This file adapts them to TO-IMPL
// states: the system cut is the composition's node map plus the DVS
// specification's created/attempted oracles and the summaries still in
// transit inside the service.

// AllState returns the derived variable allstate of Section 6.2: every
// summary present anywhere in the system state — recorded in some node's
// gotstate, pending in the DVS service, or ordered in a DVS per-view queue.
func (im *Impl) AllState() []types.Summary {
	var out []types.Summary
	for _, p := range im.procs {
		for _, x := range im.nodes[p].GotState() {
			out = append(out, x)
		}
	}
	for _, x := range im.transitSummariesShared() {
		out = append(out, x.Clone())
	}
	return out
}

// transitSummariesShared lists the summaries in the system state outside
// the nodes — pending in the DVS service or ordered in a DVS per-view
// queue — without defensive copies; the summaries are read-only.
func (im *Impl) transitSummariesShared() []types.Summary {
	var out []types.Summary
	for _, v := range im.dvs.CreatedShared() {
		g := v.ID
		for _, e := range im.dvs.QueueShared(g) {
			if sm, ok := e.M.(SummaryMsg); ok {
				out = append(out, sm.X)
			}
		}
		for _, p := range im.procs {
			for _, m := range im.dvs.PendingShared(p, g) {
				if sm, ok := m.(SummaryMsg); ok {
					out = append(out, sm.X)
				}
			}
		}
	}
	return out
}

// system returns the invariant-checking cut of the composition. The nodes,
// views, and summaries are shared, not cloned: the checks are read-only.
func (im *Impl) system() tocore.System {
	return tocore.System{
		Procs:     im.procs,
		Nodes:     im.nodes,
		Created:   im.dvs.CreatedShared(),
		Attempted: im.dvs.AttemptedShared,
		Extra:     im.transitSummariesShared(),
	}
}

// CheckInvariant61 checks Invariant 6.1: for every x ∈ allstate there is a
// created view w with x.high = w.id that was attempted by all its members.
func CheckInvariant61(im *Impl) error { return im.system().CheckInvariant61() }

// CheckInvariant62 checks Invariant 6.2: if v ∈ created and some summary has
// high > v.id, then some member of v has moved past v.
func CheckInvariant62(im *Impl) error { return im.system().CheckInvariant62() }

// CheckInvariant63 checks Invariant 6.3, instantiated at its strongest σ;
// see tocore/system.go for the instantiation.
func CheckInvariant63(im *Impl) error { return im.system().CheckInvariant63() }

// CheckConfirmedConsistent is the end-to-end agreement property the
// invariants exist to support: the confirmed label prefixes of all nodes are
// pairwise consistent (one is a prefix of the other), and so are the
// reported prefixes. It reads node state only, so the cut omits the
// DVS-level oracles and the (allocation-heavy) in-transit summary scan.
func CheckConfirmedConsistent(im *Impl) error {
	return tocore.System{Procs: im.procs, Nodes: im.nodes}.CheckConfirmedConsistent()
}

// Invariants returns Invariants 6.1–6.3 plus the confirmed-prefix agreement
// check as ioa invariants over *Impl states.
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func(*Impl) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				im, ok := a.(*Impl)
				if !ok {
					return fmt.Errorf("TO-IMPL invariant on %T", a)
				}
				return check(im)
			},
		}
	}
	return []ioa.Invariant{
		wrap("TOIMPL-6.1", CheckInvariant61),
		wrap("TOIMPL-6.2", CheckInvariant62),
		wrap("TOIMPL-6.3", CheckInvariant63),
		wrap("TOIMPL-confirmed-consistent", CheckConfirmedConsistent),
	}
}
