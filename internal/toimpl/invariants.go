package toimpl

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// AllState returns the derived variable allstate of Section 6.2: every
// summary present anywhere in the system state — recorded in some node's
// gotstate, pending in the DVS service, or ordered in a DVS per-view queue.
func (im *Impl) AllState() []types.Summary {
	var out []types.Summary
	for _, p := range im.procs {
		for _, x := range im.nodes[p].GotState() {
			out = append(out, x)
		}
	}
	for _, v := range im.dvs.Created() {
		g := v.ID
		for _, e := range im.dvs.Queue(g) {
			if sm, ok := e.M.(SummaryMsg); ok {
				out = append(out, sm.X.Clone())
			}
		}
		for _, p := range im.procs {
			for _, m := range im.dvs.Pending(p, g) {
				if sm, ok := m.(SummaryMsg); ok {
					out = append(out, sm.X.Clone())
				}
			}
		}
	}
	return out
}

// allStateShared is AllState without the defensive copies; the summaries are
// read-only. The invariant checkers run once per explored state, so they use
// this form.
func (im *Impl) allStateShared() []types.Summary {
	var out []types.Summary
	for _, p := range im.procs {
		for _, x := range im.nodes[p].gotstate {
			out = append(out, x)
		}
	}
	for _, v := range im.dvs.CreatedShared() {
		g := v.ID
		for _, e := range im.dvs.QueueShared(g) {
			if sm, ok := e.M.(SummaryMsg); ok {
				out = append(out, sm.X)
			}
		}
		for _, p := range im.procs {
			for _, m := range im.dvs.PendingShared(p, g) {
				if sm, ok := m.(SummaryMsg); ok {
					out = append(out, sm.X)
				}
			}
		}
	}
	return out
}

// CheckInvariant61 checks Invariant 6.1: for every x ∈ allstate there is a
// created view w with x.high = w.id that was attempted by all its members.
func CheckInvariant61(im *Impl) error {
	createdShared := im.dvs.CreatedShared()
	created := make(map[types.ViewID]types.View, len(createdShared))
	for _, v := range createdShared {
		created[v.ID] = v
	}
	for _, x := range im.allStateShared() {
		w, ok := created[x.High]
		if !ok {
			return fmt.Errorf("6.1: summary high %s names no created view", x.High)
		}
		att := im.dvs.AttemptedShared(w.ID)
		if !w.Members.Subset(att) {
			return fmt.Errorf("6.1: view %s (high of a summary) attempted only by %s", w, att)
		}
	}
	return nil
}

// CheckInvariant62 checks Invariant 6.2: if v ∈ created and some summary has
// high > v.id, then some member of v has moved past v.
func CheckInvariant62(im *Impl) error {
	var maxHigh types.ViewID
	hasSummary := false
	for _, x := range im.allStateShared() {
		hasSummary = true
		if maxHigh.Less(x.High) {
			maxHigh = x.High
		}
	}
	if !hasSummary {
		return nil
	}
	for _, v := range im.dvs.CreatedShared() {
		if !v.ID.Less(maxHigh) {
			continue
		}
		ok := false
		for p := range v.Members {
			if cur, has := im.nodes[p].Current(); has && v.ID.Less(cur.ID) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("6.2: view %s precedes an established summary (high %s) but no member moved past it", v, maxHigh)
		}
	}
	return nil
}

// CheckInvariant63 checks Invariant 6.3, instantiated at its strongest σ:
// for every created view v, let S = {p ∈ v.set : current.id_p > v.id}. If
// every p ∈ S has established v and their buildorders are consistent, take
// σ* = the longest common prefix of {buildorder[p, v.id] : p ∈ S}; then
// every summary x with x.high > v.id must have σ* ≤ x.ord. If some p ∈ S has
// not established v, the hypothesis only holds for σ = λ and the instance is
// vacuous. If S is empty the hypothesis holds for every σ, so no summary may
// have high > v.id at all.
func CheckInvariant63(im *Impl) error {
	allstate := im.allStateShared()
	for _, v := range im.dvs.CreatedShared() {
		var sigma []types.Label
		vacuous := false
		sMembers := 0
		first := true
		for p := range v.Members {
			cur, has := im.nodes[p].Current()
			if !has || !v.ID.Less(cur.ID) {
				continue
			}
			sMembers++
			if !im.nodes[p].Established(v.ID) {
				vacuous = true
				break
			}
			bo := im.nodes[p].buildOrder[v.ID]
			if first {
				sigma = bo
				first = false
			} else {
				sigma = types.CommonPrefix(sigma, bo)
			}
		}
		if vacuous {
			continue
		}
		for _, x := range allstate {
			if !v.ID.Less(x.High) {
				continue
			}
			if sMembers == 0 {
				return fmt.Errorf("6.3: summary with high %s exists but no member of %s moved past it", x.High, v)
			}
			if !types.IsPrefix(sigma, x.Ord) {
				return fmt.Errorf("6.3: common established prefix of view %s is not a prefix of a summary with high %s", v, x.High)
			}
		}
	}
	return nil
}

// CheckConfirmedConsistent is the end-to-end agreement property the
// invariants exist to support: the confirmed label prefixes of all nodes are
// pairwise consistent (one is a prefix of the other), and so are the
// reported prefixes.
func CheckConfirmedConsistent(im *Impl) error {
	confirmed := make([][]types.Label, 0, len(im.procs))
	for _, p := range im.procs {
		n := im.nodes[p]
		confirmed = append(confirmed, n.order[:n.nextConfirm-1])
	}
	if !types.Consistent(confirmed...) {
		return fmt.Errorf("confirmed orders inconsistent across nodes")
	}
	return nil
}

// Invariants returns Invariants 6.1–6.3 plus the confirmed-prefix agreement
// check as ioa invariants over *Impl states.
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func(*Impl) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				im, ok := a.(*Impl)
				if !ok {
					return fmt.Errorf("TO-IMPL invariant on %T", a)
				}
				return check(im)
			},
		}
	}
	return []ioa.Invariant{
		wrap("TOIMPL-6.1", CheckInvariant61),
		wrap("TOIMPL-6.2", CheckInvariant62),
		wrap("TOIMPL-6.3", CheckInvariant63),
		wrap("TOIMPL-confirmed-consistent", CheckConfirmedConsistent),
	}
}
