// Package staticp re-exports the static-primary baseline filter.
//
// The filter itself — the state machine that accepts a view as primary
// exactly when it is a quorum of the fixed universe P0 — lives in
// internal/protocol/staticcore alongside the other pure protocol cores, so
// that the corestep analyzer can enforce the same macro-step seam for the
// baseline as for the paper's automata, and so the conformance replayer can
// re-execute recorded static runs. This package remains as the historical
// import path for the runtime stack; Node is an alias, so a *staticp.Node
// IS a *staticcore.Node.
package staticp

import (
	"repro/internal/protocol/staticcore"
	"repro/internal/quorum"
	"repro/internal/types"
)

// Node is the static-primary filter state for one process. It is an alias
// for staticcore.Node, the pure core.
type Node = staticcore.Node

// NewNode builds the filter. qs decides primacy (typically
// quorum.Majority(P0)); inP0 states whether p belongs to the initial view.
func NewNode(p types.ProcID, initial types.View, inP0 bool, qs quorum.System) *Node {
	return staticcore.NewNode(p, initial, inP0, qs)
}
