package staticp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dvsg"
	"repro/internal/quorum"
	"repro/internal/types"
)

var _ dvsg.Filter = (*Node)(nil)

func newStatic(t *testing.T) (*Node, types.View) {
	t.Helper()
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	qs := quorum.Majority(v0.Members)
	return NewNode(0, v0, true, qs), v0
}

func vw(seq uint64, members ...types.ProcID) types.View {
	return types.NewView(types.ViewID{Seq: seq}, members...)
}

func TestStaticAcceptsMajorityOfP0(t *testing.T) {
	n, _ := newStatic(t)
	v1 := vw(1, 0, 1)
	n.OnVSNewView(v1)
	cand, ok := n.DVSNewViewEnabled()
	if !ok || !cand.Equal(v1) {
		t.Fatal("majority of P0 must be a static primary")
	}
	if err := n.PerformDVSNewView(v1); err != nil {
		t.Fatal(err)
	}
	if cc, _ := n.ClientCur(); !cc.Equal(v1) {
		t.Error("client view not advanced")
	}
}

func TestStaticRejectsMinorityOfP0(t *testing.T) {
	n, _ := newStatic(t)
	// {0, 3, 4} has only one member of P0 = {0,1,2}.
	v1 := vw(1, 0, 3, 4)
	n.OnVSNewView(v1)
	if _, ok := n.DVSNewViewEnabled(); ok {
		t.Error("minority of P0 accepted as static primary")
	}
}

func TestStaticRejectsDriftedMembership(t *testing.T) {
	// The paper's point: once the population drifts away from P0, no
	// static primary can form, no matter how large the view.
	n, _ := newStatic(t)
	v1 := vw(1, 0, 5, 6, 7, 8, 9)
	n.OnVSNewView(v1)
	if _, ok := n.DVSNewViewEnabled(); ok {
		t.Error("drifted view accepted by the static system")
	}
}

func TestStaticMessagePassThrough(t *testing.T) {
	n, _ := newStatic(t)
	m := types.ClientMsg("x")
	n.OnDVSGpSnd(m)
	head, ok := n.VSGpSndHead()
	if !ok || head.MsgKey() != m.MsgKey() {
		t.Fatal("message not queued")
	}
	if err := n.TakeVSGpSndHead(m); err != nil {
		t.Fatal(err)
	}
	n.OnVSGpRcv(m, 1)
	n.OnVSSafe(m, 1)
	if e, ok := n.DVSGpRcvHead(); !ok || e.Q != 1 {
		t.Fatal("delivery not buffered")
	}
	if err := n.TakeDVSGpRcvHead(core.MsgFrom{M: m, Q: 1}); err != nil {
		t.Fatal(err)
	}
	if e, ok := n.DVSSafeHead(); !ok || e.Q != 1 {
		t.Fatal("safe not buffered")
	}
	if err := n.TakeDVSSafeHead(core.MsgFrom{M: m, Q: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticNoGCNoAmb(t *testing.T) {
	n, _ := newStatic(t)
	if len(n.GCCandidates()) != 0 || len(n.Amb()) != 0 {
		t.Error("static filter has no dynamic state")
	}
	if err := n.PerformGC(vw(1, 0, 1)); err == nil {
		t.Error("static GC should fail")
	}
	n.OnDVSRegister() // must be a harmless no-op
}

func TestStaticNewViewMonotone(t *testing.T) {
	n, _ := newStatic(t)
	v1 := vw(1, 0, 1)
	n.OnVSNewView(v1)
	if err := n.PerformDVSNewView(v1); err != nil {
		t.Fatal(err)
	}
	// Same view again: client already there.
	if _, ok := n.DVSNewViewEnabled(); ok {
		t.Error("same primary announced twice")
	}
}

func TestStaticOutsiderStartsBottom(t *testing.T) {
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	n := NewNode(4, v0, false, quorum.Majority(v0.Members))
	if _, ok := n.ClientCur(); ok {
		t.Error("outsider must start at ⊥")
	}
	// Messages sent at ⊥ are dropped.
	n.OnDVSGpSnd(types.ClientMsg("x"))
	if _, ok := n.VSGpSndHead(); ok {
		t.Error("send at ⊥ queued")
	}
}
