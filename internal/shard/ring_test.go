package shard

import (
	"strconv"
	"testing"

	"repro/internal/types"
)

// TestRoutingDeterministic checks that independently built rings agree on
// every key — the property that lets every node route without
// coordination.
func TestRoutingDeterministic(t *testing.T) {
	a := NewRing(types.RangeGroups(4), 0)
	b := NewRing([]types.GroupID{3, 1, 2, 0, 2}, 0) // unsorted, duplicated
	for i := 0; i < 1000; i++ {
		k := "key-" + strconv.Itoa(i)
		if a.Group(k) != b.Group(k) {
			t.Fatalf("rings disagree on %q: %v vs %v", k, a.Group(k), b.Group(k))
		}
	}
}

// TestRoutingBalance checks the vnode smoothing: no group owns more than
// twice nor less than half its fair share of a large key sample.
func TestRoutingBalance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(types.RangeGroups(n), 0)
		counts := make(map[types.GroupID]int)
		for i := 0; i < keys; i++ {
			counts[r.Group("user:"+strconv.Itoa(i))]++
		}
		fair := keys / n
		for g, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Fatalf("n=%d: group %v owns %d of %d keys (fair %d)", n, g, c, keys, fair)
			}
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d groups received keys", n, len(counts))
		}
	}
}

// TestReshardStability checks the consistent-hash property: growing from
// 4 to 5 groups moves roughly 1/5 of the keys, and every moved key moves
// to the new group (no shuffling between surviving groups).
func TestReshardStability(t *testing.T) {
	const keys = 10000
	before := NewRing(types.RangeGroups(4), 0)
	after := NewRing(types.RangeGroups(5), 0)
	moved := 0
	for i := 0; i < keys; i++ {
		k := "item/" + strconv.Itoa(i)
		gb, ga := before.Group(k), after.Group(k)
		if gb != ga {
			moved++
			if ga != 4 {
				t.Fatalf("key %q moved between surviving groups: %v -> %v", k, gb, ga)
			}
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("moved %d of %d keys; want ~%d", moved, keys, keys/5)
	}
}

// TestEmptyRing checks the degenerate ring routes everything to group 0
// rather than panicking.
func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if g := r.Group("x"); g != 0 {
		t.Fatalf("empty ring routed to %v", g)
	}
}
