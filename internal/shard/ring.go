// Package shard maps application keys to groups. The router is a
// consistent-hash ring: each group owns many pseudo-random points on a
// 64-bit circle and a key belongs to the group owning the first point at
// or after the key's hash. Routing is deterministic across processes
// (every node builds an identical ring from the group list alone) and
// stable under resharding: adding or removing one group remaps only the
// keys adjacent to the moved points, ~1/N of the keyspace.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/types"
)

// DefaultReplicas is the number of ring points per group. More points
// smooth the per-group share of the keyspace; 128 keeps the worst-case
// imbalance within a few percent for small group counts.
const DefaultReplicas = 128

type point struct {
	h uint64
	g types.GroupID
}

// Ring is an immutable consistent-hash router over a set of groups.
type Ring struct {
	points []point
	groups []types.GroupID
}

// NewRing builds the ring for the given groups with replicas points per
// group (DefaultReplicas if replicas <= 0). The group list is canonicalized
// so every process derives the identical ring.
func NewRing(groups []types.GroupID, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	gs := types.DedupGroups(append([]types.GroupID(nil), groups...))
	r := &Ring{
		points: make([]point, 0, len(gs)*replicas),
		groups: gs,
	}
	for _, g := range gs {
		base := "g" + strconv.Itoa(int(g)) + "#"
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{h: hash64(base + strconv.Itoa(i)), g: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Full-hash collisions between distinct vnode labels are
		// vanishingly rare; break them by group id so the order — and
		// therefore the routing — is still canonical.
		return r.points[i].g < r.points[j].g
	})
	return r
}

// Groups returns the ring's groups (sorted; read-only).
func (r *Ring) Groups() []types.GroupID { return r.groups }

// Group routes a key: the group owning the first ring point at or after
// the key's hash, wrapping at the top of the circle.
func (r *Ring) Group(key string) types.GroupID {
	if len(r.points) == 0 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].g
}

func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return mix64(f.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone clusters on short,
// similar strings (the vnode labels differ in a few trailing bytes), which
// skews the arc lengths badly; the finalizer's avalanche spreads them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
