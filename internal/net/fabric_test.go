package net

import (
	"testing"

	"repro/internal/types"
)

func newTestFabric(n int, cfg Config) (*Fabric, types.ProcSet) {
	u := types.RangeProcSet(n)
	return NewFabric(u, cfg), u
}

func recvOne(t *testing.T, f *Fabric, p types.ProcID) Envelope {
	t.Helper()
	inbox, err := f.Inbox(p)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		return env
	default:
		t.Fatalf("inbox %s empty", p)
		return Envelope{}
	}
}

func TestSendDeliver(t *testing.T) {
	f, _ := newTestFabric(3, Config{})
	if !f.Send(0, 1, "hello") {
		t.Fatal("send failed")
	}
	env := recvOne(t, f, 1)
	if env.From != 0 || env.Payload != "hello" {
		t.Errorf("env = %+v", env)
	}
	st := f.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelfSend(t *testing.T) {
	f, _ := newTestFabric(2, Config{})
	if !f.Send(1, 1, 42) {
		t.Fatal("self-send failed")
	}
	if env := recvOne(t, f, 1); env.Payload != 42 {
		t.Error("self-send payload wrong")
	}
}

func TestFIFOPerLink(t *testing.T) {
	f, _ := newTestFabric(2, Config{})
	for i := 0; i < 10; i++ {
		f.Send(0, 1, i)
	}
	for i := 0; i < 10; i++ {
		if env := recvOne(t, f, 1); env.Payload != i {
			t.Fatalf("out of order: got %v want %d", env.Payload, i)
		}
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	f, _ := newTestFabric(4, Config{})
	f.Partition([]types.ProcID{0, 1}, []types.ProcID{2, 3})
	if f.Send(0, 2, "x") {
		t.Error("cross-partition send succeeded")
	}
	if !f.Send(0, 1, "y") {
		t.Error("intra-partition send failed")
	}
	if f.Connected(0, 2) || !f.Connected(0, 1) {
		t.Error("Connected wrong")
	}
	f.Heal()
	if !f.Send(0, 2, "z") {
		t.Error("send after heal failed")
	}
}

func TestPartitionUnmentionedFormOneComponent(t *testing.T) {
	f, _ := newTestFabric(5, Config{})
	f.Partition([]types.ProcID{0, 1})
	// 2, 3, 4 form one extra component together.
	if !f.Connected(2, 3) || !f.Connected(3, 4) {
		t.Error("unmentioned endpoints should be mutually connected")
	}
	if f.Connected(0, 2) {
		t.Error("mentioned and unmentioned components must be separate")
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	f, _ := newTestFabric(3, Config{})
	f.Crash(1)
	if f.Send(0, 1, "x") || f.Send(1, 0, "y") {
		t.Error("crashed endpoint exchanged messages")
	}
	if !f.Crashed(1) || f.Crashed(0) {
		t.Error("Crashed wrong")
	}
	if f.Connected(0, 1) {
		t.Error("crashed endpoint reported connected")
	}
}

func TestLossInjection(t *testing.T) {
	f, _ := newTestFabric(2, Config{LossRate: 0.5, Seed: 9})
	sent, ok := 1000, 0
	for i := 0; i < sent; i++ {
		if f.Send(0, 1, i) {
			ok++
		}
	}
	if ok == 0 || ok == sent {
		t.Errorf("loss rate 0.5 delivered %d/%d", ok, sent)
	}
	if ok < 350 || ok > 650 {
		t.Errorf("delivered %d of %d, far from 50%%", ok, sent)
	}
}

func TestLossNeverAppliesToSelf(t *testing.T) {
	f, _ := newTestFabric(1, Config{LossRate: 0.99, Seed: 1})
	for i := 0; i < 50; i++ {
		if !f.Send(0, 0, i) {
			t.Fatal("self-send lost")
		}
	}
}

func TestInboxOverflowDrops(t *testing.T) {
	f, _ := newTestFabric(2, Config{InboxSize: 2})
	if !f.Send(0, 1, 1) || !f.Send(0, 1, 2) {
		t.Fatal("fills failed")
	}
	if f.Send(0, 1, 3) {
		t.Error("overflow send should drop")
	}
	if st := f.Stats(); st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMulticast(t *testing.T) {
	f, u := newTestFabric(4, Config{})
	n := f.Multicast(0, u, "all")
	if n != 4 {
		t.Errorf("multicast delivered %d", n)
	}
	f.Partition([]types.ProcID{0, 1})
	if n := f.Multicast(0, u, "some"); n != 2 {
		t.Errorf("partitioned multicast delivered %d", n)
	}
}

func TestUnknownInbox(t *testing.T) {
	f, _ := newTestFabric(2, Config{})
	if _, err := f.Inbox(9); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if f.Send(0, 9, "x") {
		t.Error("send to unknown endpoint succeeded")
	}
}

func TestCloseDropsEverything(t *testing.T) {
	f, _ := newTestFabric(2, Config{})
	f.Close()
	if f.Send(0, 1, "x") {
		t.Error("send after close succeeded")
	}
}
