package net

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/types"
)

// FaultPlan is a shared chaos controller: one plan can govern many
// FaultTransports (e.g. one per TCP node), so a single Partition or Crash
// call affects the whole group symmetrically — the same fault knobs the
// in-memory Fabric offers, lifted to any Transport.
//
// Semantics mirror the Fabric's: messages flow only within a partition
// component (endpoints not mentioned in Partition form one extra component
// together), crashed endpoints neither send nor receive, loss is
// probabilistic per send, and latency delays delivery without reordering
// guarantees across links. Duplication delivers an extra copy of a
// deliverable send, and reordering holds a send back so later traffic on
// the same link overtakes it — the two fault classes a FIFO transport like
// TCP never produces on its own, injected here so the protocol's
// sequence-number defenses are actually exercised.
type FaultPlan struct {
	mu            sync.Mutex
	rng           *rand.Rand
	partitioned   bool
	component     map[types.ProcID]int
	crashed       map[types.ProcID]bool
	lossRate      float64
	latency       time.Duration
	jitter        time.Duration
	dupRate       float64
	reorderRate   float64
	reorderWindow time.Duration
}

// NewFaultPlan builds a healed, fault-free plan with seeded randomness for
// loss and latency jitter.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:       rand.New(rand.NewSource(seed)),
		component: make(map[types.ProcID]int),
		crashed:   make(map[types.ProcID]bool),
	}
}

// Partition splits the group into the given components. Endpoints not
// mentioned form one extra component together.
func (p *FaultPlan) Partition(groups ...[]types.ProcID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = true
	p.component = make(map[types.ProcID]int)
	for i, g := range groups {
		for _, q := range g {
			p.component[q] = i + 1
		}
	}
}

// Heal reconnects every endpoint.
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = false
	p.component = make(map[types.ProcID]int)
}

// Crash permanently disconnects endpoint q (crash-stop).
func (p *FaultPlan) Crash(q types.ProcID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed[q] = true
}

// SetLoss sets the probability in [0,1) that a deliverable send is dropped.
func (p *FaultPlan) SetLoss(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lossRate = rate
}

// SetLatency delays every deliverable send by base plus a uniform random
// amount in [0, jitter). Zero base and jitter disables latency injection.
func (p *FaultPlan) SetLatency(base, jitter time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency, p.jitter = base, jitter
}

// SetDuplicate sets the probability in [0,1) that a deliverable send is
// delivered twice. The extra copy takes its own delay draw, so with a
// reorder window configured the duplicate may also arrive out of order.
// Self-sends are never duplicated, matching the loss exemption.
func (p *FaultPlan) SetDuplicate(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dupRate = rate
}

// SetReorder sets the probability in [0,1) that a deliverable send is held
// back by a uniform random amount in (0, window], letting later sends on
// the same link overtake it. A non-positive window disables reordering
// regardless of rate. Self-sends are never reordered.
func (p *FaultPlan) SetReorder(rate float64, window time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reorderRate, p.reorderWindow = rate, window
}

// Connected reports whether two endpoints can currently exchange messages.
func (p *FaultPlan) Connected(a, b types.ProcID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.crashed[a] && !p.crashed[b] && p.sameComponent(a, b)
}

func (p *FaultPlan) sameComponent(a, b types.ProcID) bool {
	if !p.partitioned {
		return true
	}
	return p.component[a] == p.component[b]
}

// verdict is one injection decision: whether the send passes, the delay of
// the primary copy, and whether (and when) a duplicate copy follows.
type verdict struct {
	pass     bool
	delay    time.Duration
	dup      bool
	dupDelay time.Duration
}

// decide returns the injection verdict for a send. Self-sends are never
// subjected to loss, duplication, or reordering, matching the Fabric.
func (p *FaultPlan) decide(from, to types.ProcID) verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed[from] || p.crashed[to] || !p.sameComponent(from, to) {
		return verdict{}
	}
	if p.lossRate > 0 && from != to && p.rng.Float64() < p.lossRate {
		return verdict{}
	}
	d := p.latency
	if p.jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	v := verdict{pass: true, delay: d}
	if from == to {
		return v
	}
	if p.reorderRate > 0 && p.reorderWindow > 0 && p.rng.Float64() < p.reorderRate {
		// Hold the primary copy back past its natural slot; anything sent on
		// this link inside the window overtakes it.
		v.delay += 1 + time.Duration(p.rng.Int63n(int64(p.reorderWindow)))
	}
	if p.dupRate > 0 && p.rng.Float64() < p.dupRate {
		v.dup = true
		v.dupDelay = d
		if p.reorderWindow > 0 {
			v.dupDelay += 1 + time.Duration(p.rng.Int63n(int64(p.reorderWindow)))
		}
	}
	return v
}

// FaultTransport decorates any Transport with injected partitions,
// probabilistic loss, latency, and crash-stop, governed by a (possibly
// shared) FaultPlan. It keeps its own Stats of the injection decisions —
// Sent == Delivered + Dropped holds per peer, where Delivered means "passed
// to the inner transport" (immediately or after an injected delay).
type FaultTransport struct {
	inner Transport
	plan  *FaultPlan
	book  statsBook

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner under the given plan. Close the wrapper to
// cancel in-flight delayed sends; the inner transport stays owned by the
// caller.
func NewFaultTransport(inner Transport, plan *FaultPlan) *FaultTransport {
	return &FaultTransport{inner: inner, plan: plan, stop: make(chan struct{})}
}

// Inner returns the wrapped transport.
func (f *FaultTransport) Inner() Transport { return f.inner }

// Plan returns the governing fault plan.
func (f *FaultTransport) Plan() *FaultPlan { return f.plan }

// Send implements Transport. A delayed send is reported as accepted; the
// inner transport's own stats record its eventual fate. An injected
// duplicate is forwarded as a second, separately-recorded send, so the
// accounting invariant keeps holding with Sent counting the copy.
func (f *FaultTransport) Send(from, to types.ProcID, payload Payload) bool {
	select {
	case <-f.stop:
		f.book.send(to, false)
		return false
	default:
	}
	v := f.plan.decide(from, to)
	if !v.pass {
		f.book.send(to, false)
		return false
	}
	ok := f.forward(from, to, payload, v.delay, false)
	if v.dup {
		f.forward(from, to, payload, v.dupDelay, true)
	}
	return ok
}

// forward hands one copy of the payload to the inner transport, immediately
// or after the injected delay, recording it as a plain or duplicate send.
func (f *FaultTransport) forward(from, to types.ProcID, payload Payload, delay time.Duration, dup bool) bool {
	record := f.book.send
	if dup {
		record = f.book.duplicate
	}
	if delay <= 0 {
		ok := f.inner.Send(from, to, payload)
		record(to, ok)
		return ok
	}
	record(to, true)
	f.wg.Add(1)
	timer := time.NewTimer(delay)
	go func() {
		defer f.wg.Done()
		defer timer.Stop()
		select {
		case <-timer.C:
			f.inner.Send(from, to, payload)
		case <-f.stop:
		}
	}()
	return true
}

// Inbox implements Transport by delegation.
func (f *FaultTransport) Inbox(p types.ProcID) (<-chan Envelope, error) {
	return f.inner.Inbox(p)
}

// Stats returns a snapshot of the injection-level counters.
func (f *FaultTransport) Stats() Stats { return f.book.snapshot(nil) }

// Close cancels pending delayed sends and waits for their goroutines. It
// does not close the inner transport.
func (f *FaultTransport) Close() {
	f.once.Do(func() { close(f.stop) })
	f.wg.Wait()
}
