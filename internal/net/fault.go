package net

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/types"
)

// FaultPlan is a shared chaos controller: one plan can govern many
// FaultTransports (e.g. one per TCP node), so a single Partition or Crash
// call affects the whole group symmetrically — the same fault knobs the
// in-memory Fabric offers, lifted to any Transport.
//
// Semantics mirror the Fabric's: messages flow only within a partition
// component (endpoints not mentioned in Partition form one extra component
// together), crashed endpoints neither send nor receive, loss is
// probabilistic per send, and latency delays delivery without reordering
// guarantees across links.
type FaultPlan struct {
	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	component   map[types.ProcID]int
	crashed     map[types.ProcID]bool
	lossRate    float64
	latency     time.Duration
	jitter      time.Duration
}

// NewFaultPlan builds a healed, fault-free plan with seeded randomness for
// loss and latency jitter.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:       rand.New(rand.NewSource(seed)),
		component: make(map[types.ProcID]int),
		crashed:   make(map[types.ProcID]bool),
	}
}

// Partition splits the group into the given components. Endpoints not
// mentioned form one extra component together.
func (p *FaultPlan) Partition(groups ...[]types.ProcID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = true
	p.component = make(map[types.ProcID]int)
	for i, g := range groups {
		for _, q := range g {
			p.component[q] = i + 1
		}
	}
}

// Heal reconnects every endpoint.
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = false
	p.component = make(map[types.ProcID]int)
}

// Crash permanently disconnects endpoint q (crash-stop).
func (p *FaultPlan) Crash(q types.ProcID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed[q] = true
}

// SetLoss sets the probability in [0,1) that a deliverable send is dropped.
func (p *FaultPlan) SetLoss(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lossRate = rate
}

// SetLatency delays every deliverable send by base plus a uniform random
// amount in [0, jitter). Zero base and jitter disables latency injection.
func (p *FaultPlan) SetLatency(base, jitter time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency, p.jitter = base, jitter
}

// Connected reports whether two endpoints can currently exchange messages.
func (p *FaultPlan) Connected(a, b types.ProcID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.crashed[a] && !p.crashed[b] && p.sameComponent(a, b)
}

func (p *FaultPlan) sameComponent(a, b types.ProcID) bool {
	if !p.partitioned {
		return true
	}
	return p.component[a] == p.component[b]
}

// decide returns whether a send passes and, if so, with what injected
// delay. Self-sends are never subjected to loss, matching the Fabric.
func (p *FaultPlan) decide(from, to types.ProcID) (pass bool, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed[from] || p.crashed[to] || !p.sameComponent(from, to) {
		return false, 0
	}
	if p.lossRate > 0 && from != to && p.rng.Float64() < p.lossRate {
		return false, 0
	}
	d := p.latency
	if p.jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	return true, d
}

// FaultTransport decorates any Transport with injected partitions,
// probabilistic loss, latency, and crash-stop, governed by a (possibly
// shared) FaultPlan. It keeps its own Stats of the injection decisions —
// Sent == Delivered + Dropped holds per peer, where Delivered means "passed
// to the inner transport" (immediately or after an injected delay).
type FaultTransport struct {
	inner Transport
	plan  *FaultPlan
	book  statsBook

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner under the given plan. Close the wrapper to
// cancel in-flight delayed sends; the inner transport stays owned by the
// caller.
func NewFaultTransport(inner Transport, plan *FaultPlan) *FaultTransport {
	return &FaultTransport{inner: inner, plan: plan, stop: make(chan struct{})}
}

// Inner returns the wrapped transport.
func (f *FaultTransport) Inner() Transport { return f.inner }

// Plan returns the governing fault plan.
func (f *FaultTransport) Plan() *FaultPlan { return f.plan }

// Send implements Transport. A delayed send is reported as accepted; the
// inner transport's own stats record its eventual fate.
func (f *FaultTransport) Send(from, to types.ProcID, payload Payload) bool {
	select {
	case <-f.stop:
		f.book.send(to, false)
		return false
	default:
	}
	pass, delay := f.plan.decide(from, to)
	if !pass {
		f.book.send(to, false)
		return false
	}
	if delay <= 0 {
		ok := f.inner.Send(from, to, payload)
		f.book.send(to, ok)
		return ok
	}
	f.book.send(to, true)
	f.wg.Add(1)
	timer := time.NewTimer(delay)
	go func() {
		defer f.wg.Done()
		defer timer.Stop()
		select {
		case <-timer.C:
			f.inner.Send(from, to, payload)
		case <-f.stop:
		}
	}()
	return true
}

// Inbox implements Transport by delegation.
func (f *FaultTransport) Inbox(p types.ProcID) (<-chan Envelope, error) {
	return f.inner.Inbox(p)
}

// Stats returns a snapshot of the injection-level counters.
func (f *FaultTransport) Stats() Stats { return f.book.snapshot(nil) }

// Close cancels pending delayed sends and waits for their goroutines. It
// does not close the inner transport.
func (f *FaultTransport) Close() {
	f.once.Do(func() { close(f.stop) })
	f.wg.Wait()
}
