package net

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/types"
)

type wirePayload struct {
	N int
	S string
}

func init() { RegisterWireType(wirePayload{}) }

func startPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(TCPConfig{
		Self: 1, Listen: "127.0.0.1:0",
		Peers: map[types.ProcID]string{0: a.Addr()},
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// a learns b's address only now; rebuild a with the peer map.
	a.Close()
	a, err = NewTCPTransport(TCPConfig{
		Self: 0, Listen: a.Addr(),
		Peers: map[types.ProcID]string{1: b.Addr()},
	})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func recvTCP(t *testing.T, tr *TCPTransport, self types.ProcID, timeout time.Duration) Envelope {
	t.Helper()
	inbox, err := tr.Inbox(self)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		return env
	case <-time.After(timeout):
		t.Fatal("timeout waiting for tcp delivery")
		return Envelope{}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := startPair(t)
	if !a.Send(0, 1, wirePayload{N: 7, S: "hi"}) {
		t.Fatal("send enqueue failed")
	}
	env := recvTCP(t, b, 1, 5*time.Second)
	if env.From != 0 {
		t.Errorf("from = %v", env.From)
	}
	got, ok := env.Payload.(wirePayload)
	if !ok || got.N != 7 || got.S != "hi" {
		t.Errorf("payload = %#v", env.Payload)
	}
}

func TestTCPSelfSend(t *testing.T) {
	a, _ := startPair(t)
	if !a.Send(0, 0, wirePayload{N: 1}) {
		t.Fatal("self-send failed")
	}
	env := recvTCP(t, a, 0, time.Second)
	if env.Payload.(wirePayload).N != 1 {
		t.Error("self payload wrong")
	}
}

func TestTCPFIFOPerLink(t *testing.T) {
	a, b := startPair(t)
	for i := 0; i < 50; i++ {
		if !a.Send(0, 1, wirePayload{N: i}) {
			t.Fatal("enqueue failed")
		}
	}
	for i := 0; i < 50; i++ {
		env := recvTCP(t, b, 1, 5*time.Second)
		if env.Payload.(wirePayload).N != i {
			t.Fatalf("out of order at %d: %#v", i, env.Payload)
		}
	}
}

func TestTCPUnknownPeerDrops(t *testing.T) {
	a, _ := startPair(t)
	if a.Send(0, 9, wirePayload{}) {
		t.Error("send to unknown peer accepted")
	}
	if a.Send(3, 1, wirePayload{}) {
		t.Error("send from foreign id accepted")
	}
	st := a.Stats()
	if err := st.CheckInvariant(); err != nil {
		t.Error(err)
	}
	if st.Misrouted != 1 {
		t.Errorf("Misrouted = %d, want 1 (stats %+v)", st.Misrouted, st)
	}
	if st.Sent != 2 || st.Dropped != 2 {
		t.Errorf("both rejected sends must be counted as drops; stats %+v", st)
	}
}

// TestTCPStatsInvariant drives every Send outcome — local enqueue, peer
// enqueue, unknown peer, misroute — and asserts the accounting identity
// Sent == Delivered + Dropped on the totals and per peer.
func TestTCPStatsInvariant(t *testing.T) {
	a, b := startPair(t)
	a.Send(0, 0, wirePayload{N: 1}) // self
	a.Send(0, 1, wirePayload{N: 2}) // peer
	a.Send(0, 9, wirePayload{N: 3}) // unknown
	a.Send(5, 1, wirePayload{N: 4}) // misrouted
	recvTCP(t, a, 0, time.Second)
	recvTCP(t, b, 1, 5*time.Second)
	st := a.Stats()
	if err := st.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if st.Sent != 4 || st.Delivered != 2 || st.Dropped != 2 || st.Misrouted != 1 {
		t.Errorf("stats %+v", st)
	}
	for _, to := range []types.ProcID{0, 1, 9} {
		if _, ok := st.Peers[to]; !ok {
			t.Errorf("no per-peer row for %s", to)
		}
	}
	if ps := st.Peers[1]; ps.Sent != 2 || ps.Delivered != 1 || ps.Dropped != 1 {
		t.Errorf("peer 1 row %+v", ps)
	}
}

// TestTCPWriterRedialGiveUp exercises the writer's give-up path: payloads
// destined to a dead peer are abandoned after PayloadAttempts failed dials
// (counted as Redials + WriterDrops; the batched writer gives up whole
// batches, so the three payloads cost between one and three rounds of
// attempts depending on how they were batched), and once the peer comes up
// the persistent writer reconnects and delivers.
func TestTCPWriterRedialGiveUp(t *testing.T) {
	// Reserve an address, then free it so the peer is initially down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := ln.Addr().String()
	ln.Close()

	a, err := NewTCPTransport(TCPConfig{
		Self: 0, Listen: "127.0.0.1:0",
		Peers:            map[types.ProcID]string{1: peerAddr},
		DialTimeout:      50 * time.Millisecond,
		RedialBackoff:    2 * time.Millisecond,
		RedialBackoffMax: 10 * time.Millisecond,
		PayloadAttempts:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for i := 0; i < 3; i++ {
		if !a.Send(0, 1, wirePayload{N: i}) {
			t.Fatal("enqueue failed")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := a.Stats()
		if st.WriterDrops == 3 {
			if st.Redials < 2 {
				t.Errorf("Redials = %d, want >= 2 (2 attempts x at least 1 batch)", st.Redials)
			}
			if ps := st.Peers[1]; ps.WriterDrops != 3 || ps.Redials != st.Redials {
				t.Errorf("peer row %+v vs totals %+v", ps, st)
			}
			if err := st.CheckInvariant(); err != nil {
				t.Error(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer never gave up: stats %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Peer comes up at the reserved address: the writer must reconnect.
	b, err := NewTCPTransport(TCPConfig{Self: 1, Listen: peerAddr})
	if err != nil {
		t.Skipf("reserved address reused: %v", err)
	}
	defer b.Close()
	if !a.Send(0, 1, wirePayload{N: 42}) {
		t.Fatal("enqueue failed")
	}
	env := recvTCP(t, b, 1, 10*time.Second)
	if env.Payload.(wirePayload).N != 42 {
		t.Errorf("payload %#v", env.Payload)
	}
}

// TestTCPNoGoroutineLeakOnPeerChurn churns many short-lived inbound peers
// through one transport and asserts the goroutine count returns to
// baseline: naturally-closed connections must leave nothing behind (the
// seed leaked one watchdog goroutine per inbound connection).
func TestTCPNoGoroutineLeakOnPeerChurn(t *testing.T) {
	baseline := runtime.NumGoroutine()
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	const churn = 20
	for i := 0; i < churn; i++ {
		b, err := NewTCPTransport(TCPConfig{
			Self: 1, Listen: "127.0.0.1:0",
			Peers: map[types.ProcID]string{0: a.Addr()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !b.Send(1, 0, wirePayload{N: i}) {
			t.Fatal("enqueue failed")
		}
		recvTCP(t, a, 0, 5*time.Second)
		b.Close()
	}
	a.Close()
	assertGoroutineBaseline(t, baseline)
}

// assertGoroutineBaseline polls until the goroutine count drops back to
// (roughly) the recorded baseline, failing after 10s. A small slack absorbs
// runtime-internal goroutines.
func assertGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizers / netpoll cleanup
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPTornBatchNoCorruption tears the receiver's inbound connections out
// from under the batched writer, repeatedly, while a stream of payloads is
// in flight. A tear can strike mid-batch — after a partial flush — so the
// writer must redial with a fresh buffered writer and encoder and resend the
// whole batch; the stale buffer prefix must never reach the new connection.
// The receiver-side guarantee under all this violence: every payload that
// surfaces from the inbox is a well-formed member of the sent set (a torn
// frame dies as a decoder error, closing the connection, never as a
// corrupted payload), and the sender's accounting invariant still holds.
func TestTCPTornBatchNoCorruption(t *testing.T) {
	a, b := startPair(t)
	done := make(chan struct{})
	torn := make(chan struct{})
	go func() {
		defer close(torn)
		for {
			select {
			case <-done:
				return
			default:
			}
			b.mu.Lock()
			for c := range b.conns {
				c.Close()
			}
			b.mu.Unlock()
			time.Sleep(3 * time.Millisecond)
		}
	}()

	const total = 4000
	for i := 0; i < total; i++ {
		a.Send(0, 1, wirePayload{N: i, S: fmt.Sprint(i)})
		if i%64 == 0 {
			time.Sleep(time.Millisecond) // let flushes interleave with tears
		}
	}
	close(done)
	<-torn

	inbox, err := b.Inbox(1)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for draining := true; draining; {
		select {
		case env := <-inbox:
			p, ok := env.Payload.(wirePayload)
			if !ok || p.N < 0 || p.N >= total || p.S != fmt.Sprint(p.N) {
				t.Fatalf("corrupted payload surfaced: %#v", env.Payload)
			}
			if env.From != 0 {
				t.Fatalf("corrupted frame origin: %v", env.From)
			}
			received++
		case <-time.After(2 * time.Second):
			draining = false
		}
	}
	if received == 0 {
		t.Fatal("no payload survived the churn")
	}
	st := a.Stats()
	if err := st.CheckInvariant(); err != nil {
		t.Error(err)
	}
	if st.WriterFlushes == 0 {
		t.Errorf("writer recorded no flushes: %+v", st)
	}
	if st.WriterFrames < st.WriterFlushes {
		t.Errorf("frames %d < flushes %d", st.WriterFrames, st.WriterFlushes)
	}
	t.Logf("received %d of %d; writer frames=%d flushes=%d redials=%d drops=%d",
		received, total, st.WriterFrames, st.WriterFlushes, st.Redials, st.WriterDrops)
}

func TestTCPComplexPayloads(t *testing.T) {
	// Views with ProcSet members survive the wire (custom gob encoding).
	RegisterWireType(types.View{})
	a, b := startPair(t)
	v := types.NewView(types.ViewID{Seq: 3, Origin: 1}, 0, 1, 5)
	if !a.Send(0, 1, v) {
		t.Fatal("enqueue failed")
	}
	env := recvTCP(t, b, 1, 5*time.Second)
	got, ok := env.Payload.(types.View)
	if !ok || !got.Equal(v) {
		t.Fatalf("payload = %#v", env.Payload)
	}
}

func TestTCPPeerDownThenUp(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers:         map[types.ProcID]string{1: "127.0.0.1:1"}, // nothing there
		DialTimeout:   50 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Sends to a dead peer are dropped without blocking.
	for i := 0; i < 5; i++ {
		a.Send(0, 1, wirePayload{N: i})
	}
	time.Sleep(200 * time.Millisecond) // writer burns through the queue
	st := a.Stats()
	if st.Sent != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPManyMessagesStress(t *testing.T) {
	a, b := startPair(t)
	const total = 2000
	go func() {
		for i := 0; i < total; i++ {
			for !a.Send(0, 1, wirePayload{N: i, S: fmt.Sprint(i)}) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	next := 0
	deadline := time.After(20 * time.Second)
	inbox, _ := b.Inbox(1)
	for next < total {
		select {
		case env := <-inbox:
			if env.Payload.(wirePayload).N != next {
				t.Fatalf("out of order at %d", next)
			}
			next++
		case <-deadline:
			t.Fatalf("stalled at %d of %d", next, total)
		}
	}
}
