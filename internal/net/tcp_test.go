package net

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/types"
)

type wirePayload struct {
	N int
	S string
}

func init() { RegisterWireType(wirePayload{}) }

func startPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(TCPConfig{
		Self: 1, Listen: "127.0.0.1:0",
		Peers: map[types.ProcID]string{0: a.Addr()},
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// a learns b's address only now; rebuild a with the peer map.
	a.Close()
	a, err = NewTCPTransport(TCPConfig{
		Self: 0, Listen: a.Addr(),
		Peers: map[types.ProcID]string{1: b.Addr()},
	})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func recvTCP(t *testing.T, tr *TCPTransport, self types.ProcID, timeout time.Duration) Envelope {
	t.Helper()
	inbox, err := tr.Inbox(self)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		return env
	case <-time.After(timeout):
		t.Fatal("timeout waiting for tcp delivery")
		return Envelope{}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := startPair(t)
	if !a.Send(0, 1, wirePayload{N: 7, S: "hi"}) {
		t.Fatal("send enqueue failed")
	}
	env := recvTCP(t, b, 1, 5*time.Second)
	if env.From != 0 {
		t.Errorf("from = %v", env.From)
	}
	got, ok := env.Payload.(wirePayload)
	if !ok || got.N != 7 || got.S != "hi" {
		t.Errorf("payload = %#v", env.Payload)
	}
}

func TestTCPSelfSend(t *testing.T) {
	a, _ := startPair(t)
	if !a.Send(0, 0, wirePayload{N: 1}) {
		t.Fatal("self-send failed")
	}
	env := recvTCP(t, a, 0, time.Second)
	if env.Payload.(wirePayload).N != 1 {
		t.Error("self payload wrong")
	}
}

func TestTCPFIFOPerLink(t *testing.T) {
	a, b := startPair(t)
	for i := 0; i < 50; i++ {
		if !a.Send(0, 1, wirePayload{N: i}) {
			t.Fatal("enqueue failed")
		}
	}
	for i := 0; i < 50; i++ {
		env := recvTCP(t, b, 1, 5*time.Second)
		if env.Payload.(wirePayload).N != i {
			t.Fatalf("out of order at %d: %#v", i, env.Payload)
		}
	}
}

func TestTCPUnknownPeerDrops(t *testing.T) {
	a, _ := startPair(t)
	if a.Send(0, 9, wirePayload{}) {
		t.Error("send to unknown peer accepted")
	}
	if a.Send(3, 1, wirePayload{}) {
		t.Error("send from foreign id accepted")
	}
}

func TestTCPComplexPayloads(t *testing.T) {
	// Views with ProcSet members survive the wire (custom gob encoding).
	RegisterWireType(types.View{})
	a, b := startPair(t)
	v := types.NewView(types.ViewID{Seq: 3, Origin: 1}, 0, 1, 5)
	if !a.Send(0, 1, v) {
		t.Fatal("enqueue failed")
	}
	env := recvTCP(t, b, 1, 5*time.Second)
	got, ok := env.Payload.(types.View)
	if !ok || !got.Equal(v) {
		t.Fatalf("payload = %#v", env.Payload)
	}
}

func TestTCPPeerDownThenUp(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers:         map[types.ProcID]string{1: "127.0.0.1:1"}, // nothing there
		DialTimeout:   50 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Sends to a dead peer are dropped without blocking.
	for i := 0; i < 5; i++ {
		a.Send(0, 1, wirePayload{N: i})
	}
	time.Sleep(200 * time.Millisecond) // writer burns through the queue
	st := a.Stats()
	if st.Sent != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPManyMessagesStress(t *testing.T) {
	a, b := startPair(t)
	const total = 2000
	go func() {
		for i := 0; i < total; i++ {
			for !a.Send(0, 1, wirePayload{N: i, S: fmt.Sprint(i)}) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	next := 0
	deadline := time.After(20 * time.Second)
	inbox, _ := b.Inbox(1)
	for next < total {
		select {
		case env := <-inbox:
			if env.Payload.(wirePayload).N != next {
				t.Fatalf("out of order at %d", next)
			}
			next++
		case <-deadline:
			t.Fatalf("stalled at %d of %d", next, total)
		}
	}
}
