package net

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// frame is the wire format of the TCP transport: one gob-encoded frame per
// message. Payload types must be registered with RegisterWireType before
// use.
type frame struct {
	From    types.ProcID
	Payload Payload
}

// RegisterWireType registers a concrete payload type for gob encoding over
// the TCP transport. The runtime stack registers its own wire types;
// applications embedding custom payloads must register them too.
func RegisterWireType(v any) { gob.Register(v) }

// TCPConfig configures a TCPTransport.
type TCPConfig struct {
	// Self is the local process id.
	Self types.ProcID
	// Listen is the local listen address, e.g. "127.0.0.1:7000".
	Listen string
	// Peers maps every remote process id to its address.
	Peers map[types.ProcID]string
	// DialTimeout bounds connection attempts (default 500ms).
	DialTimeout time.Duration
	// RedialBackoff is the pause after a failed dial (default 250ms).
	RedialBackoff time.Duration
	// OutboxSize is the per-peer outgoing queue (default 1024); a full
	// queue drops, like a lossy link.
	OutboxSize int
	// InboxSize is the local receive buffer (default 8192).
	InboxSize int
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 250 * time.Millisecond
	}
	if c.OutboxSize <= 0 {
		c.OutboxSize = 1024
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 8192
	}
}

// TCPTransport implements Transport over real TCP connections, one outgoing
// connection per peer with automatic redial. Frames are gob-encoded. Losses
// (dial failures, full queues, broken connections) surface as message drops
// — exactly the fault model the stack's retransmission machinery tolerates.
type TCPTransport struct {
	cfg   TCPConfig
	ln    net.Listener
	inbox chan Envelope

	mu    sync.Mutex
	peers map[types.ProcID]*tcpPeer
	stats Stats

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

type tcpPeer struct {
	addr string
	out  chan Payload
}

// NewTCPTransport starts listening and returns the transport. Outgoing
// connections are established lazily.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	t := &TCPTransport{
		cfg:   cfg,
		ln:    ln,
		inbox: make(chan Envelope, cfg.InboxSize),
		peers: make(map[types.ProcID]*tcpPeer, len(cfg.Peers)),
		stop:  make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		p := &tcpPeer{addr: addr, out: make(chan Payload, cfg.OutboxSize)}
		t.peers[id] = p
		t.wg.Add(1)
		go t.writer(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Inbox implements Transport. Only the local endpoint has an inbox.
func (t *TCPTransport) Inbox(p types.ProcID) (<-chan Envelope, error) {
	if p != t.cfg.Self {
		return nil, fmt.Errorf("tcp transport: inbox of remote endpoint %s", p)
	}
	return t.inbox, nil
}

// Send implements Transport.
func (t *TCPTransport) Send(from, to types.ProcID, payload Payload) bool {
	t.mu.Lock()
	t.stats.Sent++
	t.mu.Unlock()
	if from != t.cfg.Self {
		return false
	}
	if to == t.cfg.Self {
		select {
		case t.inbox <- Envelope{From: from, Payload: payload}:
			t.count(true)
			return true
		default:
			t.count(false)
			return false
		}
	}
	t.mu.Lock()
	peer := t.peers[to]
	t.mu.Unlock()
	if peer == nil {
		t.count(false)
		return false
	}
	select {
	case peer.out <- payload:
		t.count(true)
		return true
	default:
		t.count(false)
		return false
	}
}

func (t *TCPTransport) count(ok bool) {
	t.mu.Lock()
	if ok {
		t.stats.Delivered++
	} else {
		t.stats.Dropped++
	}
	t.mu.Unlock()
}

// Stats returns a snapshot of the counters (Delivered counts local enqueue
// to the outgoing queue; the network may still lose the message, which the
// stack's retransmissions cover).
func (t *TCPTransport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Close stops the transport and waits for its goroutines.
func (t *TCPTransport) Close() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	t.ln.Close()
	t.wg.Wait()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.reader(conn)
	}
}

func (t *TCPTransport) reader(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	go func() { // unblock the decoder on shutdown
		<-t.stop
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		select {
		case t.inbox <- Envelope{From: f.From, Payload: f.Payload}:
		case <-t.stop:
			return
		default:
			// inbox overflow: drop, like the in-memory fabric
		}
	}
}

func (t *TCPTransport) writer(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var payload Payload
		select {
		case <-t.stop:
			return
		case payload = <-p.out:
		}
		for attempt := 0; ; attempt++ {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
				if err != nil {
					if attempt > 0 {
						// Give up on this payload after one redial; the
						// stack's retransmissions recover.
						break
					}
					select {
					case <-t.stop:
						return
					case <-time.After(t.cfg.RedialBackoff):
					}
					continue
				}
				conn = c
				enc = gob.NewEncoder(conn)
			}
			if err := enc.Encode(frame{From: t.cfg.Self, Payload: payload}); err != nil {
				conn.Close()
				conn, enc = nil, nil
				continue // redial once for this payload
			}
			break
		}
	}
}
