package net

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// frame is the wire format of the TCP transport: one gob-encoded frame per
// message. Payload types must be registered with RegisterWireType before
// use.
type frame struct {
	From    types.ProcID
	Payload Payload
}

// RegisterWireType registers a concrete payload type for gob encoding over
// the TCP transport. The runtime stack registers its own wire types;
// applications embedding custom payloads must register them too.
func RegisterWireType(v any) { gob.Register(v) }

// TCPConfig configures a TCPTransport.
type TCPConfig struct {
	// Self is the local process id.
	Self types.ProcID
	// Listen is the local listen address, e.g. "127.0.0.1:7000".
	Listen string
	// Peers maps every remote process id to its address.
	Peers map[types.ProcID]string
	// DialTimeout bounds connection attempts (default 500ms).
	DialTimeout time.Duration
	// RedialBackoff is the initial pause after a failed dial (default
	// 250ms). Successive failures back off exponentially with ±50% jitter
	// up to RedialBackoffMax; a successful dial resets the backoff.
	RedialBackoff time.Duration
	// RedialBackoffMax caps the exponential redial backoff (default 5s).
	RedialBackoffMax time.Duration
	// WriteTimeout bounds each frame write, so a stalled peer whose TCP
	// buffer has filled cannot wedge the writer goroutine forever
	// (default 2s). A timed-out write closes the connection and redials.
	WriteTimeout time.Duration
	// PayloadAttempts is how many connection attempts the writer spends on
	// one payload before abandoning it (default 3). Abandoned payloads are
	// counted as WriterDrops; the stack's retransmissions recover them.
	PayloadAttempts int
	// OutboxSize is the per-peer outgoing queue (default 1024); a full
	// queue drops, like a lossy link.
	OutboxSize int
	// InboxSize is the local receive buffer (default 8192).
	InboxSize int
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 250 * time.Millisecond
	}
	if c.RedialBackoffMax <= 0 {
		c.RedialBackoffMax = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.PayloadAttempts <= 0 {
		c.PayloadAttempts = 3
	}
	if c.OutboxSize <= 0 {
		c.OutboxSize = 1024
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 8192
	}
}

// TCPTransport implements Transport over real TCP connections, one
// persistent outgoing connection per peer with exponential-backoff redial.
// Frames are gob-encoded. Losses (dial give-ups, full queues, broken or
// stalled connections) surface as message drops — exactly the fault model
// the stack's retransmission machinery tolerates — and every loss is
// counted in Stats, per peer.
type TCPTransport struct {
	cfg   TCPConfig
	ln    net.Listener
	inbox chan Envelope
	book  statsBook

	mu    sync.Mutex
	peers map[types.ProcID]*tcpPeer
	conns map[net.Conn]struct{} // live inbound connections, closed on Close
	done  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

type tcpPeer struct {
	id   types.ProcID
	addr string
	out  chan Payload
}

// NewTCPTransport starts listening and returns the transport. Outgoing
// connections are established lazily and kept open across payloads.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	t := &TCPTransport{
		cfg:   cfg,
		ln:    ln,
		inbox: make(chan Envelope, cfg.InboxSize),
		peers: make(map[types.ProcID]*tcpPeer, len(cfg.Peers)),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		p := &tcpPeer{id: id, addr: addr, out: make(chan Payload, cfg.OutboxSize)}
		t.peers[id] = p
		t.wg.Add(1)
		go t.writer(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Inbox implements Transport. Only the local endpoint has an inbox.
func (t *TCPTransport) Inbox(p types.ProcID) (<-chan Envelope, error) {
	if p != t.cfg.Self {
		return nil, fmt.Errorf("tcp transport: inbox of remote endpoint %s", p)
	}
	return t.inbox, nil
}

// Send implements Transport. Every attempt is accounted exactly once:
// misrouted sends (from != Self) and sends to unknown peers count as drops,
// so Sent == Delivered + Dropped holds at all times, per peer and in total.
func (t *TCPTransport) Send(from, to types.ProcID, payload Payload) bool {
	if from != t.cfg.Self {
		t.book.misrouted(to)
		return false
	}
	if to == t.cfg.Self {
		select {
		case t.inbox <- Envelope{From: from, Payload: payload}:
			t.book.send(to, true)
			return true
		default:
			t.book.send(to, false)
			return false
		}
	}
	t.mu.Lock()
	peer := t.peers[to]
	t.mu.Unlock()
	if peer == nil {
		t.book.send(to, false)
		return false
	}
	select {
	case peer.out <- payload:
		t.book.send(to, true)
		return true
	default:
		t.book.send(to, false)
		return false
	}
}

// Stats returns a snapshot of the counters, including the per-peer
// breakdown and current queue depths. Delivered counts local enqueue to the
// outgoing queue; a post-enqueue loss (dial give-up, broken pipe) is
// counted as a WriterDrop and recovered by the stack's retransmissions.
func (t *TCPTransport) Stats() Stats {
	return t.book.snapshot(func(p types.ProcID) int {
		t.mu.Lock()
		peer := t.peers[p]
		t.mu.Unlock()
		if peer == nil {
			return 0
		}
		return len(peer.out)
	})
}

// Close stops the transport, severs every live connection, and waits for
// all of its goroutines — no goroutine outlives Close.
func (t *TCPTransport) Close() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	t.ln.Close()
	t.mu.Lock()
	t.done = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// track registers an inbound connection so Close can sever it. It reports
// false (and closes the connection) when the transport is already closing.
func (t *TCPTransport) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		conn.Close()
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *TCPTransport) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// sleep pauses for d or until the transport stops, reporting whether it
// slept the full duration.
func (t *TCPTransport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-timer.C:
		return true
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	backoff := 5 * time.Millisecond
	const backoffMax = time.Second
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			default:
			}
			// Persistent Accept errors (EMFILE, ENFILE, ...) must not
			// busy-spin: back off, growing up to a second.
			t.book.acceptError()
			if !t.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = 5 * time.Millisecond
		if !t.track(conn) {
			return
		}
		t.wg.Add(1)
		go t.reader(conn)
	}
}

// reader decodes frames from one inbound connection. The connection is
// registered in t.conns, so Close unblocks the decoder by severing it — no
// per-connection watchdog goroutine is needed, and a naturally-closed
// connection leaves nothing behind.
func (t *TCPTransport) reader(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		select {
		case t.inbox <- Envelope{From: f.From, Payload: f.Payload}:
		case <-t.stop:
			return
		default:
			// Inbox overflow: drop like the in-memory fabric, but make the
			// loss visible to operators and tests.
			t.book.recvDrop()
		}
	}
}

// maxWriteBatch is the most payloads one writer wakeup drains from its
// queue into a single buffered write; writerBufSize is the per-connection
// write buffer. One flush (usually one syscall) then carries the whole
// batch, instead of one gob stream write per payload.
const (
	maxWriteBatch = 64
	writerBufSize = 64 << 10
)

// writer owns the persistent outgoing connection to one peer. Each wakeup
// drains up to maxWriteBatch queued payloads, encodes them into the
// connection's buffered writer, and flushes once. Dial failures back off
// exponentially with jitter; a batch is abandoned (every payload counted)
// after PayloadAttempts connection attempts, so a dead peer drains the
// queue instead of wedging it. Writes carry a deadline so a stalled peer
// with a full TCP buffer cannot block the writer forever.
//
// On any encode or flush error the connection is closed and the buffered
// writer and encoder are abandoned with it — a fresh pair is built on the
// next dial, so no stale frame prefix can leak into a redialed connection —
// and the whole batch is retried. Retrying can duplicate frames the peer
// already received (the error may have struck after a partial flush); the
// stack above is duplicate-tolerant by design.
func (t *TCPTransport) writer(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	var enc *gob.Encoder
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(int64(p.id)*0x9e3779b9 + 1))
	backoff := t.cfg.RedialBackoff
	batch := make([]Payload, 0, maxWriteBatch)
	for {
		batch = batch[:0]
		select {
		case <-t.stop:
			return
		case payload := <-p.out:
			batch = append(batch, payload)
		}
	drain:
		for len(batch) < maxWriteBatch {
			select {
			case payload := <-p.out:
				batch = append(batch, payload)
			default:
				break drain
			}
		}
		sent := false
		for attempt := 0; attempt < t.cfg.PayloadAttempts; attempt++ {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
				if err != nil {
					t.book.redial(p.id)
					// Exponential backoff with ±50% jitter, capped.
					d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
					if !t.sleep(d) {
						return
					}
					if backoff *= 2; backoff > t.cfg.RedialBackoffMax {
						backoff = t.cfg.RedialBackoffMax
					}
					continue
				}
				backoff = t.cfg.RedialBackoff
				conn = c
				bw = bufio.NewWriterSize(conn, writerBufSize)
				enc = gob.NewEncoder(bw)
			}
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
			ok := true
			for _, payload := range batch {
				if err := enc.Encode(frame{From: t.cfg.Self, Payload: payload}); err != nil {
					ok = false
					break
				}
			}
			if ok {
				ok = bw.Flush() == nil
			}
			if !ok {
				conn.Close()
				conn, bw, enc = nil, nil, nil
				continue // redial and retry the whole batch
			}
			sent = true
			t.book.writerFlush(p.id, uint64(len(batch)))
			break
		}
		if !sent {
			t.book.writerDrop(p.id, uint64(len(batch)))
		}
	}
}
