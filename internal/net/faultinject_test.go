package net

import (
	"testing"
	"time"

	"repro/internal/types"
)

// faultPair wraps a two-endpoint fabric in FaultTransports sharing one
// plan, mirroring how TCP nodes are chaos-tested.
func faultPair(t *testing.T, seed int64) (*FaultTransport, *FaultTransport, *FaultPlan, *Fabric) {
	t.Helper()
	fab := NewFabric(types.RangeProcSet(2), Config{})
	plan := NewFaultPlan(seed)
	a := NewFaultTransport(fab, plan)
	b := NewFaultTransport(fab, plan)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, plan, fab
}

func TestFaultTransportPartitionAndHeal(t *testing.T) {
	a, _, plan, fab := faultPair(t, 1)
	if !a.Send(0, 1, "hello") {
		t.Fatal("send through healed plan failed")
	}
	plan.Partition([]types.ProcID{0}, []types.ProcID{1})
	if a.Send(0, 1, "blocked") {
		t.Error("send across partition accepted")
	}
	if plan.Connected(0, 1) {
		t.Error("Connected across partition")
	}
	// Endpoints not mentioned in Partition form one extra component.
	plan.Partition([]types.ProcID{0})
	if !plan.Connected(1, 1) {
		t.Error("unmentioned endpoint disconnected from itself")
	}
	if plan.Connected(0, 1) {
		t.Error("mentioned and unmentioned endpoints connected")
	}
	plan.Heal()
	if !a.Send(0, 1, "healed") {
		t.Error("send after heal failed")
	}
	st := a.Stats()
	if err := st.CheckInvariant(); err != nil {
		t.Error(err)
	}
	if st.Dropped == 0 {
		t.Errorf("partition drop not counted: %+v", st)
	}
	inbox, _ := fab.Inbox(1)
	for _, want := range []string{"hello", "healed"} {
		select {
		case env := <-inbox:
			if env.Payload != want {
				t.Fatalf("got %v, want %v", env.Payload, want)
			}
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestFaultTransportLossAndCrash(t *testing.T) {
	a, _, plan, _ := faultPair(t, 2)
	plan.SetLoss(1.0)
	for i := 0; i < 10; i++ {
		if a.Send(0, 1, i) {
			t.Fatal("send passed despite loss rate 1.0")
		}
	}
	// Self-sends are exempt from loss, like the fabric.
	if !a.Send(0, 0, "self") {
		t.Error("self-send subjected to loss")
	}
	plan.SetLoss(0)
	plan.Crash(1)
	if a.Send(0, 1, "to-crashed") {
		t.Error("send to crashed endpoint accepted")
	}
	if a.Send(1, 0, "from-crashed") {
		t.Error("send from crashed endpoint accepted")
	}
	if err := a.Stats().CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestFaultTransportDuplicate(t *testing.T) {
	a, _, plan, fab := faultPair(t, 4)
	plan.SetDuplicate(1.0)
	if !a.Send(0, 1, "dup") {
		t.Fatal("send rejected")
	}
	inbox, _ := fab.Inbox(1)
	for i := 0; i < 2; i++ {
		select {
		case env := <-inbox:
			if env.Payload != "dup" {
				t.Fatalf("copy %d: got %v", i, env.Payload)
			}
		case <-time.After(time.Second):
			t.Fatalf("copy %d never arrived", i)
		}
	}
	st := a.Stats()
	if st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
	if st.Sent != 2 || st.Delivered != 2 {
		t.Errorf("duplicate accounting: %+v", st)
	}
	if err := st.CheckInvariant(); err != nil {
		t.Error(err)
	}
	// Self-sends are exempt from duplication, like loss.
	if v := plan.decide(0, 0); !v.pass || v.dup {
		t.Errorf("self-send verdict %+v, want pass without duplication", v)
	}
}

func TestFaultTransportReorder(t *testing.T) {
	a, _, plan, fab := faultPair(t, 5)

	// The verdict level is deterministic: with rate 1 every peer send is held
	// back by a positive delay, self-sends never are.
	plan.SetReorder(1.0, 50*time.Millisecond)
	if v := plan.decide(0, 1); !v.pass || v.delay <= 0 {
		t.Fatalf("reorder verdict %+v, want positive hold-back delay", v)
	}
	if v := plan.decide(0, 0); !v.pass || v.delay != 0 {
		t.Errorf("self-send verdict %+v, want undelayed pass", v)
	}

	// End to end: a burst where half the sends are held back must arrive
	// complete (reordering never loses) and out of send order.
	plan.SetReorder(0.5, 30*time.Millisecond)
	const burst = 40
	for i := 0; i < burst; i++ {
		if !a.Send(0, 1, i) {
			t.Fatalf("send %d rejected", i)
		}
	}
	inbox, _ := fab.Inbox(1)
	got := make([]int, 0, burst)
	for len(got) < burst {
		select {
		case env := <-inbox:
			got = append(got, env.Payload.(int))
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d arrived", len(got), burst)
		}
	}
	inverted := false
	for i := 1; i < burst; i++ {
		if got[i] < got[i-1] {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Error("no inversion observed across the burst")
	}
	if err := a.Stats().CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestFaultTransportLatency(t *testing.T) {
	a, _, plan, fab := faultPair(t, 3)
	plan.SetLatency(20*time.Millisecond, 10*time.Millisecond)
	start := time.Now()
	if !a.Send(0, 1, "delayed") {
		t.Fatal("delayed send rejected")
	}
	inbox, _ := fab.Inbox(1)
	select {
	case <-inbox:
		if d := time.Since(start); d < 15*time.Millisecond {
			t.Errorf("delivered after %v, want >= ~20ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed send never arrived")
	}
	// Close cancels pending delayed sends without leaking their goroutines.
	if !a.Send(0, 1, "cancelled-by-close") {
		t.Fatal("send rejected")
	}
	a.Close()
	select {
	case env := <-inbox:
		t.Fatalf("delayed send survived Close: %v", env.Payload)
	case <-time.After(60 * time.Millisecond):
	}
	if a.Send(0, 1, "after-close") {
		t.Error("send accepted after Close")
	}
	if err := a.Stats().CheckInvariant(); err != nil {
		t.Error(err)
	}
}
