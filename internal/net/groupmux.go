package net

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// GroupFrame wraps a payload with the group it belongs to, so N
// independent group stacks can share one Transport (one fabric, one TCP
// mesh): every senders tags, the receiver's GroupMux demultiplexes.
// Registered as a wire type by the TCP node.
type GroupFrame struct {
	G types.GroupID
	P Payload
}

// GroupMux is one endpoint's view of a shared transport as N per-group
// transports. Sends are tagged with the group and passed straight through
// (so partitions, loss, crashes, and per-link FIFO of the underlying
// transport apply unchanged, node-level); a single pump goroutine reads
// the endpoint's shared inbox and routes each frame to the group's
// channel. Per-link FIFO is preserved per group: the pump is the only
// reader and routes in arrival order.
type GroupMux struct {
	self    types.ProcID
	under   Transport
	size    int
	mu      sync.Mutex
	chans   map[types.GroupID]chan Envelope
	stop    chan struct{}
	done    chan struct{}
	started bool
	dropped atomic.Uint64
}

// GroupMuxConfig configures a GroupMux.
type GroupMuxConfig struct {
	// InboxSize is the per-group buffered channel capacity (default 4096).
	// A full group inbox drops, like the fabric's shared inbox.
	InboxSize int
}

// NewGroupMux builds the demultiplexer for endpoint self over the shared
// transport, serving the given groups. Start must be called before
// deliveries flow.
func NewGroupMux(self types.ProcID, under Transport, groups []types.GroupID, cfg GroupMuxConfig) *GroupMux {
	size := cfg.InboxSize
	if size <= 0 {
		size = 4096
	}
	m := &GroupMux{
		self:  self,
		under: under,
		size:  size,
		chans: make(map[types.GroupID]chan Envelope, len(groups)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, g := range types.DedupGroups(append([]types.GroupID(nil), groups...)) {
		m.chans[g] = make(chan Envelope, size)
	}
	return m
}

// Start launches the pump goroutine. It returns an error if the shared
// transport has no inbox for this endpoint.
func (m *GroupMux) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return nil
	}
	inbox, err := m.under.Inbox(m.self)
	if err != nil {
		return err
	}
	m.started = true
	go m.pump(inbox)
	return nil
}

// Stop terminates the pump. Group channels are left open (readers drain
// what was already routed and then block; the group stacks are stopped
// independently).
func (m *GroupMux) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return
	}
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
}

// Dropped counts frames discarded by the pump: unknown group, non-frame
// payload, or a full group inbox.
func (m *GroupMux) Dropped() uint64 { return m.dropped.Load() }

func (m *GroupMux) pump(inbox <-chan Envelope) {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			frame, isFrame := env.Payload.(GroupFrame)
			if !isFrame {
				m.dropped.Add(1)
				continue
			}
			ch, known := m.chans[frame.G]
			if !known {
				m.dropped.Add(1)
				continue
			}
			select {
			case ch <- Envelope{From: env.From, Payload: frame.P}:
			default:
				m.dropped.Add(1)
			}
		}
	}
}

// Group returns the per-group Transport facade: sends tag-and-forward
// through the shared transport, the inbox is the demultiplexed channel.
func (m *GroupMux) Group(g types.GroupID) Transport {
	return groupPort{m: m, g: g}
}

type groupPort struct {
	m *GroupMux
	g types.GroupID
}

// Send implements Transport: tag with the group and pass through, keeping
// the underlying transport's fault semantics.
func (p groupPort) Send(from, to types.ProcID, payload Payload) bool {
	return p.m.under.Send(from, to, GroupFrame{G: p.g, P: payload})
}

// Inbox implements Transport for the mux's own endpoint only.
func (p groupPort) Inbox(q types.ProcID) (<-chan Envelope, error) {
	if q != p.m.self {
		return nil, fmt.Errorf("groupmux: endpoint %s serves only %s", q, p.m.self)
	}
	ch, ok := p.m.chans[p.g]
	if !ok {
		return nil, fmt.Errorf("groupmux: endpoint %s not a member of group %s", q, p.g)
	}
	return ch, nil
}
