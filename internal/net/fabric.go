// Package net provides an in-memory partitionable network fabric: the
// fault-prone asynchronous network underneath the runtime group
// communication stack. Endpoints exchange arbitrary payloads with FIFO
// per-link delivery; the fabric can be partitioned into disjoint components,
// healed, and individual endpoints can be crashed. Message loss can be
// injected probabilistically per link.
package net

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/types"
)

// Payload is a message body carried by the fabric. Payloads must be
// immutable or ownership-transferred by convention: the fabric does not
// copy them.
type Payload any

// Envelope is a delivered message.
type Envelope struct {
	From    types.ProcID
	Payload Payload
}

// Transport is the message-passing abstraction the runtime stack is built
// on: best-effort unicast with per-link FIFO, plus a receive channel per
// local endpoint. The in-memory Fabric implements it for simulations; the
// TCPTransport implements it for real deployments.
type Transport interface {
	// Send delivers payload from -> to if possible; it never blocks and
	// reports whether the message was accepted for delivery.
	Send(from, to types.ProcID, payload Payload) bool
	// Inbox returns the receive channel of a local endpoint.
	Inbox(p types.ProcID) (<-chan Envelope, error)
}

// Config configures a Fabric.
type Config struct {
	// InboxSize is the per-endpoint buffered channel capacity
	// (default 4096). A full inbox drops messages, modelling loss under
	// overload.
	InboxSize int
	// LossRate is the probability in [0,1) that a deliverable unicast is
	// dropped (default 0).
	LossRate float64
	// Seed seeds loss injection.
	Seed int64
}

var _ Transport = (*Fabric)(nil)

// Fabric connects a fixed universe of endpoints.
type Fabric struct {
	mu        sync.Mutex
	rng       *rand.Rand
	lossRate  float64
	inboxes   map[types.ProcID]chan Envelope
	component map[types.ProcID]int // partition component id
	crashed   map[types.ProcID]bool
	book      statsBook
	closed    bool
}

// NewFabric builds a fabric connecting the given universe, initially fully
// connected.
func NewFabric(universe types.ProcSet, cfg Config) *Fabric {
	size := cfg.InboxSize
	if size <= 0 {
		size = 4096
	}
	f := &Fabric{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lossRate:  cfg.LossRate,
		inboxes:   make(map[types.ProcID]chan Envelope, universe.Len()),
		component: make(map[types.ProcID]int, universe.Len()),
		crashed:   make(map[types.ProcID]bool),
	}
	for p := range universe {
		f.inboxes[p] = make(chan Envelope, size)
		f.component[p] = 0
	}
	return f
}

// Inbox returns the receive channel of endpoint p.
func (f *Fabric) Inbox(p types.ProcID) (<-chan Envelope, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.inboxes[p]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown endpoint %s", p)
	}
	return ch, nil
}

// Send delivers payload from -> to if the two endpoints are currently
// connected and neither is crashed. It never blocks: a full inbox counts as
// loss. The return value reports whether the message was enqueued.
func (f *Fabric) Send(from, to types.ProcID, payload Payload) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.crashed[from] || f.crashed[to] {
		f.book.send(to, false)
		return false
	}
	cf, okf := f.component[from]
	ct, okt := f.component[to]
	if !okf || !okt || cf != ct {
		f.book.send(to, false)
		return false
	}
	if f.lossRate > 0 && from != to && f.rng.Float64() < f.lossRate {
		f.book.send(to, false)
		return false
	}
	select {
	case f.inboxes[to] <- Envelope{From: from, Payload: payload}:
		f.book.send(to, true)
		return true
	default:
		f.book.send(to, false)
		return false
	}
}

// Multicast sends payload to every member of dst (including from, if a
// member). It returns the number of successful enqueues.
func (f *Fabric) Multicast(from types.ProcID, dst types.ProcSet, payload Payload) int {
	n := 0
	for _, to := range dst.Sorted() {
		if f.Send(from, to, payload) {
			n++
		}
	}
	return n
}

// Partition splits the universe into the given components. Endpoints not
// mentioned form one extra component together. Messages only flow within a
// component.
func (f *Fabric) Partition(groups ...[]types.ProcID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rest := len(groups) + 1
	for p := range f.component {
		f.component[p] = rest
	}
	for i, g := range groups {
		for _, p := range g {
			if _, ok := f.component[p]; ok {
				f.component[p] = i + 1
			}
		}
	}
}

// Heal reconnects all endpoints into a single component.
func (f *Fabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for p := range f.component {
		f.component[p] = 0
	}
}

// Crash permanently disconnects endpoint p (crash-stop).
func (f *Fabric) Crash(p types.ProcID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[p] = true
}

// Crashed reports whether endpoint p has crashed.
func (f *Fabric) Crashed(p types.ProcID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed[p]
}

// Connected reports whether two endpoints can currently exchange messages.
func (f *Fabric) Connected(a, b types.ProcID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed[a] || f.crashed[b] {
		return false
	}
	ca, oka := f.component[a]
	cb, okb := f.component[b]
	return oka && okb && ca == cb
}

// Stats returns a snapshot of the cumulative counters, including the
// per-destination breakdown.
func (f *Fabric) Stats() Stats {
	return f.book.snapshot(nil)
}

// Close disconnects everything. Inbox channels are left open (receivers
// drain and observe quiescence via their own stop signals).
func (f *Fabric) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
}
