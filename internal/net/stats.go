package net

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/types"
)

// PeerStats are cumulative per-peer link counters, kept on the sending side
// of each link. The enqueue-level invariant Sent == Delivered + Dropped
// holds per peer as well as for the transport totals.
type PeerStats struct {
	Sent          uint64 // send attempts addressed to this peer
	Delivered     uint64 // accepted for delivery (enqueued locally)
	Dropped       uint64 // rejected at enqueue: full queue, partition, crash, loss
	Redials       uint64 // failed connection attempts by the writer (TCP only)
	WriterDrops   uint64 // payloads abandoned after enqueue (encode/dial give-up)
	WriterFrames  uint64 // frames written to the connection (TCP only)
	WriterFlushes uint64 // buffered-write flushes; WriterFrames/WriterFlushes is the mean batch size (TCP only)
	QueueDepth    int    // snapshot of the outgoing queue depth (TCP only)
}

// Stats are cumulative transport counters. Sent == Delivered + Dropped by
// construction: every send attempt is counted exactly once as delivered or
// dropped, including misrouted sends (a from-id that is not the local
// endpoint) and sends to unknown peers.
type Stats struct {
	Sent      uint64 // send attempts
	Delivered uint64 // enqueued to a reachable inbox or outgoing queue
	Dropped   uint64 // lost to partition, crash, loss injection, or overflow

	Misrouted     uint64 // sends rejected because from != local endpoint (subset of Dropped)
	Duplicated    uint64 // extra copies injected by duplication (FaultTransport only; each copy also counts in Sent)
	RecvDropped   uint64 // receiver-side drops: frames lost to inbox overflow
	AcceptErrors  uint64 // listener Accept failures (TCP only)
	Redials       uint64 // failed connection attempts across all peers (TCP only)
	WriterDrops   uint64 // post-enqueue writer give-ups across all peers (TCP only)
	WriterFrames  uint64 // frames written across all peers (TCP only)
	WriterFlushes uint64 // buffered-write flushes across all peers (TCP only)

	// Peers holds the per-peer breakdown, keyed by destination. Nil when the
	// transport has recorded no per-peer traffic.
	Peers map[types.ProcID]PeerStats
}

// CheckInvariant verifies the accounting identity Sent == Delivered +
// Dropped on the totals and on every per-peer row, returning a descriptive
// error on the first violation.
func (s Stats) CheckInvariant() error {
	if s.Sent != s.Delivered+s.Dropped {
		return fmt.Errorf("net stats: Sent=%d != Delivered=%d + Dropped=%d", s.Sent, s.Delivered, s.Dropped)
	}
	for p, ps := range s.Peers {
		if ps.Sent != ps.Delivered+ps.Dropped {
			return fmt.Errorf("net stats: peer %s: Sent=%d != Delivered=%d + Dropped=%d", p, ps.Sent, ps.Delivered, ps.Dropped)
		}
	}
	return nil
}

// String renders a compact one-line summary suitable for end-of-run
// reports.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d delivered=%d dropped=%d", s.Sent, s.Delivered, s.Dropped)
	if s.Misrouted > 0 {
		fmt.Fprintf(&b, " misrouted=%d", s.Misrouted)
	}
	if s.Duplicated > 0 {
		fmt.Fprintf(&b, " duplicated=%d", s.Duplicated)
	}
	if s.RecvDropped > 0 {
		fmt.Fprintf(&b, " recv_dropped=%d", s.RecvDropped)
	}
	if s.Redials > 0 {
		fmt.Fprintf(&b, " redials=%d", s.Redials)
	}
	if s.WriterDrops > 0 {
		fmt.Fprintf(&b, " writer_drops=%d", s.WriterDrops)
	}
	if s.WriterFlushes > 0 {
		fmt.Fprintf(&b, " writer_frames=%d writer_flushes=%d", s.WriterFrames, s.WriterFlushes)
	}
	if s.AcceptErrors > 0 {
		fmt.Fprintf(&b, " accept_errors=%d", s.AcceptErrors)
	}
	if len(s.Peers) > 0 {
		ids := make([]types.ProcID, 0, len(s.Peers))
		for p := range s.Peers {
			ids = append(ids, p)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, p := range ids {
			ps := s.Peers[p]
			fmt.Fprintf(&b, " peer%s=%d/%d/%d", p, ps.Sent, ps.Delivered, ps.Dropped)
		}
	}
	return b.String()
}

// statsBook is the accounting backend shared by every Transport
// implementation in this package. All mutators take the book's lock and
// maintain the Sent == Delivered + Dropped invariant atomically: a send is
// counted in the same critical section as its outcome.
type statsBook struct {
	mu    sync.Mutex
	base  Stats
	peers map[types.ProcID]*PeerStats
}

func (b *statsBook) peer(to types.ProcID) *PeerStats {
	if b.peers == nil {
		b.peers = make(map[types.ProcID]*PeerStats)
	}
	ps := b.peers[to]
	if ps == nil {
		ps = &PeerStats{}
		b.peers[to] = ps
	}
	return ps
}

// send records one send attempt addressed to `to` and its outcome.
func (b *statsBook) send(to types.ProcID, delivered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ps := b.peer(to)
	b.base.Sent++
	ps.Sent++
	if delivered {
		b.base.Delivered++
		ps.Delivered++
	} else {
		b.base.Dropped++
		ps.Dropped++
	}
}

// duplicate records one injected duplicate copy and its outcome. The copy
// is a full send for accounting purposes — Sent == Delivered + Dropped
// keeps holding — with Duplicated marking how many of the sends were
// injection artifacts rather than caller traffic.
func (b *statsBook) duplicate(to types.ProcID, delivered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ps := b.peer(to)
	b.base.Sent++
	ps.Sent++
	if delivered {
		b.base.Delivered++
		ps.Delivered++
	} else {
		b.base.Dropped++
		ps.Dropped++
	}
	b.base.Duplicated++
}

// misrouted records a send rejected because the caller's from-id is not the
// local endpoint. It counts as a drop, preserving the invariant.
func (b *statsBook) misrouted(to types.ProcID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ps := b.peer(to)
	b.base.Sent++
	ps.Sent++
	b.base.Dropped++
	ps.Dropped++
	b.base.Misrouted++
}

func (b *statsBook) recvDrop() {
	b.mu.Lock()
	b.base.RecvDropped++
	b.mu.Unlock()
}

func (b *statsBook) acceptError() {
	b.mu.Lock()
	b.base.AcceptErrors++
	b.mu.Unlock()
}

func (b *statsBook) redial(to types.ProcID) {
	b.mu.Lock()
	b.base.Redials++
	b.peer(to).Redials++
	b.mu.Unlock()
}

// writerDrop records n payloads abandoned by the writer after its
// connection attempts ran out (batched writers give up whole batches).
func (b *statsBook) writerDrop(to types.ProcID, n uint64) {
	b.mu.Lock()
	b.base.WriterDrops += n
	b.peer(to).WriterDrops += n
	b.mu.Unlock()
}

// writerFlush records one successful buffered write carrying n frames.
func (b *statsBook) writerFlush(to types.ProcID, n uint64) {
	b.mu.Lock()
	b.base.WriterFrames += n
	b.base.WriterFlushes++
	ps := b.peer(to)
	ps.WriterFrames += n
	ps.WriterFlushes++
	b.mu.Unlock()
}

// snapshot returns a deep copy of the counters. queueDepth, when non-nil,
// supplies the current outgoing queue depth per peer.
func (b *statsBook) snapshot(queueDepth func(types.ProcID) int) Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.base
	if len(b.peers) > 0 {
		out.Peers = make(map[types.ProcID]PeerStats, len(b.peers))
		for p, ps := range b.peers {
			row := *ps
			if queueDepth != nil {
				row.QueueDepth = queueDepth(p)
			}
			out.Peers[p] = row
		}
	}
	return out
}
