package net

import (
	"testing"
	"time"

	"repro/internal/types"
)

func newMuxPair(t *testing.T, groups int) (*Fabric, map[types.ProcID]*GroupMux) {
	t.Helper()
	universe := types.RangeProcSet(2)
	f := NewFabric(universe, Config{})
	muxes := make(map[types.ProcID]*GroupMux, 2)
	for p := range universe {
		m := NewGroupMux(p, f, types.RangeGroups(groups), GroupMuxConfig{})
		if err := m.Start(); err != nil {
			t.Fatalf("start mux %v: %v", p, err)
		}
		t.Cleanup(m.Stop)
		muxes[p] = m
	}
	return f, muxes
}

func muxRecvOne(t *testing.T, tr Transport, p types.ProcID) Envelope {
	t.Helper()
	ch, err := tr.Inbox(p)
	if err != nil {
		t.Fatalf("inbox: %v", err)
	}
	select {
	case env := <-ch:
		return env
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for delivery to %v", p)
		return Envelope{}
	}
}

// TestGroupIsolation checks the demux: traffic sent on group 1's facade
// arrives on group 1's inbox at the peer, untagged, and group 0 sees
// nothing.
func TestGroupIsolation(t *testing.T) {
	_, muxes := newMuxPair(t, 2)
	if !muxes[0].Group(1).Send(0, 1, "hello") {
		t.Fatalf("send refused")
	}
	env := muxRecvOne(t, muxes[1].Group(1), 1)
	if env.From != 0 || env.Payload != "hello" {
		t.Fatalf("got %+v", env)
	}
	g0, _ := muxes[1].Group(0).Inbox(1)
	select {
	case env := <-g0:
		t.Fatalf("group 0 received group 1 traffic: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestPerGroupFIFO checks that per-link FIFO survives the demux within
// each group even when groups interleave on the wire.
func TestPerGroupFIFO(t *testing.T) {
	_, muxes := newMuxPair(t, 2)
	const n = 200
	for i := 0; i < n; i++ {
		muxes[0].Group(types.GroupID(i%2)).Send(0, 1, i)
	}
	for _, g := range types.RangeGroups(2) {
		want := int(g)
		ch, _ := muxes[1].Group(g).Inbox(1)
		for k := 0; k < n/2; k++ {
			select {
			case env := <-ch:
				if env.Payload.(int) != want {
					t.Fatalf("group %v: got %v, want %v", g, env.Payload, want)
				}
				want += 2
			case <-time.After(2 * time.Second):
				t.Fatalf("group %v: timed out at %d", g, k)
			}
		}
	}
}

// TestNonMemberAndForeignInbox checks the facade's error paths.
func TestNonMemberAndForeignInbox(t *testing.T) {
	_, muxes := newMuxPair(t, 1)
	if _, err := muxes[0].Group(0).Inbox(1); err == nil {
		t.Fatalf("foreign inbox served")
	}
	if _, err := muxes[0].Group(9).Inbox(0); err == nil {
		t.Fatalf("unknown group served")
	}
}

// TestUnknownTrafficDropped checks that untagged payloads and unknown
// groups are counted and discarded, not misrouted.
func TestUnknownTrafficDropped(t *testing.T) {
	f, muxes := newMuxPair(t, 1)
	f.Send(0, 1, "raw")                    // untagged
	muxes[0].Group(0).Send(0, 1, "ok")     // valid — proves pump advanced
	f.Send(0, 1, GroupFrame{G: 7, P: "x"}) // unknown group
	if env := muxRecvOne(t, muxes[1].Group(0), 1); env.Payload != "ok" {
		t.Fatalf("got %+v", env)
	}
	deadline := time.Now().Add(2 * time.Second)
	for muxes[1].Dropped() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped=%d, want 2", muxes[1].Dropped())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPartitionAppliesToAllGroups checks that fabric faults stay
// node-level: a partition cuts every group's facade at once.
func TestPartitionAppliesToAllGroups(t *testing.T) {
	f, muxes := newMuxPair(t, 2)
	f.Partition([]types.ProcID{0}, []types.ProcID{1})
	for _, g := range types.RangeGroups(2) {
		if muxes[0].Group(g).Send(0, 1, "x") {
			t.Fatalf("group %v crossed the partition", g)
		}
	}
	f.Heal()
	if !muxes[0].Group(1).Send(0, 1, "y") {
		t.Fatalf("send refused after heal")
	}
	if env := muxRecvOne(t, muxes[1].Group(1), 1); env.Payload != "y" {
		t.Fatalf("got %+v", env)
	}
}
