package vsg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	netfab "repro/internal/net"
	"repro/internal/types"
)

// recorder is a thread-safe vsg.Handler capturing events in order.
type recorder struct {
	mu     sync.Mutex
	events []string
	views  []types.View
}

func (r *recorder) OnNewView(v types.View) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, "view:"+v.String())
	r.views = append(r.views, v)
}

func (r *recorder) OnRecv(p any, from types.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf("recv:%v@%d", p, from))
}

func (r *recorder) OnSafe(p any, from types.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf("safe:%v@%d", p, from))
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *recorder) lastView() (types.View, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.views) == 0 {
		return types.View{}, false
	}
	return r.views[len(r.views)-1].Clone(), true
}

type cluster struct {
	fab   *netfab.Fabric
	nodes []*Node
	recs  []*recorder
}

func newCluster(t *testing.T, n int, p0 ...types.ProcID) *cluster {
	t.Helper()
	universe := types.RangeProcSet(n)
	if len(p0) == 0 {
		p0 = universe.Sorted()
	}
	v0 := types.InitialView(types.NewProcSet(p0...))
	c := &cluster{fab: netfab.NewFabric(universe, netfab.Config{})}
	for i := 0; i < n; i++ {
		rec := &recorder{}
		node := NewNode(Config{Self: types.ProcID(i), Universe: universe, Initial: v0, Transport: c.fab})
		node.SetHandler(rec)
		c.nodes = append(c.nodes, node)
		c.recs = append(c.recs, rec)
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Stop()
		}
	})
	return c
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func count(events []string, prefix string) int {
	n := 0
	for _, e := range events {
		if len(e) >= len(prefix) && e[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

func TestTotalOrderAcrossSenders(t *testing.T) {
	c := newCluster(t, 3)
	for k := 0; k < 4; k++ {
		k := k
		c.nodes[1].Do(func() { c.nodes[1].SendInLoop(fmt.Sprintf("b%d", k)) })
		c.nodes[2].Do(func() { c.nodes[2].SendInLoop(fmt.Sprintf("c%d", k)) })
	}
	waitFor(t, 3*time.Second, func() bool {
		for _, r := range c.recs {
			if count(r.snapshot(), "recv:") < 8 {
				return false
			}
		}
		return true
	}, "all recvs")

	// All nodes must observe the same recv order.
	var want []string
	for _, e := range c.recs[0].snapshot() {
		if len(e) > 5 && e[:5] == "recv:" {
			want = append(want, e)
		}
	}
	for i, r := range c.recs[1:] {
		var got []string
		for _, e := range r.snapshot() {
			if len(e) > 5 && e[:5] == "recv:" {
				got = append(got, e)
			}
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("node %d order diverges at %d: %s vs %s", i+1, k, got[k], want[k])
			}
		}
	}
}

func TestSafeFollowsRecvEverywhere(t *testing.T) {
	c := newCluster(t, 3)
	c.nodes[0].Do(func() { c.nodes[0].SendInLoop("m") })
	waitFor(t, 3*time.Second, func() bool {
		for _, r := range c.recs {
			if count(r.snapshot(), "safe:") < 1 {
				return false
			}
		}
		return true
	}, "safe everywhere")
	// In every node's event sequence, recv:m precedes safe:m.
	for i, r := range c.recs {
		events := r.snapshot()
		ri, si := -1, -1
		for k, e := range events {
			if e == "recv:m@0" && ri < 0 {
				ri = k
			}
			if e == "safe:m@0" && si < 0 {
				si = k
			}
		}
		if ri < 0 || si < 0 || si < ri {
			t.Errorf("node %d: recv at %d, safe at %d", i, ri, si)
		}
	}
}

func TestViewChangeOnPartition(t *testing.T) {
	c := newCluster(t, 4)
	c.fab.Partition([]types.ProcID{0, 1, 2}, []types.ProcID{3})
	waitFor(t, 3*time.Second, func() bool {
		v, ok := c.recs[0].lastView()
		return ok && v.Members.Len() == 3 && !v.Contains(3)
	}, "majority view without 3")
	// Messages sent in the new view reach only its members.
	c.nodes[0].Do(func() { c.nodes[0].SendInLoop("post") })
	waitFor(t, 3*time.Second, func() bool {
		return count(c.recs[2].snapshot(), "recv:post") == 1
	}, "delivery within new view")
	if count(c.recs[3].snapshot(), "recv:post") != 0 {
		t.Error("partitioned node received a message from the other component")
	}
	// Heal: a merged view forms at everyone.
	c.fab.Heal()
	waitFor(t, 3*time.Second, func() bool {
		for _, r := range c.recs {
			v, ok := r.lastView()
			if !ok || v.Members.Len() != 4 {
				return false
			}
		}
		return true
	}, "merged view everywhere")
}

func TestViewIdentifiersMonotonePerNode(t *testing.T) {
	c := newCluster(t, 4)
	c.fab.Partition([]types.ProcID{0, 1}, []types.ProcID{2, 3})
	time.Sleep(100 * time.Millisecond)
	c.fab.Heal()
	time.Sleep(150 * time.Millisecond)
	for i, r := range c.recs {
		r.mu.Lock()
		for k := 1; k < len(r.views); k++ {
			if !r.views[k-1].ID.Less(r.views[k].ID) {
				t.Errorf("node %d: view ids not increasing: %s then %s", i, r.views[k-1].ID, r.views[k].ID)
			}
		}
		r.mu.Unlock()
	}
}

func TestRetransmissionHealsInboxLoss(t *testing.T) {
	// A tiny inbox forces drops under a burst; leader retransmission must
	// still deliver everything.
	universe := types.RangeProcSet(2)
	v0 := types.InitialView(universe)
	fab := netfab.NewFabric(universe, netfab.Config{InboxSize: 4})
	recs := []*recorder{{}, {}}
	var nodes []*Node
	for i := 0; i < 2; i++ {
		nd := NewNode(Config{Self: types.ProcID(i), Universe: universe, Initial: v0, Transport: fab})
		nd.SetHandler(recs[i])
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	for k := 0; k < 20; k++ {
		k := k
		nodes[0].Do(func() { nodes[0].SendInLoop(fmt.Sprintf("m%d", k)) })
	}
	waitFor(t, 5*time.Second, func() bool {
		return count(recs[1].snapshot(), "recv:") >= 20
	}, "all 20 messages at follower despite tiny inbox")
}

func TestDoAfterStop(t *testing.T) {
	c := newCluster(t, 2)
	c.nodes[0].Stop()
	if c.nodes[0].Do(func() {}) {
		t.Error("Do after Stop should report failure")
	}
}

func TestPublishedView(t *testing.T) {
	c := newCluster(t, 2)
	waitFor(t, time.Second, func() bool {
		v, ok := c.nodes[1].View()
		return ok && v.Members.Len() == 2
	}, "published view")
}

func TestStaleViewMessagesIgnored(t *testing.T) {
	// Ordered/Ack/SafePoint frames tagged with a different view id must be
	// ignored rather than corrupt the sequencer.
	c := newCluster(t, 2)
	stale := types.ViewID{Seq: 99, Origin: 0}
	c.nodes[1].Do(func() {
		c.nodes[1].onOrdered(Ordered{ViewID: stale, Seq: 1, Sender: 0, Payload: "ghost"})
		c.nodes[1].onSafePoint(SafePoint{ViewID: stale, Seq: 5})
	})
	c.nodes[0].Do(func() { c.nodes[0].SendInLoop("real") })
	waitFor(t, 3*time.Second, func() bool {
		return count(c.recs[1].snapshot(), "recv:real") == 1
	}, "real message despite stale frames")
	if count(c.recs[1].snapshot(), "recv:ghost") != 0 {
		t.Error("stale-view message delivered")
	}
}
