package vsg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	netfab "repro/internal/net"
	"repro/internal/types"
)

// history records, per node, everything the vsg layer reported, keyed by
// the view in which it was reported — the raw material for checking the VS
// trace properties of Figure 1 against the runtime implementation.
type history struct {
	mu    sync.Mutex
	view  types.ViewID
	hasV  bool
	recvs map[types.ViewID][]string
	safes map[types.ViewID][]string
	views []types.View
}

func newHistory() *history {
	return &history{
		recvs: make(map[types.ViewID][]string),
		safes: make(map[types.ViewID][]string),
	}
}

func (h *history) OnNewView(v types.View) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.view, h.hasV = v.ID, true
	h.views = append(h.views, v)
}

func (h *history) OnRecv(p any, from types.ProcID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hasV {
		h.recvs[h.view] = append(h.recvs[h.view], fmt.Sprint(p))
	}
}

func (h *history) OnSafe(p any, from types.ProcID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hasV {
		h.safes[h.view] = append(h.safes[h.view], fmt.Sprint(p))
	}
}

// TestVSGViewSynchronyProperties drives a 4-node group through randomized
// partitions, merges and sends, then checks the VS guarantees on the
// recorded histories:
//
//  1. per view, the delivery sequences of all nodes are prefix-consistent
//     (same total order, possibly shorter prefixes);
//  2. per node and view, the safe sequence is a prefix of the delivery
//     sequence (safety indications follow delivery);
//  3. a message safe anywhere in view g was delivered to every member of g;
//  4. per node, view identifiers are strictly increasing.
func TestVSGViewSynchronyProperties(t *testing.T) {
	const n = 4
	universe := types.RangeProcSet(n)
	v0 := types.InitialView(universe)
	fab := netfab.NewFabric(universe, netfab.Config{})
	hists := make([]*history, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		hists[i] = newHistory()
		nodes[i] = NewNode(Config{Self: types.ProcID(i), Universe: universe, Initial: v0, Transport: fab})
		nodes[i].SetHandler(hists[i])
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	rng := rand.New(rand.NewSource(99))
	msg := 0
	for round := 0; round < 15; round++ {
		switch rng.Intn(4) {
		case 0:
			fab.Heal()
		case 1:
			k := 1 + rng.Intn(n/2)
			perm := rng.Perm(n)
			var a, b []types.ProcID
			for i, p := range perm {
				if i < k {
					a = append(a, types.ProcID(p))
				} else {
					b = append(b, types.ProcID(p))
				}
			}
			fab.Partition(a, b)
		default:
			// keep topology; just traffic
		}
		for s := 0; s < 3; s++ {
			i := rng.Intn(n)
			payload := fmt.Sprintf("m%d", msg)
			msg++
			nodes[i].Do(func() { nodes[i].SendInLoop(payload) })
		}
		time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
	}
	fab.Heal()
	time.Sleep(300 * time.Millisecond)

	// Collect all views seen anywhere, with membership.
	members := make(map[types.ViewID]types.ProcSet)
	for _, h := range hists {
		h.mu.Lock()
		for _, v := range h.views {
			members[v.ID] = v.Members.Clone()
		}
		h.mu.Unlock()
	}
	members[v0.ID] = v0.Members.Clone()

	// Property 4: per-node monotone views.
	for i, h := range hists {
		h.mu.Lock()
		for k := 1; k < len(h.views); k++ {
			if !h.views[k-1].ID.Less(h.views[k].ID) {
				t.Errorf("node %d: non-monotone views %s, %s", i, h.views[k-1].ID, h.views[k].ID)
			}
		}
		h.mu.Unlock()
	}

	for g := range members {
		// Property 1: prefix-consistent per-view delivery.
		var seqs [][]string
		for _, h := range hists {
			h.mu.Lock()
			seqs = append(seqs, append([]string(nil), h.recvs[g]...))
			h.mu.Unlock()
		}
		for i := range seqs {
			for j := i + 1; j < len(seqs); j++ {
				a, b := seqs[i], seqs[j]
				limit := len(a)
				if len(b) < limit {
					limit = len(b)
				}
				for k := 0; k < limit; k++ {
					if a[k] != b[k] {
						t.Fatalf("view %s: nodes %d and %d diverge at %d: %q vs %q", g, i, j, k, a[k], b[k])
					}
				}
			}
		}
		// Property 2: safe is a prefix of recv per node.
		for i, h := range hists {
			h.mu.Lock()
			safes := append([]string(nil), h.safes[g]...)
			recvs := append([]string(nil), h.recvs[g]...)
			h.mu.Unlock()
			if len(safes) > len(recvs) {
				t.Fatalf("view %s node %d: more safes (%d) than recvs (%d)", g, i, len(safes), len(recvs))
			}
			for k := range safes {
				if safes[k] != recvs[k] {
					t.Fatalf("view %s node %d: safe[%d]=%q but recv[%d]=%q", g, i, k, safes[k], k, recvs[k])
				}
			}
		}
		// Property 3: anything safe anywhere was delivered at every member.
		for i, h := range hists {
			h.mu.Lock()
			safes := append([]string(nil), h.safes[g]...)
			h.mu.Unlock()
			for _, m := range safes {
				for r := range members[g] {
					found := false
					hr := hists[int(r)]
					hr.mu.Lock()
					for _, x := range hr.recvs[g] {
						if x == m {
							found = true
							break
						}
					}
					hr.mu.Unlock()
					if !found {
						t.Fatalf("view %s: %q safe at node %d but not delivered at member %d", g, m, i, r)
					}
				}
			}
		}
	}
}
