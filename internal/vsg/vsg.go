// Package vsg is the runtime realization of the VS service: a per-node
// event loop combining the membership substrate (internal/member) with a
// per-view sequencer providing totally ordered, gap-free delivery within
// each view and safe indications once every member has delivered a message.
//
// Within a view, members forward payloads to the view leader (its
// minimum-id member); the leader assigns sequence numbers and multicasts the
// ordered stream; members deliver in sequence order and acknowledge
// cumulatively; the leader multicasts the all-acked safe point. Messages are
// tagged with their view identifier and never delivered in another view.
// Together these provide the VS safety guarantees (Figure 1) that the
// VS-TO-DVS layer assumes: per-view total order with prefix delivery, and
// safe indications implying every member's endpoint has delivered.
//
// Layers above are driven synchronously from the node's single event loop
// through the Handler interface, so they need no locking of their own.
package vsg

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/member"
	netfab "repro/internal/net"
	"repro/internal/types"
)

// Wire messages of the data plane.
type (
	// Data carries a payload from a member to the view leader. SenderSeq
	// numbers the sender's submissions within the view, so the leader can
	// de-duplicate retransmissions and restore per-sender FIFO order after
	// losses. AckSeq piggybacks the sender's cumulative delivery
	// acknowledgment, sparing a dedicated Ack frame whenever data is
	// flowing anyway.
	Data struct {
		ViewID    types.ViewID
		SenderSeq int
		AckSeq    int
		Payload   any
	}
	// Ordered carries a sequenced payload from the leader to the members.
	// SenderSeq echoes the sender's submission number so senders can stop
	// retransmitting. Safe piggybacks the leader's current safe point, so
	// in steady state safe indications ride the ordered stream instead of
	// waiting for a dedicated SafePoint frame.
	Ordered struct {
		ViewID    types.ViewID
		Seq       int
		Sender    types.ProcID
		SenderSeq int
		Safe      int
		Payload   any
	}
	// Ack cumulatively acknowledges delivery through Seq.
	Ack struct {
		ViewID types.ViewID
		Seq    int
	}
	// SafePoint announces that every member has delivered through Seq.
	SafePoint struct {
		ViewID types.ViewID
		Seq    int
	}
)

// Handler receives the view-synchronous upcalls. Handlers are invoked from
// the node's event loop; they may call Node.SendInLoop but must not block.
type Handler interface {
	OnNewView(v types.View)
	OnRecv(payload any, from types.ProcID)
	OnSafe(payload any, from types.ProcID)
}

// Stats are cumulative per-node counters of the view-synchronous layer.
// They are safe to read from any goroutine at any time.
type Stats struct {
	ViewsInstalled uint64        // views installed (initial view included)
	Heartbeats     uint64        // heartbeats sent
	Retransmits    uint64        // messages resent by the tick-based reliability
	Submissions    uint64        // payloads submitted via SendInLoop
	Delivered      uint64        // ordered messages delivered in-view
	LatencySamples uint64        // own submissions whose delivery latency was measured
	LatencyTotal   time.Duration // cumulative submit-to-self-delivery latency
}

// AvgLatency is the mean submit-to-self-delivery latency of this node's own
// submissions within stable views (zero without samples).
func (s Stats) AvgLatency() time.Duration {
	if s.LatencySamples == 0 {
		return 0
	}
	return s.LatencyTotal / time.Duration(s.LatencySamples)
}

// Config configures a Node.
type Config struct {
	Self      types.ProcID
	Universe  types.ProcSet
	Initial   types.View
	Transport netfab.Transport

	// TickInterval drives heartbeats and proposal retries (default 2ms).
	TickInterval time.Duration
	// SuspectTimeout is the failure-detection window (default 25 ticks).
	// The default is deliberately generous: heartbeats share the event loop
	// and the inboxes with data traffic, so under load a heartbeat can
	// easily arrive several ticks late, and a twitchy detector turns a busy
	// group into view-change thrash.
	SuspectTimeout time.Duration
	// ProposeRetry is the view-proposal retry period (default 10 ticks).
	ProposeRetry time.Duration
}

func (c *Config) fill() {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 25 * c.TickInterval
	}
	if c.ProposeRetry <= 0 {
		c.ProposeRetry = 10 * c.TickInterval
	}
}

// Node is one process of the view-synchronous layer.
type Node struct {
	cfg      Config
	self     types.ProcID
	universe []types.ProcID // cfg.Universe, sorted once
	fabric   netfab.Transport
	handler  Handler

	detector  *member.Detector
	agreement *member.Agreement

	// Sequencer / delivery state for the current view. members and leaderID
	// cache the sorted membership of the installed view: the hot paths
	// (ordering, acking, retransmission) would otherwise re-sort the member
	// set on every message.
	view        types.View
	hasView     bool
	members     []types.ProcID
	leaderID    types.ProcID
	leaderLog   []Ordered // leader only: the ordered stream
	acked       map[types.ProcID]int
	safePoint   int // leader: last multicast safe point
	buffer      map[int]Ordered
	nextDeliver int
	delivered   []Ordered
	nextSafe    int
	safeUpTo    int

	// Ack coalescing: deliveries mark ackDirty instead of emitting one Ack
	// frame per delivery progression; flushAcks sends a single cumulative
	// Ack once the loop has drained its current burst of input.
	ackDirty bool

	// Tick bookkeeping for stall-gated retransmission: tickCount numbers
	// ticks in the current view; ackTick records, per member, the tick at
	// which its cumulative ack last advanced (leader only); dataTick
	// records the tick at which pendingOut last shrank.
	tickCount uint64
	ackTick   map[types.ProcID]uint64
	dataTick  uint64

	// Sender-side reliability: submissions not yet seen in the ordered
	// stream, retransmitted on ticks. Submission times feed the delivery
	// latency counters.
	sendSeq     int
	pendingOut  []Data
	pendingTime []time.Time
	// Leader-side per-sender dedup/reorder state.
	dataNext map[types.ProcID]int
	dataBuf  map[types.ProcID]map[int]any

	cmds chan func()
	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	published types.View // last installed view, for observers
	publishOK bool

	// Counters, updated from the event loop, readable from anywhere.
	nViews      atomic.Uint64
	nHeartbeats atomic.Uint64
	nRetransmit atomic.Uint64
	nSubmit     atomic.Uint64
	nDelivered  atomic.Uint64
	nLatSamples atomic.Uint64
	latTotalNs  atomic.Int64
}

// NewNode builds a node without starting it. Call SetHandler (handlers
// usually need the node reference to send, so they are attached after
// construction) and then Start.
func NewNode(cfg Config) *Node {
	cfg.fill()
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		universe: cfg.Universe.Sorted(),
		fabric:   cfg.Transport,
		cmds:     make(chan func(), 4096),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	n.detector = member.NewDetector(cfg.Self, cfg.Universe, cfg.SuspectTimeout, now)
	n.agreement = member.NewAgreement(cfg.Self, cfg.Initial, cfg.ProposeRetry)
	return n
}

// SetHandler attaches the layer above. It must be called before Start.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Start launches the event loop. The handler's OnNewView for the initial
// view (if the node is a member) is delivered synchronously, before the
// loop starts, so no message can overtake it.
func (n *Node) Start() {
	if v, ok := n.agreement.Current(); ok {
		n.installView(v.Clone())
	}
	go n.run()
}

// Do schedules f to run inside the node's event loop. It is the only safe
// way to touch the stack from outside the loop. It blocks if the command
// queue is full and returns false once the node has stopped.
func (n *Node) Do(f func()) bool {
	select {
	case <-n.stop:
		return false
	default:
	}
	select {
	case n.cmds <- f:
		return true
	case <-n.stop:
		return false
	}
}

// Defer schedules f onto a later event-loop iteration without ever
// blocking: unlike Do it may be called from inside the loop itself. It
// reports false when the node has stopped or the queue is full — callers
// must then fall back to doing the work inline. The layers above use it to
// postpone batch flushes behind already-queued events, which is what lets
// a loaded queue coalesce into large batches.
func (n *Node) Defer(f func()) bool {
	select {
	case <-n.stop:
		return false
	default:
	}
	select {
	case n.cmds <- f:
		return true
	default:
		return false
	}
}

// Stats returns a snapshot of the layer's counters (thread-safe).
func (n *Node) Stats() Stats {
	return Stats{
		ViewsInstalled: n.nViews.Load(),
		Heartbeats:     n.nHeartbeats.Load(),
		Retransmits:    n.nRetransmit.Load(),
		Submissions:    n.nSubmit.Load(),
		Delivered:      n.nDelivered.Load(),
		LatencySamples: n.nLatSamples.Load(),
		LatencyTotal:   time.Duration(n.latTotalNs.Load()),
	}
}

// View returns the last installed view (thread-safe).
func (n *Node) View() (types.View, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.published.Clone(), n.publishOK
}

// Stop terminates the event loop and waits for it to exit.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

func (n *Node) run() {
	defer close(n.done)
	inbox, err := n.fabric.Inbox(n.self)
	if err != nil {
		return
	}
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	// burst bounds how many already-queued inbox messages one loop
	// iteration drains before acknowledgments are flushed; it keeps the
	// coalesced Ack prompt while amortizing it over a loaded inbox.
	const burst = 256
	for {
		select {
		case <-n.stop:
			return
		case f := <-n.cmds:
			f()
		case env := <-inbox:
			n.onMessage(env)
			for i := 0; i < burst; i++ {
				select {
				case env := <-inbox:
					n.onMessage(env)
					continue
				default:
				}
				break
			}
		case <-ticker.C:
			n.onTick(time.Now())
		}
		n.flushAcks()
	}
}

// flushAcks sends the single cumulative Ack covering every delivery
// progression of the finished loop iteration. The leader never needs one
// (its own acks are applied locally as it delivers).
func (n *Node) flushAcks() {
	if !n.ackDirty {
		return
	}
	n.ackDirty = false
	if !n.hasView || n.leaderID == n.self || n.nextDeliver <= 1 {
		return
	}
	n.fabric.Send(n.self, n.leaderID, Ack{ViewID: n.view.ID, Seq: n.nextDeliver - 1})
}

func (n *Node) onTick(now time.Time) {
	// Heartbeats to the whole universe; the fabric enforces partitions.
	for _, q := range n.universe {
		if q != n.self {
			n.fabric.Send(n.self, q, member.Heartbeat{})
			n.nHeartbeats.Add(1)
		}
	}
	sends, installed := n.agreement.Tick(now, n.detector.Alive(now))
	n.flush(sends)
	if installed != nil {
		n.installView(*installed)
	}
	n.tickCount++
	n.retransmit()
}

// Retransmission pacing. Resends fire only after the corresponding piece of
// state has made no progress for stallTicks ticks — a fresh message is
// almost always still in flight (or sitting in a loaded inbox), and blindly
// resending it every tick turns a busy group into a retransmit storm that
// competes with the goodput it is trying to protect. View gossip and safe
// points are periodic rather than stall-gated (there is no ack to observe
// progress by), at a coarser period than every tick.
const (
	stallTicks  = 2 // ticks without progress before Data/Ordered resend
	gossipTicks = 4 // period of Install view gossip
	safeTicks   = 2 // period of leader SafePoint re-announcement
)

// retransmit drives all tick-based reliability: senders resend stalled
// unordered submissions; members resend their cumulative ack; every node
// periodically gossips its current view (healing lost Installs); the leader
// resends the unacked suffix of the ordered stream to stalled members and
// re-announces the safe point. Together these make stable-view delivery
// immune to message loss, startup races and inbox overflow, without
// flooding a merely-busy view with duplicates.
func (n *Node) retransmit() {
	const window = 64
	if !n.hasView {
		return
	}
	// View gossip: lost Install messages leave a member stranded in an old
	// view; re-announcing the current view heals it (installs are idempotent
	// and monotone). Gossip goes to the whole universe, not just the view:
	// non-members reject the install (Self Inclusion) but fold its identifier
	// into their agreement state, which is what lets a leader detect a
	// process stranded in a newer view than its own and re-propose.
	if n.tickCount%gossipTicks == 1 {
		for _, q := range n.universe {
			if q != n.self {
				n.fabric.Send(n.self, q, member.Install{View: n.view.Clone()})
				n.nRetransmit.Add(1)
			}
		}
	}
	if n.leaderID != n.self {
		// Resend unordered submissions once they have stalled, and the
		// cumulative ack (one frame; it doubles as the leader's progress
		// signal, so it stays periodic).
		if len(n.pendingOut) > 0 && n.tickCount-n.dataTick >= stallTicks {
			for i, d := range n.pendingOut {
				if i >= window {
					break
				}
				d.AckSeq = n.nextDeliver - 1
				n.fabric.Send(n.self, n.leaderID, d)
				n.nRetransmit.Add(1)
			}
			// Re-arm the stall gate: the burst just sent needs stallTicks to
			// land before resending again. Pacing the catch-up keeps it from
			// flooding inboxes and crowding out heartbeats.
			n.dataTick = n.tickCount
		}
		if n.nextDeliver > 1 {
			n.fabric.Send(n.self, n.leaderID, Ack{ViewID: n.view.ID, Seq: n.nextDeliver - 1})
			n.nRetransmit.Add(1)
		}
		return
	}
	for _, q := range n.members {
		if q == n.self {
			continue
		}
		from := n.acked[q]
		if from < len(n.leaderLog) && n.tickCount-n.ackTick[q] >= stallTicks {
			for s := from; s < len(n.leaderLog) && s < from+window; s++ {
				o := n.leaderLog[s]
				o.Safe = n.safePoint
				n.fabric.Send(n.self, q, o)
				n.nRetransmit.Add(1)
			}
			// Re-arm the gate (see the sender-side counterpart above): one
			// catch-up window per stall period, not per tick.
			n.ackTick[q] = n.tickCount
		}
		if n.safePoint > 0 && n.tickCount%safeTicks == 1 {
			n.fabric.Send(n.self, q, SafePoint{ViewID: n.view.ID, Seq: n.safePoint})
			n.nRetransmit.Add(1)
		}
	}
}

func (n *Node) flush(sends []member.Send) {
	for _, s := range sends {
		n.fabric.Send(n.self, s.To, s.Payload)
	}
}

func (n *Node) onMessage(env netfab.Envelope) {
	n.detector.Observe(env.From, time.Now())
	switch m := env.Payload.(type) {
	case member.Heartbeat:
		// liveness only
	case member.Propose:
		n.flush(n.agreement.OnPropose(env.From, m.View))
	case member.Accept:
		n.agreement.OnAccept(env.From, m.ViewID)
	case member.Install:
		if v := n.agreement.OnInstall(m.View); v != nil {
			n.installView(*v)
		}
	case Data:
		n.onData(env.From, m)
	case Ordered:
		n.onOrdered(m)
	case Ack:
		n.onAck(env.From, m)
	case SafePoint:
		n.onSafePoint(m)
	}
}

// installView resets the sequencer and notifies the layer above.
func (n *Node) installView(v types.View) {
	n.view = v.Clone()
	n.hasView = true
	n.members = n.view.Members.Sorted()
	n.leaderID = n.members[0]
	n.leaderLog = nil
	n.acked = make(map[types.ProcID]int, v.Members.Len())
	n.safePoint = 0
	n.buffer = make(map[int]Ordered)
	n.nextDeliver = 1
	n.delivered = nil
	n.nextSafe = 1
	n.safeUpTo = 0
	n.sendSeq = 0
	n.pendingOut = nil
	n.pendingTime = nil
	n.dataNext = make(map[types.ProcID]int)
	n.dataBuf = make(map[types.ProcID]map[int]any)
	n.ackDirty = false
	n.ackTick = make(map[types.ProcID]uint64, v.Members.Len())
	for _, q := range n.members {
		n.ackTick[q] = n.tickCount
	}
	n.dataTick = n.tickCount
	n.nViews.Add(1)

	n.mu.Lock()
	n.published = v.Clone()
	n.publishOK = true
	n.mu.Unlock()

	if n.handler != nil {
		n.handler.OnNewView(v.Clone())
	}
}

func (n *Node) leader() types.ProcID { return n.leaderID }

// SendInLoop submits a payload for totally ordered delivery within the
// current view. It must be called from inside the event loop (i.e. from a
// Handler upcall or a Do closure). Without a current view the payload is
// dropped, as the VS specification permits.
func (n *Node) SendInLoop(payload any) {
	if !n.hasView {
		return
	}
	n.sendSeq++
	n.nSubmit.Add(1)
	d := Data{ViewID: n.view.ID, SenderSeq: n.sendSeq, Payload: payload}
	n.pendingOut = append(n.pendingOut, d)
	n.pendingTime = append(n.pendingTime, time.Now())
	if n.leaderID == n.self {
		n.onData(n.self, d)
		return
	}
	// Piggyback the cumulative ack: any progress this node owes the leader
	// rides along instead of waiting for flushAcks or the tick.
	d.AckSeq = n.nextDeliver - 1
	n.ackDirty = false
	n.fabric.Send(n.self, n.leaderID, d)
}

func (n *Node) onData(from types.ProcID, m Data) {
	if !n.hasView || m.ViewID != n.view.ID || n.leaderID != n.self {
		return
	}
	if m.AckSeq > 0 && from != n.self {
		// Piggybacked cumulative ack — apply it even when the data itself
		// turns out to be a duplicate.
		n.onAckLocal(from, Ack{ViewID: m.ViewID, Seq: m.AckSeq})
	}
	next := n.dataNext[from] + 1
	if m.SenderSeq < next {
		return // duplicate retransmission
	}
	buf, ok := n.dataBuf[from]
	if !ok {
		buf = make(map[int]any)
		n.dataBuf[from] = buf
	}
	buf[m.SenderSeq] = m.Payload
	// Order contiguously, preserving per-sender FIFO across losses.
	for {
		payload, ok := buf[next]
		if !ok {
			break
		}
		delete(buf, next)
		n.dataNext[from] = next
		n.order(from, payload)
		next++
	}
}

func (n *Node) order(sender types.ProcID, payload any) {
	o := Ordered{ViewID: n.view.ID, Seq: len(n.leaderLog) + 1, Sender: sender, SenderSeq: n.dataNext[sender], Payload: payload}
	n.leaderLog = append(n.leaderLog, o)
	o.Safe = n.safePoint // stamped at send time; the log copy stays canonical
	for _, q := range n.members {
		if q == n.self {
			n.onOrdered(o)
		} else {
			n.fabric.Send(n.self, q, o)
		}
	}
}

func (n *Node) onOrdered(m Ordered) {
	if !n.hasView || m.ViewID != n.view.ID {
		return
	}
	if m.Safe > n.safeUpTo {
		// Piggybacked safe point (see Ordered.Safe).
		n.safeUpTo = m.Safe
	}
	if m.Seq < n.nextDeliver {
		n.emitSafe()
		return
	}
	n.buffer[m.Seq] = m
	progressed := false
	for {
		o, ok := n.buffer[n.nextDeliver]
		if !ok {
			break
		}
		delete(n.buffer, n.nextDeliver)
		n.delivered = append(n.delivered, o)
		n.nextDeliver++
		n.nDelivered.Add(1)
		progressed = true
		if o.Sender == n.self {
			// Our own submission made it into the ordered stream: stop
			// retransmitting everything up to it, recording its
			// submit-to-delivery latency.
			for len(n.pendingOut) > 0 && n.pendingOut[0].SenderSeq <= o.SenderSeq {
				n.nLatSamples.Add(1)
				n.latTotalNs.Add(int64(time.Since(n.pendingTime[0])))
				n.pendingOut = n.pendingOut[1:]
				n.pendingTime = n.pendingTime[1:]
				n.dataTick = n.tickCount
			}
		}
		if n.handler != nil {
			n.handler.OnRecv(o.Payload, o.Sender)
		}
	}
	if progressed {
		if n.leaderID == n.self {
			n.onAckLocal(n.self, Ack{ViewID: n.view.ID, Seq: n.nextDeliver - 1})
		} else {
			// Coalesced: one cumulative Ack goes out in flushAcks once the
			// loop has drained the current input burst (or it piggybacks on
			// the next outgoing Data, whichever comes first).
			n.ackDirty = true
		}
	}
	n.emitSafe()
}

func (n *Node) onAck(from types.ProcID, m Ack) {
	if !n.hasView || m.ViewID != n.view.ID || n.leader() != n.self {
		return
	}
	n.onAckLocal(from, m)
}

func (n *Node) onAckLocal(from types.ProcID, m Ack) {
	if m.Seq <= n.acked[from] {
		return
	}
	n.acked[from] = m.Seq
	n.ackTick[from] = n.tickCount
	safe := -1
	for _, q := range n.members {
		a := n.acked[q]
		if safe == -1 || a < safe {
			safe = a
		}
	}
	if safe > n.safePoint {
		n.safePoint = safe
		sp := SafePoint{ViewID: n.view.ID, Seq: safe}
		for _, q := range n.members {
			if q == n.self {
				n.onSafePoint(sp)
			} else {
				n.fabric.Send(n.self, q, sp)
			}
		}
	}
}

func (n *Node) onSafePoint(m SafePoint) {
	if !n.hasView || m.ViewID != n.view.ID {
		return
	}
	if m.Seq > n.safeUpTo {
		n.safeUpTo = m.Seq
	}
	n.emitSafe()
}

func (n *Node) emitSafe() {
	for n.nextSafe <= n.safeUpTo && n.nextSafe <= len(n.delivered) {
		o := n.delivered[n.nextSafe-1]
		n.nextSafe++
		if n.handler != nil {
			n.handler.OnSafe(o.Payload, o.Sender)
		}
	}
}

// Stopped returns a channel closed when the node is stopping; layers above
// use it to abort blocking hand-offs to the application.
func (n *Node) Stopped() <-chan struct{} { return n.stop }
