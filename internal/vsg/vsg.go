// Package vsg is the runtime realization of the VS service: a per-node
// event loop combining the membership substrate (internal/member) with a
// per-view sequencer providing totally ordered, gap-free delivery within
// each view and safe indications once every member has delivered a message.
//
// Within a view, members forward payloads to the view leader (its
// minimum-id member); the leader assigns sequence numbers and multicasts the
// ordered stream; members deliver in sequence order and acknowledge
// cumulatively; the leader multicasts the all-acked safe point. Messages are
// tagged with their view identifier and never delivered in another view.
// Together these provide the VS safety guarantees (Figure 1) that the
// VS-TO-DVS layer assumes: per-view total order with prefix delivery, and
// safe indications implying every member's endpoint has delivered.
//
// Layers above are driven synchronously from the node's single event loop
// through the Handler interface, so they need no locking of their own.
package vsg

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/member"
	netfab "repro/internal/net"
	"repro/internal/types"
)

// Wire messages of the data plane.
type (
	// Data carries a payload from a member to the view leader. SenderSeq
	// numbers the sender's submissions within the view, so the leader can
	// de-duplicate retransmissions and restore per-sender FIFO order after
	// losses.
	Data struct {
		ViewID    types.ViewID
		SenderSeq int
		Payload   any
	}
	// Ordered carries a sequenced payload from the leader to the members.
	// SenderSeq echoes the sender's submission number so senders can stop
	// retransmitting.
	Ordered struct {
		ViewID    types.ViewID
		Seq       int
		Sender    types.ProcID
		SenderSeq int
		Payload   any
	}
	// Ack cumulatively acknowledges delivery through Seq.
	Ack struct {
		ViewID types.ViewID
		Seq    int
	}
	// SafePoint announces that every member has delivered through Seq.
	SafePoint struct {
		ViewID types.ViewID
		Seq    int
	}
)

// Handler receives the view-synchronous upcalls. Handlers are invoked from
// the node's event loop; they may call Node.SendInLoop but must not block.
type Handler interface {
	OnNewView(v types.View)
	OnRecv(payload any, from types.ProcID)
	OnSafe(payload any, from types.ProcID)
}

// Stats are cumulative per-node counters of the view-synchronous layer.
// They are safe to read from any goroutine at any time.
type Stats struct {
	ViewsInstalled uint64        // views installed (initial view included)
	Heartbeats     uint64        // heartbeats sent
	Retransmits    uint64        // messages resent by the tick-based reliability
	Submissions    uint64        // payloads submitted via SendInLoop
	Delivered      uint64        // ordered messages delivered in-view
	LatencySamples uint64        // own submissions whose delivery latency was measured
	LatencyTotal   time.Duration // cumulative submit-to-self-delivery latency
}

// AvgLatency is the mean submit-to-self-delivery latency of this node's own
// submissions within stable views (zero without samples).
func (s Stats) AvgLatency() time.Duration {
	if s.LatencySamples == 0 {
		return 0
	}
	return s.LatencyTotal / time.Duration(s.LatencySamples)
}

// Config configures a Node.
type Config struct {
	Self      types.ProcID
	Universe  types.ProcSet
	Initial   types.View
	Transport netfab.Transport

	// TickInterval drives heartbeats and proposal retries (default 2ms).
	TickInterval time.Duration
	// SuspectTimeout is the failure-detection window (default 5 ticks).
	SuspectTimeout time.Duration
	// ProposeRetry is the view-proposal retry period (default 10 ticks).
	ProposeRetry time.Duration
}

func (c *Config) fill() {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 5 * c.TickInterval
	}
	if c.ProposeRetry <= 0 {
		c.ProposeRetry = 10 * c.TickInterval
	}
}

// Node is one process of the view-synchronous layer.
type Node struct {
	cfg     Config
	self    types.ProcID
	fabric  netfab.Transport
	handler Handler

	detector  *member.Detector
	agreement *member.Agreement

	// Sequencer / delivery state for the current view.
	view        types.View
	hasView     bool
	leaderLog   []Ordered // leader only: the ordered stream
	acked       map[types.ProcID]int
	safePoint   int // leader: last multicast safe point
	buffer      map[int]Ordered
	nextDeliver int
	delivered   []Ordered
	nextSafe    int
	safeUpTo    int

	// Sender-side reliability: submissions not yet seen in the ordered
	// stream, retransmitted on ticks. Submission times feed the delivery
	// latency counters.
	sendSeq     int
	pendingOut  []Data
	pendingTime []time.Time
	// Leader-side per-sender dedup/reorder state.
	dataNext map[types.ProcID]int
	dataBuf  map[types.ProcID]map[int]any

	cmds chan func()
	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	published types.View // last installed view, for observers
	publishOK bool

	// Counters, updated from the event loop, readable from anywhere.
	nViews      atomic.Uint64
	nHeartbeats atomic.Uint64
	nRetransmit atomic.Uint64
	nSubmit     atomic.Uint64
	nDelivered  atomic.Uint64
	nLatSamples atomic.Uint64
	latTotalNs  atomic.Int64
}

// NewNode builds a node without starting it. Call SetHandler (handlers
// usually need the node reference to send, so they are attached after
// construction) and then Start.
func NewNode(cfg Config) *Node {
	cfg.fill()
	n := &Node{
		cfg:    cfg,
		self:   cfg.Self,
		fabric: cfg.Transport,
		cmds:   make(chan func(), 4096),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	now := time.Now()
	n.detector = member.NewDetector(cfg.Self, cfg.Universe, cfg.SuspectTimeout, now)
	n.agreement = member.NewAgreement(cfg.Self, cfg.Initial, cfg.ProposeRetry)
	return n
}

// SetHandler attaches the layer above. It must be called before Start.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Start launches the event loop. The handler's OnNewView for the initial
// view (if the node is a member) is delivered synchronously, before the
// loop starts, so no message can overtake it.
func (n *Node) Start() {
	if v, ok := n.agreement.Current(); ok {
		n.installView(v.Clone())
	}
	go n.run()
}

// Do schedules f to run inside the node's event loop. It is the only safe
// way to touch the stack from outside the loop. It blocks if the command
// queue is full and returns false once the node has stopped.
func (n *Node) Do(f func()) bool {
	select {
	case <-n.stop:
		return false
	default:
	}
	select {
	case n.cmds <- f:
		return true
	case <-n.stop:
		return false
	}
}

// Stats returns a snapshot of the layer's counters (thread-safe).
func (n *Node) Stats() Stats {
	return Stats{
		ViewsInstalled: n.nViews.Load(),
		Heartbeats:     n.nHeartbeats.Load(),
		Retransmits:    n.nRetransmit.Load(),
		Submissions:    n.nSubmit.Load(),
		Delivered:      n.nDelivered.Load(),
		LatencySamples: n.nLatSamples.Load(),
		LatencyTotal:   time.Duration(n.latTotalNs.Load()),
	}
}

// View returns the last installed view (thread-safe).
func (n *Node) View() (types.View, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.published.Clone(), n.publishOK
}

// Stop terminates the event loop and waits for it to exit.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

func (n *Node) run() {
	defer close(n.done)
	inbox, err := n.fabric.Inbox(n.self)
	if err != nil {
		return
	}
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case f := <-n.cmds:
			f()
		case env := <-inbox:
			n.onMessage(env)
		case <-ticker.C:
			n.onTick(time.Now())
		}
	}
}

func (n *Node) onTick(now time.Time) {
	// Heartbeats to the whole universe; the fabric enforces partitions.
	for _, q := range n.cfg.Universe.Sorted() {
		if q != n.self {
			n.fabric.Send(n.self, q, member.Heartbeat{})
			n.nHeartbeats.Add(1)
		}
	}
	sends, installed := n.agreement.Tick(now, n.detector.Alive(now))
	n.flush(sends)
	if installed != nil {
		n.installView(*installed)
	}
	n.retransmit()
}

// retransmit drives all tick-based reliability: senders resend unordered
// submissions; members resend their cumulative ack; every node gossips its
// current view (healing lost Installs); the leader resends unacked suffixes
// of the ordered stream and the safe point. Together these make stable-view
// delivery immune to message loss, startup races and inbox overflow.
func (n *Node) retransmit() {
	const window = 64
	if !n.hasView {
		return
	}
	// View gossip: lost Install messages leave a member stranded in an old
	// view; re-announcing the current view heals it (installs are
	// idempotent and monotone).
	for _, q := range n.view.Members.Sorted() {
		if q != n.self {
			n.fabric.Send(n.self, q, member.Install{View: n.view.Clone()})
			n.nRetransmit.Add(1)
		}
	}
	if n.leader() != n.self {
		// Resend unordered submissions and the cumulative ack.
		for i, d := range n.pendingOut {
			if i >= window {
				break
			}
			n.fabric.Send(n.self, n.leader(), d)
			n.nRetransmit.Add(1)
		}
		if n.nextDeliver > 1 {
			n.fabric.Send(n.self, n.leader(), Ack{ViewID: n.view.ID, Seq: n.nextDeliver - 1})
			n.nRetransmit.Add(1)
		}
		return
	}
	for _, q := range n.view.Members.Sorted() {
		if q == n.self {
			continue
		}
		from := n.acked[q]
		for s := from; s < len(n.leaderLog) && s < from+window; s++ {
			n.fabric.Send(n.self, q, n.leaderLog[s])
			n.nRetransmit.Add(1)
		}
		if n.safePoint > 0 {
			n.fabric.Send(n.self, q, SafePoint{ViewID: n.view.ID, Seq: n.safePoint})
			n.nRetransmit.Add(1)
		}
	}
}

func (n *Node) flush(sends []member.Send) {
	for _, s := range sends {
		n.fabric.Send(n.self, s.To, s.Payload)
	}
}

func (n *Node) onMessage(env netfab.Envelope) {
	n.detector.Observe(env.From, time.Now())
	switch m := env.Payload.(type) {
	case member.Heartbeat:
		// liveness only
	case member.Propose:
		n.flush(n.agreement.OnPropose(env.From, m.View))
	case member.Accept:
		n.agreement.OnAccept(env.From, m.ViewID)
	case member.Install:
		if v := n.agreement.OnInstall(m.View); v != nil {
			n.installView(*v)
		}
	case Data:
		n.onData(env.From, m)
	case Ordered:
		n.onOrdered(m)
	case Ack:
		n.onAck(env.From, m)
	case SafePoint:
		n.onSafePoint(m)
	}
}

// installView resets the sequencer and notifies the layer above.
func (n *Node) installView(v types.View) {
	n.view = v.Clone()
	n.hasView = true
	n.leaderLog = nil
	n.acked = make(map[types.ProcID]int, v.Members.Len())
	n.safePoint = 0
	n.buffer = make(map[int]Ordered)
	n.nextDeliver = 1
	n.delivered = nil
	n.nextSafe = 1
	n.safeUpTo = 0
	n.sendSeq = 0
	n.pendingOut = nil
	n.pendingTime = nil
	n.dataNext = make(map[types.ProcID]int)
	n.dataBuf = make(map[types.ProcID]map[int]any)
	n.nViews.Add(1)

	n.mu.Lock()
	n.published = v.Clone()
	n.publishOK = true
	n.mu.Unlock()

	if n.handler != nil {
		n.handler.OnNewView(v.Clone())
	}
}

func (n *Node) leader() types.ProcID { return n.view.Members.Sorted()[0] }

// SendInLoop submits a payload for totally ordered delivery within the
// current view. It must be called from inside the event loop (i.e. from a
// Handler upcall or a Do closure). Without a current view the payload is
// dropped, as the VS specification permits.
func (n *Node) SendInLoop(payload any) {
	if !n.hasView {
		return
	}
	n.sendSeq++
	n.nSubmit.Add(1)
	d := Data{ViewID: n.view.ID, SenderSeq: n.sendSeq, Payload: payload}
	n.pendingOut = append(n.pendingOut, d)
	n.pendingTime = append(n.pendingTime, time.Now())
	if n.leader() == n.self {
		n.onData(n.self, d)
		return
	}
	n.fabric.Send(n.self, n.leader(), d)
}

func (n *Node) onData(from types.ProcID, m Data) {
	if !n.hasView || m.ViewID != n.view.ID || n.leader() != n.self {
		return
	}
	next := n.dataNext[from] + 1
	if m.SenderSeq < next {
		return // duplicate retransmission
	}
	buf, ok := n.dataBuf[from]
	if !ok {
		buf = make(map[int]any)
		n.dataBuf[from] = buf
	}
	buf[m.SenderSeq] = m.Payload
	// Order contiguously, preserving per-sender FIFO across losses.
	for {
		payload, ok := buf[next]
		if !ok {
			break
		}
		delete(buf, next)
		n.dataNext[from] = next
		n.order(from, payload)
		next++
	}
}

func (n *Node) order(sender types.ProcID, payload any) {
	o := Ordered{ViewID: n.view.ID, Seq: len(n.leaderLog) + 1, Sender: sender, SenderSeq: n.dataNext[sender], Payload: payload}
	n.leaderLog = append(n.leaderLog, o)
	for _, q := range n.view.Members.Sorted() {
		if q == n.self {
			n.onOrdered(o)
		} else {
			n.fabric.Send(n.self, q, o)
		}
	}
}

func (n *Node) onOrdered(m Ordered) {
	if !n.hasView || m.ViewID != n.view.ID {
		return
	}
	if m.Seq < n.nextDeliver {
		return
	}
	n.buffer[m.Seq] = m
	progressed := false
	for {
		o, ok := n.buffer[n.nextDeliver]
		if !ok {
			break
		}
		delete(n.buffer, n.nextDeliver)
		n.delivered = append(n.delivered, o)
		n.nextDeliver++
		n.nDelivered.Add(1)
		progressed = true
		if o.Sender == n.self {
			// Our own submission made it into the ordered stream: stop
			// retransmitting everything up to it, recording its
			// submit-to-delivery latency.
			for len(n.pendingOut) > 0 && n.pendingOut[0].SenderSeq <= o.SenderSeq {
				n.nLatSamples.Add(1)
				n.latTotalNs.Add(int64(time.Since(n.pendingTime[0])))
				n.pendingOut = n.pendingOut[1:]
				n.pendingTime = n.pendingTime[1:]
			}
		}
		if n.handler != nil {
			n.handler.OnRecv(o.Payload, o.Sender)
		}
	}
	if progressed {
		ack := Ack{ViewID: n.view.ID, Seq: n.nextDeliver - 1}
		if n.leader() == n.self {
			n.onAckLocal(n.self, ack)
		} else {
			n.fabric.Send(n.self, n.leader(), ack)
		}
	}
	n.emitSafe()
}

func (n *Node) onAck(from types.ProcID, m Ack) {
	if !n.hasView || m.ViewID != n.view.ID || n.leader() != n.self {
		return
	}
	n.onAckLocal(from, m)
}

func (n *Node) onAckLocal(from types.ProcID, m Ack) {
	if m.Seq > n.acked[from] {
		n.acked[from] = m.Seq
	}
	safe := -1
	for q := range n.view.Members {
		a := n.acked[q]
		if safe == -1 || a < safe {
			safe = a
		}
	}
	if safe > n.safePoint {
		n.safePoint = safe
		sp := SafePoint{ViewID: n.view.ID, Seq: safe}
		for _, q := range n.view.Members.Sorted() {
			if q == n.self {
				n.onSafePoint(sp)
			} else {
				n.fabric.Send(n.self, q, sp)
			}
		}
	}
}

func (n *Node) onSafePoint(m SafePoint) {
	if !n.hasView || m.ViewID != n.view.ID {
		return
	}
	if m.Seq > n.safeUpTo {
		n.safeUpTo = m.Seq
	}
	n.emitSafe()
}

func (n *Node) emitSafe() {
	for n.nextSafe <= n.safeUpTo && n.nextSafe <= len(n.delivered) {
		o := n.delivered[n.nextSafe-1]
		n.nextSafe++
		if n.handler != nil {
			n.handler.OnSafe(o.Payload, o.Sender)
		}
	}
}

// Stopped returns a channel closed when the node is stopping; layers above
// use it to abort blocking hand-offs to the application.
func (n *Node) Stopped() <-chan struct{} { return n.stop }
