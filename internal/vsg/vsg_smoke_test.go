package vsg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	netfab "repro/internal/net"
	"repro/internal/types"
)

type countHandler struct {
	mu    sync.Mutex
	views []types.View
	recvs []string
	safes []string
}

func (h *countHandler) OnNewView(v types.View) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.views = append(h.views, v)
}
func (h *countHandler) OnRecv(p any, from types.ProcID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recvs = append(h.recvs, fmt.Sprint(p))
}
func (h *countHandler) OnSafe(p any, from types.ProcID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.safes = append(h.safes, fmt.Sprint(p))
}

func TestVSGSmoke(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(universe)
	fab := netfab.NewFabric(universe, netfab.Config{})
	nodes := make([]*Node, 3)
	handlers := make([]*countHandler, 3)
	for i := 0; i < 3; i++ {
		handlers[i] = &countHandler{}
		nodes[i] = NewNode(Config{Self: types.ProcID(i), Universe: universe, Initial: v0, Transport: fab})
		nodes[i].SetHandler(handlers[i])
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for k := 0; k < 5; k++ {
		msg := fmt.Sprintf("m%d", k)
		nodes[1].Do(func() { nodes[1].SendInLoop(msg) })
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		handlers[2].mu.Lock()
		r, s := len(handlers[2].recvs), len(handlers[2].safes)
		handlers[2].mu.Unlock()
		if r >= 5 && s >= 5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, h := range handlers {
		h.mu.Lock()
		t.Logf("node %d: views=%v recvs=%v safes=%v", i, h.views, h.recvs, h.safes)
		h.mu.Unlock()
	}
	t.Fatal("timeout")
}
