package vs

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

// TestEnvInputsPureFunctionOfState: the environment's enumeration must not
// mutate hidden counters or draw from a shared rng — equal state must yield
// equal inputs no matter how often, or in what order, states are visited.
// This is the soundness condition behind ioa.Explore's fingerprint dedup.
func TestEnvInputsPureFunctionOfState(t *testing.T) {
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	env := NewEnv(9, universe)
	a := New(universe, v0)

	key := func(acts []ioa.Action) []string {
		out := make([]string, len(acts))
		for i, x := range acts {
			out[i] = x.Key()
		}
		return out
	}
	first := key(env.Inputs(a))
	if len(first) == 0 {
		t.Fatal("no inputs offered")
	}
	// Interleave enumerations of an unrelated state: must not perturb a's.
	other := New(universe, types.InitialView(types.NewProcSet(0, 3)))
	for i := 0; i < 5; i++ {
		env.Inputs(other)
		again := key(env.Inputs(a))
		if len(again) != len(first) {
			t.Fatalf("enumeration %d: %v vs %v", i, again, first)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("enumeration %d differs: %v vs %v", i, again, first)
			}
		}
	}
	// A different base seed must produce a different candidate stream.
	otherSeed := NewEnv(10, universe).Inputs(a)
	if len(otherSeed) > 0 && otherSeed[0].Key() == first[0] {
		t.Log("note: differing seeds coincided on the first input (possible but unlikely)")
	}
}

// TestEverySeedCreatesViews is the regression test for the shared-Env
// MaxViews bug: the cap used to be a cumulative counter on one Env value
// passed to all seeds, so seeds after the first few silently ran with zero
// view proposals. With a fresh environment per seed and a cap derived from
// the automaton state, every seed's execution must actually create views.
func TestEverySeedCreatesViews(t *testing.T) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	const seeds = 10

	var mu sync.Mutex
	finals := make([]*VS, 0, seeds)
	ex := &ioa.Executor{Steps: 400, Seed: 11, Parallel: runtime.NumCPU()}
	_, err := ex.RunSeeds(seeds,
		func() ioa.Automaton {
			a := New(universe, v0)
			mu.Lock()
			finals = append(finals, a)
			mu.Unlock()
			return a
		},
		func(seed int64) ioa.Environment { return NewEnv(seed+99, universe) },
		Invariants())
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != seeds {
		t.Fatalf("expected %d executions, saw %d", seeds, len(finals))
	}
	for i, a := range finals {
		if len(a.Created()) <= 1 {
			t.Errorf("execution %d created no views beyond v0 — its environment never proposed any", i)
		}
	}
}

// TestExploreSpecEnvDeterministic: exhaustive exploration of the VS spec
// under its own environment must visit the identical state/edge counts on
// repeated runs and at every worker width — the property the stateful
// (visit-order-dependent) enumeration used to break.
func TestExploreSpecEnvDeterministic(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	cfg := ioa.ExploreConfig{MaxDepth: 6, MaxStates: 50000, Parallel: 1, Invariants: Invariants()}
	base, err := ioa.Explore(New(universe, v0), NewEnv(7, universe), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.States < 10 || base.Edges <= base.States {
		t.Fatalf("implausibly small exploration: %+v", base)
	}
	for _, parallel := range []int{1, runtime.NumCPU()} {
		cfg.Parallel = parallel
		got, err := ioa.Explore(New(universe, v0), NewEnv(7, universe), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.States != base.States || got.Edges != base.Edges || got.MaxDepth != base.MaxDepth {
			t.Errorf("parallel=%d: counts diverged: got %+v, want %+v", parallel, got, base)
		}
	}
}
