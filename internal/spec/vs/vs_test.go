package vs

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

func setup() (*VS, types.ProcSet, types.View) {
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	return New(universe, v0), universe, v0
}

func act(name string, kind ioa.Kind, param any) ioa.Action {
	return ioa.Action{Name: name, Kind: kind, Param: param}
}

func mustPerform(t *testing.T, a ioa.Automaton, actions ...ioa.Action) {
	t.Helper()
	for _, x := range actions {
		if err := a.Perform(x); err != nil {
			t.Fatalf("perform %s: %v", x, err)
		}
	}
}

func TestInitialState(t *testing.T) {
	a, _, v0 := setup()
	created := a.Created()
	if len(created) != 1 || !created[0].Equal(v0) {
		t.Fatalf("created = %v", created)
	}
	if g, ok := a.CurrentViewID(0); !ok || g != types.ViewIDZero {
		t.Error("member of P0 must start in g0")
	}
	if _, ok := a.CurrentViewID(3); ok {
		t.Error("non-member of P0 must start at ⊥")
	}
}

func TestCreateViewRequiresIncreasingID(t *testing.T) {
	a, _, _ := setup()
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	mustPerform(t, a, act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}))
	// Same id again must fail.
	if err := a.Perform(act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1})); err == nil {
		t.Error("duplicate id accepted")
	}
	// Smaller id must fail.
	smaller := types.NewView(types.ViewID{Seq: 0, Origin: 3}, 2, 3)
	if err := a.Perform(act(ActCreateView, ioa.KindInternal, CreateViewParam{View: smaller})); err == nil {
		t.Error("non-increasing id accepted")
	}
	// Empty membership must fail.
	if a.CreateViewCandidateOK(types.View{ID: types.ViewID{Seq: 5}}) {
		t.Error("empty membership accepted")
	}
}

func TestNewViewMonotoneAndMembersOnly(t *testing.T) {
	a, _, _ := setup()
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 3)
	mustPerform(t, a,
		act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 0}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 3}),
	)
	if g, _ := a.CurrentViewID(3); g != v1.ID {
		t.Error("newview must set current-viewid")
	}
	// Repeating for the same process must fail (id not greater).
	if err := a.Perform(act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 0})); err == nil {
		t.Error("repeated newview accepted")
	}
	// Non-member must fail.
	if err := a.Perform(act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 2})); err == nil {
		t.Error("newview at non-member accepted")
	}
}

func TestSendOrderReceiveSafeFlow(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("hello")
	mustPerform(t, a, act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}))
	if got := a.Pending(0, v0.ID); len(got) != 1 || got[0].MsgKey() != m.MsgKey() {
		t.Fatalf("pending = %v", got)
	}

	mustPerform(t, a, act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}))
	if q := a.Queue(v0.ID); len(q) != 1 || q[0].P != 0 {
		t.Fatalf("queue = %v", q)
	}
	// Safe before anyone received must be disabled.
	if err := a.Perform(act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 0})); err == nil {
		t.Error("safe before receipt accepted")
	}
	// All three members receive.
	for _, p := range []types.ProcID{0, 1, 2} {
		mustPerform(t, a, act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: p}))
	}
	if a.Next(1, v0.ID) != 2 {
		t.Error("next must advance")
	}
	// Now safe is enabled for each member.
	mustPerform(t, a, act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 2}))
	if a.NextSafe(2, v0.ID) != 2 {
		t.Error("next-safe must advance")
	}
}

func TestSendWithoutViewIsDropped(t *testing.T) {
	a, _, _ := setup()
	mustPerform(t, a, act(ActGpSnd, ioa.KindInput, SndParam{M: types.ClientMsg("x"), P: 3}))
	for _, v := range a.Created() {
		if len(a.Pending(3, v.ID)) != 0 {
			t.Error("send at ⊥ must be a no-op")
		}
	}
}

func TestMessagesStayInTheirView(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("old")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
	)
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1, 2)
	mustPerform(t, a,
		act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 0}),
	)
	// Process 0 has moved to v1; m is queued in v0 and must not be
	// receivable by 0 anymore.
	if err := a.Perform(act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: 0})); err == nil {
		t.Error("message delivered outside its view")
	}
	// Process 1 (still in v0) can receive it.
	mustPerform(t, a, act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1}))
}

func TestPrefixDelivery(t *testing.T) {
	a, _, v0 := setup()
	for _, payload := range []string{"a", "b", "c"} {
		m := types.ClientMsg(payload)
		mustPerform(t, a,
			act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
			act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
		)
	}
	// Receiving out of order must fail: process 1's next is position 1
	// ("a"), not "b".
	if err := a.Perform(act(ActGpRcv, ioa.KindOutput, RcvParam{M: types.ClientMsg("b"), From: 0, To: 1})); err == nil {
		t.Error("gap in delivery accepted")
	}
	mustPerform(t, a,
		act(ActGpRcv, ioa.KindOutput, RcvParam{M: types.ClientMsg("a"), From: 0, To: 1}),
		act(ActGpRcv, ioa.KindOutput, RcvParam{M: types.ClientMsg("b"), From: 0, To: 1}),
	)
}

func TestEnabledSortedAndComplete(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("m")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 1}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 1, G: v0.ID}),
	)
	acts := a.Enabled()
	for i := 1; i < len(acts); i++ {
		if acts[i].Key() < acts[i-1].Key() && acts[i].Name == acts[i-1].Name {
			t.Fatalf("Enabled not sorted: %v", acts)
		}
	}
	// gprcv for all three members must be enabled.
	n := 0
	for _, x := range acts {
		if x.Name == ActGpRcv {
			n++
		}
	}
	if n != 3 {
		t.Errorf("expected 3 enabled gprcv actions, got %d", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("m")
	mustPerform(t, a, act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}))
	b := a.Clone().(*VS)
	mustPerform(t, b, act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}))
	if len(a.Queue(v0.ID)) != 0 {
		t.Error("clone mutation leaked into original")
	}
	if ioa.FingerprintString(a) == ioa.FingerprintString(b) {
		t.Error("diverged states must have different fingerprints")
	}
}

func TestFingerprintStable(t *testing.T) {
	a, _, _ := setup()
	if ioa.FingerprintString(a) != ioa.FingerprintString(a) {
		t.Error("fingerprint not deterministic")
	}
	b, _, _ := setup()
	if ioa.FingerprintString(a) != ioa.FingerprintString(b) {
		t.Error("equal states must fingerprint equally")
	}
}

func TestUnknownActionAndBadParams(t *testing.T) {
	a, _, _ := setup()
	if err := a.Perform(ioa.Action{Name: "nope"}); err == nil {
		t.Error("unknown action accepted")
	}
	if err := a.Perform(act(ActGpSnd, ioa.KindInput, "wrong")); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Errorf("bad param not rejected: %v", err)
	}
}

func TestRandomExecutionsKeepInvariants(t *testing.T) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	ex := &ioa.Executor{Steps: 400, Seed: 11}
	_, err := ex.RunSeeds(10,
		func() ioa.Automaton { return New(universe, v0) },
		func(int64) ioa.Environment { return NewEnv(99, universe) },
		Invariants())
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecutionDeterminism(t *testing.T) {
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	run := func() string {
		ex := &ioa.Executor{Steps: 200, Seed: 5}
		res, err := ex.Run(New(universe, v0), NewEnv(7, universe), nil)
		if err != nil {
			t.Fatal(err)
		}
		return ioa.FingerprintString(res.Final)
	}
	if run() != run() {
		t.Error("seeded executions must be reproducible")
	}
}
