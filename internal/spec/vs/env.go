package vs

import (
	"strconv"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Env supplies inputs for driving the VS specification automaton: client
// broadcasts and vs-createview proposals with arbitrary membership and
// increasing ids.
//
// Enumeration is a pure function of (seed, automaton state): the candidate
// set is derived from a per-state PRNG seeded by ioa.StateSeed, and the
// view cap counts views already created in the state rather than proposals
// made by this Env value. Equal states therefore always offer equal inputs,
// which keeps ioa.Explore's fingerprint dedup sound and makes every seeded
// execution reproducible in isolation.
type Env struct {
	seed     int64
	procs    []types.ProcID
	MaxViews int // cap on created views, counting v0 (0 = unlimited)
}

var _ ioa.Environment = (*Env)(nil)

// NewEnv returns an environment over the given universe.
func NewEnv(seed int64, universe types.ProcSet) *Env {
	return &Env{
		seed:     seed,
		procs:    universe.Sorted(),
		MaxViews: 64,
	}
}

// Inputs implements ioa.Environment.
func (e *Env) Inputs(a ioa.Automaton) []ioa.Action {
	v, ok := a.(*VS)
	if !ok {
		return nil
	}
	rng := ioa.SeededRng(ioa.StateSeed(e.seed, a))
	defer ioa.PutRng(rng)
	var acts []ioa.Action

	p := types.RandomMember(rng, e.procs)
	m := types.ClientMsg("m" + strconv.FormatUint(rng.Uint64(), 36))
	acts = append(acts, ioa.Action{Name: ActGpSnd, Kind: ioa.KindInput, Param: SndParam{M: m, P: p}})

	if e.MaxViews == 0 || v.CreatedCount() < e.MaxViews {
		maxID := v.MaxCreatedID()
		// Retry a few memberships from the per-state PRNG: a single
		// rejected draw must not silence view creation in a state the
		// execution may never leave (inputs that are no-ops keep the
		// state, and hence the draw, identical).
		for try := 0; try < candidateTries; try++ {
			members := types.RandomSubset(rng, e.procs)
			cand := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members}
			if v.CreateViewCandidateOK(cand) {
				acts = append(acts, ioa.Action{Name: ActCreateView, Kind: ioa.KindInternal, Param: CreateViewParam{View: cand}})
				break
			}
		}
	}
	return acts
}

// candidateTries bounds the per-state membership draws for a view
// candidate satisfying the creation precondition.
const candidateTries = 16
