package vs

import (
	"math/rand"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Env is a random environment for driving the VS specification automaton:
// client broadcasts and vs-createview proposals with arbitrary (random)
// membership and increasing ids.
type Env struct {
	rng      *rand.Rand
	procs    []types.ProcID
	msgSeq   int
	proposed int
	MaxViews int // cap on proposed views (0 = unlimited)
}

var _ ioa.Environment = (*Env)(nil)

// NewEnv returns an environment over the given universe.
func NewEnv(seed int64, universe types.ProcSet) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    universe.Sorted(),
		MaxViews: 64,
	}
}

// Inputs implements ioa.Environment.
func (e *Env) Inputs(a ioa.Automaton) []ioa.Action {
	v, ok := a.(*VS)
	if !ok {
		return nil
	}
	var acts []ioa.Action

	p := types.RandomMember(e.rng, e.procs)
	e.msgSeq++
	m := types.ClientMsg("m" + strconv.Itoa(e.msgSeq))
	acts = append(acts, ioa.Action{Name: ActGpSnd, Kind: ioa.KindInput, Param: SndParam{M: m, P: p}})

	if e.MaxViews == 0 || e.proposed < e.MaxViews {
		members := types.RandomSubset(e.rng, e.procs)
		var maxID types.ViewID
		for _, w := range v.Created() {
			if maxID.Less(w.ID) {
				maxID = w.ID
			}
		}
		cand := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members}
		if v.CreateViewCandidateOK(cand) {
			e.proposed++
			acts = append(acts, ioa.Action{Name: ActCreateView, Kind: ioa.KindInternal, Param: CreateViewParam{View: cand}})
		}
	}
	return acts
}
