// Package vs implements the VS specification automaton of Figure 1 of the
// paper: the (modified) static view-oriented group communication service of
// Fekete, Lynch and Shvartsman, with a distinguished initial view v0 rather
// than a universe-wide initial view.
//
// The automaton is executable: every transition of Figure 1 is a Perform
// case, and Enabled enumerates the locally-controlled actions whose
// preconditions hold in the current state. View creation (vs-createview) is
// parameterized over the infinite set of views, so candidate views are
// supplied by the execution environment rather than enumerated.
package vs

import (
	"errors"
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Action names, exactly as in Figure 1.
const (
	ActCreateView = "vs-createview"
	ActNewView    = "vs-newview"
	ActGpSnd      = "vs-gpsnd"
	ActOrder      = "vs-order"
	ActGpRcv      = "vs-gprcv"
	ActSafe       = "vs-safe"
)

// CreateViewParam parameterizes vs-createview(v).
type CreateViewParam struct{ View types.View }

// String renders the parameter canonically.
func (p CreateViewParam) String() string { return p.View.String() }

// NewViewParam parameterizes vs-newview(v)_p.
type NewViewParam struct {
	View types.View
	P    types.ProcID
}

// String renders the parameter canonically.
func (p NewViewParam) String() string { return p.View.String() + "_" + p.P.String() }

// SndParam parameterizes vs-gpsnd(m)_p.
type SndParam struct {
	M types.Msg
	P types.ProcID
}

// String renders the parameter canonically.
func (p SndParam) String() string { return p.M.MsgKey() + "_" + p.P.String() }

// OrderParam parameterizes vs-order(m,p,g).
type OrderParam struct {
	M types.Msg
	P types.ProcID
	G types.ViewID
}

// String renders the parameter canonically.
func (p OrderParam) String() string {
	return p.M.MsgKey() + "," + p.P.String() + "," + p.G.String()
}

// RcvParam parameterizes vs-gprcv(m)_{p,q} and vs-safe(m)_{p,q}. The paper's
// "choose g" (and "choose P" for safe) components are determined by the
// state (g = current-viewid[q]; P by Invariant 3.1) and are therefore not
// part of the action identity.
type RcvParam struct {
	M    types.Msg
	From types.ProcID
	To   types.ProcID
}

// String renders the parameter canonically.
func (p RcvParam) String() string {
	return p.M.MsgKey() + "_" + p.From.String() + "," + p.To.String()
}

// Entry is a queue element <m, p>.
type Entry struct {
	M types.Msg
	P types.ProcID
}

func (e Entry) key() string { return e.M.MsgKey() + "@" + e.P.String() }

type procView struct {
	P types.ProcID
	G types.ViewID
}

// VS is the specification automaton state of Figure 1.
type VS struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	//lint:fpignore fixed at construction; identical across every state of one exploration
	initial types.View

	created  map[types.ViewID]types.View
	current  map[types.ProcID]types.ViewID // current-viewid; absent key = ⊥
	queues   map[types.ViewID][]Entry
	pending  map[procView][]types.Msg
	next     map[procView]int // absent = 1
	nextSafe map[procView]int // absent = 1
}

var _ ioa.Automaton = (*VS)(nil)

// New returns the VS automaton in its initial state: created = {v0},
// current-viewid[p] = g0 for p ∈ P0 and ⊥ otherwise.
func New(universe types.ProcSet, initial types.View) *VS {
	a := &VS{
		universe: universe.Clone(),
		initial:  initial.Clone(),
		created:  map[types.ViewID]types.View{initial.ID: initial.Clone()},
		current:  make(map[types.ProcID]types.ViewID),
		queues:   make(map[types.ViewID][]Entry),
		pending:  make(map[procView][]types.Msg),
		next:     make(map[procView]int),
		nextSafe: make(map[procView]int),
	}
	for p := range initial.Members {
		a.current[p] = initial.ID
	}
	return a
}

// Name implements ioa.Automaton.
func (a *VS) Name() string { return "VS" }

// Universe returns the processor universe P.
func (a *VS) Universe() types.ProcSet { return a.universe }

// Created returns the set of created views, sorted by identifier.
func (a *VS) Created() []types.View {
	out := make([]types.View, 0, len(a.created))
	for _, v := range a.created {
		out = append(out, v.Clone())
	}
	types.SortViews(out)
	return out
}

// CreatedCount returns |created| without materializing the views.
func (a *VS) CreatedCount() int { return len(a.created) }

// MaxCreatedID returns the largest created view id (the zero ViewID if no
// view has been created, which cannot happen after initialization).
func (a *VS) MaxCreatedID() types.ViewID {
	var max types.ViewID
	for id := range a.created {
		if max.Less(id) {
			max = id
		}
	}
	return max
}

// CreatedShared returns the created views sorted by id without cloning
// memberships. The caller must treat the views as read-only; it exists for
// per-state hot paths (abstraction functions, environments, invariants)
// where Created's defensive copies dominate the allocation profile.
func (a *VS) CreatedShared() []types.View {
	out := make([]types.View, 0, len(a.created))
	for _, v := range a.created {
		out = append(out, v)
	}
	types.SortViews(out)
	return out
}

// CurrentViewID returns current-viewid[p]; ok is false for ⊥.
func (a *VS) CurrentViewID(p types.ProcID) (types.ViewID, bool) {
	g, ok := a.current[p]
	return g, ok
}

// Queue returns a copy of queue[g].
func (a *VS) Queue(g types.ViewID) []Entry {
	q := a.queues[g]
	out := make([]Entry, len(q))
	copy(out, q)
	return out
}

// QueueShared returns queue[g] without copying; read-only.
func (a *VS) QueueShared(g types.ViewID) []Entry { return a.queues[g] }

// Next returns next[p, g].
func (a *VS) Next(p types.ProcID, g types.ViewID) int {
	return defaultOne(a.next, procView{p, g})
}

// NextSafe returns next-safe[p, g].
func (a *VS) NextSafe(p types.ProcID, g types.ViewID) int {
	return defaultOne(a.nextSafe, procView{p, g})
}

// Pending returns a copy of pending[p, g].
func (a *VS) Pending(p types.ProcID, g types.ViewID) []types.Msg {
	return types.CloneSeq(a.pending[procView{p, g}])
}

// PendingShared returns pending[p, g] without copying; read-only.
func (a *VS) PendingShared(p types.ProcID, g types.ViewID) []types.Msg {
	return a.pending[procView{p, g}]
}

func defaultOne(m map[procView]int, k procView) int {
	if v, ok := m[k]; ok {
		return v
	}
	return 1
}

// Enabled implements ioa.Automaton. It enumerates the locally controlled
// actions with satisfied preconditions, except vs-createview whose parameter
// space is unbounded (candidates come from the environment; see
// CreateViewCandidateOK for its precondition).
func (a *VS) Enabled() []ioa.Action {
	var acts []ioa.Action
	// vs-newview(v)_p
	for _, v := range a.created {
		for p := range v.Members {
			if cur, ok := a.current[p]; !ok || cur.Less(v.ID) {
				// Aliases the created view: Perform only reads the param and
				// action params are never mutated, so no defensive copy.
				acts = append(acts, ioa.Action{Name: ActNewView, Kind: ioa.KindOutput, Param: NewViewParam{View: v, P: p}})
			}
		}
	}
	// vs-order(m, p, g)
	for pg, msgs := range a.pending {
		if len(msgs) > 0 {
			acts = append(acts, ioa.Action{Name: ActOrder, Kind: ioa.KindInternal, Param: OrderParam{M: msgs[0], P: pg.P, G: pg.G}})
		}
	}
	// vs-gprcv(m)_{p,q} and vs-safe(m)_{p,q}
	for q, g := range a.current {
		queue := a.queues[g]
		if n := a.Next(q, g); n <= len(queue) {
			e := queue[n-1]
			acts = append(acts, ioa.Action{Name: ActGpRcv, Kind: ioa.KindOutput, Param: RcvParam{M: e.M, From: e.P, To: q}})
		}
		if ns := a.NextSafe(q, g); ns <= len(queue) {
			if a.safeEnabled(q, g, ns) {
				e := queue[ns-1]
				acts = append(acts, ioa.Action{Name: ActSafe, Kind: ioa.KindOutput, Param: RcvParam{M: e.M, From: e.P, To: q}})
			}
		}
	}
	ioa.SortActions(acts)
	return acts
}

func (a *VS) safeEnabled(q types.ProcID, g types.ViewID, ns int) bool {
	v, ok := a.created[g]
	if !ok {
		return false
	}
	for r := range v.Members {
		if a.Next(r, g) <= ns {
			return false
		}
	}
	return true
}

// CreateViewCandidateOK reports whether vs-createview(v) is enabled: v.id
// strictly greater than every created view's id.
func (a *VS) CreateViewCandidateOK(v types.View) bool {
	if v.Members.Len() == 0 {
		return false
	}
	for id := range a.created {
		if !id.Less(v.ID) {
			return false
		}
	}
	return true
}

// Perform implements ioa.Automaton.
func (a *VS) Perform(act ioa.Action) error {
	switch act.Name {
	case ActCreateView:
		p, ok := act.Param.(CreateViewParam)
		if !ok {
			return badParam(act)
		}
		if !a.CreateViewCandidateOK(p.View) {
			return fmt.Errorf("vs-createview(%s): id not greater than all created", p.View)
		}
		a.created[p.View.ID] = p.View.Clone()
		return nil

	case ActNewView:
		p, ok := act.Param.(NewViewParam)
		if !ok {
			return badParam(act)
		}
		v, created := a.created[p.View.ID]
		if !created || !v.Equal(p.View) {
			return fmt.Errorf("vs-newview(%s): view not created", p.View)
		}
		if !v.Contains(p.P) {
			return fmt.Errorf("vs-newview(%s)_%s: process not a member", p.View, p.P)
		}
		if cur, ok := a.current[p.P]; ok && !cur.Less(v.ID) {
			return fmt.Errorf("vs-newview(%s)_%s: id not greater than current %s", p.View, p.P, cur)
		}
		a.current[p.P] = v.ID
		return nil

	case ActGpSnd:
		p, ok := act.Param.(SndParam)
		if !ok {
			return badParam(act)
		}
		if g, ok := a.current[p.P]; ok {
			k := procView{p.P, g}
			a.pending[k] = append(a.pending[k], p.M)
		}
		return nil

	case ActOrder:
		p, ok := act.Param.(OrderParam)
		if !ok {
			return badParam(act)
		}
		k := procView{p.P, p.G}
		msgs := a.pending[k]
		if len(msgs) == 0 || msgs[0].MsgKey() != p.M.MsgKey() {
			return fmt.Errorf("vs-order(%s): not head of pending[%s,%s]", p.M.MsgKey(), p.P, p.G)
		}
		a.pending[k] = msgs[1:]
		if len(a.pending[k]) == 0 {
			delete(a.pending, k)
		}
		a.queues[p.G] = append(a.queues[p.G], Entry{M: p.M, P: p.P})
		return nil

	case ActGpRcv:
		p, ok := act.Param.(RcvParam)
		if !ok {
			return badParam(act)
		}
		g, hasView := a.current[p.To]
		if !hasView {
			return fmt.Errorf("vs-gprcv to %s: no current view", p.To)
		}
		k := procView{p.To, g}
		n := defaultOne(a.next, k)
		queue := a.queues[g]
		if n > len(queue) || queue[n-1].M.MsgKey() != p.M.MsgKey() || queue[n-1].P != p.From {
			return fmt.Errorf("vs-gprcv(%s)_%s,%s: queue[%s](%d) mismatch", p.M.MsgKey(), p.From, p.To, g, n)
		}
		a.next[k] = n + 1
		return nil

	case ActSafe:
		p, ok := act.Param.(RcvParam)
		if !ok {
			return badParam(act)
		}
		g, hasView := a.current[p.To]
		if !hasView {
			return fmt.Errorf("vs-safe to %s: no current view", p.To)
		}
		k := procView{p.To, g}
		ns := defaultOne(a.nextSafe, k)
		queue := a.queues[g]
		if ns > len(queue) || queue[ns-1].M.MsgKey() != p.M.MsgKey() || queue[ns-1].P != p.From {
			return fmt.Errorf("vs-safe(%s)_%s,%s: queue[%s](%d) mismatch", p.M.MsgKey(), p.From, p.To, g, ns)
		}
		if !a.safeEnabled(p.To, g, ns) {
			return fmt.Errorf("vs-safe(%s)_%s,%s: some member has not received index %d", p.M.MsgKey(), p.From, p.To, ns)
		}
		a.nextSafe[k] = ns + 1
		return nil

	default:
		return fmt.Errorf("vs: unknown action %q", act.Name)
	}
}

func badParam(act ioa.Action) error {
	return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
}

// Clone implements ioa.Automaton.
func (a *VS) Clone() ioa.Automaton {
	b := &VS{
		universe: a.universe.Clone(),
		initial:  a.initial.Clone(),
		created:  make(map[types.ViewID]types.View, len(a.created)),
		current:  make(map[types.ProcID]types.ViewID, len(a.current)),
		queues:   make(map[types.ViewID][]Entry, len(a.queues)),
		pending:  make(map[procView][]types.Msg, len(a.pending)),
		next:     make(map[procView]int, len(a.next)),
		nextSafe: make(map[procView]int, len(a.nextSafe)),
	}
	for id, v := range a.created {
		b.created[id] = v.Clone()
	}
	for p, g := range a.current {
		b.current[p] = g
	}
	for g, q := range a.queues {
		b.queues[g] = types.CloneSeq(q)
	}
	for k, msgs := range a.pending {
		b.pending[k] = types.CloneSeq(msgs)
	}
	for k, n := range a.next {
		b.next[k] = n
	}
	for k, n := range a.nextSafe {
		b.nextSafe[k] = n
	}
	return b
}

// Fingerprint implements ioa.Automaton. Default-valued components (empty
// queues, next = 1) are omitted so materialized-but-default map entries do
// not perturb the fingerprint. Values stream into the digest; no
// intermediate strings are built.
func (a *VS) Fingerprint(f *ioa.Fingerprinter) {
	for id, v := range a.created {
		f.Begin("created.")
		id.WriteFp(f)
		f.Byte('=')
		v.Members.WriteFp(f)
		f.End()
	}
	for p, g := range a.current {
		f.Begin("cur.")
		p.WriteFp(f)
		f.Byte('=')
		g.WriteFp(f)
		f.End()
	}
	for g, q := range a.queues {
		if len(q) > 0 {
			f.Begin("queue.")
			g.WriteFp(f)
			f.Byte('=')
			writeEntriesFp(f, q)
			f.End()
		}
	}
	for k, msgs := range a.pending {
		if len(msgs) > 0 {
			beginProcViewFp(f, "pending.", k)
			writeMsgsFp(f, msgs)
			f.End()
		}
	}
	for k, n := range a.next {
		if n != 1 {
			beginProcViewFp(f, "next.", k)
			f.Int(n)
			f.End()
		}
	}
	for k, n := range a.nextSafe {
		if n != 1 {
			beginProcViewFp(f, "nextsafe.", k)
			f.Int(n)
			f.End()
		}
	}
}

// beginProcViewFp opens a "key.p.g=" fingerprint line.
func beginProcViewFp(f *ioa.Fingerprinter, key string, k procView) {
	f.Begin(key)
	k.P.WriteFp(f)
	f.Byte('.')
	k.G.WriteFp(f)
	f.Byte('=')
}

func writeEntriesFp(f *ioa.Fingerprinter, q []Entry) {
	for i, e := range q {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, e.M)
		f.Byte('@')
		e.P.WriteFp(f)
	}
}

func writeMsgsFp(f *ioa.Fingerprinter, msgs []types.Msg) {
	for i, m := range msgs {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, m)
	}
}

// CheckInvariant31 checks Invariant 3.1: created views have unique ids. The
// representation indexes created by id, so the checkable content is that the
// stored view's id matches its key.
func CheckInvariant31(a *VS) error {
	for id, v := range a.created {
		if v.ID != id {
			return fmt.Errorf("created view %s stored under id %s", v, id)
		}
		if v.Members.Len() == 0 {
			return errors.New("created view with empty membership: " + v.String())
		}
	}
	return nil
}

// Invariants returns the paper's invariants for VS as ioa invariants.
func Invariants() []ioa.Invariant {
	return []ioa.Invariant{{
		Name: "VS-3.1",
		Check: func(a ioa.Automaton) error {
			v, ok := a.(*VS)
			if !ok {
				return fmt.Errorf("VS invariant on %T", a)
			}
			return CheckInvariant31(v)
		},
	}}
}
