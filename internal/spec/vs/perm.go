package vs

import "repro/internal/types"

// Permute returns π(a): a fresh VS state with every process identity — in
// memberships, view-id origins, queue entries, and pending messages —
// replaced by its image under π. Used by the symmetry reduction of the
// compositions that embed VS; the receiver is not mutated.
func (a *VS) Permute(pi types.Perm) *VS {
	b := &VS{
		universe: pi.Set(a.universe),
		initial:  pi.View(a.initial),
		created:  make(map[types.ViewID]types.View, len(a.created)),
		current:  make(map[types.ProcID]types.ViewID, len(a.current)),
		queues:   make(map[types.ViewID][]Entry, len(a.queues)),
		pending:  make(map[procView][]types.Msg, len(a.pending)),
		next:     make(map[procView]int, len(a.next)),
		nextSafe: make(map[procView]int, len(a.nextSafe)),
	}
	for id, v := range a.created {
		b.created[pi.ViewID(id)] = pi.View(v)
	}
	for p, g := range a.current {
		b.current[pi.ID(p)] = pi.ViewID(g)
	}
	for g, q := range a.queues {
		nq := make([]Entry, len(q))
		for i, e := range q {
			nq[i] = Entry{M: pi.Msg(e.M), P: pi.ID(e.P)}
		}
		b.queues[pi.ViewID(g)] = nq
	}
	for k, msgs := range a.pending {
		b.pending[procView{pi.ID(k.P), pi.ViewID(k.G)}] = pi.Msgs(msgs)
	}
	for k, n := range a.next {
		b.next[procView{pi.ID(k.P), pi.ViewID(k.G)}] = n
	}
	for k, n := range a.nextSafe {
		b.nextSafe[procView{pi.ID(k.P), pi.ViewID(k.G)}] = n
	}
	return b
}
