package dvs

import (
	"repro/internal/ioa"
	"repro/internal/types"
)

var _ ioa.Symmetric = (*DVS)(nil)

// Permute returns π(a): a fresh DVS state with every process identity — in
// memberships, view-id origins, attempted/registered sets, queue entries,
// and pending messages — replaced by its image under π. The symmetry group
// is carried over unchanged (conjugating a stabilizer by one of its own
// elements is the identity). The receiver is not mutated.
func (a *DVS) Permute(pi types.Perm) *DVS {
	b := &DVS{
		literal:    a.literal,
		drained:    a.drained,
		syms:       a.syms,
		universe:   pi.Set(a.universe),
		initial:    pi.View(a.initial),
		created:    make(map[types.ViewID]types.View, len(a.created)),
		current:    make(map[types.ProcID]types.ViewID, len(a.current)),
		queues:     make(map[types.ViewID][]Entry, len(a.queues)),
		attempted:  make(map[types.ViewID]types.ProcSet, len(a.attempted)),
		registered: make(map[types.ViewID]types.ProcSet, len(a.registered)),
		pending:    make(map[procView][]types.Msg, len(a.pending)),
		next:       make(map[procView]int, len(a.next)),
		nextSafe:   make(map[procView]int, len(a.nextSafe)),
		rcvd:       make(map[procView]int, len(a.rcvd)),
	}
	for id, v := range a.created {
		b.created[pi.ViewID(id)] = pi.View(v)
	}
	for p, g := range a.current {
		b.current[pi.ID(p)] = pi.ViewID(g)
	}
	for g, q := range a.queues {
		nq := make([]Entry, len(q))
		for i, e := range q {
			nq[i] = Entry{M: pi.Msg(e.M), P: pi.ID(e.P)}
		}
		b.queues[pi.ViewID(g)] = nq
	}
	for g, s := range a.attempted {
		b.attempted[pi.ViewID(g)] = pi.Set(s)
	}
	for g, s := range a.registered {
		b.registered[pi.ViewID(g)] = pi.Set(s)
	}
	for k, msgs := range a.pending {
		b.pending[procView{pi.ID(k.P), pi.ViewID(k.G)}] = pi.Msgs(msgs)
	}
	for k, n := range a.next {
		b.next[procView{pi.ID(k.P), pi.ViewID(k.G)}] = n
	}
	for k, n := range a.nextSafe {
		b.nextSafe[procView{pi.ID(k.P), pi.ViewID(k.G)}] = n
	}
	for k, n := range a.rcvd {
		b.rcvd[procView{pi.ID(k.P), pi.ViewID(k.G)}] = n
	}
	return b
}

// EnableSymmetry computes the automaton's symmetry group — the permutations
// of the universe that fix the CURRENT state by fingerprint — and installs
// it for Canonicalize/Orbit. Call it on the initial state, before
// exploration: the stabilizer of the initial state is exactly the set of
// permutations under which every reachable orbit has a reachable
// representative (assuming equivariant transitions, invariants, and
// environment — see DESIGN.md §6.7). Returns the group order.
func (a *DVS) EnableSymmetry() int {
	self := ioa.FpOf(a)
	var syms []types.Perm
	for _, pi := range types.PermsOf(a.universe) {
		if ioa.FpOf(a.Permute(pi)) == self {
			syms = append(syms, pi)
		}
	}
	a.syms = syms
	return len(syms)
}

// Canonicalize implements ioa.Symmetric: the orbit member with the least
// fingerprint, under the group installed by EnableSymmetry. With no group
// installed (or the trivial group) the receiver is its own representative.
func (a *DVS) Canonicalize() ioa.Automaton {
	if len(a.syms) <= 1 {
		return a
	}
	var best ioa.Automaton = a
	bestFp := ioa.FpOf(a)
	for _, pi := range a.syms[1:] { // syms[0] is the identity
		cand := a.Permute(pi)
		if fp := ioa.FpOf(cand); fp.Less(bestFp) {
			best, bestFp = cand, fp
		}
	}
	return best
}

// Orbit implements ioa.Symmetric.
func (a *DVS) Orbit() []ioa.Automaton {
	syms := a.syms
	if len(syms) == 0 {
		syms = []types.Perm{nil} // identity only
	}
	out := make([]ioa.Automaton, 0, len(syms))
	for _, pi := range syms {
		out = append(out, a.Permute(pi))
	}
	return out
}
