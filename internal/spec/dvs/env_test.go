package dvs

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

// TestEverySeedCreatesViews is the DVS-side regression test for the shared
// MaxViews counter bug (see the VS twin for the full story): with a fresh
// environment per seed and a state-derived cap, no seed silently runs
// without view proposals.
func TestEverySeedCreatesViews(t *testing.T) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	const seeds = 8

	var mu sync.Mutex
	finals := make([]*DVS, 0, seeds)
	ex := &ioa.Executor{Steps: 400, Seed: 21, Parallel: runtime.NumCPU()}
	_, err := ex.RunSeeds(seeds,
		func() ioa.Automaton {
			a := New(universe, v0)
			mu.Lock()
			finals = append(finals, a)
			mu.Unlock()
			return a
		},
		func(seed int64) ioa.Environment { return NewEnv(seed+33, universe) },
		Invariants())
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range finals {
		if len(a.Created()) <= 1 {
			t.Errorf("execution %d created no views beyond v0 — its environment never proposed any", i)
		}
	}
}

// TestExploreSpecEnvDeterministic: bounded exploration of the DVS spec
// under its own environment visits identical counts across repeated runs
// and worker widths, now that input enumeration is a pure function of the
// automaton state.
func TestExploreSpecEnvDeterministic(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(types.NewProcSet(0, 1))
	run := func(parallel int) ioa.ExploreResult {
		res, err := ioa.Explore(New(universe, v0), NewEnv(5, universe), ioa.ExploreConfig{
			MaxDepth: 5, MaxStates: 50000, Parallel: parallel, Invariants: Invariants(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.States < 10 {
		t.Fatalf("implausibly small exploration: %+v", base)
	}
	for _, parallel := range []int{1, runtime.NumCPU()} {
		got := run(parallel)
		if got.States != base.States || got.Edges != base.Edges || got.MaxDepth != base.MaxDepth {
			t.Errorf("parallel=%d: counts diverged: got %+v, want %+v", parallel, got, base)
		}
	}
}
