package dvs

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// CheckInvariant41 checks Invariant 4.1 (the key intersection property):
// if v, w ∈ created, v.id < w.id, and there is no x ∈ TotReg with
// v.id < x.id < w.id, then v.set ∩ w.set ≠ {}.
func CheckInvariant41(a *DVS) error {
	snap := a.sortedTotReg()
	defer putTotReg(snap)
	ids, tot := snap.ids, snap.tot
	for i, vid := range ids {
		v := a.created[vid]
		// In id order, the first totally registered view after i lies
		// strictly between v and every later view, exempting those pairs;
		// the scan stops there after checking the flagged view itself.
		for j := i + 1; j < len(ids); j++ {
			w := a.created[ids[j]]
			if !v.Members.Intersects(w.Members) {
				return fmt.Errorf("views %s and %s disjoint with no intervening totally registered view", v, w)
			}
			if tot[j] {
				break
			}
		}
	}
	return nil
}

// CheckInvariant42 checks Invariant 4.2: if v ∈ created, w ∈ TotAtt, and
// v.id < w.id, then some p ∈ v.set has current-viewid[p] > v.id.
//
// "v precedes some totally attempted view" is equivalent to
// v.id < max{w.id : w ∈ TotAtt}, so one pass over created computes the
// largest totally attempted id and a second pass checks the affected views.
// Both passes read the state maps directly — the cloning TotAtt()/Created()
// snapshots this check used to take dominated the allocation profile of
// per-step invariant checking (Clone of every view's membership, every
// state).
func CheckInvariant42(a *DVS) error {
	var maxAtt types.ViewID
	haveAtt := false
	for id, v := range a.created {
		if att, ok := a.attempted[id]; ok && v.Members.Subset(att) {
			if !haveAtt || maxAtt.Less(id) {
				maxAtt = id
				haveAtt = true
			}
		}
	}
	if !haveAtt {
		return nil
	}
	for id, v := range a.created {
		if !id.Less(maxAtt) {
			continue
		}
		ok := false
		for p := range v.Members {
			if cur, has := a.current[p]; has && id.Less(cur) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("view %s precedes a totally attempted view but every member is still at id ≤ %s", v, id)
		}
	}
	return nil
}

// checkWellFormed validates structural sanity of the representation (unique
// ids by construction, attempted/registered sets within membership of the
// corresponding created view, queue contents are client messages).
func checkWellFormed(a *DVS) error {
	for id, v := range a.created {
		if v.ID != id {
			return fmt.Errorf("created view %s stored under id %s", v, id)
		}
		if v.Members.Len() == 0 {
			return fmt.Errorf("created view %s has empty membership", v)
		}
	}
	for g, s := range a.attempted {
		v, ok := a.created[g]
		if !ok {
			if s.Len() > 0 {
				return fmt.Errorf("attempted[%s] nonempty for uncreated view", g)
			}
			continue
		}
		if !s.Subset(v.Members) {
			return fmt.Errorf("attempted[%s] = %s not within members %s", g, s, v.Members)
		}
	}
	for g, s := range a.registered {
		v, ok := a.created[g]
		if !ok {
			if s.Len() > 0 {
				return fmt.Errorf("registered[%s] nonempty for uncreated view", g)
			}
			continue
		}
		if !s.Subset(v.Members) {
			return fmt.Errorf("registered[%s] = %s not within members %s", g, s, v.Members)
		}
	}
	if !a.literal {
		for k := range a.next {
			if a.Next(k.P, k.G) > a.Rcvd(k.P, k.G) {
				return fmt.Errorf("next[%s,%s] = %d exceeds rcvd %d", k.P, k.G, a.Next(k.P, k.G), a.Rcvd(k.P, k.G))
			}
		}
		for k := range a.rcvd {
			if a.Rcvd(k.P, k.G) > len(a.queues[k.G])+1 {
				return fmt.Errorf("rcvd[%s,%s] = %d exceeds queue length %d", k.P, k.G, a.Rcvd(k.P, k.G), len(a.queues[k.G]))
			}
		}
	}
	return nil
}

// Invariants returns the paper's DVS invariants (plus representation
// well-formedness) as ioa invariants.
func Invariants() []ioa.Invariant {
	wrap := func(name string, check func(*DVS) error) ioa.Invariant {
		return ioa.Invariant{
			Name: name,
			Check: func(a ioa.Automaton) error {
				d, ok := a.(*DVS)
				if !ok {
					return fmt.Errorf("DVS invariant on %T", a)
				}
				return check(d)
			},
		}
	}
	return []ioa.Invariant{
		wrap("DVS-wellformed", checkWellFormed),
		wrap("DVS-4.1", CheckInvariant41),
		wrap("DVS-4.2", CheckInvariant42),
	}
}

// State describes an explicit DVS state; it is used by the refinement
// mapping F (Figure 4) to construct the abstract state corresponding to an
// implementation state.
type State struct {
	Universe   types.ProcSet
	Initial    types.View
	Created    []types.View
	Current    map[types.ProcID]types.ViewID // omit key for ⊥
	Attempted  map[types.ViewID]types.ProcSet
	Registered map[types.ViewID]types.ProcSet
	Queues     map[types.ViewID][]Entry
	Pending    map[types.ProcID]map[types.ViewID][]types.Msg
	Next       map[types.ProcID]map[types.ViewID]int
	NextSafe   map[types.ProcID]map[types.ViewID]int
	Rcvd       map[types.ProcID]map[types.ViewID]int // amended spec only
	Literal    bool
	Drained    bool
}

// FromState constructs a DVS automaton holding exactly the given state.
// Inputs are deep-copied.
func FromState(st State) *DVS {
	a := &DVS{
		literal:    st.Literal,
		drained:    st.Drained,
		universe:   st.Universe.Clone(),
		initial:    st.Initial.Clone(),
		created:    make(map[types.ViewID]types.View, len(st.Created)),
		current:    make(map[types.ProcID]types.ViewID, len(st.Current)),
		queues:     make(map[types.ViewID][]Entry, len(st.Queues)),
		attempted:  make(map[types.ViewID]types.ProcSet, len(st.Attempted)),
		registered: make(map[types.ViewID]types.ProcSet, len(st.Registered)),
		pending:    make(map[procView][]types.Msg),
		next:       make(map[procView]int),
		nextSafe:   make(map[procView]int),
		rcvd:       make(map[procView]int),
	}
	for _, v := range st.Created {
		a.created[v.ID] = v.Clone()
	}
	for p, g := range st.Current {
		a.current[p] = g
	}
	for g, q := range st.Queues {
		if len(q) > 0 {
			a.queues[g] = types.CloneSeq(q)
		}
	}
	for g, s := range st.Attempted {
		if s.Len() > 0 {
			a.attempted[g] = s.Clone()
		}
	}
	for g, s := range st.Registered {
		if s.Len() > 0 {
			a.registered[g] = s.Clone()
		}
	}
	for p, byView := range st.Pending {
		for g, msgs := range byView {
			if len(msgs) > 0 {
				a.pending[procView{p, g}] = types.CloneSeq(msgs)
			}
		}
	}
	for p, byView := range st.Next {
		for g, n := range byView {
			if n != 1 {
				a.next[procView{p, g}] = n
			}
		}
	}
	for p, byView := range st.NextSafe {
		for g, n := range byView {
			if n != 1 {
				a.nextSafe[procView{p, g}] = n
			}
		}
	}
	for p, byView := range st.Rcvd {
		for g, n := range byView {
			if n != 1 {
				a.rcvd[procView{p, g}] = n
			}
		}
	}
	return a
}
