package dvs

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

func setup() (*DVS, types.ProcSet, types.View) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	return New(universe, v0), universe, v0
}

func act(name string, kind ioa.Kind, param any) ioa.Action {
	return ioa.Action{Name: name, Kind: kind, Param: param}
}

func mustPerform(t *testing.T, a ioa.Automaton, actions ...ioa.Action) {
	t.Helper()
	for _, x := range actions {
		if err := a.Perform(x); err != nil {
			t.Fatalf("perform %s: %v", x, err)
		}
	}
}

func TestInitialDerived(t *testing.T) {
	a, _, v0 := setup()
	if got := a.Attempted(v0.ID); !got.Equal(v0.Members) {
		t.Errorf("attempted[g0] = %s", got)
	}
	if got := a.Registered(v0.ID); !got.Equal(v0.Members) {
		t.Errorf("registered[g0] = %s", got)
	}
	tr := a.TotReg()
	if len(tr) != 1 || !tr[0].Equal(v0) {
		t.Errorf("TotReg = %v", tr)
	}
}

func TestCreateViewIntersectionPrecondition(t *testing.T) {
	a, _, _ := setup()
	// Disjoint from v0 = {0,1,2} with no intervening TotReg: forbidden.
	disjoint := types.NewView(types.ViewID{Seq: 1}, 3, 4)
	if a.CreateViewCandidateOK(disjoint) {
		t.Error("disjoint view accepted as primary")
	}
	// Intersecting is fine.
	ok := types.NewView(types.ViewID{Seq: 1}, 2, 3)
	mustPerform(t, a, act(ActCreateView, ioa.KindInternal, CreateViewParam{View: ok}))
	// Duplicate id forbidden (even with different membership).
	dup := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	if a.CreateViewCandidateOK(dup) {
		t.Error("duplicate id accepted")
	}
}

func TestCreateViewAfterTotalRegistration(t *testing.T) {
	a, _, _ := setup()
	// Create v1 = {2,3}, deliver to both, register both: v1 becomes
	// totally registered.
	v1 := types.NewView(types.ViewID{Seq: 1}, 2, 3)
	mustPerform(t, a,
		act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 2}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 3}),
		act(ActRegister, ioa.KindInput, RegisterParam{P: 2}),
		act(ActRegister, ioa.KindInput, RegisterParam{P: 3}),
	)
	if len(a.TotReg()) != 2 {
		t.Fatalf("TotReg = %v", a.TotReg())
	}
	// A view disjoint from v0 is now allowed if it intersects v1 — the
	// totally registered v1 shields v0.
	v2 := types.NewView(types.ViewID{Seq: 2}, 3, 4)
	if !v2.Members.Intersects(types.NewProcSet(0, 1, 2)) {
		// sanity of the scenario: v2 ∩ v0 = ∅
		if a.CreateViewCandidateOK(v2) != true {
			t.Error("v2 should be allowed: v1 ∈ TotReg lies between v0 and v2")
		}
		mustPerform(t, a, act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v2}))
	} else {
		t.Fatal("bad scenario")
	}
	if err := CheckInvariant41(a); err != nil {
		t.Errorf("4.1 must hold with the TotReg shield: %v", err)
	}
}

func TestRegisterOnlyCurrentView(t *testing.T) {
	a, _, v0 := setup()
	// Register at a process with ⊥: no effect.
	mustPerform(t, a, act(ActRegister, ioa.KindInput, RegisterParam{P: 4}))
	for _, v := range a.Created() {
		if a.Registered(v.ID).Contains(4) {
			t.Error("register at ⊥ must be a no-op")
		}
	}
	// Register records under the current view.
	mustPerform(t, a, act(ActRegister, ioa.KindInput, RegisterParam{P: 0}))
	if !a.Registered(v0.ID).Contains(0) {
		t.Error("register must record under current view")
	}
}

func TestAttemptedTracksNewView(t *testing.T) {
	a, _, _ := setup()
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 3)
	mustPerform(t, a,
		act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 3}),
	)
	if !a.Attempted(v1.ID).Contains(3) {
		t.Error("newview must add to attempted")
	}
	ta := a.TotAtt()
	if len(ta) != 1 { // only v0; v1 not attempted by 0 yet
		t.Errorf("TotAtt = %v", ta)
	}
}

func TestAmendedRcvGatesDelivery(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("x")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
	)
	// Client delivery before service receipt must fail in the amended
	// automaton.
	if err := a.Perform(act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1})); err == nil {
		t.Fatal("gprcv before dvs-rcv accepted")
	}
	mustPerform(t, a,
		act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 1, G: v0.ID}),
		act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1}),
	)
	if a.Next(1, v0.ID) != 2 || a.Rcvd(1, v0.ID) != 2 {
		t.Error("counters wrong after rcv + gprcv")
	}
}

func TestAmendedSafeNeedsAllEndpoints(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("x")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
		act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 0, G: v0.ID}),
		act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 1, G: v0.ID}),
	)
	// Member 2's endpoint has not received: safe must be disabled.
	if err := a.Perform(act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 0})); err == nil {
		t.Fatal("safe without all endpoints accepted")
	}
	mustPerform(t, a,
		act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 2, G: v0.ID}),
		act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 0}),
	)
}

func TestAmendedSafeDoesNotNeedClientDelivery(t *testing.T) {
	// The key weakening: endpoints received but no client has delivered —
	// safe is enabled in the amended automaton and disabled in the literal
	// one.
	mk := func(literal bool) *DVS {
		universe := types.RangeProcSet(3)
		v0 := types.InitialView(types.NewProcSet(0, 1, 2))
		if literal {
			return NewLiteral(universe, v0)
		}
		return New(universe, v0)
	}
	m := types.ClientMsg("x")
	g0 := types.ViewIDZero

	amended := mk(false)
	mustPerform(t, amended,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: g0}),
	)
	for p := types.ProcID(0); p < 3; p++ {
		mustPerform(t, amended, act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: p, G: g0}))
	}
	if err := amended.Perform(act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1})); err != nil {
		t.Errorf("amended safe should be enabled: %v", err)
	}

	literal := mk(true)
	mustPerform(t, literal,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: g0}),
	)
	if err := literal.Perform(act(ActSafe, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1})); err == nil {
		t.Error("literal safe requires client-level delivery at every member")
	}
}

func TestRcvBlockedAfterClientMovesOn(t *testing.T) {
	a, _, v0 := setup()
	m := types.ClientMsg("x")
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
		act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 1}),
	)
	// Process 1's client is now in v1; its endpoint no longer receives in
	// v0.
	if err := a.Perform(act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 1, G: v0.ID})); err == nil {
		t.Error("dvs-rcv after the client moved past the view accepted")
	}
	// Process 2's client is still in v0: receipt allowed.
	mustPerform(t, a, act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 2, G: v0.ID}))
}

func TestDrainedNewViewRequiresDrain(t *testing.T) {
	universe := types.RangeProcSet(3)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	a := NewDrained(universe, v0)
	m := types.ClientMsg("x")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
		act(ActRcv, ioa.KindInternal, SvcRcvParam{M: m, From: 0, To: 1, G: v0.ID}),
	)
	v1 := types.NewView(types.ViewID{Seq: 1}, 0, 1)
	mustPerform(t, a, act(ActCreateView, ioa.KindInternal, CreateViewParam{View: v1}))
	// Process 1 has an undelivered received message in v0: newview blocked.
	if err := a.Perform(act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 1})); err == nil {
		t.Fatal("drained newview accepted with undelivered messages")
	}
	mustPerform(t, a,
		act(ActGpRcv, ioa.KindOutput, RcvParam{M: m, From: 0, To: 1}),
		act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 1}),
	)
	// Process 0 never received at the endpoint: drained trivially.
	mustPerform(t, a, act(ActNewView, ioa.KindOutput, NewViewParam{View: v1, P: 0}))
}

func TestInvariant41Checker(t *testing.T) {
	a, _, _ := setup()
	if err := CheckInvariant41(a); err != nil {
		t.Fatal(err)
	}
	// Force a violation through the state constructor (not reachable via
	// transitions) to prove the checker detects it.
	bad := FromState(State{
		Universe: types.RangeProcSet(5),
		Initial:  types.InitialView(types.NewProcSet(0, 1, 2)),
		Created: []types.View{
			types.NewView(types.ViewIDZero, 0, 1, 2),
			types.NewView(types.ViewID{Seq: 1}, 3, 4),
		},
	})
	if err := CheckInvariant41(bad); err == nil {
		t.Error("4.1 violation not detected")
	}
}

func TestInvariant42Checker(t *testing.T) {
	// w totally attempted with id above v, but no member of v moved on.
	bad := FromState(State{
		Universe: types.RangeProcSet(5),
		Initial:  types.InitialView(types.NewProcSet(0, 1, 2)),
		Created: []types.View{
			types.NewView(types.ViewIDZero, 0, 1, 2),
			types.NewView(types.ViewID{Seq: 1}, 2, 3),
		},
		Attempted: map[types.ViewID]types.ProcSet{
			{Seq: 1}: types.NewProcSet(2, 3),
		},
		Current: map[types.ProcID]types.ViewID{
			0: {}, 1: {}, 2: {}, // nobody moved past g0
			3: {Seq: 1},
		},
	})
	if err := CheckInvariant42(bad); err == nil {
		t.Error("4.2 violation not detected")
	}
}

func TestRandomExecutionsKeepInvariants(t *testing.T) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(types.NewProcSet(0, 1, 4))
	for _, mk := range []func() ioa.Automaton{
		func() ioa.Automaton { return New(universe, v0) },
		func() ioa.Automaton { return NewLiteral(universe, v0) },
		func() ioa.Automaton { return NewDrained(universe, v0) },
	} {
		ex := &ioa.Executor{Steps: 400, Seed: 21}
		if _, err := ex.RunSeeds(8, mk, func(int64) ioa.Environment { return NewEnv(33, universe) }, Invariants()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiteralTracesAreAmendedTraces(t *testing.T) {
	// Sanity of the weakening claim: drive the literal automaton and replay
	// its external trace... the two automata share structure, so instead we
	// check directly that every literal-enabled safe is amended-enabled
	// after eagerly firing dvs-rcv. Covered behaviorally: run the literal
	// automaton and assert its states satisfy the amended wellformedness.
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(types.NewProcSet(0, 1, 2))
	ex := &ioa.Executor{Steps: 300, Seed: 3}
	if _, err := ex.RunSeeds(5, func() ioa.Automaton { return NewLiteral(universe, v0) }, func(int64) ioa.Environment { return NewEnv(44, universe) }, Invariants()); err != nil {
		t.Fatal(err)
	}
}

func TestFromStateRoundTrip(t *testing.T) {
	a, universe, v0 := setup()
	m := types.ClientMsg("x")
	mustPerform(t, a,
		act(ActGpSnd, ioa.KindInput, SndParam{M: m, P: 0}),
		act(ActOrder, ioa.KindInternal, OrderParam{M: m, P: 0, G: v0.ID}),
		act(ActRegister, ioa.KindInput, RegisterParam{P: 1}),
	)
	st := State{
		Universe:   universe,
		Initial:    v0,
		Created:    a.Created(),
		Current:    map[types.ProcID]types.ViewID{0: v0.ID, 1: v0.ID, 2: v0.ID},
		Attempted:  map[types.ViewID]types.ProcSet{v0.ID: a.Attempted(v0.ID)},
		Registered: map[types.ViewID]types.ProcSet{v0.ID: a.Registered(v0.ID)},
		Queues:     map[types.ViewID][]Entry{v0.ID: a.Queue(v0.ID)},
	}
	b := FromState(st)
	if ioa.FingerprintString(a) != ioa.FingerprintString(b) {
		t.Errorf("round trip mismatch:\n%s\n---\n%s", ioa.FingerprintString(a), ioa.FingerprintString(b))
	}
}

func TestCloneDeep(t *testing.T) {
	a, _, v0 := setup()
	b := a.Clone().(*DVS)
	mustPerform(t, b, act(ActGpSnd, ioa.KindInput, SndParam{M: types.ClientMsg("y"), P: 0}))
	if len(a.Pending(0, v0.ID)) != 0 {
		t.Error("clone mutation leaked into original")
	}
	if ioa.FingerprintString(a) == ioa.FingerprintString(b) {
		t.Error("diverged states must fingerprint differently")
	}
}

func TestPerformErrorPaths(t *testing.T) {
	a, _, v0 := setup()
	cases := []ioa.Action{
		{Name: "bogus"},
		{Name: ActCreateView, Param: "wrong"},
		{Name: ActNewView, Param: "wrong"},
		{Name: ActRegister, Param: "wrong"},
		{Name: ActGpSnd, Param: "wrong"},
		{Name: ActOrder, Param: "wrong"},
		{Name: ActGpRcv, Param: "wrong"},
		{Name: ActSafe, Param: "wrong"},
		{Name: ActRcv, Param: "wrong"},
		// Non-client message through dvs-gpsnd.
		{Name: ActGpSnd, Param: SndParam{M: fakeServiceMsg{}, P: 0}},
		// Receive with no queue content.
		{Name: ActGpRcv, Param: RcvParam{M: types.ClientMsg("x"), From: 0, To: 0}},
		{Name: ActSafe, Param: RcvParam{M: types.ClientMsg("x"), From: 0, To: 0}},
		// Receive at a process with ⊥ view.
		{Name: ActGpRcv, Param: RcvParam{M: types.ClientMsg("x"), From: 0, To: 3}},
		// Order with empty pending.
		{Name: ActOrder, Param: OrderParam{M: types.ClientMsg("x"), P: 0, G: v0.ID}},
		// dvs-rcv for a non-member.
		{Name: ActRcv, Param: SvcRcvParam{M: types.ClientMsg("x"), From: 0, To: 4, G: v0.ID}},
		// Create with duplicate id.
		{Name: ActCreateView, Param: CreateViewParam{View: v0}},
		// Newview for an uncreated view.
		{Name: ActNewView, Param: NewViewParam{View: types.NewView(types.ViewID{Seq: 9}, 0), P: 0}},
	}
	for _, act := range cases {
		if err := a.Perform(act); err == nil {
			t.Errorf("action %s accepted", act)
		}
	}
	// dvs-rcv is rejected outright by the literal automaton.
	lit := NewLiteral(types.RangeProcSet(2), types.InitialView(types.NewProcSet(0, 1)))
	if err := lit.Perform(ioa.Action{Name: ActRcv, Param: SvcRcvParam{M: types.ClientMsg("x"), From: 0, To: 0, G: types.ViewIDZero}}); err == nil {
		t.Error("literal automaton accepted dvs-rcv")
	}
}

// fakeServiceMsg is a service-internal message for testing M_c filtering.
type fakeServiceMsg struct{}

func (fakeServiceMsg) MsgKey() string { return "svc:test" }
func (fakeServiceMsg) ServiceMsg()    {}
