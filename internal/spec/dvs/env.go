package dvs

import (
	"math/rand"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Env is a random environment for driving the DVS specification automaton
// directly: it supplies client broadcasts, registrations, and
// dvs-createview proposals that satisfy the creation precondition.
type Env struct {
	rng      *rand.Rand
	procs    []types.ProcID
	msgSeq   int
	proposed int
	MaxViews int // cap on proposed views (0 = unlimited)
}

var _ ioa.Environment = (*Env)(nil)

// NewEnv returns an environment over the given universe.
func NewEnv(seed int64, universe types.ProcSet) *Env {
	return &Env{
		rng:      rand.New(rand.NewSource(seed)),
		procs:    universe.Sorted(),
		MaxViews: 64,
	}
}

// Inputs implements ioa.Environment.
func (e *Env) Inputs(a ioa.Automaton) []ioa.Action {
	d, ok := a.(*DVS)
	if !ok {
		return nil
	}
	var acts []ioa.Action

	p := types.RandomMember(e.rng, e.procs)
	e.msgSeq++
	m := types.ClientMsg("m" + strconv.Itoa(e.msgSeq))
	acts = append(acts, ioa.Action{Name: ActGpSnd, Kind: ioa.KindInput, Param: SndParam{M: m, P: p}})

	q := types.RandomMember(e.rng, e.procs)
	acts = append(acts, ioa.Action{Name: ActRegister, Kind: ioa.KindInput, Param: RegisterParam{P: q}})

	if e.MaxViews == 0 || e.proposed < e.MaxViews {
		members := types.RandomSubset(e.rng, e.procs)
		var maxID types.ViewID
		for _, v := range d.Created() {
			if maxID.Less(v.ID) {
				maxID = v.ID
			}
		}
		v := types.View{ID: maxID.Next(members.Sorted()[0]), Members: members}
		if d.CreateViewCandidateOK(v) {
			e.proposed++
			acts = append(acts, ioa.Action{Name: ActCreateView, Kind: ioa.KindInternal, Param: CreateViewParam{View: v}})
		}
	}
	return acts
}
