// Package dvs implements the DVS specification automaton of Figure 2 of the
// paper: the dynamic view-oriented group communication service. It differs
// from VS in that (1) clients register views via dvs-register, (2) attempted
// and registered sets are tracked per view, and (3) dvs-createview only
// creates primary components, enforcing nonempty intersection with every
// created view not separated by a totally registered view.
//
// The package also provides executable checkers for the paper's Invariants
// 4.1 and 4.2.
//
// Two variants of the automaton are provided. NewLiteral builds Figure 2
// exactly as printed. New builds the amended specification used as the
// default refinement target: it adds per-process service-level receipt
// counters rcvd[p, g], advanced by a new internal action dvs-rcv, and
// weakens the dvs-safe precondition to quantify over service-level receipt
// (∀r ∈ P: rcvd[r,g] > next-safe[q,g]) rather than client-level delivery
// (∀r ∈ P: next[r,g] > next-safe[q,g]). The amendment is a sound weakening —
// every trace of the literal automaton is a trace of the amended one — and
// is necessary: the VS-TO-DVS implementation of Figure 3 reports safety as
// soon as the underlying VS does, while a member whose client-current view
// lags its VS-current view may still hold the message in its
// msgs-from-vs buffer, so the literal Figure 2 safe precondition does not
// hold under the refinement of Figure 4 (see the core package tests, which
// demonstrate the failing step mechanically).
package dvs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Action names, exactly as in Figure 2.
const (
	ActCreateView = "dvs-createview"
	ActNewView    = "dvs-newview"
	ActRegister   = "dvs-register"
	ActGpSnd      = "dvs-gpsnd"
	ActOrder      = "dvs-order"
	ActRcv        = "dvs-rcv" // amended spec only: service-level receipt
	ActGpRcv      = "dvs-gprcv"
	ActSafe       = "dvs-safe"
)

// CreateViewParam parameterizes dvs-createview(v).
type CreateViewParam struct{ View types.View }

// String renders the parameter canonically.
func (p CreateViewParam) String() string { return p.View.String() }

// NewViewParam parameterizes dvs-newview(v)_p.
type NewViewParam struct {
	View types.View
	P    types.ProcID
}

// String renders the parameter canonically.
func (p NewViewParam) String() string { return p.View.String() + "_" + p.P.String() }

// RegisterParam parameterizes dvs-register_p.
type RegisterParam struct{ P types.ProcID }

// String renders the parameter canonically.
func (p RegisterParam) String() string { return p.P.String() }

// SndParam parameterizes dvs-gpsnd(m)_p, m ∈ M_c.
type SndParam struct {
	M types.Msg
	P types.ProcID
}

// String renders the parameter canonically.
func (p SndParam) String() string { return p.M.MsgKey() + "_" + p.P.String() }

// OrderParam parameterizes dvs-order(m,p,g).
type OrderParam struct {
	M types.Msg
	P types.ProcID
	G types.ViewID
}

// String renders the parameter canonically.
func (p OrderParam) String() string {
	return p.M.MsgKey() + "," + p.P.String() + "," + p.G.String()
}

// SvcRcvParam parameterizes the amended spec's internal dvs-rcv(m,p,q,g):
// the service endpoint at q receives the next queued message of view g.
type SvcRcvParam struct {
	M    types.Msg
	From types.ProcID
	To   types.ProcID
	G    types.ViewID
}

// String renders the parameter canonically.
func (p SvcRcvParam) String() string {
	return p.M.MsgKey() + "_" + p.From.String() + "," + p.To.String() + "," + p.G.String()
}

// RcvParam parameterizes dvs-gprcv(m)_{p,q} and dvs-safe(m)_{p,q}.
type RcvParam struct {
	M    types.Msg
	From types.ProcID
	To   types.ProcID
}

// String renders the parameter canonically.
func (p RcvParam) String() string {
	return p.M.MsgKey() + "_" + p.From.String() + "," + p.To.String()
}

// Entry is a queue element <m, p>.
type Entry struct {
	M types.Msg
	P types.ProcID
}

func (e Entry) key() string { return e.M.MsgKey() + "@" + e.P.String() }

type procView struct {
	P types.ProcID
	G types.ViewID
}

// DVS is the specification automaton state of Figure 2.
type DVS struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	//lint:fpignore fixed at construction; identical across every state of one exploration
	initial types.View

	created    map[types.ViewID]types.View
	current    map[types.ProcID]types.ViewID // absent = ⊥
	queues     map[types.ViewID][]Entry
	attempted  map[types.ViewID]types.ProcSet
	registered map[types.ViewID]types.ProcSet
	pending    map[procView][]types.Msg
	next       map[procView]int // absent = 1
	nextSafe   map[procView]int // absent = 1
	rcvd       map[procView]int // absent = 1; amended spec only
	//lint:fpignore mode flag fixed at construction, never toggled by a transition
	literal bool // Figure 2 exactly as printed
	//lint:fpignore mode flag fixed at construction, never toggled by a transition
	drained bool // amended + view-synchronous drain on newview
	//lint:fpignore symmetry group computed once from the initial state; identical (and immutable) across every state of one exploration
	syms []types.Perm //lint:clonesafe the group is immutable and conjugation-closed, so clones share it by design
}

var _ ioa.Automaton = (*DVS)(nil)

// New returns the amended DVS automaton in its initial state.
func New(universe types.ProcSet, initial types.View) *DVS {
	return newDVS(universe, initial, false, false)
}

// NewLiteral returns the DVS automaton exactly as printed in Figure 2.
func NewLiteral(universe types.ProcSet, initial types.View) *DVS {
	return newDVS(universe, initial, true, false)
}

// NewDrained returns the amended DVS automaton with the view-synchronous
// drain condition: dvs-newview(v)_p additionally requires that p's client
// has delivered every message p's service endpoint received in p's current
// view (next[p, cvid[p]] = rcvd[p, cvid[p]]). This is the interface contract
// real view-synchronous systems provide, and it is what the totally-ordered
// broadcast algorithm of Figure 5 needs when safe indications are
// endpoint-level rather than client-level (see the toimpl package tests for
// the mechanical demonstration).
func NewDrained(universe types.ProcSet, initial types.View) *DVS {
	return newDVS(universe, initial, false, true)
}

func newDVS(universe types.ProcSet, initial types.View, literal, drained bool) *DVS {
	a := &DVS{
		literal:    literal,
		drained:    drained,
		universe:   universe.Clone(),
		initial:    initial.Clone(),
		created:    map[types.ViewID]types.View{initial.ID: initial.Clone()},
		current:    make(map[types.ProcID]types.ViewID),
		queues:     make(map[types.ViewID][]Entry),
		attempted:  map[types.ViewID]types.ProcSet{initial.ID: initial.Members.Clone()},
		registered: map[types.ViewID]types.ProcSet{initial.ID: initial.Members.Clone()},
		pending:    make(map[procView][]types.Msg),
		next:       make(map[procView]int),
		nextSafe:   make(map[procView]int),
		rcvd:       make(map[procView]int),
	}
	for p := range initial.Members {
		a.current[p] = initial.ID
	}
	return a
}

// Name implements ioa.Automaton.
func (a *DVS) Name() string {
	switch {
	case a.literal:
		return "DVS-literal"
	case a.drained:
		return "DVS-drained"
	default:
		return "DVS"
	}
}

// Literal reports whether this is the automaton exactly as printed in
// Figure 2 (true) or the amended variant (false).
func (a *DVS) Literal() bool { return a.literal }

// Drained reports whether dvs-newview requires the view-synchronous drain.
func (a *DVS) Drained() bool { return a.drained }

// drainOK reports whether p may install a new view under the drain rule.
func (a *DVS) drainOK(p types.ProcID) bool {
	if !a.drained {
		return true
	}
	g, ok := a.current[p]
	if !ok {
		return true
	}
	return a.Next(p, g) == a.Rcvd(p, g)
}

// Rcvd returns rcvd[p, g] (amended spec; always 1 in the literal variant).
func (a *DVS) Rcvd(p types.ProcID, g types.ViewID) int {
	return defaultOne(a.rcvd, procView{p, g})
}

// Universe returns the processor universe P.
func (a *DVS) Universe() types.ProcSet { return a.universe }

// InitialView returns v0.
func (a *DVS) InitialView() types.View { return a.initial.Clone() }

// Created returns the created views sorted by id.
func (a *DVS) Created() []types.View {
	out := make([]types.View, 0, len(a.created))
	for _, v := range a.created {
		out = append(out, v.Clone())
	}
	types.SortViews(out)
	return out
}

// CreatedShared returns the created views sorted by id without cloning
// memberships. The caller must treat the views as read-only; it exists for
// per-state hot paths (environments, invariants) where Created's defensive
// copies dominate the allocation profile.
func (a *DVS) CreatedShared() []types.View {
	out := make([]types.View, 0, len(a.created))
	for _, v := range a.created {
		out = append(out, v)
	}
	types.SortViews(out)
	return out
}

// CurrentViewID returns current-viewid[p]; ok is false for ⊥.
func (a *DVS) CurrentViewID(p types.ProcID) (types.ViewID, bool) {
	g, ok := a.current[p]
	return g, ok
}

// Attempted returns attempted[g].
func (a *DVS) Attempted(g types.ViewID) types.ProcSet {
	if s, ok := a.attempted[g]; ok {
		return s.Clone()
	}
	return types.NewProcSet()
}

// AttemptedShared returns attempted[g] without copying (nil if empty);
// read-only.
func (a *DVS) AttemptedShared(g types.ViewID) types.ProcSet { return a.attempted[g] }

// Registered returns registered[g].
func (a *DVS) Registered(g types.ViewID) types.ProcSet {
	if s, ok := a.registered[g]; ok {
		return s.Clone()
	}
	return types.NewProcSet()
}

// TotReg returns the derived variable TotReg: created views all of whose
// members have registered, sorted by id.
func (a *DVS) TotReg() []types.View {
	var out []types.View
	for id, v := range a.created {
		if reg, ok := a.registered[id]; ok && v.Members.Subset(reg) {
			out = append(out, v.Clone())
		}
	}
	types.SortViews(out)
	return out
}

// TotAtt returns the derived variable TotAtt: created views all of whose
// members have attempted, sorted by id.
func (a *DVS) TotAtt() []types.View {
	var out []types.View
	for id, v := range a.created {
		if att, ok := a.attempted[id]; ok && v.Members.Subset(att) {
			out = append(out, v.Clone())
		}
	}
	types.SortViews(out)
	return out
}

// CreatedCount returns |created| without materializing the views.
func (a *DVS) CreatedCount() int { return len(a.created) }

// MaxCreatedID returns the largest created view id (the zero ViewID if no
// view has been created, which cannot happen after initialization).
func (a *DVS) MaxCreatedID() types.ViewID {
	var max types.ViewID
	for id := range a.created {
		if max.Less(id) {
			max = id
		}
	}
	return max
}

// totRegSnap is a pooled snapshot of the created view ids in increasing
// order with a parallel flag marking the totally registered ones. The
// snapshot is read-only and must be released with putTotReg; pooling exists
// because sortedTotReg runs per state (invariant checks) and up to
// candidateTries times per state (view-candidate filtering), and its two
// slices were the largest remaining allocation site on the E1 hot path.
type totRegSnap struct {
	ids []types.ViewID
	tot []bool
}

var totRegPool = sync.Pool{New: func() any { return new(totRegSnap) }}

func putTotReg(s *totRegSnap) { totRegPool.Put(s) }

// sortedTotReg returns the created view ids in increasing order together
// with a parallel flag marking the totally registered ones. Memberships are
// not cloned — the snapshot is read-only. It backs the early-breaking
// "totally registered view strictly between" scans below, which replace
// per-pair rescans of the created map (O(V³·n) worst case on the invariant
// check, the dominant cost of spec-state exploration).
func (a *DVS) sortedTotReg() *totRegSnap {
	s := totRegPool.Get().(*totRegSnap)
	s.ids = s.ids[:0]
	for id := range a.created {
		s.ids = append(s.ids, id)
	}
	// Insertion sort: view counts are bounded and small, and this avoids
	// sort.Slice's reflective swapper allocation on a per-state path.
	for i := 1; i < len(s.ids); i++ {
		for j := i; j > 0 && s.ids[j].Less(s.ids[j-1]); j-- {
			s.ids[j], s.ids[j-1] = s.ids[j-1], s.ids[j]
		}
	}
	s.tot = s.tot[:0]
	for _, id := range s.ids {
		reg, ok := a.registered[id]
		s.tot = append(s.tot, ok && a.created[id].Members.Subset(reg))
	}
	return s
}

// CreateViewCandidateOK reports whether dvs-createview(v)'s precondition
// holds: no created view shares v's id, and for every created view w either
// a totally registered view lies strictly between them (in either order) or
// v.set ∩ w.set is nonempty.
func (a *DVS) CreateViewCandidateOK(v types.View) bool {
	if v.Members.Len() == 0 {
		return false
	}
	if _, dup := a.created[v.ID]; dup {
		return false
	}
	snap := a.sortedTotReg()
	defer putTotReg(snap)
	ids, tot := snap.ids, snap.tot
	pos := sort.Search(len(ids), func(k int) bool { return v.ID.Less(ids[k]) })
	// Walk outward from v's position in id order. A totally registered view
	// at index k lies strictly between v and every view beyond k, so each
	// scan stops at the first flagged view (after checking it: the flagged
	// view itself has nothing strictly between it and v).
	for k := pos - 1; k >= 0; k-- {
		if !v.Members.Intersects(a.created[ids[k]].Members) {
			return false
		}
		if tot[k] {
			break
		}
	}
	for k := pos; k < len(ids); k++ {
		if !v.Members.Intersects(a.created[ids[k]].Members) {
			return false
		}
		if tot[k] {
			break
		}
	}
	return true
}

// Enabled implements ioa.Automaton. dvs-createview candidates come from the
// environment (unbounded parameter space).
func (a *DVS) Enabled() []ioa.Action {
	var acts []ioa.Action
	for _, v := range a.created {
		for p := range v.Members {
			if cur, ok := a.current[p]; (!ok || cur.Less(v.ID)) && a.drainOK(p) {
				// The param aliases the created view: Perform only reads it
				// (membership equality + id), and nothing mutates action
				// params, so the defensive copy is pure allocation cost.
				acts = append(acts, ioa.Action{Name: ActNewView, Kind: ioa.KindOutput, Param: NewViewParam{View: v, P: p}})
			}
		}
	}
	for pg, msgs := range a.pending {
		if len(msgs) > 0 {
			acts = append(acts, ioa.Action{Name: ActOrder, Kind: ioa.KindInternal, Param: OrderParam{M: msgs[0], P: pg.P, G: pg.G}})
		}
	}
	for q, g := range a.current {
		queue := a.queues[g]
		if n := a.Next(q, g); n <= len(queue) && (a.literal || n < a.Rcvd(q, g)) {
			e := queue[n-1]
			acts = append(acts, ioa.Action{Name: ActGpRcv, Kind: ioa.KindOutput, Param: RcvParam{M: e.M, From: e.P, To: q}})
		}
		if ns := a.NextSafe(q, g); ns <= len(queue) && a.safeEnabled(q, g, ns) {
			e := queue[ns-1]
			acts = append(acts, ioa.Action{Name: ActSafe, Kind: ioa.KindOutput, Param: RcvParam{M: e.M, From: e.P, To: q}})
		}
	}
	if !a.literal {
		// dvs-rcv: service-level receipt at each member of each created view.
		for g, v := range a.created {
			queue := a.queues[g]
			for q := range v.Members {
				if cur, ok := a.current[q]; ok && g.Less(cur) {
					continue // q's client moved past g: its endpoint no longer receives in g
				}
				if r := a.Rcvd(q, g); r <= len(queue) {
					e := queue[r-1]
					acts = append(acts, ioa.Action{Name: ActRcv, Kind: ioa.KindInternal, Param: SvcRcvParam{M: e.M, From: e.P, To: q, G: g}})
				}
			}
		}
	}
	ioa.SortActions(acts)
	return acts
}

func (a *DVS) safeEnabled(q types.ProcID, g types.ViewID, ns int) bool {
	v, ok := a.created[g]
	if !ok {
		return false
	}
	if a.literal {
		// Figure 2 as printed: every member has client-delivered past ns.
		for r := range v.Members {
			if a.Next(r, g) <= ns {
				return false
			}
		}
		return true
	}
	// Amended: q's service endpoint has received past ns, and every member's
	// service endpoint has received past ns.
	if a.Rcvd(q, g) <= ns {
		return false
	}
	for r := range v.Members {
		if a.Rcvd(r, g) <= ns {
			return false
		}
	}
	return true
}

// Next returns next[p, g].
func (a *DVS) Next(p types.ProcID, g types.ViewID) int {
	return defaultOne(a.next, procView{p, g})
}

// NextSafe returns next-safe[p, g].
func (a *DVS) NextSafe(p types.ProcID, g types.ViewID) int {
	return defaultOne(a.nextSafe, procView{p, g})
}

// Queue returns a copy of queue[g].
func (a *DVS) Queue(g types.ViewID) []Entry {
	return types.CloneSeq(a.queues[g])
}

// QueueShared returns queue[g] without copying; read-only.
func (a *DVS) QueueShared(g types.ViewID) []Entry { return a.queues[g] }

// Pending returns a copy of pending[p, g].
func (a *DVS) Pending(p types.ProcID, g types.ViewID) []types.Msg {
	return types.CloneSeq(a.pending[procView{p, g}])
}

// PendingShared returns pending[p, g] without copying; read-only.
func (a *DVS) PendingShared(p types.ProcID, g types.ViewID) []types.Msg {
	return a.pending[procView{p, g}]
}

func defaultOne(m map[procView]int, k procView) int {
	if v, ok := m[k]; ok {
		return v
	}
	return 1
}

// Perform implements ioa.Automaton.
func (a *DVS) Perform(act ioa.Action) error {
	switch act.Name {
	case ActCreateView:
		p, ok := act.Param.(CreateViewParam)
		if !ok {
			return badParam(act)
		}
		if _, dup := a.created[p.View.ID]; dup {
			return fmt.Errorf("dvs-createview(%s): id already created", p.View)
		}
		if !a.CreateViewCandidateOK(p.View) {
			return fmt.Errorf("dvs-createview(%s): intersection precondition fails", p.View)
		}
		a.created[p.View.ID] = p.View.Clone()
		return nil

	case ActNewView:
		p, ok := act.Param.(NewViewParam)
		if !ok {
			return badParam(act)
		}
		v, created := a.created[p.View.ID]
		if !created || !v.Equal(p.View) {
			return fmt.Errorf("dvs-newview(%s): view not created", p.View)
		}
		if !v.Contains(p.P) {
			return fmt.Errorf("dvs-newview(%s)_%s: process not a member", p.View, p.P)
		}
		if cur, ok := a.current[p.P]; ok && !cur.Less(v.ID) {
			return fmt.Errorf("dvs-newview(%s)_%s: id not greater than current %s", p.View, p.P, cur)
		}
		if !a.drainOK(p.P) {
			return fmt.Errorf("dvs-newview(%s)_%s: client has undelivered messages in current view", p.View, p.P)
		}
		a.current[p.P] = v.ID
		if _, ok := a.attempted[v.ID]; !ok {
			a.attempted[v.ID] = types.NewProcSet()
		}
		a.attempted[v.ID].Add(p.P)
		return nil

	case ActRegister:
		p, ok := act.Param.(RegisterParam)
		if !ok {
			return badParam(act)
		}
		if g, ok := a.current[p.P]; ok {
			if _, ok := a.registered[g]; !ok {
				a.registered[g] = types.NewProcSet()
			}
			a.registered[g].Add(p.P)
		}
		return nil

	case ActGpSnd:
		p, ok := act.Param.(SndParam)
		if !ok {
			return badParam(act)
		}
		if !types.IsClient(p.M) {
			return fmt.Errorf("dvs-gpsnd: %s is not a client message", p.M.MsgKey())
		}
		if g, ok := a.current[p.P]; ok {
			k := procView{p.P, g}
			a.pending[k] = append(a.pending[k], p.M)
		}
		return nil

	case ActOrder:
		p, ok := act.Param.(OrderParam)
		if !ok {
			return badParam(act)
		}
		k := procView{p.P, p.G}
		msgs := a.pending[k]
		if len(msgs) == 0 || msgs[0].MsgKey() != p.M.MsgKey() {
			return fmt.Errorf("dvs-order(%s): not head of pending[%s,%s]", p.M.MsgKey(), p.P, p.G)
		}
		a.pending[k] = msgs[1:]
		if len(a.pending[k]) == 0 {
			delete(a.pending, k)
		}
		a.queues[p.G] = append(a.queues[p.G], Entry{M: p.M, P: p.P})
		return nil

	case ActGpRcv:
		p, ok := act.Param.(RcvParam)
		if !ok {
			return badParam(act)
		}
		g, hasView := a.current[p.To]
		if !hasView {
			return fmt.Errorf("dvs-gprcv to %s: no current view", p.To)
		}
		k := procView{p.To, g}
		n := defaultOne(a.next, k)
		queue := a.queues[g]
		if n > len(queue) || queue[n-1].M.MsgKey() != p.M.MsgKey() || queue[n-1].P != p.From {
			return fmt.Errorf("dvs-gprcv(%s)_%s,%s: queue[%s](%d) mismatch", p.M.MsgKey(), p.From, p.To, g, n)
		}
		if !a.literal && n >= a.Rcvd(p.To, g) {
			return fmt.Errorf("dvs-gprcv(%s)_%s,%s: not yet received at service level", p.M.MsgKey(), p.From, p.To)
		}
		a.next[k] = n + 1
		return nil

	case ActSafe:
		p, ok := act.Param.(RcvParam)
		if !ok {
			return badParam(act)
		}
		g, hasView := a.current[p.To]
		if !hasView {
			return fmt.Errorf("dvs-safe to %s: no current view", p.To)
		}
		k := procView{p.To, g}
		ns := defaultOne(a.nextSafe, k)
		queue := a.queues[g]
		if ns > len(queue) || queue[ns-1].M.MsgKey() != p.M.MsgKey() || queue[ns-1].P != p.From {
			return fmt.Errorf("dvs-safe(%s)_%s,%s: queue[%s](%d) mismatch", p.M.MsgKey(), p.From, p.To, g, ns)
		}
		if !a.safeEnabled(p.To, g, ns) {
			return fmt.Errorf("dvs-safe(%s)_%s,%s: some member has not received index %d", p.M.MsgKey(), p.From, p.To, ns)
		}
		a.nextSafe[k] = ns + 1
		return nil

	case ActRcv:
		p, ok := act.Param.(SvcRcvParam)
		if !ok {
			return badParam(act)
		}
		if a.literal {
			return fmt.Errorf("dvs-rcv: not an action of the literal Figure 2 automaton")
		}
		v, created := a.created[p.G]
		if !created || !v.Contains(p.To) {
			return fmt.Errorf("dvs-rcv(%s)_%s,%s: %s not a member of created view %s", p.M.MsgKey(), p.From, p.To, p.To, p.G)
		}
		if cur, ok := a.current[p.To]; ok && p.G.Less(cur) {
			return fmt.Errorf("dvs-rcv(%s)_%s,%s: client moved past view %s", p.M.MsgKey(), p.From, p.To, p.G)
		}
		k := procView{p.To, p.G}
		r := defaultOne(a.rcvd, k)
		queue := a.queues[p.G]
		if r > len(queue) || queue[r-1].M.MsgKey() != p.M.MsgKey() || queue[r-1].P != p.From {
			return fmt.Errorf("dvs-rcv(%s)_%s,%s: queue[%s](%d) mismatch", p.M.MsgKey(), p.From, p.To, p.G, r)
		}
		a.rcvd[k] = r + 1
		return nil

	default:
		return fmt.Errorf("dvs: unknown action %q", act.Name)
	}
}

func badParam(act ioa.Action) error {
	return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
}

// Clone implements ioa.Automaton.
func (a *DVS) Clone() ioa.Automaton {
	b := &DVS{
		literal: a.literal,
		drained: a.drained,
		syms:    a.syms, // immutable; shared across clones

		universe:   a.universe.Clone(),
		initial:    a.initial.Clone(),
		created:    make(map[types.ViewID]types.View, len(a.created)),
		current:    make(map[types.ProcID]types.ViewID, len(a.current)),
		queues:     make(map[types.ViewID][]Entry, len(a.queues)),
		attempted:  make(map[types.ViewID]types.ProcSet, len(a.attempted)),
		registered: make(map[types.ViewID]types.ProcSet, len(a.registered)),
		pending:    make(map[procView][]types.Msg, len(a.pending)),
		next:       make(map[procView]int, len(a.next)),
		nextSafe:   make(map[procView]int, len(a.nextSafe)),
		rcvd:       make(map[procView]int, len(a.rcvd)),
	}
	for id, v := range a.created {
		b.created[id] = v.Clone()
	}
	for p, g := range a.current {
		b.current[p] = g
	}
	for g, q := range a.queues {
		b.queues[g] = types.CloneSeq(q)
	}
	for g, s := range a.attempted {
		b.attempted[g] = s.Clone()
	}
	for g, s := range a.registered {
		b.registered[g] = s.Clone()
	}
	for k, msgs := range a.pending {
		b.pending[k] = types.CloneSeq(msgs)
	}
	for k, n := range a.next {
		b.next[k] = n
	}
	for k, n := range a.nextSafe {
		b.nextSafe[k] = n
	}
	for k, n := range a.rcvd {
		b.rcvd[k] = n
	}
	return b
}

// Fingerprint implements ioa.Automaton. Values stream into the digest; no
// intermediate strings are built.
func (a *DVS) Fingerprint(f *ioa.Fingerprinter) {
	for id, v := range a.created {
		f.Begin("created.")
		id.WriteFp(f)
		f.Byte('=')
		v.Members.WriteFp(f)
		f.End()
	}
	for p, g := range a.current {
		f.Begin("cur.")
		p.WriteFp(f)
		f.Byte('=')
		g.WriteFp(f)
		f.End()
	}
	for g, q := range a.queues {
		if len(q) > 0 {
			f.Begin("queue.")
			g.WriteFp(f)
			f.Byte('=')
			writeEntriesFp(f, q)
			f.End()
		}
	}
	for g, s := range a.attempted {
		if s.Len() > 0 {
			f.Begin("att.")
			g.WriteFp(f)
			f.Byte('=')
			s.WriteFp(f)
			f.End()
		}
	}
	for g, s := range a.registered {
		if s.Len() > 0 {
			f.Begin("reg.")
			g.WriteFp(f)
			f.Byte('=')
			s.WriteFp(f)
			f.End()
		}
	}
	for k, msgs := range a.pending {
		if len(msgs) > 0 {
			beginProcViewFp(f, "pending.", k)
			writeMsgsFp(f, msgs)
			f.End()
		}
	}
	for k, n := range a.next {
		if n != 1 {
			beginProcViewFp(f, "next.", k)
			f.Int(n)
			f.End()
		}
	}
	for k, n := range a.nextSafe {
		if n != 1 {
			beginProcViewFp(f, "nextsafe.", k)
			f.Int(n)
			f.End()
		}
	}
	for k, n := range a.rcvd {
		if n != 1 {
			beginProcViewFp(f, "rcvd.", k)
			f.Int(n)
			f.End()
		}
	}
}

// beginProcViewFp opens a "key.p.g=" fingerprint line.
func beginProcViewFp(f *ioa.Fingerprinter, key string, k procView) {
	f.Begin(key)
	k.P.WriteFp(f)
	f.Byte('.')
	k.G.WriteFp(f)
	f.Byte('=')
}

func writeEntriesFp(f *ioa.Fingerprinter, q []Entry) {
	for i, e := range q {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, e.M)
		f.Byte('@')
		e.P.WriteFp(f)
	}
}

func writeMsgsFp(f *ioa.Fingerprinter, msgs []types.Msg) {
	for i, m := range msgs {
		if i > 0 {
			f.Byte('|')
		}
		types.WriteMsgFp(f, m)
	}
}
