// Package to implements the totally-ordered-broadcast service specification
// TO used in Section 6 of the paper (defined in Fekete, Lynch, Shvartsman,
// PODC'97, cited as [12]): clients broadcast messages with bcast(a)_p; the
// service places them into a single system-wide queue; each client receives
// a gap-free prefix of that queue via brcv(a)_{q,p} (q is the originator).
//
// The package provides both the executable specification automaton and a
// greedy trace Monitor. The monitor is sound and complete for TO: the only
// nondeterminism in TO is the order in which pending messages are appended
// to the single shared queue, and since the queue is append-only and common
// to all receivers, resolving an append exactly when the first receiver
// needs it accepts precisely the traces of TO.
package to

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/types"
)

// Action names.
const (
	ActBCast = "bcast"
	ActOrder = "to-order"
	ActBRcv  = "brcv"
)

// BCastParam parameterizes bcast(a)_p.
type BCastParam struct {
	A string
	P types.ProcID
}

// String renders the parameter canonically.
func (p BCastParam) String() string { return p.A + "_" + p.P.String() }

// OrderParam parameterizes the internal to-order(a,p).
type OrderParam struct {
	A string
	P types.ProcID
}

// String renders the parameter canonically.
func (p OrderParam) String() string { return p.A + "," + p.P.String() }

// BRcvParam parameterizes brcv(a)_{q,p}: p receives a, originated by q.
type BRcvParam struct {
	A      string
	Origin types.ProcID
	To     types.ProcID
}

// String renders the parameter canonically.
func (p BRcvParam) String() string {
	return p.A + "_" + p.Origin.String() + "," + p.To.String()
}

// Entry is a queue element ⟨a, p⟩.
type Entry struct {
	A string
	P types.ProcID
}

func (e Entry) key() string { return e.A + "@" + e.P.String() }

// TO is the specification automaton.
type TO struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	pending  map[types.ProcID][]string
	queue    []Entry
	next     map[types.ProcID]int // absent = 1
}

var _ ioa.Automaton = (*TO)(nil)

// New returns the TO automaton in its initial state.
func New(universe types.ProcSet) *TO {
	return &TO{
		universe: universe.Clone(),
		pending:  make(map[types.ProcID][]string),
		next:     make(map[types.ProcID]int),
	}
}

// Name implements ioa.Automaton.
func (a *TO) Name() string { return "TO" }

// Queue returns a copy of the global order.
func (a *TO) Queue() []Entry { return types.CloneSeq(a.queue) }

// Next returns next[p].
func (a *TO) Next(p types.ProcID) int {
	if n, ok := a.next[p]; ok {
		return n
	}
	return 1
}

// Pending returns a copy of pending[p].
func (a *TO) Pending(p types.ProcID) []string { return types.CloneSeq(a.pending[p]) }

// Enabled implements ioa.Automaton.
func (a *TO) Enabled() []ioa.Action {
	var acts []ioa.Action
	for p, msgs := range a.pending {
		if len(msgs) > 0 {
			acts = append(acts, ioa.Action{Name: ActOrder, Kind: ioa.KindInternal, Param: OrderParam{A: msgs[0], P: p}})
		}
	}
	for p := range a.universe {
		if n := a.Next(p); n <= len(a.queue) {
			e := a.queue[n-1]
			acts = append(acts, ioa.Action{Name: ActBRcv, Kind: ioa.KindOutput, Param: BRcvParam{A: e.A, Origin: e.P, To: p}})
		}
	}
	ioa.SortActions(acts)
	return acts
}

// Perform implements ioa.Automaton.
func (a *TO) Perform(act ioa.Action) error {
	switch act.Name {
	case ActBCast:
		p, ok := act.Param.(BCastParam)
		if !ok {
			return badParam(act)
		}
		a.pending[p.P] = append(a.pending[p.P], p.A)
		return nil
	case ActOrder:
		p, ok := act.Param.(OrderParam)
		if !ok {
			return badParam(act)
		}
		msgs := a.pending[p.P]
		if len(msgs) == 0 || msgs[0] != p.A {
			return fmt.Errorf("to-order(%s,%s): not head of pending", p.A, p.P)
		}
		a.pending[p.P] = msgs[1:]
		a.queue = append(a.queue, Entry{A: p.A, P: p.P})
		return nil
	case ActBRcv:
		p, ok := act.Param.(BRcvParam)
		if !ok {
			return badParam(act)
		}
		n := a.Next(p.To)
		if n > len(a.queue) || a.queue[n-1].A != p.A || a.queue[n-1].P != p.Origin {
			return fmt.Errorf("brcv(%s)_%s,%s: queue(%d) mismatch", p.A, p.Origin, p.To, n)
		}
		a.next[p.To] = n + 1
		return nil
	default:
		return fmt.Errorf("to: unknown action %q", act.Name)
	}
}

func badParam(act ioa.Action) error {
	return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
}

// Clone implements ioa.Automaton.
func (a *TO) Clone() ioa.Automaton {
	b := &TO{
		universe: a.universe.Clone(),
		pending:  make(map[types.ProcID][]string, len(a.pending)),
		queue:    types.CloneSeq(a.queue),
		next:     make(map[types.ProcID]int, len(a.next)),
	}
	for p, msgs := range a.pending {
		b.pending[p] = types.CloneSeq(msgs)
	}
	for p, n := range a.next {
		b.next[p] = n
	}
	return b
}

// Fingerprint implements ioa.Automaton. Values stream into the digest; no
// intermediate strings are built.
func (a *TO) Fingerprint(f *ioa.Fingerprinter) {
	if len(a.queue) > 0 {
		f.Begin("queue")
		f.Byte('=')
		for i, e := range a.queue {
			if i > 0 {
				f.Byte('|')
			}
			f.Str(e.A)
			f.Byte('@')
			e.P.WriteFp(f)
		}
		f.End()
	}
	for p, msgs := range a.pending {
		if len(msgs) > 0 {
			f.Begin("pending.")
			p.WriteFp(f)
			f.Byte('=')
			for i, m := range msgs {
				if i > 0 {
					f.Byte('|')
				}
				f.Str(m)
			}
			f.End()
		}
	}
	for p, n := range a.next {
		if n != 1 {
			f.Begin("next.")
			p.WriteFp(f)
			f.Byte('=')
			f.Int(n)
			f.End()
		}
	}
}

// Monitor is a greedy trace-inclusion monitor for TO. Feed it the external
// actions (bcast and brcv) of an implementation; Observe fails on the first
// action that cannot be produced by any TO execution extending the observed
// trace.
type Monitor struct {
	spec *TO
}

var _ ioa.Monitor = (*Monitor)(nil)

// NewMonitor returns a monitor over the given universe.
func NewMonitor(universe types.ProcSet) *Monitor {
	return &Monitor{spec: New(universe)}
}

// Spec exposes the monitor's specification state (for inspection in tests).
func (m *Monitor) Spec() *TO { return m.spec }

// Observe implements ioa.Monitor.
func (m *Monitor) Observe(act ioa.Action) error {
	switch act.Name {
	case ActBCast:
		return m.spec.Perform(act)
	case ActBRcv:
		p, ok := act.Param.(BRcvParam)
		if !ok {
			return badParam(act)
		}
		n := m.spec.Next(p.To)
		if n > len(m.spec.queue) {
			// Greedy append: the queue must be extended now, which is
			// possible exactly when a is the head of pending[origin].
			if err := m.spec.Perform(ioa.Action{Name: ActOrder, Kind: ioa.KindInternal, Param: OrderParam{A: p.A, P: p.Origin}}); err != nil {
				return fmt.Errorf("cannot order %s from %s: %w", p.A, p.Origin, err)
			}
		}
		return m.spec.Perform(act)
	default:
		return fmt.Errorf("to monitor: unexpected external action %q", act.Name)
	}
}
