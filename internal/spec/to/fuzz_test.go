package to

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/types"
)

// FuzzMonitorRobust feeds the TO monitor arbitrary interleavings of bcast
// and brcv actions decoded from fuzz input. The monitor must never panic
// and must never accept a trace the specification automaton itself cannot
// replay (cross-checked by driving a spec replica on the accepted prefix).
func FuzzMonitorRobust(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 128, 9})
	f.Add([]byte{0, 0, 128, 0, 128, 0, 129, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		universe := types.RangeProcSet(3)
		mon := NewMonitor(universe)
		spec := New(universe)
		var msgSeq int
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op < 128 {
				// bcast from process op%3.
				msgSeq++
				p := types.ProcID(op % 3)
				a := "m" + string(rune('a'+msgSeq%26))
				act := ioa.Action{Name: ActBCast, Kind: ioa.KindInput, Param: BCastParam{A: a, P: p}}
				if err := mon.Observe(act); err != nil {
					t.Fatalf("bcast rejected: %v", err)
				}
				if err := spec.Perform(act); err != nil {
					t.Fatalf("spec rejected bcast: %v", err)
				}
				continue
			}
			// brcv attempt at process arg%3: deliver whatever the monitor's
			// spec state says is next, or probe an arbitrary payload.
			to := types.ProcID(arg % 3)
			n := mon.Spec().Next(to)
			queue := mon.Spec().Queue()
			var act ioa.Action
			if n <= len(queue) {
				e := queue[n-1]
				act = ioa.Action{Name: ActBRcv, Kind: ioa.KindOutput, Param: BRcvParam{A: e.A, Origin: e.P, To: to}}
			} else {
				// Probe: deliver the head of some pending queue if any.
				var probe *BRcvParam
				for p := types.ProcID(0); p < 3; p++ {
					if pend := mon.Spec().Pending(p); len(pend) > 0 {
						probe = &BRcvParam{A: pend[0], Origin: p, To: to}
						break
					}
				}
				if probe == nil {
					continue
				}
				act = ioa.Action{Name: ActBRcv, Kind: ioa.KindOutput, Param: *probe}
			}
			if err := mon.Observe(act); err != nil {
				continue // monitor rejected; nothing to cross-check
			}
		}
	})
}
