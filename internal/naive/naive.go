// Package naive implements the strawman the paper warns about (Section 1):
// dynamic voting WITHOUT the information exchange of Lotem–Keidar–Dolev.
// Each process accepts a view as primary if it majority-intersects the last
// primary that process itself accepted — no "info" messages, no ambiguous
// sets. Under partitions this admits two disjoint concurrent primaries
// ("These difficulties have led to errors in some of the past work on
// dynamic voting"), which the tests demonstrate with the classic schedule
// and which the paper's VS-TO-DVS filter provably rejects.
//
// The package mirrors the shape of internal/core: a per-process filter node
// plus a composed system over the VS specification, so the two algorithms
// can be driven through identical schedules and compared.
package naive

import (
	"fmt"

	"repro/internal/ioa"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

// Node is the naive dynamic-voting filter for one process: the only state
// is the last primary this process accepted.
type Node struct {
	p     types.ProcID
	fpPre string // fingerprint line prefix "n<p>.", precomputed
	cur   types.View
	curOK bool
	last  types.View // last accepted primary; starts at v0
	// attempted is the history variable used by the intersection checks.
	attempted map[types.ViewID]types.View
}

// NewNode builds the filter; last starts at v0 for every process, as in the
// paper's model where v0 is the distinguished initial primary.
func NewNode(p types.ProcID, initial types.View, inP0 bool) *Node {
	n := &Node{
		p:         p,
		fpPre:     "n" + p.String() + ".",
		last:      initial.Clone(),
		attempted: make(map[types.ViewID]types.View),
	}
	if inP0 {
		n.cur, n.curOK = initial.Clone(), true
		n.attempted[initial.ID] = initial.Clone()
	}
	return n
}

// OnVSNewView records the view-synchronous view.
func (n *Node) OnVSNewView(v types.View) { n.cur, n.curOK = v.Clone(), true }

// AcceptEnabled reports whether the naive filter would announce its current
// view as primary: majority intersection with its own last primary only.
func (n *Node) AcceptEnabled() (types.View, bool) {
	if !n.curOK {
		return types.View{}, false
	}
	if _, done := n.attempted[n.cur.ID]; done {
		return types.View{}, false
	}
	if !n.cur.Members.MajorityOf(n.last.Members) {
		return types.View{}, false
	}
	return n.cur.Clone(), true
}

// Accept announces the primary and updates last.
func (n *Node) Accept(v types.View) error {
	cand, ok := n.AcceptEnabled()
	if !ok || !cand.Equal(v) {
		return fmt.Errorf("naive accept(%s)_%s: not enabled", v, n.p)
	}
	n.last = v.Clone()
	n.attempted[v.ID] = v.Clone()
	return nil
}

// Attempted returns the primaries this process accepted, sorted by id.
func (n *Node) Attempted() []types.View {
	out := make([]types.View, 0, len(n.attempted))
	for _, v := range n.attempted {
		out = append(out, v.Clone())
	}
	types.SortViews(out)
	return out
}

func (n *Node) clone() *Node {
	c := &Node{p: n.p, fpPre: n.fpPre, cur: n.cur.Clone(), curOK: n.curOK, last: n.last.Clone(),
		attempted: make(map[types.ViewID]types.View, len(n.attempted))}
	for id, v := range n.attempted {
		c.attempted[id] = v.Clone()
	}
	return c
}

// Impl composes the naive filters with the VS specification, mirroring
// core.Impl's external shape (minus communication, which the strawman does
// not need to go wrong).
type Impl struct {
	//lint:fpignore fixed at construction; identical across every state of one exploration
	universe types.ProcSet
	//lint:fpignore fixed at construction; identical across every state of one exploration
	initial types.View
	procs   []types.ProcID
	vs      *vsspec.VS
	nodes   map[types.ProcID]*Node
}

var _ ioa.Automaton = (*Impl)(nil)

// NewImpl builds the composed system.
func NewImpl(universe types.ProcSet, initial types.View) *Impl {
	im := &Impl{
		universe: universe.Clone(),
		initial:  initial.Clone(),
		procs:    universe.Sorted(),
		vs:       vsspec.New(universe, initial),
		nodes:    make(map[types.ProcID]*Node, universe.Len()),
	}
	for _, p := range im.procs {
		im.nodes[p] = NewNode(p, initial, initial.Contains(p))
	}
	return im
}

// Name implements ioa.Automaton.
func (im *Impl) Name() string { return "NAIVE-DV" }

// VS exposes the inner VS automaton.
func (im *Impl) VS() *vsspec.VS { return im.vs }

// Node returns process p's filter.
func (im *Impl) Node(p types.ProcID) *Node { return im.nodes[p] }

// Att returns all views accepted as primary by at least one process.
func (im *Impl) Att() []types.View {
	seen := make(map[types.ViewID]types.View)
	for _, p := range im.procs {
		for _, v := range im.nodes[p].Attempted() {
			seen[v.ID] = v
		}
	}
	out := make([]types.View, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	types.SortViews(out)
	return out
}

// CheckIntersectionChain checks the property the paper's Invariant 4.1
// gives the real algorithm: consecutive accepted primaries (by id)
// intersect. The naive filter violates it.
func (im *Impl) CheckIntersectionChain() error {
	att := im.Att()
	for i := 1; i < len(att); i++ {
		if !att[i-1].Members.Intersects(att[i].Members) {
			return fmt.Errorf("disjoint concurrent primaries %s and %s", att[i-1], att[i])
		}
	}
	return nil
}

// Enabled implements ioa.Automaton: VS's locally controlled actions
// (hidden) plus each node's accept action.
func (im *Impl) Enabled() []ioa.Action {
	var acts []ioa.Action
	for _, a := range im.vs.Enabled() {
		a.Kind = ioa.KindInternal
		acts = append(acts, a)
	}
	for _, p := range im.procs {
		if v, ok := im.nodes[p].AcceptEnabled(); ok {
			acts = append(acts, ioa.Action{Name: "naive-accept", Kind: ioa.KindOutput,
				Param: AcceptParam{View: v, P: p}})
		}
	}
	ioa.SortActions(acts)
	return acts
}

// AcceptParam parameterizes naive-accept(v)_p.
type AcceptParam struct {
	View types.View
	P    types.ProcID
}

// String renders the parameter canonically.
func (p AcceptParam) String() string { return p.View.String() + "_" + p.P.String() }

// Perform implements ioa.Automaton.
func (im *Impl) Perform(act ioa.Action) error {
	switch act.Name {
	case vsspec.ActCreateView, vsspec.ActOrder, vsspec.ActGpSnd,
		vsspec.ActGpRcv, vsspec.ActSafe:
		return im.vs.Perform(act)
	case vsspec.ActNewView:
		p, ok := act.Param.(vsspec.NewViewParam)
		if !ok {
			return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
		}
		if err := im.vs.Perform(act); err != nil {
			return err
		}
		im.nodes[p.P].OnVSNewView(p.View)
		return nil
	case "naive-accept":
		p, ok := act.Param.(AcceptParam)
		if !ok {
			return fmt.Errorf("%s: bad parameter type %T", act.Name, act.Param)
		}
		return im.nodes[p.P].Accept(p.View)
	default:
		return fmt.Errorf("naive: unknown action %q", act.Name)
	}
}

// Clone implements ioa.Automaton.
func (im *Impl) Clone() ioa.Automaton {
	c := &Impl{
		universe: im.universe.Clone(),
		initial:  im.initial.Clone(),
		procs:    types.CloneSeq(im.procs),
		vs:       im.vs.Clone().(*vsspec.VS),
		nodes:    make(map[types.ProcID]*Node, len(im.nodes)),
	}
	for p, n := range im.nodes {
		c.nodes[p] = n.clone()
	}
	return c
}

// Fingerprint implements ioa.Automaton. The VS component's lines are
// flattened under a "vs." prefix; node values stream into the digest.
func (im *Impl) Fingerprint(f *ioa.Fingerprinter) {
	f.SetPrefix("vs.")
	im.vs.Fingerprint(f)
	f.SetPrefix("")
	for _, p := range im.procs {
		n := im.nodes[p]
		f.SetPrefix(n.fpPre)
		if n.curOK {
			f.Begin("cur")
			f.Byte('=')
			n.cur.WriteFp(f)
			f.End()
		}
		f.Begin("last")
		f.Byte('=')
		n.last.WriteFp(f)
		f.End()
		for id, v := range n.attempted {
			f.Begin("att.")
			id.WriteFp(f)
			f.Byte('=')
			v.Members.WriteFp(f)
			f.End()
		}
		f.SetPrefix("")
	}
}

// maxCreated returns the largest view id created in the underlying VS.
func (im *Impl) maxCreated() types.ViewID {
	var best types.ViewID
	for _, v := range im.vs.Created() {
		if best.Less(v.ID) {
			best = v.ID
		}
	}
	return best
}
