package naive

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	dvsspec "repro/internal/spec/dvs"
	vsspec "repro/internal/spec/vs"
	"repro/internal/types"
)

func TestNaiveSplitBrainClassicSchedule(t *testing.T) {
	universe := types.NewProcSet(1, 2, 3, 4, 5)
	v0 := types.InitialView(universe)
	im := NewImpl(universe, v0)

	perform := func(a ioa.Action) {
		t.Helper()
		if err := im.Perform(a); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	vsAct := func(name string, param any) ioa.Action {
		return ioa.Action{Name: name, Kind: ioa.KindInternal, Param: param}
	}
	accept := func(v types.View, p types.ProcID) {
		t.Helper()
		perform(ioa.Action{Name: "naive-accept", Kind: ioa.KindOutput, Param: AcceptParam{View: v, P: p}})
	}

	v1 := types.NewView(types.ViewID{Seq: 1}, 1, 2, 3)
	v2 := types.NewView(types.ViewID{Seq: 2}, 1, 2)
	v3 := types.NewView(types.ViewID{Seq: 3}, 3, 4, 5)

	// {1,2,3} becomes primary: 3 of 5 is a majority of v0.
	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v1}))
	for _, p := range []types.ProcID{1, 2, 3} {
		perform(vsAct(vsspec.ActNewView, vsspec.NewViewParam{View: v1, P: p}))
		accept(v1, p)
	}
	// {1,2} shrinks further: 2 of 3 is a majority of v1.
	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v2}))
	for _, p := range []types.ProcID{1, 2} {
		perform(vsAct(vsspec.ActNewView, vsspec.NewViewParam{View: v2, P: p}))
		accept(v2, p)
	}
	// {3,4,5} forms. Process 3 correctly refuses (1 of 3 vs its last = v1)…
	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v3}))
	perform(vsAct(vsspec.ActNewView, vsspec.NewViewParam{View: v3, P: 3}))
	if _, ok := im.Node(3).AcceptEnabled(); ok {
		t.Fatal("process 3 must refuse {3,4,5}: it knows about v1")
	}
	// …but 4 and 5, whose last primary is still v0, accept: split brain.
	for _, p := range []types.ProcID{4, 5} {
		perform(vsAct(vsspec.ActNewView, vsspec.NewViewParam{View: v3, P: p}))
		accept(v3, p)
	}
	err := im.CheckIntersectionChain()
	if err == nil {
		t.Fatal("naive dynamic voting should have produced disjoint primaries")
	}
	t.Logf("split brain demonstrated: %v", err)
}

// TestPaperAlgorithmRejectsClassicSchedule runs the same schedule against
// the paper's VS-TO-DVS filter: the info exchange makes processes 4 and 5
// learn about v1 from process 3, so nobody accepts {3,4,5} and the
// intersection chain survives.
func TestPaperAlgorithmRejectsClassicSchedule(t *testing.T) {
	universe := types.NewProcSet(1, 2, 3, 4, 5)
	v0 := types.InitialView(universe)
	im := core.NewImpl(universe, v0)

	perform := func(a ioa.Action) {
		t.Helper()
		if err := im.Perform(a); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	vsAct := func(name string, param any) ioa.Action {
		return ioa.Action{Name: name, Kind: ioa.KindInternal, Param: param}
	}
	// drive runs the composition's enabled internal/output actions to
	// quiescence, so info messages flow and primaries are announced.
	drive := func() {
		for i := 0; i < 10000; i++ {
			acts := im.Enabled()
			if len(acts) == 0 {
				return
			}
			if err := im.Perform(acts[0]); err != nil {
				t.Fatalf("drive %s: %v", acts[0], err)
			}
		}
		t.Fatal("drive did not quiesce")
	}

	v1 := types.NewView(types.ViewID{Seq: 1}, 1, 2, 3)
	v2 := types.NewView(types.ViewID{Seq: 2}, 1, 2)
	v3 := types.NewView(types.ViewID{Seq: 3}, 3, 4, 5)

	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v1}))
	drive() // delivers v1 to {1,2,3}, exchanges info, announces the primary
	for _, p := range []types.ProcID{1, 2, 3} {
		if !im.Node(p).HasAttempted(v1.ID) {
			t.Fatalf("process %d did not attempt v1", p)
		}
	}
	// Until v1 is totally registered, the paper's filter still demands
	// majority intersection with v0 as well, so the shrink to {1,2} (2 of
	// 5) would be blocked — the first protection the naive rule lacks.
	// Register v1 (while everyone is still in it) so the configuration
	// genuinely moves on: registered messages flow, garbage collection
	// advances act to v1 at every member.
	for _, p := range []types.ProcID{1, 2, 3} {
		perform(ioa.Action{Name: "dvs-register", Kind: ioa.KindInput, Param: dvsspec.RegisterParam{P: p}})
	}
	drive()
	for _, p := range []types.ProcID{1, 2, 3} {
		if !im.Node(p).Act().Equal(v1) {
			t.Fatalf("process %d did not garbage-collect to act = v1 (act = %s)", p, im.Node(p).Act())
		}
	}
	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v2}))
	drive()
	if !im.Node(1).HasAttempted(v2.ID) {
		t.Fatal("process 1 did not attempt v2 = {1,2}")
	}
	perform(vsAct(vsspec.ActCreateView, vsspec.CreateViewParam{View: v3}))
	drive()
	for _, p := range []types.ProcID{3, 4, 5} {
		if im.Node(p).HasAttempted(v3.ID) {
			t.Fatalf("process %d accepted {3,4,5}: info exchange failed to block the split", p)
		}
	}
	if err := core.CheckInvariant56(im); err != nil {
		t.Fatalf("intersection property violated: %v", err)
	}
}

// TestNaiveSplitBrainFrequency measures how often random schedules produce
// split brain under the naive rule — the quantitative form of E10.
func TestNaiveSplitBrainFrequency(t *testing.T) {
	universe := types.RangeProcSet(5)
	v0 := types.InitialView(universe)
	violations := 0
	const runs = 30
	for seed := int64(0); seed < runs; seed++ {
		im := NewImpl(universe, v0)
		rng := rand.New(rand.NewSource(seed))
		env := envFunc(universe, rng)
		ex := &ioa.Executor{Steps: 300, Seed: seed}
		if _, err := ex.Run(im, env, nil); err != nil {
			t.Fatal(err)
		}
		if im.CheckIntersectionChain() != nil {
			violations++
		}
	}
	t.Logf("naive dynamic voting: %d/%d random runs ended with disjoint concurrent primaries", violations, runs)
	if violations == 0 {
		t.Error("expected some split-brain runs under the naive rule")
	}
}

// envFunc proposes random views for the naive system's VS substrate.
func envFunc(universe types.ProcSet, rng *rand.Rand) ioa.Environment {
	procs := universe.Sorted()
	proposed := 0
	return ioa.EnvironmentFunc(func(a ioa.Automaton) []ioa.Action {
		im, ok := a.(*Impl)
		if !ok || proposed >= 24 {
			return nil
		}
		members := types.RandomSubset(rng, procs)
		v := types.View{ID: im.maxCreated().Next(members.Sorted()[0]), Members: members}
		if !im.VS().CreateViewCandidateOK(v) {
			return nil
		}
		proposed++
		return []ioa.Action{{Name: vsspec.ActCreateView, Kind: ioa.KindInternal,
			Param: vsspec.CreateViewParam{View: v}}}
	})
}

// TestNaiveDeterminismAndClone exercises the automaton plumbing: seeded
// executions are reproducible and clones are independent.
func TestNaiveDeterminismAndClone(t *testing.T) {
	universe := types.RangeProcSet(4)
	v0 := types.InitialView(universe)
	run := func() string {
		im := NewImpl(universe, v0)
		ex := &ioa.Executor{Steps: 200, Seed: 9}
		if _, err := ex.Run(im, envFunc(universe, rand.New(rand.NewSource(9))), nil); err != nil {
			t.Fatal(err)
		}
		return ioa.FingerprintString(im)
	}
	if run() != run() {
		t.Fatal("naive executions not reproducible")
	}
	im := NewImpl(universe, v0)
	c := im.Clone().(*Impl)
	if ioa.FingerprintString(c) != ioa.FingerprintString(im) {
		t.Fatal("clone fingerprint differs")
	}
	if err := im.Perform(ioa.Action{Name: "bogus"}); err == nil {
		t.Error("unknown action accepted")
	}
	if err := im.Perform(ioa.Action{Name: "naive-accept", Param: "wrong"}); err == nil {
		t.Error("bad param accepted")
	}
	if im.Name() != "NAIVE-DV" {
		t.Error("name wrong")
	}
}
