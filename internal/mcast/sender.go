package mcast

import (
	"sync"

	"repro/internal/types"
)

// sender owns the coordinator's outbound control traffic. Hooks run on
// group event loops and must never block on another group's loop, so they
// enqueue here (unbounded, mutex+cond — no channel, no loss) and a single
// goroutine drains the queue, scheduling each broadcast onto its
// destination group's event loop via the port's blocking Run. The sender
// deliberately holds no core state — it sees only encoded strings and
// group ports — so the goroutine cannot observe a half-applied macro-step.
type sender struct {
	ports map[types.GroupID]GroupPort

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []outFrame
	stopped bool
	started bool
	dropped uint64
}

type outFrame struct {
	g       types.GroupID
	payload string
}

func newSender(ports map[types.GroupID]GroupPort) *sender {
	s := &sender{ports: ports}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sender) start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	//lint:shellsafe the goroutine holds no core state — only encoded strings and group ports — and never calls Step: each broadcast is scheduled onto the destination group's event loop via port.Run
	go s.run()
}

func (s *sender) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sender) enqueue(g types.GroupID, payload string) {
	s.mu.Lock()
	if !s.stopped {
		s.queue = append(s.queue, outFrame{g: g, payload: payload})
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *sender) droppedSends() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *sender) run() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			s.queue = nil
		}
		s.mu.Unlock()

		port, ok := s.ports[f.g]
		if !ok {
			s.countDrop()
			continue
		}
		payload := f.payload
		if !port.Run(func() { port.TOB.Broadcast(payload) }) {
			s.countDrop()
		}
	}
}

func (s *sender) countDrop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}
