package mcast

import (
	"strconv"
	"strings"

	"repro/internal/types"
)

// The multicast coordinator's control traffic (message data and timestamp
// proposals) travels through the per-group total orders as ordinary client
// payloads, marked by a reserved prefix. Fields are netstring-framed
// (len:bytes) so arbitrary application payloads round-trip. Application
// payloads beginning with the magic byte sequence are reserved; submit
// them through the multicast path, never through a raw group broadcast.

// magic marks a control payload. The NUL byte keeps it out of the way of
// ordinary textual payloads.
const magic = "\x00mc"

const (
	kindData = 'D'
	kindProp = 'P'
)

// dataFrame is a decoded multi-group data broadcast.
type dataFrame struct {
	id      string
	origin  types.ProcID
	dests   []types.GroupID
	payload string
}

// propFrame is a decoded timestamp proposal.
type propFrame struct {
	pgroup types.GroupID
	id     string
	ts     uint64
}

func encField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func decField(s string) (field, rest string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return "", "", false
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil || n < 0 || len(s) < i+1+n {
		return "", "", false
	}
	return s[i+1 : i+1+n], s[i+1+n:], true
}

func encodeData(id string, origin types.ProcID, dests []types.GroupID, payload string) string {
	var b strings.Builder
	b.WriteString(magic)
	b.WriteByte(kindData)
	encField(&b, id)
	encField(&b, strconv.Itoa(int(origin)))
	var ds strings.Builder
	for i, g := range dests {
		if i > 0 {
			ds.WriteByte(',')
		}
		ds.WriteString(strconv.Itoa(int(g)))
	}
	encField(&b, ds.String())
	encField(&b, payload)
	return b.String()
}

func encodeProp(pg types.GroupID, id string, ts uint64) string {
	var b strings.Builder
	b.WriteString(magic)
	b.WriteByte(kindProp)
	encField(&b, strconv.Itoa(int(pg)))
	encField(&b, id)
	encField(&b, strconv.FormatUint(ts, 10))
	return b.String()
}

// isControl reports whether a delivered payload is coordinator control
// traffic.
func isControl(s string) bool { return strings.HasPrefix(s, magic) }

// decode parses a control payload into a dataFrame or propFrame. ok is
// false for anything malformed (such payloads are dropped and counted).
func decode(s string) (any, bool) {
	if !isControl(s) || len(s) <= len(magic) {
		return nil, false
	}
	kind := s[len(magic)]
	rest := s[len(magic)+1:]
	switch kind {
	case kindData:
		id, rest, ok := decField(rest)
		if !ok {
			return nil, false
		}
		originStr, rest, ok := decField(rest)
		if !ok {
			return nil, false
		}
		origin, err := strconv.Atoi(originStr)
		if err != nil {
			return nil, false
		}
		destsStr, rest, ok := decField(rest)
		if !ok {
			return nil, false
		}
		var dests []types.GroupID
		for _, part := range strings.Split(destsStr, ",") {
			g, err := strconv.Atoi(part)
			if err != nil {
				return nil, false
			}
			dests = append(dests, types.GroupID(g))
		}
		payload, rest, ok := decField(rest)
		if !ok || rest != "" {
			return nil, false
		}
		return dataFrame{id: id, origin: types.ProcID(origin), dests: dests, payload: payload}, true
	case kindProp:
		pgStr, rest, ok := decField(rest)
		if !ok {
			return nil, false
		}
		pg, err := strconv.Atoi(pgStr)
		if err != nil {
			return nil, false
		}
		id, rest, ok := decField(rest)
		if !ok {
			return nil, false
		}
		tsStr, rest, ok := decField(rest)
		if !ok || rest != "" {
			return nil, false
		}
		ts, err := strconv.ParseUint(tsStr, 10, 64)
		if err != nil {
			return nil, false
		}
		return propFrame{pgroup: types.GroupID(pg), id: id, ts: ts}, true
	}
	return nil, false
}
