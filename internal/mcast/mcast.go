// Package mcast is the runtime shell of the cross-group atomic-multicast
// coordinator: the thin layer that drives the pure protocol core
// (internal/protocol/mcastcore) over N per-group TO stacks, in the style
// of dvsg and tob. The shell holds no protocol state: it encodes the
// core's send effects as reserved-prefix payloads broadcast through the
// destination groups' total orders, decodes delivered control payloads
// back into core events, and hands the core's finalized deliveries to the
// application through each group's ordered delivery stream.
//
// Concurrency shape: each group's TO stack runs its own event loop, and
// the coordinator's delivery hook runs inline on whichever loop ordered
// the control payload, so macro-steps of the one shared core are
// serialized by a mutex (held only across Step — never across a send or
// any other blocking call). Outbound control broadcasts are queued to a
// dedicated sender that schedules them onto the destination group's event
// loop, so a hook running on group g's loop never blocks on group h's.
package mcast

import (
	"fmt"
	"sync"

	"repro/internal/protocol/mcastcore"
	"repro/internal/tob"
	"repro/internal/types"
)

// GroupPort is the coordinator's handle on one group's stack: the group
// id, the TO layer control traffic is broadcast through, and Run, which
// schedules a closure onto that group's event loop (vsg.Node.Do),
// returning false if the node has stopped.
type GroupPort struct {
	G   types.GroupID
	TOB *tob.Layer
	Run func(func()) bool
}

// Observer receives every macro-step of the multicast core, in execution
// order, exactly like tob.Observer: the conformance recorder attaches
// here. Called with the coordinator mutex held; the effects slice must
// not be mutated.
type Observer func(ev mcastcore.Event, effects []mcastcore.Effect)

// Stats are cumulative coordinator counters.
type Stats struct {
	Submitted    uint64 // multicasts submitted locally
	DataIn       uint64 // data frames ordered by some group
	PropsIn      uint64 // proposal frames ordered by some group
	Delivered    uint64 // finalized deliveries across all groups
	ControlSent  uint64 // control broadcasts handed to group loops
	BadFrames    uint64 // undecodable control payloads dropped
	Rejected     uint64 // events the core rejected (malformed)
	DroppedSends uint64 // control broadcasts lost to stopped group loops
}

// Coordinator drives one mcastcore.Node across this process's groups.
type Coordinator struct {
	self  types.ProcID
	ports map[types.GroupID]GroupPort
	send  *sender

	mu       sync.Mutex
	core     *mcastcore.Node
	observer Observer
	stats    Stats
}

// New builds the coordinator for process self over the given group ports.
// Attach each group's delivery hook (Hook) to its tob layer before the
// stacks start, then call Start.
func New(self types.ProcID, ports []GroupPort) *Coordinator {
	groups := make([]types.GroupID, 0, len(ports))
	pm := make(map[types.GroupID]GroupPort, len(ports))
	for _, p := range ports {
		groups = append(groups, p.G)
		pm[p.G] = p
	}
	return &Coordinator{
		self:  self,
		ports: pm,
		core:  mcastcore.NewNode(self, groups),
		send:  newSender(pm),
	}
}

// AddObserver chains o after any already-installed observer (recorder,
// stream spiller, online checker). Must be called before the stacks start.
func (c *Coordinator) AddObserver(o Observer) {
	if prev := c.observer; prev != nil {
		c.observer = func(ev mcastcore.Event, effects []mcastcore.Effect) {
			prev(ev, effects)
			o(ev, effects)
		}
		return
	}
	c.observer = o
}

// Start launches the outbound sender.
func (c *Coordinator) Start() { c.send.start() }

// Stop terminates the sender; queued control broadcasts are abandoned.
func (c *Coordinator) Stop() { c.send.stop() }

// Stats returns a snapshot of the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.DroppedSends += c.send.droppedSends()
	return s
}

// Delivered returns a copy of group g's multicast delivery history at this
// node, in delivery order.
func (c *Coordinator) Delivered(g types.GroupID) []mcastcore.Delivered {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.core.Delivered(g)
}

// Submit multicasts payload to the destination groups (canonicalized
// here). Safe from any goroutine. The message is delivered in every
// destination group in the same relative order as every other multicast
// those groups share.
func (c *Coordinator) Submit(dests []types.GroupID, payload string) error {
	canon := types.DedupGroups(append([]types.GroupID(nil), dests...))
	for _, g := range canon {
		if _, ok := c.ports[g]; !ok {
			return fmt.Errorf("mcast: not a member of group %s", g)
		}
	}
	effects, err := c.step(mcastcore.EvSubmit{Dests: canon, Payload: payload})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Submitted++
	c.mu.Unlock()
	c.apply(effects)
	return nil
}

// Hook returns group g's delivery hook: install it on that group's tob
// layer (tob.Layer.SetDeliverHook). Control payloads are consumed, stepped
// through the core, and replaced by whatever multicast deliveries they
// finalize in g; ordinary payloads pass through untouched. Because the
// hook runs inline in the TO delivery order and the core's group-g state
// depends only on group-g events, every member of g interleaves multicast
// deliveries into its application stream at the same points.
func (c *Coordinator) Hook(g types.GroupID) tob.DeliverHook {
	return func(d tob.Delivery) []tob.Delivery {
		if !isControl(d.Payload) {
			return []tob.Delivery{d}
		}
		frame, ok := decode(d.Payload)
		if !ok {
			c.mu.Lock()
			c.stats.BadFrames++
			c.mu.Unlock()
			return nil
		}
		var ev mcastcore.Event
		switch fr := frame.(type) {
		case dataFrame:
			ev = mcastcore.EvData{Group: g, ID: fr.id, Origin: fr.origin, Dests: fr.dests, Payload: fr.payload}
		case propFrame:
			ev = mcastcore.EvProposal{Group: g, PGroup: fr.pgroup, ID: fr.id, TS: fr.ts}
		}
		effects, err := c.step(ev)
		if err != nil {
			return nil
		}
		c.mu.Lock()
		if _, isData := ev.(mcastcore.EvData); isData {
			c.stats.DataIn++
		} else {
			c.stats.PropsIn++
		}
		c.mu.Unlock()
		return c.apply(effects)
	}
}

// step runs one core macro-step under the mutex and returns its effects.
// The observer fires inside the critical section so recorded logs keep the
// core's execution order even when hooks race on different group loops.
func (c *Coordinator) step(ev mcastcore.Event) ([]mcastcore.Effect, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out mcastcore.Outbox
	if err := mcastcore.Step(c.core, ev, &out); err != nil {
		c.stats.Rejected++
		return nil, err
	}
	if c.observer != nil {
		c.observer(ev, out.Effects)
	}
	return out.Effects, nil
}

// apply translates a macro-step's effects outside the mutex: send effects
// are encoded and queued to the sender, deliver effects become application
// deliveries for the carrier group.
func (c *Coordinator) apply(effects []mcastcore.Effect) []tob.Delivery {
	var out []tob.Delivery
	var sent, delivered uint64
	for _, fx := range effects {
		switch e := fx.(type) {
		case mcastcore.FxSendData:
			c.send.enqueue(e.To, encodeData(e.ID, e.Origin, e.Dests, e.Payload))
			sent++
		case mcastcore.FxSendProp:
			c.send.enqueue(e.To, encodeProp(e.PGroup, e.ID, e.TS))
			sent++
		case mcastcore.FxDeliver:
			out = append(out, tob.Delivery{Payload: e.Payload, Origin: e.Origin})
			delivered++
		}
	}
	if sent > 0 || delivered > 0 {
		c.mu.Lock()
		c.stats.ControlSent += sent
		c.stats.Delivered += delivered
		c.mu.Unlock()
	}
	return out
}
