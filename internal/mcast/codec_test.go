package mcast

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestCodecDataRoundTrip(t *testing.T) {
	cases := []dataFrame{
		{id: "p1-1", origin: 1, dests: []types.GroupID{0}, payload: "hello"},
		{id: "p0-42", origin: 0, dests: []types.GroupID{0, 2, 5}, payload: ""},
		// Payloads containing the framing characters, the magic itself, and
		// binary junk must survive the netstring framing untouched.
		{id: "x", origin: 7, dests: []types.GroupID{1, 3}, payload: "7:colon,comma"},
		{id: "y", origin: 2, dests: []types.GroupID{4}, payload: magic + "D5:inner"},
		{id: "z", origin: 3, dests: []types.GroupID{0, 1}, payload: "\x00\xff\n:"},
	}
	for _, want := range cases {
		enc := encodeData(want.id, want.origin, want.dests, want.payload)
		if !isControl(enc) {
			t.Fatalf("encoded data frame %q not recognized as control", enc)
		}
		got, ok := decode(enc)
		if !ok {
			t.Fatalf("decode(%q) failed", enc)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestCodecPropRoundTrip(t *testing.T) {
	cases := []propFrame{
		{pgroup: 0, id: "p0-1", ts: 1},
		{pgroup: 9, id: "p3-17", ts: 0},
		{pgroup: 2, id: "weird:id,with\x00junk", ts: 1<<64 - 1},
	}
	for _, want := range cases {
		enc := encodeProp(want.pgroup, want.id, want.ts)
		if !isControl(enc) {
			t.Fatalf("encoded proposal %q not recognized as control", enc)
		}
		got, ok := decode(enc)
		if !ok {
			t.Fatalf("decode(%q) failed", enc)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestCodecRejectsMalformed feeds the decoder truncations, corruptions and
// junk: everything must come back !ok rather than panic or mis-parse —
// these are network-facing payloads on the TCP runtime.
func TestCodecRejectsMalformed(t *testing.T) {
	good := encodeData("id", 1, []types.GroupID{0, 1}, "payload")
	bad := []string{
		"",
		"plain application payload",
		magic,              // magic with no kind
		magic + "X",        // unknown kind
		magic + "D",        // no fields
		magic + "P3:0:",    // mangled netstring
		magic + "D5:id",    // length overruns the buffer
		good[:len(good)-3], // truncated tail
		good + "extra",     // trailing garbage
		magic + "Dx:id",    // non-numeric length
		strings.Replace(encodeProp(1, "id", 7), "7", "ts", 1), // non-numeric timestamp
		strings.Replace(good, "0,1", "g,1", 1),                // non-numeric dest
	}
	for _, s := range bad {
		if f, ok := decode(s); ok {
			t.Fatalf("decode(%q) accepted malformed input as %+v", s, f)
		}
	}
}

// TestCodecNonControlPassThrough pins the reservation boundary: ordinary
// payloads — including ones that merely start with a NUL — are only treated
// as control when they carry the full magic.
func TestCodecNonControlPassThrough(t *testing.T) {
	for _, s := range []string{"", "m", "mc", "\x00", "\x00m", "\x00Mc", "hello"} {
		if isControl(s) {
			t.Fatalf("isControl(%q) = true for a non-control payload", s)
		}
	}
	if !isControl(magic) || !isControl(magic+"Danything") {
		t.Fatal("magic-prefixed payloads must be reserved")
	}
}
