package conform

import (
	"testing"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/staticcore"
	"repro/internal/protocol/tocore"
	"repro/internal/quorum"
	"repro/internal/types"
)

// recordedStaticRun drives a singleton static-primary node (staticcore
// behind dvscore.Step, exactly as dvsg drives it in ModeStatic) plus its TO
// core through a small scripted run, and returns the harvested log.
func recordedStaticRun(t *testing.T) NodeLog {
	t.Helper()
	p := types.ProcID(0)
	initial := types.InitialView(types.RangeProcSet(1))
	rec := NewRecorder(p, 0, initial, true, true, false, true)

	sn := staticcore.NewNode(p, initial, true, quorum.Majority(initial.Members))
	tn := tocore.NewNode(p, initial, true, false)

	stepDVS := func(ev dvscore.Event) []dvscore.Effect {
		var out dvscore.Outbox
		dvscore.Step(sn, ev, false, &out)
		rec.ObserveDVS(ev, out.Effects)
		return out.Effects
	}
	stepTO := func(ev tocore.Event) []tocore.Effect {
		var out tocore.Outbox
		if err := tocore.Step(tn, ev, true, &out); err != nil {
			t.Fatalf("to step: %v", err)
		}
		rec.ObserveTO(ev, out.Effects)
		return out.Effects
	}

	for _, fx := range stepTO(tocore.EvBroadcast{A: "a1"}) {
		if send, ok := fx.(tocore.FxSend); ok {
			for _, dfx := range stepDVS(dvscore.EvClientSend{M: send.M}) {
				if sv, ok := dfx.(dvscore.FxSendVS); ok {
					for _, up := range stepDVS(dvscore.EvVSRecv{M: sv.M, From: p}) {
						if d, ok := up.(dvscore.FxDeliver); ok {
							stepTO(tocore.EvRecv{M: d.M, From: d.From})
						}
					}
					for _, up := range stepDVS(dvscore.EvVSSafe{M: sv.M, From: p}) {
						if s, ok := up.(dvscore.FxSafeInd); ok {
							stepTO(tocore.EvSafe{M: s.M, From: s.From})
						}
					}
				}
			}
		}
	}
	log := rec.Log()
	if !log.Static {
		t.Fatal("recorder did not mark the log static")
	}
	if len(log.DVS) == 0 || len(log.TO) == 0 {
		t.Fatalf("scripted static run recorded no steps: dvs=%d to=%d", len(log.DVS), len(log.TO))
	}
	return log
}

func TestReplayStaticCleanRun(t *testing.T) {
	log := recordedStaticRun(t)
	rep := Replay([]NodeLog{log})
	if err := rep.Err(); err != nil {
		t.Fatalf("replay of faithful static log: %v", err)
	}
	if rep.DVSSteps != len(log.DVS) || rep.TOSteps != len(log.TO) {
		t.Errorf("step counts: %s", rep)
	}
	if rep.Checks == 0 {
		t.Error("no invariant checks evaluated on the static cut")
	}
}

// TestReplayStaticDetectsTampering rewrites one recorded DVS effect; the
// static replay must re-derive the original and flag the divergence.
func TestReplayStaticDetectsTampering(t *testing.T) {
	log := recordedStaticRun(t)
	tampered := false
	for i, r := range log.DVS {
		if len(r.Fx) > 0 {
			fx := append([]dvscore.Effect(nil), r.Fx...)
			fx[len(fx)-1] = dvscore.FxNewPrimary{View: log.Initial.Clone()}
			log.DVS[i].Fx = fx
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no DVS record with effects to tamper with")
	}
	rep := Replay([]NodeLog{log})
	if len(rep.Divergences) == 0 {
		t.Fatalf("tampered static log replayed clean: %s", rep)
	}
}

// TestReplayRejectsMixedModes pins the malformed-set rule: one run cannot
// contain both static and dynamic nodes, so a mixed log set must be
// rejected up front rather than replayed against the wrong automata.
func TestReplayRejectsMixedModes(t *testing.T) {
	initial := types.InitialView(types.RangeProcSet(2))
	logs := []NodeLog{
		{P: 0, Initial: initial, InP0: true, Static: true},
		{P: 1, Initial: initial, InP0: true, Static: false},
	}
	rep := Replay(logs)
	if len(rep.Malformed) == 0 {
		t.Fatalf("mixed static/dynamic log set accepted: %s", rep)
	}
}
