package conform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/protocol/dvscore"
	"repro/internal/protocol/staticcore"
	"repro/internal/protocol/tocore"
	"repro/internal/quorum"
	"repro/internal/spec/dvs"
	"repro/internal/types"
)

// Divergence reports one replayed macro-step whose effect sequence differs
// from the recorded one.
type Divergence struct {
	P      types.ProcID
	Layer  string // "dvs" or "to"
	Index  int    // record index within that node's layer log
	Window int    // chunk that introduced it (streamed replay); 0 = whole trace
	Event  string // rendered input event
	Want   string // recorded effects, rendered
	Got    string // replayed effects, rendered
}

// String renders the divergence.
func (d Divergence) String() string {
	loc := ""
	if d.Window > 0 {
		loc = fmt.Sprintf(" [window %d]", d.Window)
	}
	return fmt.Sprintf("node %s %s step %d%s (%s): recorded [%s], replayed [%s]",
		d.P, d.Layer, d.Index, loc, d.Event, d.Want, d.Got)
}

// Violation is one failed invariant check over a replayed cut.
type Violation struct {
	Name   string
	Window int // chunk boundary it was detected at (streamed replay); 0 = final cut
	Err    error
}

// String renders the violation.
func (v Violation) String() string {
	if v.Window > 0 {
		return fmt.Sprintf("%s [window %d]: %s", v.Name, v.Window, v.Err)
	}
	return v.Name + ": " + v.Err.Error()
}

// Report is the outcome of replaying a set of node logs.
type Report struct {
	Nodes       int
	DVSSteps    int
	TOSteps     int
	Checks      int // invariant checks evaluated
	Malformed   []string
	Divergences []Divergence
	Violations  []Violation
}

// OK reports whether the replay was well-formed, divergence- and
// violation-free.
func (r *Report) OK() bool {
	return len(r.Malformed) == 0 && len(r.Divergences) == 0 && len(r.Violations) == 0
}

// Err returns nil when OK, else an error summarizing the first findings.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var parts []string
	if n := len(r.Malformed); n > 0 {
		parts = append(parts, fmt.Sprintf("%d malformed log(s), first: %s", n, r.Malformed[0]))
	}
	if n := len(r.Divergences); n > 0 {
		parts = append(parts, fmt.Sprintf("%d divergence(s), first: %s", n, r.Divergences[0]))
	}
	if n := len(r.Violations); n > 0 {
		parts = append(parts, fmt.Sprintf("%d invariant violation(s), first: %s", n, r.Violations[0]))
	}
	return fmt.Errorf("conformance: %s", strings.Join(parts, "; "))
}

// String renders a one-line summary.
func (r *Report) String() string {
	s := fmt.Sprintf("nodes=%d dvs_steps=%d to_steps=%d checks=%d divergences=%d violations=%d",
		r.Nodes, r.DVSSteps, r.TOSteps, r.Checks, len(r.Divergences), len(r.Violations))
	if len(r.Malformed) > 0 {
		s += fmt.Sprintf(" malformed=%d", len(r.Malformed))
	}
	return s
}

// validateLogSet reports malformed log-set structure into rep: duplicate
// entries for one process (they would silently overwrite each other in the
// replay maps) and disagreement on the initial view (the refinement mapping
// is anchored at a single v0, so mixed-run logs must be rejected, not
// replayed against an arbitrary log's v0). sorted must be ordered by P.
// Returns false when the set is unusable.
func validateLogSet(rep *Report, sorted []NodeLog) bool {
	ok := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i].P == sorted[i-1].P {
			rep.Malformed = append(rep.Malformed,
				fmt.Sprintf("duplicate log for process %s", sorted[i].P))
			ok = false
		}
	}
	for _, lg := range sorted[1:] {
		if !lg.Initial.Equal(sorted[0].Initial) {
			rep.Malformed = append(rep.Malformed,
				fmt.Sprintf("process %s initial view %s disagrees with process %s initial view %s — logs are not from one run",
					lg.P, lg.Initial, sorted[0].P, sorted[0].Initial))
			ok = false
		}
		if lg.Static != sorted[0].Static {
			rep.Malformed = append(rep.Malformed,
				fmt.Sprintf("process %s static=%v disagrees with process %s static=%v — one run cannot mix filter modes",
					lg.P, lg.Static, sorted[0].P, sorted[0].Static))
			ok = false
		}
		if lg.Group != sorted[0].Group {
			rep.Malformed = append(rep.Malformed,
				fmt.Sprintf("process %s group %s disagrees with process %s group %s — each group is an independent run, harvest one log set per group",
					lg.P, lg.Group, sorted[0].P, sorted[0].Group))
			ok = false
		}
	}
	return ok
}

// stepDVSRecord replays one recorded VS-TO-DVS macro-step through dn — any
// dvscore.Filter, so the same path re-executes dynamic (dvscore.Node) and
// static (staticcore.Node) logs — and reports a divergence (attributed to
// window) when the re-derived effects differ from the recorded ones.
func stepDVSRecord(rep *Report, window int, p types.ProcID, gc bool, dn dvscore.Filter, index int, rec DVSRecord) {
	var out dvscore.Outbox
	dvscore.Step(dn, rec.Ev, gc, &out)
	rep.DVSSteps++
	if want, got := renderDVSEffects(rec.Fx), renderDVSEffects(out.Effects); want != got {
		rep.Divergences = append(rep.Divergences, Divergence{
			P: p, Layer: "dvs", Index: index, Window: window,
			Event: renderDVSEvent(rec.Ev), Want: want, Got: got,
		})
	}
}

// stepTORecord replays one recorded DVS-TO-TO macro-step through tn. A step
// error renders as the replayed outcome: recorded events never error (the
// shell drops rejected events unobserved), so an error is a divergence.
func stepTORecord(rep *Report, window int, p types.ProcID, register bool, tn *tocore.Node, index int, rec TORecord) {
	var out tocore.Outbox
	err := tocore.Step(tn, rec.Ev, register, &out)
	rep.TOSteps++
	want, got := renderTOEffects(rec.Fx), renderTOEffects(out.Effects)
	if err != nil {
		got = "error: " + err.Error()
	}
	if want != got {
		rep.Divergences = append(rep.Divergences, Divergence{
			P: p, Layer: "to", Index: index, Window: window,
			Event: renderTOEvent(rec.Ev), Want: want, Got: got,
		})
	}
}

// Replay re-executes the recorded logs through the protocol cores and
// evaluates the paper's invariants over the reconstructed final cut. The
// logs must cover every process of the run and must have been harvested
// after all nodes stopped — otherwise the cut is not consistent and the
// cross-node invariants can report false violations.
func Replay(logs []NodeLog) *Report {
	rep := &Report{Nodes: len(logs)}
	if len(logs) == 0 {
		return rep
	}
	sorted := append([]NodeLog(nil), logs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P < sorted[j].P })
	if !validateLogSet(rep, sorted) {
		return rep
	}

	static := sorted[0].Static
	procs := make([]types.ProcID, 0, len(sorted))
	dvsNodes := make(map[types.ProcID]*dvscore.Node, len(sorted))
	statNodes := make(map[types.ProcID]*staticcore.Node, len(sorted))
	toNodes := make(map[types.ProcID]*tocore.Node, len(sorted))

	for _, lg := range sorted {
		procs = append(procs, lg.P)

		if static {
			sn := newStaticReplayNode(lg.P, lg.Initial, lg.InP0)
			for i, rec := range lg.DVS {
				stepDVSRecord(rep, 0, lg.P, lg.GC, sn, i, rec)
			}
			statNodes[lg.P] = sn
		} else {
			dn := dvscore.NewNode(lg.P, lg.Initial, lg.InP0)
			for i, rec := range lg.DVS {
				stepDVSRecord(rep, 0, lg.P, lg.GC, dn, i, rec)
			}
			dvsNodes[lg.P] = dn
		}

		tn := tocore.NewNode(lg.P, lg.Initial, lg.InP0, false)
		for i, rec := range lg.TO {
			stepTORecord(rep, 0, lg.P, lg.Register, tn, i, rec)
		}
		toNodes[lg.P] = tn
	}

	if static {
		checkStaticCut(rep, 0, procs, statNodes, toNodes)
	} else {
		checkCut(rep, 0, procs, sorted[0].Initial, dvsNodes, toNodes)
	}
	return rep
}

// newStaticReplayNode reconstructs the static-primary core exactly as the
// runtime builds it (cluster.go, tcpnode.go): a strict-majority quorum
// system over the members of the initial view. The quorum system is part of
// the core's construction, so if a future runtime configures a different
// one, it must be carried in the log for replays to stay faithful.
func newStaticReplayNode(p types.ProcID, initial types.View, inP0 bool) *staticcore.Node {
	return staticcore.NewNode(p, initial, inP0, quorum.Majority(initial.Members))
}

// checkCut evaluates the paper's cross-node invariants over the cut formed
// by the given replayed node states, attributing violations to window (0 =
// the final cut of the whole trace). The cut must be quiescent at the
// recorded interface: no core messages or safe indications in flight.
func checkCut(rep *Report, window int, procs []types.ProcID, initial types.View,
	dvsNodes map[types.ProcID]*dvscore.Node, toNodes map[types.ProcID]*tocore.Node) {
	check := func(name string, f func() error) {
		rep.Checks++
		if err := f(); err != nil {
			rep.Violations = append(rep.Violations, Violation{Name: name, Window: window, Err: err})
		}
	}

	// DVS implementation invariants 5.1–5.6 over the replayed node states.
	// With no VS oracle, Created is left nil and the formulas fall back to
	// the views recoverable from the node states (see dvscore.System).
	dsys := dvscore.System{Procs: procs, Nodes: dvsNodes}
	check("DVSIMPL-5.1", dsys.CheckInvariant51)
	check("DVSIMPL-5.2", dsys.CheckInvariant52)
	check("DVSIMPL-5.3", dsys.CheckInvariant53)
	check("DVSIMPL-5.4", dsys.CheckInvariant54)
	check("DVSIMPL-5.5", dsys.CheckInvariant55)
	check("DVSIMPL-5.6", dsys.CheckInvariant56)

	// DVS specification invariants 4.1–4.2 over the abstracted state: the
	// refinement mapping of Figure 4 applied to the quiescent cut (all
	// queues empty, so only views, attempts, registrations and client-cur
	// survive the purge).
	spec := abstractSpec(procs, initial, dvsNodes)
	check("DVS-4.1", func() error { return dvs.CheckInvariant41(spec) })
	check("DVS-4.2", func() error { return dvs.CheckInvariant42(spec) })

	// TO invariants 6.1–6.3 plus confirmed-prefix agreement, with the view
	// oracles reconstructed from the replayed DVS states and no in-transit
	// summaries (the cut is quiescent).
	created, attempted := viewOracles(procs, dvsNodes)
	tsys := tocore.System{
		Procs:     procs,
		Nodes:     toNodes,
		Created:   created,
		Attempted: attempted,
	}
	check("TOIMPL-6.1", tsys.CheckInvariant61)
	check("TOIMPL-6.2", tsys.CheckInvariant62)
	check("TOIMPL-6.3", tsys.CheckInvariant63)
	check("TOIMPL-confirmed-consistent", tsys.CheckConfirmedConsistent)
}

// checkStaticCut evaluates the invariants a static-primary cut supports.
// The paper's 5.x/4.x formulas quantify over DVS state (attempts,
// registrations, ambiguity) the static filter does not have; what remains
// is the static baseline's own safety argument — every announced primary is
// a quorum of the fixed universe, so any two primaries intersect — plus the
// filter-independent TO agreement on confirmed prefixes. The per-node
// checks are sound over any subset of the group; the pairwise ones only
// over the processes present, which is all a cut can offer.
func checkStaticCut(rep *Report, window int, procs []types.ProcID,
	statNodes map[types.ProcID]*staticcore.Node, toNodes map[types.ProcID]*tocore.Node) {
	check := func(name string, f func() error) {
		rep.Checks++
		if err := f(); err != nil {
			rep.Violations = append(rep.Violations, Violation{Name: name, Window: window, Err: err})
		}
	}

	check("STATIC-primary-quorum", func() error {
		for _, p := range procs {
			if err := checkLocalStaticPrimary(p, statNodes[p]); err != nil {
				return err
			}
		}
		return nil
	})
	check("STATIC-primary-intersect", func() error {
		for i, p := range procs {
			vp, ok := statNodes[p].ClientCur()
			if !ok {
				continue
			}
			for _, q := range procs[:i] {
				vq, ok := statNodes[q].ClientCur()
				if !ok {
					continue
				}
				if !vp.Members.Intersects(vq.Members) {
					return fmt.Errorf("primaries %s at %s and %s at %s are disjoint", vp, p, vq, q)
				}
			}
		}
		return nil
	})

	tsys := tocore.System{Procs: procs, Nodes: toNodes}
	check("TOIMPL-confirmed-consistent", tsys.CheckConfirmedConsistent)
}

// abstractSpec applies the refinement mapping F of Figure 4 to the replayed
// cut: created = ∪_p attempted_p, attempted[g] = the attempting processes,
// registered[g] = {p | reg[g]_p}, current-viewid[p] = client-cur.id_p. The
// message components (queues, pending, indices) are empty: the cut is taken
// after the run, when the purged channels hold nothing.
func abstractSpec(procs []types.ProcID, initial types.View, nodes map[types.ProcID]*dvscore.Node) *dvs.DVS {
	universe := types.NewProcSet()
	for _, p := range procs {
		universe.Add(p)
	}
	st := dvs.State{
		Universe:   universe,
		Initial:    initial,
		Current:    make(map[types.ProcID]types.ViewID),
		Attempted:  make(map[types.ViewID]types.ProcSet),
		Registered: make(map[types.ViewID]types.ProcSet),
		Drained:    true,
	}
	byID := make(map[types.ViewID]types.View)
	for _, p := range procs {
		n := nodes[p]
		for _, v := range n.AttemptedShared() {
			byID[v.ID] = v
			set, ok := st.Attempted[v.ID]
			if !ok {
				set = types.NewProcSet()
				st.Attempted[v.ID] = set
			}
			set.Add(p)
		}
		if cc, ok := n.ClientCur(); ok {
			st.Current[p] = cc.ID
		}
		for _, g := range n.RegisteredIDs() {
			set, ok := st.Registered[g]
			if !ok {
				set = types.NewProcSet()
				st.Registered[g] = set
			}
			set.Add(p)
		}
	}
	for _, v := range byID {
		st.Created = append(st.Created, v)
	}
	return dvs.FromState(st)
}

// viewOracles reconstructs the created set and per-view attempted sets the
// TO invariants quantify over from the replayed DVS states.
func viewOracles(procs []types.ProcID, nodes map[types.ProcID]*dvscore.Node) ([]types.View, func(types.ViewID) types.ProcSet) {
	byID := make(map[types.ViewID]types.View)
	att := make(map[types.ViewID]types.ProcSet)
	for _, p := range procs {
		for _, v := range nodes[p].AttemptedShared() {
			byID[v.ID] = v
			set, ok := att[v.ID]
			if !ok {
				set = types.NewProcSet()
				att[v.ID] = set
			}
			set.Add(p)
		}
	}
	created := make([]types.View, 0, len(byID))
	for _, v := range byID {
		created = append(created, v)
	}
	types.SortViews(created)
	return created, func(g types.ViewID) types.ProcSet {
		if s, ok := att[g]; ok {
			return s
		}
		return types.NewProcSet()
	}
}

// Rendering: canonical strings for events and effects, used both for
// divergence comparison and for messages. MsgKey/String are the same
// canonical forms the model checker fingerprints.

func renderDVSEvent(ev dvscore.Event) string {
	switch e := ev.(type) {
	case dvscore.EvVSNewView:
		return "vs-newview " + e.View.String()
	case dvscore.EvVSRecv:
		return "vs-gprcv " + e.M.MsgKey() + " from " + e.From.String()
	case dvscore.EvVSSafe:
		return "vs-safe " + e.M.MsgKey() + " from " + e.From.String()
	case dvscore.EvClientSend:
		return "dvs-gpsnd " + e.M.MsgKey()
	case dvscore.EvClientRegister:
		return "dvs-register"
	default:
		return fmt.Sprintf("event? %T", ev)
	}
}

func renderDVSEffects(fx []dvscore.Effect) string {
	parts := make([]string, len(fx))
	for i, f := range fx {
		switch f := f.(type) {
		case dvscore.FxSendVS:
			parts[i] = "send " + f.M.MsgKey()
		case dvscore.FxDeliver:
			parts[i] = "deliver " + f.M.MsgKey() + " from " + f.From.String()
		case dvscore.FxSafeInd:
			parts[i] = "safe " + f.M.MsgKey() + " from " + f.From.String()
		case dvscore.FxNewPrimary:
			parts[i] = "newview " + f.View.String()
		case dvscore.FxGC:
			parts[i] = "gc " + f.View.String()
		default:
			parts[i] = fmt.Sprintf("effect? %T", f)
		}
	}
	return strings.Join(parts, "; ")
}

func renderTOEvent(ev tocore.Event) string {
	switch e := ev.(type) {
	case tocore.EvBroadcast:
		return "bcast " + e.A
	case tocore.EvNewView:
		return "dvs-newview " + e.View.String()
	case tocore.EvRecv:
		return "dvs-gprcv " + e.M.MsgKey() + " from " + e.From.String()
	case tocore.EvSafe:
		return "dvs-safe " + e.M.MsgKey() + " from " + e.From.String()
	default:
		return fmt.Sprintf("event? %T", ev)
	}
}

func renderTOEffects(fx []tocore.Effect) string {
	parts := make([]string, len(fx))
	for i, f := range fx {
		switch f := f.(type) {
		case tocore.FxLabel:
			parts[i] = "label " + f.A
		case tocore.FxSend:
			parts[i] = "send " + f.M.MsgKey()
		case tocore.FxConfirm:
			parts[i] = "confirm"
		case tocore.FxDeliver:
			parts[i] = "deliver " + f.A + "@" + f.Origin.String()
		case tocore.FxRegister:
			parts[i] = "register " + f.View.String()
		default:
			parts[i] = fmt.Sprintf("effect? %T", f)
		}
	}
	return strings.Join(parts, "; ")
}
