package conform

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

// A sharded run's trace is a directory of independent artifacts:
//
//	group-00/  group-01/  ...   one chunked stream trace per group (the
//	                            format of stream.go, each group-homogeneous)
//	mcast.seg                   the multicast coordinator logs of every
//	                            process, one framed gob segment
//
// Each group's stream is a complete single-group trace — the per-group
// replay needs nothing outside its own subdirectory — so sharding composes
// with the existing stream machinery instead of widening the chunk format.
// The multicast logs are small (control traffic only) and harvested after
// the run, so they are written whole rather than streamed.

const mcastSeg = "mcast.seg"

// GroupDir returns the stream-trace subdirectory for group g under a
// sharded trace root.
func GroupDir(root string, g types.GroupID) string {
	return filepath.Join(root, fmt.Sprintf("group-%02d", int(g)))
}

// WriteMcastLogs writes the multicast logs of a sharded run under root,
// atomically (segment framing: magic, length, CRC).
func WriteMcastLogs(root string, logs []McastLog) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	return writeSegment(filepath.Join(root, mcastSeg), logs)
}

// ReadMcastLogs reads the multicast logs under root. A missing segment
// surfaces as os.ErrNotExist (a sharded run with no cross-group traffic
// recorder is legal).
func ReadMcastLogs(root string) ([]McastLog, error) {
	var logs []McastLog
	if err := readSegment(filepath.Join(root, mcastSeg), &logs); err != nil {
		return nil, err
	}
	return logs, nil
}

// ShardedReport aggregates the per-group stream replays and the multicast
// replay of one sharded trace.
type ShardedReport struct {
	Groups map[types.GroupID]*StreamReport
	Mcast  *McastReport // nil when the trace has no multicast segment
}

// OK reports whether every group's stream replayed sealed and clean and
// the multicast logs (if present) replayed clean.
func (r *ShardedReport) OK() bool {
	for _, sr := range r.Groups {
		if !sr.OK() || !sr.Sealed {
			return false
		}
	}
	return r.Mcast == nil || r.Mcast.OK()
}

// Err returns nil when OK, else an error naming the first failing artifact.
func (r *ShardedReport) Err() error {
	gs := make([]types.GroupID, 0, len(r.Groups))
	for g := range r.Groups {
		gs = append(gs, g)
	}
	types.SortGroups(gs)
	for _, g := range gs {
		sr := r.Groups[g]
		if err := sr.Report.Err(); err != nil {
			return fmt.Errorf("group %s: %w", g, err)
		}
		if !sr.Sealed {
			return fmt.Errorf("group %s: trace not sealed: %s", g, sr.Truncated)
		}
	}
	if r.Mcast != nil {
		if err := r.Mcast.Err(); err != nil {
			return err
		}
	}
	return nil
}

// String renders a multi-line summary, one line per artifact.
func (r *ShardedReport) String() string {
	gs := make([]types.GroupID, 0, len(r.Groups))
	for g := range r.Groups {
		gs = append(gs, g)
	}
	types.SortGroups(gs)
	var b strings.Builder
	for _, g := range gs {
		fmt.Fprintf(&b, "group %s: %s\n", g, r.Groups[g].String())
	}
	if r.Mcast != nil {
		fmt.Fprintf(&b, "mcast: %s\n", r.Mcast.String())
	}
	return strings.TrimRight(b.String(), "\n")
}

// ReplaySharded replays every artifact of a sharded trace directory: each
// group-NN subdirectory through ReplayStream, the multicast segment (if
// any) through ReplayMcast. The only hard errors are an unreadable root, a
// group stream whose header is unreadable, or a corrupt multicast segment;
// everything else is reported.
func ReplaySharded(root string) (*ShardedReport, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	rep := &ShardedReport{Groups: make(map[types.GroupID]*StreamReport)}
	var groups []types.GroupID
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "group-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "group-"))
		if err != nil {
			continue
		}
		groups = append(groups, types.GroupID(n))
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		sr, err := ReplayStream(GroupDir(root, g))
		if err != nil {
			return nil, fmt.Errorf("group %s: %w", g, err)
		}
		rep.Groups[g] = sr
	}
	logs, err := ReadMcastLogs(root)
	switch {
	case err == nil:
		rep.Mcast = ReplayMcast(logs)
	case os.IsNotExist(err):
		// No cross-group recorder ran; the per-group replays stand alone.
	default:
		return nil, err
	}
	return rep, nil
}
